package crsharing

// The benchmark harness: one benchmark per figure and per empirical
// validation of the paper (see DESIGN.md's experiment index), plus
// micro-benchmarks for the individual algorithms. Run with
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute the same runners as cmd/crexp in quick
// mode, so `-bench` regenerates every table of EXPERIMENTS.md in miniature;
// the micro-benchmarks isolate the algorithmic kernels (the m=2 dynamic
// program, the configuration enumeration, the greedy schedulers, the
// hypergraph construction and the many-core simulator engine).

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"crsharing/internal/algo/branchbound"
	"crsharing/internal/algo/bruteforce"
	"crsharing/internal/algo/chunked"
	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/algo/optres2"
	"crsharing/internal/algo/optresm"
	"crsharing/internal/algo/roundrobin"
	"crsharing/internal/core"
	"crsharing/internal/experiments"
	"crsharing/internal/gen"
	"crsharing/internal/hypergraph"
	"crsharing/internal/manycore"
	"crsharing/internal/solver"
	"crsharing/internal/trace"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.QuickConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper figure -----------------------------------------

func BenchmarkFig1Hypergraph(b *testing.B)          { benchExperiment(b, "F1") }
func BenchmarkFig2NestedTransform(b *testing.B)     { benchExperiment(b, "F2") }
func BenchmarkFig3RoundRobinWorstCase(b *testing.B) { benchExperiment(b, "F3") }
func BenchmarkFig4PartitionReduction(b *testing.B)  { benchExperiment(b, "F4") }
func BenchmarkFig5GreedyWorstCase(b *testing.B)     { benchExperiment(b, "F5") }

// --- one benchmark per empirical validation ---------------------------------

func BenchmarkE1LowerBounds(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2RoundRobinRatio(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkE3DP2Scaling(b *testing.B)       { benchExperiment(b, "E3") }
func BenchmarkE4ExactM(b *testing.B)           { benchExperiment(b, "E4") }
func BenchmarkE5GreedyRatio(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6HypergraphBounds(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7ManycorePolicies(b *testing.B) { benchExperiment(b, "E7") }
func BenchmarkE8GeneralSizes(b *testing.B)     { benchExperiment(b, "E8") }

// --- extension / ablation experiments (not in the paper) ----------------------

func BenchmarkE9BalanceAblation(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10Canonicalisation(b *testing.B)  { benchExperiment(b, "E10") }
func BenchmarkE11LookaheadWindows(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12SubstrateScaling(b *testing.B)  { benchExperiment(b, "E12") }
func BenchmarkE13PlacementPolicies(b *testing.B) { benchExperiment(b, "E13") }

// --- algorithm micro-benchmarks ----------------------------------------------

func BenchmarkGreedyBalance(b *testing.B) {
	for _, size := range []struct{ m, jobs int }{{2, 64}, {4, 64}, {8, 64}, {16, 256}} {
		b.Run(fmt.Sprintf("m=%d/n=%d", size.m, size.jobs), func(b *testing.B) {
			inst := gen.Random(rand.New(rand.NewSource(1)), size.m, size.jobs, 0.05, 1.0)
			s := greedybalance.New()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRoundRobin(b *testing.B) {
	for _, size := range []struct{ m, jobs int }{{2, 64}, {8, 64}, {16, 256}} {
		b.Run(fmt.Sprintf("m=%d/n=%d", size.m, size.jobs), func(b *testing.B) {
			inst := gen.Random(rand.New(rand.NewSource(2)), size.m, size.jobs, 0.05, 1.0)
			s := roundrobin.New()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOptResAssignmentDense(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inst := gen.Random(rand.New(rand.NewSource(3)), 2, n, 0.05, 1.0)
			s := optres2.New()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Makespan(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOptResAssignmentPQ(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inst := gen.Random(rand.New(rand.NewSource(3)), 2, n, 0.05, 1.0)
			s := optres2.NewPQ()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Makespan(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOptResAssignment2(b *testing.B) {
	for _, size := range []struct{ m, jobs int }{{2, 8}, {3, 4}, {4, 3}} {
		b.Run(fmt.Sprintf("m=%d/n=%d", size.m, size.jobs), func(b *testing.B) {
			inst := gen.Random(rand.New(rand.NewSource(4)), size.m, size.jobs, 0.05, 1.0)
			s := optresm.New()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBranchAndBound(b *testing.B) {
	for _, size := range []struct{ m, jobs int }{{2, 10}, {3, 5}} {
		b.Run(fmt.Sprintf("m=%d/n=%d", size.m, size.jobs), func(b *testing.B) {
			inst := gen.Random(rand.New(rand.NewSource(12)), size.m, size.jobs, 0.05, 1.0)
			s := branchbound.New()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Makespan(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkChunkedWindows(b *testing.B) {
	inst := gen.Random(rand.New(rand.NewSource(13)), 3, 9, 0.05, 1.0)
	for _, w := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			s := chunked.New(w)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBruteForceOracle(b *testing.B) {
	inst := gen.Random(rand.New(rand.NewSource(5)), 3, 3, 0.05, 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bruteforce.Makespan(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteSchedule(b *testing.B) {
	inst := gen.Random(rand.New(rand.NewSource(6)), 8, 128, 0.05, 1.0)
	sched, err := greedybalance.New().Schedule(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Execute(inst, sched); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCanonicalize(b *testing.B) {
	inst := gen.Random(rand.New(rand.NewSource(7)), 6, 32, 0.05, 1.0)
	sched, err := roundrobin.New().Schedule(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Canonicalize(inst, sched); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHypergraphBuild(b *testing.B) {
	inst := gen.Random(rand.New(rand.NewSource(8)), 8, 64, 0.05, 1.0)
	sched, err := greedybalance.New().Schedule(inst)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hypergraph.Build(res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkManycoreEngine(b *testing.B) {
	for _, cores := range []int{8, 32, 64} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			tasks, err := trace.Scientific(rng, trace.DefaultScientificConfig(cores))
			if err != nil {
				b.Fatal(err)
			}
			w := manycore.NewWorkload(cores)
			w.AssignRoundRobin(tasks)
			machine := manycore.NewMachine(cores)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := manycore.NewEngine(machine).Run(w.Clone(), manycore.GreedyBalance{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPartitionGadgetSolve(b *testing.B) {
	inst, err := gen.PartitionGadget([]int64{3, 1, 2, 2}, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	s := optresm.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ------------

// BenchmarkAblationTieBreaks compares the makespans produced by the balanced
// greedy under its different tie-breaking rules (the paper's rule prefers the
// larger remaining requirement).
func BenchmarkAblationTieBreaks(b *testing.B) {
	inst := gen.RandomBimodal(rand.New(rand.NewSource(10)), 8, 64, 0.4)
	variants := []*greedybalance.Scheduler{
		greedybalance.New(),
		greedybalance.NewWithTie(greedybalance.SmallerRemaining),
		greedybalance.NewWithTie(greedybalance.ProcessorIndex),
		greedybalance.NewUnbalanced(greedybalance.LargerRemaining),
	}
	for _, v := range variants {
		b.Run(v.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sched, err := v.Schedule(inst)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(core.MustMakespan(inst, sched)), "makespan")
				}
			}
		})
	}
}

// BenchmarkAblationDenseVsPQ reports the speedup of the priority-queue DP
// variant over the dense table on an instance where most index pairs are
// unreachable (all requirement pairs fit into one step).
func BenchmarkAblationDenseVsPQ(b *testing.B) {
	inst := gen.Random(rand.New(rand.NewSource(11)), 2, 512, 0.05, 0.45)
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := optres2.New().Makespan(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := optres2.NewPQ().Makespan(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- solver subsystem benchmarks ---------------------------------------------

// hardExactInstance is an adversarial instance on which the exact search is
// substantial (tens of milliseconds serially) but bounded, so the serial vs.
// parallel branch-and-bound comparison is meaningful.
func hardExactInstance() *core.Instance {
	const m, blocks = 5, 2
	return gen.GreedyWorstCase(m, blocks, 1.0/float64(20*m*(m+1)))
}

// BenchmarkBranchBoundSerial is the single-core baseline for
// BenchmarkBranchBoundParallel.
func BenchmarkBranchBoundSerial(b *testing.B) {
	inst := hardExactInstance()
	s := branchbound.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Makespan(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBranchBoundParallel runs the work-stealing branch-and-bound with
// one worker per core on the same instance as the serial baseline; comparing
// the two shows the multi-core speedup (on a single-core machine the two
// should be on par, the queue overhead being the difference).
func BenchmarkBranchBoundParallel(b *testing.B) {
	inst := hardExactInstance()
	s := branchbound.NewParallel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Makespan(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPortfolio races the default portfolio on a mid-size instance; the
// sub-benchmark shards a stream of solves across goroutines with
// b.SetParallelism, exercising the portfolio under concurrent callers as the
// experiment harness does.
func BenchmarkPortfolio(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	inst := gen.Random(rng, 3, 6, 0.05, 1.0)
	b.Run("single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := solver.NewDefaultPortfolio().Solve(context.Background(), inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-callers", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(4)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, _, err := solver.NewDefaultPortfolio().Solve(context.Background(), inst); err != nil {
					b.Errorf("portfolio: %v", err)
					return
				}
			}
		})
	})
}

// BenchmarkParallelEach shards a batch of instances across the worker pool,
// the experiment-scale throughput path of the solver subsystem.
func BenchmarkParallelEach(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	var insts []*core.Instance
	for i := 0; i < 32; i++ {
		insts = append(insts, gen.Random(rng, 3, 8, 0.05, 1.0))
	}
	newSolver := func() solver.Solver { return solver.Adapt(greedybalance.New()) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outcomes := solver.ParallelEach(context.Background(), newSolver, insts, 0)
		for _, out := range outcomes {
			if out.Err != nil {
				b.Fatal(out.Err)
			}
		}
	}
}

// BenchmarkFingerprint hashes a mid-size instance into its canonical
// fingerprint, the memo-cache key computed on every serving-layer request.
func BenchmarkFingerprint(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	inst := gen.Random(rng, 8, 64, 0.05, 1.0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = inst.Fingerprint()
	}
}

// BenchmarkCacheEvaluate measures the serving hot path: the first iteration
// pays for one real solve, every further iteration is a fingerprint plus a
// sharded-LRU hit, which is what a production cache mostly does.
func BenchmarkCacheEvaluate(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	inst := gen.Random(rng, 4, 16, 0.05, 1.0)
	cache := solver.NewCache(16, 1024)
	s := solver.Adapt(greedybalance.New())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cache.Evaluate(context.Background(), s, inst); err != nil {
			b.Fatal(err)
		}
	}
}
