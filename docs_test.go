package crsharing

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestDocLinks is the docs-hygiene link check: every file or directory
// referenced from README.md and ARCHITECTURE.md — markdown link targets and
// inline-code path references — must exist in the repository, so the docs
// cannot silently rot as the tree moves.
func TestDocLinks(t *testing.T) {
	var (
		// [text](target) with a relative target.
		mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)
		// Inline `code` spans.
		codeSpan = regexp.MustCompile("`([^`\n]+)`")
		// A span counts as a path reference when it is rooted in a known
		// top-level directory or names a .go/.md file.
		pathLike = regexp.MustCompile(`^(?:(?:cmd|internal|examples)(?:/[A-Za-z0-9_.-]+)*|[A-Za-z0-9][A-Za-z0-9_.-]*\.(?:go|md))$`)
		fence    = regexp.MustCompile("(?ms)^```.*?^```")
	)

	for _, doc := range []string{"README.md", "ARCHITECTURE.md"} {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		text := fence.ReplaceAllString(string(raw), "")

		check := func(ref string) {
			if _, err := os.Stat(ref); err != nil {
				t.Errorf("%s references %q, which does not exist", doc, ref)
			}
		}
		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target != "" {
				check(target)
			}
		}
		for _, m := range codeSpan.FindAllStringSubmatch(text, -1) {
			span := strings.TrimPrefix(strings.TrimSpace(m[1]), "./")
			if pathLike.MatchString(span) {
				check(span)
			}
		}
	}
}
