package solver

import (
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"crsharing/internal/core"
	"crsharing/internal/numeric"
)

// The neighbor index sits beside the exact fingerprint map: where the memo
// cache answers "have I solved exactly this instance", the index answers
// "have I solved something close". Closeness is a coarse shape key — the
// requirement multiset bucketed into shapeReqBuckets classes, pooled across
// processors — so the near-duplicate traffic the online workload produces
// (drop a job, append a job, nudge a requirement, reorder a queue) lands on
// the same or an adjacent key as its base instance. A hit is never served as
// a result; its schedule is adapted (AdaptSchedule) into a warm-start hint
// that only tightens the kernel's pruning bound, so the index can be as
// approximate as it likes without ever affecting correctness.

const (
	// shapeReqBuckets buckets job requirements by floor(req*8): req ∈ [0,1]
	// maps to buckets 0..8. Wide enough that a small requirement nudge
	// usually stays put, narrow enough that unrelated instances spread out.
	shapeReqBuckets = 9
	// neighborRingSize is how many recent entries each shape key remembers.
	neighborRingSize = 4
	// neighborMaxKeys bounds the number of shape keys the index holds; the
	// oldest key is dropped whole when the cap is reached.
	neighborMaxKeys = 1024
)

// shape is the coarse description of an instance the index keys on.
type shape struct {
	procs int
	jobs  [shapeReqBuckets]int32 // job count per requirement bucket
}

func shapeOf(inst *core.Instance) shape {
	s := shape{procs: inst.NumProcessors()}
	for i := 0; i < inst.NumProcessors(); i++ {
		for j := 0; j < inst.NumJobs(i); j++ {
			b := int(inst.Job(i, j).Req * (shapeReqBuckets - 1))
			if b < 0 {
				b = 0
			}
			if b >= shapeReqBuckets {
				b = shapeReqBuckets - 1
			}
			s.jobs[b]++
		}
	}
	return s
}

// key hashes the shape together with the solver name (hints are only valid
// for the solver whose cache they came from — a heuristic's schedule is a
// fine bound for an exact solver, but keeping the keyspace per-solver
// matches the memo cache's layout and its hit accounting).
func (s shape) key(solverName string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(solverName))
	var buf [4 + 4*shapeReqBuckets]byte
	buf[0] = byte(s.procs)
	buf[1] = byte(s.procs >> 8)
	buf[2] = byte(s.procs >> 16)
	buf[3] = byte(s.procs >> 24)
	for b, n := range s.jobs {
		buf[4+4*b] = byte(n)
		buf[5+4*b] = byte(n >> 8)
		buf[6+4*b] = byte(n >> 16)
		buf[7+4*b] = byte(n >> 24)
	}
	h.Write(buf[:])
	return h.Sum64()
}

// probeKeys returns the shape keys a lookup should try: the exact key first,
// then every single-job perturbation (one bucket ±1), which is where an
// added, dropped, or cross-bucket-nudged job lands.
func (s shape) probeKeys(solverName string) []uint64 {
	keys := make([]uint64, 0, 1+2*shapeReqBuckets)
	keys = append(keys, s.key(solverName))
	for b := 0; b < shapeReqBuckets; b++ {
		v := s.jobs[b]
		s.jobs[b] = v + 1
		keys = append(keys, s.key(solverName))
		if v > 0 {
			s.jobs[b] = v - 1
			keys = append(keys, s.key(solverName))
		}
		s.jobs[b] = v
	}
	return keys
}

// neighborEntry pairs a solved instance with its evaluation. Both are the
// cache's immutable shared values; the index holds its own references, so an
// LRU eviction from the exact map does not invalidate a neighbor hit.
type neighborEntry struct {
	inst *core.Instance
	ev   *Evaluation
}

type neighborRing struct {
	entries [neighborRingSize]*neighborEntry
	next    int
}

// neighborIndex maps shape keys to rings of recent entries. It has one
// mutex of its own rather than reusing the cache shards': shape-key sharding
// and fingerprint sharding do not line up, and the index is touched once per
// fresh solve (insert) and once per miss (lookup), never on the hit path.
type neighborIndex struct {
	mu    sync.Mutex
	rings map[uint64]*neighborRing
	fifo  []uint64 // insertion order of keys, for whole-key eviction
}

func newNeighborIndex() *neighborIndex {
	return &neighborIndex{rings: make(map[uint64]*neighborRing)}
}

func (n *neighborIndex) add(key uint64, inst *core.Instance, ev *Evaluation) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ring, ok := n.rings[key]
	if !ok {
		for len(n.fifo) >= neighborMaxKeys {
			delete(n.rings, n.fifo[0])
			n.fifo = n.fifo[1:]
		}
		ring = &neighborRing{}
		n.rings[key] = ring
		n.fifo = append(n.fifo, key)
	}
	ring.entries[ring.next] = &neighborEntry{inst: inst, ev: ev}
	ring.next = (ring.next + 1) % neighborRingSize
}

// lookup returns the key's entries newest-first.
func (n *neighborIndex) lookup(key uint64) []*neighborEntry {
	n.mu.Lock()
	defer n.mu.Unlock()
	ring, ok := n.rings[key]
	if !ok {
		return nil
	}
	out := make([]*neighborEntry, 0, neighborRingSize)
	for k := 0; k < neighborRingSize; k++ {
		e := ring.entries[(ring.next-1-k+2*neighborRingSize)%neighborRingSize]
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}

// rememberNeighbor files a freshly solved evaluation under its shape key.
func (c *Cache) rememberNeighbor(solverName string, inst *core.Instance, ev *Evaluation) {
	if ev == nil || ev.Schedule == nil {
		return
	}
	c.neighbors.add(shapeOf(inst).key(solverName), inst, ev)
}

// warmHintMaxAdapts bounds the adaptation attempts per lookup: each attempt
// executes a schedule against the instance, so the miss path stays cheap even
// when many neighbors share a shape key.
const warmHintMaxAdapts = 8

// WarmHint searches the neighbor index for a solved instance close to inst
// and adapts its schedule into a feasible warm-start hint. It is meant for
// the miss path: the caller already knows the exact cache has no entry. All
// candidate neighbors (bounded) are adapted and the shortest result wins —
// the hint is only useful when it beats the kernel's own greedy seed, so the
// extra executions buy acceptance rate. The returned schedule is freshly
// built and owned by the caller; ok is false when no neighbor's schedule
// could be adapted.
func (c *Cache) WarmHint(solverName string, inst *core.Instance) (*core.Schedule, bool) {
	seen := make(map[uint64]bool, 1+2*shapeReqBuckets)
	var best *core.Schedule
	attempts := 0
	for _, key := range shapeOf(inst).probeKeys(solverName) {
		if seen[key] {
			continue
		}
		seen[key] = true
		for _, e := range c.neighbors.lookup(key) {
			if attempts >= warmHintMaxAdapts {
				return best, best != nil
			}
			attempts++
			if adapted, ok := AdaptSchedule(inst, e.ev.Schedule); ok {
				if best == nil || adapted.Steps() < best.Steps() {
					best = adapted
				}
			}
		}
	}
	return best, best != nil
}

// AdaptSchedule fits a schedule solved for a neighboring instance onto inst.
// Two cases fall out of a single execution of the schedule against inst:
//
//   - The schedule already finishes every job (a job was dropped or finished,
//     a requirement was nudged down, queues were reordered compatibly): the
//     surplus shares become waste and the schedule is returned trimmed to its
//     achieved makespan.
//   - The schedule runs out of steps with work left (a job was added, a
//     requirement was nudged up): the execution's final state says exactly
//     which job each processor is on and how much work it has left, and a
//     greedy completion is appended — full-requirement shares, processors
//     with the longest remaining tail first.
//
// The adapted schedule is re-executed before it is returned, so ok == true
// guarantees a feasible, finishing schedule; the caller (a kernel accepting
// a warm start) still derives the makespan itself. The input schedule is
// never mutated.
func AdaptSchedule(inst *core.Instance, sched *core.Schedule) (*core.Schedule, bool) {
	if inst == nil || sched == nil {
		return nil, false
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		return nil, false
	}
	m := inst.NumProcessors()
	if res.Finished() {
		out := core.NewSchedule(res.Makespan(), m)
		for t := 0; t < res.Makespan(); t++ {
			for i := 0; i < m; i++ {
				out.Alloc[t][i] = sched.Share(t, i)
			}
		}
		return out, true
	}
	out := extendSchedule(inst, sched, res)
	if out == nil {
		return nil, false
	}
	if check, err := core.Execute(inst, out); err != nil || !check.Finished() {
		return nil, false
	}
	return out, true
}

// extendSchedule appends a greedy completion for the work sched leaves
// unfinished on inst. The extension gives each processor its active job's
// full requirement whenever it fits in the step (so each served step
// completes one full-speed step of that job), serving processors with more
// remaining steps first. The per-processor step counts are derived from the
// execution's final snapshot; zero-requirement jobs (whose partial progress
// the snapshot cannot express) are conservatively restarted, which at worst
// pads the tail — the caller re-executes the result, so the true makespan is
// always re-derived. Returns nil when the completion fails to converge.
func extendSchedule(inst *core.Instance, sched *core.Schedule, res *core.Result) *core.Schedule {
	m := inst.NumProcessors()
	T := sched.Steps()

	job := make([]int, m)       // current job index per processor
	stepsLeft := make([]int, m) // full-requirement steps to finish it
	budget := 0
	for i := 0; i < m; i++ {
		job[i] = res.JobsDone(T, i)
		if job[i] >= inst.NumJobs(i) {
			continue
		}
		j := inst.Job(i, job[i])
		if j.Req <= numeric.Eps {
			stepsLeft[i] = j.Steps()
		} else {
			stepsLeft[i] = int(math.Ceil(res.RemainingWork(T, i)/j.Req - numeric.Eps))
			if stepsLeft[i] < 1 {
				stepsLeft[i] = 1
			}
		}
		budget += stepsLeft[i]
		for k := job[i] + 1; k < inst.NumJobs(i); k++ {
			budget += inst.Job(i, k).Steps()
		}
	}

	out := core.NewSchedule(T, m)
	for t := 0; t < T; t++ {
		for i := 0; i < m; i++ {
			out.Alloc[t][i] = sched.Share(t, i)
		}
	}

	remSteps := func(i int) int {
		if job[i] >= inst.NumJobs(i) {
			return 0
		}
		n := stepsLeft[i]
		for k := job[i] + 1; k < inst.NumJobs(i); k++ {
			n += inst.Job(i, k).Steps()
		}
		return n
	}
	order := make([]int, m)
	shares := make([]float64, m)
	for step := 0; step <= budget+m; step++ {
		active := 0
		for i := 0; i < m; i++ {
			if job[i] < inst.NumJobs(i) {
				order[active] = i
				active++
			}
		}
		if active == 0 {
			return out
		}
		ord := order[:active]
		sort.SliceStable(ord, func(a, b int) bool { return remSteps(ord[a]) > remSteps(ord[b]) })
		for i := range shares {
			shares[i] = 0
		}
		used := 0.0
		for _, i := range ord {
			req := inst.Job(i, job[i]).Req
			served := false
			if req <= numeric.Eps || numeric.Leq(used+req, 1) {
				shares[i] = req
				used += req
				served = true
			}
			if served {
				stepsLeft[i]--
				if stepsLeft[i] <= 0 {
					job[i]++
					if job[i] < inst.NumJobs(i) {
						stepsLeft[i] = inst.Job(i, job[i]).Steps()
					}
				}
			}
		}
		out.AppendStep(shares)
	}
	return nil // did not converge within the step budget
}
