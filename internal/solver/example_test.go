package solver_test

import (
	"context"
	"fmt"

	"crsharing/internal/algo/branchbound"
	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/algo/roundrobin"
	"crsharing/internal/core"
	"crsharing/internal/solver"
)

// ExampleCache_Evaluate shows the memo cache's contract: the first call
// solves, the repeat is answered from memory, and both return the same
// evaluation.
func ExampleCache_Evaluate() {
	cache := solver.NewCache(4, 64)
	s, err := solver.Default().New("greedy-balance")
	if err != nil {
		panic(err)
	}
	inst := core.NewInstance(
		[]float64{0.5, 0.5, 0.5},
		[]float64{1.0},
	)

	first, src1, _ := cache.Evaluate(context.Background(), s, inst)
	repeat, src2, _ := cache.Evaluate(context.Background(), s, inst)
	fmt.Println(src1, "makespan", first.Makespan)
	fmt.Println(src2, "makespan", repeat.Makespan)
	fmt.Println("entries cached:", cache.Stats().Entries)
	// Output:
	// solve makespan 3
	// cache makespan 3
	// entries cached: 1
}

// ExamplePortfolio races two heuristics against an exact solver and keeps
// the best schedule any member produces. On this instance both heuristics
// need five steps but the optimum is four, so the branch-and-bound member
// wins the race.
func ExamplePortfolio() {
	p := solver.NewPortfolio(
		solver.Adapt(roundrobin.New()),
		solver.Adapt(greedybalance.New()),
		solver.Adapt(branchbound.New()),
	)
	inst := core.NewInstance(
		[]float64{0.6, 0.4, 0.7},
		[]float64{0.5, 0.6},
		[]float64{0.3, 0.9},
	)

	sched, stats, err := p.Solve(context.Background(), inst)
	if err != nil {
		panic(err)
	}
	res, _ := core.Execute(inst, sched)
	fmt.Println("winner:", stats.Winner)
	fmt.Println("makespan:", res.Makespan())
	fmt.Println("members raced:", len(stats.Candidates))
	// Output:
	// winner: branch-and-bound
	// makespan: 4
	// members raced: 3
}
