package solver

import (
	"context"
	"testing"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
)

// nbrBase is the base instance the neighbor tests mutate: three processors,
// mixed requirements spread over several shape buckets.
func nbrBase() *core.Instance {
	return core.NewInstance(
		[]float64{0.9, 0.3, 0.5},
		[]float64{0.2, 0.6},
		[]float64{0.7, 0.1},
	)
}

func TestShapeOfBucketsRequirements(t *testing.T) {
	s := shapeOf(nbrBase())
	if s.procs != 3 {
		t.Fatalf("procs = %d, want 3", s.procs)
	}
	total := int32(0)
	for _, n := range s.jobs {
		total += n
	}
	if total != 7 {
		t.Fatalf("bucketed %d jobs, want 7", total)
	}
	// floor(req*8): 0.9→7, 0.3→2, 0.5→4, 0.2→1, 0.6→4, 0.7→5, 0.1→0.
	want := map[int]int32{7: 1, 2: 1, 4: 2, 1: 1, 5: 1, 0: 1}
	for b, n := range want {
		if s.jobs[b] != n {
			t.Fatalf("bucket %d = %d, want %d", b, s.jobs[b], n)
		}
	}
}

// TestProbeKeysReachSingleJobMutations pins the index's core invariant: the
// probe set of a single-job mutant contains the base instance's exact key,
// so a mutant's lookup finds what the base's solve filed.
func TestProbeKeysReachSingleJobMutations(t *testing.T) {
	base := nbrBase()
	baseKey := shapeOf(base).key("s")

	dropped := base.Clone()
	dropped.Procs[0] = dropped.Procs[0][1:] // drop the 0.9 job

	added := base.Clone()
	added.Procs[1] = append(added.Procs[1], core.UnitJob(0.4))

	sameBucket := base.Clone()
	sameBucket.Procs[0][1].Req = 0.34 // 0.3 → 0.34 stays in bucket 2

	for name, mutant := range map[string]*core.Instance{
		"dropped": dropped, "added": added, "nudged": sameBucket,
	} {
		found := false
		for _, k := range shapeOf(mutant).probeKeys("s") {
			if k == baseKey {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s mutant's probe keys miss the base key", name)
		}
	}
}

func solveFor(t *testing.T, inst *core.Instance) *core.Schedule {
	t.Helper()
	sched, err := greedybalance.New().Schedule(inst)
	if err != nil {
		t.Fatalf("greedy schedule: %v", err)
	}
	return sched
}

func TestAdaptScheduleTrimsWhenStillFinishing(t *testing.T) {
	base := nbrBase()
	sched := solveFor(t, base)
	// Nudge a requirement down: the old schedule over-provisions but still
	// finishes, so the adaptation is a trim to the executed makespan.
	variant := base.Clone()
	variant.Procs[0][0].Req = 0.85
	adapted, ok := AdaptSchedule(variant, sched)
	if !ok {
		t.Fatalf("AdaptSchedule failed on a still-feasible schedule")
	}
	res, err := core.Execute(variant, adapted)
	if err != nil || !res.Finished() {
		t.Fatalf("adapted schedule does not finish: %v", err)
	}
	if adapted.Steps() != res.Makespan() {
		t.Fatalf("adapted schedule has %d steps, executed makespan %d (not trimmed)", adapted.Steps(), res.Makespan())
	}
}

func TestAdaptScheduleExtendsForAddedWork(t *testing.T) {
	base := nbrBase()
	sched := solveFor(t, base)
	variant := base.Clone()
	variant.Procs[2] = append(variant.Procs[2], core.UnitJob(0.5))
	adapted, ok := AdaptSchedule(variant, sched)
	if !ok {
		t.Fatalf("AdaptSchedule failed to extend for an added job")
	}
	res, err := core.Execute(variant, adapted)
	if err != nil || !res.Finished() {
		t.Fatalf("extended schedule does not finish: %v", err)
	}
	if adapted.Steps() < sched.Steps() {
		t.Fatalf("extension shrank the schedule: %d < %d", adapted.Steps(), sched.Steps())
	}
}

func TestAdaptScheduleRejectsUnusable(t *testing.T) {
	base := nbrBase()
	sched := solveFor(t, base)
	if _, ok := AdaptSchedule(nil, sched); ok {
		t.Fatal("adapted a nil instance")
	}
	if _, ok := AdaptSchedule(base, nil); ok {
		t.Fatal("adapted a nil schedule")
	}
	narrow := core.NewInstance([]float64{0.5}) // fewer processors than the schedule
	if adapted, ok := AdaptSchedule(narrow, sched); ok {
		// A wider schedule can legally cover a narrower instance; if the
		// adaptation accepts it, the result must actually finish.
		if res, err := core.Execute(narrow, adapted); err != nil || !res.Finished() {
			t.Fatalf("accepted adaptation does not finish: %v", err)
		}
	}
}

// TestWarmHintFromNeighborIndex is the index end to end: a fresh solve files
// its evaluation, and a near-duplicate's miss-path lookup adapts it into a
// feasible hint.
func TestWarmHintFromNeighborIndex(t *testing.T) {
	cache := NewCache(2, 16)
	s := Adapt(greedybalance.New())
	base := nbrBase()
	if _, src, err := cache.Evaluate(context.Background(), s, base); err != nil || src != SourceSolve {
		t.Fatalf("seed solve: src=%v err=%v", src, err)
	}

	variant := base.Clone()
	variant.Procs[1] = variant.Procs[1][1:] // drop one job: shape key one bucket off
	hint, ok := cache.WarmHint(s.Name(), variant)
	if !ok {
		t.Fatalf("WarmHint found nothing for a single-job mutant")
	}
	res, err := core.Execute(variant, hint)
	if err != nil || !res.Finished() {
		t.Fatalf("warm hint is not feasible for the variant: %v", err)
	}

	// The hint must be owned by the caller, not an alias of the cached
	// evaluation's schedule.
	if ev, ok := cache.Lookup(s.Name(), base); ok && ev.Schedule == hint {
		t.Fatal("WarmHint returned the cached schedule itself")
	}
}

func TestWarmHintEmptyIndex(t *testing.T) {
	cache := NewCache(1, 4)
	if _, ok := cache.WarmHint("nobody", nbrBase()); ok {
		t.Fatal("WarmHint produced a hint from an empty index")
	}
}

// TestNeighborIndexEviction bounds the index: after filing far more keys than
// neighborMaxKeys, the oldest keys are gone and lookups on them are empty.
func TestNeighborIndexEviction(t *testing.T) {
	idx := newNeighborIndex()
	ev := &Evaluation{Schedule: core.NewSchedule(1, 1)}
	inst := core.NewInstance([]float64{0.5})
	for k := 0; k < neighborMaxKeys+10; k++ {
		idx.add(uint64(k), inst, ev)
	}
	if got := idx.lookup(0); got != nil {
		t.Fatalf("oldest key survived eviction: %v", got)
	}
	if got := idx.lookup(uint64(neighborMaxKeys + 9)); len(got) != 1 {
		t.Fatalf("newest key missing after eviction: %v", got)
	}
	if n := len(idx.rings); n > neighborMaxKeys {
		t.Fatalf("index holds %d keys, cap is %d", n, neighborMaxKeys)
	}
}
