package solver

import (
	"context"
	"math/rand"
	"testing"

	"crsharing/internal/algo/bruteforce"
	"crsharing/internal/core"
	"crsharing/internal/gen"
)

// FuzzPortfolioAgainstBruteforce generates tiny random instances and
// cross-checks the portfolio makespan against the independent brute-force
// optimum oracle. The portfolio contains exact members, so on every instance
// the oracle accepts the two must agree exactly.
func FuzzPortfolioAgainstBruteforce(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(2))
	f.Add(int64(20140623), uint8(3), uint8(3))
	f.Add(int64(42), uint8(4), uint8(2))
	f.Add(int64(-7), uint8(2), uint8(4))

	f.Fuzz(func(t *testing.T, seed int64, mRaw, jobsRaw uint8) {
		// Keep the brute-force oracle in the milliseconds: at most 3x3 jobs.
		m := 2 + int(mRaw)%2       // 2..3 processors
		jobs := 1 + int(jobsRaw)%3 // 1..3 jobs per processor
		rng := rand.New(rand.NewSource(seed))
		inst := gen.Random(rng, m, jobs, 0.05, 1.0)

		want, err := bruteforce.Makespan(inst)
		if err != nil {
			t.Skip() // oracle rejects the instance
		}

		sched, stats, err := NewDefaultPortfolio().Solve(context.Background(), inst)
		if err != nil {
			t.Fatalf("portfolio: %v\n%v", err, inst)
		}
		res, err := core.Execute(inst, sched)
		if err != nil {
			t.Fatalf("portfolio schedule invalid: %v\n%v", err, inst)
		}
		if !res.Finished() {
			t.Fatalf("portfolio schedule incomplete\n%v", inst)
		}
		if got := res.Makespan(); got != want {
			t.Fatalf("portfolio (winner %s) makespan %d, bruteforce optimum %d\n%v",
				stats.Winner, got, want, inst)
		}
	})
}
