package solver

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"crsharing/internal/algo/branchbound"
	"crsharing/internal/algo/bruteforce"
	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/gen"
)

// corpus returns the small-instance corpus used by the cross-solver
// equivalence suite: random unit-size instances in the size range every
// registered solver (that accepts the processor count) can handle.
func corpus() []*core.Instance {
	rng := rand.New(rand.NewSource(20140623))
	var insts []*core.Instance
	for trial := 0; trial < 15; trial++ {
		m := 2 + rng.Intn(2)
		jobs := 2 + rng.Intn(2)
		insts = append(insts, gen.Random(rng, m, jobs, 0.05, 1.0))
	}
	insts = append(insts, gen.Figure1(), gen.Figure2(), gen.Figure3(6))
	return insts
}

// TestPortfolioNotWorseThanAnyMember is the acceptance property of the
// portfolio: on every corpus instance its makespan is at most the makespan of
// every individual registered solver that accepts the instance.
func TestPortfolioNotWorseThanAnyMember(t *testing.T) {
	reg := Default()
	ctx := context.Background()
	for ci, inst := range corpus() {
		best := -1
		bestName := ""
		for _, name := range reg.Names() {
			if name == "portfolio" {
				continue
			}
			s, err := reg.New(name)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := Evaluate(ctx, s, inst)
			if err != nil {
				continue // solver rejects the instance (e.g. m != 2 for the DP)
			}
			if best < 0 || ev.Makespan < best {
				best, bestName = ev.Makespan, name
			}
		}
		if best < 0 {
			t.Fatalf("corpus %d: no individual solver accepted the instance", ci)
		}
		port, err := reg.New("portfolio")
		if err != nil {
			t.Fatal(err)
		}
		ev, err := Evaluate(ctx, port, inst)
		if err != nil {
			t.Fatalf("corpus %d: portfolio: %v", ci, err)
		}
		if ev.Makespan > best {
			t.Fatalf("corpus %d: portfolio makespan %d worse than %s's %d", ci, ev.Makespan, bestName, best)
		}
	}
}

// TestPortfolioMatchesBruteforce pins the portfolio to the independent
// optimum oracle on the corpus: the default portfolio contains exact members,
// so its result must be optimal wherever the oracle applies.
func TestPortfolioMatchesBruteforce(t *testing.T) {
	ctx := context.Background()
	for ci, inst := range corpus() {
		if !inst.IsUnitSize() || inst.TotalJobs() > 12 {
			continue
		}
		want, err := bruteforce.Makespan(inst)
		if err != nil {
			continue
		}
		ev, err := Evaluate(ctx, NewDefaultPortfolio(), inst)
		if err != nil {
			t.Fatalf("corpus %d: %v", ci, err)
		}
		if ev.Makespan != want {
			t.Fatalf("corpus %d: portfolio makespan %d, bruteforce optimum %d\n%v", ci, ev.Makespan, want, inst)
		}
	}
}

// TestExactPortfolioRace checks the exact-only racing portfolio against the
// oracle and confirms the winner is one of its members.
func TestExactPortfolioRace(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.Intn(2)
		inst := gen.Random(rng, m, 2+rng.Intn(2), 0.05, 1.0)
		want, err := bruteforce.Makespan(inst)
		if err != nil {
			t.Fatal(err)
		}
		sched, stats, err := NewExactPortfolio(0).Solve(ctx, inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := core.Execute(inst, sched)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Makespan() != want {
			t.Fatalf("trial %d: exact portfolio makespan %d, want %d", trial, res.Makespan(), want)
		}
		if stats.Solver != "portfolio" {
			t.Fatalf("trial %d: requested solver not reported: %+v", trial, stats)
		}
		if stats.Winner == "" || stats.Winner == "portfolio" {
			t.Fatalf("trial %d: winner not reported: %+v", trial, stats)
		}
	}
}

// hardInstance is an adversarial instance whose exact search runs for many
// minutes serially, used to guarantee that cancellation lands mid-solve.
func hardInstance() *core.Instance {
	const m, blocks = 7, 3
	return gen.GreedyWorstCase(m, blocks, 1.0/float64(20*m*(m+1)))
}

// TestPortfolioCancelMidSolveNoLeak cancels a portfolio mid-solve and asserts
// a prompt return and no leaked goroutines.
func TestPortfolioCancelMidSolveNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	port := NewPortfolio(
		Adapt(branchbound.New()),
		Adapt(branchbound.NewParallel()),
		Adapt(greedybalance.New()),
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The greedy member succeeds instantly; the branch-and-bound members
		// must be cut short by the cancellation. The portfolio still returns
		// the greedy schedule.
		sched, _, err := port.Solve(ctx, hardInstance())
		if err != nil {
			t.Errorf("portfolio failed: %v", err)
			return
		}
		if sched == nil || sched.Steps() == 0 {
			t.Error("portfolio returned empty schedule")
		}
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("portfolio did not return promptly after cancellation")
	}

	// All member goroutines must be gone shortly after Solve returned.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPortfolioDeadline runs the portfolio of only-slow members against a
// deadline and asserts it reports the context error.
func TestPortfolioDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	port := NewPortfolio(Adapt(branchbound.NewParallel()))
	start := time.Now()
	_, _, err := port.Solve(ctx, hardInstance())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("portfolio took %v to honour a 50ms deadline", elapsed)
	}
}

// TestParallelEach shards a batch across workers and checks the outcomes
// against solving each instance serially.
func TestParallelEach(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var insts []*core.Instance
	for i := 0; i < 24; i++ {
		insts = append(insts, gen.Random(rng, 2+rng.Intn(3), 2+rng.Intn(4), 0.05, 1.0))
	}
	newSolver := func() Solver { return Adapt(greedybalance.New()) }

	want := make([]int, len(insts))
	for i, inst := range insts {
		ev, err := Evaluate(context.Background(), newSolver(), inst)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ev.Makespan
	}

	for _, workers := range []int{0, 1, 3, 64} {
		outcomes := ParallelEach(context.Background(), newSolver, insts, workers)
		if len(outcomes) != len(insts) {
			t.Fatalf("workers=%d: got %d outcomes, want %d", workers, len(outcomes), len(insts))
		}
		for i, out := range outcomes {
			if out.Err != nil {
				t.Fatalf("workers=%d instance %d: %v", workers, i, out.Err)
			}
			if out.Index != i {
				t.Fatalf("workers=%d: outcome %d has index %d", workers, i, out.Index)
			}
			if out.Makespan != want[i] {
				t.Fatalf("workers=%d instance %d: makespan %d, want %d", workers, i, out.Makespan, want[i])
			}
		}
	}
}

// TestParallelEachCancelled pre-cancels the context: every outcome must carry
// the context error and the call must not hang.
func TestParallelEachCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	insts := []*core.Instance{gen.Figure1(), gen.Figure2()}
	outcomes := ParallelEach(ctx, func() Solver { return Adapt(greedybalance.New()) }, insts, 2)
	for i, out := range outcomes {
		if !errors.Is(out.Err, context.Canceled) {
			t.Fatalf("instance %d: got %v, want context.Canceled", i, out.Err)
		}
		if !out.Skipped {
			t.Fatalf("instance %d: fail-fast outcome must be marked Skipped", i)
		}
	}
}

// TestPortfolioTimeoutSemantics pins down the best-effort contract of
// Portfolio.Solve: a member result obtained before the deadline is returned
// with a nil error even though the parent context has expired by the time
// Solve returns, while a portfolio whose members were all cancelled reports
// the context error.
func TestPortfolioTimeoutSemantics(t *testing.T) {
	inst := core.NewInstance([]float64{0.5})
	sched := core.NewSchedule(1, 1)
	sched.Alloc[0][0] = 0.5

	t.Run("member finished before deadline", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		finished := make(chan struct{})
		fast := solveFunc{name: "fast", fn: func(context.Context, *core.Instance) (*core.Schedule, error) {
			close(finished)
			return sched.Clone(), nil
		}}
		slow := solveFunc{name: "slow", fn: func(ctx context.Context, _ *core.Instance) (*core.Schedule, error) {
			<-finished // the fast member has returned its schedule
			cancel()   // now the parent context expires mid-race
			<-ctx.Done()
			return nil, ctx.Err()
		}}
		got, st, err := NewPortfolio(fast, slow).Solve(ctx, inst)
		if err != nil {
			t.Fatalf("got %v, want nil error despite expired context", err)
		}
		if got == nil || st.Winner != "fast" {
			t.Fatalf("winner = %q (schedule %v), want fast", st.Winner, got)
		}
		if ctx.Err() == nil {
			t.Fatal("test invariant: parent context should be expired")
		}
	})

	t.Run("all members cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		blocked := solveFunc{name: "blocked", fn: func(ctx context.Context, _ *core.Instance) (*core.Schedule, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}}
		_, _, err := NewPortfolio(blocked, blocked).Solve(ctx, inst)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	})
}

// solveFunc adapts a function to the Solver interface for tests.
type solveFunc struct {
	name string
	fn   func(context.Context, *core.Instance) (*core.Schedule, error)
}

func (s solveFunc) Name() string { return s.name }

func (s solveFunc) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, Stats, error) {
	sched, err := s.fn(ctx, inst)
	return sched, Stats{Solver: s.name}, err
}

// TestRegistry covers lookup, unknown names and duplicate registration.
func TestRegistry(t *testing.T) {
	reg := Default()
	names := reg.Names()
	if len(names) < 10 {
		t.Fatalf("expected at least 10 registered solvers, got %v", names)
	}
	for _, want := range []string{"greedy-balance", "branch-and-bound-parallel", "opt-res-assignment-2-parallel", "portfolio"} {
		if _, err := reg.New(want); err != nil {
			t.Fatalf("missing %q: %v", want, err)
		}
	}
	if _, err := reg.New("no-such-solver"); err == nil {
		t.Fatal("expected error for unknown solver")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	reg.Register("greedy-balance", func() Solver { return Adapt(greedybalance.New()) })
}

// TestRegistryNamesMatchSolvers guards the explicit registration names of
// Default() against drifting from the solvers' own Name() methods.
func TestRegistryNamesMatchSolvers(t *testing.T) {
	reg := Default()
	for _, name := range reg.Names() {
		s, err := reg.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Name(); got != name {
			t.Errorf("registered as %q but solver names itself %q", name, got)
		}
	}
}

// TestRegistryIsLazy confirms Register stores the factory without invoking
// it: building a solver per registration was the bug that made Default()
// construct and discard a full portfolio.
func TestRegistryIsLazy(t *testing.T) {
	reg := NewRegistry()
	built := 0
	reg.Register("lazy", func() Solver {
		built++
		return Adapt(greedybalance.New())
	})
	if built != 0 {
		t.Fatalf("factory invoked %d times during registration, want 0", built)
	}
	if _, err := reg.New("lazy"); err != nil {
		t.Fatal(err)
	}
	if built != 1 {
		t.Fatalf("factory invoked %d times after New, want 1", built)
	}
}

// TestAdapterForwardsContext confirms that a context-aware scheduler wrapped
// by Adapt honours cancellation.
func TestAdapterForwardsContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, err := Adapt(branchbound.New()).Solve(ctx, hardInstance())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}
