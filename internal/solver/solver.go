// Package solver unifies every scheduling algorithm of this repository behind
// a single context-aware interface and adds the concurrency layer on top of
// it: a registry the CLIs select solvers from, a parallel portfolio runner
// that races several solvers on one instance and keeps the best schedule, and
// a ParallelEach helper that shards a batch of instances across a worker
// pool for experiment-scale throughput.
//
// The packages under internal/algo stay synchronous and single-purpose; this
// package adapts them (algo.Scheduler -> Solver) and recognises the ones that
// natively support cooperative cancellation through a ScheduleContext method
// (branch-and-bound, the configuration enumeration, the chunked heuristic and
// their parallel variants).
package solver

import (
	"context"
	"fmt"
	"time"

	"crsharing/internal/algo"
	"crsharing/internal/core"
	"crsharing/internal/progress"
)

// Stats carries bookkeeping about one Solve call.
type Stats struct {
	// Solver is the name of the solver that was asked to solve — for a
	// portfolio this is "portfolio", never a member name.
	Solver string
	// Winner is the name of the solver that actually produced the returned
	// schedule: the winning member for a portfolio, the solver itself
	// otherwise.
	Winner string
	// Elapsed is the wall-clock duration of the Solve call.
	Elapsed time.Duration
	// Nodes counts the search nodes (branch-and-bound) or configurations
	// (enumeration algorithms) the solve explored, summed over every nested
	// kernel; it is zero for the polynomial-time heuristics. The kernels
	// report through internal/progress counters installed by the adapter.
	Nodes int64
	// Incumbents counts the improving solutions reported while the solve ran.
	Incumbents int64
	// KernelAllocs counts the heap-allocation events the search kernels
	// recorded on their hot path (scratch growth and work handoffs, reported
	// through internal/progress); steady-state exact solves report zero or
	// near-zero. Together with Nodes it yields allocs-per-node telemetry.
	KernelAllocs int64
	// WarmStart reports that a kernel accepted a warm-start hint attached to
	// the solve context (see progress.WithWarmStart) and used it to tighten
	// its pruning bound or seed its incumbent.
	WarmStart bool
	// SeedMakespan is the validated makespan of the accepted warm-start hint;
	// zero when no hint was used.
	SeedMakespan int
	// Candidates records the per-member outcomes of a portfolio run; it is
	// empty for plain solvers.
	Candidates []Candidate
}

// Candidate is the outcome of one portfolio member.
type Candidate struct {
	Solver   string
	Makespan int
	Wasted   float64
	Elapsed  time.Duration
	Nodes    int64
	Err      error
}

// Solver computes a feasible schedule for a CRSharing instance under a
// context: implementations return promptly with ctx.Err() once the context is
// cancelled or its deadline passes.
type Solver interface {
	// Name returns a short stable identifier, e.g. "branch-and-bound-parallel".
	Name() string
	// Solve computes a complete feasible schedule for the instance.
	Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, Stats, error)
}

// ContextScheduler is implemented by algo packages whose kernels poll a
// context (serial and parallel branch-and-bound, the configuration
// enumeration, the chunked heuristic).
type ContextScheduler interface {
	algo.Scheduler
	ScheduleContext(ctx context.Context, inst *core.Instance) (*core.Schedule, error)
}

// exactMarker matches algo.Exact and the parallel exact schedulers.
type exactMarker interface{ IsExact() bool }

// adapted lifts an algo.Scheduler to the Solver interface.
type adapted struct {
	s algo.Scheduler
}

// Adapt wraps a synchronous algo.Scheduler as a Solver. If the scheduler
// implements ContextScheduler the context is forwarded into its kernel;
// otherwise the context is only checked before the (synchronous) call, which
// is adequate for the polynomial-time schedulers.
func Adapt(s algo.Scheduler) Solver { return &adapted{s: s} }

func (a *adapted) Name() string { return a.s.Name() }

// IsExact reports whether the underlying scheduler is exact.
func (a *adapted) IsExact() bool {
	if e, ok := a.s.(exactMarker); ok {
		return e.IsExact()
	}
	return false
}

func (a *adapted) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, Stats, error) {
	start := time.Now()
	// Fresh counters per solve: the kernels report explored nodes and
	// incumbents through the context, and the counts land in the returned
	// Stats (and from there in cached evaluations and telemetry). Any
	// counters already attached by an outer adapter are shadowed on purpose —
	// each adapter accounts exactly for its own solve.
	ctr := &progress.Counters{}
	ctx = progress.WithCounters(ctx, ctr)
	var sched *core.Schedule
	var err error
	if cs, ok := a.s.(ContextScheduler); ok {
		sched, err = cs.ScheduleContext(ctx, inst)
	} else {
		if err := ctx.Err(); err != nil {
			return nil, Stats{Solver: a.s.Name()}, err
		}
		sched, err = a.s.Schedule(inst)
	}
	st := Stats{
		Solver:       a.s.Name(),
		Winner:       a.s.Name(),
		Elapsed:      time.Since(start),
		Nodes:        ctr.Nodes.Load(),
		Incumbents:   ctr.Incumbents.Load(),
		KernelAllocs: ctr.Allocs.Load(),
	}
	if seed := ctr.WarmSeed.Load(); seed > 0 {
		st.WarmStart = true
		st.SeedMakespan = int(seed)
	}
	if err != nil {
		return nil, st, fmt.Errorf("%s: %w", a.s.Name(), err)
	}
	return sched, st, nil
}

// Evaluation bundles a schedule with the quantities reported about it. It
// mirrors algo.Evaluation and adds the solve statistics.
type Evaluation struct {
	Algorithm  string
	Schedule   *core.Schedule
	Makespan   int
	LowerBound int
	Ratio      float64
	Properties core.Properties
	Wasted     float64
	Stats      Stats
}

// Evaluate runs the solver on the instance under the context, executes the
// resulting schedule and returns the evaluation. It fails if the solver errs,
// the schedule is infeasible, or it does not finish all jobs.
func Evaluate(ctx context.Context, s Solver, inst *core.Instance) (*Evaluation, error) {
	sched, st, err := s.Solve(ctx, inst)
	if err != nil {
		return nil, err
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		return nil, fmt.Errorf("%s: produced invalid schedule: %w", s.Name(), err)
	}
	if !res.Finished() {
		return nil, fmt.Errorf("%s: schedule does not finish all jobs", s.Name())
	}
	lb := core.LowerBounds(inst).Best()
	ev := &Evaluation{
		Algorithm:  s.Name(),
		Schedule:   sched,
		Makespan:   res.Makespan(),
		LowerBound: lb,
		Properties: core.CheckProperties(res),
		Wasted:     res.Wasted(),
		Stats:      st,
	}
	if ev.Stats.Winner != "" && ev.Stats.Winner != s.Name() {
		ev.Algorithm = fmt.Sprintf("%s (via %s)", ev.Stats.Winner, s.Name())
	}
	if lb > 0 {
		ev.Ratio = float64(ev.Makespan) / float64(lb)
	} else {
		ev.Ratio = 1
	}
	return ev, nil
}
