package solver

import (
	"context"
	"runtime"
	"sync"

	"crsharing/internal/core"
)

// Outcome is the result of solving one instance of a batch.
type Outcome struct {
	// Index is the instance's position in the input batch.
	Index    int
	Schedule *core.Schedule
	Makespan int
	Wasted   float64
	Stats    Stats
	Err      error
	// Skipped reports that the instance was never handed to a solver because
	// the batch context was already cancelled (Err then carries ctx.Err()).
	// A false Skipped with a non-nil Err is a real solver failure — possibly
	// a timeout that struck mid-solve, but the solver did run.
	Skipped bool
}

// ParallelEach solves every instance of the batch, sharding the work across a
// pool of workers (0 = GOMAXPROCS). Each worker gets its own solver from
// newSolver, so solvers need not be safe for concurrent use. The returned
// slice is index-aligned with insts. Once the context is cancelled, remaining
// instances fail fast with ctx.Err() and are marked Skipped so callers can
// tell never-attempted instances from real solver failures; ParallelEach
// always waits for its workers before returning.
func ParallelEach(ctx context.Context, newSolver func() Solver, insts []*core.Instance, workers int) []Outcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(insts) {
		workers = len(insts)
	}
	outcomes := make([]Outcome, len(insts))
	if len(insts) == 0 {
		return outcomes
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := newSolver()
			for idx := range indices {
				outcomes[idx] = solveOne(ctx, s, idx, insts[idx])
			}
		}()
	}
feed:
	for idx := range insts {
		select {
		case indices <- idx:
		case <-ctx.Done():
			// Fail the rest fast; workers drain the closed channel below.
			for rest := idx; rest < len(insts); rest++ {
				outcomes[rest] = Outcome{Index: rest, Err: ctx.Err(), Skipped: true}
			}
			break feed
		}
	}
	close(indices)
	wg.Wait()
	return outcomes
}

func solveOne(ctx context.Context, s Solver, idx int, inst *core.Instance) Outcome {
	out := Outcome{Index: idx}
	if err := ctx.Err(); err != nil {
		out.Err = err
		out.Skipped = true
		return out
	}
	sched, stats, err := s.Solve(ctx, inst)
	out.Stats = stats
	if err != nil {
		out.Err = err
		return out
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		out.Err = err
		return out
	}
	out.Schedule = sched
	out.Makespan = res.Makespan()
	out.Wasted = res.Wasted()
	return out
}
