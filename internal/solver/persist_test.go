package solver

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crsharing/internal/core"
)

func persistInstances(n int) []*core.Instance {
	out := make([]*core.Instance, n)
	for i := range out {
		out[i] = core.NewInstance([]float64{float64(i+1) / float64(n+1), 0.5}, []float64{0.25})
	}
	return out
}

// TestPersistRoundTrip is the warm-start contract: evaluations memoised by
// one cache are flushed to disk and answer from SourceCache in a brand-new
// cache, without invoking the solver again.
func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	insts := persistInstances(5)

	warm := NewCache(4, 64)
	s := &stubSolver{name: "stub"}
	for _, inst := range insts {
		if _, _, err := warm.Evaluate(context.Background(), s, inst); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewPersister(warm, dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil { // final flush without ever starting the loop
		t.Fatal(err)
	}

	cold := NewCache(4, 64)
	p2, err := NewPersister(cold, dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	rep, err := p2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != len(insts) || rep.Quarantined != 0 || rep.Skipped != 0 {
		t.Fatalf("load report = %+v, want %d restored", rep, len(insts))
	}
	fresh := &stubSolver{name: "stub"}
	for _, inst := range insts {
		ev, src, err := cold.Evaluate(context.Background(), fresh, inst)
		if err != nil {
			t.Fatal(err)
		}
		if src != SourceCache {
			t.Fatalf("restored entry answered from %q, want %q", src, SourceCache)
		}
		if ev == nil || ev.Schedule == nil {
			t.Fatal("restored evaluation lost its schedule")
		}
	}
	if fresh.calls.Load() != 0 {
		t.Fatalf("solver ran %d times against a warm cache", fresh.calls.Load())
	}
}

// TestPersistShardCountChange re-loads a snapshot into a cache with a
// different shard count: fingerprints are recomputed on load, so entries land
// in the right shard and stale high-index shard files are removed.
func TestPersistShardCountChange(t *testing.T) {
	dir := t.TempDir()
	insts := persistInstances(6)
	warm := NewCache(4, 64)
	s := &stubSolver{name: "stub"}
	for _, inst := range insts {
		if _, _, err := warm.Evaluate(context.Background(), s, inst); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewPersister(warm, dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	cold := NewCache(1, 64)
	p2, err := NewPersister(cold, dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	rep, err := p2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != len(insts) {
		t.Fatalf("restored %d of %d across a shard-count change", rep.Restored, len(insts))
	}
	fresh := &stubSolver{name: "stub"}
	for _, inst := range insts {
		if _, src, err := cold.Evaluate(context.Background(), fresh, inst); err != nil || src != SourceCache {
			t.Fatalf("lookup after reshard: src=%q err=%v", src, err)
		}
	}
	stale, _ := filepath.Glob(filepath.Join(dir, "shard-00[1-9].json"))
	if len(stale) != 0 {
		t.Fatalf("stale shard files survived the reshard: %v", stale)
	}
}

// TestPersistQuarantinesCorruptFiles: undecodable or wrong-version shard
// files must not abort startup — they are renamed aside and counted, and the
// healthy shards still load.
func TestPersistQuarantinesCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	insts := persistInstances(3)
	warm := NewCache(4, 64)
	s := &stubSolver{name: "stub"}
	for _, inst := range insts {
		if _, _, err := warm.Evaluate(context.Background(), s, inst); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewPersister(warm, dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt one real shard and plant one wrong-version file.
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no shard files written: %v", err)
	}
	if err := os.WriteFile(files[0], []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	wrong := filepath.Join(dir, "shard-099.json")
	if err := os.WriteFile(wrong, []byte(`{"version":99,"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cold := NewCache(4, 64)
	p2, err := NewPersister(cold, dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	rep, err := p2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 2 {
		t.Fatalf("quarantined %d files, want 2 (report %+v)", rep.Quarantined, rep)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if len(quarantined) != 2 {
		t.Fatalf("expected 2 .corrupt files, found %v", quarantined)
	}
	if got := cold.Stats().Entries; got+rep.Restored == 0 || rep.Restored != got {
		t.Fatalf("healthy shards not restored: report=%+v entries=%d", rep, got)
	}
}

// TestPersistSnapshotDurabilityAndListing pins the crash-durability fixes:
// snapshots land world-readable (0644, not os.CreateTemp's 0600), no temp
// files survive a flush, and SnapshotFiles lists only real snapshots —
// quarantined *.corrupt files are not snapshots and must not appear.
func TestPersistSnapshotDurabilityAndListing(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(2, 64)
	s := &stubSolver{name: "stub"}
	for _, inst := range persistInstances(4) {
		if _, _, err := c.Evaluate(context.Background(), s, inst); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewPersister(c, dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	files, err := filepath.Glob(filepath.Join(dir, "shard-*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no shard files written: %v", err)
	}
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := info.Mode().Perm(); got != 0o644 {
			t.Fatalf("%s mode = %o, want 644 (snapshots must not inherit CreateTemp's 0600)", f, got)
		}
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "shard-tmp-*")); len(tmps) != 0 {
		t.Fatalf("temp files survived the flush: %v", tmps)
	}

	// Plant a quarantined file and a leftover temp: only *.json snapshots list.
	if err := os.WriteFile(filepath.Join(dir, "shard-000.json.corrupt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shard-tmp-stray"), []byte("junk"), 0o600); err != nil {
		t.Fatal(err)
	}
	listed, err := p.SnapshotFiles()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range listed {
		if !strings.HasSuffix(name, ".json") {
			t.Fatalf("SnapshotFiles listed %q, which is not a snapshot", name)
		}
	}
	if want := len(files); len(listed) != want {
		t.Fatalf("SnapshotFiles listed %d files (%v), want the %d real snapshots", len(listed), listed, want)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPersistPeriodicFlush: a started persister writes snapshots on its own
// tick, not only at Close.
func TestPersistPeriodicFlush(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(2, 64)
	p, err := NewPersister(c, dir, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Close()
	if _, _, err := c.Evaluate(context.Background(), &stubSolver{name: "stub"}, core.NewInstance([]float64{0.5})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if files, _ := filepath.Glob(filepath.Join(dir, "shard-*.json")); len(files) > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no snapshot appeared within 5s of a 10ms flush interval")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNegativeCacheReplayAndExpiry: a deterministic solver failure is
// remembered for the TTL and replayed as SourceNegative without re-solving;
// after expiry the solver runs again.
func TestNegativeCacheReplayAndExpiry(t *testing.T) {
	c := NewCache(2, 64)
	c.SetNegativeTTL(80 * time.Millisecond)
	inst := core.NewInstance([]float64{0.3, 0.7})
	s := &stubSolver{name: "stub", fail: errors.New("deterministic failure")}

	if _, _, err := c.Evaluate(context.Background(), s, inst); err == nil {
		t.Fatal("failing solver reported success")
	}
	if got := s.calls.Load(); got != 1 {
		t.Fatalf("solver calls = %d, want 1", got)
	}
	_, src, err := c.Evaluate(context.Background(), s, inst)
	if src != SourceNegative {
		t.Fatalf("replay source = %q, want %q (err %v)", src, SourceNegative, err)
	}
	var cf *CachedFailure
	if !errors.As(err, &cf) || cf.Msg == "" {
		t.Fatalf("replayed error = %v, want *CachedFailure", err)
	}
	if got := s.calls.Load(); got != 1 {
		t.Fatalf("negative hit re-ran the solver (%d calls)", got)
	}
	st := c.Stats()
	if st.NegativeHits != 1 || st.NegativeEntries != 1 {
		t.Fatalf("negative stats wrong: %+v", st)
	}

	time.Sleep(100 * time.Millisecond)
	if _, src, _ := c.Evaluate(context.Background(), s, inst); src == SourceNegative {
		t.Fatal("negative entry served after its TTL")
	}
	if got := s.calls.Load(); got != 2 {
		t.Fatalf("solver calls after expiry = %d, want 2", got)
	}
}

// shedLikeErr mimics the engine's quota shed without importing it.
type shedLikeErr struct{}

func (shedLikeErr) Error() string { return "quota shed" }
func (shedLikeErr) Shed() bool    { return true }

// TestNegativeCacheSkipsTransientErrors: cancellations, deadline expiries and
// quota sheds say nothing about the instance, so they are never remembered.
func TestNegativeCacheSkipsTransientErrors(t *testing.T) {
	for _, transient := range []error{context.Canceled, context.DeadlineExceeded, shedLikeErr{}} {
		c := NewCache(2, 64)
		c.SetNegativeTTL(time.Hour)
		inst := core.NewInstance([]float64{0.4})
		s := &stubSolver{name: "stub", fail: transient}
		if _, _, err := c.Evaluate(context.Background(), s, inst); err == nil {
			t.Fatalf("%v: expected the failure through", transient)
		}
		if _, src, _ := c.Evaluate(context.Background(), s, inst); src == SourceNegative {
			t.Fatalf("%v was negative-cached", transient)
		}
		if got := s.calls.Load(); got != 2 {
			t.Fatalf("%v: solver calls = %d, want 2 (no memoised failure)", transient, got)
		}
	}
}
