package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"crsharing/internal/core"
	"crsharing/internal/progress"
)

// Portfolio runs its members concurrently on the same instance and returns
// the best schedule any of them produced: lowest makespan, ties broken by
// less wasted resource, remaining ties by member order (which keeps the
// result deterministic). Members that return an error are skipped; the
// portfolio fails only when every member fails.
//
// Solve always waits for every member goroutine to return before it returns
// itself, so a cancelled portfolio leaves no goroutines behind.
type Portfolio struct {
	// Members are raced in order; the slice is not modified.
	Members []Solver
	// RaceExact cancels the remaining members as soon as an exact member
	// returns a valid schedule — its result is optimal, so nothing better can
	// arrive. Heuristic members never trigger the cancellation.
	RaceExact bool
}

// NewPortfolio returns a portfolio over the given members.
func NewPortfolio(members ...Solver) *Portfolio {
	return &Portfolio{Members: members}
}

// Name implements Solver.
func (p *Portfolio) Name() string { return "portfolio" }

// memberResult is the outcome of one member run.
type memberResult struct {
	sched    *core.Schedule
	makespan int
	wasted   float64
	elapsed  time.Duration
	stats    Stats
	err      error
}

// Solve implements Solver.
//
// Timeout semantics are best-effort by design: the portfolio keeps whatever
// valid schedule its members managed to produce, so if at least one member
// finished before the parent context expired, Solve returns that (possibly
// sub-optimal) schedule with a nil error even though ctx.Err() is by then
// non-nil. The context error is surfaced only when no member produced a
// valid schedule — callers that must distinguish "optimal" from "best found
// within the budget" should consult ctx.Err() themselves after Solve
// returns.
func (p *Portfolio) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, Stats, error) {
	start := time.Now()
	if len(p.Members) == 0 {
		return nil, Stats{Solver: p.Name()}, fmt.Errorf("portfolio: no members")
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// bestSeen tracks the best makespan any member has produced so far, so
	// finishing members report (strictly) improving incumbents to the
	// context's progress observer as the race unfolds. Kernels that report
	// their own internal incumbents (branch-and-bound) stream through the
	// same observer via cctx.
	var bestSeen atomic.Int64
	bestSeen.Store(math.MaxInt64)
	// ownReports counts the race-level incumbent improvements the portfolio
	// itself announces (member nodes/incumbents are read off the member
	// stats), so Stats.Incumbents covers both levels.
	var ownReports atomic.Int64

	results := make([]memberResult, len(p.Members))
	var wg sync.WaitGroup
	for idx, member := range p.Members {
		wg.Add(1)
		go func(idx int, member Solver) {
			defer wg.Done()
			mstart := time.Now()
			sched, mstats, err := member.Solve(cctx, inst)
			r := memberResult{elapsed: time.Since(mstart), stats: mstats, err: err}
			if err == nil {
				res, execErr := core.Execute(inst, sched)
				switch {
				case execErr != nil:
					r.err = fmt.Errorf("%s: produced invalid schedule: %w", member.Name(), execErr)
				case !res.Finished():
					r.err = fmt.Errorf("%s: schedule does not finish all jobs", member.Name())
				default:
					r.sched = sched
					r.makespan = res.Makespan()
					r.wasted = res.Wasted()
				}
			}
			results[idx] = r
			if r.err == nil {
				for {
					cur := bestSeen.Load()
					if int64(r.makespan) >= cur {
						break
					}
					if bestSeen.CompareAndSwap(cur, int64(r.makespan)) {
						ownReports.Add(1)
						progress.Report(ctx, progress.Incumbent{Solver: member.Name(), Makespan: r.makespan})
						break
					}
				}
			}
			if r.err == nil && p.RaceExact && isExact(member) {
				cancel()
			}
		}(idx, member)
	}
	wg.Wait()

	stats := Stats{Solver: p.Name(), Incumbents: ownReports.Load(), Candidates: make([]Candidate, len(p.Members))}
	bestIdx := -1
	for idx, r := range results {
		stats.Candidates[idx] = Candidate{
			Solver:   p.Members[idx].Name(),
			Makespan: r.makespan,
			Wasted:   r.wasted,
			Elapsed:  r.elapsed,
			Nodes:    r.stats.Nodes,
			Err:      r.err,
		}
		stats.Nodes += r.stats.Nodes
		stats.Incumbents += r.stats.Incumbents
		stats.KernelAllocs += r.stats.KernelAllocs
		if r.stats.WarmStart && !stats.WarmStart {
			// Any member accepting the shared hint marks the whole race warm;
			// every acceptor derived the same makespan from the same schedule.
			stats.WarmStart = true
			stats.SeedMakespan = r.stats.SeedMakespan
		}
		if r.err != nil {
			continue
		}
		if bestIdx < 0 ||
			r.makespan < results[bestIdx].makespan ||
			(r.makespan == results[bestIdx].makespan && r.wasted < results[bestIdx].wasted) {
			bestIdx = idx
		}
	}
	stats.Elapsed = time.Since(start)
	if bestIdx < 0 {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		return nil, stats, fmt.Errorf("portfolio: every member failed: %w", joinErrors(results))
	}
	// Stats.Solver stays "portfolio" — the solver that was asked; the member
	// that actually produced the schedule is reported separately so
	// telemetry can distinguish the two.
	stats.Winner = p.Members[bestIdx].Name()
	return results[bestIdx].sched, stats, nil
}

// isExact reports whether the solver advertises optimality.
func isExact(s Solver) bool {
	if e, ok := s.(exactMarker); ok {
		return e.IsExact()
	}
	return false
}

// joinErrors combines the member errors into one.
func joinErrors(results []memberResult) error {
	var errs []error
	for _, r := range results {
		if r.err != nil {
			errs = append(errs, r.err)
		}
	}
	return errors.Join(errs...)
}
