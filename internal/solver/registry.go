package solver

import (
	"fmt"
	"sort"
	"sync"

	"crsharing/internal/algo"
	"crsharing/internal/algo/anytime"
	"crsharing/internal/algo/branchbound"
	"crsharing/internal/algo/chunked"
	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/algo/optres2"
	"crsharing/internal/algo/optresm"
	"crsharing/internal/algo/roundrobin"
)

// Registry maps solver names to constructors so the CLI tools and the
// experiment harness can select solvers by name. It is safe for concurrent
// use.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]func() Solver
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]func() Solver)}
}

// Register adds a constructor under the given name. The factory is stored,
// not invoked: no solver is built until New is called, so registering a heavy
// solver (a full portfolio, a parallel kernel) costs nothing. Registering an
// empty name or the same name twice panics: both are programming errors.
func (r *Registry) Register(name string, factory func() Solver) {
	if name == "" {
		panic("solver: registration with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("solver: duplicate registration of %q", name))
	}
	r.factories[name] = factory
}

// New returns a fresh solver instance by name.
func (r *Registry) New(name string) (Solver, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("solver: unknown solver %q (available: %v)", name, r.Names())
	}
	return f(), nil
}

// Names returns the registered solver names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.factories))
	for n := range r.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Default returns a registry holding every scheduler of the repository — the
// seven algo packages plus the parallel kernels and the default portfolio.
func Default() *Registry {
	r := NewRegistry()
	r.Register("round-robin", func() Solver { return Adapt(roundrobin.New()) })
	r.Register("greedy-balance", func() Solver { return Adapt(greedybalance.New()) })
	r.Register("greedy-balance-small", func() Solver { return Adapt(greedybalance.NewWithTie(greedybalance.SmallerRemaining)) })
	r.Register("greedy-unbalanced-large", func() Solver { return Adapt(greedybalance.NewUnbalanced(greedybalance.LargerRemaining)) })
	r.Register("opt-res-assignment", func() Solver { return Adapt(optres2.New()) })
	r.Register("opt-res-assignment-pq", func() Solver { return Adapt(optres2.NewPQ()) })
	r.Register("opt-res-assignment-2", func() Solver { return Adapt(optresm.New()) })
	r.Register("opt-res-assignment-2-parallel", func() Solver { return Adapt(optresm.NewParallel()) })
	r.Register("branch-and-bound", func() Solver { return Adapt(branchbound.New()) })
	r.Register("branch-and-bound-parallel", func() Solver { return Adapt(branchbound.NewParallel()) })
	r.Register("chunked-exact-w2", func() Solver { return Adapt(chunked.New(2)) })
	r.Register("chunked-exact-w3", func() Solver { return Adapt(chunked.New(3)) })
	r.Register("anytime-local-search", func() Solver { return Adapt(anytime.New()) })
	r.Register("portfolio", func() Solver { return NewDefaultPortfolio() })
	return r
}

// NewDefaultPortfolio races the fast heuristics against the exact solvers and
// returns the best schedule any of them finds. Members that reject the
// instance (wrong processor count, non-unit sizes) are simply skipped, so the
// portfolio accepts every instance at least one member accepts. The anytime
// tier rides along: it streams a feasible incumbent within microseconds and
// keeps improving it while the exact members search, so observers of a long
// race are never without a bound.
func NewDefaultPortfolio() *Portfolio {
	return NewPortfolio(
		Adapt(greedybalance.New()),
		Adapt(roundrobin.New()),
		Adapt(anytime.New()),
		Adapt(chunked.New(2)),
		Adapt(optres2.New()),
		Adapt(optresm.New()),
		Adapt(branchbound.NewParallel()),
	)
}

// NewExactPortfolio races only the exact solvers and cancels the rest as soon
// as one of them succeeds — the cheapest applicable optimum oracle wins (the
// m=2 dynamic program on two processors, branch-and-bound or the
// configuration enumeration elsewhere). workers bounds the parallel
// branch-and-bound pool (0 = GOMAXPROCS).
func NewExactPortfolio(workers int) *Portfolio {
	p := NewPortfolio(
		Adapt(optres2.New()),
		Adapt(&branchbound.ParallelScheduler{Workers: workers}),
		Adapt(optresm.New()),
	)
	p.RaceExact = true
	return p
}

// compile-time interface checks for the adapters the registry hands out.
var (
	_ ContextScheduler = (*anytime.Scheduler)(nil)
	_ ContextScheduler = (*branchbound.Scheduler)(nil)
	_ ContextScheduler = (*branchbound.ParallelScheduler)(nil)
	_ ContextScheduler = (*optresm.Scheduler)(nil)
	_ ContextScheduler = (*optresm.ParallelScheduler)(nil)
	_ ContextScheduler = (*chunked.Scheduler)(nil)
	_ algo.Scheduler   = (*branchbound.ParallelScheduler)(nil)
	_ algo.Scheduler   = (*optresm.ParallelScheduler)(nil)
)
