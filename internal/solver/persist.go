package solver

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"crsharing/internal/core"
)

// persistRecord is the on-disk form of one positive cache entry. The
// fingerprint is not stored: it is recomputed from the instance on load, so a
// snapshot can never claim a key its instance does not hash to.
type persistRecord struct {
	Solver     string         `json:"solver"`
	Instance   *core.Instance `json:"instance"`
	Evaluation *Evaluation    `json:"evaluation"`
}

// shardFile is one snapshot file: the positive entries of one cache shard,
// ordered LRU first so replaying the file re-establishes the recency order.
type shardFile struct {
	Version int             `json:"version"`
	Entries []persistRecord `json:"entries"`
}

// persistVersion guards the snapshot format; files with a different version
// are quarantined like corrupt ones.
const persistVersion = 1

// LoadReport says what Persister.Load found on disk.
type LoadReport struct {
	// Restored counts cache entries warmed from the snapshot.
	Restored int
	// Skipped counts records dropped for failing validation (nil or invalid
	// instance/evaluation) inside otherwise readable files.
	Skipped int
	// Quarantined counts unreadable snapshot files; each was renamed to
	// <name>.corrupt and startup proceeded without it.
	Quarantined int
}

// Persister gives a Cache a disk life, following the jobs.FileStore pattern:
// one JSON file per shard, written through a temporary file and an atomic
// rename (a crash mid-flush never corrupts the previous snapshot), loaded on
// start, flushed periodically and at shutdown. Negative entries are not
// persisted — they are cheap, expiring hints.
//
// Load before Start; Close stops the flush loop and writes a final snapshot.
type Persister struct {
	cache    *Cache
	dir      string
	interval time.Duration

	mu      sync.Mutex // serialises Flush against itself and Close
	flushed []uint64   // per-shard gen at last flush; 0 = never flushed

	stop     chan struct{}
	done     chan struct{}
	startOne sync.Once
	stopOne  sync.Once
}

// NewPersister creates the snapshot directory if needed and returns a
// persister flushing dirty shards every interval (default 30s) once started.
func NewPersister(c *Cache, dir string, interval time.Duration) (*Persister, error) {
	if c == nil {
		return nil, fmt.Errorf("solver: persister needs a cache")
	}
	if dir == "" {
		return nil, fmt.Errorf("solver: empty cache snapshot directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("solver: creating cache snapshot directory: %w", err)
	}
	if interval <= 0 {
		interval = 30 * time.Second
	}
	return &Persister{
		cache:    c,
		dir:      dir,
		interval: interval,
		flushed:  make([]uint64, len(c.shards)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Dir returns the snapshot directory.
func (p *Persister) Dir() string { return p.dir }

// Load warms the cache from the snapshot directory. Unreadable or
// wrong-version files are renamed to <name>.corrupt and skipped — a corrupt
// snapshot degrades to a cold shard, never a failed startup. Records are
// re-keyed by recomputing each instance's fingerprint, so snapshots survive
// changes to the shard count (stale files from a wider-sharded run are
// absorbed and deleted).
func (p *Persister) Load() (LoadReport, error) {
	var rep LoadReport
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return rep, fmt.Errorf("solver: reading cache snapshot directory: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "shard-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(p.dir, name)
		data, err := os.ReadFile(path)
		var sf shardFile
		if err == nil {
			err = json.Unmarshal(data, &sf)
		}
		if err == nil && sf.Version != persistVersion {
			err = fmt.Errorf("snapshot version %d", sf.Version)
		}
		if err != nil {
			rep.Quarantined++
			os.Rename(path, path+".corrupt") // best effort; the load goes on
			continue
		}
		for _, rec := range sf.Entries {
			if rec.Solver == "" || rec.Instance == nil || rec.Evaluation == nil ||
				rec.Instance.Validate() != nil {
				rep.Skipped++
				continue
			}
			p.cache.seed(rec.Solver, rec.Instance, rec.Evaluation)
			rep.Restored++
		}
		// The file's entries now live in the current cache (possibly under a
		// different shard layout); drop files outside the current range so
		// they are not re-loaded forever after a shard-count change.
		var idx int
		if _, serr := fmt.Sscanf(name, "shard-%d.json", &idx); serr == nil && idx >= len(p.cache.shards) {
			os.Remove(path)
		}
	}
	return rep, nil
}

// Start launches the periodic flush loop. Safe to call once.
func (p *Persister) Start() {
	p.startOne.Do(func() {
		go func() {
			defer close(p.done)
			ticker := time.NewTicker(p.interval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					p.Flush() // errors are retried next tick; Close reports the last one
				case <-p.stop:
					return
				}
			}
		}()
	})
}

// Flush snapshots every shard whose contents changed since its last flush.
func (p *Persister) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	for i := range p.cache.shards {
		recs, gen, ok := p.cache.exportShard(i, p.flushed[i])
		if !ok {
			continue // unchanged since last flush
		}
		if err := p.writeShard(i, recs); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		p.flushed[i] = gen
	}
	return firstErr
}

// writeShard writes one shard file atomically AND durably: the temp file is
// fsynced before the rename (so a crash right after the rename can never
// expose a zero-length or partial snapshot) and the directory is fsynced
// after it (so the rename itself survives a crash). os.CreateTemp creates
// 0600 files; the snapshot is chmodded to 0644 so operators and sidecar
// tooling can read it.
func (p *Persister) writeShard(i int, recs []persistRecord) error {
	data, err := json.Marshal(shardFile{Version: persistVersion, Entries: recs})
	if err != nil {
		return fmt.Errorf("solver: encoding cache shard %d: %w", i, err)
	}
	final := filepath.Join(p.dir, fmt.Sprintf("shard-%03d.json", i))
	tmp, err := os.CreateTemp(p.dir, "shard-tmp-*")
	if err != nil {
		return fmt.Errorf("solver: writing cache shard %d: %w", i, err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if werr == nil {
		werr = tmp.Chmod(0o644)
	}
	cerr := tmp.Close()
	if werr == nil && cerr == nil {
		if err := os.Rename(tmp.Name(), final); err == nil {
			return syncDir(p.dir)
		} else {
			werr = err
		}
	}
	os.Remove(tmp.Name())
	return fmt.Errorf("solver: writing cache shard %d: %w", i, firstError(werr, cerr))
}

// syncDir fsyncs a directory so a just-completed rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("solver: syncing snapshot directory: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if err := firstError(serr, cerr); err != nil {
		return fmt.Errorf("solver: syncing snapshot directory: %w", err)
	}
	return nil
}

// Close stops the flush loop (if started) and writes a final snapshot.
func (p *Persister) Close() error {
	p.stopOne.Do(func() {
		close(p.stop)
	})
	p.startOne.Do(func() { close(p.done) }) // never started: nothing to wait for
	<-p.done
	return p.Flush()
}

func firstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// exportShard snapshots shard i's positive entries, LRU first, unless its
// generation still equals since (no change). The entries' evaluations are
// shared immutable values; the persist copy drops the portfolio candidate
// breakdown (its per-member errors do not survive JSON) but keeps the
// winner/nodes/elapsed stats that telemetry replays on warm hits.
func (c *Cache) exportShard(i int, since uint64) (recs []persistRecord, gen uint64, changed bool) {
	s := &c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen == since {
		return nil, s.gen, false
	}
	recs = make([]persistRecord, 0, s.order.Len())
	for el := s.order.Back(); el != nil; el = el.Prev() {
		entry := el.Value.(*cacheEntry)
		ev := *entry.ev
		ev.Stats.Candidates = nil
		recs = append(recs, persistRecord{
			Solver:     entry.key.Solver,
			Instance:   entry.inst,
			Evaluation: &ev,
		})
	}
	return recs, s.gen, true
}

// seed inserts a restored entry under its recomputed fingerprint; used by
// Persister.Load. Seeding counts as a mutation (the shard becomes dirty), so
// a snapshot loaded under a different shard layout is re-filed on the next
// flush.
func (c *Cache) seed(solverName string, inst *core.Instance, ev *Evaluation) {
	key := CacheKey{Solver: solverName, Fingerprint: inst.Fingerprint()}
	sh := c.shard(key)
	sh.mu.Lock()
	sh.insertLocked(key, inst, ev, &c.evictions)
	sh.mu.Unlock()
	c.rememberNeighbor(solverName, inst, ev)
}

// SnapshotFiles lists the snapshot file names currently in dir (sorted);
// exposed for tests and operational tooling. Quarantined *.corrupt files and
// in-flight temp files are not snapshots and are filtered out.
func (p *Persister) SnapshotFiles() ([]string, error) {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "shard-") && strings.HasSuffix(e.Name(), ".json") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
