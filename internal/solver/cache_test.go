package solver

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
)

// stubSolver counts its Solve calls and can block or fail on demand; when it
// succeeds it delegates to greedy-balance so the schedule is valid.
type stubSolver struct {
	name  string
	calls atomic.Int64
	block chan struct{} // when non-nil, Solve waits for close(block) or ctx
	fail  error
}

func (s *stubSolver) Name() string { return s.name }

func (s *stubSolver) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, Stats, error) {
	s.calls.Add(1)
	if s.block != nil {
		select {
		case <-s.block:
		case <-ctx.Done():
			return nil, Stats{Solver: s.name}, ctx.Err()
		}
	}
	if s.fail != nil {
		return nil, Stats{Solver: s.name}, s.fail
	}
	sched, err := greedybalance.New().Schedule(inst)
	return sched, Stats{Solver: s.name}, err
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4, 64)
	s := &stubSolver{name: "stub"}
	inst := core.NewInstance([]float64{0.3, 0.7}, []float64{0.5})

	ev1, src, err := c.Evaluate(context.Background(), s, inst)
	if err != nil || src != SourceSolve {
		t.Fatalf("first call: src=%v err=%v, want solve/nil", src, err)
	}
	ev2, src, err := c.Evaluate(context.Background(), s, inst)
	if err != nil || src != SourceCache {
		t.Fatalf("second call: src=%v err=%v, want cache/nil", src, err)
	}
	if ev1 != ev2 {
		t.Fatal("cache hit must return the stored evaluation")
	}
	if got := s.calls.Load(); got != 1 {
		t.Fatalf("solver invoked %d times, want 1", got)
	}
	// A permuted-processor instance is the same problem and must also hit.
	if _, src, _ = c.Evaluate(context.Background(), s, core.NewInstance([]float64{0.5}, []float64{0.3, 0.7})); src != SourceCache {
		t.Fatalf("permuted instance: src=%v, want cache", src)
	}
	// A different instance misses.
	if _, src, err = c.Evaluate(context.Background(), s, core.NewInstance([]float64{0.9})); err != nil || src != SourceSolve {
		t.Fatalf("different instance: src=%v err=%v, want solve/nil", src, err)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 hits, 2 misses, 2 entries", st)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(4, 64)
	s := &stubSolver{name: "stub", block: make(chan struct{})}
	inst := core.NewInstance([]float64{0.3, 0.7})

	const n = 16
	sources := make([]Source, n)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		started.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			ev, src, err := c.Evaluate(context.Background(), s, inst)
			if err != nil || ev == nil {
				t.Errorf("call %d: err=%v", i, err)
			}
			sources[i] = src
		}(i)
	}
	started.Wait()
	close(s.block)
	wg.Wait()

	if got := s.calls.Load(); got != 1 {
		t.Fatalf("solver invoked %d times, want 1 (singleflight)", got)
	}
	solves := 0
	for _, src := range sources {
		if src == SourceSolve {
			solves++
		} else if src != SourceCoalesced && src != SourceCache {
			t.Fatalf("unexpected source %q", src)
		}
	}
	if solves != 1 {
		t.Fatalf("%d callers reported a fresh solve, want 1", solves)
	}
}

// TestCacheLeaderCancelDoesNotPoison cancels the in-flight leader and checks
// that a waiting follower retries under its own live context instead of
// inheriting the leader's cancellation.
func TestCacheLeaderCancelDoesNotPoison(t *testing.T) {
	c := NewCache(1, 8)
	s := &stubSolver{name: "stub", block: make(chan struct{})}
	inst := core.NewInstance([]float64{0.3, 0.7})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	leaderOut := make(chan error, 1)
	go func() {
		close(leaderIn)
		_, _, err := c.Evaluate(leaderCtx, s, inst)
		leaderOut <- err
	}()
	<-leaderIn
	for s.calls.Load() == 0 { // leader is inside Solve, blocked
		runtime.Gosched()
	}

	followerOut := make(chan error, 1)
	go func() {
		ev, _, err := c.Evaluate(context.Background(), s, inst)
		if err == nil && ev == nil {
			err = errors.New("nil evaluation")
		}
		followerOut <- err
	}()

	cancelLeader()
	if err := <-leaderOut; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader: err=%v, want context.Canceled", err)
	}
	close(s.block) // the follower's retry solve completes immediately
	if err := <-followerOut; err != nil {
		t.Fatalf("follower: %v, want success via retry", err)
	}
	if got := s.calls.Load(); got != 2 {
		t.Fatalf("solver invoked %d times, want 2 (leader + follower retry)", got)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(2, 16)
	s := &stubSolver{name: "stub", fail: errors.New("boom")}
	inst := core.NewInstance([]float64{0.3})
	for i := 0; i < 2; i++ {
		if _, _, err := c.Evaluate(context.Background(), s, inst); err == nil {
			t.Fatal("expected solve error")
		}
	}
	if got := s.calls.Load(); got != 2 {
		t.Fatalf("solver invoked %d times, want 2 (errors are not cached)", got)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d, want 0", st.Entries)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(1, 2) // single shard of capacity 2
	s := &stubSolver{name: "stub"}
	for i := 0; i < 5; i++ {
		inst := core.NewInstance([]float64{float64(i+1) / 10})
		if _, _, err := c.Evaluate(context.Background(), s, inst); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want capacity 2", st.Entries)
	}
	if st.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", st.Evictions)
	}
	// The most recent entry is resident.
	if _, ok := c.Lookup("stub", core.NewInstance([]float64{0.5})); !ok {
		t.Fatal("most recent entry should be resident")
	}
	// The oldest is gone.
	if _, ok := c.Lookup("stub", core.NewInstance([]float64{0.1})); ok {
		t.Fatal("oldest entry should have been evicted")
	}
}

// TestCachePermutedHitRemapsSchedule submits a permuted-processor sibling of
// a cached instance and checks the returned schedule is valid for the
// permuted ordering, not the original one — the fingerprint normalizes
// processor order, so the cache must remap schedule columns on such hits.
func TestCachePermutedHitRemapsSchedule(t *testing.T) {
	c := NewCache(2, 16)
	s := &stubSolver{name: "stub"}
	orig := core.NewInstance([]float64{0.9, 0.9}, []float64{0.1})
	perm := core.NewInstance([]float64{0.1}, []float64{0.9, 0.9})

	ev1, _, err := c.Evaluate(context.Background(), s, orig)
	if err != nil {
		t.Fatal(err)
	}
	ev2, src, err := c.Evaluate(context.Background(), s, perm)
	if err != nil || src != SourceCache {
		t.Fatalf("permuted request: src=%v err=%v, want cache hit", src, err)
	}
	res, err := core.Execute(perm, ev2.Schedule)
	if err != nil {
		t.Fatalf("remapped schedule invalid for permuted instance: %v", err)
	}
	if !res.Finished() {
		t.Fatal("remapped schedule does not finish the permuted instance's jobs")
	}
	if res.Makespan() != ev1.Makespan {
		t.Fatalf("makespan %d after remap, want %d", res.Makespan(), ev1.Makespan)
	}
	if got := s.calls.Load(); got != 1 {
		t.Fatalf("solver invoked %d times, want 1", got)
	}
}

func TestCacheDistinctSolversDistinctEntries(t *testing.T) {
	c := NewCache(4, 16)
	inst := core.NewInstance([]float64{0.3, 0.7})
	a := &stubSolver{name: "a"}
	b := &stubSolver{name: "b"}
	if _, src, _ := c.Evaluate(context.Background(), a, inst); src != SourceSolve {
		t.Fatalf("solver a: src=%v, want solve", src)
	}
	if _, src, _ := c.Evaluate(context.Background(), b, inst); src != SourceSolve {
		t.Fatalf("solver b: src=%v, want solve (cache is keyed per solver)", src)
	}
	if got := fmt.Sprint(a.calls.Load(), b.calls.Load()); got != "1 1" {
		t.Fatalf("calls = %s, want 1 1", got)
	}
}
