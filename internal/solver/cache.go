package solver

import (
	"container/list"
	"context"
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"crsharing/internal/core"
)

// Source tells where a cached evaluation came from.
type Source string

const (
	// SourceSolve marks a fresh solve performed by this call.
	SourceSolve Source = "solve"
	// SourceCache marks a hit on a previously stored evaluation.
	SourceCache Source = "cache"
	// SourceCoalesced marks a call that waited on an identical in-flight
	// solve instead of starting its own (singleflight deduplication).
	SourceCoalesced Source = "coalesced"
	// SourceNegative marks a hit on the negative cache: the same request
	// failed deterministically before, and the remembered error is replayed
	// without re-solving (or re-entering admission).
	SourceNegative Source = "negative"
)

// CacheKey identifies a memoised evaluation: the same instance (by canonical
// fingerprint) solved by the same solver.
type CacheKey struct {
	Solver      string
	Fingerprint core.Fingerprint
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Coalesced uint64
	Evictions uint64
	Entries   int
	// NegativeHits counts requests answered by replaying a remembered
	// deterministic failure; NegativeEntries is the current number of
	// remembered failures (expired entries are dropped lazily).
	NegativeHits    uint64
	NegativeEntries int
}

// Cache is a sharded LRU memo cache over solver evaluations with singleflight
// deduplication: concurrent Evaluate calls for the same (solver, fingerprint)
// pair trigger exactly one underlying solve, and every later call is served
// from the stored result. It is safe for concurrent use.
//
// Cached *Evaluation values are shared between callers and must be treated as
// immutable.
type Cache struct {
	shards []cacheShard

	// neighbors is the coarse shape-key index over solved instances that
	// turns misses into warm-start hints; see neighbor.go.
	neighbors *neighborIndex

	// negTTL is the negative-cache lifetime in nanoseconds; 0 disables
	// negative caching (the default).
	negTTL atomic.Int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
	negHits   atomic.Uint64
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[CacheKey]*list.Element
	order    *list.List // front = most recently used; values are *cacheEntry
	inflight map[CacheKey]*flight
	// negative remembers deterministic solve failures until they expire; it
	// is bounded by the shard capacity (arbitrary eviction when full —
	// negative entries are cheap hints, not results).
	negative map[CacheKey]negEntry
	// gen counts positive mutations (inserts and their evictions) of the
	// shard; the persistence layer flushes only shards whose gen moved.
	gen uint64
}

// negEntry is one remembered failure.
type negEntry struct {
	msg     string
	expires time.Time
}

type cacheEntry struct {
	key CacheKey
	// inst is the instance the evaluation was computed for. Later hits may
	// come from permuted-processor instances with the same fingerprint;
	// their schedules are remapped from inst's processor order.
	inst *core.Instance
	ev   *Evaluation
}

// flight is one in-progress solve that followers wait on.
type flight struct {
	done chan struct{}
	inst *core.Instance
	ev   *Evaluation
	err  error
}

// NewCache returns a cache with the given number of shards and total entry
// capacity (split evenly across shards). Values below 1 are raised to 1, so
// the zero-ish configuration still yields a working single-entry cache.
func NewCache(shards, capacity int) *Cache {
	if shards < 1 {
		shards = 1
	}
	if capacity < shards {
		capacity = shards
	}
	c := &Cache{shards: make([]cacheShard, shards), neighbors: newNeighborIndex()}
	per := (capacity + shards - 1) / shards
	for i := range c.shards {
		c.shards[i] = cacheShard{
			capacity: per,
			entries:  make(map[CacheKey]*list.Element),
			order:    list.New(),
			inflight: make(map[CacheKey]*flight),
			negative: make(map[CacheKey]negEntry),
		}
	}
	return c
}

// SetNegativeTTL enables negative caching: deterministic solve failures
// (anything but context cancellation/expiry and admission sheds) are
// remembered for ttl and replayed to identical requests without re-solving.
// A ttl of 0 disables it. Safe to call concurrently with lookups.
func (c *Cache) SetNegativeTTL(ttl time.Duration) {
	if ttl < 0 {
		ttl = 0
	}
	c.negTTL.Store(int64(ttl))
}

// shard picks the shard for a key, mixing the solver name into the
// fingerprint's uniform bits so distinct solvers over the same instance
// spread out too.
func (c *Cache) shard(key CacheKey) *cacheShard {
	h := fnv.New64a()
	h.Write([]byte(key.Solver))
	h.Write(key.Fingerprint[:8])
	return &c.shards[h.Sum64()%uint64(len(c.shards))]
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Coalesced:    c.coalesced.Load(),
		Evictions:    c.evictions.Load(),
		NegativeHits: c.negHits.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.order.Len()
		st.NegativeEntries += len(s.negative)
		s.mu.Unlock()
	}
	return st
}

// Evaluate is the cache-aware counterpart of Evaluate: it returns the stored
// evaluation for (s.Name(), inst.Fingerprint()) when present, joins an
// identical in-flight solve when one is running, and otherwise solves through
// Evaluate and stores the result. Solve errors are not cached; a leader that
// fails with a context error releases its followers to retry under their own
// contexts, so one caller's deadline never poisons another's.
//
// The fingerprint normalizes processor order, so a hit may have been solved
// for a permuted-processor sibling of inst; the returned evaluation's
// schedule is always remapped to inst's own processor order.
func (c *Cache) Evaluate(ctx context.Context, s Solver, inst *core.Instance) (*Evaluation, Source, error) {
	return c.EvaluateWithFingerprint(ctx, s, inst, inst.Fingerprint())
}

// EvaluateWithFingerprint is Evaluate for callers that already computed the
// instance's fingerprint (the serving layer reports it per response, so it
// computes the hash once and passes it here).
func (c *Cache) EvaluateWithFingerprint(ctx context.Context, s Solver, inst *core.Instance, fp core.Fingerprint) (*Evaluation, Source, error) {
	key := CacheKey{Solver: s.Name(), Fingerprint: fp}
	sh := c.shard(key)
	for {
		sh.mu.Lock()
		if el, ok := sh.entries[key]; ok {
			sh.order.MoveToFront(el)
			entry := el.Value.(*cacheEntry)
			ev, stored := entry.ev, entry.inst
			sh.mu.Unlock()
			c.hits.Add(1)
			return remapEvaluation(stored, inst, ev), SourceCache, nil
		}
		if ne, ok := sh.negative[key]; ok {
			if c.negTTL.Load() > 0 && time.Now().Before(ne.expires) {
				sh.mu.Unlock()
				c.negHits.Add(1)
				return nil, SourceNegative, &CachedFailure{Msg: ne.msg}
			}
			delete(sh.negative, key) // expired (or negative caching turned off)
		}
		if fl, ok := sh.inflight[key]; ok {
			sh.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, SourceCoalesced, ctx.Err()
			}
			if fl.err == nil {
				c.coalesced.Add(1)
				return remapEvaluation(fl.inst, inst, fl.ev), SourceCoalesced, nil
			}
			if transientError(fl.err) {
				// The leader was cancelled or shed, not the solve refuted;
				// try again (possibly becoming the new leader) under our own
				// context and admission quota.
				if ctx.Err() != nil {
					return nil, SourceCoalesced, ctx.Err()
				}
				continue
			}
			c.coalesced.Add(1)
			return nil, SourceCoalesced, fl.err
		}
		fl := &flight{done: make(chan struct{}), inst: inst.Clone()}
		sh.inflight[key] = fl
		sh.mu.Unlock()

		c.misses.Add(1)
		fl.ev, fl.err = Evaluate(ctx, s, inst)

		sh.mu.Lock()
		delete(sh.inflight, key)
		if fl.err == nil {
			sh.insertLocked(key, fl.inst, fl.ev, &c.evictions)
			delete(sh.negative, key)
		} else if ttl := time.Duration(c.negTTL.Load()); ttl > 0 && !transientError(fl.err) {
			sh.storeNegativeLocked(key, fl.err, time.Now().Add(ttl))
		}
		sh.mu.Unlock()
		if fl.err == nil {
			// File the fresh solve in the neighbor index (its own lock) so
			// near-duplicate future misses can warm-start from it.
			c.rememberNeighbor(key.Solver, fl.inst, fl.ev)
		}
		close(fl.done)
		return fl.ev, SourceSolve, fl.err
	}
}

// CachedFailure is the error a negative-cache hit replays: the message of
// the original deterministic failure, answered without re-solving.
type CachedFailure struct{ Msg string }

func (e *CachedFailure) Error() string { return e.Msg }

// transientError reports whether a solve error is tied to this caller rather
// than the instance: context cancellation/expiry, or an admission shed
// (detected structurally via a Shed() method so the engine's error type does
// not have to be imported). Transient errors are never negative-cached, and
// followers holding one retry as their own leader.
func transientError(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var shed interface{ Shed() bool }
	return errors.As(err, &shed) && shed.Shed()
}

// storeNegativeLocked remembers a failure, keeping the negative map within
// the shard capacity: expired entries are collected first, then arbitrary
// ones — a dropped negative entry only costs a redundant future solve.
func (s *cacheShard) storeNegativeLocked(key CacheKey, err error, expires time.Time) {
	if len(s.negative) >= s.capacity {
		now := time.Now()
		for k, ne := range s.negative {
			if !now.Before(ne.expires) {
				delete(s.negative, k)
			}
		}
		for k := range s.negative {
			if len(s.negative) < s.capacity {
				break
			}
			delete(s.negative, k)
		}
	}
	s.negative[key] = negEntry{msg: err.Error(), expires: expires}
}

// remapEvaluation adapts a stored evaluation to the requesting instance:
// makespan, bounds, waste and properties are invariant under processor
// permutation, but the schedule's columns follow the instance it was solved
// for, so a permuted requester gets a shallow copy with a remapped schedule.
func remapEvaluation(stored, req *core.Instance, ev *Evaluation) *Evaluation {
	sched := core.RemapScheduleProcs(stored, req, ev.Schedule)
	if sched == ev.Schedule {
		return ev
	}
	out := *ev
	out.Schedule = sched
	return &out
}

// Contains reports whether the cache currently holds a positive evaluation
// for the pair, without touching the LRU order or the hit counters. It is
// the peek the peer-fill path uses to decide whether a solve should be
// forwarded to the fingerprint's owning backend instead of run locally.
func (c *Cache) Contains(solverName string, fp core.Fingerprint) bool {
	key := CacheKey{Solver: solverName, Fingerprint: fp}
	sh := c.shard(key)
	sh.mu.Lock()
	_, ok := sh.entries[key]
	sh.mu.Unlock()
	return ok
}

// Lookup returns the cached evaluation for the pair, if any, without ever
// solving. It still refreshes the entry's LRU position, counts hits, and
// remaps the schedule to inst's processor order like Evaluate does.
func (c *Cache) Lookup(solverName string, inst *core.Instance) (*Evaluation, bool) {
	key := CacheKey{Solver: solverName, Fingerprint: inst.Fingerprint()}
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.order.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		ev, stored := entry.ev, entry.inst
		sh.mu.Unlock()
		c.hits.Add(1)
		return remapEvaluation(stored, inst, ev), true
	}
	sh.mu.Unlock()
	return nil, false
}

// insertLocked stores the evaluation, evicting from the LRU tail when the
// shard is full. Callers hold the shard lock.
func (s *cacheShard) insertLocked(key CacheKey, inst *core.Instance, ev *Evaluation, evictions *atomic.Uint64) {
	s.gen++
	if el, ok := s.entries[key]; ok {
		entry := el.Value.(*cacheEntry)
		entry.inst, entry.ev = inst, ev
		s.order.MoveToFront(el)
		return
	}
	for s.order.Len() >= s.capacity {
		tail := s.order.Back()
		s.order.Remove(tail)
		delete(s.entries, tail.Value.(*cacheEntry).key)
		evictions.Add(1)
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, inst: inst, ev: ev})
}
