package experiments

import (
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	ids := []string{"F1", "F2", "F3", "F4", "F5", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}
	all := All()
	if len(all) != len(ids) {
		t.Fatalf("expected %d experiments, got %d", len(ids), len(all))
	}
	for _, id := range ids {
		if _, err := ByID(id); err != nil {
			t.Fatalf("experiment %s not registered: %v", id, err)
		}
	}
	// Ordering: figures before empirical checks, numerically within each.
	if all[0].ID != "F1" || all[4].ID != "F5" || all[5].ID != "E1" || all[len(all)-1].ID != "E13" {
		var order []string
		for _, e := range all {
			order = append(order, e.ID)
		}
		t.Fatalf("unexpected ordering: %v", order)
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("F9"); err == nil {
		t.Fatalf("unknown id must error")
	}
	if e, err := ByID("f1"); err != nil || e.ID != "F1" {
		t.Fatalf("lookup must be case-insensitive, got %v %v", e.ID, err)
	}
}

func TestRunAllQuick(t *testing.T) {
	results, err := RunAll(QuickConfig())
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(results) != len(All()) {
		t.Fatalf("expected %d results, got %d", len(All()), len(results))
	}
	for _, r := range results {
		if len(r.Rows) == 0 {
			t.Fatalf("%s produced no rows", r.ID)
		}
		if len(r.Headers) == 0 {
			t.Fatalf("%s has no headers", r.ID)
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Headers) {
				t.Fatalf("%s row width %d != header width %d", r.ID, len(row), len(r.Headers))
			}
		}
		table := r.Table()
		if !strings.Contains(table, r.ID) {
			t.Fatalf("%s table rendering missing the id:\n%s", r.ID, table)
		}
		csv := r.CSV()
		if !strings.Contains(csv, r.Headers[0]) {
			t.Fatalf("%s CSV rendering missing headers", r.ID)
		}
		// No experiment should have recorded a violation or mismatch note.
		for _, n := range r.Notes {
			if strings.Contains(n, "VIOLATION") || strings.Contains(n, "MISMATCH") || strings.Contains(n, "FAILED") {
				t.Fatalf("%s reported a failure: %s", r.ID, n)
			}
		}
	}
}

func TestFigureExperimentsMatchPaperNumbers(t *testing.T) {
	cfg := QuickConfig()

	f1, err := ByID("F1")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := f1.Run(cfg)
	if err != nil {
		t.Fatalf("F1: %v", err)
	}
	if len(r1.Rows) != 3 {
		t.Fatalf("F1 should report 3 components, got %d", len(r1.Rows))
	}

	f4, err := ByID("F4")
	if err != nil {
		t.Fatal(err)
	}
	r4, err := f4.Run(cfg)
	if err != nil {
		t.Fatalf("F4: %v", err)
	}
	for _, row := range r4.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("F4 row disagrees with the reduction: %v", row)
		}
	}

	f3, err := ByID("F3")
	if err != nil {
		t.Fatal(err)
	}
	r3, err := f3.Run(cfg)
	if err != nil {
		t.Fatalf("F3: %v", err)
	}
	// The first row is n=10: RoundRobin 20, OPT 11.
	if r3.Rows[0][1] != "20" || r3.Rows[0][2] != "11" {
		t.Fatalf("F3 first row should be RoundRobin 20 / OPT 11, got %v", r3.Rows[0])
	}
}

func TestCSVEscaping(t *testing.T) {
	r := &Result{ID: "X", Headers: []string{"a", "b"}}
	r.AddRow("plain", `needs "quotes", and commas`)
	csv := r.CSV()
	if !strings.Contains(csv, `"needs ""quotes"", and commas"`) {
		t.Fatalf("CSV escaping broken:\n%s", csv)
	}
}

func TestAddRowFormatsFloats(t *testing.T) {
	r := &Result{ID: "X", Headers: []string{"v"}}
	r.AddRow(1.23456)
	if r.Rows[0][0] != "1.235" {
		t.Fatalf("float formatting = %q, want 1.235", r.Rows[0][0])
	}
}
