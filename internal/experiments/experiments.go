// Package experiments implements the reproduction harness: one experiment per
// figure and per theorem-level claim of the paper (see DESIGN.md for the
// index). Every experiment produces a table of rows that cmd/crexp prints and
// that EXPERIMENTS.md records; bench_test.go at the repository root wraps the
// same runners in testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"crsharing/internal/core"
	"crsharing/internal/solver"
)

// Config controls the size of the experiment runs.
type Config struct {
	// Seed makes the randomised experiments reproducible.
	Seed int64
	// Quick reduces instance sizes and trial counts so the whole suite runs
	// in well under a second (used by tests and short benchmarks). The full
	// runs used for EXPERIMENTS.md set Quick to false.
	Quick bool
	// Timeout bounds every exact-optimum oracle call made through
	// ExactMakespan (0 = no limit).
	Timeout time.Duration
	// Workers bounds the worker pool of the parallel exact solvers used by
	// ExactMakespan (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns the configuration used for the recorded results.
func DefaultConfig() Config { return Config{Seed: 20140623, Quick: false} }

// QuickConfig returns the reduced configuration used by tests.
func QuickConfig() Config { return Config{Seed: 20140623, Quick: true} }

// ExactMakespan computes the optimal makespan of the instance through the
// solver registry's exact racing portfolio: the m=2 dynamic program, parallel
// branch-and-bound and the configuration enumeration run concurrently and the
// first to finish cancels the rest. It is the experiments' shared optimum
// oracle; cfg.Timeout and cfg.Workers apply to every call.
func (cfg Config) ExactMakespan(inst *core.Instance) (int, error) {
	ctx := context.Background()
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	sched, _, err := solver.NewExactPortfolio(cfg.Workers).Solve(ctx, inst)
	if err != nil {
		return 0, fmt.Errorf("experiments: exact oracle: %w", err)
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		return 0, fmt.Errorf("experiments: exact oracle produced invalid schedule: %w", err)
	}
	if !res.Finished() {
		return 0, fmt.Errorf("experiments: exact oracle schedule incomplete")
	}
	return res.Makespan(), nil
}

// Result is the outcome of one experiment: a table plus free-form notes.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (F1..F5, E1..E8).
	ID string
	// Title is a one-line description.
	Title string
	// PaperClaim states what the paper claims (the expected shape).
	PaperClaim string
	// Headers are the column names of the table.
	Headers []string
	// Rows are the table rows, already formatted as strings.
	Rows [][]string
	// Notes hold additional observations (e.g. pass/fail summaries).
	Notes []string
}

// AddRow appends a row, formatting every cell with %v.
func (r *Result) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// AddNote appends a formatted note.
func (r *Result) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the result's table as comma-separated values (headers first).
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Headers, ","))
	b.WriteString("\n")
	for _, row := range r.Rows {
		escaped := make([]string, len(row))
		for i, cell := range row {
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			escaped[i] = cell
		}
		b.WriteString(strings.Join(escaped, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID         string
	Title      string
	PaperClaim string
	Run        func(cfg Config) (*Result, error)
}

// registry holds all experiments, populated by init functions in the other
// files of this package.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate experiment %q", e.ID))
	}
	registry[e.ID] = e
}

// All returns every registered experiment sorted by ID (figures first, then
// empirical validations).
func All() []Experiment {
	var out []Experiment
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return experimentLess(out[i].ID, out[j].ID) })
	return out
}

// experimentLess orders F1..F5 before E1..E8 and numerically within a letter.
func experimentLess(a, b string) bool {
	rank := func(id string) (int, int) {
		letter := 1
		if strings.HasPrefix(id, "F") {
			letter = 0
		}
		var num int
		fmt.Sscanf(id[1:], "%d", &num)
		return letter, num
	}
	la, na := rank(a)
	lb, nb := rank(b)
	if la != lb {
		return la < lb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

// ByID returns the experiment with the given identifier.
func ByID(id string) (Experiment, error) {
	e, ok := registry[strings.ToUpper(id)]
	if !ok {
		var ids []string
		for _, x := range All() {
			ids = append(ids, x.ID)
		}
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (available: %s)", id, strings.Join(ids, ", "))
	}
	return e, nil
}

// RunAll executes every experiment with the configuration and returns the
// results in order. It stops at the first error.
func RunAll(cfg Config) ([]*Result, error) {
	var out []*Result
	for _, e := range All() {
		res, err := e.Run(cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, res)
	}
	return out, nil
}
