package experiments

import (
	"fmt"

	"crsharing/internal/algo"
	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/algo/optres2"
	"crsharing/internal/algo/optresm"
	"crsharing/internal/algo/roundrobin"
	"crsharing/internal/core"
	"crsharing/internal/gen"
	"crsharing/internal/hypergraph"
	"crsharing/internal/partition"
)

func init() {
	register(Experiment{
		ID:         "F1",
		Title:      "Figure 1 — scheduling hypergraph of the 3-processor example",
		PaperClaim: "the schedule that greedily finishes as many jobs as possible has 6 edges falling into 3 left-to-right components",
		Run:        runF1,
	})
	register(Experiment{
		ID:         "F2",
		Title:      "Figure 2 — nested vs. unnested schedules and Lemma 1 canonicalisation",
		PaperClaim: "both schedules finish in 4 steps; only Figure 2b is nested; Lemma 1 transforms any schedule into a non-wasting, progressive, nested one without extra steps",
		Run:        runF2,
	})
	register(Experiment{
		ID:         "F3",
		Title:      "Figure 3 / Theorem 3 — RoundRobin worst case",
		PaperClaim: "RoundRobin needs 2n steps, the optimum n+1, so the ratio tends to 2",
		Run:        runF3,
	})
	register(Experiment{
		ID:         "F4",
		Title:      "Figure 4 / Theorem 4 — Partition reduction gadget",
		PaperClaim: "the gadget's optimal makespan is 4 for YES-instances and 5 for NO-instances (hence a 5/4 inapproximability bound)",
		Run:        runF4,
	})
	register(Experiment{
		ID:         "F5",
		Title:      "Figure 5 / Theorem 8 — GreedyBalance worst case",
		PaperClaim: "GreedyBalance needs 2m−1 steps per block while the optimum needs about m, so the ratio tends to 2 − 1/m",
		Run:        runF5,
	})
}

func runF1(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "F1",
		Title:   "Figure 1 — scheduling hypergraph of the 3-processor example",
		Headers: []string{"component", "steps", "#k (edges)", "qk (class)", "|Ck| (nodes)"},
	}
	inst := gen.Figure1()
	sched, err := greedybalance.NewUnbalanced(greedybalance.SmallerRemaining).Schedule(inst)
	if err != nil {
		return nil, err
	}
	g, err := hypergraph.BuildFromSchedule(inst, sched)
	if err != nil {
		return nil, err
	}
	for _, c := range g.Components {
		res.AddRow(
			fmt.Sprintf("C%d", c.Index+1),
			fmt.Sprintf("%d-%d", c.FirstStep+1, c.LastStep+1),
			c.EdgeCount(), c.Class, c.Size(),
		)
	}
	res.AddNote("makespan %d, %d edges, %d components (paper shows e1..e6 and C1..C3)",
		g.Makespan(), len(g.Edges), g.NumComponents())
	if err := g.CheckObservation2(); err != nil {
		res.AddNote("Observation 2 FAILED: %v", err)
	} else {
		res.AddNote("Observation 2 holds: every component spans consecutive steps")
	}
	res.AddNote("Lemma 5 lower bound Σ(#k−1) = %d, Lemma 6 bound = %.3f", g.Lemma5Bound(), g.Lemma6Bound())
	return res, nil
}

func runF2(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "F2",
		Title:   "Figure 2 — nested vs. unnested schedules",
		Headers: []string{"schedule", "makespan", "non-wasting", "progressive", "nested"},
	}
	inst := gen.Figure2()

	nested := core.NewSchedule(4, 3)
	nested.Alloc[0] = []float64{0.5, 0.5, 0}
	nested.Alloc[1] = []float64{0.5, 0, 0.5}
	nested.Alloc[2] = []float64{0.5, 0, 0.5}
	nested.Alloc[3] = []float64{0.5, 0.5, 0}

	unnested := core.NewSchedule(4, 3)
	unnested.Alloc[0] = []float64{0.5, 0.5, 0}
	unnested.Alloc[1] = []float64{0.5, 0, 0.5}
	unnested.Alloc[2] = []float64{0.5, 0.5, 0}
	unnested.Alloc[3] = []float64{0.5, 0, 0.5}

	for _, entry := range []struct {
		name  string
		sched *core.Schedule
	}{
		{"Figure 2b (nested)", nested},
		{"Figure 2c (unnested)", unnested},
	} {
		r, err := core.Execute(inst, entry.sched)
		if err != nil {
			return nil, err
		}
		p := core.CheckProperties(r)
		res.AddRow(entry.name, r.Makespan(), p.NonWasting, p.Progressive, p.Nested)
	}

	canon, err := core.Canonicalize(inst, unnested)
	if err != nil {
		return nil, err
	}
	cr, err := core.Execute(inst, canon)
	if err != nil {
		return nil, err
	}
	cp := core.CheckProperties(cr)
	res.AddRow("Lemma 1 canonicalisation of 2c", cr.Makespan(), cp.NonWasting, cp.Progressive, cp.Nested)

	ex, err := optresm.New().Schedule(inst)
	if err != nil {
		return nil, err
	}
	res.AddNote("exact optimum (OptResAssignment2) = %d steps", core.MustMakespan(inst, ex))
	return res, nil
}

func runF3(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "F3",
		Title:   "Figure 3 / Theorem 3 — RoundRobin worst case",
		Headers: []string{"n", "RoundRobin", "OPT", "ratio", "2-2/(n+1)"},
	}
	sizes := []int{10, 50, 100, 500, 1000, 2000}
	if cfg.Quick {
		sizes = []int{10, 50, 100}
	}
	worst := 0.0
	for _, n := range sizes {
		inst := gen.Figure3(n)
		rrEval, err := algo.Evaluate(roundrobin.New(), inst)
		if err != nil {
			return nil, err
		}
		var opt int
		if n <= 600 {
			opt, err = optres2.New().Makespan(inst)
			if err != nil {
				return nil, err
			}
		} else {
			// For large n the construction's optimum is n+1 by Figure 3a; the
			// explicit witness schedule is executed to confirm feasibility.
			opt = core.MustMakespan(inst, gen.Figure3OptimalSchedule(n))
		}
		ratio := float64(rrEval.Makespan) / float64(opt)
		if ratio > worst {
			worst = ratio
		}
		res.AddRow(n, rrEval.Makespan, opt, ratio, 2-2.0/float64(n+1))
	}
	res.AddNote("worst observed ratio %.4f approaches the tight factor 2 as n grows", worst)
	return res, nil
}

func runF4(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "F4",
		Title:   "Figure 4 / Theorem 4 — Partition reduction gadget",
		Headers: []string{"elements", "partition", "gadget OPT", "expected", "agrees"},
	}
	type caseDef struct {
		name  string
		elems []int64
	}
	cases := []caseDef{
		{"{1,1}", []int64{1, 1}},
		{"{3,1,2,2}", []int64{3, 1, 2, 2}},
		{"{2,2,2}", []int64{2, 2, 2}},
		{"{1,2,3,4,5,7}", []int64{1, 2, 3, 4, 5, 7}},
		{"{2,2,2,2,2}", []int64{2, 2, 2, 2, 2}},
		{"{4,3,3,2,2,2}", []int64{4, 3, 3, 2, 2, 2}},
	}
	if cfg.Quick {
		cases = cases[:4]
	}
	allAgree := true
	for _, c := range cases {
		p := partition.New(c.elems...)
		yes, err := p.Decide()
		if err != nil {
			return nil, err
		}
		inst, err := gen.PartitionGadget(c.elems, 0.5/float64(len(c.elems)))
		if err != nil {
			return nil, err
		}
		opt, err := optresm.New().Makespan(inst)
		if err != nil {
			return nil, err
		}
		expected := 5
		verdict := "NO"
		if yes {
			expected = 4
			verdict = "YES"
		}
		agrees := opt == expected
		if !agrees {
			allAgree = false
		}
		res.AddRow(c.name, verdict, opt, expected, agrees)
	}
	if allAgree {
		res.AddNote("the reduction separates YES (makespan 4) from NO (makespan 5) on every case: the 5/4 gap of Corollary 1 is realised")
	} else {
		res.AddNote("MISMATCH: some gadget optimum disagrees with the Partition decision")
	}
	return res, nil
}

func runF5(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "F5",
		Title:   "Figure 5 / Theorem 8 — GreedyBalance worst case",
		Headers: []string{"m", "blocks", "GreedyBalance", "steps/block", "lower bound", "ratio", "2-1/m"},
	}
	ms := []int{2, 3, 4, 5}
	if cfg.Quick {
		ms = []int{2, 3}
	}
	for _, m := range ms {
		eps := 1.0 / float64(20*m*(m+1))
		blocks := gen.MaxBlocks(m, eps)
		if cap := 16; blocks > cap {
			blocks = cap
		}
		if cfg.Quick && blocks > 6 {
			blocks = 6
		}
		inst := gen.GreedyWorstCase(m, blocks, eps)
		ev, err := algo.Evaluate(greedybalance.New(), inst)
		if err != nil {
			return nil, err
		}
		lb := core.LowerBounds(inst).Best()
		res.AddRow(m, blocks, ev.Makespan,
			float64(ev.Makespan)/float64(blocks),
			lb,
			float64(ev.Makespan)/float64(lb),
			2-1.0/float64(m))
	}
	res.AddNote("GreedyBalance spends 2m−1 steps per block; an optimal schedule pipelines the unit-sum diagonals and needs about m per block")

	// On sizes where the exact optimum is computable, report it so both sides
	// of Theorem 8 are visible: OPT = m·blocks + m − 1 exactly.
	exactCases := []struct{ m, blocks int }{{2, 4}, {3, 2}}
	if cfg.Quick {
		exactCases = []struct{ m, blocks int }{{2, 3}}
	}
	for _, c := range exactCases {
		eps := 1.0 / float64(20*c.m*(c.m+1))
		inst := gen.GreedyWorstCase(c.m, c.blocks, eps)
		gb, err := algo.Evaluate(greedybalance.New(), inst)
		if err != nil {
			return nil, err
		}
		opt, err := cfg.ExactMakespan(inst)
		if err != nil {
			return nil, err
		}
		res.AddNote("exact check m=%d, %d blocks: GreedyBalance %d vs OPT %d (ratio %.3f, bound %.3f)",
			c.m, c.blocks, gb.Makespan, opt, float64(gb.Makespan)/float64(opt), 2-1.0/float64(c.m))
	}
	return res, nil
}
