package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"crsharing/internal/algo"
	"crsharing/internal/algo/branchbound"
	"crsharing/internal/algo/chunked"
	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/algo/optres2"
	"crsharing/internal/algo/optresm"
	"crsharing/internal/algo/roundrobin"
	"crsharing/internal/core"
	"crsharing/internal/gen"
	"crsharing/internal/manycore"
	"crsharing/internal/stats"
	"crsharing/internal/trace"
)

func init() {
	register(Experiment{
		ID:         "E9",
		Title:      "Ablation — how much of GreedyBalance's guarantee comes from the balance rule",
		PaperClaim: "the analysis of Section 8 rests on the balanced property; the tie-breaking rule is secondary",
		Run:        runE9,
	})
	register(Experiment{
		ID:         "E10",
		Title:      "Ablation — Lemma 1 canonicalisation applied to deliberately bad schedules",
		PaperClaim: "every schedule can be made non-wasting, progressive and nested without increasing its makespan (Lemma 1)",
		Run:        runE10,
	})
	register(Experiment{
		ID:         "E11",
		Title:      "Ablation — lookahead windows and exact-solver cost",
		PaperClaim: "the exact algorithms are polynomial but impractical (Theorems 5/6); bounded lookahead recovers most of the gap",
		Run:        runE11,
	})
	register(Experiment{
		ID:         "E12",
		Title:      "Substrate scaling — simulator behaviour as the core count grows",
		PaperClaim: "the motivation (§1): the more cores share the channel, the more the bandwidth distribution dominates performance",
		Run:        runE12,
	})
}

func runE9(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "E9",
		Title:   "Ablation — balance rule vs. tie-break rule",
		Headers: []string{"variant", "instances", "avg ratio to OPT", "max ratio to OPT", "balanced schedules"},
	}
	trials := 120
	maxJobs := 6
	if cfg.Quick {
		trials = 30
		maxJobs = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	variants := []*greedybalance.Scheduler{
		greedybalance.New(),
		greedybalance.NewWithTie(greedybalance.SmallerRemaining),
		greedybalance.NewWithTie(greedybalance.ProcessorIndex),
		greedybalance.NewUnbalanced(greedybalance.LargerRemaining),
		greedybalance.NewUnbalanced(greedybalance.SmallerRemaining),
	}
	type agg struct {
		ratios   []float64
		balanced int
	}
	aggs := make([]agg, len(variants))
	for trial := 0; trial < trials; trial++ {
		inst := gen.RandomUneven(rng, 2, 1, maxJobs, 0.05, 1.0)
		opt, err := optres2.New().Makespan(inst)
		if err != nil {
			return nil, err
		}
		for vi, v := range variants {
			ev, err := algo.Evaluate(v, inst)
			if err != nil {
				return nil, err
			}
			aggs[vi].ratios = append(aggs[vi].ratios, float64(ev.Makespan)/float64(opt))
			if ev.Properties.Balanced {
				aggs[vi].balanced++
			}
		}
	}
	for vi, v := range variants {
		s := stats.Summarize(aggs[vi].ratios)
		res.AddRow(v.Name(), trials, s.Mean, s.Max, fmt.Sprintf("%d/%d", aggs[vi].balanced, trials))
	}
	res.AddNote("the unbalanced variants lose the Definition-5 property on a fraction of the instances and show the largest worst-case ratios")
	return res, nil
}

func runE10(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "E10",
		Title:   "Ablation — Lemma 1 canonicalisation",
		Headers: []string{"source schedule", "instances", "avg makespan before", "avg makespan after", "increased", "all properties after"},
	}
	trials := 150
	if cfg.Quick {
		trials = 40
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 10))

	type sourceDef struct {
		name  string
		build func(inst *core.Instance) (*core.Schedule, error)
	}
	sources := []sourceDef{
		{"round-robin", func(inst *core.Instance) (*core.Schedule, error) { return roundrobin.New().Schedule(inst) }},
		{"wasteful-random", func(inst *core.Instance) (*core.Schedule, error) { return wastefulRandomSchedule(rng, inst), nil }},
	}
	for _, src := range sources {
		var before, after []float64
		increased := 0
		allProps := 0
		for trial := 0; trial < trials; trial++ {
			m := 2 + rng.Intn(3)
			inst := gen.RandomUneven(rng, m, 1, 5, 0.05, 1.0)
			orig, err := src.build(inst)
			if err != nil {
				return nil, err
			}
			origRes, err := core.Execute(inst, orig)
			if err != nil {
				return nil, err
			}
			canon, err := core.Canonicalize(inst, orig)
			if err != nil {
				return nil, err
			}
			canonRes, err := core.Execute(inst, canon)
			if err != nil {
				return nil, err
			}
			before = append(before, float64(origRes.Makespan()))
			after = append(after, float64(canonRes.Makespan()))
			if canonRes.Makespan() > origRes.Makespan() {
				increased++
			}
			p := core.CheckProperties(canonRes)
			if p.NonWasting && p.Progressive && p.Nested {
				allProps++
			}
		}
		res.AddRow(src.name, trials, stats.Mean(before), stats.Mean(after), increased, fmt.Sprintf("%d/%d", allProps, trials))
	}
	res.AddNote("'increased' counts canonicalisations that made the makespan worse — Lemma 1 says this must be zero")
	return res, nil
}

// wastefulRandomSchedule builds a feasible but deliberately sloppy schedule:
// random fractions of the resource, random processor order, never more than
// 70% of the capacity used.
func wastefulRandomSchedule(rng *rand.Rand, inst *core.Instance) *core.Schedule {
	b := core.NewBuilder(inst)
	return b.BuildGreedy(func(b *core.Builder) []float64 {
		m := b.NumProcessors()
		shares := make([]float64, m)
		avail := 0.3 + 0.4*rng.Float64()
		for _, i := range rng.Perm(m) {
			if !b.Active(i) || avail <= 0 {
				continue
			}
			give := avail * (0.3 + 0.7*rng.Float64())
			if d := b.DemandThisStep(i); give > d {
				give = d
			}
			shares[i] = give
			avail -= give
		}
		return shares
	})
}

func runE11(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "E11",
		Title:   "Ablation — lookahead windows and exact-solver cost",
		Headers: []string{"algorithm", "avg ratio to OPT", "max ratio to OPT", "avg time"},
	}
	trials := 25
	m := 3
	jobs := 6
	if cfg.Quick {
		trials = 8
		jobs = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	type contender struct {
		name string
		run  func(inst *core.Instance) (int, error)
	}
	contenders := []contender{
		{"round-robin", func(inst *core.Instance) (int, error) { return evalMakespan(roundrobin.New(), inst) }},
		{"greedy-balance", func(inst *core.Instance) (int, error) { return evalMakespan(greedybalance.New(), inst) }},
		{"chunked-exact-w2", func(inst *core.Instance) (int, error) { return evalMakespan(chunked.New(2), inst) }},
		{"chunked-exact-w3", func(inst *core.Instance) (int, error) { return evalMakespan(chunked.New(3), inst) }},
		{"branch-and-bound", func(inst *core.Instance) (int, error) { return branchbound.New().Makespan(inst) }},
		{"opt-res-assignment-2", func(inst *core.Instance) (int, error) { return optresm.New().Makespan(inst) }},
	}
	ratios := make([][]float64, len(contenders))
	times := make([]time.Duration, len(contenders))
	for trial := 0; trial < trials; trial++ {
		inst := gen.Random(rng, m, jobs, 0.05, 1.0)
		opt, err := cfg.ExactMakespan(inst)
		if err != nil {
			return nil, err
		}
		for ci, c := range contenders {
			start := time.Now()
			got, err := c.run(inst)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", c.name, err)
			}
			times[ci] += time.Since(start)
			ratios[ci] = append(ratios[ci], float64(got)/float64(opt))
		}
	}
	for ci, c := range contenders {
		s := stats.Summarize(ratios[ci])
		res.AddRow(c.name, s.Mean, s.Max, (times[ci] / time.Duration(trials)).Round(time.Microsecond).String())
	}
	res.AddNote("window w interpolates between the RoundRobin-style per-column schedule and the exact algorithm; the exact solvers confirm each other")
	return res, nil
}

func evalMakespan(s algo.Scheduler, inst *core.Instance) (int, error) {
	ev, err := algo.Evaluate(s, inst)
	if err != nil {
		return 0, err
	}
	return ev.Makespan, nil
}

func runE12(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "E12",
		Title:   "Substrate scaling — simulator behaviour as the core count grows",
		Headers: []string{"cores", "policy", "ticks", "ratio to LB", "bus util %"},
	}
	coreCounts := []int{4, 16, 64}
	if cfg.Quick {
		coreCounts = []int{4, 16}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	for _, cores := range coreCounts {
		tasks, err := trace.Scientific(rng, trace.DefaultScientificConfig(cores))
		if err != nil {
			return nil, err
		}
		w := manycore.NewWorkload(cores)
		w.AssignRoundRobin(tasks)
		machine := manycore.NewMachine(cores)
		metrics, err := manycore.Compare(machine, w, manycore.EqualShare{}, manycore.GreedyBalance{})
		if err != nil {
			return nil, err
		}
		for _, m := range metrics {
			res.AddRow(cores, m.Policy, m.Ticks, m.RatioToLowerBound(), 100*m.Utilization())
		}
	}
	res.AddNote("demand-aware allocation always wins; the gap is largest when per-core demands are comparable to the fair share (few cores) and shrinks once the channel is heavily oversubscribed, where any work-conserving split keeps the bus saturated")
	return res, nil
}
