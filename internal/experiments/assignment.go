package experiments

import (
	"math/rand"

	"crsharing/internal/algo"
	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/assign"
	"crsharing/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "E13",
		Title:      "Section 9 outlook — re-introducing the placement decision",
		PaperClaim: "the paper fixes the task-to-processor assignment; its outlook asks how placement interacts with resource scheduling",
		Run:        runE13,
	})
}

func runE13(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "E13",
		Title:   "Placement policies combined with GreedyBalance resource scheduling",
		Headers: []string{"placement policy", "instances", "avg ratio to LB", "p90 ratio", "max ratio"},
	}
	trials := 80
	taskCount := 12
	m := 4
	if cfg.Quick {
		trials = 20
		taskCount = 8
		m = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	policies := append(assign.Policies(), assign.Random{Rng: rand.New(rand.NewSource(cfg.Seed))})
	ratios := make([][]float64, len(policies))

	for trial := 0; trial < trials; trial++ {
		tasks := assign.RandomTasks(rng, taskCount, 1, 5, 0.05, 1.0)
		for pi, p := range policies {
			placement := p.Assign(tasks, m)
			inst, err := placement.Instance(tasks)
			if err != nil {
				return nil, err
			}
			ev, err := algo.Evaluate(greedybalance.New(), inst)
			if err != nil {
				return nil, err
			}
			// Compare against the placement-independent lower bound (total
			// work plus longest task), not the per-instance bound: a bad
			// placement should be penalised, not excused by the weaker bound
			// of the instance it created.
			globalLB := placementFreeLowerBound(tasks)
			ratios[pi] = append(ratios[pi], float64(ev.Makespan)/float64(globalLB))
		}
	}
	for pi, p := range policies {
		s := stats.Summarize(ratios[pi])
		res.AddRow(p.Name(), trials, s.Mean, s.P90, s.Max)
	}
	res.AddNote("ratios are against the placement-independent work bound ⌈Σ r·p⌉, so they combine the cost of the placement and of the resource assignment")
	return res, nil
}

// placementFreeLowerBound is ⌈total work⌉ — valid for every placement since
// the shared resource serves at most one unit of work per step — but at least
// the longest single task (which must run on one processor under any
// placement).
func placementFreeLowerBound(tasks []assign.Task) int {
	var work float64
	longest := 0
	for _, t := range tasks {
		work += t.Work()
		if s := t.Steps(); s > longest {
			longest = s
		}
	}
	lb := int(work + 0.999999999)
	if longest > lb {
		lb = longest
	}
	if lb < 1 {
		lb = 1
	}
	return lb
}
