package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"crsharing/internal/algo"
	"crsharing/internal/algo/bruteforce"
	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/algo/optres2"
	"crsharing/internal/algo/optresm"
	"crsharing/internal/algo/roundrobin"
	"crsharing/internal/core"
	"crsharing/internal/gen"
	"crsharing/internal/hypergraph"
	"crsharing/internal/manycore"
	"crsharing/internal/trace"
)

func init() {
	register(Experiment{
		ID:         "E1",
		Title:      "Observation 1 — work lower bound vs. every algorithm",
		PaperClaim: "no feasible schedule beats Σ r_ij·p_ij (nor the chain bound n)",
		Run:        runE1,
	})
	register(Experiment{
		ID:         "E2",
		Title:      "Theorem 3 — RoundRobin approximation ratio on random instances",
		PaperClaim: "RoundRobin / OPT ≤ 2, with 2 attained only by adversarial instances",
		Run:        runE2,
	})
	register(Experiment{
		ID:         "E3",
		Title:      "Theorem 5 — the m=2 dynamic program: optimality and O(n²) scaling",
		PaperClaim: "OptResAssignment is exact and runs in quadratic time; the priority-queue variant matches it",
		Run:        runE3,
	})
	register(Experiment{
		ID:         "E4",
		Title:      "Theorem 6 — OptResAssignment2 optimality for fixed m",
		PaperClaim: "the configuration-enumeration algorithm is exact for every fixed m",
		Run:        runE4,
	})
	register(Experiment{
		ID:         "E5",
		Title:      "Theorems 7/8 — GreedyBalance approximation ratio on random instances",
		PaperClaim: "GreedyBalance / OPT ≤ 2 − 1/m; the bound is tight only for the block construction",
		Run:        runE5,
	})
	register(Experiment{
		ID:         "E6",
		Title:      "Lemmas 2, 5, 6 — hypergraph bounds on balanced schedules",
		PaperClaim: "the component-counting bounds hold for every non-wasting, progressive, balanced schedule and lower-bound the optimum",
		Run:        runE6,
	})
	register(Experiment{
		ID:         "E7",
		Title:      "Many-core substrate — bandwidth policies on synthetic traces (paper §1 motivation)",
		PaperClaim: "demand-aware bandwidth assignment (the paper's setting) beats demand-oblivious arbitration on I/O-intensive workloads",
		Run:        runE7,
	})
	register(Experiment{
		ID:         "E8",
		Title:      "Section 9 outlook — arbitrary job sizes (heuristic extension)",
		PaperClaim: "the paper conjectures the results transfer to arbitrary sizes; the balanced greedy stays within a factor 2 of the lower bound empirically",
		Run:        runE8,
	})
}

func runE1(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "E1",
		Title:   "Observation 1 — work lower bound vs. every algorithm",
		Headers: []string{"algorithm", "instances", "min ratio to LB", "violations"},
	}
	trials := 400
	if cfg.Quick {
		trials = 60
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	schedulers := []algo.Scheduler{
		roundrobin.New(),
		greedybalance.New(),
		greedybalance.NewWithTie(greedybalance.SmallerRemaining),
		greedybalance.NewUnbalanced(greedybalance.LargerRemaining),
	}
	minRatio := make([]float64, len(schedulers))
	violations := make([]int, len(schedulers))
	for i := range minRatio {
		minRatio[i] = math.Inf(1)
	}
	for trial := 0; trial < trials; trial++ {
		m := 2 + rng.Intn(7)
		inst := gen.RandomUneven(rng, m, 1, 8, 0.02, 1.0)
		lb := core.LowerBounds(inst).Best()
		for si, s := range schedulers {
			ev, err := algo.Evaluate(s, inst)
			if err != nil {
				return nil, err
			}
			ratio := float64(ev.Makespan) / float64(lb)
			if ratio < minRatio[si] {
				minRatio[si] = ratio
			}
			if ev.Makespan < lb {
				violations[si]++
			}
		}
	}
	for si, s := range schedulers {
		res.AddRow(s.Name(), trials, minRatio[si], violations[si])
	}
	res.AddNote("a violation would mean a schedule beat the Observation 1 / chain lower bound, which is impossible")
	return res, nil
}

func runE2(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "E2",
		Title:   "Theorem 3 — RoundRobin ratio on random two-processor instances",
		Headers: []string{"requirement range", "instances", "avg RR/OPT", "max RR/OPT", "bound"},
	}
	trials := 200
	maxJobs := 14
	if cfg.Quick {
		trials = 40
		maxJobs = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	ranges := []struct {
		name   string
		lo, hi float64
	}{
		{"uniform [0.05,1.00]", 0.05, 1.0},
		{"heavy [0.60,1.00]", 0.6, 1.0},
		{"light [0.05,0.30]", 0.05, 0.3},
	}
	for _, rg := range ranges {
		var sum, worst float64
		for trial := 0; trial < trials; trial++ {
			inst := gen.Random(rng, 2, 1+rng.Intn(maxJobs), rg.lo, rg.hi)
			rr, err := algo.Evaluate(roundrobin.New(), inst)
			if err != nil {
				return nil, err
			}
			opt, err := optres2.New().Makespan(inst)
			if err != nil {
				return nil, err
			}
			ratio := float64(rr.Makespan) / float64(opt)
			sum += ratio
			if ratio > worst {
				worst = ratio
			}
			if ratio > 2+1e-9 {
				res.AddNote("VIOLATION: ratio %.3f exceeds 2 on %v", ratio, inst)
			}
		}
		res.AddRow(rg.name, trials, sum/float64(trials), worst, 2.0)
	}
	return res, nil
}

func runE3(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "E3",
		Title:   "Theorem 5 — m=2 dynamic program scaling",
		Headers: []string{"n (jobs/proc)", "dense DP", "PQ variant", "time dense", "time PQ", "time ratio vs prev"},
	}
	sizes := []int{64, 128, 256, 512, 1024, 2048}
	if cfg.Quick {
		sizes = []int{32, 64, 128}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	var prev time.Duration
	for _, n := range sizes {
		inst := gen.Random(rng, 2, n, 0.05, 1.0)
		start := time.Now()
		dense, err := optres2.New().Makespan(inst)
		if err != nil {
			return nil, err
		}
		denseTime := time.Since(start)
		start = time.Now()
		pq, err := optres2.NewPQ().Makespan(inst)
		if err != nil {
			return nil, err
		}
		pqTime := time.Since(start)
		growth := "-"
		if prev > 0 {
			growth = fmt.Sprintf("%.2fx", float64(denseTime)/float64(prev))
		}
		prev = denseTime
		if dense != pq {
			res.AddNote("MISMATCH at n=%d: dense %d vs PQ %d", n, dense, pq)
		}
		res.AddRow(n, dense, pq, denseTime.Round(time.Microsecond).String(), pqTime.Round(time.Microsecond).String(), growth)
	}
	// Cross-check against brute force on small instances.
	agree := 0
	checks := 40
	if cfg.Quick {
		checks = 15
	}
	for i := 0; i < checks; i++ {
		inst := gen.RandomUneven(rng, 2, 1, 5, 0.05, 1.0)
		opt, err := optres2.New().Makespan(inst)
		if err != nil {
			return nil, err
		}
		bf, err := bruteforce.Makespan(inst)
		if err != nil {
			return nil, err
		}
		if opt == bf {
			agree++
		}
	}
	res.AddNote("brute-force cross-check: %d/%d small instances agree (doubling n should roughly quadruple the dense DP time)", agree, checks)
	return res, nil
}

func runE4(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "E4",
		Title:   "Theorem 6 — OptResAssignment2 optimality for fixed m",
		Headers: []string{"m", "instances", "agree with oracle", "max jobs/proc"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	type cfgRow struct {
		m, trials, maxJobs int
	}
	rows := []cfgRow{{2, 40, 6}, {3, 25, 4}, {4, 12, 3}}
	if cfg.Quick {
		rows = []cfgRow{{2, 12, 4}, {3, 8, 3}, {4, 4, 2}}
	}
	for _, rc := range rows {
		agree := 0
		for trial := 0; trial < rc.trials; trial++ {
			inst := gen.RandomUneven(rng, rc.m, 1, rc.maxJobs, 0.05, 1.0)
			got, err := optresm.New().Makespan(inst)
			if err != nil {
				return nil, err
			}
			var want int
			if rc.m == 2 {
				want, err = optres2.New().Makespan(inst)
			} else {
				want, err = bruteforce.Makespan(inst)
			}
			if err != nil {
				return nil, err
			}
			if got == want {
				agree++
			} else {
				res.AddNote("MISMATCH m=%d trial %d: optresm %d vs oracle %d", rc.m, trial, got, want)
			}
		}
		res.AddRow(rc.m, rc.trials, fmt.Sprintf("%d/%d", agree, rc.trials), rc.maxJobs)
	}
	return res, nil
}

func runE5(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "E5",
		Title:   "Theorems 7/8 — GreedyBalance ratio on random instances",
		Headers: []string{"m", "instances", "avg GB/OPT", "max GB/OPT", "2-1/m"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	type cfgRow struct {
		m, trials, maxJobs int
	}
	rows := []cfgRow{{2, 120, 8}, {3, 50, 4}, {4, 20, 3}}
	if cfg.Quick {
		rows = []cfgRow{{2, 30, 5}, {3, 15, 3}}
	}
	for _, rc := range rows {
		var sum, worst float64
		for trial := 0; trial < rc.trials; trial++ {
			inst := gen.RandomUneven(rng, rc.m, 1, rc.maxJobs, 0.05, 1.0)
			gb, err := algo.Evaluate(greedybalance.New(), inst)
			if err != nil {
				return nil, err
			}
			opt, err := cfg.ExactMakespan(inst)
			if err != nil {
				return nil, err
			}
			ratio := float64(gb.Makespan) / float64(opt)
			sum += ratio
			if ratio > worst {
				worst = ratio
			}
			bound := 2 - 1.0/float64(rc.m)
			if ratio > bound+1e-9 {
				res.AddNote("VIOLATION: m=%d ratio %.3f exceeds %.3f on %v", rc.m, ratio, bound, inst)
			}
		}
		res.AddRow(rc.m, rc.trials, sum/float64(rc.trials), worst, 2-1.0/float64(rc.m))
	}
	return res, nil
}

func runE6(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "E6",
		Title:   "Lemmas 2, 5, 6 — hypergraph bounds on balanced schedules",
		Headers: []string{"check", "instances", "holds", "avg slack"},
	}
	trials := 200
	if cfg.Quick {
		trials = 40
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	lemma2OK, obs2OK, lemma5OK, lemma6OK := 0, 0, 0, 0
	var slack5, slack6 float64
	for trial := 0; trial < trials; trial++ {
		m := 2 + rng.Intn(4)
		inst := gen.RandomUneven(rng, m, 1, 6, 0.05, 1.0)
		sched, err := greedybalance.New().Schedule(inst)
		if err != nil {
			return nil, err
		}
		r, err := core.Execute(inst, sched)
		if err != nil {
			return nil, err
		}
		g, err := hypergraph.Build(r)
		if err != nil {
			return nil, err
		}
		if g.CheckObservation2() == nil {
			obs2OK++
		}
		if g.CheckLemma2() == nil {
			lemma2OK++
		}
		if g.Lemma5Bound() <= r.Makespan() {
			lemma5OK++
			slack5 += float64(r.Makespan() - g.Lemma5Bound())
		}
		if g.Lemma6Bound() <= float64(inst.MaxJobs())+1e-9 {
			lemma6OK++
			slack6 += float64(inst.MaxJobs()) - g.Lemma6Bound()
		}
	}
	res.AddRow("Observation 2 (consecutive components)", trials, fmt.Sprintf("%d/%d", obs2OK, trials), "-")
	res.AddRow("Lemma 2 (|Ck| >= #k+qk-1)", trials, fmt.Sprintf("%d/%d", lemma2OK, trials), "-")
	res.AddRow("Lemma 5 bound <= makespan", trials, fmt.Sprintf("%d/%d", lemma5OK, trials), slack5/float64(trials))
	res.AddRow("Lemma 6 bound <= n", trials, fmt.Sprintf("%d/%d", lemma6OK, trials), slack6/float64(trials))
	return res, nil
}

func runE7(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "E7",
		Title:   "Many-core substrate — bandwidth policies on synthetic traces",
		Headers: []string{"workload", "policy", "ticks", "ratio to LB", "bus util %", "stall core-ticks"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	type scenario struct {
		name  string
		cores int
		build func() ([]*manycore.Task, error)
	}
	cores := 16
	tasks := 16
	vms := 24
	if cfg.Quick {
		cores, tasks, vms = 8, 8, 12
	}
	scenarios := []scenario{
		{
			name:  fmt.Sprintf("scientific %d cores", cores),
			cores: cores,
			build: func() ([]*manycore.Task, error) {
				return trace.Scientific(rng, trace.DefaultScientificConfig(tasks))
			},
		},
		{
			name:  fmt.Sprintf("vm-consolidation %d cores", cores),
			cores: cores,
			build: func() ([]*manycore.Task, error) {
				return trace.VMs(rng, trace.DefaultVMConfig(vms))
			},
		},
	}
	for _, sc := range scenarios {
		taskList, err := sc.build()
		if err != nil {
			return nil, err
		}
		w := manycore.NewWorkload(sc.cores)
		w.AssignRoundRobin(taskList)
		machine := manycore.NewMachine(sc.cores)
		metrics, err := manycore.Compare(machine, w, manycore.Policies()...)
		if err != nil {
			return nil, err
		}
		for _, m := range metrics {
			res.AddRow(sc.name, m.Policy, m.Ticks, m.RatioToLowerBound(), 100*m.Utilization(), m.StallTicks)
		}
	}
	res.AddNote("equal-share is the demand-oblivious baseline; greedy-balance is the paper's balanced strategy used online")
	return res, nil
}

func runE8(cfg Config) (*Result, error) {
	res := &Result{
		ID:      "E8",
		Title:   "Section 9 outlook — arbitrary job sizes",
		Headers: []string{"algorithm", "instances", "avg ratio to LB", "max ratio to LB"},
	}
	trials := 120
	if cfg.Quick {
		trials = 25
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	schedulers := []algo.Scheduler{greedybalance.New(), roundrobin.New()}
	sums := make([]float64, len(schedulers))
	worst := make([]float64, len(schedulers))
	for trial := 0; trial < trials; trial++ {
		m := 2 + rng.Intn(4)
		inst := gen.RandomSized(rng, m, 1+rng.Intn(5), 0.05, 1.0, 4.0)
		lb := core.LowerBounds(inst).Best()
		for si, s := range schedulers {
			ev, err := algo.Evaluate(s, inst)
			if err != nil {
				return nil, err
			}
			ratio := float64(ev.Makespan) / float64(lb)
			sums[si] += ratio
			if ratio > worst[si] {
				worst[si] = ratio
			}
		}
	}
	for si, s := range schedulers {
		res.AddRow(s.Name(), trials, sums[si]/float64(trials), worst[si])
	}
	res.AddNote("ratios are against the lower bound, not the (unknown) optimum, so they overstate the true approximation factor")
	return res, nil
}
