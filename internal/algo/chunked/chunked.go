// Package chunked implements a rolling-horizon heuristic for the CRSharing
// problem with unit size jobs: the job sequences are cut into windows of at
// most W columns, each window is solved exactly with the fixed-m algorithm of
// package optresm, and the resulting schedules are concatenated. It
// interpolates between RoundRobin (W = 1 behaves like a phase-per-column
// schedule with optimal intra-phase packing) and the exact algorithm
// (W ≥ n), and serves as the "what if the scheduler could look a few jobs
// ahead" ablation in the experiments. The paper does not define this
// algorithm; it is an extension in the spirit of its Section 9 outlook.
package chunked

import (
	"context"
	"fmt"

	"crsharing/internal/algo/optresm"
	"crsharing/internal/core"
)

// Scheduler is the rolling-horizon (windowed exact) heuristic.
type Scheduler struct {
	// Window is the number of job columns solved exactly at a time; values
	// below 1 are treated as 1.
	Window int
	// MaxConfigs is forwarded to the per-window exact solver (0 = default).
	MaxConfigs int
}

// New returns a chunked scheduler with the given window.
func New(window int) *Scheduler { return &Scheduler{Window: window} }

// Name implements algo.Scheduler.
func (s *Scheduler) Name() string { return fmt.Sprintf("chunked-exact-w%d", s.window()) }

func (s *Scheduler) window() int {
	if s.Window < 1 {
		return 1
	}
	return s.Window
}

// Schedule implements algo.Scheduler.
func (s *Scheduler) Schedule(inst *core.Instance) (*core.Schedule, error) {
	return s.ScheduleContext(context.Background(), inst)
}

// ScheduleContext is Schedule with cooperative cancellation: the context is
// forwarded to the exact per-window solves, so cancellation takes effect
// within a window.
func (s *Scheduler) ScheduleContext(ctx context.Context, inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if !inst.IsUnitSize() {
		return nil, fmt.Errorf("chunked: requires unit size jobs")
	}
	m := inst.NumProcessors()
	n := inst.MaxJobs()
	w := s.window()
	exact := &optresm.Scheduler{MaxConfigs: s.MaxConfigs}

	out := &core.Schedule{}
	for start := 0; start < n; start += w {
		end := start + w
		if end > n {
			end = n
		}
		// Build the window sub-instance: columns [start, end) of every
		// processor (processors whose sequence ends earlier contribute fewer
		// jobs, possibly none).
		rows := make([][]float64, m)
		for i := 0; i < m; i++ {
			for j := start; j < end && j < inst.NumJobs(i); j++ {
				rows[i] = append(rows[i], inst.Job(i, j).Req)
			}
		}
		sub := core.NewInstance(rows...)
		if sub.TotalJobs() == 0 {
			continue
		}
		subSched, err := exact.ScheduleContext(ctx, sub)
		if err != nil {
			return nil, fmt.Errorf("chunked: window [%d,%d): %w", start+1, end, err)
		}
		// The window schedules are independent because every window starts
		// with all processors aligned at its first column, so concatenation
		// is feasible (it may waste resource at window boundaries, exactly
		// like RoundRobin does at phase boundaries).
		for _, row := range subSched.Alloc {
			out.AppendStep(row)
		}
	}
	out.Trim()
	return out, nil
}
