package chunked

import (
	"math/rand"
	"testing"

	"crsharing/internal/algo/bruteforce"
	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/gen"
)

func makespan(t *testing.T, s *Scheduler, inst *core.Instance) int {
	t.Helper()
	sched, err := s.Schedule(inst)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() {
		t.Fatalf("chunked schedule does not finish all jobs")
	}
	return res.Makespan()
}

func TestFullWindowEqualsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		inst := gen.RandomUneven(rng, 2+rng.Intn(2), 1, 4, 0.05, 1.0)
		opt, err := bruteforce.Makespan(inst)
		if err != nil {
			t.Fatalf("bruteforce: %v", err)
		}
		got := makespan(t, New(inst.MaxJobs()), inst)
		if got != opt {
			t.Fatalf("trial %d: window covering everything must be exact: %d vs %d\n%v", trial, got, opt, inst)
		}
	}
}

func TestWideningTheWindowNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 15; trial++ {
		inst := gen.Random(rng, 3, 6, 0.05, 1.0)
		prev := makespan(t, New(1), inst)
		full := makespan(t, New(inst.MaxJobs()), inst)
		if full > prev {
			t.Fatalf("trial %d: full window %d worse than window 1 %d", trial, full, prev)
		}
	}
}

func TestWindowOneIsStillFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 15; trial++ {
		inst := gen.Random(rng, 3, 5, 0.05, 1.0)
		got := makespan(t, New(1), inst)
		opt, err := bruteforce.Makespan(inst)
		if err != nil {
			t.Fatalf("bruteforce: %v", err)
		}
		// Window 1 is a per-column schedule, hence at most a factor 2 away
		// (the RoundRobin argument of Theorem 3 applies verbatim).
		if got > 2*opt {
			t.Fatalf("trial %d: window-1 schedule %d exceeds 2·OPT %d", trial, got, 2*opt)
		}
	}
}

func TestChunkBoundariesVsGreedy(t *testing.T) {
	// On the Figure 3 family a window of 2 already recovers most of the gap
	// between RoundRobin (2n) and the optimum (n+1).
	inst := gen.Figure3(20)
	w2 := makespan(t, New(2), inst)
	if w2 >= 2*20 {
		t.Fatalf("window-2 should beat RoundRobin's 2n on the Figure 3 family, got %d", w2)
	}
	gb, err := greedybalance.New().Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if opt := core.MustMakespan(inst, gb); w2 < opt {
		// GreedyBalance is optimal on this family (n+1 steps), so no
		// heuristic can beat it.
		t.Fatalf("window-2 makespan %d below the optimum %d: impossible", w2, opt)
	}
}

func TestUnevenAndEmptyProcessors(t *testing.T) {
	inst := core.NewInstance([]float64{0.9, 0.8, 0.7}, []float64{0.5}, nil)
	got := makespan(t, New(2), inst)
	lb := core.LowerBounds(inst).Best()
	if got < lb {
		t.Fatalf("makespan %d below lower bound %d", got, lb)
	}
}

func TestRejectsNonUnitSizes(t *testing.T) {
	inst := core.NewSizedInstance([]core.Job{{Req: 0.5, Size: 2}})
	if _, err := New(2).Schedule(inst); err == nil {
		t.Fatalf("expected error for non-unit sizes")
	}
}

func TestName(t *testing.T) {
	if New(3).Name() != "chunked-exact-w3" {
		t.Fatalf("unexpected name %q", New(3).Name())
	}
	if New(0).Name() != "chunked-exact-w1" {
		t.Fatalf("window below 1 must clamp to 1")
	}
}
