package branchbound

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/progress"
)

// ParallelScheduler is the multi-core variant of the exact branch-and-bound
// solver. It expands the root into a frontier of independent subtrees and
// explores them on a pool of workers that share a single atomic incumbent
// bound, so a good solution found by any worker immediately tightens the
// pruning of every other. Work is distributed through a bounded queue:
// workers offload one successor subtree whenever the queue has room and
// otherwise recurse locally, which keeps all cores busy without unbounded
// task inflation.
type ParallelScheduler struct {
	// Workers is the pool size (0 = GOMAXPROCS).
	Workers int
	// MaxNodes caps the total nodes explored across all workers
	// (0 = DefaultMaxNodes).
	MaxNodes int
}

// NewParallel returns a parallel branch-and-bound solver with default limits.
func NewParallel() *ParallelScheduler { return &ParallelScheduler{} }

// Name implements algo.Scheduler.
func (s *ParallelScheduler) Name() string { return "branch-and-bound-parallel" }

// IsExact marks the scheduler as exact.
func (s *ParallelScheduler) IsExact() bool { return true }

// Schedule implements algo.Scheduler.
func (s *ParallelScheduler) Schedule(inst *core.Instance) (*core.Schedule, error) {
	return s.ScheduleContext(context.Background(), inst)
}

// task is one independent subtree: a state plus the path that reached it.
type task struct {
	st    *state
	depth int
	moves [][]float64
}

// shared is the state visible to every worker.
type shared struct {
	inst     *core.Instance
	suffix   suffixWork
	best     atomic.Int64 // incumbent makespan
	nodes    atomic.Int64 // total explored nodes
	maxNodes int64

	mu        sync.Mutex  // guards bestMoves
	bestMoves [][]float64 // allocation rows of the incumbent

	queue     chan task
	pending   atomic.Int64 // queued + in-flight tasks
	closeOnce sync.Once

	failed  atomic.Bool
	failMu  sync.Mutex
	failErr error
}

var errNodeLimit = errors.New("node limit exceeded")

// ScheduleContext computes an optimal schedule, polling ctx cooperatively in
// every worker so cancellation and deadlines take effect promptly.
func (s *ParallelScheduler) ScheduleContext(ctx context.Context, inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if !inst.IsUnitSize() {
		return nil, fmt.Errorf("branchbound: requires unit size jobs")
	}
	if inst.TotalJobs() == 0 {
		return &core.Schedule{}, nil
	}

	// Incumbent: GreedyBalance, as in the serial solver.
	gbSched, err := greedybalance.New().Schedule(inst)
	if err != nil {
		return nil, err
	}
	gbRes, err := core.Execute(inst, gbSched)
	if err != nil {
		return nil, err
	}
	if !gbRes.Finished() {
		return nil, fmt.Errorf("branchbound: internal error: incumbent schedule incomplete")
	}

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sh := &shared{
		inst:      inst,
		suffix:    newSuffixWork(inst),
		bestMoves: allocRows(gbSched),
		maxNodes:  int64(s.MaxNodes),
	}
	if sh.maxNodes <= 0 {
		sh.maxNodes = DefaultMaxNodes
	}
	sh.best.Store(int64(gbRes.Makespan()))
	// The greedy seed is the first incumbent: report it so observers see a
	// feasible bound even before the search improves on it.
	progress.Report(ctx, progress.Incumbent{Solver: s.Name(), Makespan: gbRes.Makespan()})

	root := &state{done: make([]int, inst.NumProcessors()), rem: make([]float64, inst.NumProcessors())}
	for i := 0; i < inst.NumProcessors(); i++ {
		root.rem[i] = work(inst, i, 0)
	}

	// Seed the frontier breadth-first until there is enough fan-out to keep
	// the pool busy. Small instances may be solved entirely during seeding;
	// seeded expansions count as explored nodes so telemetry stays non-zero
	// even then.
	frontier := []task{{st: root, depth: 0}}
	var seeded int64
	for len(frontier) > 0 && len(frontier) < workers*4 {
		t := frontier[0]
		frontier = frontier[1:]
		seeded++
		if isFinished(inst, t.st) {
			sh.offerSolution(ctx, t.depth, t.moves)
			continue
		}
		if int64(t.depth+lowerBound(inst, sh.suffix, t.st)) >= sh.best.Load() {
			continue
		}
		for _, next := range expand(inst, t.st) {
			moves := append(append([][]float64(nil), t.moves...), next.alloc)
			frontier = append(frontier, task{st: next.state, depth: t.depth + 1, moves: moves})
		}
	}
	if len(frontier) == 0 {
		progress.AddNodes(ctx, seeded)
		return sh.schedule(), nil
	}

	sh.queue = make(chan task, len(frontier)+workers*64)
	sh.pending.Store(int64(len(frontier)))
	for _, t := range frontier {
		sh.queue <- t
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh.worker(ctx)
		}()
	}
	wg.Wait()
	progress.AddNodes(ctx, seeded+sh.nodes.Load())

	if sh.failed.Load() {
		sh.failMu.Lock()
		err := sh.failErr
		sh.failMu.Unlock()
		if errors.Is(err, errNodeLimit) {
			return nil, fmt.Errorf("branchbound: node limit of %d exceeded", sh.maxNodes)
		}
		return nil, err
	}
	return sh.schedule(), nil
}

// Makespan returns the optimal makespan.
func (s *ParallelScheduler) Makespan(inst *core.Instance) (int, error) {
	sched, err := s.Schedule(inst)
	if err != nil {
		return 0, err
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		return 0, err
	}
	if !res.Finished() {
		return 0, fmt.Errorf("branchbound: internal error: result schedule incomplete")
	}
	return res.Makespan(), nil
}

func isFinished(inst *core.Instance, st *state) bool {
	for i := range st.done {
		if st.done[i] < inst.NumJobs(i) {
			return false
		}
	}
	return true
}

// offerSolution installs a complete schedule of the given makespan as the
// incumbent if it improves on the current one, reporting the improvement to
// the context's progress observer.
func (sh *shared) offerSolution(ctx context.Context, depth int, moves [][]float64) {
	sh.mu.Lock()
	improved := int64(depth) < sh.best.Load()
	if improved {
		sh.best.Store(int64(depth))
		sh.bestMoves = append([][]float64(nil), moves...)
	}
	sh.mu.Unlock()
	if improved {
		progress.Report(ctx, progress.Incumbent{Solver: "branch-and-bound-parallel", Makespan: depth})
	}
}

// schedule materialises the incumbent.
func (sh *shared) schedule() *core.Schedule {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sched := core.NewSchedule(len(sh.bestMoves), sh.inst.NumProcessors())
	for t, row := range sh.bestMoves {
		copy(sched.Alloc[t], row)
	}
	return sched
}

// fail records the first error; later errors are dropped. Once failed, every
// worker skips the tasks it drains so the queue empties quickly.
func (sh *shared) fail(err error) {
	if sh.failed.CompareAndSwap(false, true) {
		sh.failMu.Lock()
		sh.failErr = err
		sh.failMu.Unlock()
	}
}

// worker drains tasks until the queue closes. Every drained task is counted
// against pending even when it is skipped after a failure, so the queue is
// guaranteed to close and no goroutine is left behind.
func (sh *shared) worker(ctx context.Context) {
	visited := make(map[string]int)
	for t := range sh.queue {
		if !sh.failed.Load() {
			if err := sh.dfs(ctx, t.st, t.depth, t.moves, visited); err != nil {
				sh.fail(err)
			}
		}
		if sh.pending.Add(-1) == 0 {
			sh.closeOnce.Do(func() { close(sh.queue) })
		}
	}
}

// dfs explores one subtree depth-first against the shared incumbent bound,
// offloading at most one successor per node into the queue when it has room.
func (sh *shared) dfs(ctx context.Context, st *state, depth int, moves [][]float64, visited map[string]int) error {
	n := sh.nodes.Add(1)
	if n > sh.maxNodes {
		return errNodeLimit
	}
	if n&ctxCheckMask == 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	if isFinished(sh.inst, st) {
		sh.offerSolution(ctx, depth, moves)
		return nil
	}
	if int64(depth+lowerBound(sh.inst, sh.suffix, st)) >= sh.best.Load() {
		return nil
	}
	key := st.key()
	if prev, ok := visited[key]; ok && prev <= depth {
		return nil
	}
	visited[key] = depth

	succ := expand(sh.inst, st)
	for i, next := range succ {
		// Keep the most promising successor (index 0) local; offer the rest
		// to idle workers while the bounded queue has room.
		if i > 0 {
			sh.pending.Add(1)
			handoff := task{
				st:    next.state,
				depth: depth + 1,
				moves: append(append([][]float64(nil), moves...), next.alloc),
			}
			select {
			case sh.queue <- handoff:
				continue
			default:
				sh.pending.Add(-1)
			}
		}
		if err := sh.dfs(ctx, next.state, depth+1, append(moves, next.alloc), visited); err != nil {
			return err
		}
	}
	return nil
}
