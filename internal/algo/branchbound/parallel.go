package branchbound

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/progress"
)

// ParallelScheduler is the multi-core variant of the exact branch-and-bound
// solver. It expands the root into a frontier of independent subtrees and
// explores them on a pool of workers that share a single atomic incumbent
// bound, so a good solution found by any worker immediately tightens the
// pruning of every other. Work is distributed through a bounded queue:
// workers offload one successor subtree whenever the queue has room and
// otherwise recurse locally, which keeps all cores busy without unbounded
// task inflation. Each worker searches on its own pooled scratch (path
// stack, successor buffers, visited table), so steady-state exploration
// allocates only when a subtree is handed off.
type ParallelScheduler struct {
	// Workers is the pool size (0 = GOMAXPROCS).
	Workers int
	// MaxNodes caps the total nodes explored across all workers
	// (0 = DefaultMaxNodes).
	MaxNodes int
}

// NewParallel returns a parallel branch-and-bound solver with default limits.
func NewParallel() *ParallelScheduler { return &ParallelScheduler{} }

// Name implements algo.Scheduler.
func (s *ParallelScheduler) Name() string { return "branch-and-bound-parallel" }

// IsExact marks the scheduler as exact.
func (s *ParallelScheduler) IsExact() bool { return true }

// Schedule implements algo.Scheduler.
func (s *ParallelScheduler) Schedule(inst *core.Instance) (*core.Schedule, error) {
	return s.ScheduleContext(context.Background(), inst)
}

// task is one independent subtree: a state plus the path that reached it.
// Every slice is owned by the task — rows are deep copies, never aliases of
// a worker's scratch — so tasks can cross goroutines safely.
type task struct {
	done  []int
	rem   []float64
	depth int
	moves [][]float64
}

// shared is the state visible to every worker.
type shared struct {
	inst     *core.Instance
	name     string
	suffix   suffixWork
	best     atomic.Int64 // incumbent makespan
	nodes    atomic.Int64 // total explored nodes
	allocs   atomic.Int64 // scratch-growth and handoff allocation events
	maxNodes int64

	mu        sync.Mutex  // guards bestMoves
	bestMoves [][]float64 // allocation rows of the incumbent (owned deep copies)

	queue     chan task
	hungry    int          // offload watermark: hand off only when len(queue) is below it
	pending   atomic.Int64 // queued + in-flight tasks
	closeOnce sync.Once

	failed  atomic.Bool
	failMu  sync.Mutex
	failErr error
}

var errNodeLimit = errors.New("node limit exceeded")

// ScheduleContext computes an optimal schedule, polling ctx cooperatively in
// every worker so cancellation and deadlines take effect promptly.
func (s *ParallelScheduler) ScheduleContext(ctx context.Context, inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if !inst.IsUnitSize() {
		return nil, fmt.Errorf("branchbound: requires unit size jobs")
	}
	if inst.TotalJobs() == 0 {
		return &core.Schedule{}, nil
	}

	// Incumbent: GreedyBalance, as in the serial solver.
	gbSched, err := greedybalance.New().Schedule(inst)
	if err != nil {
		return nil, err
	}
	gbRes, err := core.Execute(inst, gbSched)
	if err != nil {
		return nil, err
	}
	if !gbRes.Finished() {
		return nil, fmt.Errorf("branchbound: internal error: incumbent schedule incomplete")
	}

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sh := &shared{
		inst:      inst,
		name:      s.Name(),
		suffix:    newSuffixWork(inst),
		bestMoves: allocRows(gbSched),
		maxNodes:  int64(s.MaxNodes),
	}
	if sh.maxNodes <= 0 {
		sh.maxNodes = DefaultMaxNodes
	}
	sh.best.Store(int64(gbRes.Makespan()))
	if hint, hm := acceptWarmStart(ctx, inst, gbRes.Makespan()); hint != nil {
		// As in the serial solver, an accepted hint replaces the greedy seed
		// as the initial incumbent.
		sh.best.Store(int64(hm))
		sh.bestMoves = allocRows(hint)
	}
	// The seed — greedy, or the warm-start hint when one was accepted — is the
	// first incumbent: report it so observers see a feasible bound even before
	// the search improves on it.
	progress.Report(ctx, progress.Incumbent{Solver: s.Name(), Makespan: int(sh.best.Load())})

	// Seed the frontier breadth-first until there is enough fan-out to keep
	// the pool busy. Small instances may be solved entirely during seeding;
	// seeded expansions count as explored nodes so telemetry stays non-zero
	// even then.
	seedSc := getScratch(inst)
	frontier := []task{{
		done: append([]int(nil), seedSc.rootDone...),
		rem:  append([]float64(nil), seedSc.rootRem...),
	}}
	var seeded int64
	for len(frontier) > 0 && len(frontier) < workers*4 {
		t := frontier[0]
		frontier = frontier[1:]
		seeded++
		if isFinished(inst, t.done) {
			sh.offerSolution(ctx, t.depth, t.moves)
			continue
		}
		if b := t.depth + lowerBound(inst, sh.suffix, t.done, t.rem); int64(b) >= sh.best.Load() {
			continue
		}
		buf := seedSc.level(0)
		expandInto(inst, seedSc, t.done, t.rem, buf)
		for oi := 0; oi < buf.n; oi++ {
			i := buf.ord[oi]
			moves := make([][]float64, t.depth+1)
			copy(moves, t.moves)
			moves[t.depth] = append([]float64(nil), buf.allocRow(i)...)
			frontier = append(frontier, task{
				done:  append([]int(nil), buf.doneRow(i)...),
				rem:   append([]float64(nil), buf.remRow(i)...),
				depth: t.depth + 1,
				moves: moves,
			})
		}
	}
	sh.allocs.Add(seedSc.allocs)
	putScratch(seedSc)
	if len(frontier) == 0 {
		progress.AddNodes(ctx, seeded)
		progress.AddAllocs(ctx, sh.allocs.Load())
		return sh.schedule(), nil
	}

	sh.queue = make(chan task, len(frontier)+workers*64)
	sh.hungry = workers * 2
	sh.pending.Store(int64(len(frontier)))
	for _, t := range frontier {
		sh.queue <- t
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh.worker(ctx)
		}()
	}
	wg.Wait()
	progress.AddNodes(ctx, seeded+sh.nodes.Load())
	progress.AddAllocs(ctx, sh.allocs.Load())

	if sh.failed.Load() {
		sh.failMu.Lock()
		err := sh.failErr
		sh.failMu.Unlock()
		if errors.Is(err, errNodeLimit) {
			return nil, fmt.Errorf("branchbound: node limit of %d exceeded", sh.maxNodes)
		}
		return nil, err
	}
	return sh.schedule(), nil
}

// Makespan returns the optimal makespan.
func (s *ParallelScheduler) Makespan(inst *core.Instance) (int, error) {
	sched, err := s.Schedule(inst)
	if err != nil {
		return 0, err
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		return 0, err
	}
	if !res.Finished() {
		return 0, fmt.Errorf("branchbound: internal error: result schedule incomplete")
	}
	return res.Makespan(), nil
}

func isFinished(inst *core.Instance, done []int) bool {
	for i := range done {
		if done[i] < inst.NumJobs(i) {
			return false
		}
	}
	return true
}

// offerSolution installs a complete schedule of the given makespan as the
// incumbent if it improves on the current one, reporting the improvement to
// the context's progress observer. The rows are copied under the lock, so
// callers may pass rows that alias their scratch.
func (sh *shared) offerSolution(ctx context.Context, depth int, moves [][]float64) {
	sh.mu.Lock()
	improved := int64(depth) < sh.best.Load()
	if improved {
		sh.best.Store(int64(depth))
		// The incumbent only ever shrinks (the greedy seed rows are the
		// longest), so truncate and reuse the existing rows.
		sh.bestMoves = sh.bestMoves[:depth]
		for t := 0; t < depth; t++ {
			copy(sh.bestMoves[t], moves[t])
		}
	}
	sh.mu.Unlock()
	if improved {
		progress.Report(ctx, progress.Incumbent{Solver: sh.name, Makespan: depth})
	}
}

// schedule materialises the incumbent.
func (sh *shared) schedule() *core.Schedule {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sched := core.NewSchedule(len(sh.bestMoves), sh.inst.NumProcessors())
	for t, row := range sh.bestMoves {
		copy(sched.Alloc[t], row)
	}
	return sched
}

// fail records the first error; later errors are dropped. Once failed, every
// worker skips the tasks it drains so the queue empties quickly.
func (sh *shared) fail(err error) {
	if sh.failed.CompareAndSwap(false, true) {
		sh.failMu.Lock()
		sh.failErr = err
		sh.failMu.Unlock()
	}
}

// worker drains tasks until the queue closes. Every drained task is counted
// against pending even when it is skipped after a failure, so the queue is
// guaranteed to close and no goroutine is left behind. The worker's visited
// table persists across the tasks it drains, exactly like the per-worker
// map it replaces.
func (sh *shared) worker(ctx context.Context) {
	sc := getScratch(sh.inst)
	for t := range sh.queue {
		if !sh.failed.Load() {
			for d, row := range t.moves {
				sc.pathRow(d, row)
			}
			if err := sh.dfs(ctx, sc, t.done, t.rem, t.depth); err != nil {
				sh.fail(err)
			}
		}
		if sh.pending.Add(-1) == 0 {
			sh.closeOnce.Do(func() { close(sh.queue) })
		}
	}
	sh.allocs.Add(sc.allocs)
	putScratch(sc)
}

// dfs explores one subtree depth-first against the shared incumbent bound,
// offloading at most one successor per node into the queue when it has room.
func (sh *shared) dfs(ctx context.Context, sc *searchScratch, done []int, rem []float64, depth int) error {
	n := sh.nodes.Add(1)
	if n > sh.maxNodes {
		return errNodeLimit
	}
	if n&ctxCheckMask == 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	if isFinished(sh.inst, done) {
		sh.offerSolution(ctx, depth, sc.path[:depth])
		return nil
	}
	if b := depth + lowerBound(sh.inst, sh.suffix, done, rem); int64(b) >= sh.best.Load() {
		// Incumbent cut; an accepted warm start was installed as the initial
		// incumbent, so its bound is already part of best (see the serial
		// solver).
		return nil
	}
	if sc.visited.visit(sc.stateKey(done, rem), depth, &sc.allocs) {
		return nil
	}

	buf := sc.level(depth)
	expandInto(sh.inst, sc, done, rem, buf)
	for oi := 0; oi < buf.n; oi++ {
		i := buf.ord[oi]
		// Keep the most promising successor (order index 0) local; offer the
		// rest to idle workers, but only while the queue is close to empty —
		// a handoff deep-copies the whole path, so once every worker has
		// work queued, local recursion (which allocates nothing) is cheaper
		// than feeding an already-full queue.
		if oi > 0 && len(sh.queue) < sh.hungry {
			sh.pending.Add(1)
			handoff := task{
				done:  append([]int(nil), buf.doneRow(i)...),
				rem:   append([]float64(nil), buf.remRow(i)...),
				depth: depth + 1,
				moves: make([][]float64, depth+1),
			}
			for d := 0; d < depth; d++ {
				handoff.moves[d] = append([]float64(nil), sc.path[d]...)
			}
			handoff.moves[depth] = append([]float64(nil), buf.allocRow(i)...)
			sc.allocs++
			select {
			case sh.queue <- handoff:
				continue
			default:
				sh.pending.Add(-1)
			}
		}
		sc.pathRow(depth, buf.allocRow(i))
		if err := sh.dfs(ctx, sc, buf.doneRow(i), buf.remRow(i), depth+1); err != nil {
			return err
		}
	}
	return nil
}
