package branchbound

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"crsharing/internal/core"
	"crsharing/internal/gen"
)

// TestParallelMatchesSerial checks that the parallel solver finds the same
// optimal makespan as the serial solver on random instances, and that its
// schedule is feasible and complete.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(20140623))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(3)
		jobs := 2 + rng.Intn(4)
		inst := gen.Random(rng, m, jobs, 0.05, 1.0)

		want, err := New().Makespan(inst)
		if err != nil {
			t.Fatalf("trial %d: serial: %v", trial, err)
		}
		sched, err := NewParallel().Schedule(inst)
		if err != nil {
			t.Fatalf("trial %d: parallel: %v", trial, err)
		}
		res, err := core.Execute(inst, sched)
		if err != nil {
			t.Fatalf("trial %d: parallel produced invalid schedule: %v", trial, err)
		}
		if !res.Finished() {
			t.Fatalf("trial %d: parallel schedule incomplete", trial)
		}
		if got := res.Makespan(); got != want {
			t.Fatalf("trial %d: parallel makespan %d, serial %d\n%v", trial, got, want, inst)
		}
	}
}

// TestParallelWorkerCounts exercises degenerate pool sizes.
func TestParallelWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := gen.Random(rng, 3, 4, 0.05, 1.0)
	want, err := New().Makespan(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 16} {
		s := &ParallelScheduler{Workers: workers}
		got, err := s.Makespan(inst)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Fatalf("workers=%d: makespan %d, want %d", workers, got, want)
		}
	}
}

// hardInstance returns an adversarial instance whose exact search runs for
// many minutes on current hardware: GreedyBalance is a factor ~2-1/m off on
// it, so the incumbent bound prunes little and the search tree is enormous.
func hardInstance() *core.Instance {
	const m, blocks = 7, 3
	return gen.GreedyWorstCase(m, blocks, 1.0/float64(20*m*(m+1)))
}

// TestParallelCancellation cancels a large search mid-flight and requires a
// prompt return with the context's error.
func TestParallelCancellation(t *testing.T) {
	inst := hardInstance()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := NewParallel().ScheduleContext(ctx, inst)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parallel solver did not return promptly after cancellation")
	}
}

// TestParallelNodeLimit checks that the shared node budget is enforced.
func TestParallelNodeLimit(t *testing.T) {
	s := &ParallelScheduler{MaxNodes: 1000}
	if _, err := s.Schedule(hardInstance()); err == nil {
		t.Fatal("expected node-limit error, got nil")
	}
}

// TestSerialContextCancellation covers the context plumbing of the serial
// solver as well.
func TestSerialContextCancellation(t *testing.T) {
	inst := hardInstance()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := New().ScheduleContext(ctx, inst)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("serial solver took %v to honour the deadline", elapsed)
	}
}
