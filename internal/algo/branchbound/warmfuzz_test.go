package branchbound_test

import (
	"math/rand"
	"testing"

	"crsharing/internal/algo/branchbound"
	"crsharing/internal/core"
	"crsharing/internal/gen"
	"crsharing/internal/solver"
)

// FuzzWarmStartHintSafety throws arbitrary hints at the exact kernel —
// garbage shares, stale schedules from mutated instances, truncations, the
// optimum itself — and checks the whole warm-start contract: the solve never
// panics, never errors, and always returns the cold solve's makespan and
// waste. A rejected hint must leave the schedule byte-identical to cold.
func FuzzWarmStartHintSafety(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0))
	f.Add(int64(20140623), uint8(1), uint8(3))
	f.Add(int64(42), uint8(2), uint8(7))
	f.Add(int64(-99), uint8(3), uint8(1))
	f.Add(int64(7), uint8(4), uint8(5))

	f.Fuzz(func(t *testing.T, seed int64, kindRaw, sizeRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + int(sizeRaw)%2      // 2..3 processors
		jobs := 1 + int(sizeRaw/2)%3 // 1..3 jobs per processor
		inst := gen.Random(rng, m, jobs, 0.05, 1.0)

		cold, _, _ := solveCounted(t, branchbound.New(), inst, nil)

		var hint *core.Schedule
		switch kindRaw % 5 {
		case 0: // garbage: random shape, random (possibly over-unit) shares
			hint = core.NewSchedule(int(sizeRaw)%5, m)
			for ti := range hint.Alloc {
				for i := range hint.Alloc[ti] {
					hint.Alloc[ti][i] = rng.Float64() * 1.5
				}
			}
		case 1: // stale: solved for a mutated sibling of inst
			mutant := gen.Mutate(rng, inst, gen.Mutations[int(sizeRaw)%len(gen.Mutations)])
			hint = solveHelper(t, mutant)
		case 2: // truncated optimum: cannot finish
			if cold.Steps() > 1 {
				hint = core.NewSchedule(cold.Steps()-1, m)
				for ti := range hint.Alloc {
					copy(hint.Alloc[ti], cold.Alloc[ti])
				}
			} else {
				hint = core.NewSchedule(0, m)
			}
		case 3: // the optimum itself
			hint = cold
		case 4: // adapted stale hint, as the serving layer produces
			mutant := gen.Mutate(rng, inst, gen.Mutations[int(sizeRaw)%len(gen.Mutations)])
			adapted, ok := solver.AdaptSchedule(inst, solveHelper(t, mutant))
			if !ok {
				t.Skip() // nothing to adapt; covered by the other kinds
			}
			hint = adapted
		}

		warm, _, warmSeed := solveCounted(t, branchbound.New(), inst, hint)
		sameResult(t, inst, cold, warm)
		if warmSeed == 0 && !sameSchedule(cold, warm) {
			t.Fatalf("rejected hint changed the schedule (kind %d)\n%v", kindRaw%5, inst)
		}
	})
}
