package branchbound

import (
	"math/rand"
	"testing"

	"crsharing/internal/algo/bruteforce"
	"crsharing/internal/algo/optres2"
	"crsharing/internal/core"
	"crsharing/internal/gen"
)

func makespan(t *testing.T, inst *core.Instance) int {
	t.Helper()
	sched, err := New().Schedule(inst)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() {
		t.Fatalf("branch-and-bound schedule does not finish all jobs")
	}
	return res.Makespan()
}

func TestMatchesBruteForceSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(3)
		inst := gen.RandomUneven(rng, m, 1, 4, 0.05, 1.0)
		want, err := bruteforce.Makespan(inst)
		if err != nil {
			t.Fatalf("bruteforce: %v", err)
		}
		if got := makespan(t, inst); got != want {
			t.Fatalf("trial %d: branch-and-bound %d != brute force %d\n%v", trial, got, want, inst)
		}
	}
}

func TestMatchesDPOnTwoProcessors(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		inst := gen.Random(rng, 2, 3+rng.Intn(5), 0.05, 1.0)
		want, err := optres2.New().Makespan(inst)
		if err != nil {
			t.Fatalf("optres2: %v", err)
		}
		if got := makespan(t, inst); got != want {
			t.Fatalf("trial %d: branch-and-bound %d != DP %d\n%v", trial, got, want, inst)
		}
	}
}

func TestPartitionGadget(t *testing.T) {
	yes, err := gen.PartitionGadget([]int64{3, 1, 2, 2}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got := makespan(t, yes); got != 4 {
		t.Fatalf("YES gadget optimum = %d, want 4", got)
	}
	no, err := gen.PartitionGadget([]int64{2, 2, 2}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got := makespan(t, no); got != 5 {
		t.Fatalf("NO gadget optimum = %d, want 5", got)
	}
}

func TestIncumbentIsReturnedWhenAlreadyOptimal(t *testing.T) {
	// A single processor: GreedyBalance is already optimal and the search
	// only confirms it.
	inst := core.NewInstance([]float64{0.2, 0.9, 0.4})
	if got := makespan(t, inst); got != 3 {
		t.Fatalf("makespan = %d, want 3", got)
	}
}

func TestEmptyInstance(t *testing.T) {
	sched, err := New().Schedule(core.NewInstance(nil))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if sched.Steps() != 0 {
		t.Fatalf("empty instance should give an empty schedule")
	}
}

func TestRejectsNonUnitSizes(t *testing.T) {
	inst := core.NewSizedInstance([]core.Job{{Req: 0.5, Size: 2}})
	if _, err := New().Schedule(inst); err == nil {
		t.Fatalf("expected error for non-unit sizes")
	}
}

func TestNodeLimit(t *testing.T) {
	// The Figure 5 construction keeps GreedyBalance far from the lower bound,
	// so the root is not pruned and the search must actually expand nodes —
	// and immediately trip the (absurdly small) node limit.
	s := &Scheduler{MaxNodes: 1}
	inst := gen.GreedyWorstCase(3, 3, 0.01)
	if _, err := s.Schedule(inst); err == nil {
		t.Fatalf("expected node-limit error")
	}
}

func TestNameAndExactness(t *testing.T) {
	if New().Name() != "branch-and-bound" || !New().IsExact() {
		t.Fatalf("unexpected identity")
	}
}
