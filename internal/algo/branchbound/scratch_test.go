package branchbound

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"

	"crsharing/internal/algo/bruteforce"
	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/gen"
	"crsharing/internal/progress"
)

// solveFns enumerates both kernels behind a uniform signature so the scratch
// regression tests cover the serial and the work-stealing solver alike.
var solveFns = map[string]func(*core.Instance) (*core.Schedule, error){
	"serial":   func(inst *core.Instance) (*core.Schedule, error) { return New().Schedule(inst) },
	"parallel": func(inst *core.Instance) (*core.Schedule, error) { return NewParallel().Schedule(inst) },
}

// TestScheduleSurvivesScratchReuse is the regression test for the path
// aliasing bug: the schedule a solve returns must be built from owned copies,
// so recycling the pooled scratch — including deliberately scribbling over
// every buffer a later solve would reuse — must not mutate it retroactively.
func TestScheduleSurvivesScratchReuse(t *testing.T) {
	// GreedyBalance is suboptimal on its worst-case family, so the search
	// improves on the seed and the returned schedule goes through the
	// path-stack incumbent copy — the code path that used to alias.
	inst := gen.GreedyWorstCase(4, 2, 1.0/(20*4*5))
	gbSched, err := greedybalance.New().Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	gbRes, err := core.Execute(inst, gbSched)
	if err != nil {
		t.Fatal(err)
	}

	for name, solve := range solveFns {
		t.Run(name, func(t *testing.T) {
			sched, err := solve(inst)
			if err != nil {
				t.Fatalf("Schedule: %v", err)
			}
			res, err := core.Execute(inst, sched)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if !res.Finished() {
				t.Fatal("schedule does not finish all jobs")
			}
			if res.Makespan() >= gbRes.Makespan() {
				t.Fatalf("search did not improve on the greedy seed (%d vs %d); the test would not exercise the incumbent copy",
					res.Makespan(), gbRes.Makespan())
			}
			snap := sched.Clone()

			// Recycle the pool with unrelated solves, then scribble over every
			// buffer of a scratch prepared for the same instance. If any row of
			// the returned schedule aliases pooled memory, the comparison below
			// catches it.
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 4; i++ {
				if _, err := solve(gen.Random(rng, 3, 3, 0.1, 0.9)); err != nil {
					t.Fatalf("churn solve %d: %v", i, err)
				}
			}
			sc := getScratch(inst)
			for _, lvl := range sc.levels {
				for i := range lvl.alloc {
					lvl.alloc[i] = 99
				}
				for i := range lvl.rem {
					lvl.rem[i] = 99
				}
			}
			for d := range sc.path {
				for i := range sc.path[d] {
					sc.path[d][i] = 99
				}
			}
			for i := range sc.rootRem {
				sc.rootRem[i] = 99
			}
			putScratch(sc)

			if sched.Steps() != snap.Steps() {
				t.Fatalf("schedule length changed after scratch reuse: %d vs %d", sched.Steps(), snap.Steps())
			}
			for tt := range sched.Alloc {
				for i := range sched.Alloc[tt] {
					if sched.Alloc[tt][i] != snap.Alloc[tt][i] {
						t.Fatalf("schedule mutated by scratch reuse at step %d proc %d: %v, snapshot %v",
							tt, i, sched.Alloc[tt][i], snap.Alloc[tt][i])
					}
				}
			}
		})
	}
}

// TestStateKeyCanonicalUnderSymmetry checks the symmetry-breaking visited
// key: states that differ only by permuting processors with identical job
// sequences must encode to the same key, and genuinely different states must
// not collide.
func TestStateKeyCanonicalUnderSymmetry(t *testing.T) {
	// Processors 0 and 1 carry identical job sequences; processor 2 differs.
	inst := core.NewInstance(
		[]float64{0.3, 0.7},
		[]float64{0.3, 0.7},
		[]float64{0.5},
	)
	sc := getScratch(inst)
	defer putScratch(sc)
	if !sc.hasSym || sc.groupRep[1] != 0 || sc.groupRep[2] != 2 {
		t.Fatalf("symmetry groups not detected: hasSym=%v groupRep=%v", sc.hasSym, sc.groupRep)
	}

	key := func(done []int, rem []float64) []byte {
		return append([]byte(nil), sc.stateKey(done, rem)...)
	}
	a := key([]int{1, 0, 0}, []float64{0.7, 0.3, 0.5})
	b := key([]int{0, 1, 0}, []float64{0.3, 0.7, 0.5}) // procs 0 and 1 swapped
	if !bytes.Equal(a, b) {
		t.Fatalf("permuting identical processors changed the visited key:\n%x\nvs\n%x", a, b)
	}
	c := key([]int{1, 1, 0}, []float64{0.7, 0.7, 0.5})
	if bytes.Equal(a, c) {
		t.Fatal("distinct states collided on one visited key")
	}
	// Processor 2 has a different job sequence, so moving progress onto it is
	// a different state even though the (done, rem) multiset matches.
	d := key([]int{0, 0, 1}, []float64{0.3, 0.5, 0.7})
	if bytes.Equal(a, d) {
		t.Fatal("states differing on a non-symmetric processor collided")
	}
}

// epsilonBoundaryValues are requirements sitting exactly on, and a few ULP-ish
// nudges around, the share boundaries where the non-wasting split logic
// compares leftovers against the numeric tolerance.
var epsilonBoundaryValues = []float64{
	0.25 - 4e-10, 0.25, 0.25 + 4e-10,
	0.5 - 4e-10, 0.5, 0.5 + 4e-10,
	1.0 / 3, 2.0 / 3, 1,
}

// TestEpsilonBoundaryAgreement sweeps requirement pairs straddling the
// tolerance boundaries and asserts the serial kernel, the parallel kernel and
// the independent brute-force oracle agree on the optimum. This pins the
// epsilon-handling fix: every tolerance comparison routes through
// internal/numeric, so a value within Eps of a boundary is classified the
// same way by every solver.
func TestEpsilonBoundaryAgreement(t *testing.T) {
	serial, parallel := New(), NewParallel()
	for _, a := range epsilonBoundaryValues {
		for _, b := range epsilonBoundaryValues {
			inst := core.NewInstance([]float64{a, b}, []float64{b, a})
			want, err := bruteforce.Makespan(inst)
			if err != nil {
				t.Fatalf("bruteforce(%v, %v): %v", a, b, err)
			}
			if got, err := serial.Makespan(inst); err != nil || got != want {
				t.Fatalf("serial on reqs (%v, %v): makespan %d err %v, oracle %d", a, b, got, err, want)
			}
			if got, err := parallel.Makespan(inst); err != nil || got != want {
				t.Fatalf("parallel on reqs (%v, %v): makespan %d err %v, oracle %d", a, b, got, err, want)
			}
		}
	}
}

// FuzzEpsilonBoundary fuzzes four requirements into a two-processor instance
// and cross-checks both kernels against the brute-force oracle. The seeds sit
// on the boundary values where pre-fix kernels could disagree with the oracle
// about whether a leftover share still admits a partial assignment.
func FuzzEpsilonBoundary(f *testing.F) {
	f.Add(0.25, 0.75, 0.5, 0.5)
	f.Add(0.5-4e-10, 0.5+4e-10, 0.25, 0.75)
	f.Add(1.0/3, 2.0/3, 1.0/3, 2.0/3)
	f.Add(1.0, 1e-9, 0.999999999, 0.25)

	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 || v > 1 {
				t.Skip()
			}
		}
		inst := core.NewInstance([]float64{a, b}, []float64{c, d})
		want, err := bruteforce.Makespan(inst)
		if err != nil {
			t.Skip() // oracle rejects the instance
		}
		if got, err := New().Makespan(inst); err != nil || got != want {
			t.Fatalf("serial makespan %d err %v, oracle %d\n%v", got, err, want, inst)
		}
		if got, err := NewParallel().Makespan(inst); err != nil || got != want {
			t.Fatalf("parallel makespan %d err %v, oracle %d\n%v", got, err, want, inst)
		}
	})
}

// TestSteadyStateAllocsPerNode asserts the headline property of the scratch
// rewrite: once the pool is warm, a solve performs a constant number of
// allocations (seed schedule, result materialisation) regardless of how many
// nodes it explores — zero allocations per node, up to measurement noise from
// GC-cleared pools.
func TestSteadyStateAllocsPerNode(t *testing.T) {
	inst := hardExactInstance()
	for name, kernel := range map[string]func(context.Context, *core.Instance) (*core.Schedule, error){
		"serial":   New().ScheduleContext,
		"parallel": NewParallel().ScheduleContext,
	} {
		t.Run(name, func(t *testing.T) {
			// Warm the scratch pool and record the search size once.
			var ctr progress.Counters
			ctx := progress.WithCounters(context.Background(), &ctr)
			if _, err := kernel(ctx, inst); err != nil {
				t.Fatal(err)
			}
			nodes := ctr.Nodes.Load()
			if nodes < 10_000 {
				t.Fatalf("instance explores only %d nodes; too easy to measure steady-state allocations", nodes)
			}
			allocs := testing.AllocsPerRun(5, func() {
				if _, err := kernel(context.Background(), inst); err != nil {
					t.Error(err)
				}
			})
			// The bound is deliberately generous: the GC may clear the scratch
			// pool between runs, forcing one full re-allocation of the arenas.
			// What it must exclude is any per-node allocation (the pre-rewrite
			// kernels sat above 4 allocs/node).
			if perNode := allocs / float64(nodes); perNode > 0.02 {
				t.Errorf("steady state allocates %.1f times per run over %d nodes = %.4f allocs/node, want ~0",
					allocs, nodes, perNode)
			}
		})
	}
}

// hardExactInstance mirrors the instance the top-level benchmarks use: the
// greedy worst case forces a real search rather than an instant confirmation
// of the seed.
func hardExactInstance() *core.Instance {
	return gen.GreedyWorstCase(5, 2, 1.0/(20*5*6))
}
