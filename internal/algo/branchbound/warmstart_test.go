package branchbound_test

// Warm-start contract of the exact kernels, over the mutation-chain workload
// the serving layer produces: a validated hint that beats the greedy seed is
// installed as the initial incumbent, so it may only tighten the pruning
// bound — never the optimum. The tests pin the result contract (identical
// makespan and waste between cold and warm runs; byte-identical schedules
// whenever the hint is rejected or the search improves on it), the ≥5x node
// reduction on a single-mutation chain, and the rejection of infeasible,
// stale, or useless hints; the benchmarks back the node-count assertions
// with wall-clock and allocation numbers.

import (
	"context"
	"math/rand"
	"testing"

	"crsharing/internal/algo/branchbound"
	"crsharing/internal/core"
	"crsharing/internal/gen"
	"crsharing/internal/progress"
	"crsharing/internal/solver"
)

// kernel abstracts the serial and parallel solvers for the shared tests.
type kernel interface {
	ScheduleContext(ctx context.Context, inst *core.Instance) (*core.Schedule, error)
}

// solveCounted runs one kernel solve with fresh counters and an optional
// warm-start hint, returning the schedule, the nodes explored, and the
// recorded warm seed (0 = hint absent or rejected).
func solveCounted(t *testing.T, k kernel, inst *core.Instance, hint *core.Schedule) (*core.Schedule, int64, int64) {
	t.Helper()
	ctr := &progress.Counters{}
	ctx := progress.WithCounters(context.Background(), ctr)
	if hint != nil {
		ctx = progress.WithWarmStart(ctx, &progress.WarmStart{Schedule: hint, Source: "test"})
	}
	sched, err := k.ScheduleContext(ctx, inst)
	if err != nil {
		t.Fatalf("ScheduleContext: %v", err)
	}
	return sched, ctr.Nodes.Load(), ctr.WarmSeed.Load()
}

// sameSchedule reports bit-exact equality: same shape, identical float64
// values in every cell.
func sameSchedule(a, b *core.Schedule) bool {
	if a.Steps() != b.Steps() || a.NumProcessors() != b.NumProcessors() {
		return false
	}
	for t := range a.Alloc {
		for i := range a.Alloc[t] {
			if a.Alloc[t][i] != b.Alloc[t][i] {
				return false
			}
		}
	}
	return true
}

// sameResult asserts the warm-start result contract: identical makespan and
// identical waste, whichever optimal schedule was returned.
func sameResult(t *testing.T, inst *core.Instance, cold, warm *core.Schedule) {
	t.Helper()
	cr, err := core.Execute(inst, cold)
	if err != nil || !cr.Finished() {
		t.Fatalf("cold schedule infeasible: %v", err)
	}
	wr, err := core.Execute(inst, warm)
	if err != nil || !wr.Finished() {
		t.Fatalf("warm schedule infeasible: %v", err)
	}
	if cr.Makespan() != wr.Makespan() {
		t.Fatalf("warm makespan %d != cold makespan %d", wr.Makespan(), cr.Makespan())
	}
	if cr.Wasted() != wr.Wasted() {
		t.Fatalf("warm waste %g != cold waste %g", wr.Wasted(), cr.Wasted())
	}
}

// dropFirst removes the first job of processor p — the chain mutation whose
// adapted hint is strongest (the neighbor's schedule still finishes).
func dropFirst(inst *core.Instance, p int) *core.Instance {
	out := inst.Clone()
	out.Procs[p] = append([]core.Job(nil), out.Procs[p][1:]...)
	return out
}

// nudgeDown shaves delta off one job's requirement — the online workload's
// "requirement nudge" mutation. The previous instance's optimal schedule
// stays feasible (shares may over-provision, never under-provision), so the
// adapted hint ties the new optimum.
func nudgeDown(inst *core.Instance, p, j int, delta float64) *core.Instance {
	out := inst.Clone()
	out.Procs[p][j].Req -= delta
	return out
}

// chainBase is a Partition-reduction gadget (Theorem 4): the optimum needs
// the hidden partition, which GreedyBalance does not find, so every cold
// solve pays for the subset hunt while a warm start that carries the
// previous optimum prunes it away at the root. This is the regime warm
// starts are for: near-duplicate arrivals of an instance whose exact solve
// is genuinely expensive.
func chainBase(t testing.TB) *core.Instance {
	t.Helper()
	inst, err := gen.PartitionGadget([]int64{17, 23, 29, 31, 41, 17, 23, 29, 31, 41}, 0.01)
	if err != nil {
		t.Fatalf("PartitionGadget: %v", err)
	}
	return inst
}

func TestWarmStartChainNodeReduction(t *testing.T) {
	base := chainBase(t)
	prev, _, _ := solveCounted(t, branchbound.New(), base, nil)

	cur := base
	var coldNodes, warmNodes int64
	for step := 0; step < 6; step++ {
		variant := nudgeDown(cur, step%cur.NumProcessors(), 0, 1e-4)
		hint, ok := solver.AdaptSchedule(variant, prev)
		if !ok {
			t.Fatalf("step %d: AdaptSchedule failed", step)
		}
		cold, nc, _ := solveCounted(t, branchbound.New(), variant, nil)
		warm, nw, seed := solveCounted(t, branchbound.New(), variant, hint)
		sameResult(t, variant, cold, warm)
		if seed == 0 {
			t.Fatalf("step %d: hint was not accepted; the warm-start path is dead", step)
		}
		if nw > nc {
			t.Fatalf("step %d: warm solve explored more nodes (%d) than cold (%d)", step, nw, nc)
		}
		coldNodes += nc
		warmNodes += nw
		cur, prev = variant, cold
	}
	if coldNodes < 5*warmNodes {
		t.Fatalf("chain explored %d cold vs %d warm nodes; want at least a 5x reduction", coldNodes, warmNodes)
	}
	t.Logf("chain nodes: cold=%d warm=%d (%.1fx)", coldNodes, warmNodes, float64(coldNodes)/float64(warmNodes))
}

// TestWarmStartImprovedHintIsByteIdentical pins the byte-identity half of the
// contract: when the search finds a schedule strictly better than the hint,
// the returned schedule is the cold run's, byte for byte — the hint only
// tightened the bound.
func TestWarmStartImprovedHintIsByteIdentical(t *testing.T) {
	base := dropFirst(gen.GreedyWorstCase(4, 3, 0.01), 0)
	prev, _, _ := solveCounted(t, branchbound.New(), base, nil)
	// Dropping a second job lowers the optimum below the adapted hint's
	// makespan, so the warm search must improve on the installed incumbent.
	variant := dropFirst(base, 1)
	hint, ok := solver.AdaptSchedule(variant, prev)
	if !ok {
		t.Fatalf("AdaptSchedule failed")
	}
	cold, _, _ := solveCounted(t, branchbound.New(), variant, nil)
	warm, _, seed := solveCounted(t, branchbound.New(), variant, hint)
	if seed == 0 {
		t.Fatalf("hint was not accepted")
	}
	cr, _ := core.Execute(variant, cold)
	if int64(cr.Makespan()) >= seed {
		t.Fatalf("test instance does not force an improvement: optimum %d, hint %d", cr.Makespan(), seed)
	}
	if !sameSchedule(cold, warm) {
		t.Fatalf("warm-started schedule differs from cold after improving on the hint")
	}
}

func TestWarmStartParallelSameResult(t *testing.T) {
	base := chainBase(t)
	prev, _, _ := solveCounted(t, branchbound.New(), base, nil)
	variant := nudgeDown(base, 0, 0, 1e-4)
	hint, ok := solver.AdaptSchedule(variant, prev)
	if !ok {
		t.Fatalf("AdaptSchedule failed")
	}
	cold, _, _ := solveCounted(t, branchbound.NewParallel(), variant, nil)
	warm, _, seed := solveCounted(t, branchbound.NewParallel(), variant, hint)
	if seed == 0 {
		t.Fatalf("parallel solver did not accept the hint")
	}
	sameResult(t, variant, cold, warm)
}

// TestWarmStartPropertyRandomChains is the property test: over random
// instances and mutation chains, a warm-started exact solve returns the same
// makespan and waste as the cold solve, whatever the hint's quality — and is
// byte-identical whenever the hint was rejected.
func TestWarmStartPropertyRandomChains(t *testing.T) {
	rng := rand.New(rand.NewSource(449))
	for trial := 0; trial < 12; trial++ {
		m := 2 + rng.Intn(3)
		base := gen.RandomUneven(rng, m, 1, 4, 0.05, 0.95)
		prev, _, _ := solveCounted(t, branchbound.New(), base, nil)
		cur := base
		for step := 0; step < 3; step++ {
			variant := gen.Mutate(rng, cur, gen.Mutations[step%len(gen.Mutations)])
			// The previous schedule is offered raw — AdaptSchedule is what
			// production does, but the kernel must also survive unadapted
			// (often infeasible-as-is) hints.
			hint := prev
			if adapted, ok := solver.AdaptSchedule(variant, prev); ok && step%2 == 0 {
				hint = adapted
			}
			cold, _, _ := solveCounted(t, branchbound.New(), variant, nil)
			warm, _, seed := solveCounted(t, branchbound.New(), variant, hint)
			sameResult(t, variant, cold, warm)
			if seed == 0 && !sameSchedule(cold, warm) {
				t.Fatalf("trial %d step %d: rejected hint changed the schedule\n%v", trial, step, variant)
			}
			cur, prev = variant, cold
		}
	}
}

func TestWarmStartRejectsBadHints(t *testing.T) {
	inst := gen.GreedyWorstCase(3, 2, 0.01)
	cold, _, _ := solveCounted(t, branchbound.New(), inst, nil)

	tooShort := core.NewSchedule(1, inst.NumProcessors()) // cannot finish
	wrongShape := core.NewSchedule(cold.Steps(), inst.NumProcessors()+2)
	stale := solveHelper(t, dropFirst(inst, 0)) // solved for a different instance
	for name, hint := range map[string]*core.Schedule{
		"infeasible":  tooShort,
		"wrong-shape": wrongShape,
		"stale":       stale,
		"self":        cold, // valid: the optimum itself; installed, never improved, returned intact
	} {
		warm, _, seed := solveCounted(t, branchbound.New(), inst, hint)
		if !sameSchedule(cold, warm) {
			t.Fatalf("%s hint changed the schedule", name)
		}
		if name != "self" && seed > 0 {
			t.Fatalf("%s hint was accepted (seed %d); it should have been rejected", name, seed)
		}
	}
}

func solveHelper(t *testing.T, inst *core.Instance) *core.Schedule {
	t.Helper()
	sched, err := branchbound.New().Schedule(inst)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	return sched
}

// benchChain precomputes the single-mutation chain the warm benchmarks replay:
// each element carries the instance and the hint adapted from its
// predecessor's exact schedule.
type benchStep struct {
	inst *core.Instance
	hint *core.Schedule
}

func buildBenchChain(b *testing.B) []benchStep {
	b.Helper()
	base := chainBase(b)
	prev, err := branchbound.New().Schedule(base)
	if err != nil {
		b.Fatalf("Schedule: %v", err)
	}
	cur := base
	var steps []benchStep
	for step := 0; step < 6; step++ {
		variant := nudgeDown(cur, step%cur.NumProcessors(), 0, 1e-4)
		hint, ok := solver.AdaptSchedule(variant, prev)
		if !ok {
			b.Fatalf("AdaptSchedule failed")
		}
		steps = append(steps, benchStep{inst: variant, hint: hint})
		sched, err := branchbound.New().Schedule(variant)
		if err != nil {
			b.Fatalf("Schedule: %v", err)
		}
		cur, prev = variant, sched
	}
	return steps
}

// BenchmarkWarmStartChain solves the mutation chain with each step's hint
// attached; BenchmarkWarmStartCold solves the identical chain cold. The pair
// is in the benchdiff regression gate: the warm chain must stay faster than
// the cold one and must not grow its allocations per op.
func BenchmarkWarmStartChain(b *testing.B) {
	steps := buildBenchChain(b)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, s := range steps {
			ctx := progress.WithWarmStart(context.Background(), &progress.WarmStart{Schedule: s.hint, Source: "bench"})
			if _, err := branchbound.New().ScheduleContext(ctx, s.inst); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkWarmStartCold(b *testing.B) {
	steps := buildBenchChain(b)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, s := range steps {
			if _, err := branchbound.New().Schedule(s.inst); err != nil {
				b.Fatal(err)
			}
		}
	}
}
