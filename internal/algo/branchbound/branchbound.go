// Package branchbound provides an exact branch-and-bound solver for the
// CRSharing problem with unit size jobs. It explores the same non-wasting,
// progressive move space as the paper's exact algorithms (packages optres2
// and optresm) but prunes with the Observation-1 work bound, the per-processor
// chain bound and an incumbent obtained from GreedyBalance. It is not part of
// the paper; it exists as a practically faster exact solver for mid-size
// instances and as a third, independently implemented optimum oracle for the
// test suite.
package branchbound

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/numeric"
	"crsharing/internal/progress"
)

// Scheduler is the exact branch-and-bound solver.
type Scheduler struct {
	// MaxNodes caps the number of explored search nodes (0 = DefaultMaxNodes).
	MaxNodes int
}

// DefaultMaxNodes bounds the search so that pathological instances fail fast
// instead of hanging.
const DefaultMaxNodes = 20_000_000

// New returns a branch-and-bound solver with default limits.
func New() *Scheduler { return &Scheduler{} }

// Name implements algo.Scheduler.
func (s *Scheduler) Name() string { return "branch-and-bound" }

// IsExact marks the scheduler as exact.
func (s *Scheduler) IsExact() bool { return true }

type state struct {
	done []int
	rem  []float64
}

func (st *state) key() string {
	var b strings.Builder
	for i := range st.done {
		b.WriteString(strconv.Itoa(st.done[i]))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(int64(math.Round(st.rem[i]*1e9)), 36))
		b.WriteByte('|')
	}
	return b.String()
}

type solver struct {
	ctx       context.Context
	inst      *core.Instance
	suffix    suffixWork
	best      int         // incumbent makespan
	bestMoves [][]float64 // allocation rows of the incumbent
	visited   map[string]int
	nodes     int
	maxNodes  int
}

// ctxCheckMask controls how often the search polls the context: every
// ctxCheckMask+1 explored nodes. It must be a power of two minus one.
const ctxCheckMask = 255

// Schedule implements algo.Scheduler.
func (s *Scheduler) Schedule(inst *core.Instance) (*core.Schedule, error) {
	return s.ScheduleContext(context.Background(), inst)
}

// ScheduleContext is Schedule with cooperative cancellation: the search polls
// ctx every few hundred nodes and returns ctx.Err() promptly once it is
// cancelled or its deadline passes.
func (s *Scheduler) ScheduleContext(ctx context.Context, inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if !inst.IsUnitSize() {
		return nil, fmt.Errorf("branchbound: requires unit size jobs")
	}
	if inst.TotalJobs() == 0 {
		return &core.Schedule{}, nil
	}

	// Incumbent: the GreedyBalance schedule (a (2-1/m)-approximation), which
	// both seeds the upper bound and guarantees we always have a feasible
	// answer to return.
	gbSched, err := greedybalance.New().Schedule(inst)
	if err != nil {
		return nil, err
	}
	gbRes, err := core.Execute(inst, gbSched)
	if err != nil {
		return nil, err
	}
	if !gbRes.Finished() {
		return nil, fmt.Errorf("branchbound: internal error: incumbent schedule incomplete")
	}

	sv := &solver{
		ctx:      ctx,
		inst:     inst,
		suffix:   newSuffixWork(inst),
		best:     gbRes.Makespan(),
		visited:  make(map[string]int),
		maxNodes: s.MaxNodes,
	}
	if sv.maxNodes <= 0 {
		sv.maxNodes = DefaultMaxNodes
	}
	sv.bestMoves = allocRows(gbSched)
	// The greedy seed is the first incumbent: report it so observers see a
	// feasible bound even before the search improves on it.
	progress.Report(ctx, progress.Incumbent{Solver: s.Name(), Makespan: sv.best})

	root := &state{done: make([]int, inst.NumProcessors()), rem: make([]float64, inst.NumProcessors())}
	for i := 0; i < inst.NumProcessors(); i++ {
		root.rem[i] = work(inst, i, 0)
	}
	err = sv.search(root, 0, nil)
	progress.AddNodes(ctx, int64(sv.nodes))
	if err != nil {
		return nil, err
	}

	sched := core.NewSchedule(len(sv.bestMoves), inst.NumProcessors())
	for t, row := range sv.bestMoves {
		copy(sched.Alloc[t], row)
	}
	return sched, nil
}

// Makespan returns the optimal makespan.
func (s *Scheduler) Makespan(inst *core.Instance) (int, error) {
	sched, err := s.Schedule(inst)
	if err != nil {
		return 0, err
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		return 0, err
	}
	if !res.Finished() {
		return 0, fmt.Errorf("branchbound: internal error: result schedule incomplete")
	}
	return res.Makespan(), nil
}

func work(inst *core.Instance, p, done int) float64 {
	if done >= inst.NumJobs(p) {
		return 0
	}
	return inst.Job(p, done).Work()
}

// suffixWork caches, per processor, the total work of every job suffix:
// suffixWork[i][k] = Σ_{j ≥ k} work(i, j). It is computed once per solve so
// the bound below runs in O(m) per search node instead of re-walking every
// remaining job; it is shared by the serial and the parallel solver.
type suffixWork [][]float64

func newSuffixWork(inst *core.Instance) suffixWork {
	sw := make(suffixWork, inst.NumProcessors())
	for i := range sw {
		n := inst.NumJobs(i)
		sw[i] = make([]float64, n+1)
		for j := n - 1; j >= 0; j-- {
			sw[i][j] = sw[i][j+1] + inst.Job(i, j).Work()
		}
	}
	return sw
}

// lowerBound returns a lower bound on the number of additional steps needed
// from the state: the maximum of the remaining chain length and the ceiling
// of the remaining aggregate work (read off the precomputed suffix table).
// It is shared by the serial and the parallel solver.
func lowerBound(inst *core.Instance, suffix suffixWork, st *state) int {
	chain := 0
	var workSum float64
	for i := 0; i < inst.NumProcessors(); i++ {
		remaining := inst.NumJobs(i) - st.done[i]
		if remaining > chain {
			chain = remaining
		}
		if remaining > 0 {
			workSum += st.rem[i] + suffix[i][st.done[i]+1]
		}
	}
	workBound := int(math.Ceil(workSum - numeric.Eps))
	if workBound > chain {
		return workBound
	}
	return chain
}

// search explores the state at the given depth; moves holds the allocation
// rows of the path so far.
func (sv *solver) search(st *state, depth int, moves [][]float64) error {
	sv.nodes++
	if sv.nodes > sv.maxNodes {
		return fmt.Errorf("branchbound: node limit of %d exceeded", sv.maxNodes)
	}
	if sv.nodes&ctxCheckMask == 0 {
		select {
		case <-sv.ctx.Done():
			return sv.ctx.Err()
		default:
		}
	}
	finished := true
	for i := range st.done {
		if st.done[i] < sv.inst.NumJobs(i) {
			finished = false
			break
		}
	}
	if finished {
		if depth < sv.best {
			sv.best = depth
			sv.bestMoves = append([][]float64(nil), moves...)
			progress.Report(sv.ctx, progress.Incumbent{Solver: "branch-and-bound", Makespan: depth})
		}
		return nil
	}
	if depth+lowerBound(sv.inst, sv.suffix, st) >= sv.best {
		return nil // cannot improve on the incumbent
	}
	key := st.key()
	if prev, ok := sv.visited[key]; ok && prev <= depth {
		return nil // reached the same state earlier (or equally early) before
	}
	sv.visited[key] = depth

	succ := expand(sv.inst, st)
	for _, next := range succ {
		if err := sv.search(next.state, depth+1, append(moves, next.alloc)); err != nil {
			return err
		}
	}
	return nil
}

type move struct {
	state *state
	alloc []float64
}

// expand enumerates the non-wasting, progressive one-step moves from a state,
// ordered so that moves finishing more jobs come first (good incumbent
// updates early make the bound prune more). It is shared by the serial and
// the parallel solver; it only reads the instance and the state.
func expand(inst *core.Instance, st *state) []move {
	m := inst.NumProcessors()
	var active []int
	var total float64
	for i := 0; i < m; i++ {
		if st.done[i] < inst.NumJobs(i) {
			active = append(active, i)
			total += st.rem[i]
		}
	}
	derive := func(finish []int, partial int, amount float64) move {
		ns := &state{done: append([]int(nil), st.done...), rem: append([]float64(nil), st.rem...)}
		alloc := make([]float64, m)
		for _, i := range finish {
			alloc[i] = st.rem[i]
			ns.done[i]++
			ns.rem[i] = work(inst, i, ns.done[i])
		}
		if partial >= 0 {
			alloc[partial] = amount
			ns.rem[partial] -= amount
			if ns.rem[partial] < 0 {
				ns.rem[partial] = 0
			}
		}
		return move{state: ns, alloc: alloc}
	}

	if numeric.Leq(total, 1) {
		return []move{derive(active, -1, 0)}
	}

	var out []move
	k := len(active)
	for mask := 1; mask < 1<<k; mask++ {
		var finish []int
		var sum float64
		for bit := 0; bit < k; bit++ {
			if mask&(1<<bit) != 0 {
				finish = append(finish, active[bit])
				sum += st.rem[active[bit]]
			}
		}
		if numeric.Greater(sum, 1) {
			continue
		}
		leftover := 1 - sum
		if leftover <= numeric.Eps {
			out = append(out, derive(finish, -1, 0))
			continue
		}
		for _, p := range active {
			if containsInt(finish, p) || !numeric.Greater(st.rem[p], leftover) {
				continue
			}
			out = append(out, derive(finish, p, leftover))
		}
	}
	// Order: more finished jobs first (simple insertion sort on the count of
	// completed jobs in the successor).
	doneCount := func(mv move) int {
		c := 0
		for i := range mv.state.done {
			c += mv.state.done[i]
		}
		return c
	}
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && doneCount(out[b]) > doneCount(out[b-1]); b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	return out
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func allocRows(s *core.Schedule) [][]float64 {
	rows := make([][]float64, s.Steps())
	for t := range rows {
		rows[t] = append([]float64(nil), s.Alloc[t]...)
	}
	return rows
}
