// Package branchbound provides an exact branch-and-bound solver for the
// CRSharing problem with unit size jobs. It explores the same non-wasting,
// progressive move space as the paper's exact algorithms (packages optres2
// and optresm) but prunes with the Observation-1 work bound, the per-processor
// chain bound and an incumbent obtained from GreedyBalance. It is not part of
// the paper; it exists as a practically faster exact solver for mid-size
// instances and as a third, independently implemented optimum oracle for the
// test suite.
//
// Both solvers run on pooled scratch memory (see scratch.go): the search path
// is an explicit stack truncated on backtrack, successors live in flat
// per-depth buffers, and the visited set is an open-addressing table over a
// byte arena, so a steady-state solve allocates nothing per node. States that
// differ only by permuting processors with identical job sequences share one
// canonical visited key (symmetry breaking), which collapses the symmetric
// copies of every subtree.
package branchbound

import (
	"context"
	"fmt"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/numeric"
	"crsharing/internal/progress"
)

// Scheduler is the exact branch-and-bound solver.
type Scheduler struct {
	// MaxNodes caps the number of explored search nodes (0 = DefaultMaxNodes).
	MaxNodes int
}

// DefaultMaxNodes bounds the search so that pathological instances fail fast
// instead of hanging.
const DefaultMaxNodes = 20_000_000

// New returns a branch-and-bound solver with default limits.
func New() *Scheduler { return &Scheduler{} }

// Name implements algo.Scheduler.
func (s *Scheduler) Name() string { return "branch-and-bound" }

// IsExact marks the scheduler as exact.
func (s *Scheduler) IsExact() bool { return true }

type solver struct {
	ctx       context.Context
	inst      *core.Instance
	name      string
	suffix    suffixWork
	sc        *searchScratch
	best      int         // incumbent makespan
	bestMoves [][]float64 // allocation rows of the incumbent (owned deep copies)
	nodes     int
	maxNodes  int
}

// acceptWarmStart resolves the warm-start hint attached to ctx: when the hint
// validates against inst and its executed makespan strictly beats the greedy
// seed, a non-wasting projection of the hint and its makespan are returned
// and the caller installs them as the initial incumbent — exactly the role
// the greedy schedule plays on a cold solve, just with a tighter bound from
// step one. A warm start therefore never changes the optimal makespan or the
// (zero) waste the search returns; it can only change *which* optimal
// schedule comes back, in the one case where the hint already ties the
// optimum and no strictly better completion exists to replace it. Hints are
// untrusted: their makespan is derived by executing them against inst, never
// taken from the caller, and anything infeasible, unfinished, built for a
// different instance, or no better than the greedy seed is dropped — the
// solve then proceeds cold, byte-for-byte identical to a run with no hint at
// all.
func acceptWarmStart(ctx context.Context, inst *core.Instance, greedyMakespan int) (*core.Schedule, int) {
	h := progress.WarmStartFrom(ctx)
	if h == nil || h.Schedule == nil {
		return nil, 0
	}
	res, err := core.Execute(inst, h.Schedule)
	if err != nil || !res.Finished() {
		return nil, 0
	}
	hm := res.Makespan()
	if hm >= greedyMakespan {
		return nil, 0
	}
	repaired := nonWasting(inst, h.Schedule, res)
	if check, err := core.Execute(inst, repaired); err != nil || !check.Finished() || check.Makespan() != hm {
		return nil, 0
	}
	progress.SetWarmSeed(ctx, int64(hm))
	return repaired, hm
}

// nonWasting projects a validated hint onto the kernel's non-wasting move
// space: every share is capped at the progress it actually buys (the active
// job's requirement and its remaining work), and shares on idle processors
// or zero-requirement jobs are dropped. The projection never changes any
// job's progress, so completions and makespan are preserved — but the
// installed incumbent now carries zero waste, exactly like every schedule
// the search itself enumerates, and the warm solve's result metrics match a
// cold solve's whichever of the two ends up returned.
func nonWasting(inst *core.Instance, hint *core.Schedule, res *core.Result) *core.Schedule {
	m := inst.NumProcessors()
	out := core.NewSchedule(res.Makespan(), m)
	for t := 0; t < res.Makespan(); t++ {
		for i := 0; i < m; i++ {
			j, ok := res.ActiveJob(t, i)
			if !ok {
				continue
			}
			req := inst.Job(i, j).Req
			if req <= numeric.Eps {
				continue
			}
			share := hint.Share(t, i)
			if share > req {
				share = req
			}
			if rw := res.RemainingWork(t, i); share > rw {
				share = rw
			}
			out.Alloc[t][i] = share
		}
	}
	return out
}

// ctxCheckMask controls how often the search polls the context: every
// ctxCheckMask+1 explored nodes. It must be a power of two minus one.
const ctxCheckMask = 255

// Schedule implements algo.Scheduler.
func (s *Scheduler) Schedule(inst *core.Instance) (*core.Schedule, error) {
	return s.ScheduleContext(context.Background(), inst)
}

// ScheduleContext is Schedule with cooperative cancellation: the search polls
// ctx every few hundred nodes and returns ctx.Err() promptly once it is
// cancelled or its deadline passes.
func (s *Scheduler) ScheduleContext(ctx context.Context, inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if !inst.IsUnitSize() {
		return nil, fmt.Errorf("branchbound: requires unit size jobs")
	}
	if inst.TotalJobs() == 0 {
		return &core.Schedule{}, nil
	}

	// Incumbent: the GreedyBalance schedule (a (2-1/m)-approximation), which
	// both seeds the upper bound and guarantees we always have a feasible
	// answer to return.
	gbSched, err := greedybalance.New().Schedule(inst)
	if err != nil {
		return nil, err
	}
	gbRes, err := core.Execute(inst, gbSched)
	if err != nil {
		return nil, err
	}
	if !gbRes.Finished() {
		return nil, fmt.Errorf("branchbound: internal error: incumbent schedule incomplete")
	}

	sc := getScratch(inst)
	defer putScratch(sc)
	sv := &solver{
		ctx:      ctx,
		inst:     inst,
		name:     s.Name(),
		suffix:   newSuffixWork(inst),
		sc:       sc,
		best:     gbRes.Makespan(),
		maxNodes: s.MaxNodes,
	}
	if sv.maxNodes <= 0 {
		sv.maxNodes = DefaultMaxNodes
	}
	sv.bestMoves = allocRows(gbSched)
	if hint, hm := acceptWarmStart(ctx, inst, sv.best); hint != nil {
		// The hint replaces the greedy seed as the initial incumbent.
		sv.best = hm
		sv.bestMoves = allocRows(hint)
	}
	// The seed — greedy, or the warm-start hint when one was accepted — is the
	// first incumbent: report it so observers see a feasible bound even before
	// the search improves on it.
	progress.Report(ctx, progress.Incumbent{Solver: s.Name(), Makespan: sv.best})

	err = sv.search(sc.rootDone, sc.rootRem, 0)
	progress.AddNodes(ctx, int64(sv.nodes))
	progress.AddAllocs(ctx, sc.allocs)
	if err != nil {
		return nil, err
	}

	sched := core.NewSchedule(len(sv.bestMoves), inst.NumProcessors())
	for t, row := range sv.bestMoves {
		copy(sched.Alloc[t], row)
	}
	return sched, nil
}

// Makespan returns the optimal makespan.
func (s *Scheduler) Makespan(inst *core.Instance) (int, error) {
	sched, err := s.Schedule(inst)
	if err != nil {
		return 0, err
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		return 0, err
	}
	if !res.Finished() {
		return 0, fmt.Errorf("branchbound: internal error: result schedule incomplete")
	}
	return res.Makespan(), nil
}

func work(inst *core.Instance, p, done int) float64 {
	if done >= inst.NumJobs(p) {
		return 0
	}
	return inst.Job(p, done).Work()
}

// suffixWork caches, per processor, the total work of every job suffix:
// suffixWork[i][k] = Σ_{j ≥ k} work(i, j). It is computed once per solve so
// the bound below runs in O(m) per search node instead of re-walking every
// remaining job; it is shared by the serial and the parallel solver.
type suffixWork [][]float64

func newSuffixWork(inst *core.Instance) suffixWork {
	sw := make(suffixWork, inst.NumProcessors())
	for i := range sw {
		n := inst.NumJobs(i)
		sw[i] = make([]float64, n+1)
		for j := n - 1; j >= 0; j-- {
			sw[i][j] = sw[i][j+1] + inst.Job(i, j).Work()
		}
	}
	return sw
}

// lowerBound returns a lower bound on the number of additional steps needed
// from the state (done, rem): the maximum of the remaining chain length and
// the ceiling of the remaining aggregate work (read off the precomputed
// suffix table). It is shared by the serial and the parallel solver.
func lowerBound(inst *core.Instance, suffix suffixWork, done []int, rem []float64) int {
	chain := 0
	var workSum float64
	for i := 0; i < inst.NumProcessors(); i++ {
		remaining := inst.NumJobs(i) - done[i]
		if remaining > chain {
			chain = remaining
		}
		if remaining > 0 {
			workSum += rem[i] + suffix[i][done[i]+1]
		}
	}
	workBound := numeric.CeilTol(workSum)
	if workBound > chain {
		return workBound
	}
	return chain
}

// search explores the state (done, rem) at the given depth. The rows of the
// path so far live in the scratch path stack; done and rem alias the parent
// depth's successor buffer, which stays valid for the whole call.
func (sv *solver) search(done []int, rem []float64, depth int) error {
	sv.nodes++
	if sv.nodes > sv.maxNodes {
		return fmt.Errorf("branchbound: node limit of %d exceeded", sv.maxNodes)
	}
	if sv.nodes&ctxCheckMask == 0 {
		select {
		case <-sv.ctx.Done():
			return sv.ctx.Err()
		default:
		}
	}
	finished := true
	for i := range done {
		if done[i] < sv.inst.NumJobs(i) {
			finished = false
			break
		}
	}
	if finished {
		if depth < sv.best {
			sv.best = depth
			sv.copyIncumbent(depth)
			progress.Report(sv.ctx, progress.Incumbent{Solver: sv.name, Makespan: depth})
		}
		return nil
	}
	if b := depth + lowerBound(sv.inst, sv.suffix, done, rem); b >= sv.best {
		// Classic incumbent cut. A warm start needs no clause of its own: an
		// accepted hint was installed as the initial incumbent, so its bound
		// prunes here from the very first node.
		return nil
	}
	if sv.sc.visited.visit(sv.sc.stateKey(done, rem), depth, &sv.sc.allocs) {
		return nil // reached the same state (up to symmetry) at least as early before
	}

	buf := sv.sc.level(depth)
	expandInto(sv.inst, sv.sc, done, rem, buf)
	for oi := 0; oi < buf.n; oi++ {
		i := buf.ord[oi]
		sv.sc.pathRow(depth, buf.allocRow(i))
		if err := sv.search(buf.doneRow(i), buf.remRow(i), depth+1); err != nil {
			return err
		}
	}
	return nil
}

// copyIncumbent deep-copies the first depth rows of the scratch path stack
// into bestMoves. The incumbent only ever shrinks (depth < sv.best before
// every call), so the rows of the initial greedy incumbent are reused and the
// copy allocates nothing.
func (sv *solver) copyIncumbent(depth int) {
	sv.bestMoves = sv.bestMoves[:depth]
	for t := 0; t < depth; t++ {
		copy(sv.bestMoves[t], sv.sc.path[t])
	}
}

// expandInto enumerates the non-wasting, progressive one-step moves from the
// state (done, rem) into buf, ordered so that moves finishing more jobs come
// first (good incumbent updates early make the bound prune more). The
// enumeration and its ordering are exactly those of the original
// allocation-per-move implementation; only the storage changed. It is shared
// by the serial and the parallel solver.
func expandInto(inst *core.Instance, sc *searchScratch, done []int, rem []float64, buf *expandBuf) {
	m := inst.NumProcessors()
	buf.reset(m)
	active := sc.active[:0]
	base := 0
	var total float64
	for i := 0; i < m; i++ {
		base += done[i]
		if done[i] < inst.NumJobs(i) {
			if cap(active) == len(active) {
				sc.allocs++
			}
			active = append(active, i)
			total += rem[i]
		}
	}
	sc.active = active
	k := len(active)

	derive := func(finishMask int, partial int, amount float64) {
		idx := buf.add(&sc.allocs)
		d, r, a := buf.doneRow(idx), buf.remRow(idx), buf.allocRow(idx)
		copy(d, done)
		copy(r, rem)
		cnt := base
		for bit := 0; bit < k; bit++ {
			if finishMask&(1<<bit) != 0 {
				i := active[bit]
				a[i] = rem[i]
				d[i]++
				r[i] = work(inst, i, d[i])
				cnt++
			}
		}
		if partial >= 0 {
			a[partial] = amount
			r[partial] -= amount
			if r[partial] < 0 {
				r[partial] = 0
			}
		}
		buf.cnt[idx] = cnt
	}

	if numeric.Leq(total, 1) {
		derive(1<<k-1, -1, 0)
		buf.order(&sc.allocs)
		return
	}

	for mask := 1; mask < 1<<k; mask++ {
		var sum float64
		for bit := 0; bit < k; bit++ {
			if mask&(1<<bit) != 0 {
				sum += rem[active[bit]]
			}
		}
		if numeric.Greater(sum, 1) {
			continue
		}
		leftover := 1 - sum
		if numeric.Leq(leftover, 0) {
			derive(mask, -1, 0)
			continue
		}
		for bit := 0; bit < k; bit++ {
			p := active[bit]
			if mask&(1<<bit) != 0 || !numeric.Greater(rem[p], leftover) {
				continue
			}
			derive(mask, p, leftover)
		}
	}
	buf.order(&sc.allocs)
}

func allocRows(s *core.Schedule) [][]float64 {
	rows := make([][]float64, s.Steps())
	for t := range rows {
		rows[t] = append([]float64(nil), s.Alloc[t]...)
	}
	return rows
}
