package branchbound

import (
	"context"
	"sync"
	"testing"

	"crsharing/internal/core"
	"crsharing/internal/progress"
)

// incumbentInstance is small enough for an instant exact solve but chosen so
// GreedyBalance's seed is not obviously optimal, exercising the report path.
func incumbentInstance() *core.Instance {
	return core.NewInstance(
		[]float64{0.6, 0.4, 0.7},
		[]float64{0.5, 0.6},
		[]float64{0.3, 0.9},
	)
}

// collectIncumbents runs the scheduler under an observer and returns the
// reported sequence.
func collectIncumbents(t *testing.T, s interface {
	ScheduleContext(context.Context, *core.Instance) (*core.Schedule, error)
}, inst *core.Instance) []progress.Incumbent {
	t.Helper()
	var mu sync.Mutex
	var got []progress.Incumbent
	ctx := progress.WithObserver(context.Background(), func(inc progress.Incumbent) {
		mu.Lock()
		got = append(got, inc)
		mu.Unlock()
	})
	sched, err := s.ScheduleContext(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Execute(inst, sched)
	if err != nil || !res.Finished() {
		t.Fatalf("invalid result schedule: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("expected at least the seed incumbent to be reported")
	}
	if got[len(got)-1].Makespan < res.Makespan() {
		t.Fatalf("last incumbent %d better than final makespan %d", got[len(got)-1].Makespan, res.Makespan())
	}
	return append([]progress.Incumbent(nil), got...)
}

func TestSerialReportsIncumbents(t *testing.T) {
	got := collectIncumbents(t, New(), incumbentInstance())
	for i := 1; i < len(got); i++ {
		if got[i].Makespan >= got[i-1].Makespan {
			t.Fatalf("serial incumbents must strictly improve after the seed: %+v", got)
		}
	}
}

func TestParallelReportsIncumbents(t *testing.T) {
	// Parallel workers race, so the sequence need not be monotone — but the
	// seed must be first and every report must carry the solver name.
	got := collectIncumbents(t, NewParallel(), incumbentInstance())
	if got[0].Solver != "branch-and-bound-parallel" {
		t.Fatalf("first report should be the seed from the parallel solver, got %+v", got[0])
	}
	for _, inc := range got {
		if inc.Solver == "" || inc.Makespan <= 0 {
			t.Fatalf("malformed incumbent: %+v", inc)
		}
	}
}
