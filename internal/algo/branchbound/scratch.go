package branchbound

import (
	"bytes"
	"math"
	"sync"

	"crsharing/internal/core"
)

// searchScratch bundles every reusable buffer one branch-and-bound search
// needs: the explicit path stack, the per-depth successor buffers, the
// open-addressing visited table with its byte-key arena, and the symmetry
// grouping of identical processors. Scratches are pooled so a steady-state
// solve performs no heap allocations on the search path; the scratch counts
// its own growth events in allocs, which the solvers report through
// progress.AddAllocs.
type searchScratch struct {
	m int // processor width the buffers are currently sized for

	// path holds, per depth, the allocation row chosen at that depth. Rows
	// alias the per-depth expand buffers, which are stable while their
	// depth's successor loop is active; the incumbent installers deep-copy
	// them, so nothing outlives the scratch.
	path [][]float64

	// levels holds one successor buffer per search depth. A buffer at depth
	// d is only mutated while depth d is being expanded, never by the deeper
	// recursion, so the rows it hands out stay valid for the whole loop.
	levels []*expandBuf

	visited visitedTable

	// Symmetry breaking: groupRep[i] is the lowest-numbered processor whose
	// job sequence is identical to processor i's (i itself when unique).
	// States that agree up to permuting processors within one group encode
	// to the same canonical visited key, so the visited prune collapses the
	// symmetric copies of every subtree.
	groupRep []int
	hasSym   bool

	active []int   // scratch for the active-processor list during expand
	keyBuf []byte  // scratch for the canonical state key
	pairD  []int   // scratch (done half) for sorting one symmetry group
	pairR  []int64 // scratch (rounded-rem half) for the same

	rootDone []int
	rootRem  []float64

	allocs int64 // heap-growth events recorded during the current solve
}

var scratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// getScratch returns a pooled scratch prepared for the instance.
func getScratch(inst *core.Instance) *searchScratch {
	sc := scratchPool.Get().(*searchScratch)
	sc.prepare(inst)
	return sc
}

func putScratch(sc *searchScratch) { scratchPool.Put(sc) }

// prepare sizes the scratch for the instance and resets all per-solve state.
func (sc *searchScratch) prepare(inst *core.Instance) {
	m := inst.NumProcessors()
	sc.m = m
	sc.allocs = 0
	sc.rootDone = resizeInts(sc.rootDone, m, &sc.allocs)
	sc.rootRem = resizeFloats(sc.rootRem, m, &sc.allocs)
	for i := 0; i < m; i++ {
		sc.rootDone[i] = 0
		sc.rootRem[i] = work(inst, i, 0)
	}
	sc.computeGroups(inst)
	sc.visited.reset(&sc.allocs)
}

// pathRow records row as the allocation chosen at the given depth.
func (sc *searchScratch) pathRow(depth int, row []float64) {
	for len(sc.path) <= depth {
		if cap(sc.path) == len(sc.path) {
			sc.allocs++
		}
		sc.path = append(sc.path, nil)
	}
	sc.path[depth] = row
}

// level returns the successor buffer for the given depth, growing the ladder
// on first descent.
func (sc *searchScratch) level(depth int) *expandBuf {
	for len(sc.levels) <= depth {
		if cap(sc.levels) == len(sc.levels) {
			sc.allocs++
		}
		sc.levels = append(sc.levels, new(expandBuf))
	}
	return sc.levels[depth]
}

// computeGroups partitions the processors into groups with exactly identical
// job sequences. Quadratic in m, run once per solve; m is small.
func (sc *searchScratch) computeGroups(inst *core.Instance) {
	m := inst.NumProcessors()
	sc.groupRep = resizeInts(sc.groupRep, m, &sc.allocs)
	sc.hasSym = false
	for i := 0; i < m; i++ {
		sc.groupRep[i] = i
		for j := 0; j < i; j++ {
			if sc.groupRep[j] == j && sameJobs(inst, i, j) {
				sc.groupRep[i] = j
				sc.hasSym = true
				break
			}
		}
	}
}

func sameJobs(inst *core.Instance, a, b int) bool {
	if inst.NumJobs(a) != inst.NumJobs(b) {
		return false
	}
	for j := 0; j < inst.NumJobs(a); j++ {
		ja, jb := inst.Job(a, j), inst.Job(b, j)
		if ja.Req != jb.Req || ja.Size != jb.Size {
			return false
		}
	}
	return true
}

// stateKey encodes (done, rem) into the scratch key buffer. Remaining work is
// rounded to 1e-9 resolution exactly as the previous string key did. With
// symmetric processors present, the pairs of each symmetry group are sorted
// before encoding, so permuting identical processors yields the same key and
// the visited prune removes the redundant subtrees.
func (sc *searchScratch) stateKey(done []int, rem []float64) []byte {
	buf := sc.keyBuf[:0]
	prevCap := cap(buf)
	if !sc.hasSym {
		for i := 0; i < sc.m; i++ {
			buf = appendPair(buf, done[i], roundRem(rem[i]))
		}
	} else {
		for i := 0; i < sc.m; i++ {
			if sc.groupRep[i] != i {
				continue // encoded with its representative
			}
			pd, pr := sc.pairD[:0], sc.pairR[:0]
			for j := i; j < sc.m; j++ {
				if sc.groupRep[j] == i {
					pd = append(pd, done[j])
					pr = append(pr, roundRem(rem[j]))
				}
			}
			// Canonical order within the group: (done, rem) ascending.
			for a := 1; a < len(pd); a++ {
				for b := a; b > 0 && (pd[b] < pd[b-1] || (pd[b] == pd[b-1] && pr[b] < pr[b-1])); b-- {
					pd[b], pd[b-1] = pd[b-1], pd[b]
					pr[b], pr[b-1] = pr[b-1], pr[b]
				}
			}
			for p := range pd {
				buf = appendPair(buf, pd[p], pr[p])
			}
			if cap(pd) > cap(sc.pairD) {
				sc.pairD, sc.pairR = pd, pr
				sc.allocs++
			}
		}
	}
	if cap(buf) != prevCap {
		sc.allocs++
	}
	sc.keyBuf = buf
	return buf
}

func roundRem(r float64) int64 { return int64(math.Round(r * 1e9)) }

func appendPair(buf []byte, done int, rr int64) []byte {
	return append(buf,
		byte(done), byte(done>>8), byte(done>>16), byte(done>>24),
		byte(rr), byte(rr>>8), byte(rr>>16), byte(rr>>24),
		byte(rr>>32), byte(rr>>40), byte(rr>>48), byte(rr>>56))
}

// visitedTable is an open-addressing hash table from canonical state keys to
// the shallowest depth the state was reached at. Keys live in one append-only
// byte arena, so the table performs no per-entry allocations; clearing it for
// the next solve just resets the entry slots and the arena length.
type visitedTable struct {
	entries []visitedEntry // length is a power of two
	keys    []byte         // arena holding every inserted key back to back
	count   int
}

type visitedEntry struct {
	hash  uint64
	off   uint32
	klen  uint32 // 0 marks an empty slot (keys are never empty)
	depth int32
}

const visitedMinSize = 1 << 10

func (vt *visitedTable) reset(allocs *int64) {
	if vt.entries == nil {
		vt.entries = make([]visitedEntry, visitedMinSize)
		*allocs++
	} else {
		clear(vt.entries)
	}
	vt.keys = vt.keys[:0]
	vt.count = 0
}

// visit looks the key up, recording depth as the shallowest visit. It
// returns true when the state was already reached at the same or a smaller
// depth — the caller prunes — and false otherwise.
func (vt *visitedTable) visit(key []byte, depth int, allocs *int64) bool {
	if vt.count*4 >= len(vt.entries)*3 {
		vt.grow(allocs)
	}
	h := fnv64(key)
	mask := uint64(len(vt.entries) - 1)
	i := h & mask
	for {
		e := &vt.entries[i]
		if e.klen == 0 {
			off := len(vt.keys)
			if cap(vt.keys)-off < len(key) {
				*allocs++
			}
			vt.keys = append(vt.keys, key...)
			*e = visitedEntry{hash: h, off: uint32(off), klen: uint32(len(key)), depth: int32(depth)}
			vt.count++
			return false
		}
		if e.hash == h && int(e.klen) == len(key) && bytes.Equal(vt.keys[e.off:e.off+uint32(len(key))], key) {
			if int(e.depth) <= depth {
				return true
			}
			e.depth = int32(depth)
			return false
		}
		i = (i + 1) & mask
	}
}

func (vt *visitedTable) grow(allocs *int64) {
	old := vt.entries
	vt.entries = make([]visitedEntry, len(old)*2)
	*allocs++
	mask := uint64(len(vt.entries) - 1)
	for _, e := range old {
		if e.klen == 0 {
			continue
		}
		i := e.hash & mask
		for vt.entries[i].klen != 0 {
			i = (i + 1) & mask
		}
		vt.entries[i] = e
	}
}

// fnv64 is the FNV-1a hash, inlined to keep the visited probe allocation-free.
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// expandBuf stores the successors of one expanded node in flat row-major
// arrays (successor i occupies [i*m, (i+1)*m) of each array), replacing the
// per-move state and allocation-slice churn of the original implementation.
type expandBuf struct {
	n     int // successors stored
	m     int // row width
	done  []int
	rem   []float64
	alloc []float64
	cnt   []int // total finished jobs in the successor, for move ordering
	ord   []int // iteration order: cnt descending, stable
}

func (b *expandBuf) reset(m int) {
	b.n = 0
	b.m = m
}

// add appends one zeroed successor row and returns its index. Growth is
// geometric and preserves the rows already stored, which callers may still
// hold slices into.
func (b *expandBuf) add(allocs *int64) int {
	idx := b.n
	need := (idx + 1) * b.m
	if cap(b.done) < need {
		*allocs++
		grow := 2 * cap(b.done)
		if grow < need {
			grow = need
		}
		nd := make([]int, grow)
		nr := make([]float64, grow)
		na := make([]float64, grow)
		copy(nd, b.done[:idx*b.m])
		copy(nr, b.rem[:idx*b.m])
		copy(na, b.alloc[:idx*b.m])
		b.done, b.rem, b.alloc = nd, nr, na
	}
	b.done = b.done[:need]
	b.rem = b.rem[:need]
	b.alloc = b.alloc[:need]
	row := b.alloc[idx*b.m : need]
	for i := range row {
		row[i] = 0
	}
	if cap(b.cnt) <= idx {
		*allocs++
	}
	b.cnt = append(b.cnt[:idx], 0)
	b.n++
	return idx
}

func (b *expandBuf) doneRow(i int) []int      { return b.done[i*b.m : (i+1)*b.m] }
func (b *expandBuf) remRow(i int) []float64   { return b.rem[i*b.m : (i+1)*b.m] }
func (b *expandBuf) allocRow(i int) []float64 { return b.alloc[i*b.m : (i+1)*b.m] }

// order rebuilds ord as the stable insertion sort of the successors by
// finished-job count descending — the exact ordering rule of the original
// []move implementation.
func (b *expandBuf) order(allocs *int64) {
	if cap(b.ord) < b.n {
		*allocs++
		b.ord = make([]int, b.n)
	}
	b.ord = b.ord[:b.n]
	for i := 0; i < b.n; i++ {
		b.ord[i] = i
	}
	for a := 1; a < b.n; a++ {
		for x := a; x > 0 && b.cnt[b.ord[x]] > b.cnt[b.ord[x-1]]; x-- {
			b.ord[x], b.ord[x-1] = b.ord[x-1], b.ord[x]
		}
	}
}

func resizeInts(s []int, n int, allocs *int64) []int {
	if cap(s) < n {
		*allocs++
		return make([]int, n)
	}
	return s[:n]
}

func resizeFloats(s []float64, n int, allocs *int64) []float64 {
	if cap(s) < n {
		*allocs++
		return make([]float64, n)
	}
	return s[:n]
}
