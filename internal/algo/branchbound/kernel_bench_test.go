package branchbound

import (
	"context"
	"strings"
	"testing"

	"crsharing/internal/core"
	"crsharing/internal/gen"
	"crsharing/internal/progress"
)

// wideManyProcInstance is a wide (8-processor) instance whose search space is
// genuinely explored. The harness corpus family "wide-many-proc" draws random
// wide instances, but on those the greedy seed already matches the work lower
// bound and the search confirms it in one node; the greedy worst case at the
// same width forces a deep search, which is what a node-throughput benchmark
// needs. (internal/harness itself cannot be imported here — it would cycle
// back through internal/solver.)
func wideManyProcInstance() *core.Instance {
	return gen.GreedyWorstCase(8, 2, 1.0/(20*8*9))
}

// benchNodeThroughput measures a kernel on an instance whose search is capped
// by MaxNodes, reporting node throughput. The cap makes the per-op work
// deterministic even when the full search space is astronomically larger, so
// nodes/s is comparable run to run; hitting the cap is the expected outcome,
// not a failure.
func benchNodeThroughput(b *testing.B, inst *core.Instance, kernel func(context.Context, *core.Instance) (*core.Schedule, error)) {
	b.Helper()
	var ctr progress.Counters
	ctx := progress.WithCounters(context.Background(), &ctr)
	run := func() {
		if _, err := kernel(ctx, inst); err != nil && !strings.Contains(err.Error(), "node limit") {
			b.Fatal(err)
		}
	}
	run() // warm the scratch pool
	ctr.Nodes.Store(0)
	ctr.Allocs.Store(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	nodes := ctr.Nodes.Load()
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(nodes)/secs, "nodes/s")
	}
}

// benchMaxNodes caps the wide-many-proc searches: large enough to dominate
// warm-up effects, small enough that one op stays in the tens of
// milliseconds.
const benchMaxNodes = 200_000

// BenchmarkSerialWideManyProc measures serial kernel node throughput on a
// wide instance (8 processors); the per-node cost here is dominated by the
// successor enumeration and the canonical visited key.
func BenchmarkSerialWideManyProc(b *testing.B) {
	s := &Scheduler{MaxNodes: benchMaxNodes}
	benchNodeThroughput(b, wideManyProcInstance(), s.ScheduleContext)
}

// BenchmarkParallelWideManyProc is the work-stealing counterpart of
// BenchmarkSerialWideManyProc.
func BenchmarkParallelWideManyProc(b *testing.B) {
	s := &ParallelScheduler{MaxNodes: benchMaxNodes}
	benchNodeThroughput(b, wideManyProcInstance(), s.ScheduleContext)
}

// BenchmarkSerialHardExact runs the uncapped greedy-worst-case search the
// top-level BenchmarkBranchBoundSerial uses, from inside the package so the
// kernel benchmarks stay runnable (and regression-gated) in isolation.
func BenchmarkSerialHardExact(b *testing.B) {
	benchNodeThroughput(b, hardExactInstance(), New().ScheduleContext)
}

// BenchmarkParallelHardExact is the work-stealing counterpart of
// BenchmarkSerialHardExact.
func BenchmarkParallelHardExact(b *testing.B) {
	benchNodeThroughput(b, hardExactInstance(), NewParallel().ScheduleContext)
}
