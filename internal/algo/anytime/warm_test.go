package anytime

import (
	"context"
	"testing"

	"crsharing/internal/algo/branchbound"
	"crsharing/internal/core"
	"crsharing/internal/gen"
	"crsharing/internal/progress"
)

// TestWarmHintBecomesIncumbent: on an instance whose greedy seed is one step
// off optimal, an exact warm-start hint must win the incumbent race — the
// solver records the accepted seed and returns a schedule at least as good.
func TestWarmHintBecomesIncumbent(t *testing.T) {
	inst := gen.GreedyWorstCase(4, 3, 0.01)
	exact, err := branchbound.New().Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	opt := executed(t, inst, exact).Makespan()

	var ctr progress.Counters
	ctx := progress.WithCounters(context.Background(), &ctr)
	ctx = progress.WithWarmStart(ctx, &progress.WarmStart{Schedule: exact, Source: "test"})
	sched, err := New().ScheduleContext(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	res := executed(t, inst, sched)
	if seed := ctr.WarmSeed.Load(); seed != int64(opt) {
		t.Fatalf("warm seed %d, want the hint's makespan %d", seed, opt)
	}
	if res.Makespan() > opt {
		t.Fatalf("anytime makespan %d worse than the accepted hint %d", res.Makespan(), opt)
	}
}

// TestWarmHintInfeasibleIgnored: a hint that cannot finish the instance is
// discarded without recording a seed, and the solver's floor (never worse
// than greedy) still holds.
func TestWarmHintInfeasibleIgnored(t *testing.T) {
	inst := gen.GreedyWorstCase(3, 2, 0.01)
	bogus := core.NewSchedule(1, inst.NumProcessors()) // one empty step

	var ctr progress.Counters
	ctx := progress.WithCounters(context.Background(), &ctr)
	ctx = progress.WithWarmStart(ctx, &progress.WarmStart{Schedule: bogus, Source: "test"})
	sched, err := New().ScheduleContext(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	executed(t, inst, sched)
	if seed := ctr.WarmSeed.Load(); seed != 0 {
		t.Fatalf("infeasible hint recorded warm seed %d", seed)
	}
}
