// Package anytime implements the anytime heuristic tier of the solver stack:
// a solver that produces a feasible schedule almost immediately and then
// keeps improving it for as long as its budget (and context) allows.
//
// The solver seeds with the paper's GreedyBalance schedule — reported as the
// first incumbent within microseconds — then sweeps the deterministic greedy
// variants (tie-break and balance ablations), and finally runs a randomized
// multi-start local search: restarts of a priority-perturbed balanced greedy
// scheduler whose per-processor priority noise diversifies the serve order
// around the balance rule. Every strict improvement streams through
// internal/progress, so observers (the jobs incumbent channel, the portfolio
// race) see a monotonically improving makespan.
//
// Unlike the exact solvers, ScheduleContext treats context expiry as the end
// of the improvement budget, not as failure: it returns the best schedule
// found so far with a nil error (matching the portfolio's best-effort
// semantics). It fails only when cancelled before the first candidate exists.
// The search stops early when an incumbent matches the instance's lower
// bound — the schedule is then provably optimal.
package anytime

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/numeric"
	"crsharing/internal/progress"
)

// DefaultRestarts is the default number of perturbed local-search restarts.
const DefaultRestarts = 192

// Scheduler is the anytime greedy + local-search solver.
type Scheduler struct {
	// Restarts is the perturbed multi-start budget (0 = DefaultRestarts).
	Restarts int
	// Seed seeds the deterministic perturbation stream (0 = 1). Two runs
	// with the same seed and an unexpired context return identical schedules.
	Seed int64
}

// New returns an anytime solver with the default budget.
func New() *Scheduler { return &Scheduler{} }

// Name implements algo.Scheduler.
func (s *Scheduler) Name() string { return "anytime-local-search" }

// Schedule implements algo.Scheduler.
func (s *Scheduler) Schedule(inst *core.Instance) (*core.Schedule, error) {
	return s.ScheduleContext(context.Background(), inst)
}

// candidate is one evaluated feasible schedule.
type candidate struct {
	sched    *core.Schedule
	makespan int
	wasted   float64
}

// better reports whether a improves on b: lower makespan, ties by less waste.
func (c candidate) better(b *candidate) bool {
	if b == nil {
		return true
	}
	return c.makespan < b.makespan || (c.makespan == b.makespan && c.wasted < b.wasted)
}

// ScheduleContext runs the anytime improvement loop under ctx. See the
// package comment for the cancellation semantics.
func (s *Scheduler) ScheduleContext(ctx context.Context, inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if inst.TotalJobs() == 0 {
		return &core.Schedule{}, nil
	}
	restarts := s.Restarts
	if restarts <= 0 {
		restarts = DefaultRestarts
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	lb := core.LowerBounds(inst).Best()

	var best *candidate
	var built int64
	finish := func() (*core.Schedule, error) {
		progress.AddNodes(ctx, built)
		return best.sched, nil
	}
	// offer evaluates sched and installs it as the incumbent when it
	// improves, streaming the improvement to the context's observer.
	offer := func(sched *core.Schedule, err error) bool {
		if err != nil {
			return false
		}
		built++
		res, execErr := core.Execute(inst, sched)
		if execErr != nil || !res.Finished() {
			return false
		}
		c := candidate{sched: sched, makespan: res.Makespan(), wasted: res.Wasted()}
		if !c.better(best) {
			return false
		}
		improvedMakespan := best == nil || c.makespan < best.makespan
		best = &c
		if improvedMakespan {
			progress.Report(ctx, progress.Incumbent{Solver: s.Name(), Makespan: c.makespan})
		}
		return true
	}

	// Phase 1: the greedy seed — the first incumbent, available immediately.
	offer(greedybalance.New().Schedule(inst))
	if best == nil {
		// GreedyBalance handles every valid instance; reaching this is a bug
		// in the instance rather than a budget problem.
		return nil, fmt.Errorf("anytime: could not build a feasible seed schedule")
	}
	// A warm-start hint competes right after the seed. offer re-executes it
	// against this instance, so an infeasible or stale hint is simply
	// rejected; a valid one that beats the greedy seed becomes the incumbent
	// (the anytime tier is heuristic — returning the hint itself is fine).
	// The hint is cloned because later candidates may be installed over it
	// and hints are shared across portfolio members.
	if h := progress.WarmStartFrom(ctx); h != nil && h.Schedule != nil {
		if offer(h.Schedule.Clone(), nil) {
			progress.SetWarmSeed(ctx, int64(best.makespan))
		}
	}
	if best.makespan <= lb {
		return finish()
	}

	// Phase 2: the deterministic greedy variants.
	variants := []*greedybalance.Scheduler{
		greedybalance.NewWithTie(greedybalance.SmallerRemaining),
		greedybalance.NewWithTie(greedybalance.ProcessorIndex),
		greedybalance.NewUnbalanced(greedybalance.LargerRemaining),
		greedybalance.NewUnbalanced(greedybalance.SmallerRemaining),
		greedybalance.NewUnbalanced(greedybalance.ProcessorIndex),
	}
	for _, v := range variants {
		if ctx.Err() != nil {
			return finish()
		}
		offer(v.Schedule(inst))
		if best.makespan <= lb {
			return finish()
		}
	}

	// Phase 3: multi-start local search. Each restart reruns the balanced
	// greedy scheduler with static per-processor priority noise; small
	// amplitudes explore tie-breaks around the balance rule, large ones
	// scramble it. The rng stream is deterministic in the seed.
	rng := rand.New(rand.NewSource(seed))
	amps := [...]float64{0.1, 0.25, 0.45, 0.8, 1.5, 3.0}
	noise := make([]float64, inst.NumProcessors())
	for r := 0; r < restarts; r++ {
		if ctx.Err() != nil {
			return finish()
		}
		amp := amps[r%len(amps)]
		for i := range noise {
			noise[i] = amp * (rng.Float64()*2 - 1)
		}
		offer(perturbedSchedule(inst, noise))
		if best.makespan <= lb {
			return finish()
		}
	}
	return finish()
}

// perturbedSchedule builds a schedule with the balanced greedy rule under
// static per-processor priority noise: processors are served in decreasing
// remaining-jobs-plus-noise order, each receiving its full remaining demand
// until the resource runs out.
func perturbedSchedule(inst *core.Instance, noise []float64) (*core.Schedule, error) {
	b := core.NewBuilder(inst)
	m := b.NumProcessors()
	order := make([]int, 0, m)
	shares := make([]float64, m)
	sched := b.BuildGreedy(func(b *core.Builder) []float64 {
		order = order[:0]
		for i := 0; i < m; i++ {
			shares[i] = 0
			if b.Active(i) {
				order = append(order, i)
			}
		}
		sort.SliceStable(order, func(x, y int) bool {
			a, c := order[x], order[y]
			sa := float64(b.RemainingJobs(a)) + noise[a]
			sc := float64(b.RemainingJobs(c)) + noise[c]
			if sa != sc {
				return sa > sc
			}
			return a < c
		})
		avail := 1.0
		for _, i := range order {
			if avail <= numeric.Eps {
				break
			}
			give := math.Min(avail, b.DemandThisStep(i))
			shares[i] = give
			avail -= give
		}
		return shares
	})
	sched.Trim()
	return sched, nil
}
