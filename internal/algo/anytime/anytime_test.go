package anytime

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/gen"
	"crsharing/internal/progress"
)

// executed solves inst and returns the executed result, failing the test on
// any infeasibility.
func executed(t *testing.T, inst *core.Instance, sched *core.Schedule) *core.Result {
	t.Helper()
	res, err := core.Execute(inst, sched)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() {
		t.Fatal("schedule does not finish all jobs")
	}
	return res
}

// TestFeasibleAndNoWorseThanGreedy checks the anytime solver's floor on a
// spread of random instances: the result is always feasible, never worse than
// the GreedyBalance seed, and never beats the instance lower bound.
func TestFeasibleAndNoWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(5)
		inst := gen.RandomUneven(rng, m, 1, 5, 0.05, 1.0)
		gbSched, err := greedybalance.New().Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		gb := executed(t, inst, gbSched)
		sched, err := New().Schedule(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res := executed(t, inst, sched)
		if res.Makespan() > gb.Makespan() {
			t.Fatalf("trial %d: anytime makespan %d worse than greedy seed %d\n%v",
				trial, res.Makespan(), gb.Makespan(), inst)
		}
		if lb := core.LowerBounds(inst).Best(); res.Makespan() < lb {
			t.Fatalf("trial %d: makespan %d beats the lower bound %d — infeasible\n%v",
				trial, res.Makespan(), lb, inst)
		}
	}
}

// TestDeterministicAcrossRuns pins the reproducibility contract: with the
// same seed and an unexpired context, two runs return identical schedules.
func TestDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := gen.RandomUneven(rng, 4, 2, 5, 0.05, 0.95)
	a, err := New().Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps() != b.Steps() {
		t.Fatalf("two identical runs returned different lengths: %d vs %d", a.Steps(), b.Steps())
	}
	for tt := range a.Alloc {
		for i := range a.Alloc[tt] {
			if a.Alloc[tt][i] != b.Alloc[tt][i] {
				t.Fatalf("two identical runs diverge at step %d proc %d: %v vs %v",
					tt, i, a.Alloc[tt][i], b.Alloc[tt][i])
			}
		}
	}
}

// TestFirstIncumbentIsImmediate is the anytime contract on a hard instance:
// an instance whose exact search takes orders of magnitude longer must still
// yield a first incumbent from the greedy seed within the phase-1 budget —
// microseconds in practice; the assertion allows generous CI jitter.
func TestFirstIncumbentIsImmediate(t *testing.T) {
	inst := gen.GreedyWorstCase(7, 3, 1.0/(20*7*8))
	var (
		mu    sync.Mutex
		first time.Duration
	)
	start := time.Now()
	ctx := progress.WithObserver(context.Background(), func(inc progress.Incumbent) {
		mu.Lock()
		defer mu.Unlock()
		if first == 0 {
			first = time.Since(start)
		}
	})
	ctx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
	defer cancel()
	sched, err := New().ScheduleContext(ctx, inst)
	if err != nil {
		t.Fatalf("anytime under a deadline must not fail: %v", err)
	}
	executed(t, inst, sched)
	mu.Lock()
	defer mu.Unlock()
	if first == 0 {
		t.Fatal("no incumbent was ever reported")
	}
	if first > 100*time.Millisecond {
		t.Fatalf("first incumbent took %s, want well under the deadline", first)
	}
	t.Logf("first incumbent after %s", first)
}

// TestCancelledContextReturnsBestSoFar checks the best-effort semantics: a
// context that is already cancelled still returns the phase-1 greedy seed
// with a nil error, because the first candidate is built before the first
// cancellation poll.
func TestCancelledContextReturnsBestSoFar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	inst := gen.RandomUneven(rng, 3, 2, 4, 0.1, 0.9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sched, err := New().ScheduleContext(ctx, inst)
	if err != nil {
		t.Fatalf("cancelled context must still return the seed schedule: %v", err)
	}
	executed(t, inst, sched)
}

// TestCandidatesAreCounted checks the telemetry wiring: the solver accounts
// for every candidate schedule it built through progress.AddNodes, and
// reports at least the seed incumbent.
func TestCandidatesAreCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	inst := gen.RandomUneven(rng, 4, 2, 5, 0.05, 0.95)
	var ctr progress.Counters
	ctx := progress.WithCounters(context.Background(), &ctr)
	if _, err := New().ScheduleContext(ctx, inst); err != nil {
		t.Fatal(err)
	}
	if ctr.Nodes.Load() < 1 {
		t.Fatal("no candidates were counted")
	}
	if ctr.Incumbents.Load() < 1 {
		t.Fatal("no incumbents were reported")
	}
}

// TestEmptyInstance pins the trivial case.
func TestEmptyInstance(t *testing.T) {
	inst := core.NewInstance(nil, nil)
	sched, err := New().Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Steps() != 0 {
		t.Fatalf("empty instance got a %d-step schedule", sched.Steps())
	}
}
