package roundrobin

import (
	"math/rand"
	"testing"

	"crsharing/internal/algo/bruteforce"
	"crsharing/internal/core"
	"crsharing/internal/gen"
)

func mustMakespan(t *testing.T, s *Scheduler, inst *core.Instance) int {
	t.Helper()
	sched, err := s.Schedule(inst)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() {
		t.Fatalf("round robin schedule does not finish all jobs")
	}
	return res.Makespan()
}

func TestRoundRobinFigure3WorstCase(t *testing.T) {
	// On the Figure 3 family RoundRobin needs exactly 2n steps (two per
	// phase) while the optimum needs n+1.
	for _, n := range []int{5, 10, 50, 100} {
		inst := gen.Figure3(n)
		got := mustMakespan(t, New(), inst)
		if got != 2*n {
			t.Fatalf("n=%d: RoundRobin makespan = %d, want %d", n, got, 2*n)
		}
		opt := core.MustMakespan(inst, gen.Figure3OptimalSchedule(n))
		if opt != n+1 {
			t.Fatalf("n=%d: Figure 3 optimal schedule finishes in %d steps, want %d", n, opt, n+1)
		}
	}
}

func TestRoundRobinNeverExceedsFactorTwo(t *testing.T) {
	// Theorem 3 upper bound: RoundRobin ≤ 2·OPT. On small random instances
	// the brute-force oracle provides OPT.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(2)
		jobs := 1 + rng.Intn(4)
		inst := gen.Random(rng, m, jobs, 0.05, 1.0)
		rr := mustMakespan(t, New(), inst)
		opt, err := bruteforce.Makespan(inst)
		if err != nil {
			t.Fatalf("bruteforce: %v", err)
		}
		if rr > 2*opt {
			t.Fatalf("trial %d: RoundRobin %d > 2*OPT %d on\n%v", trial, rr, 2*opt, inst)
		}
	}
}

func TestRoundRobinRespectsTheoremThreePhaseBound(t *testing.T) {
	// The proof of Theorem 3 shows each phase takes exactly ⌈Σ_{i∈M_j} r_ij⌉
	// steps; the total must match the sum of phase lengths.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(4)
		jobs := 1 + rng.Intn(5)
		inst := gen.Random(rng, m, jobs, 0.05, 1.0)
		got := mustMakespan(t, New(), inst)
		want := 0
		for _, l := range PhaseLengths(inst) {
			want += l
		}
		if got != want {
			t.Fatalf("trial %d: makespan %d != sum of phase lengths %d", trial, got, want)
		}
	}
}

func TestRoundRobinFillOrders(t *testing.T) {
	// All fill orders must produce feasible finishing schedules; their phase
	// structure (and hence the makespan) is identical for unit size jobs.
	inst := gen.Random(rand.New(rand.NewSource(3)), 3, 4, 0.05, 1.0)
	base := mustMakespan(t, New(), inst)
	for _, order := range []FillOrder{LargestRemainingFirst, SmallestRemainingFirst, ProcessorOrder, EqualSplit} {
		s := &Scheduler{FillOrder: order}
		got := mustMakespan(t, s, inst)
		if got != base {
			t.Fatalf("fill order %d: makespan %d differs from %d", order, got, base)
		}
	}
}

func TestRoundRobinUnevenJobCounts(t *testing.T) {
	inst := core.NewInstance(
		[]float64{0.9, 0.9, 0.9},
		[]float64{0.5},
	)
	got := mustMakespan(t, New(), inst)
	// Phase 1: 0.9+0.5=1.4 → 2 steps; phases 2 and 3: 0.9 → 1 step each.
	if got != 4 {
		t.Fatalf("makespan = %d, want 4", got)
	}
}

func TestRoundRobinArbitrarySizes(t *testing.T) {
	// The RoundRobin phase structure extends to non-unit sizes: each phase
	// simply lasts until all of its jobs are done.
	inst := core.NewSizedInstance(
		[]core.Job{{Req: 0.5, Size: 2}, {Req: 0.5, Size: 1}},
		[]core.Job{{Req: 0.5, Size: 2}},
	)
	got := mustMakespan(t, New(), inst)
	if got < 3 {
		t.Fatalf("makespan = %d, expected at least 3 (size-2 jobs need 2 steps each)", got)
	}
}

func TestRoundRobinZeroRequirementPhase(t *testing.T) {
	inst := core.NewInstance([]float64{0, 0.5}, []float64{0, 0.5})
	got := mustMakespan(t, New(), inst)
	if got != 2 {
		t.Fatalf("makespan = %d, want 2 (zero-requirement phase takes one step)", got)
	}
}

func TestRoundRobinName(t *testing.T) {
	if New().Name() != "round-robin" {
		t.Fatalf("unexpected name %q", New().Name())
	}
}

func TestPhaseLengthsFigure3(t *testing.T) {
	inst := gen.Figure3(10)
	lengths := PhaseLengths(inst)
	if len(lengths) != 10 {
		t.Fatalf("expected 10 phases, got %d", len(lengths))
	}
	for j, l := range lengths {
		if l != 2 {
			t.Fatalf("phase %d length = %d, want 2 (requirements sum to 1+ε)", j+1, l)
		}
	}
}
