// Package roundrobin implements the RoundRobin algorithm of Section 4.2 of
// the paper. The algorithm operates in n phases (n = max_i n_i). During phase
// j it processes only the j-th job of every processor that has one, assigning
// the resource among the unfinished j-th jobs until all of them are done; the
// next phase then starts at the following time step. Theorem 3 shows the
// algorithm is a 2-approximation for unit size jobs, and that the factor 2 is
// tight (the Figure 3 construction).
package roundrobin

import (
	"math"
	"sort"

	"crsharing/internal/core"
	"crsharing/internal/numeric"
)

// Scheduler runs the RoundRobin algorithm.
type Scheduler struct {
	// FillOrder controls how the resource is distributed among the unfinished
	// jobs of the current phase. The paper allows an arbitrary assignment;
	// the default (LargestRemainingFirst) fills jobs in order of decreasing
	// remaining requirement, which keeps the number of partially processed
	// jobs per step minimal.
	FillOrder FillOrder
}

// FillOrder selects the within-phase resource distribution strategy.
type FillOrder int

const (
	// LargestRemainingFirst serves unfinished phase jobs in order of
	// decreasing remaining requirement.
	LargestRemainingFirst FillOrder = iota
	// SmallestRemainingFirst serves them in order of increasing remaining
	// requirement (finishes many small jobs early in the phase).
	SmallestRemainingFirst
	// ProcessorOrder serves them in processor index order.
	ProcessorOrder
	// EqualSplit divides the resource equally among all unfinished phase
	// jobs, capped by each job's demand (a maximally "fair" but maximally
	// non-progressive variant).
	EqualSplit
)

// New returns a RoundRobin scheduler with the default fill order.
func New() *Scheduler { return &Scheduler{FillOrder: LargestRemainingFirst} }

// Name implements algo.Scheduler.
func (s *Scheduler) Name() string { return "round-robin" }

// Schedule implements algo.Scheduler. It accepts jobs of arbitrary size: a
// phase simply lasts until the j-th job of every participating processor has
// completed.
func (s *Scheduler) Schedule(inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	b := core.NewBuilder(inst)
	n := inst.MaxJobs()
	m := inst.NumProcessors()

	for phase := 0; phase < n; phase++ {
		// The phase processes job index `phase` on every processor that has
		// it. The builder state tells us which of them are still unfinished.
		for !phaseDone(b, phase) {
			shares := make([]float64, m)
			avail := 1.0
			members := phaseMembers(b, phase)
			s.order(b, members)
			switch s.FillOrder {
			case EqualSplit:
				s.fillEqual(b, members, shares, avail)
			default:
				for _, i := range members {
					if avail <= numeric.Eps {
						break
					}
					give := math.Min(avail, b.DemandThisStep(i))
					shares[i] = give
					avail -= give
				}
			}
			b.AppendStep(shares)
		}
	}
	sched := b.Schedule()
	sched.Trim()
	return sched, nil
}

// phaseMembers returns the processors whose job `phase` is still unfinished.
func phaseMembers(b *core.Builder, phase int) []int {
	var members []int
	for i := 0; i < b.NumProcessors(); i++ {
		if b.ActiveJob(i) == phase {
			members = append(members, i)
		}
	}
	return members
}

// phaseDone reports whether every processor has progressed past job `phase`
// (or never had it).
func phaseDone(b *core.Builder, phase int) bool {
	for i := 0; i < b.NumProcessors(); i++ {
		if j := b.ActiveJob(i); j >= 0 && j <= phase {
			return false
		}
	}
	return true
}

func (s *Scheduler) order(b *core.Builder, members []int) {
	switch s.FillOrder {
	case LargestRemainingFirst:
		sort.SliceStable(members, func(a, c int) bool {
			return b.RemainingWork(members[a]) > b.RemainingWork(members[c])
		})
	case SmallestRemainingFirst:
		sort.SliceStable(members, func(a, c int) bool {
			return b.RemainingWork(members[a]) < b.RemainingWork(members[c])
		})
	case ProcessorOrder, EqualSplit:
		sort.Ints(members)
	}
}

// fillEqual repeatedly divides the available resource equally among the
// members whose demand is not yet met (water-filling), so no resource is left
// over while some member could still use it.
func (s *Scheduler) fillEqual(b *core.Builder, members []int, shares []float64, avail float64) {
	demand := make(map[int]float64, len(members))
	for _, i := range members {
		demand[i] = b.DemandThisStep(i)
	}
	remaining := append([]int(nil), members...)
	for avail > numeric.Eps && len(remaining) > 0 {
		per := avail / float64(len(remaining))
		var next []int
		for _, i := range remaining {
			need := demand[i] - shares[i]
			if need <= per+numeric.Eps {
				shares[i] += need
				avail -= need
			} else {
				shares[i] += per
				avail -= per
				next = append(next, i)
			}
		}
		if len(next) == len(remaining) {
			// Everyone is capped by `per`; the resource is exhausted.
			break
		}
		remaining = next
	}
}

// PhaseLengths returns, for each phase j (zero-based), the number of time
// steps RoundRobin spends on it, which by the proof of Theorem 3 equals
// ⌈Σ_{i ∈ M_j} r_ij⌉ for unit size jobs. It is exposed for the experiment
// harness and tests.
func PhaseLengths(inst *core.Instance) []int {
	n := inst.MaxJobs()
	lengths := make([]int, n)
	for j := 0; j < n; j++ {
		var sum numeric.KahanAdder
		for i := 0; i < inst.NumProcessors(); i++ {
			if inst.NumJobs(i) > j {
				sum.Add(inst.Job(i, j).Work())
			}
		}
		l := int(math.Ceil(sum.Sum() - numeric.Eps))
		if l < 1 {
			l = 1
		}
		lengths[j] = l
	}
	return lengths
}
