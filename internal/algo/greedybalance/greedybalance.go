// Package greedybalance implements the GreedyBalance algorithm of Section 8.3
// of the paper and, more generally, the family of balanced greedy schedulers
// analysed in Section 8. In every time step the scheduler serves the active
// jobs in priority order — processors with more remaining jobs first, ties
// broken by larger remaining resource requirement — giving each job its full
// remaining demand until the resource is exhausted (the last served job may
// be partial). The resulting schedules are non-wasting, progressive and
// balanced, hence (2 − 1/m)-approximate by Theorem 7; Theorem 8 shows the
// ratio 2 − 1/m is attained by the Figure 5 block construction.
package greedybalance

import (
	"math"
	"sort"

	"crsharing/internal/core"
	"crsharing/internal/numeric"
)

// TieBreak selects the secondary priority among processors with equally many
// remaining jobs. The paper's GreedyBalance uses LargerRemaining.
type TieBreak int

const (
	// LargerRemaining prefers the job with the larger remaining resource
	// requirement (the paper's GreedyBalance).
	LargerRemaining TieBreak = iota
	// SmallerRemaining prefers the job with the smaller remaining resource
	// requirement (finishes as many jobs as possible, the strategy of the
	// Figure 1 example).
	SmallerRemaining
	// ProcessorIndex breaks ties by processor index only.
	ProcessorIndex
)

// Scheduler is a balanced greedy scheduler.
type Scheduler struct {
	// Tie selects the tie-breaking rule among processors with equally many
	// remaining jobs; the default is LargerRemaining (the paper's rule).
	Tie TieBreak
	// BalanceFirst controls the primary key. When true (default, the paper's
	// GreedyBalance), processors with more remaining jobs are served first.
	// When false the scheduler ignores balance and uses only the tie-break
	// rule; such schedules are not balanced in general and serve as ablation
	// baselines in the experiments.
	BalanceFirst bool
}

// New returns the paper's GreedyBalance scheduler.
func New() *Scheduler { return &Scheduler{Tie: LargerRemaining, BalanceFirst: true} }

// NewWithTie returns a balanced greedy scheduler with a custom tie-break.
func NewWithTie(tie TieBreak) *Scheduler { return &Scheduler{Tie: tie, BalanceFirst: true} }

// NewUnbalanced returns the ablation variant that ignores the balance rule.
func NewUnbalanced(tie TieBreak) *Scheduler { return &Scheduler{Tie: tie, BalanceFirst: false} }

// Name implements algo.Scheduler.
func (s *Scheduler) Name() string {
	switch {
	case s.BalanceFirst && s.Tie == LargerRemaining:
		return "greedy-balance"
	case s.BalanceFirst && s.Tie == SmallerRemaining:
		return "greedy-balance-small"
	case s.BalanceFirst:
		return "greedy-balance-index"
	case s.Tie == LargerRemaining:
		return "greedy-unbalanced-large"
	case s.Tie == SmallerRemaining:
		return "greedy-unbalanced-small"
	default:
		return "greedy-unbalanced-index"
	}
}

// Schedule implements algo.Scheduler. Jobs of arbitrary size are accepted;
// the balance rule then compares remaining job counts exactly as in the unit
// case (the extension suggested in the paper's outlook, Section 9).
func (s *Scheduler) Schedule(inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	b := core.NewBuilder(inst)
	sched := b.BuildGreedy(func(b *core.Builder) []float64 {
		return s.allocateStep(b)
	})
	sched.Trim()
	return sched, nil
}

// allocateStep computes the allocation of a single time step from the
// builder's current state.
func (s *Scheduler) allocateStep(b *core.Builder) []float64 {
	m := b.NumProcessors()
	var order []int
	for i := 0; i < m; i++ {
		if b.Active(i) {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, c := order[x], order[y]
		if s.BalanceFirst && b.RemainingJobs(a) != b.RemainingJobs(c) {
			return b.RemainingJobs(a) > b.RemainingJobs(c)
		}
		ra, rc := b.RemainingWork(a), b.RemainingWork(c)
		switch s.Tie {
		case LargerRemaining:
			if !numeric.Eq(ra, rc) {
				return ra > rc
			}
		case SmallerRemaining:
			if !numeric.Eq(ra, rc) {
				return ra < rc
			}
		}
		return a < c
	})

	shares := make([]float64, m)
	avail := 1.0
	for _, i := range order {
		if avail <= numeric.Eps {
			break
		}
		give := math.Min(avail, b.DemandThisStep(i))
		shares[i] = give
		avail -= give
	}
	return shares
}

// StepPriority exposes the priority order the scheduler would use for the
// builder's current state; it is used by tests that verify the balanced
// property directly against the definition.
func (s *Scheduler) StepPriority(b *core.Builder) []int {
	m := b.NumProcessors()
	var order []int
	for i := 0; i < m; i++ {
		if b.Active(i) {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, c := order[x], order[y]
		if s.BalanceFirst && b.RemainingJobs(a) != b.RemainingJobs(c) {
			return b.RemainingJobs(a) > b.RemainingJobs(c)
		}
		if s.Tie == LargerRemaining && !numeric.Eq(b.RemainingWork(a), b.RemainingWork(c)) {
			return b.RemainingWork(a) > b.RemainingWork(c)
		}
		if s.Tie == SmallerRemaining && !numeric.Eq(b.RemainingWork(a), b.RemainingWork(c)) {
			return b.RemainingWork(a) < b.RemainingWork(c)
		}
		return a < c
	})
	return order
}
