package greedybalance

import (
	"math"
	"math/rand"
	"testing"

	"crsharing/internal/algo/bruteforce"
	"crsharing/internal/core"
	"crsharing/internal/gen"
)

func mustRun(t *testing.T, s *Scheduler, inst *core.Instance) *core.Result {
	t.Helper()
	sched, err := s.Schedule(inst)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() {
		t.Fatalf("schedule does not finish all jobs")
	}
	return res
}

func TestGreedyBalanceProducesBalancedSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(4)
		inst := gen.RandomUneven(rng, m, 1, 6, 0.05, 1.0)
		res := mustRun(t, New(), inst)
		p := core.CheckProperties(res)
		if !p.NonWasting {
			t.Fatalf("trial %d: GreedyBalance schedule must be non-wasting\n%v", trial, inst)
		}
		if !p.Progressive {
			t.Fatalf("trial %d: GreedyBalance schedule must be progressive\n%v", trial, inst)
		}
		if !p.Balanced {
			t.Fatalf("trial %d: GreedyBalance schedule must be balanced\n%v", trial, inst)
		}
	}
}

func TestGreedyBalanceWithinTheoremSevenBound(t *testing.T) {
	// Theorem 7: every non-wasting, progressive, balanced schedule is a
	// (2 − 1/m)-approximation. Verify against the brute-force optimum on
	// small random instances.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(2)
		inst := gen.Random(rng, m, 1+rng.Intn(4), 0.05, 1.0)
		res := mustRun(t, New(), inst)
		opt, err := bruteforce.Makespan(inst)
		if err != nil {
			t.Fatalf("bruteforce: %v", err)
		}
		bound := (2.0 - 1.0/float64(m)) * float64(opt)
		if float64(res.Makespan()) > bound+1e-9 {
			t.Fatalf("trial %d: GreedyBalance %d exceeds (2-1/m)·OPT = %.3f (OPT=%d)\n%v",
				trial, res.Makespan(), bound, opt, inst)
		}
	}
}

func TestGreedyBalanceFigure5Block(t *testing.T) {
	// On the Theorem 8 block construction, GreedyBalance needs 2m−1 steps per
	// block.
	for _, m := range []int{2, 3, 4} {
		eps := 1.0 / float64(10*m*(m+1))
		blocks := 4
		inst := gen.GreedyWorstCase(m, blocks, eps)
		if inst.NumJobs(0) != blocks*m {
			t.Fatalf("m=%d: construction truncated to %d jobs, want %d", m, inst.NumJobs(0), blocks*m)
		}
		res := mustRun(t, New(), inst)
		want := blocks * (2*m - 1)
		if res.Makespan() != want {
			t.Fatalf("m=%d: GreedyBalance makespan = %d, want %d (2m-1 per block)", m, res.Makespan(), want)
		}
	}
}

func TestGreedyBalanceWorstCaseRatioApproachesBound(t *testing.T) {
	// The ratio GreedyBalance/OPT on the block construction approaches
	// 2 − 1/m as the number of blocks grows. The work lower bound is within
	// O(m) of the optimum, so comparing against it suffices for large
	// instances.
	for _, m := range []int{2, 3} {
		eps := 1.0 / float64(20*m*(m+1))
		blocks := gen.MaxBlocks(m, eps)
		if blocks > 12 {
			blocks = 12
		}
		inst := gen.GreedyWorstCase(m, blocks, eps)
		res := mustRun(t, New(), inst)
		lb := core.LowerBounds(inst).Best()
		ratio := float64(res.Makespan()) / float64(lb)
		want := 2 - 1/float64(m)
		if ratio < want-0.25 {
			t.Fatalf("m=%d: ratio %.3f is far below the tight bound %.3f", m, ratio, want)
		}
		if ratio > want+0.35 {
			t.Fatalf("m=%d: ratio %.3f exceeds the tight bound %.3f by too much (lower bound too weak?)", m, ratio, want)
		}
	}
}

func TestGreedyBalanceSingleProcessor(t *testing.T) {
	inst := core.NewInstance([]float64{0.3, 0.8, 0.1})
	res := mustRun(t, New(), inst)
	if res.Makespan() != 3 {
		t.Fatalf("single processor: makespan = %d, want 3", res.Makespan())
	}
}

func TestGreedyBalanceTieBreakVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := gen.Random(rng, 3, 4, 0.05, 1.0)
	for _, s := range []*Scheduler{New(), NewWithTie(SmallerRemaining), NewWithTie(ProcessorIndex)} {
		res := mustRun(t, s, inst)
		if !core.IsBalanced(res) {
			t.Fatalf("%s: schedule must be balanced", s.Name())
		}
	}
}

func TestGreedyUnbalancedVariantViolatesBalanceSomewhere(t *testing.T) {
	// The ablation variant that ignores job counts produces unbalanced
	// schedules on instances where the short processor's jobs have larger
	// requirements.
	inst := core.NewInstance(
		[]float64{0.9},
		[]float64{0.5, 0.5, 0.5},
	)
	s := NewUnbalanced(LargerRemaining)
	sched, err := s.Schedule(inst)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if core.IsBalanced(res) {
		t.Fatalf("unbalanced variant should violate Definition 5 on this instance")
	}
}

func TestGreedyBalanceArbitrarySizes(t *testing.T) {
	// The Section 9 extension: arbitrary sizes are accepted and the schedule
	// finishes everything within the (work + chain) horizon.
	rng := rand.New(rand.NewSource(9))
	inst := gen.RandomSized(rng, 3, 4, 0.1, 1.0, 3.0)
	res := mustRun(t, New(), inst)
	lb := core.LowerBounds(inst)
	if res.Makespan() < lb.Best() {
		t.Fatalf("makespan %d below the lower bound %d: execution or bound is wrong", res.Makespan(), lb.Best())
	}
}

func TestGreedyBalanceNames(t *testing.T) {
	cases := map[string]*Scheduler{
		"greedy-balance":          New(),
		"greedy-balance-small":    NewWithTie(SmallerRemaining),
		"greedy-balance-index":    NewWithTie(ProcessorIndex),
		"greedy-unbalanced-large": NewUnbalanced(LargerRemaining),
		"greedy-unbalanced-small": NewUnbalanced(SmallerRemaining),
		"greedy-unbalanced-index": NewUnbalanced(ProcessorIndex),
	}
	for want, s := range cases {
		if got := s.Name(); got != want {
			t.Fatalf("Name() = %q, want %q", got, want)
		}
	}
}

func TestGreedyBalanceStepPriorityOrdersByRemainingJobs(t *testing.T) {
	inst := core.NewInstance(
		[]float64{0.5},
		[]float64{0.5, 0.5},
		[]float64{0.5, 0.5, 0.5},
	)
	b := core.NewBuilder(inst)
	order := New().StepPriority(b)
	want := []int{2, 1, 0}
	if len(order) != 3 {
		t.Fatalf("expected 3 active processors, got %d", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", order, want)
		}
	}
}

func TestGreedyBalanceRatioNeverBelowOne(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		inst := gen.RandomBimodal(rng, 2+rng.Intn(3), 1+rng.Intn(5), 0.4)
		res := mustRun(t, New(), inst)
		lb := core.LowerBounds(inst).Best()
		if res.Makespan() < lb {
			t.Fatalf("makespan %d below lower bound %d: impossible", res.Makespan(), lb)
		}
		if math.IsNaN(core.ApproxRatio(inst, res.Makespan())) {
			t.Fatalf("ratio must be a number")
		}
	}
}
