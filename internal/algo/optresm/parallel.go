package optresm

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"crsharing/internal/core"
	"crsharing/internal/progress"
)

// ParallelScheduler is the multi-core variant of the configuration
// enumeration. Each round fans the live configurations out to a worker pool
// in contiguous chunks; every worker enumerates the successors of its chunk
// independently, and the per-round merge (deduplication, final-configuration
// detection and domination pruning) stays serial, which keeps the algorithm
// deterministic: it visits exactly the configurations the serial scheduler
// visits, in the same order.
type ParallelScheduler struct {
	// Workers is the pool size (0 = GOMAXPROCS).
	Workers int
	// MaxConfigs overrides DefaultMaxConfigs when positive.
	MaxConfigs int
}

// NewParallel returns a parallel OptResAssignment2 scheduler with default
// limits.
func NewParallel() *ParallelScheduler { return &ParallelScheduler{} }

// Name implements algo.Scheduler.
func (s *ParallelScheduler) Name() string { return "opt-res-assignment-2-parallel" }

// IsExact marks the scheduler as exact.
func (s *ParallelScheduler) IsExact() bool { return true }

// Schedule implements algo.Scheduler.
func (s *ParallelScheduler) Schedule(inst *core.Instance) (*core.Schedule, error) {
	return s.ScheduleContext(context.Background(), inst)
}

// ScheduleContext computes an optimal schedule, polling ctx between rounds
// and between chunks so cancellation and deadlines take effect promptly.
func (s *ParallelScheduler) ScheduleContext(ctx context.Context, inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if !inst.IsUnitSize() {
		return nil, fmt.Errorf("optresm: requires unit size jobs")
	}
	m := inst.NumProcessors()
	if m == 0 || inst.TotalJobs() == 0 {
		return &core.Schedule{}, nil
	}
	if m > MaxProcessors {
		return nil, fmt.Errorf("optresm: %d processors exceeds the supported maximum of %d", m, MaxProcessors)
	}
	maxConfigs := s.MaxConfigs
	if maxConfigs <= 0 {
		maxConfigs = DefaultMaxConfigs
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	root := &config{done: make([]int, m), rem: make([]float64, m), parent: -1}
	for i := 0; i < m; i++ {
		root.rem[i] = work(inst, i, 0)
	}
	if isFinal(inst, root) {
		return &core.Schedule{}, nil
	}

	rounds := [][]*config{{root}}
	totalConfigs := 1

	for t := 0; ; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		current := rounds[t]

		expanded, err := expandRound(ctx, inst, current, workers)
		if err != nil {
			return nil, err
		}

		// Serial merge, identical to the serial scheduler: successors are
		// visited in parent order, so deduplication keeps the same
		// representatives.
		var next []*config
		seen := make(map[string]int)
		for _, nc := range expanded {
			k := nc.key()
			if _, ok := seen[k]; ok {
				continue
			}
			seen[k] = len(next)
			next = append(next, nc)
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("optresm: internal error: no successor configurations at round %d", t+1)
		}
		// Same node accounting as the serial scheduler: the merged rounds are
		// identical by construction, so the tallies agree.
		progress.AddNodes(ctx, int64(len(next)))

		for _, nc := range next {
			if isFinal(inst, nc) {
				rounds = append(rounds, next)
				return reconstruct(inst, rounds, nc), nil
			}
		}

		// Guard before the quadratic pruning sweep as well: a single round
		// whose raw successor set already exceeds the budget would otherwise
		// spend unbounded time inside the sweep before being rejected.
		if totalConfigs+len(next) > maxConfigs {
			return nil, fmt.Errorf("optresm: configuration limit of %d exceeded (instance too large for the exact algorithm)", maxConfigs)
		}
		next, err = pruneDominated(ctx, next)
		if err != nil {
			return nil, err
		}
		totalConfigs += len(next)
		if totalConfigs > maxConfigs {
			return nil, fmt.Errorf("optresm: configuration limit of %d exceeded (instance too large for the exact algorithm)", maxConfigs)
		}
		rounds = append(rounds, next)
	}
}

// Makespan returns only the optimal makespan.
func (s *ParallelScheduler) Makespan(inst *core.Instance) (int, error) {
	sched, err := s.Schedule(inst)
	if err != nil {
		return 0, err
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		return 0, err
	}
	if !res.Finished() {
		return 0, fmt.Errorf("optresm: internal error: reconstructed schedule incomplete")
	}
	return res.Makespan(), nil
}

// expandRound enumerates the successors of every configuration in the round,
// fanning contiguous chunks out to the worker pool. The returned slice is in
// parent order (successors of current[0] first, then current[1], ...), so the
// caller's merge behaves exactly like the serial round loop.
func expandRound(ctx context.Context, inst *core.Instance, current []*config, workers int) ([]*config, error) {
	if workers > len(current) {
		workers = len(current)
	}
	if workers <= 1 {
		var out []*config
		for parentIdx, c := range current {
			for _, nc := range successors(inst, c) {
				nc.parent = parentIdx
				out = append(out, nc)
			}
		}
		return out, nil
	}

	chunkSize := (len(current) + workers - 1) / workers
	type chunk struct{ lo, hi int }
	var chunks []chunk
	for lo := 0; lo < len(current); lo += chunkSize {
		hi := lo + chunkSize
		if hi > len(current) {
			hi = len(current)
		}
		chunks = append(chunks, chunk{lo, hi})
	}

	results := make([][]*config, len(chunks))
	var wg sync.WaitGroup
	for ci, ch := range chunks {
		wg.Add(1)
		go func(ci int, ch chunk) {
			defer wg.Done()
			var out []*config
			for parentIdx := ch.lo; parentIdx < ch.hi; parentIdx++ {
				if ctx.Err() != nil {
					return
				}
				for _, nc := range successors(inst, current[parentIdx]) {
					nc.parent = parentIdx
					out = append(out, nc)
				}
			}
			results[ci] = out
		}(ci, ch)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var out []*config
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}
