package optresm

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"crsharing/internal/core"
	"crsharing/internal/gen"
)

// TestParallelMatchesSerial checks that the chunked fan-out enumeration finds
// the same optimal makespan as the serial scheduler, with identical schedule
// lengths, on random instances.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(20140623))
	for trial := 0; trial < 12; trial++ {
		m := 2 + rng.Intn(2)
		jobs := 2 + rng.Intn(2)
		inst := gen.Random(rng, m, jobs, 0.05, 1.0)

		want, err := New().Makespan(inst)
		if err != nil {
			t.Fatalf("trial %d: serial: %v", trial, err)
		}
		for _, workers := range []int{1, 2, 8} {
			s := &ParallelScheduler{Workers: workers}
			sched, err := s.Schedule(inst)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			res, err := core.Execute(inst, sched)
			if err != nil {
				t.Fatalf("trial %d workers=%d: invalid schedule: %v", trial, workers, err)
			}
			if !res.Finished() {
				t.Fatalf("trial %d workers=%d: incomplete schedule", trial, workers)
			}
			if got := res.Makespan(); got != want {
				t.Fatalf("trial %d workers=%d: makespan %d, want %d\n%v", trial, workers, got, want, inst)
			}
		}
	}
}

// TestParallelRejectsUnsupported mirrors the serial domain checks.
func TestParallelRejectsUnsupported(t *testing.T) {
	reqs := make([][]float64, MaxProcessors+1)
	for i := range reqs {
		reqs[i] = []float64{0.5}
	}
	inst := core.NewInstance(reqs...)
	if _, err := NewParallel().Schedule(inst); err == nil {
		t.Fatal("expected error for too many processors")
	}
}

// TestParallelCancellation cancels the enumeration mid-run on an instance
// whose configuration space is large and requires a prompt return.
func TestParallelCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := gen.Random(rng, 8, 24, 0.05, 0.45)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// A modest configuration cap bounds the run even if the cancellation
		// loses the race against the enumeration.
		s := &ParallelScheduler{MaxConfigs: 20_000}
		_, err := s.ScheduleContext(ctx, inst)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// The enumeration may legitimately finish (or hit its configuration
		// limit) before the cancellation lands; only a hang is a failure.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Logf("finished with non-cancellation error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("parallel enumeration did not return after cancellation")
	}
}
