package optresm

import (
	"math/rand"
	"testing"

	"crsharing/internal/algo/bruteforce"
	"crsharing/internal/algo/optres2"
	"crsharing/internal/core"
	"crsharing/internal/gen"
	"crsharing/internal/partition"
)

func solveAndExecute(t *testing.T, inst *core.Instance) int {
	t.Helper()
	sched, err := New().Schedule(inst)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() {
		t.Fatalf("schedule does not finish all jobs")
	}
	return res.Makespan()
}

func TestOptResAssignment2MatchesBruteForceTwoProcessors(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		inst := gen.RandomUneven(rng, 2, 1, 4, 0.05, 1.0)
		want, err := bruteforce.Makespan(inst)
		if err != nil {
			t.Fatalf("bruteforce: %v", err)
		}
		if got := solveAndExecute(t, inst); got != want {
			t.Fatalf("trial %d: optresm %d != brute force %d\n%v", trial, got, want, inst)
		}
	}
}

func TestOptResAssignment2MatchesBruteForceThreeProcessors(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		inst := gen.RandomUneven(rng, 3, 1, 3, 0.05, 1.0)
		want, err := bruteforce.Makespan(inst)
		if err != nil {
			t.Fatalf("bruteforce: %v", err)
		}
		if got := solveAndExecute(t, inst); got != want {
			t.Fatalf("trial %d: optresm %d != brute force %d\n%v", trial, got, want, inst)
		}
	}
}

func TestOptResAssignment2MatchesDPOnLargerTwoProcessorInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		inst := gen.Random(rng, 2, 4+rng.Intn(5), 0.05, 1.0)
		want, err := optres2.New().Makespan(inst)
		if err != nil {
			t.Fatalf("optres2: %v", err)
		}
		if got := solveAndExecute(t, inst); got != want {
			t.Fatalf("trial %d: optresm %d != optres2 %d\n%v", trial, got, want, inst)
		}
	}
}

func TestOptResAssignment2FourProcessors(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		inst := gen.Random(rng, 4, 2, 0.05, 1.0)
		want, err := bruteforce.Makespan(inst)
		if err != nil {
			t.Fatalf("bruteforce: %v", err)
		}
		if got := solveAndExecute(t, inst); got != want {
			t.Fatalf("trial %d: optresm %d != brute force %d\n%v", trial, got, want, inst)
		}
	}
}

func TestOptResAssignment2Figure2Input(t *testing.T) {
	if got := solveAndExecute(t, gen.Figure2()); got != 4 {
		t.Fatalf("Figure 2 optimum = %d, want 4", got)
	}
}

func TestTheorem4PartitionGadgetYesInstance(t *testing.T) {
	// A YES Partition instance reduces to a CRSharing instance with optimal
	// makespan exactly 4.
	elems := []int64{3, 1, 2, 2} // {3,1} vs {2,2}
	p := partition.New(elems...)
	yes, err := p.Decide()
	if err != nil || !yes {
		t.Fatalf("expected YES partition instance, got %v, %v", yes, err)
	}
	inst, err := gen.PartitionGadget(elems, 0.01)
	if err != nil {
		t.Fatalf("PartitionGadget: %v", err)
	}
	if got := solveAndExecute(t, inst); got != 4 {
		t.Fatalf("YES-instance gadget optimum = %d, want 4", got)
	}
}

func TestTheorem4PartitionGadgetNoInstance(t *testing.T) {
	// A NO Partition instance reduces to a CRSharing instance with optimal
	// makespan at least 5 (and exactly 5: the schedule of Figure 4b).
	elems := []int64{2, 2, 2} // sum 6, target 3, unreachable with even elements
	p := partition.New(elems...)
	yes, err := p.Decide()
	if err != nil || yes {
		t.Fatalf("expected NO partition instance, got %v, %v", yes, err)
	}
	inst, err := gen.PartitionGadget(elems, 0.01)
	if err != nil {
		t.Fatalf("PartitionGadget: %v", err)
	}
	if got := solveAndExecute(t, inst); got != 5 {
		t.Fatalf("NO-instance gadget optimum = %d, want 5", got)
	}
}

func TestTheorem4GadgetAgreesWithPartitionDecider(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(3)
		var p *partition.Instance
		if trial%2 == 0 {
			p = partition.RandomYes(rng, n, 6)
		} else {
			p = partition.RandomNo(rng, n, 6)
		}
		yes, err := p.Decide()
		if err != nil {
			t.Fatalf("Decide: %v", err)
		}
		inst, err := gen.PartitionGadget(p.Elems, 0.4/float64(len(p.Elems)))
		if err != nil {
			t.Fatalf("PartitionGadget: %v", err)
		}
		got := solveAndExecute(t, inst)
		want := 5
		if yes {
			want = 4
		}
		if got != want {
			t.Fatalf("trial %d: gadget optimum %d, want %d (partition YES=%v, elems=%v)", trial, got, want, yes, p.Elems)
		}
	}
}

func TestOptResAssignment2RejectsUnsupportedInstances(t *testing.T) {
	sized := core.NewSizedInstance([]core.Job{{Req: 0.5, Size: 2}})
	if _, err := New().Schedule(sized); err == nil {
		t.Fatalf("expected error for non-unit sizes")
	}
	big := make([][]float64, MaxProcessors+1)
	for i := range big {
		big[i] = []float64{0.5}
	}
	if _, err := New().Schedule(core.NewInstance(big...)); err == nil {
		t.Fatalf("expected error for too many processors")
	}
}

func TestOptResAssignment2ConfigLimit(t *testing.T) {
	s := &Scheduler{MaxConfigs: 1}
	inst := gen.Random(rand.New(rand.NewSource(1)), 3, 3, 0.3, 1.0)
	if _, err := s.Schedule(inst); err == nil {
		t.Fatalf("expected configuration-limit error")
	}
}

func TestOptResAssignment2EmptyInstance(t *testing.T) {
	sched, err := New().Schedule(core.NewInstance(nil, nil))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if sched.Steps() != 0 {
		t.Fatalf("empty instance should yield an empty schedule")
	}
}

func TestOptResAssignment2Name(t *testing.T) {
	if New().Name() != "opt-res-assignment-2" || !New().IsExact() {
		t.Fatalf("unexpected identity")
	}
}
