// Package optresm implements OptResAssignment2 (Algorithm 2 of the paper):
// an exact algorithm for the CRSharing problem with unit size jobs on any
// fixed number m of processors, running in time polynomial in n for constant
// m (Theorem 6).
//
// The algorithm enumerates configurations round by round. A configuration
// records, for every processor, the number of completed jobs and the amount
// of resource already invested into its active job. Successor configurations
// are generated only for non-wasting, progressive steps: a subset of active
// jobs is completed and at most one further active job receives the leftover
// resource. Dominated configurations (Lemma 4 / the domination relation of
// Section 7) are pruned after every round, which keeps the number of live
// configurations polynomial for fixed m.
package optresm

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"crsharing/internal/core"
	"crsharing/internal/numeric"
	"crsharing/internal/progress"
)

// MaxProcessors bounds the supported processor count. Successor generation
// enumerates subsets of active processors, so the per-configuration work
// grows as 2^m; beyond this bound the algorithm is impractical and Schedule
// returns an error instead of running away.
const MaxProcessors = 12

// DefaultMaxConfigs caps the total number of configurations kept across all
// rounds, as a safety valve against pathological blow-up (the theoretical
// bound of Theorem 6 is polynomial but with a large exponent).
const DefaultMaxConfigs = 2_000_000

// Scheduler is the exact fixed-m configuration-enumeration algorithm.
type Scheduler struct {
	// MaxConfigs overrides DefaultMaxConfigs when positive.
	MaxConfigs int
}

// New returns an OptResAssignment2 scheduler with default limits.
func New() *Scheduler { return &Scheduler{} }

// Name implements algo.Scheduler.
func (s *Scheduler) Name() string { return "opt-res-assignment-2" }

// IsExact marks the scheduler as exact.
func (s *Scheduler) IsExact() bool { return true }

// config is one (extended) configuration: the state at the start of a round.
type config struct {
	done []int     // jobs completed per processor
	rem  []float64 // remaining work of the active job per processor (0 if exhausted)

	parent int       // index into the previous round's slice; -1 for the root
	alloc  []float64 // allocation of the step that produced this configuration
}

// key returns a canonical string used to deduplicate identical
// configurations. Remaining amounts are rounded to 1e-9 to collapse
// floating-point dust.
func (c *config) key() string {
	var b strings.Builder
	for i, d := range c.done {
		b.WriteString(strconv.Itoa(d))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(int64(math.Round(c.rem[i]*1e9)), 36))
		b.WriteByte('|')
	}
	return b.String()
}

// dominates reports whether configuration a is at least as advanced as b on
// every processor: strictly more jobs done, or equally many jobs done with no
// more remaining work on the active job.
func dominates(a, b *config) bool {
	for i := range a.done {
		switch {
		case a.done[i] > b.done[i]:
			// ahead on this processor
		case a.done[i] == b.done[i] && numeric.Leq(a.rem[i], b.rem[i]):
			// equally far with at least as much progress on the active job
		default:
			return false
		}
	}
	return true
}

// Schedule implements algo.Scheduler.
func (s *Scheduler) Schedule(inst *core.Instance) (*core.Schedule, error) {
	return s.ScheduleContext(context.Background(), inst)
}

// ScheduleContext is Schedule with cooperative cancellation: the round loop
// polls ctx once per round, so cancellation and deadlines take effect after
// at most one round of configuration enumeration.
func (s *Scheduler) ScheduleContext(ctx context.Context, inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if !inst.IsUnitSize() {
		return nil, fmt.Errorf("optresm: requires unit size jobs")
	}
	m := inst.NumProcessors()
	if m == 0 || inst.TotalJobs() == 0 {
		return &core.Schedule{}, nil
	}
	if m > MaxProcessors {
		return nil, fmt.Errorf("optresm: %d processors exceeds the supported maximum of %d", m, MaxProcessors)
	}
	maxConfigs := s.MaxConfigs
	if maxConfigs <= 0 {
		maxConfigs = DefaultMaxConfigs
	}

	root := &config{done: make([]int, m), rem: make([]float64, m), parent: -1}
	for i := 0; i < m; i++ {
		root.rem[i] = work(inst, i, 0)
	}
	if isFinal(inst, root) {
		return &core.Schedule{}, nil
	}

	rounds := [][]*config{{root}}
	totalConfigs := 1

	for t := 0; ; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		current := rounds[t]
		var next []*config
		seen := make(map[string]int)

		for parentIdx, c := range current {
			succ := successors(inst, c)
			for _, nc := range succ {
				nc.parent = parentIdx
				k := nc.key()
				if prev, ok := seen[k]; ok {
					// Identical configuration already generated this round;
					// keep the existing one (same state, same time).
					_ = prev
					continue
				}
				seen[k] = len(next)
				next = append(next, nc)
			}
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("optresm: internal error: no successor configurations at round %d", t+1)
		}
		// Every deduplicated configuration of the round counts as an explored
		// node for solve telemetry; the serial and parallel schedulers generate
		// identical rounds, so the tally is deterministic across both.
		progress.AddNodes(ctx, int64(len(next)))

		// Check for a final configuration before pruning: any final
		// configuration reached in this round is optimal.
		for _, nc := range next {
			if isFinal(inst, nc) {
				rounds = append(rounds, next)
				return reconstruct(inst, rounds, nc), nil
			}
		}

		next, err := pruneDominated(ctx, next)
		if err != nil {
			return nil, err
		}
		totalConfigs += len(next)
		if totalConfigs > maxConfigs {
			return nil, fmt.Errorf("optresm: configuration limit of %d exceeded (instance too large for the exact algorithm)", maxConfigs)
		}
		rounds = append(rounds, next)
	}
}

// Makespan returns only the optimal makespan.
func (s *Scheduler) Makespan(inst *core.Instance) (int, error) {
	sched, err := s.Schedule(inst)
	if err != nil {
		return 0, err
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		return 0, err
	}
	if !res.Finished() {
		return 0, fmt.Errorf("optresm: internal error: reconstructed schedule incomplete")
	}
	return res.Makespan(), nil
}

func work(inst *core.Instance, p, done int) float64 {
	if done >= inst.NumJobs(p) {
		return 0
	}
	return inst.Job(p, done).Work()
}

func isFinal(inst *core.Instance, c *config) bool {
	for i := range c.done {
		if c.done[i] < inst.NumJobs(i) {
			return false
		}
	}
	return true
}

// successors enumerates all non-wasting, progressive one-step transitions
// from configuration c.
func successors(inst *core.Instance, c *config) []*config {
	m := inst.NumProcessors()
	var active []int
	var totalDemand numeric.KahanAdder
	for i := 0; i < m; i++ {
		if c.done[i] < inst.NumJobs(i) {
			active = append(active, i)
			totalDemand.Add(c.rem[i])
		}
	}
	if len(active) == 0 {
		return nil
	}

	// Case 1: everything fits — the unique non-wasting choice finishes every
	// active job.
	if numeric.Leq(totalDemand.Sum(), 1) {
		nc := derive(inst, c, active, -1, 0)
		return []*config{nc}
	}

	// Case 2: enumerate subsets F of active processors whose jobs finish this
	// step, plus at most one processor receiving the leftover.
	var out []*config
	k := len(active)
	for mask := 0; mask < 1<<k; mask++ {
		var sum numeric.KahanAdder
		var finish []int
		for bit := 0; bit < k; bit++ {
			if mask&(1<<bit) != 0 {
				finish = append(finish, active[bit])
				sum.Add(c.rem[active[bit]])
			}
		}
		if numeric.Greater(sum.Sum(), 1) {
			continue
		}
		leftover := 1 - sum.Sum()
		if leftover <= numeric.Eps {
			if len(finish) > 0 {
				out = append(out, derive(inst, c, finish, -1, 0))
			}
			continue
		}
		// The leftover must go to exactly one unfinished active job whose
		// remaining demand strictly exceeds it (otherwise that job belongs in
		// F and the same successor arises from a different mask).
		for _, p := range active {
			if contains(finish, p) {
				continue
			}
			if numeric.Greater(c.rem[p], leftover) {
				out = append(out, derive(inst, c, finish, p, leftover))
			}
		}
	}
	return out
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// derive builds the successor configuration in which the processors in
// `finish` complete their active jobs, and processor `partial` (if >= 0)
// receives `amount` of resource without finishing. It also records the
// allocation row of the step.
func derive(inst *core.Instance, c *config, finish []int, partial int, amount float64) *config {
	m := inst.NumProcessors()
	nc := &config{
		done:  append([]int(nil), c.done...),
		rem:   append([]float64(nil), c.rem...),
		alloc: make([]float64, m),
	}
	for _, i := range finish {
		nc.alloc[i] = c.rem[i]
		nc.done[i]++
		nc.rem[i] = work(inst, i, nc.done[i])
	}
	if partial >= 0 {
		nc.alloc[partial] = amount
		nc.rem[partial] -= amount
		if nc.rem[partial] < 0 {
			nc.rem[partial] = 0
		}
	}
	return nc
}

// pruneDominated removes every configuration dominated by another one in the
// same round. When two configurations dominate each other (identical state)
// the one with the lower index is kept.
//
// Instead of the all-pairs quadratic sweep this sorts the round by a
// domination-compatible score — total jobs done descending, total remaining
// work ascending, index ascending — and sweeps once: a configuration can only
// be dominated by one placed earlier in that order (up to epsilon ties on the
// remaining-work totals, which at worst leave an occasional dominated
// configuration alive; the algorithm then merely prunes slightly less, which
// is always sound). Each candidate is tested against the kept configurations
// only, stopping at the first dominator, so rounds whose members are mostly
// dominated by a few leaders cost far fewer comparisons than n². Survivors
// are returned in their original order, which keeps the serial and the
// parallel scheduler (which share this function) deterministic and
// bit-identical to each other.
func pruneDominated(ctx context.Context, configs []*config) ([]*config, error) {
	n := len(configs)
	if n <= 1 {
		return configs, nil
	}
	sumDone := make([]int, n)
	sumRem := make([]float64, n)
	ord := make([]int, n)
	for i, c := range configs {
		ord[i] = i
		for p := range c.done {
			sumDone[i] += c.done[p]
			sumRem[i] += c.rem[p]
		}
	}
	sort.Slice(ord, func(a, b int) bool {
		x, y := ord[a], ord[b]
		if sumDone[x] != sumDone[y] {
			return sumDone[x] > sumDone[y]
		}
		if sumRem[x] != sumRem[y] {
			return sumRem[x] < sumRem[y]
		}
		return x < y
	})
	removed := make([]uint64, (n+63)/64)
	live := make([]int, 0, n)
	for pos, j := range ord {
		if pos&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		dominated := false
		for _, i := range live {
			if dominates(configs[i], configs[j]) {
				dominated = true
				break
			}
		}
		if dominated {
			removed[j/64] |= 1 << (j % 64)
		} else {
			live = append(live, j)
		}
	}
	out := configs[:0]
	for i, c := range configs {
		if removed[i/64]&(1<<(i%64)) == 0 {
			out = append(out, c)
		}
	}
	return out, nil
}

// reconstruct walks the parent chain of the final configuration and emits the
// per-step allocations.
func reconstruct(inst *core.Instance, rounds [][]*config, final *config) *core.Schedule {
	steps := len(rounds) - 1
	sched := core.NewSchedule(steps, inst.NumProcessors())
	c := final
	for t := steps - 1; t >= 0; t-- {
		copy(sched.Alloc[t], c.alloc)
		c = rounds[t][c.parent]
	}
	return sched
}
