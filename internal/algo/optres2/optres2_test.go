package optres2

import (
	"math/rand"
	"testing"

	"crsharing/internal/algo/bruteforce"
	"crsharing/internal/core"
	"crsharing/internal/gen"
)

func solveAndExecute(t *testing.T, s *Scheduler, inst *core.Instance) int {
	t.Helper()
	sched, err := s.Schedule(inst)
	if err != nil {
		t.Fatalf("%s: Schedule: %v", s.Name(), err)
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		t.Fatalf("%s: Execute: %v", s.Name(), err)
	}
	if !res.Finished() {
		t.Fatalf("%s: schedule does not finish all jobs", s.Name())
	}
	return res.Makespan()
}

func TestOptResAssignmentMatchesBruteForceOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		inst := gen.RandomUneven(rng, 2, 1, 5, 0.05, 1.0)
		want, err := bruteforce.Makespan(inst)
		if err != nil {
			t.Fatalf("bruteforce: %v", err)
		}
		got := solveAndExecute(t, New(), inst)
		if got != want {
			t.Fatalf("trial %d: DP makespan %d != brute force %d\n%v", trial, got, want, inst)
		}
		gotPQ := solveAndExecute(t, NewPQ(), inst)
		if gotPQ != want {
			t.Fatalf("trial %d: PQ variant makespan %d != brute force %d\n%v", trial, gotPQ, want, inst)
		}
	}
}

func TestOptResAssignmentFigure3Optimum(t *testing.T) {
	// The optimal makespan of the Figure 3 family is n+1 (Theorem 3's lower
	// bound construction).
	for _, n := range []int{4, 10, 40, 120} {
		inst := gen.Figure3(n)
		got := solveAndExecute(t, New(), inst)
		if got != n+1 {
			t.Fatalf("n=%d: optimal makespan = %d, want %d", n, got, n+1)
		}
	}
}

func TestOptResAssignmentMakespanOnlyAgreesWithSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		inst := gen.Random(rng, 2, 1+rng.Intn(8), 0.05, 1.0)
		viaSchedule := solveAndExecute(t, New(), inst)
		direct, err := New().Makespan(inst)
		if err != nil {
			t.Fatalf("Makespan: %v", err)
		}
		if direct != viaSchedule {
			t.Fatalf("trial %d: Makespan()=%d but executed schedule gives %d", trial, direct, viaSchedule)
		}
	}
}

func TestOptResAssignmentSchedulesAreFeasibleAndTight(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		inst := gen.RandomBimodal(rng, 2, 1+rng.Intn(6), 0.5)
		sched, err := New().Schedule(inst)
		if err != nil {
			t.Fatalf("Schedule: %v", err)
		}
		if err := sched.ValidateFeasible(); err != nil {
			t.Fatalf("trial %d: infeasible schedule: %v", trial, err)
		}
		res, err := core.Execute(inst, sched)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if !res.Finished() {
			t.Fatalf("trial %d: unfinished schedule", trial)
		}
		if lb := core.LowerBounds(inst).Best(); res.Makespan() < lb {
			t.Fatalf("trial %d: makespan %d below lower bound %d", trial, res.Makespan(), lb)
		}
	}
}

func TestOptResAssignmentRejectsWrongShape(t *testing.T) {
	three := core.NewInstance([]float64{0.5}, []float64{0.5}, []float64{0.5})
	if _, err := New().Schedule(three); err == nil {
		t.Fatalf("expected error for three processors")
	}
	sized := core.NewSizedInstance([]core.Job{{Req: 0.5, Size: 2}}, []core.Job{{Req: 0.5, Size: 1}})
	if _, err := New().Schedule(sized); err == nil {
		t.Fatalf("expected error for non-unit sizes")
	}
}

func TestOptResAssignmentEmptyAndDegenerate(t *testing.T) {
	empty := core.NewInstance(nil, nil)
	got := solveAndExecuteAllowEmpty(t, New(), empty)
	if got != 0 {
		t.Fatalf("empty instance: makespan %d, want 0", got)
	}
	oneSided := core.NewInstance([]float64{0.4, 0.6, 0.2}, nil)
	if got := solveAndExecute(t, New(), oneSided); got != 3 {
		t.Fatalf("one-sided instance: makespan %d, want 3", got)
	}
	if got := solveAndExecute(t, NewPQ(), oneSided); got != 3 {
		t.Fatalf("one-sided instance (PQ): makespan %d, want 3", got)
	}
}

func solveAndExecuteAllowEmpty(t *testing.T, s *Scheduler, inst *core.Instance) int {
	t.Helper()
	sched, err := s.Schedule(inst)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res.Makespan()
}

func TestOptResAssignmentCarryExample(t *testing.T) {
	// The hand example from the brute force tests: two processors with two
	// 0.8-requirement jobs each; optimum 4 via carrying.
	inst := core.NewInstance([]float64{0.8, 0.8}, []float64{0.8, 0.8})
	if got := solveAndExecute(t, New(), inst); got != 4 {
		t.Fatalf("makespan = %d, want 4", got)
	}
}

func TestOptResAssignmentZeroRequirements(t *testing.T) {
	inst := core.NewInstance([]float64{0, 0, 0}, []float64{1, 1})
	// Zero-requirement jobs take one step each but consume nothing, so both
	// processors run in parallel: makespan 3.
	if got := solveAndExecute(t, New(), inst); got != 3 {
		t.Fatalf("makespan = %d, want 3", got)
	}
}

func TestOptResAssignmentNames(t *testing.T) {
	if New().Name() != "opt-res-assignment" || NewPQ().Name() != "opt-res-assignment-pq" {
		t.Fatalf("unexpected names %q, %q", New().Name(), NewPQ().Name())
	}
	if !New().IsExact() {
		t.Fatalf("scheduler must report itself exact")
	}
}
