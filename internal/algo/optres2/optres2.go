// Package optres2 implements OptResAssignment (Algorithm 1 of the paper): an
// exact O(n²) dynamic program for the CRSharing problem with unit size jobs
// on exactly two processors (Theorem 5). It also provides the priority-queue
// variant discussed after Theorem 5, which explores only reachable index
// pairs and is faster on many instances.
//
// The dynamic program fills a table indexed by the pair (a, b) of jobs
// already completed on each processor. Each cell stores the earliest time t
// at which that state is reachable and, for this t, the minimum possible sum
// r of the remaining resource requirements of the two active jobs. By
// Lemma 3 these two values are sufficient to compare sub-schedules, because
// every transition of a non-wasting, progressive, nested schedule depends
// only on the sum r:
//
//   - if r ≤ 1, both active jobs are finished in one step;
//   - if r > 1, exactly one active job is finished and the leftover 1 − r_fin
//     flows into the other active job, leaving it with remaining r − 1.
package optres2

import (
	"container/heap"
	"fmt"
	"math"

	"crsharing/internal/core"
	"crsharing/internal/numeric"
)

// Scheduler is the exact two-processor dynamic program.
type Scheduler struct {
	// UsePriorityQueue selects the priority-queue variant instead of the
	// dense diagonal sweep.
	UsePriorityQueue bool
}

// New returns the dense (array-based) OptResAssignment scheduler.
func New() *Scheduler { return &Scheduler{} }

// NewPQ returns the priority-queue variant.
func NewPQ() *Scheduler { return &Scheduler{UsePriorityQueue: true} }

// Name implements algo.Scheduler.
func (s *Scheduler) Name() string {
	if s.UsePriorityQueue {
		return "opt-res-assignment-pq"
	}
	return "opt-res-assignment"
}

// IsExact marks the scheduler as exact.
func (s *Scheduler) IsExact() bool { return true }

// move encodes how a cell was reached from its predecessor.
type move uint8

const (
	moveNone  move = iota
	moveBoth       // both active jobs finished (r ≤ 1)
	moveFin1       // job on processor 1 finished, leftover into processor 2
	moveFin2       // job on processor 2 finished, leftover into processor 1
	moveOnly1      // only processor 1 active (processor 2 exhausted)
	moveOnly2      // only processor 2 active (processor 1 exhausted)
)

// cell is one DP table entry.
type cell struct {
	t       int     // earliest completion time of the prefix
	r       float64 // minimal remaining-requirement sum at that time
	reached bool
	from    move
}

// better reports whether (t, r) improves on the cell per Lemma 3's dominance:
// smaller time first, then smaller remaining sum.
func (c *cell) better(t int, r float64) bool {
	if !c.reached {
		return true
	}
	if t != c.t {
		return t < c.t
	}
	return numeric.Less(r, c.r)
}

// Schedule implements algo.Scheduler.
func (s *Scheduler) Schedule(inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if inst.NumProcessors() != 2 {
		return nil, fmt.Errorf("optres2: requires exactly 2 processors, got %d", inst.NumProcessors())
	}
	if !inst.IsUnitSize() {
		return nil, fmt.Errorf("optres2: requires unit size jobs")
	}
	moves, err := s.solve(inst)
	if err != nil {
		return nil, err
	}
	return reconstruct(inst, moves), nil
}

// Makespan returns only the optimal makespan without reconstructing a
// schedule; it is used by scaling benchmarks.
func (s *Scheduler) Makespan(inst *core.Instance) (int, error) {
	if inst.NumProcessors() != 2 {
		return 0, fmt.Errorf("optres2: requires exactly 2 processors, got %d", inst.NumProcessors())
	}
	if !inst.IsUnitSize() {
		return 0, fmt.Errorf("optres2: requires unit size jobs")
	}
	moves, err := s.solve(inst)
	if err != nil {
		return 0, err
	}
	return len(moves), nil
}

// solve returns the optimal move sequence (one move per time step).
func (s *Scheduler) solve(inst *core.Instance) ([]move, error) {
	if s.UsePriorityQueue {
		return solvePQ(inst)
	}
	return solveDense(inst)
}

// work returns the remaining-work contribution of the next unfinished job on
// processor p when a jobs are already done (0 if the processor is exhausted).
func work(inst *core.Instance, p, done int) float64 {
	if done >= inst.NumJobs(p) {
		return 0
	}
	return inst.Job(p, done).Work()
}

// solveDense is the textbook diagonal sweep over the full (n1+1)×(n2+1)
// table, matching Algorithm 1.
func solveDense(inst *core.Instance) ([]move, error) {
	n1, n2 := inst.NumJobs(0), inst.NumJobs(1)
	cells := make([][]cell, n1+1)
	for a := range cells {
		cells[a] = make([]cell, n2+1)
	}
	cells[0][0] = cell{t: 0, r: work(inst, 0, 0) + work(inst, 1, 0), reached: true, from: moveNone}

	relax := func(a, b, t int, r float64, mv move) {
		if cells[a][b].better(t, r) {
			cells[a][b] = cell{t: t, r: r, reached: true, from: mv}
		}
	}

	for diag := 0; diag <= n1+n2; diag++ {
		for a := max(0, diag-n2); a <= min(diag, n1); a++ {
			b := diag - a
			c := cells[a][b]
			if !c.reached {
				continue
			}
			expand(inst, a, b, c, relax)
		}
	}

	final := cells[n1][n2]
	if !final.reached {
		return nil, fmt.Errorf("optres2: internal error: final state unreachable")
	}
	// Walk the predecessors back to (0,0).
	return backtrack(inst, func(a, b int) (move, int) {
		return cells[a][b].from, cells[a][b].t
	}, n1, n2, final.t), nil
}

// expand generates all successor states of cell (a, b) and calls relax for
// each. It encodes the transition rules described in the package comment.
func expand(inst *core.Instance, a, b int, c cell, relax func(a, b, t int, r float64, mv move)) {
	n1, n2 := inst.NumJobs(0), inst.NumJobs(1)
	active1, active2 := a < n1, b < n2
	switch {
	case !active1 && !active2:
		// Final state: nothing to expand.
	case active1 && !active2:
		relax(a+1, b, c.t+1, work(inst, 0, a+1), moveOnly1)
	case !active1 && active2:
		relax(a, b+1, c.t+1, work(inst, 1, b+1), moveOnly2)
	default:
		if numeric.Leq(c.r, 1) {
			relax(a+1, b+1, c.t+1, work(inst, 0, a+1)+work(inst, 1, b+1), moveBoth)
		} else {
			carry := c.r - 1
			relax(a+1, b, c.t+1, work(inst, 0, a+1)+carry, moveFin1)
			relax(a, b+1, c.t+1, carry+work(inst, 1, b+1), moveFin2)
		}
	}
}

// backtrack reconstructs the move sequence from the stored predecessors.
func backtrack(inst *core.Instance, at func(a, b int) (move, int), n1, n2, makespan int) []move {
	moves := make([]move, makespan)
	a, b := n1, n2
	for a > 0 || b > 0 {
		mv, t := at(a, b)
		moves[t-1] = mv
		switch mv {
		case moveBoth:
			a, b = a-1, b-1
		case moveFin1, moveOnly1:
			a = a - 1
		case moveFin2, moveOnly2:
			b = b - 1
		default:
			// moveNone can only label the origin; reaching it here would be a
			// broken table.
			panic("optres2: broken predecessor chain")
		}
	}
	return moves
}

// pqItem is one heap entry of the priority-queue variant.
type pqItem struct {
	a, b int
	t    int
	r    float64
	from move
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	di, dj := q[i].a+q[i].b, q[j].a+q[j].b
	if di != dj {
		return di < dj
	}
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].r < q[j].r
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// solvePQ is the sparse variant: states are explored in order of their index
// sum, so a cell's first finalisation is optimal, and index pairs that are
// never reached are never touched.
func solvePQ(inst *core.Instance) ([]move, error) {
	n1, n2 := inst.NumJobs(0), inst.NumJobs(1)
	type key struct{ a, b int }
	best := make(map[key]cell)

	q := &pq{}
	heap.Init(q)
	start := cell{t: 0, r: work(inst, 0, 0) + work(inst, 1, 0), reached: true, from: moveNone}
	best[key{0, 0}] = start
	expand(inst, 0, 0, start, func(a, b, t int, r float64, mv move) {
		heap.Push(q, pqItem{a: a, b: b, t: t, r: r, from: mv})
	})

	for q.Len() > 0 {
		item := heap.Pop(q).(pqItem)
		k := key{item.a, item.b}
		if _, done := best[k]; done {
			// Items pop in order of their index sum, and within a diagonal in
			// lexicographic (t, r) order, so the first pop of a cell carries
			// its optimal value; later pops are stale.
			continue
		}
		c := cell{t: item.t, r: item.r, reached: true, from: item.from}
		best[k] = c
		if item.a == n1 && item.b == n2 {
			return backtrack(inst, func(a, b int) (move, int) {
				cc := best[key{a, b}]
				return cc.from, cc.t
			}, n1, n2, c.t), nil
		}
		expand(inst, item.a, item.b, c, func(a, b, t int, r float64, mv move) {
			heap.Push(q, pqItem{a: a, b: b, t: t, r: r, from: mv})
		})
	}
	// The start state may already be final (no jobs at all).
	if n1 == 0 && n2 == 0 {
		return nil, nil
	}
	return nil, fmt.Errorf("optres2: internal error: final state unreachable")
}

// reconstruct replays the move sequence to obtain the explicit per-step
// resource allocation.
func reconstruct(inst *core.Instance, moves []move) *core.Schedule {
	sched := core.NewSchedule(len(moves), 2)
	rem1, rem2 := work(inst, 0, 0), work(inst, 1, 0)
	a, b := 0, 0
	for t, mv := range moves {
		var r1, r2 float64
		switch mv {
		case moveBoth:
			r1, r2 = rem1, rem2
			a, b = a+1, b+1
			rem1, rem2 = work(inst, 0, a), work(inst, 1, b)
		case moveFin1:
			r1 = rem1
			r2 = 1 - rem1
			rem2 = math.Max(0, rem2-r2)
			a = a + 1
			rem1 = work(inst, 0, a)
		case moveFin2:
			r2 = rem2
			r1 = 1 - rem2
			rem1 = math.Max(0, rem1-r1)
			b = b + 1
			rem2 = work(inst, 1, b)
		case moveOnly1:
			r1 = rem1
			a = a + 1
			rem1 = work(inst, 0, a)
		case moveOnly2:
			r2 = rem2
			b = b + 1
			rem2 = work(inst, 1, b)
		}
		// Guard against floating-point drift: never exceed the capacity.
		if r1+r2 > 1 {
			excess := r1 + r2 - 1
			if r2 >= excess {
				r2 -= excess
			} else {
				r1 -= excess - r2
				r2 = 0
			}
		}
		sched.Alloc[t][0] = r1
		sched.Alloc[t][1] = r2
	}
	return sched
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
