package algo_test

import (
	"fmt"

	"crsharing/internal/algo"
	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/algo/optres2"
	"crsharing/internal/algo/roundrobin"
	"crsharing/internal/gen"
)

// ExampleEvaluate runs the paper's three main algorithms on the RoundRobin
// worst-case family (Figure 3) and reports their makespans: RoundRobin needs
// 2n steps, GreedyBalance and the exact m=2 dynamic program find the optimal
// n+1 steps.
func ExampleEvaluate() {
	inst := gen.Figure3(10)
	for _, s := range []algo.Scheduler{roundrobin.New(), greedybalance.New(), optres2.New()} {
		ev, err := algo.Evaluate(s, inst)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%s: %d\n", ev.Algorithm, ev.Makespan)
	}
	// Output:
	// round-robin: 20
	// greedy-balance: 11
	// opt-res-assignment: 11
}

// ExampleRegistry shows how the command-line tools look schedulers up by
// name.
func ExampleRegistry() {
	reg := algo.NewRegistry()
	reg.Register(func() algo.Scheduler { return greedybalance.New() })
	reg.Register(func() algo.Scheduler { return roundrobin.New() })

	s, _ := reg.New("greedy-balance")
	fmt.Println(s.Name())
	fmt.Println(reg.Names())
	// Output:
	// greedy-balance
	// [greedy-balance round-robin]
}
