// Package bruteforce provides an exhaustive-search makespan oracle for tiny
// CRSharing instances with unit size jobs. It exists purely as an independent
// cross-check for the exact algorithms (the m=2 dynamic program of package
// optres2 and the configuration enumeration of package optresm): it shares no
// code with them and performs no dominance pruning, only memoisation of
// exactly identical states, so a pruning bug in the exact algorithms cannot
// hide here.
//
// By Lemma 1 an optimal schedule exists among the non-wasting, progressive
// (and nested) schedules, so restricting the search to steps that finish a
// set of active jobs and route any leftover resource to at most one further
// active job preserves optimality.
package bruteforce

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"crsharing/internal/core"
	"crsharing/internal/numeric"
)

// MaxStates caps the number of memoised states; beyond it Solve gives up with
// an error rather than exhausting memory. Brute force is intended for
// instances with at most a handful of processors and jobs.
const MaxStates = 5_000_000

// Solver is the exhaustive makespan oracle.
type Solver struct {
	memo map[string]int
	inst *core.Instance
}

// Makespan returns the optimal makespan of the instance. Only unit size jobs
// are supported.
func Makespan(inst *core.Instance) (int, error) {
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	if !inst.IsUnitSize() {
		return 0, fmt.Errorf("bruteforce: requires unit size jobs")
	}
	s := &Solver{memo: make(map[string]int), inst: inst}
	done := make([]int, inst.NumProcessors())
	rem := make([]float64, inst.NumProcessors())
	for i := range rem {
		rem[i] = jobWork(inst, i, 0)
	}
	return s.solve(done, rem)
}

func jobWork(inst *core.Instance, p, done int) float64 {
	if done >= inst.NumJobs(p) {
		return 0
	}
	return inst.Job(p, done).Work()
}

func stateKey(done []int, rem []float64) string {
	var b strings.Builder
	for i := range done {
		b.WriteString(strconv.Itoa(done[i]))
		b.WriteByte(',')
		b.WriteString(strconv.FormatInt(int64(math.Round(rem[i]*1e9)), 36))
		b.WriteByte(';')
	}
	return b.String()
}

// solve returns the minimum number of additional steps needed from the given
// state.
func (s *Solver) solve(done []int, rem []float64) (int, error) {
	m := s.inst.NumProcessors()
	var active []int
	demand := 0.0
	for i := 0; i < m; i++ {
		if done[i] < s.inst.NumJobs(i) {
			active = append(active, i)
			demand += rem[i]
		}
	}
	if len(active) == 0 {
		return 0, nil
	}
	key := stateKey(done, rem)
	if v, ok := s.memo[key]; ok {
		return v, nil
	}
	if len(s.memo) > MaxStates {
		return 0, fmt.Errorf("bruteforce: state limit exceeded")
	}
	// Reserve the slot to guard against (impossible) cycles while recursing.
	s.memo[key] = math.MaxInt32

	best := math.MaxInt32

	tryFinish := func(finish []int, partial int, leftover float64) error {
		nd := append([]int(nil), done...)
		nr := append([]float64(nil), rem...)
		for _, i := range finish {
			nd[i]++
			nr[i] = jobWork(s.inst, i, nd[i])
		}
		if partial >= 0 {
			nr[partial] -= leftover
			if nr[partial] < 0 {
				nr[partial] = 0
			}
		}
		sub, err := s.solve(nd, nr)
		if err != nil {
			return err
		}
		if sub+1 < best {
			best = sub + 1
		}
		return nil
	}

	if numeric.Leq(demand, 1) {
		// Finishing everything active is the unique undominated move.
		if err := tryFinish(active, -1, 0); err != nil {
			return 0, err
		}
	} else {
		k := len(active)
		for mask := 0; mask < 1<<k; mask++ {
			sum := 0.0
			var finish []int
			for bit := 0; bit < k; bit++ {
				if mask&(1<<bit) != 0 {
					finish = append(finish, active[bit])
					sum += rem[active[bit]]
				}
			}
			if numeric.Greater(sum, 1) {
				continue
			}
			leftover := 1 - sum
			if leftover <= numeric.Eps {
				if len(finish) == 0 {
					continue
				}
				if err := tryFinish(finish, -1, 0); err != nil {
					return 0, err
				}
				continue
			}
			for _, p := range active {
				if inSet(finish, p) || !numeric.Greater(rem[p], leftover) {
					continue
				}
				if err := tryFinish(finish, p, leftover); err != nil {
					return 0, err
				}
			}
			// A step that finishes at least one job but deliberately wastes
			// the leftover is never better than routing the leftover to a
			// partial job, and routing is always possible when some active
			// job remains unfinished; when every active job fits in F the
			// "finish everything" move covers it. Hence no extra branch.
		}
	}

	if best == math.MaxInt32 {
		return 0, fmt.Errorf("bruteforce: no feasible move from state %s", key)
	}
	s.memo[key] = best
	return best, nil
}

func inSet(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
