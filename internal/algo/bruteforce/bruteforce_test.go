package bruteforce

import (
	"testing"

	"crsharing/internal/core"
)

func TestMakespanSingleProcessor(t *testing.T) {
	// One processor, three unit jobs: one job per step regardless of
	// requirements, so the optimum is 3.
	inst := core.NewInstance([]float64{0.2, 0.9, 0.1})
	got, err := Makespan(inst)
	if err != nil {
		t.Fatalf("Makespan: %v", err)
	}
	if got != 3 {
		t.Fatalf("makespan = %d, want 3", got)
	}
}

func TestMakespanTwoProcessorsFit(t *testing.T) {
	// Each step can finish one job of each processor: requirements pair up to
	// at most 1 per step.
	inst := core.NewInstance([]float64{0.5, 0.4}, []float64{0.5, 0.6})
	got, err := Makespan(inst)
	if err != nil {
		t.Fatalf("Makespan: %v", err)
	}
	if got != 2 {
		t.Fatalf("makespan = %d, want 2", got)
	}
}

func TestMakespanNeedsCarrying(t *testing.T) {
	// Two jobs of requirement 0.8 on each of two processors. Total work 3.2,
	// so at least 4 steps; 4 steps suffice by always finishing one job and
	// carrying the leftover.
	inst := core.NewInstance([]float64{0.8, 0.8}, []float64{0.8, 0.8})
	got, err := Makespan(inst)
	if err != nil {
		t.Fatalf("Makespan: %v", err)
	}
	if got != 4 {
		t.Fatalf("makespan = %d, want 4", got)
	}
}

func TestMakespanThreeProcessors(t *testing.T) {
	// The Figure 2 input: optimum is 4 (the nested schedule of Figure 2b).
	inst := core.NewInstance(
		[]float64{0.5, 0.5, 0.5, 0.5},
		[]float64{1.0},
		[]float64{1.0},
	)
	got, err := Makespan(inst)
	if err != nil {
		t.Fatalf("Makespan: %v", err)
	}
	if got != 4 {
		t.Fatalf("makespan = %d, want 4", got)
	}
}

func TestMakespanZeroRequirementJobs(t *testing.T) {
	// Zero-requirement jobs still occupy one step each on their processor.
	inst := core.NewInstance([]float64{0, 0, 0}, []float64{1.0})
	got, err := Makespan(inst)
	if err != nil {
		t.Fatalf("Makespan: %v", err)
	}
	if got != 3 {
		t.Fatalf("makespan = %d, want 3", got)
	}
}

func TestMakespanRejectsNonUnitSizes(t *testing.T) {
	inst := core.NewSizedInstance([]core.Job{{Req: 0.5, Size: 2}})
	if _, err := Makespan(inst); err == nil {
		t.Fatalf("expected error for non-unit job sizes")
	}
}

func TestMakespanEmptyInstance(t *testing.T) {
	inst := core.NewInstance()
	got, err := Makespan(inst)
	if err != nil {
		t.Fatalf("Makespan: %v", err)
	}
	if got != 0 {
		t.Fatalf("makespan of empty instance = %d, want 0", got)
	}
}

func TestMakespanMatchesWorkBoundOnSaturatedInstance(t *testing.T) {
	// All requirements are 1: the optimum is exactly the total number of
	// jobs, since only one job can run per step.
	inst := core.NewInstance([]float64{1, 1}, []float64{1}, []float64{1})
	got, err := Makespan(inst)
	if err != nil {
		t.Fatalf("Makespan: %v", err)
	}
	if got != 4 {
		t.Fatalf("makespan = %d, want 4", got)
	}
}
