package algo_test

import (
	"strings"
	"testing"

	"crsharing/internal/algo"
	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/algo/optres2"
	"crsharing/internal/algo/optresm"
	"crsharing/internal/algo/roundrobin"
	"crsharing/internal/core"
	"crsharing/internal/gen"
)

func newRegistry() *algo.Registry {
	r := algo.NewRegistry()
	r.Register(func() algo.Scheduler { return roundrobin.New() })
	r.Register(func() algo.Scheduler { return greedybalance.New() })
	r.Register(func() algo.Scheduler { return optres2.New() })
	r.Register(func() algo.Scheduler { return optres2.NewPQ() })
	r.Register(func() algo.Scheduler { return optresm.New() })
	return r
}

func TestRegistryLookup(t *testing.T) {
	r := newRegistry()
	names := r.Names()
	if len(names) != 5 {
		t.Fatalf("expected 5 registered schedulers, got %v", names)
	}
	s, err := r.New("greedy-balance")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Name() != "greedy-balance" {
		t.Fatalf("lookup returned %q", s.Name())
	}
	if _, err := r.New("does-not-exist"); err == nil || !strings.Contains(err.Error(), "unknown scheduler") {
		t.Fatalf("expected unknown-scheduler error, got %v", err)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate registration must panic")
		}
	}()
	r := algo.NewRegistry()
	r.Register(func() algo.Scheduler { return roundrobin.New() })
	r.Register(func() algo.Scheduler { return roundrobin.New() })
}

func TestEvaluateReportsRatioAndProperties(t *testing.T) {
	inst := gen.Figure3(20)
	ev, err := algo.Evaluate(greedybalance.New(), inst)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if ev.Algorithm != "greedy-balance" {
		t.Fatalf("algorithm name %q", ev.Algorithm)
	}
	if ev.Makespan < ev.LowerBound {
		t.Fatalf("makespan %d below lower bound %d", ev.Makespan, ev.LowerBound)
	}
	if ev.Ratio < 1 {
		t.Fatalf("ratio %v below 1", ev.Ratio)
	}
	if !ev.Properties.NonWasting || !ev.Properties.Balanced {
		t.Fatalf("greedy-balance evaluation should report non-wasting, balanced: %v", ev.Properties)
	}
}

func TestEvaluatePropagatesSchedulerErrors(t *testing.T) {
	// The 2-processor DP rejects 3-processor instances; Evaluate must wrap
	// and return that error.
	inst := core.NewInstance([]float64{0.1}, []float64{0.2}, []float64{0.3})
	if _, err := algo.Evaluate(optres2.New(), inst); err == nil {
		t.Fatalf("expected error from the m=2 algorithm on a 3-processor instance")
	}
}

func TestEvaluateDetectsUnfinishedSchedules(t *testing.T) {
	if _, err := algo.Evaluate(truncatingScheduler{}, gen.Figure3(4)); err == nil || !strings.Contains(err.Error(), "finish") {
		t.Fatalf("expected unfinished-schedule error, got %v", err)
	}
}

func TestEvaluateDetectsInfeasibleSchedules(t *testing.T) {
	if _, err := algo.Evaluate(overusingScheduler{}, gen.Figure3(4)); err == nil {
		t.Fatalf("expected infeasibility error")
	}
}

// truncatingScheduler returns an empty schedule regardless of the instance.
type truncatingScheduler struct{}

func (truncatingScheduler) Name() string { return "truncating" }
func (truncatingScheduler) Schedule(inst *core.Instance) (*core.Schedule, error) {
	return &core.Schedule{}, nil
}

// overusingScheduler assigns the full resource to every processor.
type overusingScheduler struct{}

func (overusingScheduler) Name() string { return "overusing" }
func (overusingScheduler) Schedule(inst *core.Instance) (*core.Schedule, error) {
	s := core.NewSchedule(1, inst.NumProcessors())
	for i := 0; i < inst.NumProcessors(); i++ {
		s.Alloc[0][i] = 1
	}
	return s, nil
}

func TestAllSchedulersAgreeWithExactOnFigure2(t *testing.T) {
	// Exact algorithms must return 4 on the Figure 2 instance; approximation
	// algorithms must stay within their proven factors.
	inst := gen.Figure2()
	exact, err := algo.Evaluate(optresm.New(), inst)
	if err != nil {
		t.Fatalf("optresm: %v", err)
	}
	if exact.Makespan != 4 {
		t.Fatalf("exact makespan %d, want 4", exact.Makespan)
	}
	rr, err := algo.Evaluate(roundrobin.New(), inst)
	if err != nil {
		t.Fatalf("roundrobin: %v", err)
	}
	if rr.Makespan > 2*exact.Makespan {
		t.Fatalf("RoundRobin %d exceeds 2·OPT %d", rr.Makespan, 2*exact.Makespan)
	}
	gb, err := algo.Evaluate(greedybalance.New(), inst)
	if err != nil {
		t.Fatalf("greedybalance: %v", err)
	}
	m := float64(inst.NumProcessors())
	if float64(gb.Makespan) > (2-1/m)*float64(exact.Makespan)+1e-9 {
		t.Fatalf("GreedyBalance %d exceeds (2-1/m)·OPT", gb.Makespan)
	}
}
