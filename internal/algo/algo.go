// Package algo defines the common interface implemented by every CRSharing
// scheduling algorithm in this repository, together with a registry and an
// evaluation envelope shared by the command-line tools, the experiment
// harness and the tests.
package algo

import (
	"fmt"
	"sort"

	"crsharing/internal/core"
)

// Scheduler computes a feasible schedule for a CRSharing instance.
// Implementations must return a schedule that finishes every job; they may
// return an error when the instance lies outside the algorithm's supported
// domain (for example, the m=2 dynamic program rejects instances with three
// processors).
type Scheduler interface {
	// Name returns a short stable identifier, e.g. "greedy-balance".
	Name() string
	// Schedule computes a complete feasible schedule for the instance.
	Schedule(inst *core.Instance) (*core.Schedule, error)
}

// Exact marks schedulers that always return an optimal (minimum-makespan)
// schedule for every instance they accept.
type Exact interface {
	Scheduler
	// IsExact is a marker; it always returns true.
	IsExact() bool
}

// Evaluation bundles a schedule together with the quantities the experiment
// harness reports about it.
type Evaluation struct {
	Algorithm  string
	Schedule   *core.Schedule
	Makespan   int
	LowerBound int
	Ratio      float64
	Properties core.Properties
	Wasted     float64
}

// Evaluate runs the scheduler on the instance, executes the resulting
// schedule and returns the evaluation. It fails if the scheduler errs, the
// schedule is infeasible, or it does not finish all jobs.
func Evaluate(s Scheduler, inst *core.Instance) (*Evaluation, error) {
	sched, err := s.Schedule(inst)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		return nil, fmt.Errorf("%s: produced invalid schedule: %w", s.Name(), err)
	}
	if !res.Finished() {
		return nil, fmt.Errorf("%s: schedule does not finish all jobs", s.Name())
	}
	lb := core.LowerBounds(inst).Best()
	ev := &Evaluation{
		Algorithm:  s.Name(),
		Schedule:   sched,
		Makespan:   res.Makespan(),
		LowerBound: lb,
		Properties: core.CheckProperties(res),
		Wasted:     res.Wasted(),
	}
	if lb > 0 {
		ev.Ratio = float64(ev.Makespan) / float64(lb)
	} else {
		ev.Ratio = 1
	}
	return ev, nil
}

// Registry maps algorithm names to constructors so the CLI tools can select
// schedulers by name.
type Registry struct {
	factories map[string]func() Scheduler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]func() Scheduler)}
}

// Register adds a constructor under the scheduler's name. Registering the
// same name twice panics: it is a programming error.
func (r *Registry) Register(factory func() Scheduler) {
	name := factory().Name()
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("algo: duplicate registration of %q", name))
	}
	r.factories[name] = factory
}

// New returns a fresh scheduler instance by name.
func (r *Registry) New(name string) (Scheduler, error) {
	f, ok := r.factories[name]
	if !ok {
		return nil, fmt.Errorf("algo: unknown scheduler %q (available: %v)", name, r.Names())
	}
	return f(), nil
}

// Names returns the registered scheduler names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.factories))
	for n := range r.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
