package gen

import (
	"math/rand"

	"crsharing/internal/core"
)

// Mutation operators over instances, shared by the two consumers of the
// incremental-solving layer so they stay in lockstep: the harness's "online"
// workload class replays seeded mutation chains as client traffic, and the
// engine's speculation controller pre-solves the same kinds of variants of
// hot instances into the memo cache. Every operator returns a fresh
// instance (the input is never modified) that stays inside the model's
// domain, and preserves unit sizes when the input has them.

// MutationKind names one instance mutation operator.
type MutationKind string

const (
	// MutationSwap transposes two consecutive jobs on one processor —
	// "permutation-adjacent" within a queue. (Permuting whole processors
	// would be pointless here: the canonical fingerprint already normalizes
	// processor order.)
	MutationSwap MutationKind = "swap"
	// MutationDrop removes the first job of one processor, modelling a job
	// that completed and left the online instance.
	MutationDrop MutationKind = "drop"
	// MutationAppend adds a job to the end of one processor's queue,
	// modelling an online arrival.
	MutationAppend MutationKind = "append"
	// MutationNudge perturbs one job's requirement by a small delta,
	// clamped into [0,1].
	MutationNudge MutationKind = "nudge"
)

// Mutations lists every operator, in the order Mutate cycles through them.
var Mutations = []MutationKind{MutationSwap, MutationDrop, MutationAppend, MutationNudge}

// Mutate applies one operator of the given kind to a seeded random location
// of inst and returns the mutated copy. When the kind cannot apply (a swap
// on an instance whose queues all hold fewer than two jobs, a drop that
// would empty the last non-empty queue) it falls through to MutationAppend,
// which always applies, so the result is never nil and never equals inst's
// fingerprint trivially by being inst itself.
func Mutate(rng *rand.Rand, inst *core.Instance, kind MutationKind) *core.Instance {
	out := inst.Clone()
	m := out.NumProcessors()
	if m == 0 {
		return out
	}
	switch kind {
	case MutationSwap:
		if i, ok := pickProcWith(rng, out, 2); ok {
			j := rng.Intn(len(out.Procs[i]) - 1)
			out.Procs[i][j], out.Procs[i][j+1] = out.Procs[i][j+1], out.Procs[i][j]
			return out
		}
	case MutationDrop:
		// Keep at least one job in the instance overall, so the mutated
		// instance remains a non-trivial solve.
		if inst.TotalJobs() > 1 {
			if i, ok := pickProcWith(rng, out, 1); ok {
				out.Procs[i] = append([]core.Job(nil), out.Procs[i][1:]...)
				return out
			}
		}
	case MutationNudge:
		if i, ok := pickProcWith(rng, out, 1); ok {
			j := rng.Intn(len(out.Procs[i]))
			delta := (rng.Float64()*2 - 1) * 0.08
			out.Procs[i][j].Req = clamp01(out.Procs[i][j].Req + delta)
			return out
		}
	}
	// MutationAppend, and the fallback for inapplicable kinds.
	i := rng.Intn(m)
	out.Procs[i] = append(append([]core.Job(nil), out.Procs[i]...),
		core.UnitJob(clamp01(0.05+rng.Float64()*0.9)))
	return out
}

// MutateChain returns a chain of length steps starting from base: element 0
// is base itself, and each following element applies one operator (cycling
// through Mutations, locations drawn from rng) to its predecessor. This is
// the shape of the online workload: a stream of near-duplicates, each one
// mutation away from an instance already seen.
func MutateChain(rng *rand.Rand, base *core.Instance, steps int) []*core.Instance {
	chain := make([]*core.Instance, 0, steps+1)
	chain = append(chain, base)
	cur := base
	for s := 0; s < steps; s++ {
		cur = Mutate(rng, cur, Mutations[s%len(Mutations)])
		chain = append(chain, cur)
	}
	return chain
}

// Variants enumerates deterministic single-mutation neighbors of inst for
// speculative pre-solving: every adjacent transposition in every queue,
// every drop-first, and one appended mid-requirement job per processor,
// capped at max results (0 means no cap). Unlike Mutate it takes no rng —
// the speculation controller must produce the same variant set for the same
// hot instance on every process.
func Variants(inst *core.Instance, max int) []*core.Instance {
	var out []*core.Instance
	emit := func(v *core.Instance) bool {
		out = append(out, v)
		return max > 0 && len(out) >= max
	}
	for i := 0; i < inst.NumProcessors(); i++ {
		for j := 0; j+1 < inst.NumJobs(i); j++ {
			v := inst.Clone()
			v.Procs[i][j], v.Procs[i][j+1] = v.Procs[i][j+1], v.Procs[i][j]
			if emit(v) {
				return out
			}
		}
	}
	for i := 0; i < inst.NumProcessors(); i++ {
		if inst.NumJobs(i) > 0 && inst.TotalJobs() > 1 {
			v := inst.Clone()
			v.Procs[i] = append([]core.Job(nil), v.Procs[i][1:]...)
			if emit(v) {
				return out
			}
		}
	}
	for i := 0; i < inst.NumProcessors(); i++ {
		v := inst.Clone()
		v.Procs[i] = append(append([]core.Job(nil), v.Procs[i]...), core.UnitJob(0.5))
		if emit(v) {
			return out
		}
	}
	return out
}

// pickProcWith picks a uniformly random processor with at least minJobs
// jobs; ok is false when none qualifies.
func pickProcWith(rng *rand.Rand, inst *core.Instance, minJobs int) (int, bool) {
	var eligible []int
	for i := 0; i < inst.NumProcessors(); i++ {
		if inst.NumJobs(i) >= minJobs {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return 0, false
	}
	return eligible[rng.Intn(len(eligible))], true
}
