package gen

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"crsharing/internal/core"
	"crsharing/internal/numeric"
)

func TestFigure1Shape(t *testing.T) {
	inst := Figure1()
	if inst.NumProcessors() != 3 {
		t.Fatalf("Figure 1 has 3 processors, got %d", inst.NumProcessors())
	}
	wantCounts := []int{4, 5, 3}
	for i, w := range wantCounts {
		if inst.NumJobs(i) != w {
			t.Fatalf("processor %d has %d jobs, want %d", i+1, inst.NumJobs(i), w)
		}
	}
	if !numeric.Eq(inst.Job(1, 2).Req, 0.90) {
		t.Fatalf("job (2,3) requirement = %v, want 0.90", inst.Job(1, 2).Req)
	}
	if err := inst.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFigure2Shape(t *testing.T) {
	inst := Figure2()
	if inst.NumProcessors() != 3 || inst.NumJobs(0) != 4 || inst.NumJobs(1) != 1 || inst.NumJobs(2) != 1 {
		t.Fatalf("unexpected Figure 2 shape: %v", inst)
	}
	if !numeric.Eq(inst.TotalWork(), 4) {
		t.Fatalf("Figure 2 total work = %v, want 4", inst.TotalWork())
	}
}

func TestFigure3Construction(t *testing.T) {
	n := 100
	inst := Figure3(n)
	eps := 1.0 / float64(n)
	for j := 1; j <= n; j++ {
		r1 := inst.Job(0, j-1).Req
		r2 := inst.Job(1, j-1).Req
		if !numeric.Eq(r1, float64(j)*eps) {
			t.Fatalf("r1%d = %v, want %v", j, r1, float64(j)*eps)
		}
		if !numeric.Eq(r1+r2, 1+eps) {
			t.Fatalf("pair %d sums to %v, want %v", j, r1+r2, 1+eps)
		}
	}
	// Total work is n·(1+ε) = n+1, matching the optimal makespan.
	if !numeric.Eq(inst.TotalWork(), float64(n)+1) {
		t.Fatalf("total work = %v, want %v", inst.TotalWork(), float64(n)+1)
	}
}

func TestFigure3OptimalScheduleIsOptimal(t *testing.T) {
	for _, n := range []int{3, 10, 200} {
		inst := Figure3(n)
		sched := Figure3OptimalSchedule(n)
		got := core.MustMakespan(inst, sched)
		if got != n+1 {
			t.Fatalf("n=%d: schedule finishes in %d steps, want %d", n, got, n+1)
		}
		res, err := core.Execute(inst, sched)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		// The optimal schedule wastes (almost) nothing; only the first step
		// leaves the ε-job of processor 1 untouched.
		if res.Wasted() > 1e-6 {
			t.Fatalf("n=%d: optimal schedule wastes %v", n, res.Wasted())
		}
	}
}

func TestFigure3Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Figure3(0) must panic")
		}
	}()
	Figure3(0)
}

func TestGreedyWorstCaseMatchesFigure5Values(t *testing.T) {
	// Figure 5 uses m = 3, ε = 0.01 and labels requirements in percent:
	//   p1: 99  7 1 98 13 1 98 19 1 98
	//   p2: 98  1 1 98  1 1 98  1 1 98
	//   p3: 97  1 1 92  1 1 86  1 1 80
	inst := GreedyWorstCase(3, 4, 0.01)
	want := [][]float64{
		{0.99, 0.07, 0.01, 0.98, 0.13, 0.01, 0.98, 0.19, 0.01, 0.98, 0.25, 0.01},
		{0.98, 0.01, 0.01, 0.98, 0.01, 0.01, 0.98, 0.01, 0.01, 0.98, 0.01, 0.01},
		{0.97, 0.01, 0.01, 0.92, 0.01, 0.01, 0.86, 0.01, 0.01, 0.80, 0.01, 0.01},
	}
	for i := range want {
		if inst.NumJobs(i) != len(want[i]) {
			t.Fatalf("processor %d has %d jobs, want %d", i+1, inst.NumJobs(i), len(want[i]))
		}
		for j, w := range want[i] {
			if got := inst.Job(i, j).Req; math.Abs(got-w) > 1e-9 {
				t.Fatalf("r[%d][%d] = %v, want %v", i+1, j+1, got, w)
			}
		}
	}
}

func TestGreedyWorstCaseDiagonalsSumToOne(t *testing.T) {
	// The optimal schedule exploits that the down-right diagonals
	// {(m,j), (m−1,j−1), ..., (1,j−m+1)} have total requirement exactly 1
	// for every column j ≥ m+1.
	m := 3
	inst := GreedyWorstCase(m, 5, 0.005)
	cols := inst.NumJobs(0)
	for j := m; j < cols; j++ { // zero-based column of the bottom row entry
		var sum float64
		for i := 0; i < m; i++ {
			row := m - 1 - i
			col := j - i
			sum += inst.Job(row, col).Req
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("diagonal ending at column %d sums to %v, want 1", j+1, sum)
		}
	}
}

func TestGreedyWorstCaseTruncates(t *testing.T) {
	m := 3
	eps := 1.0 / float64(10*m*(m+1)) // 1/120
	max := MaxBlocks(m, eps)
	if max < 2 {
		t.Fatalf("expected at least 2 valid blocks for eps=%v, got %d", eps, max)
	}
	inst := GreedyWorstCase(m, max+5, eps)
	if inst.NumJobs(0) != max*m {
		t.Fatalf("construction should truncate at %d blocks (%d jobs), got %d jobs", max, max*m, inst.NumJobs(0))
	}
	if err := inst.Validate(); err != nil {
		t.Fatalf("truncated construction must stay valid: %v", err)
	}
}

func TestGreedyWorstCasePanics(t *testing.T) {
	for _, f := range []func(){
		func() { GreedyWorstCase(1, 1, 0.01) },
		func() { GreedyWorstCase(3, 1, 0.5) },
		func() { GreedyWorstCase(3, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for invalid parameters")
				}
			}()
			f()
		}()
	}
}

func TestPartitionGadgetProperties(t *testing.T) {
	elems := []int64{3, 1, 2, 2}
	inst, err := PartitionGadget(elems, 0.01)
	if err != nil {
		t.Fatalf("PartitionGadget: %v", err)
	}
	if inst.NumProcessors() != len(elems) {
		t.Fatalf("gadget has %d processors, want %d", inst.NumProcessors(), len(elems))
	}
	for i := range elems {
		if inst.NumJobs(i) != 3 {
			t.Fatalf("every gadget processor has 3 jobs, got %d", inst.NumJobs(i))
		}
		if !numeric.Eq(inst.Job(i, 0).Req, inst.Job(i, 2).Req) {
			t.Fatalf("first and third job of processor %d must have equal requirements", i+1)
		}
	}
	// The first jobs together need strictly more than the full resource, so
	// no schedule finishes them all in one step (the key property of the
	// reduction).
	var sum float64
	for i := range elems {
		sum += inst.Job(i, 0).Req
	}
	if sum <= 1 {
		t.Fatalf("first-job requirements sum to %v, must exceed 1", sum)
	}
	if err := inst.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestPartitionGadgetErrors(t *testing.T) {
	if _, err := PartitionGadget(nil, 0.01); err == nil {
		t.Fatalf("empty instance must error")
	}
	if _, err := PartitionGadget([]int64{1, 2}, 0.01); err == nil {
		t.Fatalf("odd sum must error")
	}
	if _, err := PartitionGadget([]int64{2, 2}, 0.9); err == nil {
		t.Fatalf("eps >= 1/n must error")
	}
	if _, err := PartitionGadget([]int64{2, -2}, 0.1); err == nil {
		t.Fatalf("non-positive elements must error")
	}
}

func TestRandomGeneratorsShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := Random(rng, 4, 6, 0.1, 0.9)
	if inst.NumProcessors() != 4 || inst.TotalJobs() != 24 {
		t.Fatalf("unexpected Random shape")
	}
	for i := 0; i < 4; i++ {
		for _, j := range inst.Jobs(i) {
			if j.Req < 0.1-1e-12 || j.Req > 0.9+1e-12 {
				t.Fatalf("requirement %v outside [0.1, 0.9]", j.Req)
			}
		}
	}
	uneven := RandomUneven(rng, 5, 2, 7, 0.1, 1.0)
	for i := 0; i < 5; i++ {
		if n := uneven.NumJobs(i); n < 2 || n > 7 {
			t.Fatalf("uneven job count %d outside [2,7]", n)
		}
	}
	bimodal := RandomBimodal(rng, 3, 50, 0.5)
	heavy, light := 0, 0
	for i := 0; i < 3; i++ {
		for _, j := range bimodal.Jobs(i) {
			if j.Req >= 0.7 {
				heavy++
			} else {
				light++
			}
		}
	}
	if heavy == 0 || light == 0 {
		t.Fatalf("bimodal generator should produce both modes, got %d heavy / %d light", heavy, light)
	}
	sized := RandomSized(rng, 2, 3, 0.1, 0.9, 4)
	if sized.IsUnitSize() {
		t.Fatalf("RandomSized should produce non-unit sizes")
	}
	if err := sized.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRandomGeneratorsDeterministic(t *testing.T) {
	a := Random(rand.New(rand.NewSource(123)), 3, 5, 0.1, 0.9)
	b := Random(rand.New(rand.NewSource(123)), 3, 5, 0.1, 0.9)
	if !a.Equal(b) {
		t.Fatalf("same seed must reproduce the same instance")
	}
}

// TestGeneratorsByteIdenticalAcrossRuns pins the seed contract the
// end-to-end harness relies on (internal/harness derives its corpus from
// these generators): the same seed must reproduce not just Equal instances
// but byte-identical JSON, for every random family.
func TestGeneratorsByteIdenticalAcrossRuns(t *testing.T) {
	build := func(seed int64) []*core.Instance {
		rng := rand.New(rand.NewSource(seed))
		return []*core.Instance{
			Random(rng, 3, 5, 0.1, 0.9),
			RandomUneven(rng, 4, 1, 6, 0.05, 0.95),
			RandomBimodal(rng, 3, 8, 0.4),
			RandomSized(rng, 2, 4, 0.1, 0.9, 3),
		}
	}
	a, err := json.Marshal(build(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build(99))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed serialises differently across runs")
	}
	c, err := json.Marshal(build(100))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds serialise identically")
	}
	// Consuming the stream in a different order must not silently yield the
	// same instances — each generator must draw from the shared source.
	rng := rand.New(rand.NewSource(99))
	_ = RandomBimodal(rng, 3, 8, 0.4)
	reordered := Random(rng, 3, 5, 0.1, 0.9)
	first := build(99)[0]
	if reordered.Equal(first) {
		t.Fatal("generator does not consume the shared rand stream")
	}
}

// TestGeneratorsEmitValidInstances asserts every generator family the
// harness corpus draws from yields model-valid instances across many seeds
// and parameter corners, including degenerate bounds (lo == hi, single
// processor, minimum job counts).
func TestGeneratorsEmitValidInstances(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cases := []struct {
			name string
			inst *core.Instance
		}{
			{"random", Random(rng, 1+rng.Intn(8), 1+rng.Intn(8), 0, 1)},
			{"random-degenerate", Random(rng, 1, 1, 0.5, 0.5)},
			{"uneven", RandomUneven(rng, 1+rng.Intn(8), 1, 1+rng.Intn(8), 0.01, 0.99)},
			{"uneven-fixed-width", RandomUneven(rng, 3, 2, 2, 0.1, 0.9)},
			{"bimodal", RandomBimodal(rng, 1+rng.Intn(6), 1+rng.Intn(8), rng.Float64())},
			{"sized", RandomSized(rng, 1+rng.Intn(4), 1+rng.Intn(6), 0.05, 1.0, 1+3*rng.Float64())},
			{"figure3", Figure3(1 + rng.Intn(30))},
			{"greedy-worst-case", GreedyWorstCase(2+rng.Intn(3), 1+rng.Intn(3), 0.01)},
		}
		for _, tc := range cases {
			if err := tc.inst.Validate(); err != nil {
				t.Errorf("seed %d: %s instance invalid: %v", seed, tc.name, err)
			}
			if tc.inst.NumProcessors() == 0 {
				t.Errorf("seed %d: %s instance has no processors", seed, tc.name)
			}
		}
	}
}
