package gen

import (
	"math"
	"testing"

	"crsharing/internal/numeric"
)

// These tests rebuild the paper's adversarial constructions in exact rational
// arithmetic and compare them against the float64 generators, so that the
// structural identities the proofs rely on (diagonal sums of exactly one,
// first-job sums strictly above one) are verified without rounding error.

// rationalGreedyWorstCase mirrors gen.GreedyWorstCase with numeric.Rat
// arithmetic. eps is given as a rational 1/epsDen.
func rationalGreedyWorstCase(m, blocks int, epsDen int64) [][]numeric.Rat {
	eps := numeric.NewRat(1, epsDen)
	one := numeric.RatFromInt(1)
	rows := make([][]numeric.Rat, m)

	appendBlock := func(first []numeric.Rat) {
		secondTop := eps
		for _, r := range first {
			secondTop = secondTop.Add(one.Sub(r))
		}
		for i := 0; i < m; i++ {
			rows[i] = append(rows[i], first[i])
		}
		for i := 0; i < m; i++ {
			if i == 0 {
				rows[i] = append(rows[i], secondTop)
			} else {
				rows[i] = append(rows[i], eps)
			}
		}
		for col := 2; col < m; col++ {
			for i := 0; i < m; i++ {
				rows[i] = append(rows[i], eps)
			}
		}
	}

	first := make([]numeric.Rat, m)
	for i := 0; i < m; i++ {
		first[i] = one.Sub(numeric.RatFromInt(int64(i + 1)).Mul(eps))
	}
	for b := 0; b < blocks; b++ {
		appendBlock(first)
		cols := len(rows[0])
		next := make([]numeric.Rat, m)
		for i := 0; i < m-1; i++ {
			next[i] = one.Sub(numeric.RatFromInt(int64(m - 1)).Mul(eps))
		}
		diag := numeric.RatFromInt(0)
		for ip := 1; ip <= m-1; ip++ {
			diag = diag.Add(rows[m-ip-1][cols-ip])
		}
		next[m-1] = one.Sub(diag)
		first = next
	}
	return rows
}

func TestGreedyWorstCaseMatchesRationalConstruction(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		epsDen := int64(20 * m * (m + 1))
		blocks := 5
		floatInst := GreedyWorstCase(m, blocks, 1.0/float64(epsDen))
		ratRows := rationalGreedyWorstCase(m, blocks, epsDen)
		if floatInst.NumJobs(0) != blocks*m {
			t.Fatalf("m=%d: float construction truncated unexpectedly", m)
		}
		for i := 0; i < m; i++ {
			for j := 0; j < blocks*m; j++ {
				want := ratRows[i][j].Float()
				got := floatInst.Job(i, j).Req
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("m=%d r[%d][%d]: float %v vs rational %v", m, i+1, j+1, got, want)
				}
				// The construction must stay within (0, 1] exactly.
				if ratRows[i][j].Cmp(numeric.RatFromInt(0)) <= 0 || ratRows[i][j].Cmp(numeric.RatFromInt(1)) > 0 {
					t.Fatalf("m=%d r[%d][%d] = %v outside (0,1]", m, i+1, j+1, ratRows[i][j])
				}
			}
		}
	}
}

func TestGreedyWorstCaseDiagonalsAreExactlyOne(t *testing.T) {
	// The proof of Theorem 8 needs the down-right diagonals to sum to exactly
	// one; verify this in exact arithmetic where floats could hide an error.
	m := 3
	blocks := 6
	epsDen := int64(200)
	rows := rationalGreedyWorstCase(m, blocks, epsDen)
	one := numeric.RatFromInt(1)
	cols := blocks * m
	for j := m; j < cols; j++ {
		sum := numeric.RatFromInt(0)
		for i := 0; i < m; i++ {
			sum = sum.Add(rows[m-1-i][j-i])
		}
		if sum.Cmp(one) != 0 {
			t.Fatalf("diagonal ending at column %d sums to %v, want exactly 1", j+1, sum)
		}
	}
}

func TestPartitionGadgetRationalProperties(t *testing.T) {
	// Rebuild the Theorem 4 gadget with rational arithmetic: ã_i = a_i/(A+δ)
	// with δ = n·ε, ε = 1/epsDen. The reduction's two load-bearing facts are
	// checked exactly:
	//   (1) Σ ã_i = 2A/(A+δ) > 1, so the first jobs cannot all finish in one
	//       step, and
	//   (2) for any subset S with Σ_{i∈S} a_i ≥ A+1 we have
	//       Σ_{i∈S} ã_i > 1, the inequality used for NO-instances.
	elems := []int64{3, 1, 2, 2}
	n := int64(len(elems))
	epsDen := int64(100)
	var total int64
	for _, a := range elems {
		total += a
	}
	a := numeric.NewRat(total, 2)
	delta := numeric.NewRat(n, epsDen)
	den := a.Add(delta)

	sumAll := numeric.RatFromInt(0)
	for _, ai := range elems {
		sumAll = sumAll.Add(numeric.RatFromInt(ai).Div(den))
	}
	if sumAll.Cmp(numeric.RatFromInt(1)) <= 0 {
		t.Fatalf("Σ ã_i = %v must exceed 1", sumAll)
	}

	// Subset {3, 2} has weight 5 = A+1: its scaled sum must exceed 1.
	subset := numeric.RatFromInt(3).Add(numeric.RatFromInt(2)).Div(den)
	if subset.Cmp(numeric.RatFromInt(1)) <= 0 {
		t.Fatalf("subset of weight A+1 maps to %v, must exceed 1", subset)
	}
	// Subset {3, 1} has weight 4 = A: its scaled sum must be at most 1 (this
	// is what makes YES-instances schedulable in 4 steps).
	half := numeric.RatFromInt(3).Add(numeric.RatFromInt(1)).Div(den)
	if half.Cmp(numeric.RatFromInt(1)) > 0 {
		t.Fatalf("subset of weight A maps to %v, must be at most 1", half)
	}

	// And the float generator agrees with the rational values.
	inst, err := PartitionGadget(elems, 1.0/float64(epsDen))
	if err != nil {
		t.Fatalf("PartitionGadget: %v", err)
	}
	for i, ai := range elems {
		want := numeric.RatFromInt(ai).Div(den).Float()
		if math.Abs(inst.Job(i, 0).Req-want) > 1e-12 {
			t.Fatalf("ã_%d: float %v vs rational %v", i+1, inst.Job(i, 0).Req, want)
		}
	}
}

func TestFigure3RationalPairSums(t *testing.T) {
	// Every pair (r_1j, r_2j) of the Figure 3 construction sums to exactly
	// 1 + 1/n; in rationals: j/n + (n+1-j)/n = (n+1)/n.
	n := int64(100)
	expect := numeric.NewRat(n+1, n)
	for j := int64(1); j <= n; j++ {
		sum := numeric.NewRat(j, n).Add(numeric.NewRat(n+1-j, n))
		if sum.Cmp(expect) != 0 {
			t.Fatalf("pair %d sums to %v, want %v", j, sum, expect)
		}
	}
	// The diagonal pairing used by the optimal schedule sums to exactly 1:
	// r_1,j + r_2,j+1 = j/n + (n-j)/n = 1.
	one := numeric.RatFromInt(1)
	for j := int64(1); j < n; j++ {
		sum := numeric.NewRat(j, n).Add(numeric.NewRat(n-j, n))
		if sum.Cmp(one) != 0 {
			t.Fatalf("diagonal pair %d sums to %v, want 1", j, sum)
		}
	}
}
