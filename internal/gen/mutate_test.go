package gen

import (
	"math/rand"
	"testing"

	"crsharing/internal/core"
)

// TestMutatePreservesValidityAndInput: every operator over random instances
// yields a valid in-domain instance, never touches the input, and never
// returns the input's exact fingerprint by aliasing it.
func TestMutatePreservesValidityAndInput(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		inst := RandomUneven(rng, 1+rng.Intn(4), 0, 4, 0.05, 0.95)
		before := inst.Fingerprint()
		for _, kind := range Mutations {
			out := Mutate(rng, inst, kind)
			if out == inst {
				t.Fatalf("%s returned the input instance", kind)
			}
			if err := out.Validate(); err != nil {
				t.Fatalf("%s produced an invalid instance: %v\n%v", kind, err, out)
			}
			if inst.Fingerprint() != before {
				t.Fatalf("%s mutated its input", kind)
			}
		}
	}
}

// TestMutateInapplicableFallsThroughToAppend: kinds that cannot apply (swap
// with single-job queues, drop that would empty the instance) must still
// mutate — via the append fallback — rather than silently return a clone.
func TestMutateInapplicableFallsThroughToAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	single := core.NewInstance([]float64{0.5}) // one processor, one job
	for _, kind := range []MutationKind{MutationSwap, MutationDrop} {
		out := Mutate(rng, single, kind)
		if out.TotalJobs() != 2 {
			t.Fatalf("%s fallback did not append: %d jobs", kind, out.TotalJobs())
		}
	}
}

// TestMutateChainShape: the chain starts at base and advances one mutation
// per element, with every element valid.
func TestMutateChainShape(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	base := RandomUneven(rng, 3, 1, 3, 0.1, 0.9)
	chain := MutateChain(rng, base, 8)
	if len(chain) != 9 {
		t.Fatalf("chain length %d, want 9", len(chain))
	}
	if chain[0] != base {
		t.Fatal("chain does not start at base")
	}
	for s, inst := range chain {
		if err := inst.Validate(); err != nil {
			t.Fatalf("chain element %d invalid: %v", s, err)
		}
	}
}

// TestVariantsDeterministicAndDistinct: the speculation controller's variant
// enumeration is rng-free, so two calls agree fingerprint for fingerprint;
// each variant is valid and differs from the base.
func TestVariantsDeterministicAndDistinct(t *testing.T) {
	base := core.NewInstance(
		[]float64{0.3, 0.7, 0.5},
		[]float64{0.2},
	)
	a := Variants(base, 0)
	b := Variants(base, 0)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("variant counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Fingerprint() != b[i].Fingerprint() {
			t.Fatalf("variant %d differs between identical calls", i)
		}
		if err := a[i].Validate(); err != nil {
			t.Fatalf("variant %d invalid: %v", i, err)
		}
		if a[i].Fingerprint() == base.Fingerprint() {
			t.Fatalf("variant %d equals the base instance", i)
		}
	}
	if capped := Variants(base, 2); len(capped) != 2 {
		t.Fatalf("cap ignored: %d variants", len(capped))
	}
}
