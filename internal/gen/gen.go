// Package gen constructs CRSharing problem instances: the worked examples and
// worst-case families from the paper (Figures 1-5, the Theorem 4 reduction
// gadget, the Theorem 8 block construction) as well as seeded random
// instances used by the tests, the experiment harness and the benchmarks.
package gen

import (
	"fmt"
	"math/rand"

	"crsharing/internal/core"
)

// Figure1 returns the three-processor example instance of Figure 1 of the
// paper (requirements given there in percent as node labels):
//
//	p1: 20 10 10 10
//	p2: 50 55 90 55 10
//	p3: 50 40 95
func Figure1() *core.Instance {
	return core.NewInstance(
		[]float64{0.20, 0.10, 0.10, 0.10},
		[]float64{0.50, 0.55, 0.90, 0.55, 0.10},
		[]float64{0.50, 0.40, 0.95},
	)
}

// Figure2 returns the input of Figure 2a: one processor with four jobs of
// requirement 1/2 and two processors with a single full-requirement job. The
// figure uses it to contrast nested and unnested schedules.
func Figure2() *core.Instance {
	return core.NewInstance(
		[]float64{0.50, 0.50, 0.50, 0.50},
		[]float64{1.00},
		[]float64{1.00},
	)
}

// Figure3 returns the two-processor worst-case family for RoundRobin used in
// the proof of Theorem 3, parameterised by n: with ε = 1/n the first
// processor's j-th job has requirement j·ε and the second processor's j-th
// job has requirement (1+ε) − j·ε. RoundRobin needs 2n steps on it while the
// optimum needs n+1, so the ratio tends to 2.
func Figure3(n int) *core.Instance {
	if n < 1 {
		panic("gen: Figure3 requires n >= 1")
	}
	eps := 1.0 / float64(n)
	r1 := make([]float64, n)
	r2 := make([]float64, n)
	for j := 1; j <= n; j++ {
		r1[j-1] = float64(j) * eps
		r2[j-1] = (1 + eps) - r1[j-1]
	}
	// The last job of processor 1 has requirement exactly 1 and the last job
	// of processor 2 requirement exactly ε; clamp float drift into [0,1].
	for j := range r1 {
		r1[j] = clamp01(r1[j])
		r2[j] = clamp01(r2[j])
	}
	return core.NewInstance(r1, r2)
}

// Figure3OptimalSchedule returns the schedule from Figure 3a that finishes
// the Figure3(n) instance in n+1 steps: the first step runs processor 2's
// full-requirement first job alone, and every following step t pairs
// processor 2's job t with processor 1's job t−1, whose requirements sum to
// exactly one, so no resource is ever wasted. It exists so tests can verify
// the upper bound of the construction without running an exact algorithm for
// large n.
func Figure3OptimalSchedule(n int) *core.Schedule {
	inst := Figure3(n)
	// Greedy with processor 2 prioritised: processor 2's jobs are decreasing
	// (1, 1−ε, ..., ε) and pair with processor 1's increasing jobs one step
	// later so that every step's demand sums to exactly one.
	b := core.NewBuilder(inst)
	return b.BuildGreedy(func(b *core.Builder) []float64 {
		shares := make([]float64, 2)
		avail := 1.0
		d2 := b.DemandThisStep(1)
		if d2 > avail {
			d2 = avail
		}
		shares[1] = d2
		avail -= d2
		d1 := b.DemandThisStep(0)
		if d1 > avail {
			d1 = avail
		}
		shares[0] = d1
		return shares
	})
}

// GreedyWorstCase returns the Theorem 8 / Figure 5 block construction on m
// processors with the given number of blocks and perturbation ε. Each block
// is an m×m group of jobs; GreedyBalance spends 2m−1 steps per block whereas
// an optimal schedule needs only m steps per block (asymptotically), so the
// approximation ratio of GreedyBalance tends to 2 − 1/m.
//
// Note on the construction: the journal text defines the second column of a
// block as r_{1,j+1} = 1 − Σ_i (1 − r_ij) + ε, but the worked example of
// Figure 5 (m = 3, ε = 0.01, values 7, 13, 19, ...) matches
// r_{1,j+1} = Σ_i (1 − r_ij) + ε, which is also what the diagonal-sum
// argument of the proof requires. This generator therefore implements the
// latter and the tests verify the Figure 5 values exactly.
//
// If blocks is larger than the construction supports for the chosen ε (a
// requirement would become negative), the construction is truncated at the
// last valid block, mirroring the paper's stopping rule. Use MaxBlocks to
// query the limit.
func GreedyWorstCase(m, blocks int, eps float64) *core.Instance {
	if m < 2 {
		panic("gen: GreedyWorstCase requires m >= 2")
	}
	if eps <= 0 || eps >= 1.0/float64(m*(m+1)) {
		// The construction needs i·ε < 1 in the first column and room for the
		// growing second-column entries; this conservative bound keeps every
		// block of the first few valid.
		panic("gen: GreedyWorstCase requires 0 < eps < 1/(m(m+1))")
	}
	rows := make([][]float64, m)
	for i := range rows {
		rows[i] = []float64{}
	}

	appendBlock := func(first []float64) bool {
		// first is the block's first column (length m); returns false if any
		// entry of the block would be negative (construction must stop).
		secondTop := eps
		for _, r := range first {
			secondTop += 1 - r
		}
		if secondTop > 1 || secondTop < 0 {
			return false
		}
		for _, r := range first {
			if r < 0 || r > 1 {
				return false
			}
		}
		for i := 0; i < m; i++ {
			rows[i] = append(rows[i], first[i])
		}
		for i := 0; i < m; i++ {
			if i == 0 {
				rows[i] = append(rows[i], secondTop)
			} else {
				rows[i] = append(rows[i], eps)
			}
		}
		for col := 2; col < m; col++ {
			for i := 0; i < m; i++ {
				rows[i] = append(rows[i], eps)
			}
		}
		return true
	}

	// First block's first column: r_i1 = 1 − i·ε.
	first := make([]float64, m)
	for i := 0; i < m; i++ {
		first[i] = 1 - float64(i+1)*eps
	}
	for b := 0; b < blocks; b++ {
		if !appendBlock(first) {
			break
		}
		// Next block's first column: rows 1..m−1 get 1 − (m−1)ε; row m gets
		// 1 − Σ_{i'=1}^{m−1} r_{m−i', j−i'} where j is the new first column,
		// i.e. one minus the sum of the up-right diagonal through the block
		// just appended.
		cols := len(rows[0])
		next := make([]float64, m)
		for i := 0; i < m-1; i++ {
			next[i] = 1 - float64(m-1)*eps
		}
		var diag float64
		for ip := 1; ip <= m-1; ip++ {
			row := m - ip - 1 // zero-based row index of r_{m-i', ...}
			col := cols - ip  // zero-based column index of column j−i'
			diag += rows[row][col]
		}
		next[m-1] = 1 - diag
		first = next
	}
	return core.NewInstance(rows...)
}

// MaxBlocks returns the number of complete blocks the GreedyWorstCase
// construction supports for the given m and ε before a requirement would
// leave [0, 1].
func MaxBlocks(m int, eps float64) int {
	blocks := 0
	for b := 1; ; b++ {
		inst := GreedyWorstCase(m, b, eps)
		if inst.NumJobs(0) < b*m {
			return blocks
		}
		blocks = b
		if b > 1_000_000 {
			return blocks
		}
	}
}

// PartitionGadget returns the CRSharing instance of the Theorem 4 reduction
// for the Partition instance a_1, ..., a_n with Σ a_i = 2A. Every processor i
// carries three unit size jobs with requirements ã_i, ε̃, ã_i where
// ã_i = a_i/(A+δ), ε̃ = ε/(A+δ) and δ = n·ε. The resulting instance has an
// optimal makespan of 4 if and only if the Partition instance is a
// YES-instance; otherwise the optimum is 5.
func PartitionGadget(elems []int64, eps float64) (*core.Instance, error) {
	n := len(elems)
	if n == 0 {
		return nil, fmt.Errorf("gen: empty Partition instance")
	}
	var total int64
	for _, a := range elems {
		if a <= 0 {
			return nil, fmt.Errorf("gen: Partition elements must be positive, got %d", a)
		}
		total += a
	}
	if total%2 != 0 {
		return nil, fmt.Errorf("gen: Partition element sum %d is odd; the reduction requires Σ a_i = 2A", total)
	}
	if eps <= 0 || eps >= 1.0/float64(n) {
		return nil, fmt.Errorf("gen: reduction requires ε in (0, 1/n)")
	}
	for _, a := range elems {
		if a > total/2 {
			return nil, fmt.Errorf("gen: element %d exceeds A=%d; the reduction requires a_i ≤ A so that ã_i ≤ 1 (instances with a_i > A are trivially NO)", a, total/2)
		}
	}
	a := float64(total) / 2
	delta := float64(n) * eps
	den := a + delta
	rows := make([][]float64, n)
	for i, ai := range elems {
		at := float64(ai) / den
		et := eps / den
		rows[i] = []float64{at, et, at}
	}
	return core.NewInstance(rows...), nil
}

// Random draws a unit-size instance with m processors, jobsPerProc jobs each,
// and requirements uniform in [lo, hi]. The generator is deterministic for a
// given seed.
func Random(rng *rand.Rand, m, jobsPerProc int, lo, hi float64) *core.Instance {
	rows := make([][]float64, m)
	for i := range rows {
		rows[i] = make([]float64, jobsPerProc)
		for j := range rows[i] {
			rows[i][j] = clamp01(lo + rng.Float64()*(hi-lo))
		}
	}
	return core.NewInstance(rows...)
}

// RandomUneven draws a unit-size instance in which processor i has a job
// count drawn uniformly from [minJobs, maxJobs] and requirements uniform in
// [lo, hi]. It exercises the unbalanced-length situations that the balanced
// schedules of Section 8 must cope with.
func RandomUneven(rng *rand.Rand, m, minJobs, maxJobs int, lo, hi float64) *core.Instance {
	rows := make([][]float64, m)
	for i := range rows {
		n := minJobs
		if maxJobs > minJobs {
			n += rng.Intn(maxJobs - minJobs + 1)
		}
		rows[i] = make([]float64, n)
		for j := range rows[i] {
			rows[i][j] = clamp01(lo + rng.Float64()*(hi-lo))
		}
	}
	return core.NewInstance(rows...)
}

// RandomBimodal draws requirements from a bimodal mixture: with probability
// heavyProb a "heavy" requirement uniform in [0.7, 1.0], otherwise a "light"
// one uniform in [0.01, 0.15]. Such mixtures model the I/O-intensive versus
// compute-dominated phases of the paper's motivating workloads and are the
// regime in which bandwidth scheduling decisions matter most.
func RandomBimodal(rng *rand.Rand, m, jobsPerProc int, heavyProb float64) *core.Instance {
	rows := make([][]float64, m)
	for i := range rows {
		rows[i] = make([]float64, jobsPerProc)
		for j := range rows[i] {
			if rng.Float64() < heavyProb {
				rows[i][j] = 0.7 + rng.Float64()*0.3
			} else {
				rows[i][j] = 0.01 + rng.Float64()*0.14
			}
		}
	}
	return core.NewInstance(rows...)
}

// RandomSized draws an instance with arbitrary job sizes: requirements
// uniform in [lo, hi] and sizes uniform in [1, maxSize]. It feeds the
// general-size extension experiments (the paper's Section 9 outlook).
func RandomSized(rng *rand.Rand, m, jobsPerProc int, lo, hi, maxSize float64) *core.Instance {
	procs := make([][]core.Job, m)
	for i := range procs {
		procs[i] = make([]core.Job, jobsPerProc)
		for j := range procs[i] {
			procs[i][j] = core.Job{
				Req:  clamp01(lo + rng.Float64()*(hi-lo)),
				Size: 1 + rng.Float64()*(maxSize-1),
			}
		}
	}
	return core.NewSizedInstance(procs...)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
