// Package trace generates synthetic workload traces for the many-core
// simulator and converts between the simulator's task/phase representation
// and the CRSharing model of package core.
//
// The paper motivates its model with I/O-intensive scientific computing on
// many-core machines and with virtual machines sharing a host resource, but
// it evaluates neither on real traces (it is a theory paper). This package
// substitutes seeded synthetic traces whose phase structure matches those
// descriptions: alternating I/O and compute phases for scientific jobs,
// bursty mixed phases for VM-style consolidation. Only the distribution of
// per-phase bandwidth requirements matters for the scheduling behaviour under
// study, so the substitution preserves the experiments' meaning.
package trace

import (
	"fmt"
	"math/rand"

	"crsharing/internal/core"
	"crsharing/internal/manycore"
)

// ScientificConfig parameterises the scientific-computing trace generator.
type ScientificConfig struct {
	// Tasks is the number of tasks to generate.
	Tasks int
	// PhasesPerTask is the number of phases per task (alternating I/O and
	// compute, starting with I/O).
	PhasesPerTask int
	// IOBandwidthLo/Hi bound the bandwidth requirement of I/O phases.
	IOBandwidthLo, IOBandwidthHi float64
	// ComputeBandwidthHi bounds the (small) bandwidth requirement of compute
	// phases; the lower bound is zero.
	ComputeBandwidthHi float64
	// VolumeLo/Hi bound per-phase volumes (ticks at full speed).
	VolumeLo, VolumeHi float64
}

// DefaultScientificConfig returns the configuration used by the experiments:
// bandwidth-hungry scan phases alternating with light compute phases.
func DefaultScientificConfig(tasks int) ScientificConfig {
	return ScientificConfig{
		Tasks:              tasks,
		PhasesPerTask:      6,
		IOBandwidthLo:      0.35,
		IOBandwidthHi:      0.95,
		ComputeBandwidthHi: 0.08,
		VolumeLo:           1,
		VolumeHi:           4,
	}
}

// Validate checks the configuration.
func (c ScientificConfig) Validate() error {
	if c.Tasks < 1 || c.PhasesPerTask < 1 {
		return fmt.Errorf("trace: need at least one task and one phase")
	}
	if c.IOBandwidthLo < 0 || c.IOBandwidthHi > 1 || c.IOBandwidthLo > c.IOBandwidthHi {
		return fmt.Errorf("trace: invalid I/O bandwidth range [%v, %v]", c.IOBandwidthLo, c.IOBandwidthHi)
	}
	if c.ComputeBandwidthHi < 0 || c.ComputeBandwidthHi > 1 {
		return fmt.Errorf("trace: invalid compute bandwidth bound %v", c.ComputeBandwidthHi)
	}
	if c.VolumeLo <= 0 || c.VolumeLo > c.VolumeHi {
		return fmt.Errorf("trace: invalid volume range [%v, %v]", c.VolumeLo, c.VolumeHi)
	}
	return nil
}

// Scientific generates tasks that alternate bandwidth-hungry I/O phases
// (scan, checkpoint, input staging) with compute phases, the structure of the
// I/O-intensive scientific workloads the paper's introduction describes.
func Scientific(rng *rand.Rand, cfg ScientificConfig) ([]*manycore.Task, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tasks := make([]*manycore.Task, cfg.Tasks)
	for i := range tasks {
		phases := make([]manycore.Phase, cfg.PhasesPerTask)
		for p := range phases {
			vol := cfg.VolumeLo + rng.Float64()*(cfg.VolumeHi-cfg.VolumeLo)
			if p%2 == 0 {
				phases[p] = manycore.Phase{
					Kind:      manycore.PhaseIO,
					Bandwidth: cfg.IOBandwidthLo + rng.Float64()*(cfg.IOBandwidthHi-cfg.IOBandwidthLo),
					Volume:    vol,
				}
			} else {
				phases[p] = manycore.Phase{
					Kind:      manycore.PhaseCompute,
					Bandwidth: rng.Float64() * cfg.ComputeBandwidthHi,
					Volume:    vol,
				}
			}
		}
		tasks[i] = manycore.NewTask(fmt.Sprintf("sci-%03d", i), phases...)
	}
	return tasks, nil
}

// VMConfig parameterises the virtual-machine consolidation trace generator.
type VMConfig struct {
	// VMs is the number of virtual machines (tasks).
	VMs int
	// PhasesPerVM is the number of phases per VM.
	PhasesPerVM int
	// BurstProbability is the probability that a phase is a bandwidth burst.
	BurstProbability float64
	// BurstLo/Hi bound burst-phase bandwidth requirements.
	BurstLo, BurstHi float64
	// BackgroundHi bounds background-phase bandwidth requirements.
	BackgroundHi float64
	// VolumeLo/Hi bound per-phase volumes.
	VolumeLo, VolumeHi float64
}

// DefaultVMConfig returns the configuration used by the experiments.
func DefaultVMConfig(vms int) VMConfig {
	return VMConfig{
		VMs:              vms,
		PhasesPerVM:      8,
		BurstProbability: 0.3,
		BurstLo:          0.5,
		BurstHi:          1.0,
		BackgroundHi:     0.2,
		VolumeLo:         0.5,
		VolumeHi:         3,
	}
}

// Validate checks the configuration.
func (c VMConfig) Validate() error {
	if c.VMs < 1 || c.PhasesPerVM < 1 {
		return fmt.Errorf("trace: need at least one VM and one phase")
	}
	if c.BurstProbability < 0 || c.BurstProbability > 1 {
		return fmt.Errorf("trace: burst probability %v outside [0,1]", c.BurstProbability)
	}
	if c.BurstLo < 0 || c.BurstHi > 1 || c.BurstLo > c.BurstHi {
		return fmt.Errorf("trace: invalid burst range [%v, %v]", c.BurstLo, c.BurstHi)
	}
	if c.BackgroundHi < 0 || c.BackgroundHi > 1 {
		return fmt.Errorf("trace: invalid background bound %v", c.BackgroundHi)
	}
	if c.VolumeLo <= 0 || c.VolumeLo > c.VolumeHi {
		return fmt.Errorf("trace: invalid volume range [%v, %v]", c.VolumeLo, c.VolumeHi)
	}
	return nil
}

// VMs generates tasks modelling virtual machines that mostly run background
// load but occasionally burst on the shared resource (the host-level
// CPU/memory/I/O sharing scenario of the paper's introduction).
func VMs(rng *rand.Rand, cfg VMConfig) ([]*manycore.Task, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tasks := make([]*manycore.Task, cfg.VMs)
	for i := range tasks {
		phases := make([]manycore.Phase, cfg.PhasesPerVM)
		for p := range phases {
			vol := cfg.VolumeLo + rng.Float64()*(cfg.VolumeHi-cfg.VolumeLo)
			if rng.Float64() < cfg.BurstProbability {
				phases[p] = manycore.Phase{
					Kind:      manycore.PhaseIO,
					Bandwidth: cfg.BurstLo + rng.Float64()*(cfg.BurstHi-cfg.BurstLo),
					Volume:    vol,
				}
			} else {
				phases[p] = manycore.Phase{
					Kind:      manycore.PhaseCompute,
					Bandwidth: rng.Float64() * cfg.BackgroundHi,
					Volume:    vol,
				}
			}
		}
		tasks[i] = manycore.NewTask(fmt.Sprintf("vm-%03d", i), phases...)
	}
	return tasks, nil
}

// UnitPhases generates tasks whose phases all have unit volume, the regime in
// which the simulator corresponds exactly to the paper's unit-size CRSharing
// model (one phase = one job).
func UnitPhases(rng *rand.Rand, tasks, phases int, lo, hi float64) []*manycore.Task {
	out := make([]*manycore.Task, tasks)
	for i := range out {
		ps := make([]manycore.Phase, phases)
		for p := range ps {
			ps[p] = manycore.Phase{
				Kind:      manycore.PhaseIO,
				Bandwidth: lo + rng.Float64()*(hi-lo),
				Volume:    1,
			}
		}
		out[i] = manycore.NewTask(fmt.Sprintf("unit-%03d", i), ps...)
	}
	return out
}

// ToInstance converts a one-task-per-core workload into a CRSharing instance:
// phase k of core i's task becomes job (i,k) with requirement equal to the
// phase's bandwidth share and size equal to its volume. It fails if any core
// has more than one task queued (the paper's model fixes one task per
// processor; concatenate tasks first if needed, see Flatten).
func ToInstance(w *manycore.Workload) (*core.Instance, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	procs := make([][]core.Job, w.Cores())
	for c, q := range w.Queues {
		if len(q) > 1 {
			return nil, fmt.Errorf("trace: core %d has %d tasks; flatten the queue first", c, len(q))
		}
		if len(q) == 0 {
			continue
		}
		for _, p := range q[0].Phases {
			procs[c] = append(procs[c], core.Job{Req: p.Bandwidth, Size: p.Volume})
		}
	}
	return core.NewSizedInstance(procs...), nil
}

// Flatten concatenates each core's task queue into a single task so the
// workload can be converted with ToInstance. Task boundaries disappear, which
// is exactly how the paper's model treats a processor's job sequence.
func Flatten(w *manycore.Workload) *manycore.Workload {
	out := manycore.NewWorkload(w.Cores())
	for c, q := range w.Queues {
		if len(q) == 0 {
			continue
		}
		var phases []manycore.Phase
		for _, t := range q {
			phases = append(phases, t.Phases...)
		}
		out.Assign(c, manycore.NewTask(fmt.Sprintf("core-%02d", c), phases...))
	}
	return out
}

// FromInstance converts a CRSharing instance into a one-task-per-core
// workload, the inverse of ToInstance: job (i,j) becomes phase j of core i's
// task with bandwidth r_ij and volume p_ij.
func FromInstance(inst *core.Instance) (*manycore.Workload, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	w := manycore.NewWorkload(inst.NumProcessors())
	for i := 0; i < inst.NumProcessors(); i++ {
		if inst.NumJobs(i) == 0 {
			continue
		}
		phases := make([]manycore.Phase, inst.NumJobs(i))
		for j := range phases {
			job := inst.Job(i, j)
			kind := manycore.PhaseIO
			if job.Req < 0.25 {
				kind = manycore.PhaseCompute
			}
			phases[j] = manycore.Phase{Kind: kind, Bandwidth: job.Req, Volume: job.Size}
		}
		w.Assign(i, manycore.NewTask(fmt.Sprintf("proc-%02d", i), phases...))
	}
	return w, nil
}
