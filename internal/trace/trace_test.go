package trace

import (
	"math/rand"
	"testing"

	"crsharing/internal/core"
	"crsharing/internal/gen"
	"crsharing/internal/manycore"
)

func TestScientificTraceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultScientificConfig(8)
	tasks, err := Scientific(rng, cfg)
	if err != nil {
		t.Fatalf("Scientific: %v", err)
	}
	if len(tasks) != 8 {
		t.Fatalf("expected 8 tasks, got %d", len(tasks))
	}
	for _, task := range tasks {
		if err := task.Validate(); err != nil {
			t.Fatalf("invalid task: %v", err)
		}
		if len(task.Phases) != cfg.PhasesPerTask {
			t.Fatalf("task has %d phases, want %d", len(task.Phases), cfg.PhasesPerTask)
		}
		for p, phase := range task.Phases {
			if p%2 == 0 {
				if phase.Kind != manycore.PhaseIO || phase.Bandwidth < cfg.IOBandwidthLo {
					t.Fatalf("even phases must be I/O-heavy, got %+v", phase)
				}
			} else {
				if phase.Kind != manycore.PhaseCompute || phase.Bandwidth > cfg.ComputeBandwidthHi {
					t.Fatalf("odd phases must be light compute, got %+v", phase)
				}
			}
		}
	}
}

func TestScientificConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := DefaultScientificConfig(4)
	bad.IOBandwidthHi = 1.5
	if _, err := Scientific(rng, bad); err == nil {
		t.Fatalf("invalid config must be rejected")
	}
	bad = DefaultScientificConfig(0)
	if _, err := Scientific(rng, bad); err == nil {
		t.Fatalf("zero tasks must be rejected")
	}
	bad = DefaultScientificConfig(4)
	bad.VolumeLo = 0
	if _, err := Scientific(rng, bad); err == nil {
		t.Fatalf("zero volume must be rejected")
	}
}

func TestVMTraceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultVMConfig(16)
	tasks, err := VMs(rng, cfg)
	if err != nil {
		t.Fatalf("VMs: %v", err)
	}
	if len(tasks) != 16 {
		t.Fatalf("expected 16 VMs, got %d", len(tasks))
	}
	bursts, background := 0, 0
	for _, task := range tasks {
		if err := task.Validate(); err != nil {
			t.Fatalf("invalid task: %v", err)
		}
		for _, phase := range task.Phases {
			if phase.Kind == manycore.PhaseIO {
				bursts++
			} else {
				background++
			}
		}
	}
	if bursts == 0 || background == 0 {
		t.Fatalf("VM trace should contain both bursts (%d) and background phases (%d)", bursts, background)
	}
}

func TestVMConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bad := DefaultVMConfig(4)
	bad.BurstProbability = 1.5
	if _, err := VMs(rng, bad); err == nil {
		t.Fatalf("invalid burst probability must be rejected")
	}
	bad = DefaultVMConfig(4)
	bad.BurstLo = 0.9
	bad.BurstHi = 0.5
	if _, err := VMs(rng, bad); err == nil {
		t.Fatalf("inverted burst range must be rejected")
	}
}

func TestUnitPhasesMatchUnitSizeModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tasks := UnitPhases(rng, 4, 5, 0.1, 0.9)
	w := manycore.NewWorkload(4)
	for i, task := range tasks {
		w.Assign(i, task)
	}
	inst, err := ToInstance(w)
	if err != nil {
		t.Fatalf("ToInstance: %v", err)
	}
	if !inst.IsUnitSize() {
		t.Fatalf("unit-phase workload must convert to a unit-size instance")
	}
	if inst.NumProcessors() != 4 || inst.TotalJobs() != 20 {
		t.Fatalf("unexpected instance shape: %d procs, %d jobs", inst.NumProcessors(), inst.TotalJobs())
	}
}

func TestToInstanceRejectsMultiTaskQueues(t *testing.T) {
	w := manycore.NewWorkload(1)
	w.Assign(0, manycore.NewTask("a", manycore.Phase{Kind: manycore.PhaseIO, Bandwidth: 0.5, Volume: 1}))
	w.Assign(0, manycore.NewTask("b", manycore.Phase{Kind: manycore.PhaseIO, Bandwidth: 0.5, Volume: 1}))
	if _, err := ToInstance(w); err == nil {
		t.Fatalf("multi-task queues must be rejected before flattening")
	}
	flat := Flatten(w)
	inst, err := ToInstance(flat)
	if err != nil {
		t.Fatalf("ToInstance(Flatten): %v", err)
	}
	if inst.NumJobs(0) != 2 {
		t.Fatalf("flattened queue should yield 2 jobs, got %d", inst.NumJobs(0))
	}
}

func TestRoundTripInstanceWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	orig := gen.Random(rng, 3, 4, 0.1, 0.9)
	w, err := FromInstance(orig)
	if err != nil {
		t.Fatalf("FromInstance: %v", err)
	}
	back, err := ToInstance(w)
	if err != nil {
		t.Fatalf("ToInstance: %v", err)
	}
	if !orig.Equal(back) {
		t.Fatalf("round trip changed the instance:\n%v\n%v", orig, back)
	}
}

func TestFromInstanceSkipsEmptyProcessors(t *testing.T) {
	inst := core.NewInstance([]float64{0.5}, nil)
	w, err := FromInstance(inst)
	if err != nil {
		t.Fatalf("FromInstance: %v", err)
	}
	if len(w.Queues[0]) != 1 || len(w.Queues[1]) != 0 {
		t.Fatalf("unexpected queues: %d/%d", len(w.Queues[0]), len(w.Queues[1]))
	}
}

func TestConvertedWorkloadSimulatesConsistently(t *testing.T) {
	// Running the simulator's greedy-balance policy on a converted unit-size
	// workload must finish everything and respect the model's lower bounds.
	rng := rand.New(rand.NewSource(5))
	inst := gen.Random(rng, 4, 4, 0.1, 1.0)
	w, err := FromInstance(inst)
	if err != nil {
		t.Fatalf("FromInstance: %v", err)
	}
	machine := manycore.NewMachine(4)
	metrics, err := manycore.NewEngine(machine).Run(w, manycore.GreedyBalance{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	lb := core.LowerBounds(inst)
	if metrics.Ticks < lb.Best() {
		t.Fatalf("simulated makespan %d below the model lower bound %d", metrics.Ticks, lb.Best())
	}
}

func TestTraceDeterminism(t *testing.T) {
	a, err := Scientific(rand.New(rand.NewSource(9)), DefaultScientificConfig(5))
	if err != nil {
		t.Fatalf("Scientific: %v", err)
	}
	b, err := Scientific(rand.New(rand.NewSource(9)), DefaultScientificConfig(5))
	if err != nil {
		t.Fatalf("Scientific: %v", err)
	}
	for i := range a {
		if len(a[i].Phases) != len(b[i].Phases) {
			t.Fatalf("same seed must reproduce the same trace")
		}
		for p := range a[i].Phases {
			if a[i].Phases[p] != b[i].Phases[p] {
				t.Fatalf("same seed must reproduce the same phases")
			}
		}
	}
}
