package trace_test

import (
	"fmt"
	"math/rand"

	"crsharing/internal/core"
	"crsharing/internal/manycore"
	"crsharing/internal/trace"
)

// ExampleToInstance converts a one-task-per-core workload with unit-volume
// phases into a CRSharing instance: every phase becomes one unit-size job
// whose resource requirement is the phase's bandwidth share, so the paper's
// offline algorithms and lower bounds apply directly.
func ExampleToInstance() {
	rng := rand.New(rand.NewSource(1))
	tasks := trace.UnitPhases(rng, 4, 3, 0.2, 0.8)
	workload := manycore.NewWorkload(4)
	for i, t := range tasks {
		workload.Assign(i, t)
	}

	inst, _ := trace.ToInstance(workload)
	fmt.Println("processors:", inst.NumProcessors())
	fmt.Println("jobs:", inst.TotalJobs())
	fmt.Println("unit size:", inst.IsUnitSize())
	fmt.Println("chain lower bound:", core.LowerBounds(inst).Chain)
	// Output:
	// processors: 4
	// jobs: 12
	// unit size: true
	// chain lower bound: 3
}
