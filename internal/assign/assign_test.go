package assign

import (
	"math/rand"
	"testing"

	"crsharing/internal/algo"
	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
)

func TestTaskHelpers(t *testing.T) {
	task := NewUnitTask("t", 0.5, 0.25)
	if task.Work() != 0.75 {
		t.Fatalf("work = %v, want 0.75", task.Work())
	}
	if task.Steps() != 2 {
		t.Fatalf("steps = %d, want 2", task.Steps())
	}
}

func TestRoundRobinAssignment(t *testing.T) {
	tasks := []Task{NewUnitTask("a", 0.5), NewUnitTask("b", 0.6), NewUnitTask("c", 0.7)}
	a := RoundRobin{}.Assign(tasks, 2)
	if a.Proc[0] != 0 || a.Proc[1] != 1 || a.Proc[2] != 0 {
		t.Fatalf("round robin placement wrong: %v", a.Proc)
	}
	inst, err := a.Instance(tasks)
	if err != nil {
		t.Fatalf("Instance: %v", err)
	}
	if inst.NumJobs(0) != 2 || inst.NumJobs(1) != 1 {
		t.Fatalf("materialised instance wrong: %v", inst)
	}
	loads := a.Loads(tasks)
	if loads[0] != 1.2 || loads[1] != 0.6 {
		t.Fatalf("loads wrong: %v", loads)
	}
}

func TestLPTBalancesWork(t *testing.T) {
	tasks := []Task{
		NewUnitTask("big", 0.9, 0.9, 0.9),
		NewUnitTask("mid", 0.8, 0.8),
		NewUnitTask("small1", 0.5),
		NewUnitTask("small2", 0.4),
	}
	a := LPT{}.Assign(tasks, 2)
	loads := a.Loads(tasks)
	// LPT puts the big task alone-ish: the max load must be below the total
	// minus the smallest task (i.e. it actually spreads the work).
	if loads[0] == 0 || loads[1] == 0 {
		t.Fatalf("LPT must use both processors: %v", loads)
	}
	diff := loads[0] - loads[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 1.0 {
		t.Fatalf("LPT load imbalance too large: %v", loads)
	}
}

func TestLeastJobsBalancesCounts(t *testing.T) {
	tasks := []Task{
		NewUnitTask("a", 0.1, 0.1, 0.1, 0.1),
		NewUnitTask("b", 0.9),
		NewUnitTask("c", 0.9),
	}
	a := LeastJobs{}.Assign(tasks, 2)
	inst, err := a.Instance(tasks)
	if err != nil {
		t.Fatalf("Instance: %v", err)
	}
	// Task "a" (4 jobs) goes to processor 1; "b" and "c" both end up on
	// processor 2, keeping the chain lengths 4 vs 2 instead of 5 vs 1.
	if inst.MaxJobs() != 4 {
		t.Fatalf("expected max chain of 4 jobs, got %d", inst.MaxJobs())
	}
}

func TestRandomAssignmentIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tasks := RandomTasks(rng, 10, 1, 4, 0.1, 0.9)
	a := Random{Rng: rng}.Assign(tasks, 3)
	inst, err := a.Instance(tasks)
	if err != nil {
		t.Fatalf("Instance: %v", err)
	}
	if inst.NumProcessors() != 3 || inst.TotalJobs() == 0 {
		t.Fatalf("materialised instance malformed")
	}
	if err := inst.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAssignmentErrors(t *testing.T) {
	tasks := []Task{NewUnitTask("a", 0.5)}
	bad := Assignment{Proc: []int{5}, M: 2}
	if _, err := bad.Instance(tasks); err == nil {
		t.Fatalf("out-of-range processor must error")
	}
	mismatch := Assignment{Proc: []int{}, M: 2}
	if _, err := mismatch.Instance(tasks); err == nil {
		t.Fatalf("length mismatch must error")
	}
}

func TestPlacementPlusResourceScheduling(t *testing.T) {
	// End-to-end: place random tasks with each policy, schedule the resource
	// with GreedyBalance, and confirm every makespan respects the lower
	// bound and that LPT never loses to round robin by more than the chain
	// imbalance it avoids.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		tasks := RandomTasks(rng, 8, 1, 5, 0.1, 1.0)
		m := 3
		for _, p := range Policies() {
			a := p.Assign(tasks, m)
			inst, err := a.Instance(tasks)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			ev, err := algo.Evaluate(greedybalance.New(), inst)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			if ev.Makespan < core.LowerBounds(inst).Best() {
				t.Fatalf("%s: makespan below lower bound", p.Name())
			}
		}
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Policies() {
		names[p.Name()] = true
	}
	if !names["assign-round-robin"] || !names["assign-lpt"] || !names["assign-least-jobs"] {
		t.Fatalf("unexpected policy names: %v", names)
	}
	if (Random{}).Name() != "assign-random" {
		t.Fatalf("random policy name wrong")
	}
}
