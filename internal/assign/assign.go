// Package assign re-introduces the classical scheduling aspect that the
// CRSharing model deliberately fixes: deciding which processor runs which
// task. The paper's Section 9 outlook asks what happens when the job
// sequences are not a priori bound to processors; this package provides the
// standard assignment policies (round robin, longest-processing-time-first,
// least-loaded by job count, random) that map a bag of tasks onto m
// processors, producing a CRSharing instance that the paper's resource
// schedulers then solve. The experiments use it to quantify how much of the
// final makespan is determined by placement versus by resource assignment.
package assign

import (
	"fmt"
	"math/rand"
	"sort"

	"crsharing/internal/core"
)

// Task is one program: an ordered sequence of jobs that must run on a single
// processor.
type Task struct {
	Name string
	Jobs []core.Job
}

// NewUnitTask builds a task of unit-size jobs from requirements.
func NewUnitTask(name string, reqs ...float64) Task {
	jobs := make([]core.Job, len(reqs))
	for i, r := range reqs {
		jobs[i] = core.UnitJob(r)
	}
	return Task{Name: name, Jobs: jobs}
}

// Work returns the task's total work Σ r·p.
func (t Task) Work() float64 {
	var w float64
	for _, j := range t.Jobs {
		w += j.Work()
	}
	return w
}

// Steps returns the minimum number of steps the task occupies a processor.
func (t Task) Steps() int {
	s := 0
	for _, j := range t.Jobs {
		s += j.Steps()
	}
	return s
}

// Assignment maps each task index to a processor.
type Assignment struct {
	// Proc[k] is the processor assigned to task k.
	Proc []int
	// M is the number of processors.
	M int
}

// Instance materialises the assignment: each processor's job sequence is the
// concatenation of its tasks' job sequences, in task-index order (ties in
// placement keep the input order, mirroring how a dispatcher would enqueue
// arriving tasks).
func (a Assignment) Instance(tasks []Task) (*core.Instance, error) {
	if len(a.Proc) != len(tasks) {
		return nil, fmt.Errorf("assign: assignment covers %d tasks, got %d", len(a.Proc), len(tasks))
	}
	procs := make([][]core.Job, a.M)
	for k, t := range tasks {
		p := a.Proc[k]
		if p < 0 || p >= a.M {
			return nil, fmt.Errorf("assign: task %d assigned to processor %d outside [0,%d)", k, p, a.M)
		}
		procs[p] = append(procs[p], t.Jobs...)
	}
	return core.NewSizedInstance(procs...), nil
}

// Loads returns the total work per processor under the assignment.
func (a Assignment) Loads(tasks []Task) []float64 {
	loads := make([]float64, a.M)
	for k, t := range tasks {
		loads[a.Proc[k]] += t.Work()
	}
	return loads
}

// Policy chooses an assignment of tasks to processors.
type Policy interface {
	// Name returns a short identifier.
	Name() string
	// Assign places the tasks onto m processors.
	Assign(tasks []Task, m int) Assignment
}

// RoundRobin places task k on processor k mod m.
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "assign-round-robin" }

// Assign implements Policy.
func (RoundRobin) Assign(tasks []Task, m int) Assignment {
	a := Assignment{Proc: make([]int, len(tasks)), M: m}
	for k := range tasks {
		a.Proc[k] = k % m
	}
	return a
}

// LPT (longest processing time first) sorts tasks by decreasing total work
// and greedily places each on the currently least-loaded processor — the
// classical Graham heuristic, here with "load" measured in aggregate work.
type LPT struct{}

// Name implements Policy.
func (LPT) Name() string { return "assign-lpt" }

// Assign implements Policy.
func (LPT) Assign(tasks []Task, m int) Assignment {
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return tasks[order[a]].Work() > tasks[order[b]].Work() })
	assignment := Assignment{Proc: make([]int, len(tasks)), M: m}
	loads := make([]float64, m)
	for _, k := range order {
		best := 0
		for p := 1; p < m; p++ {
			if loads[p] < loads[best] {
				best = p
			}
		}
		assignment.Proc[k] = best
		loads[best] += tasks[k].Work()
	}
	return assignment
}

// LeastJobs places each task (in input order) on the processor with the
// fewest jobs so far, balancing chain lengths rather than work.
type LeastJobs struct{}

// Name implements Policy.
func (LeastJobs) Name() string { return "assign-least-jobs" }

// Assign implements Policy.
func (LeastJobs) Assign(tasks []Task, m int) Assignment {
	assignment := Assignment{Proc: make([]int, len(tasks)), M: m}
	counts := make([]int, m)
	for k, t := range tasks {
		best := 0
		for p := 1; p < m; p++ {
			if counts[p] < counts[best] {
				best = p
			}
		}
		assignment.Proc[k] = best
		counts[best] += len(t.Jobs)
	}
	return assignment
}

// Random places every task on a processor drawn uniformly at random; it is
// the baseline that shows how much placement matters at all.
type Random struct {
	Rng *rand.Rand
}

// Name implements Policy.
func (Random) Name() string { return "assign-random" }

// Assign implements Policy.
func (r Random) Assign(tasks []Task, m int) Assignment {
	rng := r.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	assignment := Assignment{Proc: make([]int, len(tasks)), M: m}
	for k := range tasks {
		assignment.Proc[k] = rng.Intn(m)
	}
	return assignment
}

// Policies returns the deterministic built-in policies (Random is excluded
// because it needs a seed; construct it explicitly when wanted).
func Policies() []Policy {
	return []Policy{RoundRobin{}, LPT{}, LeastJobs{}}
}

// RandomTasks draws `count` unit-size tasks with jobsLo..jobsHi jobs and
// requirements uniform in [reqLo, reqHi]; a convenience for the experiments.
func RandomTasks(rng *rand.Rand, count, jobsLo, jobsHi int, reqLo, reqHi float64) []Task {
	tasks := make([]Task, count)
	for i := range tasks {
		n := jobsLo
		if jobsHi > jobsLo {
			n += rng.Intn(jobsHi - jobsLo + 1)
		}
		reqs := make([]float64, n)
		for j := range reqs {
			reqs[j] = reqLo + rng.Float64()*(reqHi-reqLo)
		}
		tasks[i] = NewUnitTask(fmt.Sprintf("task-%03d", i), reqs...)
	}
	return tasks
}
