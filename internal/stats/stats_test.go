package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.Count != 8 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	// Sample standard deviation of this classic example is ~2.138.
	if math.Abs(s.StdDev-2.138089935299395) > 1e-9 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.P50-4.5) > 1e-12 {
		t.Fatalf("median = %v, want 4.5", s.P50)
	}
	if !strings.Contains(s.String(), "mean=5.0000") {
		t.Fatalf("String: %q", s.String())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.String() != "n=0" {
		t.Fatalf("empty summary malformed: %+v", s)
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Fatalf("empty-sample helpers must return 0")
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 3 {
		t.Fatalf("extreme quantiles wrong")
	}
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 3 {
		t.Fatalf("out-of-range q must clamp")
	}
	if math.Abs(Quantile(xs, 0.5)-2) > 1e-12 {
		t.Fatalf("median of {1,2,3} = %v", Quantile(xs, 0.5))
	}
}

// TestSummarizeMatchesQuantile guards the sort-once fast path in Summarize
// against drifting from the standalone Quantile, min and max helpers, and
// checks the input sample is left unsorted.
func TestSummarizeMatchesQuantile(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		orig := append([]float64(nil), xs...)
		s := Summarize(xs)
		for i := range xs {
			if xs[i] != orig[i] {
				return false // Summarize must not mutate its input
			}
		}
		return s.P50 == Quantile(xs, 0.50) &&
			s.P90 == Quantile(xs, 0.90) &&
			s.P99 == Quantile(xs, 0.99) &&
			s.Min == Min(xs) && s.Max == Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("Summarize disagrees with Quantile/Min/Max: %v", err)
	}
}

func TestMinMaxMean(t *testing.T) {
	xs := []float64{-1, 5, 2}
	if Min(xs) != -1 || Max(xs) != 5 || math.Abs(Mean(xs)-2) > 1e-12 {
		t.Fatalf("Min/Max/Mean broken")
	}
}

func TestQuantilePropertyWithinRange(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := float64(qRaw) / 255
		v := Quantile(xs, q)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return v >= sorted[0]-1e-12 && v <= sorted[len(sorted)-1]+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("property violated: %v", err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa, qb := float64(a)/255, float64(b)/255
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("monotonicity violated: %v", err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, x := range []float64{0.1, 0.1, 0.3, 0.6, 0.9, -0.5, 1.5} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d, want 7", h.Total())
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[2] != 1 || h.Buckets[3] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Fatalf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	out := h.String()
	if !strings.Contains(out, "underflow 1") || !strings.Contains(out, "overflow 1") {
		t.Fatalf("rendering missing overflow lines:\n%s", out)
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestHistogramEdgeBucket(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.Add(0.9999999999)
	sum := 0
	for _, c := range h.Buckets {
		sum += c
	}
	if sum != 1 || h.Overflow != 0 {
		t.Fatalf("sample just below Hi must land in the last bucket")
	}
}

// TestHistogramMergeMatchesPooled is the shard-merge property: merging K
// disjoint shard histograms equals building one histogram over the pooled
// samples — Total, bucket counts and under/overflow exact — and the merged
// quantile estimates land within one bucket width of the exact sample
// quantiles.
func TestHistogramMergeMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		shards := 2 + rng.Intn(5)
		lo, hi, buckets := 0.0, 100.0, 1+rng.Intn(40)
		pooled := NewHistogram(lo, hi, buckets)
		merged := NewHistogram(lo, hi, buckets)
		var samples []float64
		for s := 0; s < shards; s++ {
			h := NewHistogram(lo, hi, buckets)
			for i := 0; i < rng.Intn(200); i++ {
				// Include out-of-range mass so the merge must carry it too.
				x := -10 + rng.Float64()*120
				samples = append(samples, x)
				pooled.Add(x)
				h.Add(x)
			}
			if err := merged.Merge(h); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Total() != pooled.Total() || merged.Total() != len(samples) {
			t.Fatalf("trial %d: merged total %d, pooled %d, samples %d",
				trial, merged.Total(), pooled.Total(), len(samples))
		}
		if merged.Underflow != pooled.Underflow || merged.Overflow != pooled.Overflow {
			t.Fatalf("trial %d: under/overflow merged %d/%d pooled %d/%d",
				trial, merged.Underflow, merged.Overflow, pooled.Underflow, pooled.Overflow)
		}
		for i := range merged.Buckets {
			if merged.Buckets[i] != pooled.Buckets[i] {
				t.Fatalf("trial %d: bucket %d merged %d pooled %d", trial, i, merged.Buckets[i], pooled.Buckets[i])
			}
		}
		if len(samples) == 0 {
			continue
		}
		width := (hi - lo) / float64(buckets)
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.5, 0.99} {
			// The sample at the same rank the histogram walks to; the estimate
			// must land in that sample's bucket, i.e. within one bucket width.
			idx := int(math.Ceil(q*float64(len(sorted)))) - 1
			if idx < 0 {
				idx = 0
			}
			exact := sorted[idx]
			// Clamp like the histogram does: out-of-range mass sits at the bounds.
			if exact < lo {
				exact = lo
			}
			if exact > hi {
				exact = hi
			}
			got := merged.Quantile(q)
			if math.Abs(got-exact) > width+1e-9 {
				t.Fatalf("trial %d: q=%g estimate %g vs exact %g beyond bucket width %g",
					trial, q, got, exact, width)
			}
		}
	}
}

// TestHistogramMergeBoundsMismatch pins the typed refusal: merging histograms
// with different bounds or bucket counts must return *BoundsMismatchError and
// leave the receiver untouched instead of silently misbinning.
func TestHistogramMergeBoundsMismatch(t *testing.T) {
	base := NewHistogram(0, 1, 4)
	base.Add(0.5)
	for _, other := range []*Histogram{
		NewHistogram(0, 2, 4),
		NewHistogram(-1, 1, 4),
		NewHistogram(0, 1, 8),
	} {
		err := base.Merge(other)
		var bm *BoundsMismatchError
		if !errors.As(err, &bm) {
			t.Fatalf("Merge returned %v, want *BoundsMismatchError", err)
		}
		if bm.Error() == "" {
			t.Fatal("empty mismatch message")
		}
		if base.Total() != 1 || base.Buckets[2] != 1 {
			t.Fatalf("failed merge mutated the receiver: %+v", base)
		}
	}
}

// TestHistogramOutOfRangeRegression pins the fix for the old data-loss case:
// out-of-range samples must be counted (underflow/overflow), surface in
// String(), survive a Merge, and anchor the quantile estimate at the bounds —
// never be dropped.
func TestHistogramOutOfRangeRegression(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-5, -1, 20, 30, 40} {
		h.Add(x)
	}
	if h.Total() != 5 {
		t.Fatalf("out-of-range samples dropped: total %d, want 5", h.Total())
	}
	if h.Underflow != 2 || h.Overflow != 3 {
		t.Fatalf("under/overflow %d/%d, want 2/3", h.Underflow, h.Overflow)
	}
	if s := h.String(); !strings.Contains(s, "underflow 2") || !strings.Contains(s, "overflow 3") {
		t.Fatalf("String does not surface out-of-range mass:\n%s", s)
	}
	other := NewHistogram(0, 10, 5)
	other.Add(-1)
	other.Add(100)
	if err := h.Merge(other); err != nil {
		t.Fatal(err)
	}
	if h.Underflow != 3 || h.Overflow != 4 || h.Total() != 7 {
		t.Fatalf("merge lost out-of-range mass: %+v", h)
	}
	// All mass outside the range: the quantile clamps to the bounds.
	if q := h.Quantile(0.0); q != 0 {
		t.Fatalf("q0 = %g, want clamp to Lo", q)
	}
	if q := h.Quantile(1.0); q != 10 {
		t.Fatalf("q1 = %g, want clamp to Hi", q)
	}
}

// TestMergeSummariesMatchesPooled checks the exact fields of MergeSummaries
// against Summarize over the pooled sample; quantiles are intentionally zero
// (not mergeable from summaries — re-estimate from a merged histogram).
func TestMergeSummariesMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		a := make([]float64, 1+rng.Intn(100))
		b := make([]float64, 1+rng.Intn(100))
		for i := range a {
			a[i] = rng.NormFloat64() * 10
		}
		for i := range b {
			b[i] = 5 + rng.NormFloat64()*3
		}
		got := MergeSummaries(Summarize(a), Summarize(b))
		want := Summarize(append(append([]float64(nil), a...), b...))
		if got.Count != want.Count {
			t.Fatalf("count %d != %d", got.Count, want.Count)
		}
		for _, f := range []struct {
			name string
			g, w float64
		}{
			{"mean", got.Mean, want.Mean},
			{"stddev", got.StdDev, want.StdDev},
			{"min", got.Min, want.Min},
			{"max", got.Max, want.Max},
		} {
			if math.Abs(f.g-f.w) > 1e-9*(1+math.Abs(f.w)) {
				t.Fatalf("trial %d: %s merged %g pooled %g", trial, f.name, f.g, f.w)
			}
		}
		if got.P50 != 0 || got.P99 != 0 {
			t.Fatalf("merged quantiles must be zero (unmergeable), got %+v", got)
		}
	}
	// Identities with the empty summary.
	s := Summarize([]float64{1, 2, 3})
	if got := MergeSummaries(s, Summary{}); got.Count != 3 || got.Mean != s.Mean {
		t.Fatalf("merge with empty lost data: %+v", got)
	}
	if got := MergeSummaries(Summary{}, s); got.Count != 3 || got.StdDev != s.StdDev {
		t.Fatalf("merge with empty lost data: %+v", got)
	}
}
