package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.Count != 8 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	// Sample standard deviation of this classic example is ~2.138.
	if math.Abs(s.StdDev-2.138089935299395) > 1e-9 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.P50-4.5) > 1e-12 {
		t.Fatalf("median = %v, want 4.5", s.P50)
	}
	if !strings.Contains(s.String(), "mean=5.0000") {
		t.Fatalf("String: %q", s.String())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.String() != "n=0" {
		t.Fatalf("empty summary malformed: %+v", s)
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Fatalf("empty-sample helpers must return 0")
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 3 {
		t.Fatalf("extreme quantiles wrong")
	}
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 3 {
		t.Fatalf("out-of-range q must clamp")
	}
	if math.Abs(Quantile(xs, 0.5)-2) > 1e-12 {
		t.Fatalf("median of {1,2,3} = %v", Quantile(xs, 0.5))
	}
}

// TestSummarizeMatchesQuantile guards the sort-once fast path in Summarize
// against drifting from the standalone Quantile, min and max helpers, and
// checks the input sample is left unsorted.
func TestSummarizeMatchesQuantile(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		orig := append([]float64(nil), xs...)
		s := Summarize(xs)
		for i := range xs {
			if xs[i] != orig[i] {
				return false // Summarize must not mutate its input
			}
		}
		return s.P50 == Quantile(xs, 0.50) &&
			s.P90 == Quantile(xs, 0.90) &&
			s.P99 == Quantile(xs, 0.99) &&
			s.Min == Min(xs) && s.Max == Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("Summarize disagrees with Quantile/Min/Max: %v", err)
	}
}

func TestMinMaxMean(t *testing.T) {
	xs := []float64{-1, 5, 2}
	if Min(xs) != -1 || Max(xs) != 5 || math.Abs(Mean(xs)-2) > 1e-12 {
		t.Fatalf("Min/Max/Mean broken")
	}
}

func TestQuantilePropertyWithinRange(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := float64(qRaw) / 255
		v := Quantile(xs, q)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return v >= sorted[0]-1e-12 && v <= sorted[len(sorted)-1]+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("property violated: %v", err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa, qb := float64(a)/255, float64(b)/255
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("monotonicity violated: %v", err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, x := range []float64{0.1, 0.1, 0.3, 0.6, 0.9, -0.5, 1.5} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d, want 7", h.Total())
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[2] != 1 || h.Buckets[3] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Fatalf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	out := h.String()
	if !strings.Contains(out, "underflow 1") || !strings.Contains(out, "overflow 1") {
		t.Fatalf("rendering missing overflow lines:\n%s", out)
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestHistogramEdgeBucket(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.Add(0.9999999999)
	sum := 0
	for _, c := range h.Buckets {
		sum += c
	}
	if sum != 1 || h.Overflow != 0 {
		t.Fatalf("sample just below Hi must land in the last bucket")
	}
}
