// Package stats provides the small set of descriptive statistics used by the
// experiment harness and the simulator reports: means, standard deviations,
// quantiles, min/max, and fixed-width histograms. It exists so that the
// experiments can summarise ratio distributions without pulling in external
// dependencies.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
}

// Summarize computes the summary of the sample. An empty sample yields a zero
// summary with Count 0. The sample is copied and sorted exactly once; the
// quantiles (and min/max) are read off the shared sorted copy.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   quantileSorted(sorted, 0.50),
		P90:   quantileSorted(sorted, 0.90),
		P99:   quantileSorted(sorted, 0.99),
	}
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	var sq float64
	for _, x := range sorted {
		d := x - s.Mean
		sq += d * d
	}
	if len(sorted) > 1 {
		s.StdDev = math.Sqrt(sq / float64(len(sorted)-1))
	}
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f",
		s.Count, s.Mean, s.StdDev, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum (0 for an empty sample).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// Min returns the minimum (0 for an empty sample).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Quantile returns the q-quantile (q in [0,1]) using linear interpolation
// between closest ranks. The input need not be sorted. To compute several
// quantiles of the same sample use Summarize, which sorts only once.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile over an already-sorted non-empty sample.
func quantileSorted(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MergeSummaries pools two summaries exactly for Count, Mean, StdDev, Min and
// Max (the pooled standard deviation is reconstructed from the per-summary
// moments). Quantiles are NOT mergeable from summaries alone — P50/P90/P99 of
// the result are zero and must be re-estimated by the caller, typically from a
// merged Histogram (see Histogram.Merge and Histogram.Quantile).
func MergeSummaries(a, b Summary) Summary {
	if a.Count == 0 {
		return Summary{Count: b.Count, Mean: b.Mean, StdDev: b.StdDev, Min: b.Min, Max: b.Max}
	}
	if b.Count == 0 {
		return Summary{Count: a.Count, Mean: a.Mean, StdDev: a.StdDev, Min: a.Min, Max: a.Max}
	}
	na, nb := float64(a.Count), float64(b.Count)
	out := Summary{
		Count: a.Count + b.Count,
		Mean:  (na*a.Mean + nb*b.Mean) / (na + nb),
		Min:   math.Min(a.Min, b.Min),
		Max:   math.Max(a.Max, b.Max),
	}
	// Pooled variance via the combined sum of squared deviations: each side
	// contributes its own M2 = (n-1)·sd² plus the shift of its mean to the
	// pooled mean.
	m2 := (na-1)*a.StdDev*a.StdDev + na*(a.Mean-out.Mean)*(a.Mean-out.Mean) +
		(nb-1)*b.StdDev*b.StdDev + nb*(b.Mean-out.Mean)*(b.Mean-out.Mean)
	if out.Count > 1 {
		out.StdDev = math.Sqrt(m2 / float64(out.Count-1))
	}
	return out
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Buckets []int   `json:"buckets"`
	// Underflow and Overflow count samples outside [Lo, Hi); Add never drops
	// a sample silently.
	Underflow int `json:"underflow,omitempty"`
	Overflow  int `json:"overflow,omitempty"`
}

// NewHistogram returns a histogram with the given number of equal-width
// buckets covering [lo, hi). It panics if hi ≤ lo or buckets < 1 (programming
// errors).
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if hi <= lo || buckets < 1 {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, buckets)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.Underflow++
		return
	}
	if x >= h.Hi {
		h.Overflow++
		return
	}
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if idx >= len(h.Buckets) {
		idx = len(h.Buckets) - 1
	}
	h.Buckets[idx]++
}

// BoundsMismatchError reports a Histogram.Merge whose operands do not share
// bounds and bucket count. Merging such histograms would silently misbin every
// sample of the other run, so the merge refuses instead.
type BoundsMismatchError struct {
	ALo, AHi float64
	ABuckets int
	BLo, BHi float64
	BBuckets int
}

func (e *BoundsMismatchError) Error() string {
	return fmt.Sprintf("stats: histogram bounds mismatch: [%g, %g)/%d vs [%g, %g)/%d",
		e.ALo, e.AHi, e.ABuckets, e.BLo, e.BHi, e.BBuckets)
}

// Merge folds o into h. Bucket, underflow and overflow counts add exactly, so
// merging the histograms of K disjoint shards equals building one histogram
// over the pooled samples. The histograms must share Lo, Hi and bucket count;
// otherwise Merge returns a *BoundsMismatchError and leaves h unchanged.
func (h *Histogram) Merge(o *Histogram) error {
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Buckets) != len(o.Buckets) {
		return &BoundsMismatchError{
			ALo: h.Lo, AHi: h.Hi, ABuckets: len(h.Buckets),
			BLo: o.Lo, BHi: o.Hi, BBuckets: len(o.Buckets),
		}
	}
	for i, c := range o.Buckets {
		h.Buckets[i] += c
	}
	h.Underflow += o.Underflow
	h.Overflow += o.Overflow
	return nil
}

// Clone returns a deep copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	out := *h
	out.Buckets = append([]int(nil), h.Buckets...)
	return &out
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts with
// linear interpolation inside the selected bucket, so the estimate is within
// one bucket width of the exact sample quantile. Underflow mass is treated as
// sitting at Lo and overflow mass at Hi. An empty histogram yields 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := float64(h.Underflow)
	if rank <= cum {
		return h.Lo
	}
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			frac := (rank - cum) / float64(c)
			return h.Lo + (float64(i)+frac)*width
		}
		cum = next
	}
	return h.Hi
}

// Total returns the number of recorded samples, including under- and
// overflow.
func (h *Histogram) Total() int {
	t := h.Underflow + h.Overflow
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// String renders the histogram as an ASCII bar chart, one bucket per line.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 1
	for _, c := range h.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		lo := h.Lo + float64(i)*width
		bar := strings.Repeat("#", c*40/maxCount)
		fmt.Fprintf(&b, "[%7.3f, %7.3f) %6d %s\n", lo, lo+width, c, bar)
	}
	if h.Underflow > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.Underflow)
	}
	if h.Overflow > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.Overflow)
	}
	return b.String()
}
