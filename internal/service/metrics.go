package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"crsharing/internal/engine"
	"crsharing/internal/jobs"
)

// metrics holds the server's request-level counters. Everything is atomic:
// handlers run concurrently and /metrics reads while they write. Solve-level
// accounting (sources, nodes, admission, latency histograms) lives in the
// engine, which write renders alongside.
type metrics struct {
	requestsSolve   atomic.Uint64
	requestsBatch   atomic.Uint64
	requestsJobs    atomic.Uint64
	requestsOther   atomic.Uint64
	errorsTotal     atomic.Uint64
	batchInstances  atomic.Uint64
	batchCancelled  atomic.Uint64
	deadlineExpired atomic.Uint64
	// shedTotal counts requests answered 429-with-Retry-After because a
	// tenant quota refused them (solve, fully-shed batch, or job submit).
	shedTotal atomic.Uint64
	// Peer cache-fill accounting (see peerfill.go): solves this backend
	// forwarded to the owning peer, fills this backend served on a peer's
	// behalf, and forwards that failed and fell back to a local solve.
	peerFillForwarded atomic.Uint64
	peerFillServed    atomic.Uint64
	peerFillErrors    atomic.Uint64
}

// write renders the request counters, the engine's solve telemetry (sources,
// search nodes, admission queueing and the solve latency / search-size
// histograms), the cache counters and the job manager's gauges in the
// Prometheus text exposition format (version 0.0.4): every sample is
// preceded by its # HELP and # TYPE lines, which also makes the endpoint
// perfectly readable with curl.
func (m *metrics) write(w io.Writer, eng *engine.Engine, jm *jobs.Manager, uptime time.Duration) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	// floatCounter renders a monotonically increasing float accumulator with
	// the counter type the _total suffix promises.
	floatCounter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	// labelled renders one series with a {tenant="..."} label per row, keys
	// sorted so the exposition is deterministic.
	labelled := func(name, help, kind string, rows map[string]float64) {
		if len(rows) == 0 {
			return
		}
		keys := make([]string, 0, len(rows))
		for k := range rows {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{tenant=%q} %g\n", name, k, rows[k])
		}
	}
	histogram := func(name, help string, h engine.Histogram) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for i, bound := range h.Bounds {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(bound, 'g', -1, 64), h.Counts[i])
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}

	counter("crsharing_requests_solve_total", "POST /v1/solve requests.", m.requestsSolve.Load())
	counter("crsharing_requests_batch_total", "POST /v1/batch-solve requests.", m.requestsBatch.Load())
	counter("crsharing_requests_jobs_total", "Requests to the /v1/jobs endpoints.", m.requestsJobs.Load())
	counter("crsharing_requests_other_total", "Requests to the remaining endpoints.", m.requestsOther.Load())
	counter("crsharing_errors_total", "Requests answered with a non-2xx status.", m.errorsTotal.Load())
	counter("crsharing_batch_instances_total", "Instances received in batch requests.", m.batchInstances.Load())
	counter("crsharing_batch_cancelled_total", "Batch instances never attempted because the deadline expired.", m.batchCancelled.Load())
	counter("crsharing_deadline_expired_total", "Solve requests that hit their deadline.", m.deadlineExpired.Load())
	counter("crsharing_requests_shed_total", "Requests answered 429 with Retry-After because a tenant quota refused them.", m.shedTotal.Load())
	counter("crsharing_peer_fill_forwarded_total", "Cache-miss solves forwarded to the owning peer backend.", m.peerFillForwarded.Load())
	counter("crsharing_peer_fill_served_total", "Solves served on behalf of a peer backend (cache fills).", m.peerFillServed.Load())
	counter("crsharing_peer_fill_errors_total", "Peer forwards that failed and fell back to a local solve.", m.peerFillErrors.Load())
	gauge("crsharing_uptime_seconds", "Seconds since the server started.", uptime.Seconds())

	snap := eng.Snapshot()
	counter("crsharing_solves_total", "Fresh solver invocations (cache misses), across every surface.", snap.SourceSolve)
	counter("crsharing_cache_served_total", "Solve requests answered from the cache or an in-flight solve.", snap.SourceCache+snap.SourceCoalesced)
	counter("crsharing_engine_source_cache_total", "Solve requests answered from the memo cache.", snap.SourceCache)
	counter("crsharing_engine_source_coalesced_total", "Solve requests coalesced onto an identical in-flight solve.", snap.SourceCoalesced)
	counter("crsharing_engine_source_negative_total", "Solve requests answered by replaying a remembered deterministic failure.", snap.SourceNegative)
	counter("crsharing_engine_errors_total", "Solve requests that failed (excluding quota sheds).", snap.Errors)
	counter("crsharing_engine_shed_total", "Solve requests refused over a tenant quota (429 material, not errors).", snap.Shed)
	counter("crsharing_engine_nodes_total", "Search nodes / configurations explored by fresh solves.", uint64(snap.NodesTotal))
	counter("crsharing_engine_incumbents_total", "Improving incumbents reported by fresh solves.", uint64(snap.IncumbentsTotal))
	floatCounter("crsharing_engine_queue_wait_seconds_total", "Total time solve requests spent waiting for admission.", snap.QueueSeconds)
	gauge("crsharing_solve_inflight", "Admission weight currently held by running solves.", float64(snap.Inflight))
	gauge("crsharing_engine_admission_waiting", "Solve requests queued for admission right now.", float64(snap.Waiting))
	histogram("crsharing_engine_solve_duration_seconds", "Wall-clock distribution of fresh solves.", snap.SolveSeconds)
	histogram("crsharing_engine_solve_nodes", "Search-size distribution (nodes / configurations) of fresh solves.", snap.SolveNodes)

	if len(snap.Tenants) > 0 {
		requests := make(map[string]float64, len(snap.Tenants))
		shed := make(map[string]float64, len(snap.Tenants))
		terrs := make(map[string]float64, len(snap.Tenants))
		queueWait := make(map[string]float64, len(snap.Tenants))
		inflight := make(map[string]float64, len(snap.Tenants))
		queued := make(map[string]float64, len(snap.Tenants))
		for name, ts := range snap.Tenants {
			requests[name] = float64(ts.Requests)
			shed[name] = float64(ts.Shed)
			terrs[name] = float64(ts.Errors)
			queueWait[name] = ts.QueueSeconds
			inflight[name] = float64(ts.Inflight)
			queued[name] = float64(ts.Queued)
		}
		labelled("crsharing_tenant_requests_total", "Solve requests finished, by tenant.", "counter", requests)
		labelled("crsharing_tenant_shed_total", "Solve requests refused over quota, by tenant.", "counter", shed)
		labelled("crsharing_tenant_errors_total", "Solve requests failed (excluding sheds), by tenant.", "counter", terrs)
		labelled("crsharing_tenant_queue_wait_seconds_total", "Admission wait, by tenant.", "counter", queueWait)
		labelled("crsharing_tenant_inflight", "Admission weight currently held, by tenant.", "gauge", inflight)
		labelled("crsharing_tenant_queued", "Requests waiting for admission right now, by tenant.", "gauge", queued)
	}

	if cache := eng.Cache(); cache != nil {
		st := cache.Stats()
		counter("crsharing_cache_hits_total", "Memo cache hits.", st.Hits)
		counter("crsharing_cache_misses_total", "Memo cache misses.", st.Misses)
		counter("crsharing_cache_coalesced_total", "Requests coalesced onto an identical in-flight solve.", st.Coalesced)
		counter("crsharing_cache_evictions_total", "LRU evictions.", st.Evictions)
		gauge("crsharing_cache_entries", "Evaluations currently cached.", float64(st.Entries))
		counter("crsharing_cache_negative_hits_total", "Requests answered from the negative cache (remembered failures).", st.NegativeHits)
		gauge("crsharing_cache_negative_entries", "Remembered failures currently held (expiry is lazy).", float64(st.NegativeEntries))
	}
	if jm != nil {
		st := jm.Stats()
		gauge("crsharing_jobs_queue_depth", "Jobs waiting in the queue.", float64(st.QueueDepth))
		gauge("crsharing_jobs_queue_capacity", "Bound of the job queue.", float64(st.QueueCapacity))
		gauge("crsharing_jobs_running", "Jobs currently held by workers.", float64(st.Running))
		gauge("crsharing_jobs_workers", "Size of the job worker pool.", float64(st.Workers))
		counter("crsharing_jobs_submitted_total", "Jobs accepted into the queue.", st.Submitted)
		counter("crsharing_jobs_done_total", "Jobs completed with a valid evaluation.", st.Done)
		counter("crsharing_jobs_failed_total", "Jobs that errored or exceeded their budget.", st.Failed)
		counter("crsharing_jobs_cancelled_total", "Jobs cancelled by clients or shutdown.", st.Cancelled)
	}
}
