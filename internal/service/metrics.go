package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"crsharing/internal/jobs"
	"crsharing/internal/solver"
)

// metrics holds the server's counters. Everything is atomic: handlers run
// concurrently and /metrics reads while they write.
type metrics struct {
	requestsSolve   atomic.Uint64
	requestsBatch   atomic.Uint64
	requestsJobs    atomic.Uint64
	requestsOther   atomic.Uint64
	errorsTotal     atomic.Uint64
	solvesTotal     atomic.Uint64 // fresh solves performed (source=solve)
	cacheServed     atomic.Uint64 // requests answered without a fresh solve
	batchInstances  atomic.Uint64
	batchCancelled  atomic.Uint64
	solveInflight   atomic.Int64
	deadlineExpired atomic.Uint64
}

// write renders the counters (and the cache's and job manager's, when
// present) in the Prometheus text exposition format (version 0.0.4): every
// sample is preceded by its # HELP and # TYPE lines, which also makes the
// endpoint perfectly readable with curl.
func (m *metrics) write(w io.Writer, cache *solver.Cache, jm *jobs.Manager, uptime time.Duration) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("crsharing_requests_solve_total", "POST /v1/solve requests.", m.requestsSolve.Load())
	counter("crsharing_requests_batch_total", "POST /v1/batch-solve requests.", m.requestsBatch.Load())
	counter("crsharing_requests_jobs_total", "Requests to the /v1/jobs endpoints.", m.requestsJobs.Load())
	counter("crsharing_requests_other_total", "Requests to the remaining endpoints.", m.requestsOther.Load())
	counter("crsharing_errors_total", "Requests answered with a non-2xx status.", m.errorsTotal.Load())
	counter("crsharing_solves_total", "Fresh solver invocations (cache misses).", m.solvesTotal.Load())
	counter("crsharing_cache_served_total", "Solve requests answered from the cache or an in-flight solve.", m.cacheServed.Load())
	counter("crsharing_batch_instances_total", "Instances received in batch requests.", m.batchInstances.Load())
	counter("crsharing_batch_cancelled_total", "Batch instances never attempted because the deadline expired.", m.batchCancelled.Load())
	counter("crsharing_deadline_expired_total", "Solve requests that hit their deadline.", m.deadlineExpired.Load())
	gauge("crsharing_solve_inflight", "Solves currently running.", float64(m.solveInflight.Load()))
	gauge("crsharing_uptime_seconds", "Seconds since the server started.", uptime.Seconds())
	if cache != nil {
		st := cache.Stats()
		counter("crsharing_cache_hits_total", "Memo cache hits.", st.Hits)
		counter("crsharing_cache_misses_total", "Memo cache misses.", st.Misses)
		counter("crsharing_cache_coalesced_total", "Requests coalesced onto an identical in-flight solve.", st.Coalesced)
		counter("crsharing_cache_evictions_total", "LRU evictions.", st.Evictions)
		gauge("crsharing_cache_entries", "Evaluations currently cached.", float64(st.Entries))
	}
	if jm != nil {
		st := jm.Stats()
		gauge("crsharing_jobs_queue_depth", "Jobs waiting in the queue.", float64(st.QueueDepth))
		gauge("crsharing_jobs_queue_capacity", "Bound of the job queue.", float64(st.QueueCapacity))
		gauge("crsharing_jobs_running", "Jobs currently held by workers.", float64(st.Running))
		gauge("crsharing_jobs_workers", "Size of the job worker pool.", float64(st.Workers))
		counter("crsharing_jobs_submitted_total", "Jobs accepted into the queue.", st.Submitted)
		counter("crsharing_jobs_done_total", "Jobs completed with a valid evaluation.", st.Done)
		counter("crsharing_jobs_failed_total", "Jobs that errored or exceeded their budget.", st.Failed)
		counter("crsharing_jobs_cancelled_total", "Jobs cancelled by clients or shutdown.", st.Cancelled)
	}
}
