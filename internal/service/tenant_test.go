package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"crsharing/internal/core"
	"crsharing/internal/engine"
	"crsharing/internal/jobs"
	"crsharing/internal/solver"
)

// postJSONWith is postJSON plus request headers (tenant identity lives in
// headers, not the body).
func postJSONWith(t *testing.T, url string, headers map[string]string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestTenantIdentityExtraction covers the resolution order: X-Tenant header,
// then API key (when keys are configured), then the anonymous default — and
// the rejection of malformed names and unknown keys.
func TestTenantIdentityExtraction(t *testing.T) {
	stub := &stubSolver{name: "stub"}
	srv, ts := newTestServer(t, stub, func(cfg *Config) {
		cfg.APIKeys = map[string]string{"sekrit": "gold"}
	})

	cases := []struct {
		name    string
		headers map[string]string
		status  int
		tenant  string // expected per-tenant accounting key, "" = none
	}{
		{"anonymous", nil, http.StatusOK, engine.DefaultTenant},
		{"header", map[string]string{TenantHeader: "alpha"}, http.StatusOK, "alpha"},
		{"api key", map[string]string{APIKeyHeader: "sekrit"}, http.StatusOK, "gold"},
		{"bearer", map[string]string{"Authorization": "Bearer sekrit"}, http.StatusOK, "gold"},
		{"header wins over key", map[string]string{TenantHeader: "beta", APIKeyHeader: "sekrit"}, http.StatusOK, "beta"},
		{"bad name", map[string]string{TenantHeader: "no spaces allowed"}, http.StatusBadRequest, ""},
		{"unknown key", map[string]string{APIKeyHeader: "wrong"}, http.StatusUnauthorized, ""},
	}
	for _, tc := range cases {
		resp, body := postJSONWith(t, ts.URL+"/v1/solve", tc.headers, SolveRequest{Instance: testInstance()})
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		if tc.tenant != "" {
			if _, ok := srv.Engine().Snapshot().Tenants[tc.tenant]; !ok {
				t.Fatalf("%s: tenant %q missing from engine accounting", tc.name, tc.tenant)
			}
		}
	}
	// With no APIKeys configured, keys are ignored rather than rejected.
	_, ts2 := newTestServer(t, &stubSolver{name: "stub"}, nil)
	if resp, body := postJSONWith(t, ts2.URL+"/v1/solve", map[string]string{APIKeyHeader: "whatever"}, SolveRequest{Instance: testInstance()}); resp.StatusCode != http.StatusOK {
		t.Fatalf("keyless server rejected an ignored key: %d (%s)", resp.StatusCode, body)
	}
}

func TestParseAPIKeys(t *testing.T) {
	got, err := ParseAPIKeys("sekrit=gold, other=free ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["sekrit"] != "gold" || got["other"] != "free" {
		t.Fatalf("ParseAPIKeys = %v", got)
	}
	for _, bad := range []string{"", "nokey", "=tenant", "k=bad name", "k=a,k=b"} {
		if _, err := ParseAPIKeys(bad); err == nil {
			t.Fatalf("ParseAPIKeys(%q) accepted", bad)
		}
	}
}

// shedServer builds a server whose "busy" tenant has a one-deep queue over a
// single admission slot, occupies the slot with a blocked solve and fills the
// queue, so the next "busy" request must shed. Returns the teardown that
// unblocks the solver.
func shedServer(t *testing.T) (*Server, string, func()) {
	t.Helper()
	stub := &stubSolver{name: "stub", block: make(chan struct{})}
	srv, ts := newTestServer(t, stub, func(cfg *Config) {
		cfg.MaxConcurrent = 1
		cfg.Tenants = map[string]engine.TenantConfig{"busy": {MaxQueued: 1}}
		cfg.ShedRetryAfter = 2 * time.Second
	})
	insts := []*core.Instance{
		core.NewInstance([]float64{0.2, 0.4}),
		core.NewInstance([]float64{0.3, 0.5}),
	}
	var once sync.Once
	release := func() { once.Do(func() { close(stub.block) }) }
	for i, inst := range insts {
		go func(inst *core.Instance) {
			postJSONWith(t, ts.URL+"/v1/solve", map[string]string{TenantHeader: "busy"}, SolveRequest{Instance: inst, Timeout: "8s"})
		}(inst)
		deadline := time.Now().Add(5 * time.Second)
		for {
			snap := srv.Engine().Snapshot()
			if (i == 0 && snap.Inflight > 0) || (i == 1 && snap.Waiting > 0) {
				break
			}
			if time.Now().After(deadline) {
				release()
				t.Fatalf("request %d never reached the engine", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return srv, ts.URL, release
}

// TestSolveShedReturns429 checks the HTTP mapping of a quota shed: status
// 429, a Retry-After header carrying the configured back-off, and the shed
// counted apart from errors.
func TestSolveShedReturns429(t *testing.T) {
	srv, url, release := shedServer(t)
	defer release()

	resp, body := postJSONWith(t, url+"/v1/solve", map[string]string{TenantHeader: "busy"},
		SolveRequest{Instance: core.NewInstance([]float64{0.6, 0.8})})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra != 2 {
		t.Fatalf("Retry-After = %q, want the configured 2 seconds", resp.Header.Get("Retry-After"))
	}
	var apiErr ErrorResponse
	if json.Unmarshal(body, &apiErr) != nil || apiErr.Error == "" {
		t.Fatalf("429 body is not an ErrorResponse: %s", body)
	}
	snap := srv.Engine().Snapshot()
	if snap.Shed != 1 {
		t.Fatalf("engine shed counter = %d, want 1", snap.Shed)
	}
	if ts := snap.Tenants["busy"]; ts.Shed != 1 || ts.Errors != 0 {
		t.Fatalf("busy tenant counters: %+v, want shed=1 errors=0", ts)
	}
	if srv.metrics.shedTotal.Load() != 1 {
		t.Fatalf("server shed counter = %d, want 1", srv.metrics.shedTotal.Load())
	}
	// An unrelated tenant is not refused: it queues (and eventually runs once
	// the blocked solve is released).
	otherDone := make(chan int, 1)
	go func() {
		resp, _ := postJSONWith(t, url+"/v1/solve", map[string]string{TenantHeader: "idle"},
			SolveRequest{Instance: core.NewInstance([]float64{0.1, 0.9}), Timeout: "8s"})
		otherDone <- resp.StatusCode
	}()
	time.Sleep(20 * time.Millisecond)
	release()
	if status := <-otherDone; status != http.StatusOK {
		t.Fatalf("idle tenant got %d during busy's shed, want 200", status)
	}
}

// TestBatchFullyShedReturns429 checks the batch mapping: when every instance
// of a batch is refused over quota the response is 429 with Retry-After and
// the per-result shed flags set.
func TestBatchFullyShedReturns429(t *testing.T) {
	_, url, release := shedServer(t)
	defer release()

	resp, body := postJSONWith(t, url+"/v1/batch-solve", map[string]string{TenantHeader: "busy"}, BatchRequest{
		Instances: []*core.Instance{
			core.NewInstance([]float64{0.15, 0.35}),
			core.NewInstance([]float64{0.25, 0.45}),
		},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var batch BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatalf("batch 429 body: %v (%s)", err, body)
	}
	if batch.Shed != 2 || batch.Count != 2 {
		t.Fatalf("batch shed accounting: %+v", batch)
	}
	for _, res := range batch.Results {
		if !res.Shed || res.Error == "" {
			t.Fatalf("shed result not flagged: %+v", res)
		}
	}
}

// TestJobSubmitShedReturns429 checks the async surface: a tenant whose
// pending-job quota is exhausted gets 429 + Retry-After on submit.
func TestJobSubmitShedReturns429(t *testing.T) {
	stub := &stubSolver{name: "stub", block: make(chan struct{})}
	defer close(stub.block)
	reg := solver.NewRegistry()
	reg.Register("stub", func() solver.Solver { return stub })
	eng, err := engine.New(engine.Config{
		Registry:       reg,
		Cache:          solver.NewCache(4, 64),
		DefaultSolver:  "stub",
		Tenants:        map[string]engine.TenantConfig{"capped": {MaxQueued: 2}},
		ShedRetryAfter: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	manager, err := jobs.New(jobs.Config{Engine: eng, Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		manager.Close(ctx)
	})
	srv, err := New(Config{Engine: eng, Jobs: manager, Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// The first submission is picked up by the single worker (where it
	// blocks inside the solver) so it no longer counts as pending; the next
	// two fill the tenant's pending quota of 2.
	submit := func(i int) (*http.Response, []byte) {
		inst := core.NewInstance([]float64{float64(i+1) / 10, 0.5})
		return postJSONWith(t, ts.URL+"/v1/jobs", map[string]string{TenantHeader: "capped"}, JobRequest{Instance: inst})
	}
	if resp, body := submit(0); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d (%s)", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for manager.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no job started running")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i <= 2; i++ {
		if resp, body := submit(i); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp, body := submit(3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want the configured 2 seconds", resp.Header.Get("Retry-After"))
	}
}
