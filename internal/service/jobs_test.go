package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/jobs"
	"crsharing/internal/progress"
	"crsharing/internal/solver"

	"context"
	"net/http/httptest"
)

// slowSolver reports a stream of improving incumbents while it "searches"
// and needs well over the synchronous deadline to finish. Successful solves
// delegate to greedy-balance so the schedule is valid.
type slowSolver struct {
	ticks int
	tick  time.Duration
}

func (s *slowSolver) Name() string { return "slow" }

func (s *slowSolver) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, solver.Stats, error) {
	progress.Report(ctx, progress.Incumbent{Solver: s.Name(), Makespan: 100})
	for i := 0; i < s.ticks; i++ {
		select {
		case <-time.After(s.tick):
			progress.Report(ctx, progress.Incumbent{Solver: s.Name(), Makespan: 99 - i})
		case <-ctx.Done():
			return nil, solver.Stats{Solver: s.Name()}, ctx.Err()
		}
	}
	sched, err := greedybalance.New().Schedule(inst)
	return sched, solver.Stats{Solver: s.Name(), Elapsed: time.Duration(s.ticks) * s.tick}, err
}

// newJobsServer wires a registry serving the given solver (as "slow" and
// default), a shared cache, a jobs manager over an optional store, and an
// httptest frontend with a deliberately tiny synchronous deadline.
func newJobsServer(t *testing.T, sv solver.Solver, store jobs.Store) (*jobs.Manager, *httptest.Server) {
	t.Helper()
	reg := solver.NewRegistry()
	reg.Register(sv.Name(), func() solver.Solver { return sv })
	cache := solver.NewCache(4, 64)
	manager, err := jobs.New(jobs.Config{
		Registry:       reg,
		Cache:          cache,
		DefaultSolver:  sv.Name(),
		Workers:        2,
		QueueDepth:     8,
		DefaultTimeout: 30 * time.Second,
		Store:          store,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		manager.Close(ctx)
	})
	srv, err := New(Config{
		Registry:       reg,
		Cache:          cache,
		DefaultSolver:  sv.Name(),
		DefaultTimeout: 30 * time.Millisecond,
		MaxTimeout:     30 * time.Millisecond,
		Jobs:           manager,
		Version:        "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return manager, ts
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data jobs.Event
}

// readSSE consumes the stream until the server closes it (terminal state)
// and returns the parsed events.
func readSSE(t *testing.T, url string) []sseEvent {
	t.Helper()
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		}
	}
	return events
}

// TestJobOutlivesSyncDeadline is the acceptance path: a solve that the
// synchronous endpoint rejects with 504 completes through POST /v1/jobs,
// the SSE stream carries incumbent updates, and GET /v1/jobs/{id} returns
// the finished schedule.
func TestJobOutlivesSyncDeadline(t *testing.T) {
	sv := &slowSolver{ticks: 8, tick: 100 * time.Millisecond} // ~800ms total, ~25x the sync deadline
	_, ts := newJobsServer(t, sv, nil)

	// Synchronously the instance is unservable: the 30ms deadline expires.
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: testInstance()})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("sync solve should time out, got %d: %s", resp.StatusCode, body)
	}

	// Asynchronously it is accepted immediately...
	resp, body = postJSON(t, ts.URL+"/v1/jobs", JobRequest{Instance: testInstance()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit status %d: %s", resp.StatusCode, body)
	}
	var submitted jobs.Snapshot
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	if submitted.ID == "" || submitted.State.Terminal() {
		t.Fatalf("bad submit snapshot: %+v", submitted)
	}

	// ...streams incumbents over SSE until done...
	events := readSSE(t, ts.URL+"/v1/jobs/"+submitted.ID+"/events")
	var incumbents int
	var sawTerminal bool
	for _, ev := range events {
		switch ev.name {
		case string(jobs.EventIncumbent):
			if ev.data.Incumbent == nil || ev.data.Incumbent.Makespan <= 0 {
				t.Fatalf("malformed incumbent event: %+v", ev)
			}
			incumbents++
		case string(jobs.EventState):
			if ev.data.State.Terminal() {
				sawTerminal = true
			}
		}
	}
	if incumbents < 1 {
		t.Fatalf("want at least one incumbent update on the stream, got %+v", events)
	}
	if !sawTerminal {
		t.Fatalf("stream ended without a terminal state event: %+v", events)
	}

	// ...and the record now carries the finished schedule.
	final := getJob(t, ts, submitted.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("job not done: %+v", final)
	}
	if final.Result == nil || final.Result.Schedule == nil || final.Result.Makespan <= 0 {
		t.Fatalf("missing result schedule: %+v", final.Result)
	}
	if len(final.Incumbents) == 0 {
		t.Fatalf("record lost its incumbents: %+v", final)
	}
}

func getJob(t *testing.T, ts *httptest.Server, id string) jobs.Snapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job status %d", resp.StatusCode)
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestJobEndpointsErrors(t *testing.T) {
	sv := &slowSolver{ticks: 1, tick: time.Millisecond}
	_, ts := newJobsServer(t, sv, nil)

	for _, tc := range []struct {
		method, path string
		status       int
	}{
		{"GET", "/v1/jobs/doesnotexist", http.StatusNotFound},
		{"DELETE", "/v1/jobs/doesnotexist", http.StatusNotFound},
		{"GET", "/v1/jobs/doesnotexist/events", http.StatusNotFound},
		{"GET", "/v1/jobs?state=bogus", http.StatusBadRequest},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
	}

	// Bad bodies.
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", JobRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing instance: status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", JobRequest{Instance: testInstance(), Timeout: "yesterday"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout: status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", JobRequest{Instance: testInstance(), Solver: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown solver: status %d", resp.StatusCode)
	}
}

func TestJobCancelAndList(t *testing.T) {
	sv := &slowSolver{ticks: 1000, tick: 50 * time.Millisecond} // effectively forever
	_, ts := newJobsServer(t, sv, nil)

	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Instance: testInstance()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+snap.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", dresp.StatusCode)
	}

	// The cancellation lands once the solver polls its context.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur := getJob(t, ts, snap.ID)
		if cur.State == jobs.StateCancelled {
			break
		}
		if !cur.State.Terminal() && time.Now().After(deadline) {
			t.Fatalf("job never cancelled: %+v", cur)
		}
		if cur.State.Terminal() && cur.State != jobs.StateCancelled {
			t.Fatalf("job ended %q, want cancelled", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	lresp, err := http.Get(ts.URL + "/v1/jobs?state=cancelled")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list JobListResponse
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 1 || len(list.Jobs) != 1 || list.Jobs[0].ID != snap.ID {
		t.Fatalf("cancelled list wrong: %+v", list)
	}
	lresp2, err := http.Get(ts.URL + "/v1/jobs?state=done")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp2.Body.Close()
	var done JobListResponse
	if err := json.NewDecoder(lresp2.Body).Decode(&done); err != nil {
		t.Fatal(err)
	}
	if done.Count != 0 {
		t.Fatalf("done list should be empty: %+v", done)
	}
}

// TestJobRestartServedFromStore is the service-level restart path: a second
// server over the same store answers GET /v1/jobs/{id} with the stored
// result, with no solver involved.
func TestJobRestartServedFromStore(t *testing.T) {
	store, err := jobs.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sv := &slowSolver{ticks: 2, tick: 10 * time.Millisecond}
	manager, ts := newJobsServer(t, sv, store)

	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Instance: testInstance()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := manager.Wait(ctx, snap.ID); err != nil {
		t.Fatal(err)
	}
	if err := manager.Close(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// Restart: fresh cache, fresh manager, fresh server — same store. A
	// solver that fails on contact proves nothing re-solves.
	reg := solver.NewRegistry()
	reg.Register("slow", func() solver.Solver { return failSolver{} })
	manager2, err := jobs.New(jobs.Config{Registry: reg, DefaultSolver: "slow", Workers: 1, QueueDepth: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer manager2.Close(ctx)
	srv2, err := New(Config{Registry: reg, DefaultSolver: "slow", Jobs: manager2, Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	restored := getJob(t, ts2, snap.ID)
	if restored.State != jobs.StateDone || restored.Result == nil || restored.Result.Schedule == nil {
		t.Fatalf("restored job not served from store: %+v", restored)
	}
}

// TestShutdownEndsOpenSSEStreams pins the graceful-shutdown contract: an
// open /v1/jobs/{id}/events subscription on a long-running job must not pin
// Run to its full grace budget.
func TestShutdownEndsOpenSSEStreams(t *testing.T) {
	sv := &slowSolver{ticks: 1000, tick: 50 * time.Millisecond} // effectively forever
	manager, _ := newJobsServer(t, sv, nil)

	reg := solver.NewRegistry()
	reg.Register("slow", func() solver.Solver { return sv })
	srv, err := New(Config{Registry: reg, DefaultSolver: "slow", Jobs: manager, Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx, addr, 30*time.Second) }()

	// Wait for the listener, submit a never-ending job, open its stream.
	var snap jobs.Snapshot
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json",
			strings.NewReader(`{"instance": {"procs": [[{"req": 0.5, "size": 1}]]}}`))
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit status %d: %s", resp.StatusCode, body)
			}
			if err := json.Unmarshal(body, &snap); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	streamOpen := make(chan struct{})
	streamClosed := make(chan struct{})
	go func() {
		resp, err := http.Get("http://" + addr + "/v1/jobs/" + snap.ID + "/events")
		if err != nil {
			close(streamOpen)
			close(streamClosed)
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 1)
		if _, err := resp.Body.Read(buf); err == nil {
			close(streamOpen) // first byte of the initial state event arrived
		} else {
			close(streamOpen)
		}
		io.Copy(io.Discard, resp.Body)
		close(streamClosed)
	}()
	<-streamOpen

	// Shut down: Run must return well before the 30s grace budget even
	// though the SSE stream (and the job) would otherwise run forever.
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown blocked on the open SSE stream")
	}
	select {
	case <-streamClosed:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream not closed by shutdown")
	}
}

// failSolver errors on every call; restart tests use it to prove stored
// results are served without re-solving.
type failSolver struct{}

func (failSolver) Name() string { return "slow" }

func (failSolver) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, solver.Stats, error) {
	return nil, solver.Stats{Solver: "slow"}, fmt.Errorf("must not be called")
}
