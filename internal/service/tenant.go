package service

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"crsharing/internal/engine"
)

// TenantHeader names the request header carrying the caller's tenant
// directly. Requests without it (and without an API key) run as
// engine.DefaultTenant.
const TenantHeader = "X-Tenant"

// APIKeyHeader is the alternative to a Bearer token for key-mapped tenants.
const APIKeyHeader = "X-API-Key"

// tenantFor resolves a request's tenant identity, in order: the X-Tenant
// header; an API key (X-API-Key header or "Authorization: Bearer <key>")
// mapped through Config.APIKeys; the default tenant for anonymous requests.
// On failure it returns the HTTP status to answer with: 400 for a malformed
// tenant name (names become scheduler map keys and metrics labels, so they
// are restricted), 401 for an unknown key on a server that has keys
// configured.
func (s *Server) tenantFor(r *http.Request) (string, int, error) {
	if name := r.Header.Get(TenantHeader); name != "" {
		if !validTenantName(name) {
			return "", http.StatusBadRequest,
				fmt.Errorf("invalid tenant %q: want 1-64 characters of [A-Za-z0-9._-]", name)
		}
		return name, 0, nil
	}
	key := r.Header.Get(APIKeyHeader)
	if key == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	if key != "" && len(s.cfg.APIKeys) > 0 {
		tenant, ok := s.cfg.APIKeys[key]
		if !ok {
			return "", http.StatusUnauthorized, errors.New("unknown API key")
		}
		return tenant, 0, nil
	}
	return engine.DefaultTenant, 0, nil
}

func validTenantName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return true
}

// ParseAPIKeys parses a comma-separated "key=tenant" mapping (the crserved
// -api-keys flag). Tenant names face the same restrictions as the X-Tenant
// header; duplicate keys are rejected rather than silently last-one-wins.
func ParseAPIKeys(spec string) (map[string]string, error) {
	out := make(map[string]string)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		key, tenant, ok := strings.Cut(entry, "=")
		key, tenant = strings.TrimSpace(key), strings.TrimSpace(tenant)
		if !ok || key == "" {
			return nil, fmt.Errorf("service: api key spec %q: want key=tenant", entry)
		}
		if !validTenantName(tenant) {
			return nil, fmt.Errorf("service: api key spec %q: invalid tenant name", entry)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("service: api key spec: duplicate key %q", key)
		}
		out[key] = tenant
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("service: api key spec %q: no keys", spec)
	}
	return out, nil
}

// failShed answers a quota rejection: HTTP 429 with a Retry-After header in
// whole seconds (rounded up so a sub-second hint never renders as 0).
func (s *Server) failShed(w http.ResponseWriter, shed *engine.ErrShed) {
	secs := int(math.Ceil(shed.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.metrics.shedTotal.Add(1)
	s.fail(w, http.StatusTooManyRequests, shed)
}
