package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"crsharing/internal/engine"
	"crsharing/internal/jobs"
	"crsharing/internal/solver"
)

// TestMetricsExpositionFormat pins the /metrics contract: the Prometheus
// text exposition content type (version 0.0.4) and, for every sample, a
// preceding # HELP and # TYPE line declaring a valid metric type. Histogram
// samples (the engine's solve duration and search-size distributions) are
// declared under their base name and expose cumulative le-labelled buckets
// plus _sum and _count. The job gauges must be present when a job manager
// is configured.
func TestMetricsExpositionFormat(t *testing.T) {
	reg := solver.NewRegistry()
	stub := &stubSolver{name: "stub"}
	reg.Register("stub", func() solver.Solver { return stub })
	eng, err := engine.New(engine.Config{Registry: reg, Cache: solver.NewCache(4, 64), DefaultSolver: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	manager, err := jobs.New(jobs.Config{Engine: eng, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		manager.Close(ctx)
	})
	srv, err := New(Config{Engine: eng, Jobs: manager, Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Generate some traffic so the counters are live, including a job.
	if resp, _ := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: testInstance()}); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve failed: %d", resp.StatusCode)
	}
	snap, err := manager.Submit(jobs.Request{Instance: testInstance()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := manager.Wait(ctx, snap.ID); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q, want the Prometheus 0.0.4 text format", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	help := map[string]bool{}
	typed := map[string]bool{}
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, doc, ok := strings.Cut(rest, " ")
			if !ok || doc == "" {
				t.Fatalf("HELP line without docstring: %q", line)
			}
			help[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || (kind != "counter" && kind != "gauge" && kind != "histogram") {
				t.Fatalf("TYPE line with invalid type: %q", line)
			}
			typed[name] = true
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unexpected comment line: %q", line)
		case line == "":
			t.Fatal("blank line in exposition output")
		default:
			name, value, ok := strings.Cut(line, " ")
			if !ok {
				t.Fatalf("malformed sample line: %q", line)
			}
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				t.Fatalf("sample %q has non-numeric value: %v", line, err)
			}
			// Histogram series samples are declared under the base name:
			// name_bucket{le="..."}, name_sum and name_count all belong to
			// the histogram declared as "name".
			base := name
			if idx := strings.IndexByte(base, '{'); idx >= 0 {
				base = base[:idx]
			}
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if trimmed := strings.TrimSuffix(base, suffix); trimmed != base && typed[trimmed] {
					base = trimmed
					break
				}
			}
			if !help[base] || !typed[base] {
				t.Fatalf("sample %q not preceded by its HELP and TYPE lines", name)
			}
			samples[name] = v
		}
	}

	for _, want := range []string{
		"crsharing_requests_solve_total",
		"crsharing_requests_shed_total",
		"crsharing_solves_total",
		"crsharing_cache_entries",
		"crsharing_cache_negative_hits_total",
		"crsharing_cache_negative_entries",
		"crsharing_engine_shed_total",
		"crsharing_engine_source_negative_total",
		`crsharing_tenant_requests_total{tenant="default"}`,
		`crsharing_tenant_shed_total{tenant="default"}`,
		`crsharing_tenant_errors_total{tenant="default"}`,
		`crsharing_tenant_queue_wait_seconds_total{tenant="default"}`,
		`crsharing_tenant_inflight{tenant="default"}`,
		`crsharing_tenant_queued{tenant="default"}`,
		"crsharing_engine_nodes_total",
		"crsharing_engine_incumbents_total",
		"crsharing_engine_solve_duration_seconds_sum",
		"crsharing_engine_solve_duration_seconds_count",
		"crsharing_engine_solve_nodes_sum",
		"crsharing_engine_solve_nodes_count",
		"crsharing_jobs_queue_depth",
		"crsharing_jobs_queue_capacity",
		"crsharing_jobs_running",
		"crsharing_jobs_workers",
		"crsharing_jobs_submitted_total",
		"crsharing_jobs_done_total",
		"crsharing_jobs_failed_total",
		"crsharing_jobs_cancelled_total",
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("metric %s missing from /metrics", want)
		}
	}
	if samples["crsharing_jobs_submitted_total"] != 1 || samples["crsharing_jobs_done_total"] != 1 {
		t.Fatalf("job counters wrong: submitted=%v done=%v",
			samples["crsharing_jobs_submitted_total"], samples["crsharing_jobs_done_total"])
	}
}
