package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/engine"
	"crsharing/internal/jobs"
	"crsharing/internal/solver"
)

// gaugeSolver records its concurrency high-water mark and blocks until
// released, delegating to greedy-balance for the actual schedule.
type gaugeSolver struct {
	cur, max atomic.Int64
	calls    atomic.Int64
	block    chan struct{}
}

func (s *gaugeSolver) Name() string { return "gauge" }

func (s *gaugeSolver) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, solver.Stats, error) {
	s.calls.Add(1)
	cur := s.cur.Add(1)
	defer s.cur.Add(-1)
	for {
		max := s.max.Load()
		if cur <= max || s.max.CompareAndSwap(max, cur) {
			break
		}
	}
	if s.block != nil {
		select {
		case <-s.block:
		case <-ctx.Done():
			return nil, solver.Stats{Solver: "gauge"}, ctx.Err()
		}
	}
	sched, err := greedybalance.New().Schedule(inst)
	return sched, solver.Stats{Solver: "gauge", Elapsed: time.Microsecond}, err
}

// TestSharedAdmissionAcrossAllSurfaces is the regression for the admission
// gap this refactor closes: before internal/engine, the concurrency
// semaphore lived in the HTTP layer, so batch shards went through it but
// job workers did not. Now a saturating batch plus a full job queue plus
// synchronous solves, all in flight at once, can never push the solver's
// concurrency high-water mark past the engine's MaxConcurrent — and the
// sync solves still complete (they queue FIFO; they are not starved).
func TestSharedAdmissionAcrossAllSurfaces(t *testing.T) {
	const cap = 2
	stub := &gaugeSolver{block: make(chan struct{})}
	reg := solver.NewRegistry()
	reg.Register("gauge", func() solver.Solver { return stub })
	eng, err := engine.New(engine.Config{
		Registry:       reg,
		Cache:          solver.NewCache(4, 64),
		DefaultSolver:  "gauge",
		MaxConcurrent:  cap,
		DefaultTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	manager, err := jobs.New(jobs.Config{Engine: eng, Workers: 3, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		manager.Close(ctx)
	})
	srv, err := New(Config{Engine: eng, Jobs: manager, Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Distinct fingerprints everywhere so the singleflight cache cannot
	// collapse the load.
	mk := func(i int) *core.Instance {
		return core.NewInstance([]float64{float64(i+1) / 32, 0.5}, []float64{0.25})
	}

	var wg sync.WaitGroup
	// A saturating batch of 8 instances...
	wg.Add(1)
	go func() {
		defer wg.Done()
		insts := make([]*core.Instance, 8)
		for i := range insts {
			insts[i] = mk(i)
		}
		resp, body := postJSON(t, ts.URL+"/v1/batch-solve", BatchRequest{Instances: insts})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("batch status %d: %s", resp.StatusCode, body)
		}
	}()
	// ...plus three async jobs...
	jobIDs := make([]string, 3)
	for i := range jobIDs {
		snap, err := manager.Submit(jobs.Request{Instance: mk(8 + i)})
		if err != nil {
			t.Fatal(err)
		}
		jobIDs[i] = snap.ID
	}
	// ...plus two synchronous solves.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: mk(11 + i)})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("sync solve status %d: %s", resp.StatusCode, body)
			}
		}(i)
	}

	// Wait for the cap to be reached, hold a beat to catch overshoot, then
	// release everything.
	deadline := time.Now().Add(5 * time.Second)
	for stub.cur.Load() < cap && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(25 * time.Millisecond)
	close(stub.block)
	wg.Wait()
	for _, id := range jobIDs {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		snap, err := manager.Wait(ctx, id)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != jobs.StateDone {
			t.Fatalf("job %s ended %s: %s", id, snap.State, snap.Error)
		}
	}

	if got := stub.max.Load(); got > cap {
		t.Fatalf("solver concurrency reached %d with batch+jobs+sync in flight, admission cap is %d", got, cap)
	}
	if got := stub.max.Load(); got != cap {
		t.Fatalf("solver concurrency peaked at %d, expected the cap %d to be fully used", got, cap)
	}
}
