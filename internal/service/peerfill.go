package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
)

// Fleet-routing headers. A crrouter in front of several crsharing backends
// partitions the fingerprint space: every fingerprint has exactly one owning
// backend whose memo cache is authoritative for it. Routing normally sends a
// request straight to its owner, but during membership changes (a draining
// backend still owns its warm keys; a freshly admitted backend owns keys it
// has never seen) the receiving backend and the owning backend differ. The
// two headers below let the fleet still behave as one cache in that window.
const (
	// OwnerHeader carries the base URL of the backend that owns the request's
	// fingerprint. The router sets it only when it routed the request to a
	// NON-owner; a backend that misses its local cache on such a request
	// forwards the solve to the owner instead of re-solving from scratch.
	OwnerHeader = "X-CRFleet-Owner"
	// FillHeader marks a solve forwarded by a peer backend (a "cache fill").
	// The receiving owner answers it from its warm cache (or solves it once,
	// on everyone's behalf) and counts it as peer-fill work rather than a
	// client request, so a forwarded solve is attributed once fleet-wide.
	// Fills never carry OwnerHeader, which makes forwarding loop-free by
	// construction.
	FillHeader = "X-CRFleet-Fill"
)

// peerClient returns the HTTP client used for peer cache fills.
func (s *Server) peerClient() *http.Client {
	if s.cfg.PeerClient != nil {
		return s.cfg.PeerClient
	}
	return http.DefaultClient
}

// forwardFill relays a cache-miss solve to the owning peer backend and, on
// success, streams the owner's response through verbatim (reporting true: the
// request is finished). Any failure — transport error, non-2xx — reports
// false and the caller falls back to solving locally, so a dead or draining
// owner degrades to a cold-cache solve, never a failed request.
func (s *Server) forwardFill(w http.ResponseWriter, r *http.Request, owner, tenant string, req *SolveRequest) bool {
	body, err := json.Marshal(req)
	if err != nil {
		s.metrics.peerFillErrors.Add(1)
		return false
	}
	preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		s.metrics.peerFillErrors.Add(1)
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(FillHeader, "1") // and no OwnerHeader: fills never chain
	if tenant != "" {
		preq.Header.Set(TenantHeader, tenant)
	}
	resp, err := s.peerClient().Do(preq)
	if err != nil {
		s.metrics.peerFillErrors.Add(1)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		io.Copy(io.Discard, resp.Body)
		s.metrics.peerFillErrors.Add(1)
		return false
	}
	s.metrics.peerFillForwarded.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}
