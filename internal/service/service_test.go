package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/solver"
)

// stubSolver counts Solve calls, optionally blocks until released or the
// context expires, and records whether the context carried a deadline. On
// success it delegates to greedy-balance so the schedule is valid.
type stubSolver struct {
	name        string
	calls       atomic.Int64
	sawDeadline atomic.Bool
	block       chan struct{} // when non-nil, Solve waits for close or ctx
}

func (s *stubSolver) Name() string { return s.name }

func (s *stubSolver) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, solver.Stats, error) {
	s.calls.Add(1)
	if _, ok := ctx.Deadline(); ok {
		s.sawDeadline.Store(true)
	}
	if s.block != nil {
		select {
		case <-s.block:
		case <-ctx.Done():
			return nil, solver.Stats{Solver: s.name}, ctx.Err()
		}
	}
	sched, err := greedybalance.New().Schedule(inst)
	return sched, solver.Stats{Solver: s.name, Elapsed: time.Microsecond}, err
}

// newTestServer builds a Server whose registry serves the given stub under
// the name "stub" and returns it with its httptest frontend.
func newTestServer(t *testing.T, stub *stubSolver, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	reg := solver.NewRegistry()
	reg.Register("stub", func() solver.Solver { return stub })
	cfg := Config{
		Registry:       reg,
		Cache:          solver.NewCache(4, 64),
		DefaultSolver:  "stub",
		DefaultTimeout: 5 * time.Second,
		MaxTimeout:     10 * time.Second,
		Version:        "test",
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func testInstance() *core.Instance {
	return core.NewInstance([]float64{0.3, 0.7}, []float64{0.5})
}

func TestSolveCacheHitMiss(t *testing.T) {
	stub := &stubSolver{name: "stub"}
	_, ts := newTestServer(t, stub, nil)

	var first, second SolveResponse
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: testInstance()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Source != string(solver.SourceSolve) || first.Makespan <= 0 || first.Fingerprint == "" {
		t.Fatalf("first solve malformed: %+v", first)
	}

	resp, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: testInstance()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.Source != string(solver.SourceCache) {
		t.Fatalf("repeat request source = %q, want cache", second.Source)
	}
	if second.Makespan != first.Makespan || second.Fingerprint != first.Fingerprint {
		t.Fatalf("cached response diverged: %+v vs %+v", first, second)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("solver invoked %d times for identical requests, want 1", got)
	}
}

func TestSolveSingleflightDedup(t *testing.T) {
	stub := &stubSolver{name: "stub", block: make(chan struct{})}
	_, ts := newTestServer(t, stub, nil)

	const n = 8
	sources := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: testInstance()})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("call %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var sr SolveResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Error(err)
				return
			}
			sources[i] = sr.Source
		}(i)
	}
	for stub.calls.Load() == 0 { // wait until the leader is inside Solve
		time.Sleep(time.Millisecond)
	}
	close(stub.block)
	wg.Wait()

	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("solver invoked %d times for %d concurrent identical requests, want 1", got, n)
	}
	solves := 0
	for _, src := range sources {
		if src == string(solver.SourceSolve) {
			solves++
		}
	}
	if solves != 1 {
		t.Fatalf("%d responses report a fresh solve, want exactly 1 (got %v)", solves, sources)
	}
}

func TestSolveDeadlinePropagation(t *testing.T) {
	stub := &stubSolver{name: "stub", block: make(chan struct{})} // never released
	_, ts := newTestServer(t, stub, nil)

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/solve",
		SolveRequest{Instance: testInstance(), Timeout: "100ms"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s, want 504", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline not enforced: request took %s", elapsed)
	}
	if !stub.sawDeadline.Load() {
		t.Fatal("solver context carried no deadline")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("error body malformed: %s", body)
	}
}

func TestSolveRequestValidation(t *testing.T) {
	stub := &stubSolver{name: "stub"}
	_, ts := newTestServer(t, stub, nil)
	cases := []SolveRequest{
		{}, // missing instance
		{Instance: testInstance(), Solver: "no-such"},   // unknown solver
		{Instance: testInstance(), Timeout: "-3s"},      // negative timeout
		{Instance: testInstance(), Timeout: "sideways"}, // unparsable timeout
		{Instance: core.NewInstance([]float64{1.5})},    // requirement > 1
	}
	for i, req := range cases {
		if resp, body := postJSON(t, ts.URL+"/v1/solve", req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%s), want 400", i, resp.StatusCode, body)
		}
	}
	if got := stub.calls.Load(); got != 0 {
		t.Fatalf("invalid requests reached the solver %d times", got)
	}
}

func TestBatchSolveRoundTrip(t *testing.T) {
	stub := &stubSolver{name: "stub"}
	_, ts := newTestServer(t, stub, nil)

	insts := []*core.Instance{
		core.NewInstance([]float64{0.3, 0.7}),
		core.NewInstance([]float64{0.5}),
		core.NewInstance([]float64{0.9, 0.1}, []float64{0.2}),
	}
	resp, body := postJSON(t, ts.URL+"/v1/batch-solve", BatchRequest{Instances: insts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Count != 3 || br.Solved != 3 || br.Failed != 0 || br.Cancelled != 0 {
		t.Fatalf("batch summary %+v, want 3 solved", br)
	}
	for i, res := range br.Results {
		if res.Index != i || res.Makespan <= 0 || res.Error != "" {
			t.Fatalf("result %d malformed: %+v", i, res)
		}
	}
}

func TestBatchSolveDeadlineMarksCancelled(t *testing.T) {
	stub := &stubSolver{name: "stub", block: make(chan struct{})} // never released
	_, ts := newTestServer(t, stub, func(cfg *Config) { cfg.MaxConcurrent = 1 })

	insts := make([]*core.Instance, 4)
	for i := range insts {
		insts[i] = core.NewInstance([]float64{float64(i+1) / 10})
	}
	resp, body := postJSON(t, ts.URL+"/v1/batch-solve",
		BatchRequest{Instances: insts, Timeout: "100ms"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Solved != 0 {
		t.Fatalf("blocked solver cannot have solved anything: %+v", br)
	}
	if br.Cancelled == 0 {
		t.Fatalf("expected some never-attempted instances marked cancelled: %+v", br)
	}
	if br.Failed+br.Cancelled != br.Count {
		t.Fatalf("accounting broken: %+v", br)
	}
	for _, res := range br.Results {
		if res.Cancelled && res.Error == "" {
			t.Fatalf("cancelled result lacks its context error: %+v", res)
		}
	}
}

// TestBatchSolveUsesCache checks the batch path shares the memo cache with
// the single-solve path: duplicates inside one batch and overlap with a
// prior /v1/solve all collapse into one underlying solve.
func TestBatchSolveUsesCache(t *testing.T) {
	stub := &stubSolver{name: "stub"}
	_, ts := newTestServer(t, stub, nil)

	if resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: testInstance()}); resp.StatusCode != http.StatusOK {
		t.Fatalf("priming solve: %d %s", resp.StatusCode, body)
	}
	insts := []*core.Instance{testInstance(), testInstance(), testInstance()}
	resp, body := postJSON(t, ts.URL+"/v1/batch-solve", BatchRequest{Instances: insts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Solved != 3 {
		t.Fatalf("batch summary %+v, want 3 solved", br)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("solver invoked %d times across solve+batch of identical instances, want 1", got)
	}
}

// TestSolveCachedScheduleForPermutedInstance asks for the schedule of a
// permuted-processor sibling of a cached instance and checks it is valid
// for the ordering the client actually submitted.
func TestSolveCachedScheduleForPermutedInstance(t *testing.T) {
	stub := &stubSolver{name: "stub"}
	_, ts := newTestServer(t, stub, nil)

	orig := core.NewInstance([]float64{0.9, 0.9}, []float64{0.1})
	perm := core.NewInstance([]float64{0.1}, []float64{0.9, 0.9})
	if resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: orig}); resp.StatusCode != http.StatusOK {
		t.Fatalf("priming solve: %d %s", resp.StatusCode, body)
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: perm, IncludeSchedule: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Source != string(solver.SourceCache) {
		t.Fatalf("source = %q, want cache", sr.Source)
	}
	res, err := core.Execute(perm, sr.Schedule)
	if err != nil {
		t.Fatalf("cached schedule invalid for the submitted processor order: %v", err)
	}
	if !res.Finished() {
		t.Fatal("cached schedule does not finish the submitted instance's jobs")
	}
	if res.Makespan() != sr.Makespan {
		t.Fatalf("schedule makespan %d, response claims %d", res.Makespan(), sr.Makespan)
	}
}

func TestBatchSolveRejectsOversizedBatch(t *testing.T) {
	stub := &stubSolver{name: "stub"}
	_, ts := newTestServer(t, stub, func(cfg *Config) { cfg.MaxBatch = 2 })
	insts := []*core.Instance{testInstance(), testInstance(), testInstance()}
	if resp, body := postJSON(t, ts.URL+"/v1/batch-solve", BatchRequest{Instances: insts}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d (%s), want 400", resp.StatusCode, body)
	}
}

func TestSolversEndpoint(t *testing.T) {
	_, ts := newTestServer(t, &stubSolver{name: "stub"}, nil)
	resp, err := http.Get(ts.URL + "/v1/solvers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SolversResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(sr.Solvers) != 1 || sr.Solvers[0] != "stub" || sr.Default != "stub" {
		t.Fatalf("solvers response malformed: %d %+v", resp.StatusCode, sr)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	_, ts := newTestServer(t, &stubSolver{name: "stub"}, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || hr.Status != "ok" || hr.Version != "test" {
		t.Fatalf("healthz malformed: %d %+v", resp.StatusCode, hr)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	stub := &stubSolver{name: "stub"}
	_, ts := newTestServer(t, stub, nil)

	// One miss, one hit, then scrape.
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: testInstance()}); resp.StatusCode != 200 {
			t.Fatalf("solve %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"crsharing_requests_solve_total 2",
		"crsharing_solves_total 1",
		"crsharing_cache_served_total 1",
		"crsharing_cache_hits_total 1",
		"crsharing_cache_misses_total 1",
		"crsharing_cache_entries 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestRunGracefulShutdown(t *testing.T) {
	stub := &stubSolver{name: "stub"}
	srv, _ := newTestServer(t, stub, nil)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, "127.0.0.1:0", time.Second) }()
	time.Sleep(50 * time.Millisecond) // let the listener come up
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

func TestIncludeSchedule(t *testing.T) {
	stub := &stubSolver{name: "stub"}
	_, ts := newTestServer(t, stub, nil)
	resp, body := postJSON(t, ts.URL+"/v1/solve",
		SolveRequest{Instance: testInstance(), IncludeSchedule: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Schedule == nil || sr.Schedule.Steps() == 0 {
		t.Fatalf("include_schedule did not return the schedule: %s", body)
	}
	// Sanity: the schedule round-trips and executes against the instance.
	if _, err := core.Execute(testInstance(), sr.Schedule); err != nil {
		t.Fatalf("returned schedule does not execute: %v", err)
	}
}
