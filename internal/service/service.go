// Package service is the HTTP serving layer of the scheduling system: a
// long-running process that answers solve requests over JSON. It is a thin
// surface over internal/engine — the single solve pipeline that owns
// admission control, deadline clamping, memo-cache routing and telemetry —
// so the handlers here only parse requests, submit them to the engine and
// render results (including each solve's structured Telemetry).
//
// Endpoints (see README.md for the full API reference and ARCHITECTURE.md
// for the layer walkthrough):
//
//	POST   /v1/solve            solve one instance (SolveRequest -> SolveResponse)
//	POST   /v1/batch-solve      solve a JSON array of instances (engine fan-out)
//	GET    /v1/solvers          list the registered solver names
//	POST   /v1/jobs             submit an asynchronous solve (202 Accepted)
//	GET    /v1/jobs             list jobs, ?state= filters
//	GET    /v1/jobs/{id}        job record, including the result when done
//	DELETE /v1/jobs/{id}        cancel a pending or running job
//	GET    /v1/jobs/{id}/events SSE stream of state and incumbent events
//	GET    /healthz             liveness probe
//	GET    /metrics             counters and histograms in Prometheus text format
//
// Every synchronous solve runs under a per-request deadline
// (request-supplied, clamped by the engine to the configured maximum) and
// the engine's global admission budget shared with the batch path AND the
// asynchronous job workers, so a burst of heavy requests on any surface
// degrades into queueing instead of oversubscribing the machine. Instances
// that cannot finish inside any acceptable HTTP deadline go through the job
// API instead: they queue in a bounded internal/jobs worker pool, report
// incumbent solutions as they improve, and their results outlive the request
// (and, with a store, the process).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"crsharing/internal/engine"
	"crsharing/internal/jobs"
	"crsharing/internal/solver"
)

// Config configures a Server. The zero value of every optional field is
// replaced by the documented default in New.
type Config struct {
	// Engine, when non-nil, is the solve pipeline the server routes through.
	// Share one engine between the server and the job manager so every
	// surface draws from the same admission budget and memo cache. When nil,
	// New builds a private engine from the legacy fields below.
	Engine *engine.Engine
	// Registry resolves solver names; required when Engine is nil.
	Registry *solver.Registry
	// Cache is the memo cache; nil disables caching. Ignored when Engine is
	// set (the engine owns the cache).
	Cache *solver.Cache
	// DefaultSolver is used when a request names none (default "portfolio").
	// Ignored when Engine is set.
	DefaultSolver string
	// DefaultTimeout bounds solves that request no timeout (default 30s).
	// Ignored when Engine is set.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts (default 2m). Ignored when
	// Engine is set.
	MaxTimeout time.Duration
	// MaxConcurrent caps the solves running at once across all surfaces
	// (default 16). Ignored when Engine is set.
	MaxConcurrent int
	// Tenants are per-tenant admission quotas for the fair scheduler.
	// Ignored when Engine is set.
	Tenants map[string]engine.TenantConfig
	// ShedRetryAfter is the back-off hint attached to quota sheds. Ignored
	// when Engine is set.
	ShedRetryAfter time.Duration
	// MaxBatch caps the instances of one batch request (default 1024).
	MaxBatch int
	// MaxBodyBytes caps request body sizes (default 32 MiB).
	MaxBodyBytes int64
	// Jobs, when non-nil, enables the asynchronous job API (/v1/jobs*) for
	// solves that outlast the synchronous deadline. The manager's lifecycle
	// belongs to the caller: close it after the HTTP listener drains.
	Jobs *jobs.Manager
	// PeerClient is the HTTP client used to forward cache-miss solves to the
	// owning peer backend in a routed fleet (see OwnerHeader); default
	// http.DefaultClient. The forward runs under the original request's
	// context, so it never outlives the client.
	PeerClient *http.Client
	// APIKeys maps API keys (sent as "Authorization: Bearer <key>" or in the
	// X-API-Key header) to tenant names. Requests may also name their tenant
	// directly with the X-Tenant header; with neither they run as the default
	// tenant. Empty disables key lookup (keys are then ignored, not
	// rejected).
	APIKeys map[string]string
	// Version is reported by /healthz.
	Version string
}

// Server handles the HTTP API. Create one with New; it is safe for
// concurrent use.
type Server struct {
	cfg     Config
	eng     *engine.Engine
	mux     *http.ServeMux
	started time.Time
	metrics metrics
	// shutdown is closed when Run starts draining; long-lived streams (SSE)
	// select on it so open subscriptions cannot pin graceful shutdown to its
	// full grace budget. http.Server.Shutdown alone cannot do this: it waits
	// for active handlers and does not cancel their request contexts.
	shutdown     chan struct{}
	shutdownOnce sync.Once
}

// New validates the configuration, applies defaults and returns a Server.
func New(cfg Config) (*Server, error) {
	eng := cfg.Engine
	if eng == nil {
		if cfg.Registry == nil {
			return nil, errors.New("service: Config.Engine or Config.Registry is required")
		}
		var err error
		eng, err = engine.New(engine.Config{
			Registry:       cfg.Registry,
			Cache:          cfg.Cache,
			DefaultSolver:  cfg.DefaultSolver,
			DefaultTimeout: cfg.DefaultTimeout,
			MaxTimeout:     cfg.MaxTimeout,
			MaxConcurrent:  cfg.MaxConcurrent,
			Tenants:        cfg.Tenants,
			ShedRetryAfter: cfg.ShedRetryAfter,
		})
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	s := &Server{
		cfg:      cfg,
		eng:      eng,
		mux:      http.NewServeMux(),
		started:  time.Now(),
		shutdown: make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/batch-solve", s.handleBatch)
	s.mux.HandleFunc("GET /v1/solvers", s.handleSolvers)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Jobs != nil {
		s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
		s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
		s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
		s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
		s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	}
	return s, nil
}

// Engine returns the solve pipeline the server routes through.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Handler returns the server's HTTP handler (also usable under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Run serves on addr until ctx is cancelled, then shuts down gracefully:
// in-flight requests get up to grace to finish before the listener is torn
// down hard. It returns nil on a clean shutdown.
func (s *Server) Run(ctx context.Context, addr string, grace time.Duration) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.shutdownOnce.Do(func() { close(s.shutdown) })
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}

// requestTimeout parses a request-supplied duration string. Zero means "use
// the engine's default"; the engine clamps the value when the solve runs.
func requestTimeout(raw string) (time.Duration, error) {
	if raw == "" {
		return 0, nil
	}
	parsed, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("invalid timeout %q: %v", raw, err)
	}
	if parsed <= 0 {
		return 0, fmt.Errorf("invalid timeout %q: must be positive", raw)
	}
	return parsed, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	// A peer cache fill is a solve a sibling backend forwarded because this
	// process owns the fingerprint; count it as fill work, not as a client
	// request, so the forwarded solve is attributed once across the fleet.
	isFill := r.Header.Get(FillHeader) != ""
	if isFill {
		s.metrics.peerFillServed.Add(1)
	} else {
		s.metrics.requestsSolve.Add(1)
	}
	tenant, status, terr := s.tenantFor(r)
	if terr != nil {
		s.fail(w, status, terr)
		return
	}
	var req SolveRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Instance == nil {
		s.fail(w, http.StatusBadRequest, errors.New("missing instance"))
		return
	}
	if err := req.Instance.Validate(); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	name, err := s.eng.ResolveSolver(req.Solver)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	timeout, err := requestTimeout(req.Timeout)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	// Hash once up front; the owner check below and the engine's cache route
	// both reuse this fingerprint instead of re-hashing.
	fp := req.Instance.Fingerprint()

	// The router says another backend owns this fingerprint: on a local cache
	// miss, fetch the result from the owner's warm cache instead of
	// re-solving. Contains has no stat or LRU side effects, so a local hit
	// still books exactly one cache hit when the engine serves it below.
	if owner := r.Header.Get(OwnerHeader); owner != "" && !isFill {
		if cache := s.eng.Cache(); cache != nil && !cache.Contains(name, fp) {
			if s.forwardFill(w, r, owner, tenant, &req) {
				return
			}
		}
	}

	res, err := s.eng.Solve(r.Context(), engine.Request{
		Solver:      name,
		Instance:    req.Instance,
		Fingerprint: &fp,
		Timeout:     timeout,
		Tenant:      tenant,
		WarmStart:   req.WarmStart,
	})
	if err != nil {
		var shed *engine.ErrShed
		if errors.As(err, &shed) {
			s.failShed(w, shed)
			return
		}
		if errors.Is(err, context.DeadlineExceeded) {
			s.metrics.deadlineExpired.Add(1)
			s.fail(w, http.StatusGatewayTimeout,
				fmt.Errorf("solve exceeded its %s deadline", s.eng.Limits().Resolve(timeout)))
			return
		}
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	ev := res.Evaluation
	resp := SolveResponse{
		Solver:      name,
		Algorithm:   ev.Algorithm,
		Source:      string(res.Source),
		Fingerprint: res.Fingerprint.String(),
		Makespan:    ev.Makespan,
		LowerBound:  ev.LowerBound,
		Ratio:       ev.Ratio,
		Wasted:      ev.Wasted,
		Properties:  ev.Properties.String(),
		ElapsedMS:   float64(ev.Stats.Elapsed) / float64(time.Millisecond),
		Telemetry:   &res.Telemetry,
	}
	if req.IncludeSchedule {
		resp.Schedule = ev.Schedule
	}
	s.respond(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsBatch.Add(1)
	tenant, status, terr := s.tenantFor(r)
	if terr != nil {
		s.fail(w, status, terr)
		return
	}
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Instances) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("missing instances"))
		return
	}
	if len(req.Instances) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds the maximum of %d", len(req.Instances), s.cfg.MaxBatch))
		return
	}
	for i, inst := range req.Instances {
		if inst == nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("instance %d is null", i))
			return
		}
		if err := inst.Validate(); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("instance %d: %w", i, err))
			return
		}
	}
	name, err := s.eng.ResolveSolver(req.Solver)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	timeout, err := requestTimeout(req.Timeout)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.batchInstances.Add(uint64(len(req.Instances)))
	// One deadline bounds the whole batch; the engine then runs each shard
	// with NoDeadline under this context, and every shard's actual solve
	// acquires the same global admission semaphore as the single-solve path
	// and the job workers.
	ctx, cancel := context.WithTimeout(r.Context(), s.eng.Limits().Resolve(timeout))
	defer cancel()
	outcomes := s.eng.SolveEach(ctx, tenant, name, req.Instances, s.eng.MaxConcurrent())

	var lastShed *engine.ErrShed
	resp := BatchResponse{Solver: name, Count: len(outcomes), Results: make([]BatchResult, len(outcomes))}
	for i, out := range outcomes {
		res := BatchResult{Index: out.Index}
		var shed *engine.ErrShed
		switch {
		case out.Skipped:
			resp.Cancelled++
			res.Cancelled = true
			res.Error = out.Err.Error()
		case errors.As(out.Err, &shed):
			resp.Shed++
			res.Shed = true
			res.Error = out.Err.Error()
			lastShed = shed
		case out.Err != nil:
			resp.Failed++
			res.Error = out.Err.Error()
		default:
			resp.Solved++
			ev := out.Result.Evaluation
			res.Makespan = ev.Makespan
			res.Wasted = ev.Wasted
			res.Algorithm = ev.Algorithm
			res.Source = string(out.Result.Source)
			res.ElapsedMS = float64(ev.Stats.Elapsed) / float64(time.Millisecond)
			res.Telemetry = &out.Result.Telemetry
		}
		resp.Results[i] = res
	}
	s.metrics.batchCancelled.Add(uint64(resp.Cancelled))
	if resp.Shed == len(outcomes) && lastShed != nil {
		// The whole batch was refused over quota: answer like a shed solve
		// (429 + Retry-After) so clients back off instead of inspecting the
		// per-result flags. Partially shed batches stay 200 — partial results
		// are the point of the batch surface.
		secs := int(lastShed.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		s.metrics.shedTotal.Add(1)
		s.respond(w, http.StatusTooManyRequests, resp)
		return
	}
	s.respond(w, http.StatusOK, resp)
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsOther.Add(1)
	s.respond(w, http.StatusOK, SolversResponse{
		Solvers: s.eng.Registry().Names(),
		Default: s.eng.DefaultSolver(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsOther.Add(1)
	s.respond(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Version:       s.cfg.Version,
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsOther.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.eng, s.cfg.Jobs, time.Since(s.started))
}

// decode reads the JSON request body into dst, bounding its size and
// rejecting trailing garbage. It writes the error response itself and
// reports whether decoding succeeded.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return false
	}
	if dec.More() {
		s.fail(w, http.StatusBadRequest, errors.New("trailing data after request body"))
		return false
	}
	return true
}

func (s *Server) respond(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		// The status line is out; nothing more to do than note the failure.
		s.metrics.errorsTotal.Add(1)
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.metrics.errorsTotal.Add(1)
	s.respond(w, status, ErrorResponse{Error: err.Error()})
}
