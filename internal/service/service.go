// Package service is the HTTP serving layer of the scheduling system: a
// long-running process that answers solve requests over JSON, backed by the
// solver registry, a sharded LRU memo cache keyed by canonical instance
// fingerprints (identical requests are solved once and replayed from memory)
// and singleflight deduplication of concurrent identical solves.
//
// Endpoints (see README.md for the full API reference and ARCHITECTURE.md
// for the layer walkthrough):
//
//	POST   /v1/solve            solve one instance (SolveRequest -> SolveResponse)
//	POST   /v1/batch-solve      solve a JSON array of instances via ParallelEach
//	GET    /v1/solvers          list the registered solver names
//	POST   /v1/jobs             submit an asynchronous solve (202 Accepted)
//	GET    /v1/jobs             list jobs, ?state= filters
//	GET    /v1/jobs/{id}        job record, including the result when done
//	DELETE /v1/jobs/{id}        cancel a pending or running job
//	GET    /v1/jobs/{id}/events SSE stream of state and incumbent events
//	GET    /healthz             liveness probe
//	GET    /metrics             counters in Prometheus text format
//
// Every synchronous solve runs under a per-request deadline
// (request-supplied, clamped to the server maximum) and a global concurrency
// limit shared by the single and batch paths, so a burst of heavy requests
// degrades into queueing instead of oversubscribing the machine. Instances
// that cannot finish inside any acceptable HTTP deadline go through the job
// API instead: they queue in a bounded internal/jobs worker pool, report
// incumbent solutions as they improve, and their results outlive the request
// (and, with a store, the process).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"crsharing/internal/core"
	"crsharing/internal/jobs"
	"crsharing/internal/solver"
)

// Config configures a Server. The zero value of every optional field is
// replaced by the documented default in New.
type Config struct {
	// Registry resolves solver names; required.
	Registry *solver.Registry
	// Cache is the memo cache; nil disables caching (every request solves).
	Cache *solver.Cache
	// DefaultSolver is used when a request names none (default "portfolio").
	DefaultSolver string
	// DefaultTimeout bounds solves that request no timeout (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts (default 2m).
	MaxTimeout time.Duration
	// MaxBatch caps the instances of one batch request (default 1024).
	MaxBatch int
	// MaxConcurrent caps the solves running at once across all requests
	// (default 16).
	MaxConcurrent int
	// MaxBodyBytes caps request body sizes (default 32 MiB).
	MaxBodyBytes int64
	// Jobs, when non-nil, enables the asynchronous job API (/v1/jobs*) for
	// solves that outlast the synchronous deadline. The manager's lifecycle
	// belongs to the caller: close it after the HTTP listener drains.
	Jobs *jobs.Manager
	// Version is reported by /healthz.
	Version string
}

// Server handles the HTTP API. Create one with New; it is safe for
// concurrent use.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	sem     chan struct{}
	started time.Time
	metrics metrics
	// shutdown is closed when Run starts draining; long-lived streams (SSE)
	// select on it so open subscriptions cannot pin graceful shutdown to its
	// full grace budget. http.Server.Shutdown alone cannot do this: it waits
	// for active handlers and does not cancel their request contexts.
	shutdown     chan struct{}
	shutdownOnce sync.Once
}

// New validates the configuration, applies defaults and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, errors.New("service: Config.Registry is required")
	}
	if cfg.DefaultSolver == "" {
		cfg.DefaultSolver = "portfolio"
	}
	if _, err := cfg.Registry.New(cfg.DefaultSolver); err != nil {
		return nil, fmt.Errorf("service: default solver: %w", err)
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 2 * time.Minute
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 16
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		started:  time.Now(),
		shutdown: make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/batch-solve", s.handleBatch)
	s.mux.HandleFunc("GET /v1/solvers", s.handleSolvers)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Jobs != nil {
		s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
		s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
		s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
		s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
		s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	}
	return s, nil
}

// Handler returns the server's HTTP handler (also usable under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Run serves on addr until ctx is cancelled, then shuts down gracefully:
// in-flight requests get up to grace to finish before the listener is torn
// down hard. It returns nil on a clean shutdown.
func (s *Server) Run(ctx context.Context, addr string, grace time.Duration) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.shutdownOnce.Do(func() { close(s.shutdown) })
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}

// limited wraps a solver so every Solve holds a slot of the server's global
// semaphore; acquisition respects the request context, so a queued request
// whose deadline expires fails with the context error instead of waiting.
type limited struct {
	inner solver.Solver
	srv   *Server
}

func (l limited) Name() string { return l.inner.Name() }

func (l limited) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, solver.Stats, error) {
	select {
	case l.srv.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, solver.Stats{Solver: l.inner.Name()}, ctx.Err()
	}
	defer func() { <-l.srv.sem }()
	l.srv.metrics.solveInflight.Add(1)
	defer l.srv.metrics.solveInflight.Add(-1)
	return l.inner.Solve(ctx, inst)
}

// cached routes batch solves through the memo cache, so duplicate instances
// within a batch, repeated batches and overlap with the single-solve path
// all collapse into one underlying solve per fingerprint. It also keeps the
// solve/cache metrics, which the batch handler cannot see per instance.
type cached struct {
	inner solver.Solver // already wrapped in limited
	srv   *Server
}

func (c cached) Name() string { return c.inner.Name() }

func (c cached) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, solver.Stats, error) {
	ev, src, err := c.srv.cfg.Cache.Evaluate(ctx, c.inner, inst)
	if err != nil {
		return nil, solver.Stats{Solver: c.inner.Name()}, err
	}
	if src == solver.SourceSolve {
		c.srv.metrics.solvesTotal.Add(1)
	} else {
		c.srv.metrics.cacheServed.Add(1)
	}
	return ev.Schedule, ev.Stats, nil
}

// requestTimeout resolves a request-supplied duration string against the
// server's default and maximum.
func (s *Server) requestTimeout(raw string) (time.Duration, error) {
	d := s.cfg.DefaultTimeout
	if raw != "" {
		parsed, err := time.ParseDuration(raw)
		if err != nil {
			return 0, fmt.Errorf("invalid timeout %q: %v", raw, err)
		}
		if parsed <= 0 {
			return 0, fmt.Errorf("invalid timeout %q: must be positive", raw)
		}
		d = parsed
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// resolveSolver maps the optional request solver name to a registry entry.
func (s *Server) resolveSolver(name string) (string, solver.Solver, error) {
	if name == "" {
		name = s.cfg.DefaultSolver
	}
	sv, err := s.cfg.Registry.New(name)
	return name, sv, err
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsSolve.Add(1)
	var req SolveRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Instance == nil {
		s.fail(w, http.StatusBadRequest, errors.New("missing instance"))
		return
	}
	if err := req.Instance.Validate(); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	name, sv, err := s.resolveSolver(req.Solver)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	timeout, err := s.requestTimeout(req.Timeout)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	fp := req.Instance.Fingerprint()
	var (
		ev  *solver.Evaluation
		src solver.Source
	)
	if s.cfg.Cache != nil {
		ev, src, err = s.cfg.Cache.EvaluateWithFingerprint(ctx, limited{inner: sv, srv: s}, req.Instance, fp)
	} else {
		src = solver.SourceSolve
		ev, err = solver.Evaluate(ctx, limited{inner: sv, srv: s}, req.Instance)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.metrics.deadlineExpired.Add(1)
			s.fail(w, http.StatusGatewayTimeout, fmt.Errorf("solve exceeded its %s deadline", timeout))
			return
		}
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	if src == solver.SourceSolve {
		s.metrics.solvesTotal.Add(1)
	} else {
		s.metrics.cacheServed.Add(1)
	}
	resp := SolveResponse{
		Solver:      name,
		Algorithm:   ev.Algorithm,
		Source:      string(src),
		Fingerprint: fp.String(),
		Makespan:    ev.Makespan,
		LowerBound:  ev.LowerBound,
		Ratio:       ev.Ratio,
		Wasted:      ev.Wasted,
		Properties:  ev.Properties.String(),
		ElapsedMS:   float64(ev.Stats.Elapsed) / float64(time.Millisecond),
	}
	if req.IncludeSchedule {
		resp.Schedule = ev.Schedule
	}
	s.respond(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsBatch.Add(1)
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Instances) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("missing instances"))
		return
	}
	if len(req.Instances) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds the maximum of %d", len(req.Instances), s.cfg.MaxBatch))
		return
	}
	for i, inst := range req.Instances {
		if inst == nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("instance %d is null", i))
			return
		}
		if err := inst.Validate(); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("instance %d: %w", i, err))
			return
		}
	}
	name, _, err := s.resolveSolver(req.Solver)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	timeout, err := s.requestTimeout(req.Timeout)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.batchInstances.Add(uint64(len(req.Instances)))
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Fan out through ParallelEach; the limited wrapper keeps the batch
	// inside the same global solve budget as the single-solve path (the
	// worker count only bounds per-request parallelism), and the cached
	// wrapper deduplicates against the memo cache when one is configured.
	newSolver := func() solver.Solver {
		sv, err := s.cfg.Registry.New(name)
		if err != nil {
			panic(err) // unreachable: name validated above
		}
		var out solver.Solver = limited{inner: sv, srv: s}
		if s.cfg.Cache != nil {
			out = cached{inner: out, srv: s}
		}
		return out
	}
	outcomes := solver.ParallelEach(ctx, newSolver, req.Instances, s.cfg.MaxConcurrent)

	resp := BatchResponse{Solver: name, Count: len(outcomes), Results: make([]BatchResult, len(outcomes))}
	for i, out := range outcomes {
		res := BatchResult{Index: out.Index}
		switch {
		case out.Skipped:
			resp.Cancelled++
			res.Cancelled = true
			res.Error = out.Err.Error()
		case out.Err != nil:
			resp.Failed++
			res.Error = out.Err.Error()
		default:
			resp.Solved++
			res.Makespan = out.Makespan
			res.Wasted = out.Wasted
			res.Algorithm = out.Stats.Solver
			res.ElapsedMS = float64(out.Stats.Elapsed) / float64(time.Millisecond)
			if s.cfg.Cache == nil {
				s.metrics.solvesTotal.Add(1) // cached wrapper counts otherwise
			}
		}
		resp.Results[i] = res
	}
	s.metrics.batchCancelled.Add(uint64(resp.Cancelled))
	s.respond(w, http.StatusOK, resp)
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsOther.Add(1)
	s.respond(w, http.StatusOK, SolversResponse{
		Solvers: s.cfg.Registry.Names(),
		Default: s.cfg.DefaultSolver,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsOther.Add(1)
	s.respond(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Version:       s.cfg.Version,
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsOther.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.cfg.Cache, s.cfg.Jobs, time.Since(s.started))
}

// decode reads the JSON request body into dst, bounding its size and
// rejecting trailing garbage. It writes the error response itself and
// reports whether decoding succeeded.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return false
	}
	if dec.More() {
		s.fail(w, http.StatusBadRequest, errors.New("trailing data after request body"))
		return false
	}
	return true
}

func (s *Server) respond(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		// The status line is out; nothing more to do than note the failure.
		s.metrics.errorsTotal.Add(1)
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.metrics.errorsTotal.Add(1)
	s.respond(w, status, ErrorResponse{Error: err.Error()})
}
