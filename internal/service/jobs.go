package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"crsharing/internal/engine"
	"crsharing/internal/jobs"
)

// handleJobSubmit accepts an asynchronous solve: the instance is validated
// and queued, and 202 Accepted returns the pending job record. Unlike
// POST /v1/solve, the job's timeout is not clamped to the synchronous
// MaxTimeout — long solves are the point — but to the job manager's own
// (much larger) maximum.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsJobs.Add(1)
	tenant, status, terr := s.tenantFor(r)
	if terr != nil {
		s.fail(w, status, terr)
		return
	}
	var req JobRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Instance == nil {
		s.fail(w, http.StatusBadRequest, errors.New("missing instance"))
		return
	}
	var timeout time.Duration
	if req.Timeout != "" {
		parsed, err := time.ParseDuration(req.Timeout)
		if err != nil || parsed <= 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("invalid timeout %q", req.Timeout))
			return
		}
		timeout = parsed
	}
	snap, err := s.cfg.Jobs.Submit(jobs.Request{
		Solver:   req.Solver,
		Instance: req.Instance,
		Timeout:  timeout,
		Tenant:   tenant,
	})
	var shed *engine.ErrShed
	switch {
	case err == nil:
		s.respond(w, http.StatusAccepted, snap)
	case errors.As(err, &shed):
		s.failShed(w, shed)
	case errors.Is(err, jobs.ErrQueueFull):
		s.fail(w, http.StatusTooManyRequests, err)
	case errors.Is(err, jobs.ErrClosed):
		s.fail(w, http.StatusServiceUnavailable, err)
	default:
		s.fail(w, http.StatusBadRequest, err)
	}
}

// handleJobGet returns the job's current record; for done jobs this includes
// the full result with the schedule.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsJobs.Add(1)
	snap, err := s.cfg.Jobs.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	s.respond(w, http.StatusOK, snap)
}

// handleJobList returns every job record, optionally filtered with
// ?state=pending|running|done|failed|cancelled.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsJobs.Add(1)
	state := jobs.State(r.URL.Query().Get("state"))
	if state != "" && !state.Valid() {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("invalid state filter %q", state))
		return
	}
	list := s.cfg.Jobs.List(state)
	s.respond(w, http.StatusOK, JobListResponse{Count: len(list), Jobs: list})
}

// handleJobCancel cancels the job: pending jobs terminate immediately,
// running jobs once their solver observes the cancellation. Cancelling a
// terminal job is a no-op that returns the final record.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsJobs.Add(1)
	snap, err := s.cfg.Jobs.Cancel(r.PathValue("id"))
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	s.respond(w, http.StatusOK, snap)
}

// handleJobEvents streams the job's progress as server-sent events. Every
// message is an event named after its type ("state" or "incumbent") whose
// data line is a jobs.Event in JSON; the stream begins with a synthetic
// "state" event carrying the current state and ends when the job reaches a
// terminal state or the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsJobs.Add(1)
	snap, events, unsub, err := s.cfg.Jobs.Subscribe(r.PathValue("id"))
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	defer unsub()
	fl, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	write := func(ev jobs.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	first := jobs.Event{Type: jobs.EventState, JobID: snap.ID, State: snap.State, Error: snap.Error}
	if snap.Result != nil {
		// A subscriber joining after completion still sees the solve
		// telemetry on its (terminal) synthetic event, matching the live
		// terminal event the manager emits.
		first.Telemetry = snap.Result.Telemetry
	}
	if !write(first) {
		return
	}
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return // terminal: the manager closed the stream
			}
			if !write(ev) {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			// The server is draining; end the stream so graceful shutdown
			// does not wait its full grace budget on open subscriptions.
			return
		}
	}
}
