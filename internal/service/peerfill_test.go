package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"crsharing/internal/core"
)

// solveWithHeaders posts a solve with extra headers and decodes the response.
func solveWithHeaders(t *testing.T, url string, inst *core.Instance, headers map[string]string) (int, SolveResponse) {
	t.Helper()
	raw, err := json.Marshal(SolveRequest{Instance: inst})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/solve", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sr SolveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatalf("decoding solve response: %v (%s)", err, data)
		}
	}
	return resp.StatusCode, sr
}

func metricsText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestPeerFillServedFromOwner is the fleet-as-one-cache contract at the
// service layer: a solve that misses on the receiving backend but carries the
// owner header is answered from the OWNER's warm cache — no solver runs on
// either backend — and the work is attributed once (the owner counts a fill,
// not a client request).
func TestPeerFillServedFromOwner(t *testing.T) {
	stubA := &stubSolver{name: "stub"}
	stubB := &stubSolver{name: "stub"}
	_, tsA := newTestServer(t, stubA, nil)
	_, tsB := newTestServer(t, stubB, nil)
	inst := core.NewInstance([]float64{0.5, 0.25}, []float64{0.75})

	// Warm the owner: one fresh solve on B.
	if status, sr := solveWithHeaders(t, tsB.URL, inst, nil); status != http.StatusOK || sr.Source != "solve" {
		t.Fatalf("warming solve: status=%d source=%q", status, sr.Source)
	}
	if got := stubB.calls.Load(); got != 1 {
		t.Fatalf("owner solver ran %d times warming, want 1", got)
	}

	// A misses locally, forwards to the owner, and passes B's cached answer
	// through verbatim. Repeat to prove the fill path never re-solves.
	for i := 0; i < 2; i++ {
		status, sr := solveWithHeaders(t, tsA.URL, inst, map[string]string{OwnerHeader: tsB.URL})
		if status != http.StatusOK {
			t.Fatalf("fill round %d: status %d", i, status)
		}
		if sr.Source != "cache" {
			t.Fatalf("fill round %d answered from %q, want the owner's cache", i, sr.Source)
		}
	}
	if got := stubA.calls.Load(); got != 0 {
		t.Fatalf("receiving backend solved %d times despite the owner fill", got)
	}
	if got := stubB.calls.Load(); got != 1 {
		t.Fatalf("owner re-solved (%d calls) on a warm fill", got)
	}

	// Attribution: A forwarded twice; B served two fills on top of its one
	// client request.
	mA, mB := metricsText(t, tsA.URL), metricsText(t, tsB.URL)
	if !strings.Contains(mA, "crsharing_peer_fill_forwarded_total 2") {
		t.Error("receiving backend did not count 2 forwarded fills")
	}
	if !strings.Contains(mB, "crsharing_peer_fill_served_total 2") {
		t.Error("owner did not count 2 served fills")
	}
	if !strings.Contains(mB, "crsharing_requests_solve_total 1") {
		t.Error("owner counted fills as client solve requests (double attribution)")
	}

	// A local cache hit on the receiver never forwards, even with the header.
	warm := core.NewInstance([]float64{0.4, 0.3})
	if _, sr := solveWithHeaders(t, tsA.URL, warm, nil); sr.Source != "solve" {
		t.Fatalf("local warming solve source = %q", sr.Source)
	}
	if _, sr := solveWithHeaders(t, tsA.URL, warm, map[string]string{OwnerHeader: tsB.URL}); sr.Source != "cache" {
		t.Fatalf("locally cached solve with owner header answered from %q, want the local cache", sr.Source)
	}
	if strings.Contains(metricsText(t, tsA.URL), "crsharing_peer_fill_forwarded_total 3") {
		t.Error("a local cache hit was forwarded to the owner")
	}
}

// TestPeerFillFallsBackToLocalSolve: a dead or unreachable owner degrades to
// a cold-cache local solve, never a failed request.
func TestPeerFillFallsBackToLocalSolve(t *testing.T) {
	stub := &stubSolver{name: "stub"}
	_, ts := newTestServer(t, stub, nil)
	inst := core.NewInstance([]float64{0.6, 0.2})

	status, sr := solveWithHeaders(t, ts.URL, inst, map[string]string{OwnerHeader: "http://127.0.0.1:1"})
	if status != http.StatusOK {
		t.Fatalf("solve with unreachable owner: status %d", status)
	}
	if sr.Source != "solve" {
		t.Fatalf("fallback source = %q, want a fresh local solve", sr.Source)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("local solver ran %d times, want 1", got)
	}
	if !strings.Contains(metricsText(t, ts.URL), "crsharing_peer_fill_errors_total 1") {
		t.Error("failed forward did not count a peer fill error")
	}
}
