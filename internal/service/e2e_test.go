package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"crsharing/internal/core"
	"crsharing/internal/engine"
	"crsharing/internal/gen"
	"crsharing/internal/jobs"
	"crsharing/internal/solver"
)

// TestEndToEnd is the Go port of the CI shell smoke that used to drive a
// crserved binary with curl: it wires the production stack — full solver
// registry, sharded memo cache, job manager — behind an httptest listener
// and walks the whole lifecycle: health probe, fresh solve, cache-served
// repeat, batch solve, async job with SSE follow, metrics accounting, and
// graceful shutdown. Unlike the shell version it revalidates the returned
// schedules with core.Execute and runs race-enabled with the rest of the
// suite.
func TestEndToEnd(t *testing.T) {
	// One engine for the whole stack, exactly like cmd/crserved wires it:
	// sync handlers, batch fan-out and job workers share its admission
	// budget, memo cache and telemetry.
	eng, err := engine.New(engine.Config{
		Registry: solver.Default(),
		Cache:    solver.NewCache(8, 256),
	})
	if err != nil {
		t.Fatal(err)
	}
	manager, err := jobs.New(jobs.Config{
		Engine:         eng,
		Workers:        2,
		QueueDepth:     64,
		DefaultTimeout: 20 * time.Second,
		MaxTimeout:     time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Engine:  eng,
		Jobs:    manager,
		Version: "e2e",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Liveness first, as the shell loop did before sending traffic.
	var health HealthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" || health.Version != "e2e" {
		t.Fatalf("healthz: %+v", health)
	}

	// Fresh solve of the Figure 3 worst-case family (the shell smoke's
	// instance), with the schedule included so it can be revalidated.
	inst := gen.Figure3(10)
	var first SolveResponse
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{
		Instance:        inst,
		Timeout:         "10s",
		IncludeSchedule: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Source != string(solver.SourceSolve) {
		t.Fatalf("first solve source %q, want %q", first.Source, solver.SourceSolve)
	}
	assertScheduleMatches(t, inst, first.Schedule, first.Makespan)
	// The response must carry populated engine telemetry: the default
	// portfolio races branch-and-bound, so a fresh solve explored nodes.
	if first.Telemetry == nil {
		t.Fatal("fresh solve response carries no telemetry")
	}
	if first.Telemetry.Source != string(solver.SourceSolve) || first.Telemetry.Nodes <= 0 {
		t.Fatalf("fresh solve telemetry malformed: %+v", first.Telemetry)
	}
	if first.Telemetry.Makespan != first.Makespan || first.Telemetry.LowerBound != first.LowerBound {
		t.Fatalf("telemetry diverges from the response: %+v vs %+v", first.Telemetry, first)
	}
	if k := first.Telemetry.LowerBoundKind; k != "work" && k != "chain" {
		t.Fatalf("telemetry lower bound kind %q", k)
	}

	// The identical repeat must be answered from the cache with the same
	// fingerprint and result.
	var second SolveResponse
	resp, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: inst, Timeout: "10s"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat solve status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.Source != string(solver.SourceCache) {
		t.Fatalf("repeat source %q, want %q", second.Source, solver.SourceCache)
	}
	if second.Fingerprint != first.Fingerprint || second.Makespan != first.Makespan {
		t.Fatalf("cache replay diverged: %+v vs %+v", second, first)
	}
	// The cached reply replays the original solve's telemetry with the
	// source corrected: same search effort, answered from the cache.
	if second.Telemetry == nil || second.Telemetry.Source != string(solver.SourceCache) {
		t.Fatalf("cache replay telemetry malformed: %+v", second.Telemetry)
	}
	if second.Telemetry.Nodes != first.Telemetry.Nodes {
		t.Fatalf("cache replay changed the recorded search effort: %d vs %d",
			second.Telemetry.Nodes, first.Telemetry.Nodes)
	}

	// Batch solve mixes the cached instance with fresh ones.
	var batch BatchResponse
	resp, body = postJSON(t, ts.URL+"/v1/batch-solve", BatchRequest{
		Instances: []*core.Instance{inst, gen.Figure1(), gen.Figure2()},
		Timeout:   "10s",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Count != 3 || batch.Solved != 3 || batch.Failed != 0 || batch.Cancelled != 0 {
		t.Fatalf("batch outcome: %+v", batch)
	}
	for _, res := range batch.Results {
		if res.Telemetry == nil || res.Source == "" {
			t.Fatalf("batch result without telemetry: %+v", res)
		}
	}
	// The batch repeated the cached instance: its shard must report a cache
	// source, not a fresh solve.
	if src := batch.Results[0].Source; src == string(solver.SourceSolve) {
		t.Fatalf("batch shard re-solved a cached fingerprint (source %q)", src)
	}

	// Async job lifecycle on a fresh (uncached) instance: accepted pending,
	// SSE stream reaches a terminal state, record carries a valid schedule.
	jobInst := gen.Figure3(12)
	resp, body = postJSON(t, ts.URL+"/v1/jobs", JobRequest{Instance: jobInst, Timeout: "20s"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit status %d: %s", resp.StatusCode, body)
	}
	var submitted jobs.Snapshot
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	if submitted.ID == "" || submitted.State.Terminal() {
		t.Fatalf("bad submit snapshot: %+v", submitted)
	}
	events := readSSE(t, ts.URL+"/v1/jobs/"+submitted.ID+"/events")
	sawTerminal := false
	for _, ev := range events {
		if ev.name == string(jobs.EventState) && ev.data.State.Terminal() {
			sawTerminal = true
			// The terminal event of a done job carries the solve telemetry,
			// so SSE consumers see how the answer was produced without
			// re-fetching the record.
			if ev.data.State == jobs.StateDone {
				if ev.data.Telemetry == nil || ev.data.Telemetry.Nodes <= 0 {
					t.Fatalf("terminal SSE event without populated telemetry: %+v", ev.data)
				}
			}
		}
	}
	if !sawTerminal {
		t.Fatalf("SSE stream ended without a terminal state: %+v", events)
	}
	final := getJob(t, ts, submitted.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("job not done: %+v", final)
	}
	if final.Result == nil {
		t.Fatalf("done job without result: %+v", final)
	}
	assertScheduleMatches(t, jobInst, final.Result.Schedule, final.Result.Makespan)
	if final.Result.Telemetry == nil || final.Result.Telemetry.Nodes <= 0 {
		t.Fatalf("job record without populated telemetry: %+v", final.Result.Telemetry)
	}

	// Metrics must account for everything above, as the shell greps did.
	metricsBody := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		"crsharing_solves_total",
		"crsharing_cache_served_total",
		"crsharing_jobs_done_total 1",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsBody)
		}
	}
	if metric(t, metricsBody, "crsharing_solves_total") < 1 {
		t.Error("no fresh solve counted")
	}
	if metric(t, metricsBody, "crsharing_cache_served_total") < 1 {
		t.Error("no cache-served response counted")
	}

	// Graceful shutdown: the listener drains, then the manager closes
	// cleanly and refuses further submissions (what SIGINT does in
	// cmd/crserved).
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := manager.Close(ctx); err != nil {
		t.Fatalf("graceful manager close: %v", err)
	}
	if _, err := manager.Submit(jobs.Request{Instance: gen.Figure1()}); !errors.Is(err, jobs.ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

// assertScheduleMatches re-executes a returned schedule and checks it
// finishes the instance with the claimed makespan — the minimal invariant
// oracle (internal/harness carries the full one; service tests cannot import
// it without inverting the layer order, so the check is inlined).
func assertScheduleMatches(t *testing.T, inst *core.Instance, sched *core.Schedule, makespan int) {
	t.Helper()
	if sched == nil {
		t.Fatal("response carried no schedule")
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		t.Fatalf("returned schedule does not execute: %v", err)
	}
	if !res.Finished() {
		t.Fatal("returned schedule leaves jobs unfinished")
	}
	if res.Makespan() != makespan {
		t.Fatalf("claimed makespan %d, execution yields %d", makespan, res.Makespan())
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// metric extracts an un-labelled sample value from a Prometheus text body.
func metric(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s has non-numeric value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s absent", name)
	return 0
}
