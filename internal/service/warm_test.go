package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"crsharing/internal/core"
	"crsharing/internal/gen"
	"crsharing/internal/solver"
)

// TestSolveWarmStartRoundTrip drives the request-supplied warm-start hint
// over HTTP: solve a base instance with the exact kernel, then re-submit a
// one-nudge mutant with the base's schedule as the hint. The fresh solve
// must accept it (telemetry warm_start="request", seed_makespan set) and the
// answer must match a cold solve of the same mutant.
func TestSolveWarmStartRoundTrip(t *testing.T) {
	srv, err := New(Config{
		Registry:       solver.Default(),
		Cache:          solver.NewCache(4, 64),
		DefaultSolver:  "branch-and-bound",
		DefaultTimeout: 10 * time.Second,
		MaxTimeout:     20 * time.Second,
		Version:        "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	base := gen.GreedyWorstCase(4, 3, 0.01)
	var seeded SolveResponse
	resp, body := postJSON(t, ts.URL+"/v1/solve",
		SolveRequest{Instance: base, IncludeSchedule: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &seeded); err != nil {
		t.Fatal(err)
	}
	if seeded.Schedule == nil {
		t.Fatalf("base solve returned no schedule: %s", body)
	}

	// One requirement nudged down: the base's optimal schedule still
	// finishes the mutant at the optimum, below the greedy seed.
	mutant := base.Clone()
	mutant.Procs[0][0].Req -= 1e-4

	var warm SolveResponse
	resp, body = postJSON(t, ts.URL+"/v1/solve",
		SolveRequest{Instance: mutant, WarmStart: seeded.Schedule})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solve status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Source != string(solver.SourceSolve) {
		t.Fatalf("warm request source %q, want a fresh solve", warm.Source)
	}
	if warm.Telemetry == nil || warm.Telemetry.WarmStart != "request" {
		t.Fatalf("telemetry does not credit the request hint: %s", body)
	}
	if warm.Telemetry.SeedMakespan <= 0 {
		t.Fatalf("seed_makespan missing: %s", body)
	}
	if warm.Makespan != seeded.Makespan {
		t.Fatalf("warm makespan %d, want the chain optimum %d", warm.Makespan, seeded.Makespan)
	}

	// A garbage hint must cost nothing: same instance family, same answer,
	// no warm-start credit.
	junk := base.Clone()
	junk.Procs[1][0].Req -= 1e-4
	var coldish SolveResponse
	resp, body = postJSON(t, ts.URL+"/v1/solve",
		SolveRequest{Instance: junk, WarmStart: core.NewSchedule(1, 2)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("junk-hint solve status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &coldish); err != nil {
		t.Fatal(err)
	}
	if coldish.Makespan != seeded.Makespan {
		t.Fatalf("junk hint changed the makespan: %d vs %d", coldish.Makespan, seeded.Makespan)
	}
}
