package service

import (
	"crsharing/internal/core"
	"crsharing/internal/engine"
	"crsharing/internal/jobs"
)

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	// Solver selects a registry entry; empty uses the server's default.
	Solver string `json:"solver,omitempty"`
	// Instance is the CRSharing instance to solve.
	Instance *core.Instance `json:"instance"`
	// Timeout bounds this solve, as a Go duration string ("500ms", "30s").
	// Empty uses the server default; values above the server maximum are
	// clamped.
	Timeout string `json:"timeout,omitempty"`
	// IncludeSchedule asks for the full per-step resource assignment in the
	// response; it is omitted by default because schedules are large.
	IncludeSchedule bool `json:"include_schedule,omitempty"`
	// WarmStart is an optional hint: a schedule solved for a near-identical
	// instance (typically the previous step of a mutation chain). The kernel
	// validates it against this request's instance and uses it only to seed
	// its initial incumbent, so a stale or infeasible hint costs one
	// validation and changes nothing. An accepted hint is reported in
	// telemetry as warm_start="request" with its seed_makespan.
	WarmStart *core.Schedule `json:"warm_start,omitempty"`
}

// SolveResponse is the body of a successful POST /v1/solve.
type SolveResponse struct {
	// Solver is the registry name the request resolved to.
	Solver string `json:"solver"`
	// Algorithm is the algorithm that produced the schedule (for a portfolio
	// the winning member, e.g. "greedy-balance (via portfolio)").
	Algorithm string `json:"algorithm"`
	// Source reports how the result was obtained: "solve" (fresh solve),
	// "cache" (memo hit) or "coalesced" (joined an identical in-flight
	// solve).
	Source string `json:"source"`
	// Fingerprint is the canonical instance fingerprint, the cache key.
	Fingerprint string `json:"fingerprint"`
	Makespan    int    `json:"makespan"`
	LowerBound  int    `json:"lower_bound"`
	// Ratio is makespan divided by the best lower bound.
	Ratio  float64 `json:"ratio"`
	Wasted float64 `json:"wasted"`
	// Properties lists the Section-4 structural properties of the schedule.
	Properties string `json:"properties"`
	// ElapsedMS is the wall-clock of the solve that produced this result in
	// milliseconds. For cache and coalesced responses it replays the
	// original solve's duration — consult Source for this request's own
	// cost.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Telemetry is the engine's structured account of this solve: search
	// nodes and incumbents, admission queueing, the lower bound that anchors
	// Ratio, and the schedule shape.
	Telemetry *engine.Telemetry `json:"telemetry,omitempty"`
	// Schedule is present only when the request set include_schedule.
	Schedule *core.Schedule `json:"schedule,omitempty"`
}

// BatchRequest is the body of POST /v1/batch-solve.
type BatchRequest struct {
	Solver    string           `json:"solver,omitempty"`
	Instances []*core.Instance `json:"instances"`
	// Timeout bounds the whole batch, not each instance.
	Timeout string `json:"timeout,omitempty"`
}

// BatchResult is the outcome of one instance of a batch.
type BatchResult struct {
	Index     int     `json:"index"`
	Makespan  int     `json:"makespan,omitempty"`
	Wasted    float64 `json:"wasted,omitempty"`
	Algorithm string  `json:"algorithm,omitempty"`
	// Source reports how this instance's result was obtained ("solve",
	// "cache" or "coalesced"), like the single-solve response does.
	Source    string  `json:"source,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// Telemetry is the engine's structured account of this instance's solve.
	Telemetry *engine.Telemetry `json:"telemetry,omitempty"`
	// Error is set for failed instances; Cancelled additionally marks
	// instances that were never attempted because the batch deadline had
	// already expired, and Shed instances that were refused over the
	// tenant's admission quota (retry later; they did not fail).
	Error     string `json:"error,omitempty"`
	Cancelled bool   `json:"cancelled,omitempty"`
	Shed      bool   `json:"shed,omitempty"`
}

// BatchResponse is the body of a POST /v1/batch-solve response. It is
// returned with status 200 even when individual instances failed; the
// per-instance errors are in Results.
// A fully shed batch (every instance refused over quota) is answered with
// 429 and a Retry-After header instead of 200.
type BatchResponse struct {
	Solver    string        `json:"solver"`
	Count     int           `json:"count"`
	Solved    int           `json:"solved"`
	Failed    int           `json:"failed"`
	Cancelled int           `json:"cancelled"`
	Shed      int           `json:"shed,omitempty"`
	Results   []BatchResult `json:"results"`
}

// SolversResponse is the body of GET /v1/solvers.
type SolversResponse struct {
	Solvers []string `json:"solvers"`
	Default string   `json:"default"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	// Solver selects a registry entry; empty uses the server's default.
	Solver string `json:"solver,omitempty"`
	// Instance is the CRSharing instance to solve.
	Instance *core.Instance `json:"instance"`
	// Timeout bounds the solve once it starts running (queueing time does
	// not count), as a Go duration string. Unlike the synchronous endpoints
	// it is clamped to the job manager's maximum, not the HTTP one — long
	// solves are what the job API is for.
	Timeout string `json:"timeout,omitempty"`
}

// Job responses (POST /v1/jobs, GET /v1/jobs/{id}, DELETE /v1/jobs/{id})
// are jobs.Snapshot values serialised directly; JobListResponse is the body
// of GET /v1/jobs.
type JobListResponse struct {
	Count int             `json:"count"`
	Jobs  []jobs.Snapshot `json:"jobs"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
