package engine

import (
	"context"
	"testing"

	"crsharing/internal/core"
	"crsharing/internal/solver"
)

func benchEngine(b *testing.B, cache *solver.Cache) *Engine {
	b.Helper()
	eng, err := New(Config{
		Registry:      solver.Default(),
		Cache:         cache,
		DefaultSolver: "greedy-balance",
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func benchEngineInstance() *core.Instance {
	return core.NewInstance(
		[]float64{0.9, 0.3, 0.5, 0.7, 0.2, 0.8},
		[]float64{0.2, 0.2, 0.2, 0.6},
		[]float64{0.6, 0.6, 0.4},
	)
}

// BenchmarkEngineSolveFresh measures the full pipeline without a cache:
// admission, solve, execution, telemetry assembly.
func BenchmarkEngineSolveFresh(b *testing.B) {
	eng := benchEngine(b, nil)
	inst := benchEngineInstance()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Solve(ctx, Request{Instance: inst}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSolveCacheHit measures the pipeline's replay path: the
// request is answered from the memo cache, so the cost is fingerprinting
// plus telemetry assembly.
func BenchmarkEngineSolveCacheHit(b *testing.B) {
	eng := benchEngine(b, solver.NewCache(4, 64))
	inst := benchEngineInstance()
	ctx := context.Background()
	if _, err := eng.Solve(ctx, Request{Instance: inst}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Solve(ctx, Request{Instance: inst})
		if err != nil {
			b.Fatal(err)
		}
		if res.Source == solver.SourceSolve {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkEngineSolveCacheHitPrehashed is the cache-hit path when the
// caller supplies the fingerprint (as the job manager does).
func BenchmarkEngineSolveCacheHitPrehashed(b *testing.B) {
	eng := benchEngine(b, solver.NewCache(4, 64))
	inst := benchEngineInstance()
	fp := inst.Fingerprint()
	ctx := context.Background()
	if _, err := eng.Solve(ctx, Request{Instance: inst}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Solve(ctx, Request{Instance: inst, Fingerprint: &fp}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSolveEachCacheHitPrehashed is the batch replay counterpart
// of BenchmarkEngineSolveCacheHitPrehashed: every instance's fingerprint is
// computed once at the batch split (SolveEach hashes before submitting, and
// the memoised fingerprint makes later calls free), so the per-shard cache
// route never re-hashes.
func BenchmarkEngineSolveEachCacheHitPrehashed(b *testing.B) {
	eng := benchEngine(b, solver.NewCache(4, 256))
	insts := make([]*core.Instance, 16)
	for i := range insts {
		insts[i] = core.NewInstance([]float64{float64(i+1) / 20, 0.5}, []float64{0.25})
		insts[i].Fingerprint() // memoise, as the batch split does
	}
	ctx := context.Background()
	eng.SolveEach(ctx, "", "", insts, 8) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outcomes := eng.SolveEach(ctx, "", "", insts, 8)
		for _, out := range outcomes {
			if out.Err != nil {
				b.Fatal(out.Err)
			}
			if out.Result.Source == solver.SourceSolve {
				b.Fatal("expected a cache hit")
			}
		}
	}
}

// BenchmarkAdmissionUncontended measures one uncontended acquire/release
// pair of the fair scheduler — the cost every fresh solve pays even when the
// system is idle, gated by benchdiff in CI.
func BenchmarkAdmissionUncontended(b *testing.B) {
	sem := newFairScheduler(16, TenantConfig{}, nil, 0)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := sem.Acquire(ctx, "", 1); err != nil {
			b.Fatal(err)
		}
		sem.Release("", 1)
	}
}

// BenchmarkAdmissionMultiTenant measures the uncontended acquire/release
// pair when the request names a configured (non-default) tenant — the lookup
// plus quota bookkeeping on top of the base path.
func BenchmarkAdmissionMultiTenant(b *testing.B) {
	sem := newFairScheduler(16, TenantConfig{}, map[string]TenantConfig{
		"gold": {Weight: 3, MaxInflight: 12},
		"free": {Weight: 1, MaxInflight: 4, Priority: 1},
	}, 0)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := sem.Acquire(ctx, "gold", 1); err != nil {
			b.Fatal(err)
		}
		sem.Release("gold", 1)
	}
}

// BenchmarkSolveEach measures the batch fan-out over a cached corpus.
func BenchmarkSolveEach(b *testing.B) {
	eng := benchEngine(b, solver.NewCache(4, 256))
	insts := make([]*core.Instance, 16)
	for i := range insts {
		insts[i] = core.NewInstance([]float64{float64(i+1) / 20, 0.5}, []float64{0.25})
	}
	ctx := context.Background()
	eng.SolveEach(ctx, "", "", insts, 8) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outcomes := eng.SolveEach(ctx, "", "", insts, 8)
		for _, out := range outcomes {
			if out.Err != nil {
				b.Fatal(out.Err)
			}
		}
	}
}
