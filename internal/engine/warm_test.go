package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/gen"
	"crsharing/internal/progress"
	"crsharing/internal/solver"
)

// warmSolver is a stub kernel that honours the warm-start protocol: a
// feasible hint on the context is accepted (recorded via SetWarmSeed, exactly
// as the branch-and-bound kernel does) and surfaces in its stats; the
// schedule itself comes from greedy-balance so it is always valid.
type warmSolver struct {
	name string
}

func (s *warmSolver) Name() string { return s.name }

func (s *warmSolver) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, solver.Stats, error) {
	st := solver.Stats{Solver: s.name, Nodes: 1}
	if h := progress.WarmStartFrom(ctx); h != nil && h.Schedule != nil {
		if res, err := core.Execute(inst, h.Schedule); err == nil && res.Finished() {
			st.WarmStart = true
			st.SeedMakespan = res.Makespan()
			progress.SetWarmSeed(ctx, int64(res.Makespan()))
		}
	}
	sched, err := greedybalance.New().Schedule(inst)
	return sched, st, err
}

func newWarmEngine(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	reg := solver.NewRegistry()
	reg.Register("warm-stub", func() solver.Solver { return &warmSolver{name: "warm-stub"} })
	cfg := Config{
		Registry:      reg,
		Cache:         solver.NewCache(4, 256),
		DefaultSolver: "warm-stub",
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// TestRequestWarmStartTelemetry covers the request-supplied hint path: a
// fresh solve that accepts the hint reports warm_start="request" and the
// validated seed makespan; replays of the same answer do not re-claim it.
func TestRequestWarmStartTelemetry(t *testing.T) {
	eng := newWarmEngine(t, nil)
	ctx := context.Background()

	cold, err := eng.Solve(ctx, Request{Instance: core.NewInstance([]float64{0.3, 0.7}, []float64{0.5})})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Telemetry.WarmStart != "" || cold.Telemetry.SeedMakespan != 0 {
		t.Fatalf("hintless solve claims a warm start: %+v", cold.Telemetry)
	}

	inst := core.NewInstance([]float64{0.4, 0.6}, []float64{0.2, 0.8})
	hint, err := greedybalance.New().Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Solve(ctx, Request{Instance: inst, WarmStart: hint})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Source != solver.SourceSolve {
		t.Fatalf("warm request answered from %q, want a fresh solve", warm.Source)
	}
	if warm.Telemetry.WarmStart != WarmSourceRequest {
		t.Fatalf("warm_start = %q, want %q", warm.Telemetry.WarmStart, WarmSourceRequest)
	}
	if warm.Telemetry.SeedMakespan <= 0 {
		t.Fatalf("seed_makespan = %d, want the hint's validated makespan", warm.Telemetry.SeedMakespan)
	}

	replay, err := eng.Solve(ctx, Request{Instance: inst})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Source == solver.SourceSolve {
		t.Fatalf("replay re-solved")
	}
	if replay.Telemetry.WarmStart != "" {
		t.Fatalf("cache replay claims warm_start = %q", replay.Telemetry.WarmStart)
	}

	if snap := eng.Snapshot(); snap.WarmStarts != 1 {
		t.Fatalf("snapshot counts %d warm starts, want 1", snap.WarmStarts)
	}
}

// TestNeighborWarmStartTelemetry covers the miss-path neighbor lookup: after
// a base instance is solved, a single-job mutant's fresh solve picks up an
// adapted hint from the neighbor index and reports warm_start="neighbor".
func TestNeighborWarmStartTelemetry(t *testing.T) {
	eng := newWarmEngine(t, nil)
	ctx := context.Background()

	base := core.NewInstance(
		[]float64{0.9, 0.3, 0.5},
		[]float64{0.2, 0.6},
		[]float64{0.7, 0.1},
	)
	if _, err := eng.Solve(ctx, Request{Instance: base}); err != nil {
		t.Fatal(err)
	}

	mutant := base.Clone()
	mutant.Procs[1] = mutant.Procs[1][1:] // drop one job
	res, err := eng.Solve(ctx, Request{Instance: mutant})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != solver.SourceSolve {
		t.Fatalf("mutant answered from %q, want a fresh solve", res.Source)
	}
	if res.Telemetry.WarmStart != WarmSourceNeighbor {
		t.Fatalf("warm_start = %q, want %q", res.Telemetry.WarmStart, WarmSourceNeighbor)
	}
	if res.Telemetry.SeedMakespan <= 0 {
		t.Fatalf("seed_makespan = %d for an accepted neighbor hint", res.Telemetry.SeedMakespan)
	}
}

// TestSpeculationPresolvesHotFamily: the controller notices a fingerprint
// crossing the hotness threshold and pre-solves its single-mutation variants
// into the memo cache under the speculation tenant.
func TestSpeculationPresolvesHotFamily(t *testing.T) {
	eng := newWarmEngine(t, func(cfg *Config) {
		cfg.Speculate = true
		cfg.SpeculateBudget = 4
	})
	ctx := context.Background()

	hot := core.NewInstance([]float64{0.9, 0.3, 0.5}, []float64{0.2, 0.6})
	for i := 0; i < speculateHotThreshold; i++ {
		if _, err := eng.Solve(ctx, Request{Instance: hot}); err != nil {
			t.Fatal(err)
		}
	}

	variants := gen.Variants(hot, 4)
	if len(variants) == 0 {
		t.Fatal("hot instance has no variants")
	}
	deadline := time.Now().Add(5 * time.Second)
	warmed := 0
	for time.Now().Before(deadline) {
		warmed = 0
		for _, v := range variants {
			if eng.Cache().Contains("warm-stub", v.Fingerprint()) {
				warmed++
			}
		}
		if warmed == len(variants) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if warmed == 0 {
		t.Fatal("speculation pre-solved none of the hot family's variants")
	}

	snap := eng.Snapshot()
	if snap.Speculation.Issued == 0 {
		t.Fatalf("controller reports zero issued speculations: %+v", snap.Speculation)
	}
	spec, ok := snap.Tenants[SpeculationTenant]
	if !ok {
		t.Fatal("speculation tenant missing from the snapshot")
	}
	if spec.Requests == 0 {
		t.Fatal("speculative solves not accounted to the speculation tenant")
	}

	// The pre-solved variant now answers a real request from the cache.
	hit, err := eng.Solve(ctx, Request{Instance: variants[0]})
	if err != nil {
		t.Fatal(err)
	}
	if hit.Source == solver.SourceSolve {
		t.Fatal("pre-solved variant re-solved on the real request")
	}
}

// TestSpeculationDoesNotStarveRealTraffic is the safety property: with
// speculation on and a hot family queued, a burst of real-tenant requests
// all complete without errors, and the speculation tenant never exceeds its
// single admission slot.
func TestSpeculationDoesNotStarveRealTraffic(t *testing.T) {
	eng := newWarmEngine(t, func(cfg *Config) {
		cfg.Speculate = true
		cfg.SpeculateBudget = 8
		cfg.MaxConcurrent = 2
	})
	ctx := context.Background()

	hot := core.NewInstance([]float64{0.9, 0.3, 0.5}, []float64{0.2, 0.6})
	for i := 0; i < speculateHotThreshold; i++ {
		if _, err := eng.Solve(ctx, Request{Instance: hot}); err != nil {
			t.Fatal(err)
		}
	}

	// Saturating real burst while the controller is (or may be) pre-solving.
	insts := distinctInstances(32)
	var wg sync.WaitGroup
	errs := make(chan error, len(insts))
	for _, inst := range insts {
		wg.Add(1)
		go func(inst *core.Instance) {
			defer wg.Done()
			if _, err := eng.Solve(ctx, Request{Instance: inst, Timeout: NoDeadline}); err != nil {
				errs <- err
			}
		}(inst)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("real-tenant solve failed under speculation: %v", err)
	}

	snap := eng.Snapshot()
	def := snap.Tenants[""]
	if def.Errors != 0 || def.Shed != 0 {
		t.Fatalf("real tenant saw errors/sheds: %+v", def)
	}
	spec := snap.Tenants[SpeculationTenant]
	if spec.Inflight > 1 {
		t.Fatalf("speculation tenant holds %d admission slots, quota is 1", spec.Inflight)
	}
	if spec.Requests > snap.Speculation.Issued {
		t.Fatalf("speculation tenant finished %d requests but only %d were issued", spec.Requests, snap.Speculation.Issued)
	}
}
