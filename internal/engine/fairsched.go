package engine

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultTenant is the tenant anonymous requests are accounted under.
const DefaultTenant = "default"

// TenantConfig is the admission policy of one tenant. The zero value is
// normalised to sensible defaults by the scheduler: weight 1, inflight quota
// equal to the global capacity, a queue bound of 16x capacity and priority 0
// (the most important class).
type TenantConfig struct {
	// Weight is the tenant's deficit-round-robin share: under contention a
	// tenant with weight 3 is admitted three solves for every one of a
	// weight-1 tenant. Values below 1 are raised to 1.
	Weight int64
	// MaxInflight caps the admission weight the tenant may hold at once;
	// 0 or less means the global capacity (no per-tenant cap).
	MaxInflight int64
	// MaxQueued caps the tenant's wait queue: an acquire arriving with
	// MaxQueued requests already queued for the tenant is shed with ErrShed
	// instead of waiting. 0 or less means 16x the global capacity.
	MaxQueued int
	// Priority is the tenant's class: 0 is the most important, higher values
	// are served strictly after lower ones and are shed early when the
	// backlog of more-important work already exceeds the global capacity.
	Priority int
}

// ErrShed is the typed rejection of the fair scheduler: the request was over
// quota (tenant queue full, or best-effort work behind a saturating backlog)
// and was refused instead of queued. The serving layer maps it to HTTP 429
// with a Retry-After header.
type ErrShed struct {
	// Tenant is the tenant the request was accounted to.
	Tenant string
	// Reason says which quota tripped ("queue full", "priority backlog",
	// "job queue full").
	Reason string
	// RetryAfter is the suggested client back-off.
	RetryAfter time.Duration
}

func (e *ErrShed) Error() string {
	return fmt.Sprintf("engine: tenant %q shed: %s (retry after %s)", e.Tenant, e.Reason, e.RetryAfter)
}

// Shed is a marker method: the solver cache treats errors with Shed() true as
// transient (never negative-cached), without importing this package.
func (e *ErrShed) Shed() bool { return true }

// TenantGauge is the live admission state of one tenant.
type TenantGauge struct {
	// Inflight is the admission weight the tenant holds right now.
	Inflight int64
	// Queued is the number of requests waiting in the tenant's queue.
	Queued int
}

// fairScheduler replaces the old single FIFO semaphore: one wait queue per
// tenant, drained by deficit-weighted round-robin under the same global
// capacity, with strict priority classes above the round-robin and per-tenant
// quotas that shed over-quota work instead of queueing it.
//
// Invariants:
//   - FIFO within a tenant: a tenant's queue is only ever served from the
//     front.
//   - Work-conserving across tenants of one class: each round-robin pass adds
//     weight x quantum to a tenant's deficit and admits its front waiters
//     while the deficit, the global capacity and the tenant quota allow.
//   - Strict priority across classes: while any class-p waiter is blocked on
//     global capacity, no class-q>p waiter is admitted. A class blocked only
//     on its own tenant quotas does not hold lower classes back.
//   - No overtaking on capacity: like the old semaphore, the sweep stops at
//     the first capacity-blocked waiter, so a heavy request is never starved
//     by a stream of light ones; its tenant keeps accumulating deficit and is
//     resumed first.
type fairScheduler struct {
	capacity   int64
	quantum    int64
	retryAfter time.Duration
	defaults   TenantConfig
	configured map[string]TenantConfig

	mu      sync.Mutex
	held    int64
	waiting int
	tenants map[string]*tenantState
	tiers   []*schedTier
}

// schedTier is one priority class: the tenants of that class that currently
// have waiters, in round-robin order.
type schedTier struct {
	priority     int
	ring         []*tenantState
	next         int
	queuedWeight int64
	// resume marks the tenant a capacity-frozen sweep stopped on: it already
	// received its deficit top-up for the interrupted visit, so the resuming
	// sweep must not grant another one — otherwise the head tenant's deficit
	// never drains and it monopolises every release.
	resume *tenantState
}

type tenantState struct {
	name     string
	cfg      TenantConfig
	inflight int64
	deficit  int64
	queue    []*schedWaiter
	inRing   bool
}

type schedWaiter struct {
	weight int64
	ready  chan struct{} // closed when granted
}

func newFairScheduler(capacity int64, defaults TenantConfig, tenants map[string]TenantConfig, retryAfter time.Duration) *fairScheduler {
	if capacity < 1 {
		capacity = 1
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	s := &fairScheduler{
		capacity:   capacity,
		quantum:    1,
		retryAfter: retryAfter,
		defaults:   normalizeTenant(defaults, capacity),
		configured: make(map[string]TenantConfig, len(tenants)),
		tenants:    make(map[string]*tenantState),
	}
	for name, cfg := range tenants {
		s.configured[name] = normalizeTenant(cfg, capacity)
	}
	return s
}

// normalizeTenant applies the documented defaults to a tenant config.
func normalizeTenant(cfg TenantConfig, capacity int64) TenantConfig {
	if cfg.Weight < 1 {
		cfg.Weight = 1
	}
	if cfg.MaxInflight <= 0 || cfg.MaxInflight > capacity {
		cfg.MaxInflight = capacity
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = int(16 * capacity)
	}
	if cfg.Priority < 0 {
		cfg.Priority = 0
	}
	return cfg
}

// Config returns the resolved (normalised) config the scheduler applies to
// the named tenant.
func (s *fairScheduler) Config(tenant string) TenantConfig {
	if cfg, ok := s.configured[s.canonical(tenant)]; ok {
		return cfg
	}
	return s.defaults
}

func (s *fairScheduler) canonical(tenant string) string {
	if tenant == "" {
		return DefaultTenant
	}
	return tenant
}

// state returns (creating on demand) the live state of a tenant. Callers hold
// the lock.
func (s *fairScheduler) stateLocked(tenant string) *tenantState {
	tenant = s.canonical(tenant)
	ts, ok := s.tenants[tenant]
	if !ok {
		ts = &tenantState{name: tenant, cfg: s.Config(tenant)}
		s.tenants[tenant] = ts
	}
	return ts
}

// tierLocked returns (creating and keeping sorted) the tier of a priority.
func (s *fairScheduler) tierLocked(priority int) *schedTier {
	for _, t := range s.tiers {
		if t.priority == priority {
			return t
		}
	}
	t := &schedTier{priority: priority}
	s.tiers = append(s.tiers, t)
	sort.Slice(s.tiers, func(i, j int) bool { return s.tiers[i].priority < s.tiers[j].priority })
	return t
}

// clampWeight bounds a request weight so it can be admitted at all: at least
// 1, at most the tenant's inflight quota (which is itself at most the global
// capacity). Acquire and Release apply the same clamp, so the books balance.
func clampWeight(cfg TenantConfig, weight int64) int64 {
	if weight < 1 {
		weight = 1
	}
	if weight > cfg.MaxInflight {
		weight = cfg.MaxInflight
	}
	return weight
}

// Acquire blocks until the tenant is granted weight units or ctx is done.
// Over-quota work is rejected immediately with *ErrShed: a full tenant queue,
// or a best-effort (priority > 0) request arriving while the backlog of
// equally-or-more important queued work already exceeds the global capacity.
func (s *fairScheduler) Acquire(ctx context.Context, tenant string, weight int64) error {
	s.mu.Lock()
	ts := s.stateLocked(tenant)
	weight = clampWeight(ts.cfg, weight)

	// Fast path: nobody is waiting anywhere and both budgets fit.
	if s.waiting == 0 && s.held+weight <= s.capacity && ts.inflight+weight <= ts.cfg.MaxInflight {
		s.held += weight
		ts.inflight += weight
		s.mu.Unlock()
		return nil
	}

	// Shedding: refuse over-quota work instead of queueing it.
	if len(ts.queue) >= ts.cfg.MaxQueued {
		s.mu.Unlock()
		return &ErrShed{Tenant: ts.name, Reason: "queue full", RetryAfter: s.retryAfter}
	}
	if ts.cfg.Priority > 0 && s.backlogAheadLocked(ts.cfg.Priority) >= s.capacity {
		s.mu.Unlock()
		return &ErrShed{Tenant: ts.name, Reason: "priority backlog", RetryAfter: s.retryAfter}
	}

	w := &schedWaiter{weight: weight, ready: make(chan struct{})}
	ts.queue = append(ts.queue, w)
	s.waiting++
	tier := s.tierLocked(ts.cfg.Priority)
	tier.queuedWeight += weight
	if !ts.inRing {
		tier.ring = append(tier.ring, ts)
		ts.inRing = true
	}
	// The new waiter may be admissible right away (e.g. the fast path was
	// skipped only because other tenants are quota-blocked).
	s.grantLocked()
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with the cancellation: keep the slot and
			// report success; the caller releases it normally.
			s.mu.Unlock()
			return nil
		default:
		}
		s.removeWaiterLocked(ts, w)
		// Removing a waiter can unblock the ones behind it, so re-sweep.
		s.grantLocked()
		s.mu.Unlock()
		return ctx.Err()
	}
}

// backlogAheadLocked sums the queued weight of classes at least as important
// as priority p (i.e. priority <= p).
func (s *fairScheduler) backlogAheadLocked(p int) int64 {
	var sum int64
	for _, t := range s.tiers {
		if t.priority <= p {
			sum += t.queuedWeight
		}
	}
	return sum
}

// removeWaiterLocked drops a cancelled waiter from its tenant queue and fixes
// the tier accounting.
func (s *fairScheduler) removeWaiterLocked(ts *tenantState, w *schedWaiter) {
	for i, q := range ts.queue {
		if q == w {
			ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
			s.waiting--
			tier := s.tierLocked(ts.cfg.Priority)
			tier.queuedWeight -= w.weight
			if len(ts.queue) == 0 {
				s.ringRemoveLocked(tier, ts)
			}
			return
		}
	}
}

// ringRemoveLocked takes a drained tenant out of its tier's round-robin ring
// and resets its deficit (a returning tenant starts fresh; unused share is
// not banked across idle periods).
func (s *fairScheduler) ringRemoveLocked(t *schedTier, ts *tenantState) {
	for i, r := range t.ring {
		if r == ts {
			t.ring = append(t.ring[:i], t.ring[i+1:]...)
			if t.next > i {
				t.next--
			}
			break
		}
	}
	ts.inRing = false
	ts.deficit = 0
	if t.resume == ts {
		t.resume = nil
	}
}

// Release returns weight units (as clamped by Acquire) and admits eligible
// waiters.
func (s *fairScheduler) Release(tenant string, weight int64) {
	s.mu.Lock()
	ts := s.stateLocked(tenant)
	weight = clampWeight(ts.cfg, weight)
	s.held -= weight
	ts.inflight -= weight
	if s.held < 0 || ts.inflight < 0 {
		s.mu.Unlock()
		panic(fmt.Sprintf("engine: scheduler released below zero (tenant %q weight %d)", tenant, weight))
	}
	s.grantLocked()
	s.mu.Unlock()
}

// grantLocked runs the deficit-round-robin sweep: tiers in ascending
// priority; within a tier, one deficit top-up per tenant per pass, admitting
// front waiters while deficit, capacity and tenant quota allow. A
// capacity-blocked waiter freezes the whole sweep (no overtaking, across or
// within tiers) with the round-robin cursor parked on its tenant, so the next
// release resumes exactly there.
func (s *fairScheduler) grantLocked() {
	for _, tier := range s.tiers {
		if blocked := s.sweepTierLocked(tier); blocked {
			return
		}
	}
}

func (s *fairScheduler) sweepTierLocked(t *schedTier) (capacityBlocked bool) {
	progress := true
	for progress {
		progress = false
		for visited := len(t.ring); visited > 0 && len(t.ring) > 0; visited-- {
			if t.next >= len(t.ring) {
				t.next = 0
			}
			ts := t.ring[t.next]
			if t.resume == ts {
				t.resume = nil // interrupted visit: the top-up already happened
			} else {
				ts.deficit += ts.cfg.Weight * s.quantum
				// Cap the deficit so an idle-but-queued (quota-blocked) tenant
				// cannot bank an unbounded burst; the cap still covers the
				// heaviest admissible waiter.
				if max := ts.cfg.Weight*s.quantum + s.capacity; ts.deficit > max {
					ts.deficit = max
				}
			}
			for len(ts.queue) > 0 {
				w := ts.queue[0]
				if ts.inflight+w.weight > ts.cfg.MaxInflight {
					if s.held >= s.capacity {
						// Quota-blocked in a saturated system: the spare
						// capacity is zero, so skipping ahead would hand the
						// tenant's earned share to whoever is next in the
						// ring (under capacity 1 that degenerates weighted
						// sharing into plain alternation). Freeze instead;
						// the tenant's own release resumes it to spend the
						// rest of its deficit.
						t.resume = ts
						return true
					}
					break // spare capacity: let other tenants use it
				}
				if ts.deficit < w.weight {
					// Not yet earned: keep sweeping so the per-pass top-ups
					// accumulate (the deficit cap covers any clamped weight,
					// so this converges); rival tenants earn share meanwhile.
					progress = true
					break
				}
				if s.held+w.weight > s.capacity {
					// Global capacity: freeze the sweep with the cursor on
					// this tenant so it is resumed first (without a second
					// top-up).
					t.resume = ts
					return true
				}
				ts.queue = ts.queue[1:]
				s.waiting--
				t.queuedWeight -= w.weight
				s.held += w.weight
				ts.inflight += w.weight
				ts.deficit -= w.weight
				close(w.ready)
				progress = true
			}
			if len(ts.queue) == 0 {
				s.ringRemoveLocked(t, ts)
				continue // ringRemove shifted the ring under the cursor
			}
			t.next++
		}
	}
	return false
}

// InUse returns the currently held weight (for gauges).
func (s *fairScheduler) InUse() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.held
}

// Waiting returns the number of queued acquirers across all tenants.
func (s *fairScheduler) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiting
}

// Gauges returns the per-tenant inflight weight and queue depth of every
// tenant the scheduler has seen.
func (s *fairScheduler) Gauges() map[string]TenantGauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]TenantGauge, len(s.tenants))
	for name, ts := range s.tenants {
		out[name] = TenantGauge{Inflight: ts.inflight, Queued: len(ts.queue)}
	}
	return out
}

// ParseTenants parses a comma-separated tenant quota spec, each entry
// "name:weight[:maxinflight[:maxqueued[:priority]]]"; omitted fields take the
// TenantConfig defaults. It is the format behind crserved's -tenants flag.
func ParseTenants(spec string) (map[string]TenantConfig, error) {
	out := make(map[string]TenantConfig)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, fmt.Errorf("tenant spec %q: empty name", entry)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("tenant spec: duplicate tenant %q", name)
		}
		if len(parts) > 5 {
			return nil, fmt.Errorf("tenant spec %q: want name:weight[:maxinflight[:maxqueued[:priority]]]", entry)
		}
		var cfg TenantConfig
		fields := []*int64{&cfg.Weight, &cfg.MaxInflight}
		for i, p := range parts[1:] {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			v, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tenant spec %q: field %d: %v", entry, i+2, err)
			}
			switch i {
			case 0, 1:
				*fields[i] = v
			case 2:
				cfg.MaxQueued = int(v)
			case 3:
				cfg.Priority = int(v)
			}
		}
		out[name] = cfg
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tenant spec %q: no tenants", spec)
	}
	return out, nil
}
