package engine

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// semaphore is a context-aware weighted admission semaphore: the single
// concurrency budget every solve of the process — synchronous, batch shard or
// job worker — must acquire before running. Waiters are served in FIFO order
// so a saturating batch cannot indefinitely starve a queued synchronous
// solve, and an acquire whose context expires leaves the queue immediately.
type semaphore struct {
	capacity int64

	mu      sync.Mutex
	held    int64
	waiters list.List // of *waiter, front = longest waiting
}

type waiter struct {
	weight int64
	ready  chan struct{} // closed when the waiter is granted its weight
}

func newSemaphore(capacity int64) *semaphore {
	return &semaphore{capacity: capacity}
}

// Acquire blocks until weight units are held or ctx is done. Weights above
// the capacity are clamped to it so a single heavy request can still run
// (alone) instead of deadlocking forever.
func (s *semaphore) Acquire(ctx context.Context, weight int64) error {
	if weight < 1 {
		weight = 1
	}
	if weight > s.capacity {
		weight = s.capacity
	}
	s.mu.Lock()
	if s.held+weight <= s.capacity && s.waiters.Len() == 0 {
		s.held += weight
		s.mu.Unlock()
		return nil
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with the cancellation: keep the slot and
			// report success; the caller releases it normally.
			s.mu.Unlock()
			return nil
		default:
		}
		s.waiters.Remove(elem)
		// Removing a waiter can unblock the ones behind it (a lighter waiter
		// may now fit), so re-run the grant sweep.
		s.grantLocked()
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns weight units to the semaphore and wakes eligible waiters.
// The weight must match the corresponding Acquire (after its clamping).
func (s *semaphore) Release(weight int64) {
	if weight < 1 {
		weight = 1
	}
	if weight > s.capacity {
		weight = s.capacity
	}
	s.mu.Lock()
	s.held -= weight
	if s.held < 0 {
		s.mu.Unlock()
		panic(fmt.Sprintf("engine: semaphore released below zero (weight %d)", weight))
	}
	s.grantLocked()
	s.mu.Unlock()
}

// grantLocked admits waiters from the front of the queue while they fit.
// Strict FIFO: the sweep stops at the first waiter that does not fit, so a
// heavy waiter is never overtaken forever by a stream of light ones.
func (s *semaphore) grantLocked() {
	for {
		front := s.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*waiter)
		if s.held+w.weight > s.capacity {
			return
		}
		s.held += w.weight
		s.waiters.Remove(front)
		close(w.ready)
	}
}

// InUse returns the currently held weight (for gauges).
func (s *semaphore) InUse() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.held
}

// Waiting returns the number of queued acquirers (for gauges).
func (s *semaphore) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiters.Len()
}
