package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
	"crsharing/internal/progress"
	"crsharing/internal/solver"
)

// countingSolver tracks its concurrency high-water mark and optionally
// blocks until released or cancelled. Successful solves delegate to
// greedy-balance so the schedule is valid.
type countingSolver struct {
	name  string
	calls atomic.Int64
	cur   atomic.Int64
	max   atomic.Int64
	block chan struct{} // when non-nil, Solve waits for close or ctx
}

func (s *countingSolver) Name() string { return s.name }

func (s *countingSolver) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, solver.Stats, error) {
	s.calls.Add(1)
	cur := s.cur.Add(1)
	defer s.cur.Add(-1)
	for {
		max := s.max.Load()
		if cur <= max || s.max.CompareAndSwap(max, cur) {
			break
		}
	}
	if s.block != nil {
		select {
		case <-s.block:
		case <-ctx.Done():
			return nil, solver.Stats{Solver: s.name}, ctx.Err()
		}
	}
	sched, err := greedybalance.New().Schedule(inst)
	return sched, solver.Stats{Solver: s.name, Elapsed: time.Microsecond, Nodes: 7}, err
}

func newTestEngine(t *testing.T, stub solver.Solver, mutate func(*Config)) *Engine {
	t.Helper()
	reg := solver.NewRegistry()
	reg.Register("stub", func() solver.Solver { return stub })
	cfg := Config{
		Registry:      reg,
		Cache:         solver.NewCache(4, 64),
		DefaultSolver: "stub",
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// distinctInstances returns n instances with pairwise distinct fingerprints.
func distinctInstances(n int) []*core.Instance {
	insts := make([]*core.Instance, n)
	for i := range insts {
		insts[i] = core.NewInstance([]float64{float64(i+1) / float64(n+1), 0.5}, []float64{0.25})
	}
	return insts
}

func TestSolveSources(t *testing.T) {
	stub := &countingSolver{name: "stub"}
	eng := newTestEngine(t, stub, nil)
	inst := core.NewInstance([]float64{0.3, 0.7}, []float64{0.5})

	first, err := eng.Solve(context.Background(), Request{Instance: inst})
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != solver.SourceSolve {
		t.Fatalf("first solve source %q", first.Source)
	}
	if first.Telemetry.Source != string(solver.SourceSolve) || first.Telemetry.Nodes != 7 {
		t.Fatalf("fresh telemetry malformed: %+v", first.Telemetry)
	}
	if first.Fingerprint != inst.Fingerprint() {
		t.Fatal("result fingerprint does not match the instance")
	}
	if first.Telemetry.Makespan != first.Evaluation.Makespan || first.Telemetry.Steps <= 0 {
		t.Fatalf("telemetry/evaluation mismatch: %+v", first.Telemetry)
	}

	second, err := eng.Solve(context.Background(), Request{Instance: inst})
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != solver.SourceCache {
		t.Fatalf("repeat source %q, want cache", second.Source)
	}
	if second.Telemetry.Source != string(solver.SourceCache) || second.Telemetry.Nodes != 7 {
		t.Fatalf("cached telemetry malformed: %+v", second.Telemetry)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("solver invoked %d times for identical requests, want 1", got)
	}

	snap := eng.Snapshot()
	if snap.SourceSolve != 1 || snap.SourceCache != 1 || snap.NodesTotal != 7 {
		t.Fatalf("snapshot accounting wrong: %+v", snap)
	}
	if snap.SolveSeconds.Count != 1 || snap.SolveNodes.Count != 1 {
		t.Fatalf("histograms missed the fresh solve: %+v", snap)
	}
}

func TestSolveValidation(t *testing.T) {
	eng := newTestEngine(t, &countingSolver{name: "stub"}, nil)
	if _, err := eng.Solve(context.Background(), Request{}); err == nil {
		t.Error("missing instance accepted")
	}
	bad := core.NewInstance([]float64{1.5})
	if _, err := eng.Solve(context.Background(), Request{Instance: bad}); err == nil {
		t.Error("invalid instance accepted")
	}
	good := core.NewInstance([]float64{0.5})
	if _, err := eng.Solve(context.Background(), Request{Instance: good, Solver: "no-such"}); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestSolveDeadlineClamping(t *testing.T) {
	stub := &countingSolver{name: "stub", block: make(chan struct{})} // never released
	eng := newTestEngine(t, stub, func(cfg *Config) {
		cfg.DefaultTimeout = 50 * time.Millisecond
		cfg.MaxTimeout = 100 * time.Millisecond
	})
	inst := core.NewInstance([]float64{0.5})

	// No requested budget: the default applies.
	start := time.Now()
	_, err := eng.Solve(context.Background(), Request{Instance: inst})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("default deadline not applied")
	}

	// A budget above the ceiling is clamped to it.
	start = time.Now()
	_, err = eng.Solve(context.Background(), Request{Instance: inst, Timeout: time.Hour})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("MaxTimeout clamp not applied: waited %s", elapsed)
	}

	// Per-request limits override the engine's: the job surface passes its
	// own, larger ceilings.
	start = time.Now()
	_, err = eng.Solve(context.Background(), Request{
		Instance: inst,
		Timeout:  250 * time.Millisecond,
		Limits:   &Limits{Default: time.Second, Max: time.Second},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("request limits ignored: expired after %s under a 250ms budget", elapsed)
	}
}

func TestLimitsResolve(t *testing.T) {
	l := Limits{Default: 30 * time.Second, Max: 2 * time.Minute}
	cases := []struct {
		in, want time.Duration
	}{
		{0, 30 * time.Second},
		{time.Second, time.Second},
		{time.Hour, 2 * time.Minute},
	}
	for _, c := range cases {
		if got := l.Resolve(c.in); got != c.want {
			t.Errorf("Resolve(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestObserverAttachment(t *testing.T) {
	// A solver that reports incumbents through the context.
	reporting := solverFunc(func(ctx context.Context, inst *core.Instance) (*core.Schedule, solver.Stats, error) {
		progress.Report(ctx, progress.Incumbent{Solver: "reporting", Makespan: 5})
		progress.Report(ctx, progress.Incumbent{Solver: "reporting", Makespan: 3})
		sched, err := greedybalance.New().Schedule(inst)
		return sched, solver.Stats{Solver: "reporting"}, err
	})
	reg := solver.NewRegistry()
	reg.Register("reporting", func() solver.Solver { return reporting })
	eng, err := New(Config{Registry: reg, DefaultSolver: "reporting"})
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	var mu sync.Mutex
	_, err = eng.Solve(context.Background(), Request{
		Instance: core.NewInstance([]float64{0.5}),
		Observer: func(inc progress.Incumbent) {
			mu.Lock()
			seen = append(seen, inc.Makespan)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 5 || seen[1] != 3 {
		t.Fatalf("observer saw %v, want [5 3]", seen)
	}
}

type solverFunc func(ctx context.Context, inst *core.Instance) (*core.Schedule, solver.Stats, error)

func (f solverFunc) Name() string { return "reporting" }
func (f solverFunc) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, solver.Stats, error) {
	return f(ctx, inst)
}

// TestAdmissionSharedAcrossSolveAndBatch is the admission-gap regression at
// the engine level: a saturating SolveEach batch and concurrent single
// solves all draw from the same semaphore, so the solver's concurrency
// high-water mark can never exceed MaxConcurrent.
func TestAdmissionSharedAcrossSolveAndBatch(t *testing.T) {
	const cap = 2
	stub := &countingSolver{name: "stub", block: make(chan struct{})}
	eng := newTestEngine(t, stub, func(cfg *Config) { cfg.MaxConcurrent = cap })

	batch := distinctInstances(6)
	singles := distinctInstances(9)[6:] // distinct from the batch

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		outcomes := eng.SolveEach(context.Background(), "", "", batch, len(batch))
		for _, out := range outcomes {
			if out.Err != nil {
				t.Errorf("batch outcome %d: %v", out.Index, out.Err)
			}
		}
	}()
	for _, inst := range singles {
		wg.Add(1)
		go func(inst *core.Instance) {
			defer wg.Done()
			if _, err := eng.Solve(context.Background(), Request{Instance: inst, Timeout: NoDeadline}); err != nil {
				t.Errorf("single solve: %v", err)
			}
		}(inst)
	}

	// Wait until the cap is reached, then hold a beat to catch overshoot.
	deadline := time.Now().Add(5 * time.Second)
	for stub.cur.Load() < cap && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(stub.block)
	wg.Wait()

	if got := stub.max.Load(); got != cap {
		t.Fatalf("solver concurrency high-water mark %d, want exactly the configured cap %d", got, cap)
	}
	if got := stub.calls.Load(); got != int64(len(batch)+len(singles)) {
		t.Fatalf("%d solves ran, want %d", got, len(batch)+len(singles))
	}
}

// TestAdmissionQueuedSolveNotStarved checks FIFO admission: a synchronous
// solve queued behind a saturating batch runs as soon as a slot frees
// instead of being starved by later batch shards.
func TestAdmissionQueuedSolveNotStarved(t *testing.T) {
	stub := &countingSolver{name: "stub", block: make(chan struct{})}
	eng := newTestEngine(t, stub, func(cfg *Config) { cfg.MaxConcurrent = 1 })

	// Saturate: one blocking solve holds the only slot.
	first := make(chan error, 1)
	insts := distinctInstances(2)
	go func() {
		_, err := eng.Solve(context.Background(), Request{Instance: insts[0], Timeout: NoDeadline})
		first <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for stub.cur.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// The queued sync solve waits...
	second := make(chan error, 1)
	go func() {
		_, err := eng.Solve(context.Background(), Request{Instance: insts[1], Timeout: NoDeadline})
		second <- err
	}()
	select {
	case err := <-second:
		t.Fatalf("queued solve finished while the slot was held (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	// ...and runs once the slot frees.
	close(stub.block)
	for _, ch := range []chan error{first, second} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("solve did not finish after the slot freed")
		}
	}
	if got := stub.max.Load(); got != 1 {
		t.Fatalf("concurrency high-water mark %d, want 1", got)
	}
}

// TestAdmissionRespectsDeadlineWhileQueued: a queued request whose budget
// expires leaves the admission queue with a deadline error instead of
// waiting forever.
func TestAdmissionRespectsDeadlineWhileQueued(t *testing.T) {
	stub := &countingSolver{name: "stub", block: make(chan struct{})}
	defer close(stub.block)
	eng := newTestEngine(t, stub, func(cfg *Config) { cfg.MaxConcurrent = 1 })
	insts := distinctInstances(2)

	done := make(chan error, 1)
	go func() {
		_, err := eng.Solve(context.Background(), Request{Instance: insts[0], Timeout: NoDeadline})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for stub.cur.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	_, err := eng.Solve(context.Background(), Request{Instance: insts[1], Timeout: 50 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued solve err = %v, want deadline exceeded", err)
	}
	if eng.Snapshot().Waiting != 0 {
		t.Fatal("expired request still queued for admission")
	}
}

func TestSolveEachSkipsAfterCancellation(t *testing.T) {
	stub := &countingSolver{name: "stub", block: make(chan struct{})} // never released
	defer close(stub.block)
	eng := newTestEngine(t, stub, func(cfg *Config) { cfg.MaxConcurrent = 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	outcomes := eng.SolveEach(ctx, "", "", distinctInstances(4), 2)
	solved, failed, skipped := 0, 0, 0
	for _, out := range outcomes {
		switch {
		case out.Skipped:
			skipped++
			if out.Err == nil {
				t.Fatalf("skipped outcome without error: %+v", out)
			}
		case out.Err != nil:
			failed++
		default:
			solved++
		}
	}
	if solved != 0 {
		t.Fatalf("blocked solver cannot have solved anything: %d solved", solved)
	}
	if skipped == 0 {
		t.Fatal("expected some never-attempted instances marked skipped")
	}
	if solved+failed+skipped != 4 {
		t.Fatalf("accounting broken: %d/%d/%d", solved, failed, skipped)
	}
}

func TestSchedulerWeights(t *testing.T) {
	sem := newFairScheduler(4, TenantConfig{}, nil, 0)
	ctx := context.Background()
	if err := sem.Acquire(ctx, "", 3); err != nil {
		t.Fatal(err)
	}
	if got := sem.InUse(); got != 3 {
		t.Fatalf("InUse = %d, want 3", got)
	}
	// Weight above capacity is clamped so it can still run alone.
	done := make(chan error, 1)
	go func() { done <- sem.Acquire(ctx, "", 99) }()
	select {
	case <-done:
		t.Fatal("oversized acquire admitted while 3 units were held")
	case <-time.After(20 * time.Millisecond):
	}
	sem.Release("", 3)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("clamped acquire never admitted")
	}
	sem.Release("", 99) // symmetric clamp
	if got := sem.InUse(); got != 0 {
		t.Fatalf("InUse = %d after full release, want 0", got)
	}
}

func TestSchedulerCancelledWaiterUnblocksQueue(t *testing.T) {
	sem := newFairScheduler(2, TenantConfig{}, nil, 0)
	ctx := context.Background()
	if err := sem.Acquire(ctx, "", 2); err != nil {
		t.Fatal(err)
	}
	// A heavy waiter queues first, then a light one behind it (same tenant).
	heavyCtx, heavyCancel := context.WithCancel(ctx)
	heavyErr := make(chan error, 1)
	go func() { heavyErr <- sem.Acquire(heavyCtx, "", 2) }()
	for sem.Waiting() < 1 {
		time.Sleep(time.Millisecond)
	}
	lightErr := make(chan error, 1)
	go func() { lightErr <- sem.Acquire(ctx, "", 1) }()
	for sem.Waiting() < 2 {
		time.Sleep(time.Millisecond)
	}

	// Free one unit: FIFO within the tenant keeps the heavy waiter first, so
	// nobody runs yet.
	sem.Release("", 1)
	select {
	case <-lightErr:
		t.Fatal("light waiter overtook the heavy one")
	case <-time.After(20 * time.Millisecond):
	}
	// Cancelling the heavy waiter must re-sweep the queue and admit the
	// light one with the already-free unit.
	heavyCancel()
	if err := <-heavyErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("heavy waiter err = %v", err)
	}
	select {
	case err := <-lightErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("light waiter not admitted after the heavy one left")
	}
}

func TestDefaultsAndAccessors(t *testing.T) {
	reg := solver.Default()
	eng, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if eng.DefaultSolver() != "portfolio" || eng.MaxConcurrent() != 16 {
		t.Fatalf("defaults not applied: %q %d", eng.DefaultSolver(), eng.MaxConcurrent())
	}
	if l := eng.Limits(); l.Default != 30*time.Second || l.Max != 2*time.Minute {
		t.Fatalf("default limits %+v", l)
	}
	if eng.Registry() != reg || eng.Cache() != nil {
		t.Fatal("accessors broken")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil registry accepted")
	}
	if _, err := New(Config{Registry: reg, DefaultSolver: "no-such"}); err == nil {
		t.Fatal("unknown default solver accepted")
	}
	name, err := eng.ResolveSolver("")
	if err != nil || name != "portfolio" {
		t.Fatalf("ResolveSolver empty = %q, %v", name, err)
	}
	if _, err := eng.ResolveSolver("no-such"); err == nil {
		t.Fatal("unknown solver resolved")
	}
}

func TestSolveWithoutCache(t *testing.T) {
	stub := &countingSolver{name: "stub"}
	eng := newTestEngine(t, stub, func(cfg *Config) { cfg.Cache = nil })
	inst := core.NewInstance([]float64{0.5})
	for i := 0; i < 2; i++ {
		res, err := eng.Solve(context.Background(), Request{Instance: inst})
		if err != nil {
			t.Fatal(err)
		}
		if res.Source != solver.SourceSolve {
			t.Fatalf("uncached solve %d source %q", i, res.Source)
		}
	}
	if got := stub.calls.Load(); got != 2 {
		t.Fatalf("uncached engine memoised: %d calls", got)
	}
	if snap := eng.Snapshot(); snap.SourceSolve != 2 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	want := []uint64{1, 3, 4}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, snap.Counts[i], w, snap)
		}
	}
	if snap.Count != 5 || snap.Sum != 560.5 {
		t.Fatalf("sum/count wrong: %+v", snap)
	}
}

func TestTelemetryJSONShape(t *testing.T) {
	// The telemetry must serialise with stable snake_case keys — it is part
	// of the public API surface (solve responses, job records, crload).
	eng := newTestEngine(t, &countingSolver{name: "stub"}, nil)
	res, err := eng.Solve(context.Background(), Request{Instance: core.NewInstance([]float64{0.5})})
	if err != nil {
		t.Fatal(err)
	}
	raw := fmt.Sprintf("%+v", res.Telemetry)
	if res.Telemetry.Solver != "stub" || res.Telemetry.LowerBoundKind == "" {
		t.Fatalf("telemetry incomplete: %s", raw)
	}
}
