// Package engine is the single solve pipeline of the scheduling system:
// every surface that wants an instance solved — the synchronous HTTP
// handlers, the batch fan-out, the asynchronous job workers, the CLIs and
// the load harness — submits a Request here instead of talking to the solver
// registry or the memo cache directly. The engine owns, in order, the full
// lifecycle of a solve request:
//
//  1. resolution — the solver name is resolved against the registry,
//  2. deadline clamping — the requested budget is resolved against the
//     caller's limits (sync and job surfaces have different ceilings),
//  3. cache routing — the request is answered from the shared memo cache or
//     coalesced onto an identical in-flight solve when possible,
//  4. admission — a fresh solve first acquires the global weighted
//     semaphore, the one concurrency budget shared by every surface (before
//     this package existed, batch shards and job workers bypassed the
//     serving layer's semaphore entirely),
//  5. progress — the caller's incumbent observer is attached to the solve
//     context, and
//  6. telemetry — the finished request is accounted into a structured
//     Telemetry record (search nodes, incumbents, cache source, bounds,
//     schedule shape) and into the engine's aggregate metrics.
//
// The result is that "how a solve runs" is defined exactly once; the
// surfaces differ only in how they parse requests and render results.
package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"crsharing/internal/core"
	"crsharing/internal/progress"
	"crsharing/internal/solver"
)

// Limits is a deadline policy: the default budget applied when a request
// asks for none, and the ceiling request-supplied budgets are clamped to.
type Limits struct {
	Default time.Duration
	Max     time.Duration
}

// Resolve maps a requested budget to the effective one under the policy.
func (l Limits) Resolve(d time.Duration) time.Duration {
	if d <= 0 {
		d = l.Default
	}
	if l.Max > 0 && d > l.Max {
		d = l.Max
	}
	return d
}

// NoDeadline, passed as Request.Timeout, disables the engine's per-request
// deadline entirely: the caller's context governs. The batch path uses it so
// one batch-wide deadline covers every shard instead of each shard getting
// its own default.
const NoDeadline time.Duration = -1

// Config configures an Engine. Zero values of optional fields take the
// documented defaults.
type Config struct {
	// Registry resolves solver names; required.
	Registry *solver.Registry
	// Cache is the shared memo cache; nil disables caching (every request
	// solves fresh).
	Cache *solver.Cache
	// DefaultSolver is used when a request names none (default "portfolio").
	DefaultSolver string
	// DefaultTimeout bounds requests that ask for none (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied budgets (default 2m). Callers with
	// their own deadline policy (the job manager) override per request via
	// Request.Limits.
	MaxTimeout time.Duration
	// MaxConcurrent is the global admission budget: the total weight of
	// solves running at once across every surface (default 16).
	MaxConcurrent int
	// Tenants configures per-tenant admission quotas by tenant name. Tenants
	// not listed here run under TenantDefaults.
	Tenants map[string]TenantConfig
	// TenantDefaults is the quota template applied to tenants absent from
	// Tenants (zero value: weight 1, inflight quota = MaxConcurrent, queue
	// bound 16x MaxConcurrent, priority 0).
	TenantDefaults TenantConfig
	// ShedRetryAfter is the back-off hint carried by ErrShed rejections
	// (default 1s).
	ShedRetryAfter time.Duration
	// Speculate enables the speculation controller: the engine watches
	// per-fingerprint request frequency and pre-solves single-mutation
	// variants of hot instances into the memo cache, under the dedicated
	// low-weight SpeculationTenant so speculation can never starve real
	// traffic through the fair scheduler. Requires Cache.
	Speculate bool
	// SpeculateBudget caps how many variants are pre-solved per hot
	// instance (default 8).
	SpeculateBudget int
}

// Engine routes every solve of the process. Create one with New and share it
// between the serving layer, the job manager and any other solve surface; it
// is safe for concurrent use.
type Engine struct {
	cfg  Config
	sem  *fairScheduler
	met  *metrics
	spec *speculator // nil unless Config.Speculate
}

// New validates the configuration, applies defaults and returns an Engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Registry == nil {
		return nil, errors.New("engine: Config.Registry is required")
	}
	if cfg.DefaultSolver == "" {
		cfg.DefaultSolver = "portfolio"
	}
	if _, err := cfg.Registry.New(cfg.DefaultSolver); err != nil {
		return nil, fmt.Errorf("engine: default solver: %w", err)
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 2 * time.Minute
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 16
	}
	if cfg.ShedRetryAfter <= 0 {
		cfg.ShedRetryAfter = time.Second
	}
	if cfg.Speculate {
		if cfg.Cache == nil {
			return nil, errors.New("engine: Config.Speculate requires Config.Cache")
		}
		if _, ok := cfg.Tenants[SpeculationTenant]; !ok {
			// Register the speculation tenant without mutating the caller's
			// map: minimal weight and inflight, deep best-effort priority, so
			// the fair scheduler both serves it strictly last and sheds it
			// whenever real traffic has the capacity covered.
			tenants := make(map[string]TenantConfig, len(cfg.Tenants)+1)
			for name, tc := range cfg.Tenants {
				tenants[name] = tc
			}
			tenants[SpeculationTenant] = TenantConfig{Weight: 1, MaxInflight: 1, MaxQueued: 2, Priority: 9}
			cfg.Tenants = tenants
		}
	}
	e := &Engine{
		cfg: cfg,
		sem: newFairScheduler(int64(cfg.MaxConcurrent), cfg.TenantDefaults, cfg.Tenants, cfg.ShedRetryAfter),
		met: newMetrics(),
	}
	if cfg.Speculate {
		e.spec = newSpeculator(e, cfg.SpeculateBudget)
	}
	return e, nil
}

// Close stops the engine's background work (the speculation controller).
// In-flight solves are unaffected; call it after the serving surfaces have
// drained. A nil-op when speculation is off.
func (e *Engine) Close() {
	if e.spec != nil {
		e.spec.close()
	}
}

// Registry returns the engine's solver registry.
func (e *Engine) Registry() *solver.Registry { return e.cfg.Registry }

// Cache returns the engine's memo cache (nil when caching is disabled).
func (e *Engine) Cache() *solver.Cache { return e.cfg.Cache }

// DefaultSolver returns the name used when a request names no solver.
func (e *Engine) DefaultSolver() string { return e.cfg.DefaultSolver }

// MaxConcurrent returns the global admission budget.
func (e *Engine) MaxConcurrent() int { return e.cfg.MaxConcurrent }

// Tenant returns the resolved admission config the engine applies to the
// named tenant (the empty name resolves to DefaultTenant). Quota surfaces
// outside the engine — the job manager's per-tenant pending bound — read
// their limits from here so one flag configures the whole stack.
func (e *Engine) Tenant(name string) TenantConfig { return e.sem.Config(name) }

// Shed builds the typed rejection for tenant-quota refusals outside the
// admission path (e.g. the job manager's queue bound), using the engine's
// configured Retry-After hint. The error is also accounted as a shed for the
// tenant, so out-of-engine sheds appear in the same counters.
func (e *Engine) Shed(tenant, reason string) *ErrShed {
	if tenant == "" {
		tenant = DefaultTenant
	}
	e.met.observeShed(tenant)
	return &ErrShed{Tenant: tenant, Reason: reason, RetryAfter: e.cfg.ShedRetryAfter}
}

// Limits returns the engine's default (synchronous) deadline policy.
func (e *Engine) Limits() Limits {
	return Limits{Default: e.cfg.DefaultTimeout, Max: e.cfg.MaxTimeout}
}

// ResolveSolver maps an optional solver name to its registry entry's name,
// failing for unknown solvers. The empty name resolves to the default.
func (e *Engine) ResolveSolver(name string) (string, error) {
	if name == "" {
		name = e.cfg.DefaultSolver
	}
	if _, err := e.cfg.Registry.New(name); err != nil {
		return "", err
	}
	return name, nil
}

// Request describes one solve.
type Request struct {
	// Solver selects a registry entry; empty uses the engine's default.
	Solver string
	// Instance is the instance to solve; required.
	Instance *core.Instance
	// Fingerprint, when non-nil, is the precomputed canonical fingerprint of
	// Instance (callers that already hashed the instance — the job manager
	// records it at submit — pass it to skip the rehash).
	Fingerprint *core.Fingerprint
	// Timeout is the requested solve budget: 0 takes the limits' default,
	// positive values are clamped to the limits' maximum, and NoDeadline
	// disables the per-request deadline so the caller's context governs.
	Timeout time.Duration
	// Limits overrides the engine's deadline policy for this request; nil
	// uses the engine's (synchronous) limits. The job manager passes its own
	// much larger ceilings here.
	Limits *Limits
	// Observer, when non-nil, receives improving incumbents while the solve
	// runs. Cache and coalesced answers produce no observations.
	Observer progress.Func
	// WarmStart, when non-nil, is a caller-supplied warm-start hint: a
	// schedule believed feasible for Instance (typically the solution of a
	// near-identical instance the caller solved earlier). The kernels
	// validate it and use it only to tighten their pruning bound, so a bad
	// hint costs nothing and a good one skips most of the search; the answer
	// is identical either way. When absent, the engine consults the cache's
	// neighbor index for a hint on a miss.
	WarmStart *core.Schedule
	// Weight is the admission weight (default 1). Heavier requests may be
	// given a larger share of the MaxConcurrent budget.
	Weight int64
	// Tenant is the tenant the request is admitted and accounted under;
	// empty means DefaultTenant. Fairness, quotas and shedding are applied
	// per tenant.
	Tenant string
}

// Result is the outcome of one solve request.
type Result struct {
	// Evaluation is the full evaluation (schedule, makespan, bounds, stats).
	// Cached evaluations are shared; treat it as immutable.
	Evaluation *solver.Evaluation
	// Source tells where the evaluation came from.
	Source solver.Source
	// Fingerprint is the instance's canonical fingerprint (the cache key).
	Fingerprint core.Fingerprint
	// Telemetry is the structured account of this request.
	Telemetry Telemetry
}

// Solve runs one request through the pipeline: resolve, clamp, route through
// the cache, admit, observe, account. Context errors (cancellation, deadline)
// are returned unwrapped-compatible: errors.Is(err, context.DeadlineExceeded)
// holds when the budget expired.
func (e *Engine) Solve(ctx context.Context, req Request) (*Result, error) {
	if req.Instance == nil {
		return nil, errors.New("engine: missing instance")
	}
	if err := req.Instance.Validate(); err != nil {
		return nil, err
	}
	name := req.Solver
	if name == "" {
		name = e.cfg.DefaultSolver
	}
	sv, err := e.cfg.Registry.New(name)
	if err != nil {
		return nil, err
	}

	limits := e.Limits()
	if req.Limits != nil {
		limits = *req.Limits
	}
	if req.Timeout != NoDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, limits.Resolve(req.Timeout))
		defer cancel()
	}
	if req.Observer != nil {
		ctx = progress.WithObserver(ctx, req.Observer)
	}

	var fp core.Fingerprint
	if req.Fingerprint != nil {
		fp = *req.Fingerprint
	} else {
		fp = req.Instance.Fingerprint()
	}

	tenant := req.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	adm := &admitted{eng: e, inner: sv, weight: req.Weight, tenant: tenant}
	if req.WarmStart != nil {
		// An explicit hint travels as a context value so it survives the
		// cache's singleflight indirection and the solver adapters' counter
		// shadowing; it also preempts the neighbor-index lookup below.
		ctx = progress.WithWarmStart(ctx, &progress.WarmStart{Schedule: req.WarmStart, Source: WarmSourceRequest})
		adm.hintSource = WarmSourceRequest
	}
	var (
		ev  *solver.Evaluation
		src solver.Source
	)
	if e.cfg.Cache != nil {
		ev, src, err = e.cfg.Cache.EvaluateWithFingerprint(ctx, adm, req.Instance, fp)
	} else {
		src = solver.SourceSolve
		ev, err = solver.Evaluate(ctx, adm, req.Instance)
	}
	e.met.observe(tenant, src, ev, err, adm.queued)
	if err != nil {
		return nil, err
	}
	if e.spec != nil && tenant != SpeculationTenant {
		e.spec.observe(name, req.Instance)
	}
	tel := newTelemetry(name, ev, src, req.Instance, adm.queued)
	tel.Tenant = tenant
	if src == solver.SourceSolve && ev.Stats.WarmStart {
		// Warm-start telemetry describes this request's own solve; cache and
		// coalesced answers replay another request's stats, so they do not
		// claim its warm start.
		tel.WarmStart = adm.hintSource
		if tel.WarmStart == "" {
			tel.WarmStart = WarmSourceRequest
		}
		tel.SeedMakespan = ev.Stats.SeedMakespan
		e.met.warmStarts.Add(1)
	}
	return &Result{
		Evaluation:  ev,
		Source:      src,
		Fingerprint: fp,
		Telemetry:   tel,
	}, nil
}

// admitted wraps a solver so that every fresh solve first acquires the
// engine's fair scheduler under its tenant; acquisition respects the solve
// context, so a queued request whose deadline expires fails with the context
// error instead of waiting forever, and over-quota requests fail immediately
// with *ErrShed. Cache hits and coalesced waits never reach this wrapper —
// only the singleflight leader actually solves.
type admitted struct {
	eng    *Engine
	inner  solver.Solver
	weight int64
	tenant string
	// queued is the admission wait of this request's solve, read by the
	// engine after the call. One admitted value serves one request, and the
	// cache invokes Solve at most once per request, so the field is not
	// synchronised.
	queued time.Duration
	// hintSource records where this request's warm-start hint came from
	// ("request" when the caller supplied one, "neighbor" when the cache's
	// neighbor index produced one on the miss path); empty when no hint was
	// attached. Written before/inside the single Solve call, read after.
	hintSource string
}

// Warm-start hint sources, reported in Telemetry.WarmStart.
const (
	WarmSourceRequest  = "request"
	WarmSourceNeighbor = "neighbor"
)

func (a *admitted) Name() string { return a.inner.Name() }

func (a *admitted) Solve(ctx context.Context, inst *core.Instance) (*core.Schedule, solver.Stats, error) {
	start := time.Now()
	if err := a.eng.sem.Acquire(ctx, a.tenant, a.weight); err != nil {
		a.queued = time.Since(start)
		return nil, solver.Stats{Solver: a.inner.Name()}, err
	}
	a.queued = time.Since(start)
	defer a.eng.sem.Release(a.tenant, a.weight)
	// This point is reached only by a true miss that won admission (cache
	// hits and coalesced followers never get here), which is exactly where a
	// neighbor hint pays: ask the cache's shape index for an adapted
	// schedule of a near-duplicate solved earlier. A request-supplied hint
	// takes precedence.
	if a.hintSource == "" && a.eng.cfg.Cache != nil {
		if hint, ok := a.eng.cfg.Cache.WarmHint(a.inner.Name(), inst); ok {
			ctx = progress.WithWarmStart(ctx, &progress.WarmStart{Schedule: hint, Source: WarmSourceNeighbor})
			a.hintSource = WarmSourceNeighbor
		}
	}
	return a.inner.Solve(ctx, inst)
}

// Outcome is the result of one instance of a SolveEach batch, mirroring
// solver.Outcome with the engine's richer per-solve result attached.
type Outcome struct {
	// Index is the instance's position in the input batch.
	Index int
	// Result is set for successful solves.
	Result *Result
	// Err is set for failures; Skipped additionally marks instances that
	// were never handed to a solver because the batch context had already
	// expired.
	Err     error
	Skipped bool
}

// SolveEach solves every instance of a batch through the engine under one
// tenant ("" = DefaultTenant), sharding the submission across a pool of
// feeder workers (0 = MaxConcurrent). The actual solve concurrency is still
// governed by the engine's fair scheduler — the worker count only bounds how
// many requests this batch can have in flight at once, so one batch cannot
// monopolise admission ordering. Each instance runs with NoDeadline: the
// caller bounds the whole batch through ctx. The returned slice is
// index-aligned with insts; once ctx is cancelled, remaining instances fail
// fast with ctx.Err() and are marked Skipped.
func (e *Engine) SolveEach(ctx context.Context, tenant, solverName string, insts []*core.Instance, workers int) []Outcome {
	if workers <= 0 {
		workers = e.cfg.MaxConcurrent
	}
	if workers > len(insts) {
		workers = len(insts)
	}
	outcomes := make([]Outcome, len(insts))
	if len(insts) == 0 {
		return outcomes
	}

	indices := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for idx := range indices {
				outcomes[idx] = e.solveOne(ctx, tenant, solverName, idx, insts[idx])
			}
		}()
	}
feed:
	for idx := range insts {
		select {
		case indices <- idx:
		case <-ctx.Done():
			for rest := idx; rest < len(insts); rest++ {
				outcomes[rest] = Outcome{Index: rest, Err: ctx.Err(), Skipped: true}
			}
			break feed
		}
	}
	close(indices)
	for w := 0; w < workers; w++ {
		<-done
	}
	return outcomes
}

func (e *Engine) solveOne(ctx context.Context, tenant, solverName string, idx int, inst *core.Instance) Outcome {
	if err := ctx.Err(); err != nil {
		return Outcome{Index: idx, Err: err, Skipped: true}
	}
	// Hash at the batch split and hand the fingerprint down, so the cache
	// route (and the response field) reuse it instead of re-hashing.
	fp := inst.Fingerprint()
	res, err := e.Solve(ctx, Request{Solver: solverName, Instance: inst, Fingerprint: &fp, Timeout: NoDeadline, Tenant: tenant})
	if err != nil {
		return Outcome{Index: idx, Err: err}
	}
	return Outcome{Index: idx, Result: res}
}
