package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"crsharing/internal/core"
	"crsharing/internal/gen"
)

// SpeculationTenant is the tenant every speculative pre-solve is admitted
// under. It is registered with weight 1, an inflight quota of 1 and a
// deep-best-effort priority, so the existing fair scheduler is the whole
// safety story: speculation gets at most one admission slot, is served
// strictly after every real-traffic class, and is shed outright ("priority
// backlog") whenever the backlog of more important work already covers the
// global capacity. Speculation can slow nothing down but an idle machine.
const SpeculationTenant = "speculation"

const (
	// speculateHotThreshold is how many requests a (solver, fingerprint)
	// family must receive before its variants are pre-solved.
	speculateHotThreshold = 3
	// speculateQueueDepth bounds the controller's backlog of hot instances;
	// overflow is dropped (a missed speculation costs nothing).
	speculateQueueDepth = 64
	// speculateTimeout bounds each speculative solve: a variant that cannot
	// be solved quickly is not worth pre-solving.
	speculateTimeout = 2 * time.Second
	// speculateMaxFamilies bounds the hit-tracking map; when full it is
	// reset, which merely restarts the hotness count.
	speculateMaxFamilies = 4096
	// defaultSpeculateBudget is the per-hot-instance variant cap when
	// Config.SpeculateBudget is unset.
	defaultSpeculateBudget = 8
)

type specKey struct {
	solver string
	fp     core.Fingerprint
}

type specTask struct {
	solver string
	inst   *core.Instance
}

// speculator watches per-fingerprint request frequency and pre-solves
// single-mutation variants (gen.Variants: adjacent transpositions within a
// queue, drop-first, append — the same operators the online workload
// mutates with) of hot instances into the memo cache, where the next real
// request finds them as exact hits, or at worst as neighbor-index
// warm-start hints.
type speculator struct {
	eng    *Engine
	budget int

	mu   sync.Mutex
	hits map[specKey]int // requests seen per family; -1 once speculated

	queue chan specTask
	stop  chan struct{}
	wg    sync.WaitGroup

	issued  atomic.Uint64 // speculative solves submitted
	dropped atomic.Uint64 // hot families dropped on a full backlog
}

func newSpeculator(eng *Engine, budget int) *speculator {
	if budget <= 0 {
		budget = defaultSpeculateBudget
	}
	s := &speculator{
		eng:    eng,
		budget: budget,
		hits:   make(map[specKey]int),
		queue:  make(chan specTask, speculateQueueDepth),
		stop:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.run()
	return s
}

// observe accounts one real (non-speculation) request against its family
// and enqueues the instance for variant pre-solving when it crosses the
// hotness threshold. It is called on the engine's request path, so the
// fast case is one map lookup under a mutex; the fingerprint is memoised
// on the instance.
func (s *speculator) observe(solverName string, inst *core.Instance) {
	k := specKey{solver: solverName, fp: inst.Fingerprint()}
	s.mu.Lock()
	n, ok := s.hits[k]
	if n < 0 {
		s.mu.Unlock()
		return // family already speculated
	}
	if !ok && len(s.hits) >= speculateMaxFamilies {
		s.hits = make(map[specKey]int)
	}
	n++
	if n < speculateHotThreshold {
		s.hits[k] = n
		s.mu.Unlock()
		return
	}
	s.hits[k] = -1
	s.mu.Unlock()

	select {
	case s.queue <- specTask{solver: solverName, inst: inst}:
	default:
		s.dropped.Add(1)
	}
}

// run is the controller loop: one hot instance at a time, one variant solve
// at a time. Concurrency is deliberately 1 — the fair scheduler would bound
// the speculation tenant anyway, but a serial loop also keeps the
// controller's queueing pressure (and its shed noise) minimal.
func (s *speculator) run() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case task := <-s.queue:
			s.presolve(task)
		}
	}
}

func (s *speculator) presolve(task specTask) {
	for _, v := range gen.Variants(task.inst, s.budget) {
		select {
		case <-s.stop:
			return
		default:
		}
		if s.eng.cfg.Cache.Contains(task.solver, v.Fingerprint()) {
			continue // the variant is already warm
		}
		s.issued.Add(1)
		ctx, cancel := context.WithTimeout(context.Background(), speculateTimeout)
		// Errors are expected and fine: sheds mean real traffic owns the
		// machine, timeouts mean the variant is too hard to be worth
		// pre-solving. Successful solves land in the memo cache (and the
		// neighbor index) through the ordinary pipeline.
		_, _ = s.eng.Solve(ctx, Request{
			Solver:   task.solver,
			Instance: v,
			Timeout:  NoDeadline,
			Tenant:   SpeculationTenant,
		})
		cancel()
	}
}

func (s *speculator) close() {
	close(s.stop)
	s.wg.Wait()
}

// SpeculationStats is the controller's own accounting, reported in Snapshot.
type SpeculationStats struct {
	// Issued counts speculative solves submitted to the engine (whatever
	// their outcome); Dropped counts hot families discarded because the
	// controller's backlog was full.
	Issued  uint64
	Dropped uint64
}
