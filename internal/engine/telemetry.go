package engine

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"crsharing/internal/core"
	"crsharing/internal/solver"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// Telemetry is the structured account of one solve request, assembled by the
// engine for every request regardless of which surface (HTTP sync, batch,
// job worker, CLI) submitted it. It extends solver.Stats with the quantities
// the serving and load layers report: where the answer came from, how much
// search effort it took, which lower bound anchored the quality ratio, and
// what the schedule looks like. It serialises directly into API responses,
// job records and the crload report.
type Telemetry struct {
	// Solver is the registry name the request resolved to (e.g. "portfolio").
	Solver string `json:"solver"`
	// Tenant is the tenant the request was admitted and accounted under.
	Tenant string `json:"tenant,omitempty"`
	// Winner is the solver that actually produced the schedule: the winning
	// member for a portfolio, the solver itself otherwise. Empty for solvers
	// that do not report stats.
	Winner string `json:"winner,omitempty"`
	// Algorithm is the algorithm that produced the schedule; for a portfolio
	// win it reads "member (via portfolio)".
	Algorithm string `json:"algorithm"`
	// Source reports how the result was obtained: "solve", "cache",
	// "coalesced" or "negative" (a remembered infeasible/failed solve).
	Source string `json:"source"`
	// ElapsedMS is the wall-clock of the solve that produced the result. For
	// cache and coalesced answers it replays the original solve's duration.
	ElapsedMS float64 `json:"elapsed_ms"`
	// QueueMS is the time THIS request spent waiting for an admission slot;
	// zero for cache hits (they bypass admission entirely).
	QueueMS float64 `json:"queue_ms"`
	// Nodes counts the search nodes (branch-and-bound) or configurations
	// (enumeration) explored by the solve, summed over nested kernels and
	// portfolio members; zero for pure heuristics.
	Nodes int64 `json:"nodes"`
	// Incumbents counts the improving solutions reported while the solve ran.
	Incumbents int64 `json:"incumbents"`
	// KernelAllocs counts heap-allocation events on the search kernels' hot
	// path (scratch-arena growth, work handoffs); a steady-state exact solve
	// reports zero or near-zero. AllocsPerNode is KernelAllocs / Nodes — the
	// headline number for the allocation-free search kernels.
	KernelAllocs  int64   `json:"kernel_allocs"`
	AllocsPerNode float64 `json:"allocs_per_node"`
	// Makespan is the schedule's makespan in steps.
	Makespan int `json:"makespan"`
	// LowerBound is the best instance lower bound (core.LowerBounds), and
	// LowerBoundKind names which bound it is ("work" or "chain").
	LowerBound     int    `json:"lower_bound"`
	LowerBoundKind string `json:"lower_bound_kind"`
	// Ratio is Makespan / LowerBound (1 when the bound is zero).
	Ratio float64 `json:"ratio"`
	// Steps is the number of steps in the returned schedule (= Makespan for
	// trimmed schedules; kept separate so padding bugs are visible).
	Steps int `json:"steps"`
	// Wasted is the schedule's total wasted resource.
	Wasted float64 `json:"wasted"`
	// Properties lists the Section-4 structural properties of the schedule.
	Properties string `json:"properties"`
	// WarmStart names the source of the warm-start hint this request's solve
	// accepted ("request" or "neighbor"); empty when the solve ran cold or
	// the answer was replayed from the cache. SeedMakespan is the validated
	// makespan of the accepted hint.
	WarmStart    string `json:"warm_start,omitempty"`
	SeedMakespan int    `json:"seed_makespan,omitempty"`
}

// newTelemetry assembles the telemetry of one finished solve.
func newTelemetry(solverName string, ev *solver.Evaluation, src solver.Source, inst *core.Instance, queued time.Duration) Telemetry {
	bounds := inst.Bounds()
	t := Telemetry{
		Solver:         solverName,
		Winner:         ev.Stats.Winner,
		Algorithm:      ev.Algorithm,
		Source:         string(src),
		ElapsedMS:      float64(ev.Stats.Elapsed) / float64(time.Millisecond),
		QueueMS:        float64(queued) / float64(time.Millisecond),
		Nodes:          ev.Stats.Nodes,
		Incumbents:     ev.Stats.Incumbents,
		KernelAllocs:   ev.Stats.KernelAllocs,
		Makespan:       ev.Makespan,
		LowerBound:     ev.LowerBound,
		LowerBoundKind: bounds.Kind(),
		Ratio:          ev.Ratio,
		Wasted:         ev.Wasted,
		Properties:     ev.Properties.String(),
	}
	if ev.Schedule != nil {
		t.Steps = ev.Schedule.Steps()
	}
	if t.Nodes > 0 {
		t.AllocsPerNode = float64(t.KernelAllocs) / float64(t.Nodes)
	}
	return t
}

// Histogram is a snapshot of a fixed-bucket histogram: Counts[i] observations
// fell at or below Bounds[i]; Counts[len(Bounds)] is the overflow bucket.
// Counts are cumulative like Prometheus "le" buckets.
type Histogram struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// histogram is the live, concurrency-safe accumulator behind Histogram.
type histogram struct {
	bounds []float64
	counts []atomic.Uint64 // per-bucket (non-cumulative), last = overflow
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *histogram) Observe(v float64) {
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Snapshot returns the cumulative view.
func (h *histogram) Snapshot() Histogram {
	out := Histogram{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out.Counts[i] = cum
	}
	return out
}

// atomicFloat is an atomic float64 accumulator (CAS on the bit pattern).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		neu := floatBits(floatFrom(old) + v)
		if f.bits.CompareAndSwap(old, neu) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return floatFrom(f.bits.Load()) }

// metrics aggregates the engine's solve accounting; Snapshot freezes it for
// the /metrics endpoint and tests.
type metrics struct {
	sourceSolve     atomic.Uint64
	sourceCache     atomic.Uint64
	sourceCoalesced atomic.Uint64
	sourceNegative  atomic.Uint64
	errorsTotal     atomic.Uint64
	shedTotal       atomic.Uint64
	warmStarts      atomic.Uint64
	nodesTotal      atomic.Int64
	incumbentsTotal atomic.Int64
	queueSeconds    atomicFloat
	solveSeconds    *histogram
	solveNodes      *histogram

	tmu     sync.Mutex
	tenants map[string]*tenantCounters
}

// tenantCounters is the per-tenant slice of the solve accounting.
type tenantCounters struct {
	requests     atomic.Uint64
	shed         atomic.Uint64
	errors       atomic.Uint64
	queueSeconds atomicFloat
}

// tenant returns (creating on demand) the counters of a tenant.
func (m *metrics) tenant(name string) *tenantCounters {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	tc, ok := m.tenants[name]
	if !ok {
		tc = &tenantCounters{}
		m.tenants[name] = tc
	}
	return tc
}

// TenantSnapshot is the frozen per-tenant accounting: the completed-request
// counters plus the scheduler's live admission gauges.
type TenantSnapshot struct {
	// Requests counts finished requests of the tenant, whatever the outcome.
	Requests uint64
	// Shed counts requests refused with ErrShed (quota rejections); sheds are
	// not double-counted under Errors.
	Shed uint64
	// Errors counts failed requests other than sheds.
	Errors uint64
	// QueueSeconds is the total admission wait of the tenant's requests.
	QueueSeconds float64
	// Inflight / Queued are the live scheduler gauges.
	Inflight int64
	Queued   int
}

// Snapshot is a point-in-time copy of the engine's aggregate telemetry.
type Snapshot struct {
	// SourceSolve / SourceCache / SourceCoalesced / SourceNegative count
	// completed solve requests by where their answer came from.
	SourceSolve     uint64
	SourceCache     uint64
	SourceCoalesced uint64
	SourceNegative  uint64
	// Errors counts failed solve requests (including deadline expiries but
	// not sheds — those are counted under Shed, keeping quota rejections
	// distinct from genuine failures).
	Errors uint64
	// Shed counts requests refused over quota with ErrShed.
	Shed uint64
	// WarmStarts counts fresh solves that accepted a warm-start hint
	// (request-supplied or neighbor-index).
	WarmStarts uint64
	// NodesTotal / IncumbentsTotal sum the per-solve search telemetry of
	// fresh solves (cache replays are not double-counted).
	NodesTotal      int64
	IncumbentsTotal int64
	// QueueSeconds is the total time requests spent waiting for admission.
	QueueSeconds float64
	// Inflight is the admission weight currently held; Waiting the queued
	// acquirers.
	Inflight int64
	Waiting  int
	// SolveSeconds / SolveNodes are the per-fresh-solve duration and
	// search-size distributions.
	SolveSeconds Histogram
	SolveNodes   Histogram
	// Tenants is the per-tenant accounting, keyed by tenant name.
	Tenants map[string]TenantSnapshot
	// Speculation is the speculation controller's accounting (zero when
	// speculation is off).
	Speculation SpeculationStats
}

// solveSecondsBuckets spans sub-millisecond heuristic solves up to the 2m
// default deadline ceiling.
var solveSecondsBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10, 30, 120}

// solveNodesBuckets spans trivial instances up to the default node limit.
var solveNodesBuckets = []float64{1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

func newMetrics() *metrics {
	return &metrics{
		solveSeconds: newHistogram(solveSecondsBuckets),
		solveNodes:   newHistogram(solveNodesBuckets),
		tenants:      make(map[string]*tenantCounters),
	}
}

// observe records one finished request. Only fresh solves contribute to the
// node totals and histograms: cached answers replay stats that were already
// counted when the original solve ran. Sheds (quota rejections) are counted
// distinctly from errors, globally and per tenant, so admission keeps the
// shed-not-queue honesty of the load report: a refused request is neither a
// failure of the solver nor silently dropped.
func (m *metrics) observe(tenant string, src solver.Source, ev *solver.Evaluation, err error, queued time.Duration) {
	m.queueSeconds.Add(queued.Seconds())
	tc := m.tenant(tenant)
	tc.requests.Add(1)
	tc.queueSeconds.Add(queued.Seconds())
	if err != nil {
		var shed *ErrShed
		if errors.As(err, &shed) {
			m.shedTotal.Add(1)
			tc.shed.Add(1)
			return
		}
		if src == solver.SourceNegative {
			// A negative-cache answer is a remembered failure: it is a served
			// response, not a new error.
			m.sourceNegative.Add(1)
			return
		}
		m.errorsTotal.Add(1)
		tc.errors.Add(1)
		return
	}
	switch src {
	case solver.SourceCache:
		m.sourceCache.Add(1)
	case solver.SourceCoalesced:
		m.sourceCoalesced.Add(1)
	default:
		m.sourceSolve.Add(1)
		m.nodesTotal.Add(ev.Stats.Nodes)
		m.incumbentsTotal.Add(ev.Stats.Incumbents)
		m.solveSeconds.Observe(ev.Stats.Elapsed.Seconds())
		m.solveNodes.Observe(float64(ev.Stats.Nodes))
	}
}

// observeShed accounts a quota rejection raised outside the solve pipeline
// (the job manager's per-tenant pending bound).
func (m *metrics) observeShed(tenant string) {
	m.shedTotal.Add(1)
	tc := m.tenant(tenant)
	tc.requests.Add(1)
	tc.shed.Add(1)
}

// Snapshot returns the engine's aggregate solve telemetry.
func (e *Engine) Snapshot() Snapshot {
	snap := Snapshot{
		SourceSolve:     e.met.sourceSolve.Load(),
		SourceCache:     e.met.sourceCache.Load(),
		SourceCoalesced: e.met.sourceCoalesced.Load(),
		SourceNegative:  e.met.sourceNegative.Load(),
		Errors:          e.met.errorsTotal.Load(),
		Shed:            e.met.shedTotal.Load(),
		WarmStarts:      e.met.warmStarts.Load(),
		NodesTotal:      e.met.nodesTotal.Load(),
		IncumbentsTotal: e.met.incumbentsTotal.Load(),
		QueueSeconds:    e.met.queueSeconds.Load(),
		Inflight:        e.sem.InUse(),
		Waiting:         e.sem.Waiting(),
		SolveSeconds:    e.met.solveSeconds.Snapshot(),
		SolveNodes:      e.met.solveNodes.Snapshot(),
		Tenants:         make(map[string]TenantSnapshot),
	}
	e.met.tmu.Lock()
	for name, tc := range e.met.tenants {
		snap.Tenants[name] = TenantSnapshot{
			Requests:     tc.requests.Load(),
			Shed:         tc.shed.Load(),
			Errors:       tc.errors.Load(),
			QueueSeconds: tc.queueSeconds.Load(),
		}
	}
	e.met.tmu.Unlock()
	for name, g := range e.sem.Gauges() {
		ts := snap.Tenants[name]
		ts.Inflight, ts.Queued = g.Inflight, g.Queued
		snap.Tenants[name] = ts
	}
	if e.spec != nil {
		snap.Speculation = SpeculationStats{
			Issued:  e.spec.issued.Load(),
			Dropped: e.spec.dropped.Load(),
		}
	}
	return snap
}
