package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"crsharing/internal/core"
)

// TestSchedulerTenantIsolation is the core fairness regression: a light
// tenant arriving behind a deep backlog from an abusive tenant must be
// admitted within one round-robin pass, not after the whole backlog. The old
// FIFO semaphore would have served all ten heavy arrivals first.
func TestSchedulerTenantIsolation(t *testing.T) {
	sem := newFairScheduler(1, TenantConfig{}, nil, 0)
	ctx := context.Background()
	if err := sem.Acquire(ctx, "heavy", 1); err != nil {
		t.Fatal(err)
	}
	const backlog = 10
	heavyAdmitted := make(chan struct{}, backlog)
	for i := 0; i < backlog; i++ {
		go func() {
			if err := sem.Acquire(ctx, "heavy", 1); err == nil {
				heavyAdmitted <- struct{}{}
			}
		}()
	}
	for sem.Waiting() < backlog {
		time.Sleep(time.Millisecond)
	}
	lightDone := make(chan error, 1)
	go func() { lightDone <- sem.Acquire(ctx, "light", 1) }()
	for sem.Waiting() < backlog+1 {
		time.Sleep(time.Millisecond)
	}

	// Drain one grant per release: the light tenant must get the slot within
	// two grants despite ten heavy requests queued ahead of it in arrival
	// order.
	heavyGrants := 0
	sem.Release("heavy", 1)
	for {
		select {
		case <-heavyAdmitted:
			heavyGrants++
			if heavyGrants > 2 {
				t.Fatalf("light tenant starved: %d heavy grants before it ran", heavyGrants)
			}
			sem.Release("heavy", 1)
		case err := <-lightDone:
			if err != nil {
				t.Fatal(err)
			}
			sem.Release("light", 1)
			// Drain the heavy backlog so no goroutine is left blocked.
			for heavyGrants < backlog {
				<-heavyAdmitted
				heavyGrants++
				sem.Release("heavy", 1)
			}
			return
		case <-time.After(5 * time.Second):
			t.Fatal("scheduler stalled")
		}
	}
}

// TestSchedulerWeightedShare drains a contended slot across a weight-3 and a
// weight-1 tenant and checks the deficit round-robin hands out grants in
// (close to) a 3:1 ratio.
func TestSchedulerWeightedShare(t *testing.T) {
	sem := newFairScheduler(1, TenantConfig{}, map[string]TenantConfig{
		"gold": {Weight: 3},
		"free": {Weight: 1},
	}, 0)
	ctx := context.Background()
	if err := sem.Acquire(ctx, "warm", 1); err != nil {
		t.Fatal(err)
	}
	const each = 12
	admitted := make(chan string, 2*each)
	for _, tenant := range []string{"gold", "free"} {
		tenant := tenant
		// Queue the tenant's full backlog before moving to the next so ring
		// order is deterministic.
		for i := 0; i < each; i++ {
			go func() {
				if err := sem.Acquire(ctx, tenant, 1); err == nil {
					admitted <- tenant
				}
			}()
			for sem.Waiting() < i+1 {
				time.Sleep(time.Millisecond)
			}
		}
		if tenant == "gold" {
			for sem.Waiting() < each {
				time.Sleep(time.Millisecond)
			}
		}
	}
	for sem.Waiting() < 2*each {
		time.Sleep(time.Millisecond)
	}

	counts := map[string]int{}
	sem.Release("warm", 1)
	for n := 0; n < 2*each; n++ {
		select {
		case tenant := <-admitted:
			counts[tenant]++
			// Check the interleaving mid-drain, while both tenants still have
			// queued work: gold must be roughly 3x free, so after 8 grants the
			// split is 6/2.
			if n == 7 {
				if counts["gold"] < 5 || counts["free"] < 1 {
					t.Fatalf("weighted share off after 8 grants: %v", counts)
				}
			}
			sem.Release(tenant, 1)
		case <-time.After(5 * time.Second):
			t.Fatalf("drain stalled after %d grants (%v)", n, counts)
		}
	}
	if counts["gold"] != each || counts["free"] != each {
		t.Fatalf("not everyone was served: %v", counts)
	}
}

// TestSchedulerShedQueueFull checks the per-tenant queue bound: once
// MaxQueued requests wait, further arrivals are refused with *ErrShed
// carrying the tenant, a reason and the configured Retry-After.
func TestSchedulerShedQueueFull(t *testing.T) {
	retry := 7 * time.Second
	sem := newFairScheduler(1, TenantConfig{}, map[string]TenantConfig{
		"busy": {MaxQueued: 2},
	}, retry)
	ctx := context.Background()
	if err := sem.Acquire(ctx, "busy", 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			if err := sem.Acquire(ctx, "busy", 1); err == nil {
				done <- struct{}{}
			}
		}()
	}
	for sem.Waiting() < 2 {
		time.Sleep(time.Millisecond)
	}
	err := sem.Acquire(ctx, "busy", 1)
	var shed *ErrShed
	if !errors.As(err, &shed) {
		t.Fatalf("over-quota acquire returned %v, want *ErrShed", err)
	}
	if shed.Tenant != "busy" || shed.Reason != "queue full" || shed.RetryAfter != retry {
		t.Fatalf("shed fields wrong: %+v", shed)
	}
	// Another tenant is unaffected by busy's full queue. The round-robin may
	// admit "other" before busy's queued waiters (that is the no-starvation
	// property), so drain the three waiters in whatever order they are
	// granted — assuming busy goes first deadlocks on a single slot.
	otherErr := make(chan error, 1)
	go func() { otherErr <- sem.Acquire(ctx, "other", 1) }()
	otherAdmitted := false
	sem.Release("busy", 1)
	for served := 0; served < 3; served++ {
		select {
		case <-done:
			sem.Release("busy", 1)
		case err := <-otherErr:
			if err != nil {
				t.Fatalf("other tenant shed alongside busy: %v", err)
			}
			sem.Release("other", 1)
			otherAdmitted = true
		case <-time.After(5 * time.Second):
			t.Fatalf("drain stalled after %d grants", served)
		}
	}
	if !otherAdmitted {
		t.Fatal("other tenant was never admitted")
	}
}

// TestSchedulerPriorityShed checks both halves of the priority contract:
// best-effort work is shed outright while the more-important backlog exceeds
// capacity, and when it does queue it is only served after the class above.
func TestSchedulerPriorityShed(t *testing.T) {
	sem := newFairScheduler(1, TenantConfig{}, map[string]TenantConfig{
		"fg": {Priority: 0},
		"bg": {Priority: 1},
	}, 0)
	ctx := context.Background()
	if err := sem.Acquire(ctx, "fg", 1); err != nil {
		t.Fatal(err)
	}
	fgDone := make(chan error, 1)
	go func() { fgDone <- sem.Acquire(ctx, "fg", 1) }()
	for sem.Waiting() < 1 {
		time.Sleep(time.Millisecond)
	}
	// Priority-0 backlog (weight 1) >= capacity (1): best-effort work is
	// refused immediately.
	var shed *ErrShed
	if err := sem.Acquire(ctx, "bg", 1); !errors.As(err, &shed) {
		t.Fatalf("best-effort acquire returned %v, want *ErrShed", err)
	} else if shed.Reason != "priority backlog" {
		t.Fatalf("shed reason = %q, want priority backlog", shed.Reason)
	}
	// Serve the fg waiter; with the backlog drained, bg queues normally and
	// is admitted once fg releases.
	sem.Release("fg", 1)
	if err := <-fgDone; err != nil {
		t.Fatal(err)
	}
	bgDone := make(chan error, 1)
	go func() { bgDone <- sem.Acquire(ctx, "bg", 1) }()
	for sem.Waiting() < 1 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-bgDone:
		t.Fatal("best-effort work admitted while priority 0 held the slot")
	case <-time.After(20 * time.Millisecond):
	}
	sem.Release("fg", 1)
	if err := <-bgDone; err != nil {
		t.Fatal(err)
	}
	sem.Release("bg", 1)
}

// TestEngineShedAccounting checks the end-to-end split: quota sheds surface
// as *ErrShed from Solve and are counted apart from errors, globally and per
// tenant.
func TestEngineShedAccounting(t *testing.T) {
	stub := &countingSolver{name: "stub", block: make(chan struct{})}
	eng := newTestEngine(t, stub, func(cfg *Config) {
		cfg.MaxConcurrent = 1
		cfg.Tenants = map[string]TenantConfig{"busy": {MaxQueued: 1}}
		cfg.ShedRetryAfter = 3 * time.Second
	})
	ctx := context.Background()
	insts := distinctInstances(3)

	running := make(chan error, 1)
	go func() {
		_, err := eng.Solve(ctx, Request{Instance: insts[0], Tenant: "busy"})
		running <- err
	}()
	for eng.Snapshot().Inflight == 0 {
		time.Sleep(time.Millisecond)
	}
	queued := make(chan error, 1)
	go func() {
		_, err := eng.Solve(ctx, Request{Instance: insts[1], Tenant: "busy"})
		queued <- err
	}()
	for eng.Snapshot().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}

	// Queue full: the third request is shed. It must be a distinct instance —
	// solving insts[0] again would coalesce onto the blocked in-flight solve
	// before ever reaching admission.
	_, err := eng.Solve(ctx, Request{Instance: insts[2], Tenant: "busy"})
	var shed *ErrShed
	if !errors.As(err, &shed) {
		t.Fatalf("over-quota solve returned %v, want *ErrShed", err)
	}
	if shed.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %s, want the configured 3s", shed.RetryAfter)
	}
	close(stub.block)
	if err := <-running; err != nil {
		t.Fatal(err)
	}
	if err := <-queued; err != nil {
		t.Fatal(err)
	}

	snap := eng.Snapshot()
	if snap.Shed != 1 || snap.Errors != 0 {
		t.Fatalf("global split wrong: shed=%d errors=%d", snap.Shed, snap.Errors)
	}
	ts, ok := snap.Tenants["busy"]
	if !ok {
		t.Fatalf("no per-tenant snapshot for busy: %+v", snap.Tenants)
	}
	if ts.Shed != 1 || ts.Errors != 0 || ts.Requests != 3 {
		t.Fatalf("tenant split wrong: %+v", ts)
	}
	if res, err := eng.Solve(ctx, Request{Instance: core.NewInstance([]float64{0.5}), Tenant: "busy"}); err != nil {
		t.Fatal(err)
	} else if res.Telemetry.Tenant != "busy" {
		t.Fatalf("telemetry tenant = %q, want busy", res.Telemetry.Tenant)
	}
}

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants("gold:3, free:1:4:32:1 ,plain")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]TenantConfig{
		"gold":  {Weight: 3},
		"free":  {Weight: 1, MaxInflight: 4, MaxQueued: 32, Priority: 1},
		"plain": {},
	}
	if len(got) != len(want) {
		t.Fatalf("ParseTenants = %+v, want %+v", got, want)
	}
	for name, cfg := range want {
		if got[name] != cfg {
			t.Fatalf("tenant %q = %+v, want %+v", name, got[name], cfg)
		}
	}
	for _, bad := range []string{"", ":3", "a:b", "a:1:2:3:4:5", "dup:1,dup:2"} {
		if _, err := ParseTenants(bad); err == nil {
			t.Fatalf("ParseTenants(%q) accepted", bad)
		}
	}
}
