// Package manycore implements the system substrate that motivates the paper
// (Section 1): a many-core machine whose cores share a single memory/I/O
// bandwidth channel. Tasks progress through phases; each phase declares the
// bandwidth share it needs to run at full speed and, when it receives only an
// x-fraction of that share, it progresses at an x-fraction of full speed —
// exactly the progress law of the CRSharing model, realised here as a
// discrete-time simulator with pluggable online bandwidth-allocation
// policies.
//
// The simulator deliberately does not depend on package core: it models the
// "real" system (cores, a bus, tasks with phases, queues), while package core
// models the paper's abstraction of it. Package trace converts between the
// two representations, mirroring how the paper derives its model from the
// system it describes.
package manycore

import (
	"fmt"
	"math"
)

// PhaseKind classifies a phase for reporting purposes; the engine treats all
// kinds identically (progress is governed by bandwidth alone), but workload
// generators and metrics distinguish I/O-bound from compute-bound phases.
type PhaseKind int

const (
	// PhaseIO is an I/O- or memory-bound phase: it needs a significant share
	// of the shared bandwidth to run at full speed.
	PhaseIO PhaseKind = iota
	// PhaseCompute is a compute-bound phase: it needs little or no shared
	// bandwidth.
	PhaseCompute
)

// String renders the phase kind.
func (k PhaseKind) String() string {
	switch k {
	case PhaseIO:
		return "io"
	case PhaseCompute:
		return "compute"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Phase is one stage of a task with a constant bandwidth requirement.
type Phase struct {
	// Kind classifies the phase (reporting only).
	Kind PhaseKind
	// Bandwidth is the share of the machine's total bandwidth the phase needs
	// to progress at full speed, in [0, 1].
	Bandwidth float64
	// Volume is the amount of work in the phase, measured in ticks at full
	// speed (a volume of 3 takes three ticks when the phase always receives
	// its full bandwidth requirement).
	Volume float64
}

// Work returns the total bandwidth-time product the phase consumes, i.e. its
// contribution to the aggregate-bandwidth lower bound.
func (p Phase) Work() float64 { return p.Bandwidth * p.Volume }

// Validate checks the phase parameters.
func (p Phase) Validate() error {
	if math.IsNaN(p.Bandwidth) || p.Bandwidth < 0 || p.Bandwidth > 1 {
		return fmt.Errorf("manycore: phase bandwidth %v outside [0,1]", p.Bandwidth)
	}
	if math.IsNaN(p.Volume) || p.Volume <= 0 {
		return fmt.Errorf("manycore: phase volume %v must be positive", p.Volume)
	}
	return nil
}

// Task is a program: a named sequence of phases executed in order on a single
// core.
type Task struct {
	Name   string
	Phases []Phase
}

// NewTask builds a task from phases.
func NewTask(name string, phases ...Phase) *Task {
	return &Task{Name: name, Phases: append([]Phase(nil), phases...)}
}

// TotalVolume returns the sum of phase volumes (ticks at full speed).
func (t *Task) TotalVolume() float64 {
	var v float64
	for _, p := range t.Phases {
		v += p.Volume
	}
	return v
}

// TotalWork returns the total bandwidth-time product of the task.
func (t *Task) TotalWork() float64 {
	var w float64
	for _, p := range t.Phases {
		w += p.Work()
	}
	return w
}

// Validate checks all phases.
func (t *Task) Validate() error {
	if t == nil {
		return fmt.Errorf("manycore: nil task")
	}
	if len(t.Phases) == 0 {
		return fmt.Errorf("manycore: task %q has no phases", t.Name)
	}
	for i, p := range t.Phases {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("task %q phase %d: %w", t.Name, i, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the task.
func (t *Task) Clone() *Task {
	return NewTask(t.Name, t.Phases...)
}

// Workload assigns a queue of tasks to every core of a machine. Cores process
// their queues sequentially, one task at a time, one phase at a time.
type Workload struct {
	// Queues[c] is the ordered task queue of core c.
	Queues [][]*Task
}

// NewWorkload returns a workload with one empty queue per core.
func NewWorkload(cores int) *Workload {
	return &Workload{Queues: make([][]*Task, cores)}
}

// Assign appends a task to the queue of the given core.
func (w *Workload) Assign(core int, task *Task) {
	w.Queues[core] = append(w.Queues[core], task)
}

// AssignRoundRobin distributes the tasks over the cores in round-robin order,
// the simplest placement strategy; the paper's model takes the placement as
// given, so the simulator does the same.
func (w *Workload) AssignRoundRobin(tasks []*Task) {
	for i, t := range tasks {
		w.Assign(i%len(w.Queues), t)
	}
}

// Cores returns the number of cores the workload covers.
func (w *Workload) Cores() int { return len(w.Queues) }

// NumTasks returns the total number of tasks.
func (w *Workload) NumTasks() int {
	n := 0
	for _, q := range w.Queues {
		n += len(q)
	}
	return n
}

// TotalWork returns the aggregate bandwidth-time product of all tasks, the
// analogue of Observation 1's lower bound for the simulator: the bus serves
// at most one unit of bandwidth-time per tick.
func (w *Workload) TotalWork() float64 {
	var total float64
	for _, q := range w.Queues {
		for _, t := range q {
			total += t.TotalWork()
		}
	}
	return total
}

// TotalVolume returns the aggregate volume (full-speed ticks) of all tasks.
func (w *Workload) TotalVolume() float64 {
	var total float64
	for _, q := range w.Queues {
		for _, t := range q {
			total += t.TotalVolume()
		}
	}
	return total
}

// MaxQueueVolume returns the largest per-core total volume, the analogue of
// the chain lower bound n = max_i n_i.
func (w *Workload) MaxQueueVolume() float64 {
	var max float64
	for _, q := range w.Queues {
		var v float64
		for _, t := range q {
			v += t.TotalVolume()
		}
		if v > max {
			max = v
		}
	}
	return max
}

// Validate checks every task of the workload.
func (w *Workload) Validate() error {
	if w == nil || len(w.Queues) == 0 {
		return fmt.Errorf("manycore: workload covers no cores")
	}
	for c, q := range w.Queues {
		for _, t := range q {
			if err := t.Validate(); err != nil {
				return fmt.Errorf("core %d: %w", c, err)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the workload.
func (w *Workload) Clone() *Workload {
	out := NewWorkload(len(w.Queues))
	for c, q := range w.Queues {
		for _, t := range q {
			out.Assign(c, t.Clone())
		}
	}
	return out
}
