package manycore_test

import (
	"fmt"

	"crsharing/internal/manycore"
)

// Example simulates a tiny two-core machine: one core runs a bandwidth-hungry
// task, the other a compute-bound task. Under the demand-oblivious
// equal-share arbiter the I/O task crawls at half speed; the demand-aware
// greedy-balance policy gives it the whole channel and halves the makespan —
// the effect that motivates the paper's model.
func Example() {
	machine := manycore.NewMachine(2)
	workload := manycore.NewWorkload(2)
	workload.Assign(0, manycore.NewTask("io-scan",
		manycore.Phase{Kind: manycore.PhaseIO, Bandwidth: 1.0, Volume: 4}))
	workload.Assign(1, manycore.NewTask("compute",
		manycore.Phase{Kind: manycore.PhaseCompute, Bandwidth: 0, Volume: 4}))

	for _, policy := range []manycore.Policy{manycore.EqualShare{}, manycore.GreedyBalance{}} {
		metrics, err := manycore.NewEngine(machine).Run(workload.Clone(), policy)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%s: %d ticks\n", metrics.Policy, metrics.Ticks)
	}
	// Output:
	// equal-share: 6 ticks
	// greedy-balance: 4 ticks
}
