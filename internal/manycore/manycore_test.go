package manycore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func ioPhase(bw, vol float64) Phase { return Phase{Kind: PhaseIO, Bandwidth: bw, Volume: vol} }
func computePhase(bw, vol float64) Phase {
	return Phase{Kind: PhaseCompute, Bandwidth: bw, Volume: vol}
}

func singleTaskWorkload(cores int, tasks ...*Task) *Workload {
	w := NewWorkload(cores)
	for i, t := range tasks {
		w.Assign(i, t)
	}
	return w
}

func TestPhaseAndTaskValidation(t *testing.T) {
	if err := ioPhase(0.5, 2).Validate(); err != nil {
		t.Fatalf("valid phase rejected: %v", err)
	}
	if err := ioPhase(1.5, 2).Validate(); err == nil {
		t.Fatalf("bandwidth > 1 must be rejected")
	}
	if err := ioPhase(0.5, 0).Validate(); err == nil {
		t.Fatalf("zero volume must be rejected")
	}
	if err := NewTask("t").Validate(); err == nil {
		t.Fatalf("task without phases must be rejected")
	}
	task := NewTask("t", ioPhase(0.5, 2), computePhase(0.1, 1))
	if err := task.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	if !almostEq(task.TotalVolume(), 3) || !almostEq(task.TotalWork(), 1.1) {
		t.Fatalf("task totals wrong: volume=%v work=%v", task.TotalVolume(), task.TotalWork())
	}
	if PhaseIO.String() != "io" || PhaseCompute.String() != "compute" {
		t.Fatalf("phase kind rendering broken")
	}
}

func TestWorkloadAccounting(t *testing.T) {
	w := NewWorkload(2)
	w.AssignRoundRobin([]*Task{
		NewTask("a", ioPhase(0.5, 2)),
		NewTask("b", ioPhase(0.25, 4)),
		NewTask("c", ioPhase(1, 1)),
	})
	if w.NumTasks() != 3 || w.Cores() != 2 {
		t.Fatalf("workload shape wrong")
	}
	if len(w.Queues[0]) != 2 || len(w.Queues[1]) != 1 {
		t.Fatalf("round robin placement wrong: %d/%d", len(w.Queues[0]), len(w.Queues[1]))
	}
	if !almostEq(w.TotalWork(), 3) {
		t.Fatalf("total work = %v, want 3", w.TotalWork())
	}
	if !almostEq(w.TotalVolume(), 7) {
		t.Fatalf("total volume = %v, want 7", w.TotalVolume())
	}
	if !almostEq(w.MaxQueueVolume(), 4) {
		t.Fatalf("max queue volume = %v, want 4 (core 1 holds task b alone)", w.MaxQueueVolume())
	}
	clone := w.Clone()
	clone.Queues[0][0].Phases[0].Bandwidth = 0.9
	if w.Queues[0][0].Phases[0].Bandwidth != 0.5 {
		t.Fatalf("Clone must be deep")
	}
}

func TestEngineSingleCoreFullBandwidth(t *testing.T) {
	// One core, one task with 3 volume units of I/O at bandwidth 0.5: with
	// the whole bus available it runs at full speed and finishes in 3 ticks.
	machine := NewMachine(1)
	w := singleTaskWorkload(1, NewTask("only", ioPhase(0.5, 3)))
	for _, p := range Policies() {
		m, err := NewEngine(machine).Run(w.Clone(), p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if m.Ticks != 3 {
			t.Fatalf("%s: ticks = %d, want 3", p.Name(), m.Ticks)
		}
	}
}

func TestEngineEqualShareStarvesIOHeavyCore(t *testing.T) {
	// Three cores: one I/O-bound task needing 100% of the bus and two compute
	// tasks needing none. EqualShare gives the I/O task only a third of the
	// bus, so it crawls; demand-aware policies give it everything.
	machine := NewMachine(3)
	w := singleTaskWorkload(3,
		NewTask("io", ioPhase(1.0, 4)),
		NewTask("compute-1", computePhase(0, 4)),
		NewTask("compute-2", computePhase(0, 4)),
	)
	equal, err := NewEngine(machine).Run(w.Clone(), EqualShare{})
	if err != nil {
		t.Fatalf("equal: %v", err)
	}
	greedy, err := NewEngine(machine).Run(w.Clone(), GreedyBalance{})
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	if equal.Ticks <= greedy.Ticks {
		t.Fatalf("EqualShare (%d ticks) should be slower than GreedyBalance (%d ticks)", equal.Ticks, greedy.Ticks)
	}
	if greedy.Ticks != 4 {
		t.Fatalf("demand-aware policy should finish in 4 ticks, got %d", greedy.Ticks)
	}
	if equal.Ticks < 7 {
		t.Fatalf("EqualShare should need roughly twice as long, got %d ticks", equal.Ticks)
	}
	if equal.StallTicks == 0 {
		t.Fatalf("EqualShare run should record stalled core-ticks")
	}
}

func TestEngineMetricsAccounting(t *testing.T) {
	machine := NewMachine(2)
	w := singleTaskWorkload(2,
		NewTask("a", ioPhase(0.6, 2)),
		NewTask("b", ioPhase(0.4, 2)),
	)
	m, err := NewEngine(machine).Run(w, WaterFill{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Ticks != 2 {
		t.Fatalf("both tasks fit side by side: want 2 ticks, got %d", m.Ticks)
	}
	if !almostEq(m.BusBusy, 2.0) {
		t.Fatalf("bus busy = %v, want 2.0 (0.6+0.4 per tick for 2 ticks)", m.BusBusy)
	}
	if m.Utilization() < 0.99 {
		t.Fatalf("utilization = %v, want ~1", m.Utilization())
	}
	if m.TaskFinish["a"] != 2 || m.TaskFinish["b"] != 2 {
		t.Fatalf("task finish ticks wrong: %v", m.TaskFinish)
	}
	if m.CoreFinish[0] != 2 || m.CoreFinish[1] != 2 {
		t.Fatalf("core finish ticks wrong: %v", m.CoreFinish)
	}
	if m.RatioToLowerBound() < 1-1e-9 {
		t.Fatalf("ratio to lower bound below 1: %v", m.RatioToLowerBound())
	}
	if m.String() == "" {
		t.Fatalf("metrics must render")
	}
}

func TestEngineLowerBoundNeverViolated(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		cores := 2 + rng.Intn(6)
		machine := NewMachine(cores)
		w := NewWorkload(cores)
		var tasks []*Task
		for i := 0; i < cores+rng.Intn(cores); i++ {
			var phases []Phase
			for p := 0; p < 1+rng.Intn(4); p++ {
				phases = append(phases, Phase{
					Kind:      PhaseKind(rng.Intn(2)),
					Bandwidth: 0.05 + rng.Float64()*0.9,
					Volume:    0.5 + rng.Float64()*3,
				})
			}
			tasks = append(tasks, NewTask("t", phases...))
		}
		w.AssignRoundRobin(tasks)
		for _, p := range Policies() {
			m, err := NewEngine(machine).Run(w.Clone(), p)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, p.Name(), err)
			}
			if float64(m.Ticks) < m.LowerBound-1e-9 {
				t.Fatalf("trial %d %s: ticks %d below lower bound %v", trial, p.Name(), m.Ticks, m.LowerBound)
			}
			if m.BusBusy > float64(m.Ticks)*machine.Bandwidth+1e-6 {
				t.Fatalf("trial %d %s: bus busy %v exceeds capacity", trial, p.Name(), m.BusBusy)
			}
		}
	}
}

func TestEngineGreedyBalanceNeverWorseTwiceLowerBound(t *testing.T) {
	// The simulator analogue of Theorem 7: the greedy-balance policy stays
	// within a small constant factor of the bandwidth/critical-path lower
	// bound on random unit-volume workloads.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		cores := 2 + rng.Intn(5)
		machine := NewMachine(cores)
		w := NewWorkload(cores)
		for c := 0; c < cores; c++ {
			var phases []Phase
			for p := 0; p < 1+rng.Intn(6); p++ {
				phases = append(phases, ioPhase(0.05+rng.Float64()*0.95, 1))
			}
			w.Assign(c, NewTask("t", phases...))
		}
		m, err := NewEngine(machine).Run(w, GreedyBalance{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		limit := 2*m.LowerBound + float64(cores) + 1
		if float64(m.Ticks) > limit {
			t.Fatalf("trial %d: greedy-balance %d ticks exceeds 2·LB+m = %v", trial, m.Ticks, limit)
		}
	}
}

func TestEngineRejectsMismatchedShapes(t *testing.T) {
	machine := NewMachine(2)
	w := NewWorkload(3)
	w.Assign(0, NewTask("a", ioPhase(0.5, 1)))
	w.Assign(1, NewTask("b", ioPhase(0.5, 1)))
	w.Assign(2, NewTask("c", ioPhase(0.5, 1)))
	if _, err := NewEngine(machine).Run(w, EqualShare{}); err == nil {
		t.Fatalf("expected mismatch error")
	}
	if _, err := NewEngine(&Machine{Cores: 0, Bandwidth: 1}).Run(NewWorkload(0), EqualShare{}); err == nil {
		t.Fatalf("expected invalid machine error")
	}
}

func TestEngineMaxTicksGuard(t *testing.T) {
	machine := NewMachine(1)
	w := singleTaskWorkload(1, NewTask("x", ioPhase(0.5, 100)))
	e := NewEngine(machine)
	e.MaxTicks = 5
	if _, err := e.Run(w, EqualShare{}); err == nil {
		t.Fatalf("expected max-ticks error")
	}
}

func TestCompareRunsIdenticalCopies(t *testing.T) {
	machine := NewMachine(2)
	w := singleTaskWorkload(2,
		NewTask("io", ioPhase(0.9, 3)),
		NewTask("bg", computePhase(0.05, 3)),
	)
	results, err := Compare(machine, w, Policies()...)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(results) != len(Policies()) {
		t.Fatalf("expected %d results, got %d", len(Policies()), len(results))
	}
	for _, m := range results {
		if m.Ticks < 3 {
			t.Fatalf("%s finished in %d ticks, impossible (< critical path)", m.Policy, m.Ticks)
		}
	}
	// The original workload must be untouched by the runs.
	if w.Queues[0][0].Phases[0].Volume != 3 {
		t.Fatalf("Compare must not mutate the input workload")
	}
}

func TestPoliciesNeverOvercommitProperty(t *testing.T) {
	// Property: on arbitrary states, every built-in policy allocates
	// non-negative shares totalling at most the capacity (within tolerance)
	// and never more than a core's demand plus tolerance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		s := &State{Tick: rng.Intn(100), Capacity: 1, Cores: make([]CoreState, n)}
		for i := range s.Cores {
			active := rng.Float64() < 0.8
			cs := CoreState{Core: i, Active: active, PhaseIndex: -1}
			if active {
				req := rng.Float64()
				rem := rng.Float64() * 4
				cs.Requirement = req
				cs.Demand = math.Min(req, req*rem)
				cs.RemainingPhaseVolume = rem
				cs.RemainingTaskVolume = rem
				cs.RemainingQueueVolume = rem + rng.Float64()*4
				cs.RemainingPhases = 1 + rng.Intn(5)
				cs.PhaseIndex = rng.Intn(3)
			}
			s.Cores[i] = cs
		}
		for _, p := range Policies() {
			shares := p.Allocate(s)
			if len(shares) != n {
				return false
			}
			var total float64
			for i, x := range shares {
				if x < -1e-12 {
					return false
				}
				if !s.Cores[i].Active && x > 1e-12 && p.Name() != "equal-share" && p.Name() != "proportional-share" {
					// Demand-aware policies never grant bandwidth to idle
					// cores. (The naive baselines may, which the engine then
					// accounts as waste.)
					return false
				}
				total += x
			}
			if total > s.Capacity+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("property violated: %v", err)
	}
}

func TestStateHelpers(t *testing.T) {
	s := &State{Capacity: 1, Cores: []CoreState{
		{Core: 0, Active: true, Demand: 0.3},
		{Core: 1, Active: false},
		{Core: 2, Active: true, Demand: 0.5},
	}}
	if !almostEq(s.TotalDemand(), 0.8) {
		t.Fatalf("total demand = %v, want 0.8", s.TotalDemand())
	}
	act := s.ActiveCores()
	if len(act) != 2 || act[0] != 0 || act[1] != 2 {
		t.Fatalf("active cores = %v", act)
	}
}

func almostEq(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}
