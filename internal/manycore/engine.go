package manycore

import (
	"fmt"
	"math"
)

// Metrics summarises a simulation run.
type Metrics struct {
	// Policy is the name of the policy that produced the run.
	Policy string
	// Ticks is the number of ticks until every task finished (the makespan).
	Ticks int
	// CoreFinish[c] is the tick at which core c finished its queue (0 for
	// cores with empty queues).
	CoreFinish []int
	// TaskFinish maps task names to their completion tick.
	TaskFinish map[string]int
	// Busbusy is the total bandwidth-time actually consumed by progressing
	// phases.
	BusBusy float64
	// BusWasted is the bandwidth-time granted to cores but not converted into
	// progress (over-provisioned or granted to idle cores).
	BusWasted float64
	// BusIdle is the bandwidth-time left unallocated while at least one core
	// still had work.
	BusIdle float64
	// StallTicks is the total number of core-ticks in which an active core
	// progressed at less than half of full speed (a coarse responsiveness
	// indicator).
	StallTicks int
	// IOPhaseTicks and ComputePhaseTicks count core-ticks spent in phases of
	// each kind.
	IOPhaseTicks      int
	ComputePhaseTicks int
	// LowerBound is the simple lower bound on the achievable makespan:
	// max(total work / capacity, longest per-core volume).
	LowerBound float64
}

// Utilization returns the fraction of the bus capacity converted into
// progress over the run.
func (m *Metrics) Utilization() float64 {
	if m.Ticks == 0 {
		return 0
	}
	return m.BusBusy / (float64(m.Ticks))
}

// RatioToLowerBound returns Ticks divided by the lower bound (≥ 1 up to
// rounding), the simulator's analogue of an approximation ratio.
func (m *Metrics) RatioToLowerBound() float64 {
	if m.LowerBound <= 0 {
		return 1
	}
	return float64(m.Ticks) / m.LowerBound
}

// String renders a one-line summary.
func (m *Metrics) String() string {
	return fmt.Sprintf("%s: %d ticks (%.2fx LB), util %.1f%%, wasted %.1f, idle %.1f, stalls %d",
		m.Policy, m.Ticks, m.RatioToLowerBound(), 100*m.Utilization(), m.BusWasted, m.BusIdle, m.StallTicks)
}

// Engine runs workloads on a machine under a policy.
type Engine struct {
	machine *Machine
	// MaxTicks caps the simulation length as a safety valve against policies
	// that starve a core forever; Run returns an error when the cap is hit.
	MaxTicks int
	// recorder, when attached via SetRecorder, captures per-tick shares and
	// progress for visualisation.
	recorder *Recorder
}

// NewEngine returns an engine for the machine with a generous default tick
// cap derived from the workload at run time.
func NewEngine(machine *Machine) *Engine {
	return &Engine{machine: machine}
}

// coreRuntime is the engine's private per-core progress state.
type coreRuntime struct {
	queue     []*Task
	taskIdx   int
	phaseIdx  int
	remVolume float64 // remaining volume of the current phase
	finish    int     // tick the core finished (valid once idle)
}

func (c *coreRuntime) active() bool { return c.taskIdx < len(c.queue) }

func (c *coreRuntime) phase() Phase { return c.queue[c.taskIdx].Phases[c.phaseIdx] }

// remainingTaskVolume returns the remaining volume of the current task.
func (c *coreRuntime) remainingTaskVolume() float64 {
	if !c.active() {
		return 0
	}
	v := c.remVolume
	for p := c.phaseIdx + 1; p < len(c.queue[c.taskIdx].Phases); p++ {
		v += c.queue[c.taskIdx].Phases[p].Volume
	}
	return v
}

// remainingQueueVolume returns the remaining volume across the whole queue.
func (c *coreRuntime) remainingQueueVolume() float64 {
	if !c.active() {
		return 0
	}
	v := c.remainingTaskVolume()
	for t := c.taskIdx + 1; t < len(c.queue); t++ {
		v += c.queue[t].TotalVolume()
	}
	return v
}

// remainingPhases counts unfinished phases across the queue.
func (c *coreRuntime) remainingPhases() int {
	if !c.active() {
		return 0
	}
	n := len(c.queue[c.taskIdx].Phases) - c.phaseIdx
	for t := c.taskIdx + 1; t < len(c.queue); t++ {
		n += len(c.queue[t].Phases)
	}
	return n
}

// Run simulates the workload to completion under the policy and returns the
// collected metrics.
func (e *Engine) Run(w *Workload, policy Policy) (*Metrics, error) {
	if err := e.machine.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if w.Cores() != e.machine.Cores {
		return nil, fmt.Errorf("manycore: workload covers %d cores, machine has %d", w.Cores(), e.machine.Cores)
	}

	cores := make([]*coreRuntime, e.machine.Cores)
	for c := range cores {
		cores[c] = &coreRuntime{queue: w.Queues[c]}
		if cores[c].active() {
			cores[c].remVolume = cores[c].phase().Volume
		}
	}

	maxTicks := e.MaxTicks
	if maxTicks <= 0 {
		// Worst case: a single core makes progress at a time and every phase
		// crawls at the smallest representable useful speed the policies
		// produce; volume/capacity plus per-phase rounding is a safe bound.
		maxTicks = int(math.Ceil(w.TotalVolume()))*4 + int(math.Ceil(w.TotalWork()/e.machine.Bandwidth))*4 + w.NumTasks()*4 + 64
	}

	metrics := &Metrics{
		Policy:     policy.Name(),
		CoreFinish: make([]int, e.machine.Cores),
		TaskFinish: make(map[string]int),
		LowerBound: math.Max(w.TotalWork()/e.machine.Bandwidth, w.MaxQueueVolume()),
	}

	for tick := 0; ; tick++ {
		allDone := true
		for _, c := range cores {
			if c.active() {
				allDone = false
				break
			}
		}
		if allDone {
			metrics.Ticks = tick
			// Clamp floating-point dust so reports never show "-0.0".
			if metrics.BusWasted < 0 && metrics.BusWasted > -1e-6 {
				metrics.BusWasted = 0
			}
			if metrics.BusIdle < 0 && metrics.BusIdle > -1e-6 {
				metrics.BusIdle = 0
			}
			return metrics, nil
		}
		if tick >= maxTicks {
			return nil, fmt.Errorf("manycore: simulation exceeded %d ticks under policy %q (starvation?)", maxTicks, policy.Name())
		}

		state := e.snapshot(tick, cores)
		shares := policy.Allocate(state)
		if len(shares) < len(cores) {
			padded := make([]float64, len(cores))
			copy(padded, shares)
			shares = padded
		}
		e.applyTick(tick, cores, state, shares, metrics)
	}
}

// snapshot builds the policy-visible state.
func (e *Engine) snapshot(tick int, cores []*coreRuntime) *State {
	s := &State{Tick: tick, Capacity: e.machine.Bandwidth, Cores: make([]CoreState, len(cores))}
	for i, c := range cores {
		cs := CoreState{Core: i, PhaseIndex: -1}
		if c.active() {
			ph := c.phase()
			cs.Active = true
			cs.TaskName = c.queue[c.taskIdx].Name
			cs.PhaseIndex = c.phaseIdx
			cs.PhaseKind = ph.Kind
			cs.Requirement = ph.Bandwidth
			cs.Demand = math.Min(ph.Bandwidth, ph.Bandwidth*c.remVolume)
			if ph.Bandwidth == 0 {
				cs.Demand = 0
			}
			cs.RemainingPhaseVolume = c.remVolume
			cs.RemainingTaskVolume = c.remainingTaskVolume()
			cs.RemainingQueueVolume = c.remainingQueueVolume()
			cs.QueuedTasks = len(c.queue) - c.taskIdx - 1
			cs.RemainingPhases = c.remainingPhases()
		}
		s.Cores[i] = cs
	}
	return s
}

// applyTick advances every core by one tick given the granted shares, and
// accounts the bus usage.
func (e *Engine) applyTick(tick int, cores []*coreRuntime, state *State, shares []float64, m *Metrics) {
	var rec *TickRecord
	if e.recorder != nil {
		rec = &TickRecord{
			Tick:     tick,
			Share:    make([]float64, len(cores)),
			Progress: make([]float64, len(cores)),
			Phase:    make([]int, len(cores)),
			Task:     make([]string, len(cores)),
		}
		for i := range rec.Phase {
			rec.Phase[i] = -1
		}
	}
	var granted, used float64
	for i, c := range cores {
		share := shares[i]
		if share < 0 {
			share = 0
		}
		granted += share
		if rec != nil {
			rec.Share[i] = share
		}
		if !c.active() {
			m.BusWasted += share
			continue
		}
		ph := c.phase()
		// Speed in [0,1]: fraction of full speed achieved this tick.
		speed := 1.0
		if ph.Bandwidth > 0 {
			speed = math.Min(share/ph.Bandwidth, 1)
		}
		progress := math.Min(speed, c.remVolume)
		consumed := progress * ph.Bandwidth
		used += consumed
		m.BusWasted += share - consumed
		if ph.Kind == PhaseIO {
			m.IOPhaseTicks++
		} else {
			m.ComputePhaseTicks++
		}
		if progress < 0.5 && progress < c.remVolume-1e-9 {
			// The core ran at under half speed and the slowdown was not just
			// the natural tail of a nearly finished phase.
			m.StallTicks++
		}
		if rec != nil {
			rec.Progress[i] = progress
			rec.Phase[i] = c.phaseIdx
			rec.Task[i] = c.queue[c.taskIdx].Name
		}
		c.remVolume -= progress
		if c.remVolume <= 1e-9 {
			// Phase finished; advance to the next phase or task.
			c.phaseIdx++
			if c.phaseIdx >= len(c.queue[c.taskIdx].Phases) {
				m.TaskFinish[c.queue[c.taskIdx].Name] = tick + 1
				c.taskIdx++
				c.phaseIdx = 0
			}
			if c.active() {
				c.remVolume = c.phase().Volume
			} else {
				c.finish = tick + 1
				m.CoreFinish[i] = tick + 1
			}
		}
	}
	if rec != nil {
		e.recorder.record(*rec)
	}
	m.BusBusy += used
	if granted > e.machine.Bandwidth+1e-6 {
		// Policies are trusted not to overcommit, but keep the accounting
		// sane if one does: scale the recorded waste so totals still add up.
		granted = e.machine.Bandwidth
	}
	idle := e.machine.Bandwidth - granted
	if idle > 0 {
		m.BusIdle += idle
	}
}

// Compare runs the same workload under several policies and returns the
// metrics in the given order. Each policy sees an identical fresh copy of the
// workload.
func Compare(machine *Machine, w *Workload, policies ...Policy) ([]*Metrics, error) {
	var out []*Metrics
	for _, p := range policies {
		m, err := NewEngine(machine).Run(w.Clone(), p)
		if err != nil {
			return nil, fmt.Errorf("policy %q: %w", p.Name(), err)
		}
		out = append(out, m)
	}
	return out, nil
}
