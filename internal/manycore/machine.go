package manycore

import "fmt"

// Machine describes the simulated hardware: a number of identical fixed-speed
// cores sharing one bandwidth channel (memory bus, NoC uplink, or storage
// link — the paper's "single data bus to the outside world").
type Machine struct {
	// Cores is the number of processing cores.
	Cores int
	// Bandwidth is the capacity of the shared channel per tick. Phase
	// bandwidth requirements are expressed as fractions of this capacity, so
	// the default of 1.0 treats requirements as absolute shares; a different
	// value scales the whole system (for example to model a degraded link).
	Bandwidth float64
}

// NewMachine returns a machine with the given core count and unit bandwidth.
func NewMachine(cores int) *Machine {
	return &Machine{Cores: cores, Bandwidth: 1.0}
}

// Validate checks the machine parameters.
func (m *Machine) Validate() error {
	if m == nil {
		return fmt.Errorf("manycore: nil machine")
	}
	if m.Cores < 1 {
		return fmt.Errorf("manycore: machine needs at least one core, got %d", m.Cores)
	}
	if m.Bandwidth <= 0 {
		return fmt.Errorf("manycore: bandwidth capacity must be positive, got %v", m.Bandwidth)
	}
	return nil
}

// CoreState is the externally visible per-core state a policy sees when
// deciding a tick's bandwidth split.
type CoreState struct {
	// Core is the core index.
	Core int
	// Active reports whether the core currently has an unfinished task.
	Active bool
	// TaskName is the name of the running task ("" when idle).
	TaskName string
	// PhaseIndex is the index of the running phase within its task (-1 when
	// idle).
	PhaseIndex int
	// PhaseKind is the running phase's kind.
	PhaseKind PhaseKind
	// Demand is the bandwidth share the phase can usefully absorb this tick:
	// min(requirement, remaining work). Zero for idle cores.
	Demand float64
	// Requirement is the phase's full bandwidth requirement (zero when idle).
	Requirement float64
	// RemainingPhaseVolume is the remaining volume of the running phase.
	RemainingPhaseVolume float64
	// RemainingTaskVolume is the remaining volume of the running task
	// (including the running phase).
	RemainingTaskVolume float64
	// RemainingQueueVolume is the total remaining volume on the core's queue
	// (running task plus queued tasks).
	RemainingQueueVolume float64
	// QueuedTasks is the number of tasks that have not yet started on this
	// core (excluding the running one).
	QueuedTasks int
	// RemainingPhases is the number of phases not yet finished across the
	// whole queue (including the running phase).
	RemainingPhases int
}

// State is the snapshot handed to a policy at the start of every tick.
type State struct {
	// Tick is the zero-based tick number.
	Tick int
	// Capacity is the machine's bandwidth capacity.
	Capacity float64
	// Cores holds one entry per core.
	Cores []CoreState
}

// TotalDemand returns the sum of all cores' useful demand this tick.
func (s *State) TotalDemand() float64 {
	var d float64
	for _, c := range s.Cores {
		d += c.Demand
	}
	return d
}

// ActiveCores returns the indices of cores that still have work.
func (s *State) ActiveCores() []int {
	var out []int
	for _, c := range s.Cores {
		if c.Active {
			out = append(out, c.Core)
		}
	}
	return out
}
