package manycore

import (
	"strings"
	"testing"
)

func TestRecorderCapturesEveryTick(t *testing.T) {
	machine := NewMachine(2)
	w := singleTaskWorkload(2,
		NewTask("io", ioPhase(0.6, 2)),
		NewTask("bg", computePhase(0, 3)),
	)
	rec := NewRecorder(0)
	e := NewEngine(machine)
	e.SetRecorder(rec)
	m, err := e.Run(w, WaterFill{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rec.Ticks) != m.Ticks {
		t.Fatalf("recorded %d ticks, simulation took %d", len(rec.Ticks), m.Ticks)
	}
	// The compute task needs no bandwidth but still progresses at full speed.
	first := rec.Ticks[0]
	if first.Progress[1] < 0.99 {
		t.Fatalf("compute core should progress at full speed, got %v", first.Progress[1])
	}
	if first.Task[0] != "io" || first.Task[1] != "bg" {
		t.Fatalf("task names not recorded: %v", first.Task)
	}
}

func TestRecorderTimelineAndCSV(t *testing.T) {
	machine := NewMachine(2)
	w := singleTaskWorkload(2,
		NewTask("heavy", ioPhase(1.0, 3)),
		NewTask("light", ioPhase(0.2, 1)),
	)
	rec := NewRecorder(0)
	e := NewEngine(machine)
	e.SetRecorder(rec)
	if _, err := e.Run(w, GreedyBalance{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	timeline := rec.Timeline()
	if !strings.Contains(timeline, "core  0") || !strings.Contains(timeline, "#") {
		t.Fatalf("timeline malformed:\n%s", timeline)
	}
	csv := rec.BandwidthCSV()
	if !strings.HasPrefix(csv, "tick,core0,core1") {
		t.Fatalf("CSV header malformed:\n%s", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != len(rec.Ticks)+1 {
		t.Fatalf("CSV should have one line per tick plus a header")
	}
}

func TestRecorderMaxTicks(t *testing.T) {
	machine := NewMachine(1)
	w := singleTaskWorkload(1, NewTask("long", ioPhase(0.5, 10)))
	rec := NewRecorder(3)
	e := NewEngine(machine)
	e.SetRecorder(rec)
	if _, err := e.Run(w, WaterFill{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rec.Ticks) != 3 {
		t.Fatalf("recorder should cap at 3 ticks, got %d", len(rec.Ticks))
	}
	if rec.Dropped != 7 {
		t.Fatalf("dropped = %d, want 7", rec.Dropped)
	}
	if !strings.Contains(rec.Timeline(), "further ticks not recorded") {
		t.Fatalf("timeline should mention dropped ticks")
	}
}

func TestRecorderEmpty(t *testing.T) {
	rec := NewRecorder(0)
	if rec.Timeline() != "(no ticks recorded)\n" || rec.BandwidthCSV() != "" {
		t.Fatalf("empty recorder rendering malformed")
	}
}

func TestRecorderMarksStarvedCores(t *testing.T) {
	// FCFS gives everything to core 0 first; core 1's bandwidth-hungry phase
	// is starved ('!') while core 0 runs.
	machine := NewMachine(2)
	w := singleTaskWorkload(2,
		NewTask("first", ioPhase(1.0, 2)),
		NewTask("second", ioPhase(1.0, 2)),
	)
	rec := NewRecorder(0)
	e := NewEngine(machine)
	e.SetRecorder(rec)
	if _, err := e.Run(w, FirstComeFirstServed{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(rec.Timeline(), "!") {
		t.Fatalf("expected a starvation marker in the timeline:\n%s", rec.Timeline())
	}
}
