package manycore

import (
	"fmt"
	"strings"
)

// TickRecord captures the observable state of one simulation tick: the shares
// the policy granted and the progress every core made.
type TickRecord struct {
	Tick int
	// Share[c] is the bandwidth granted to core c.
	Share []float64
	// Progress[c] is the volume progress core c made during the tick.
	Progress []float64
	// Phase[c] is the phase index core c worked on (-1 when idle).
	Phase []int
	// Task[c] is the name of the task core c worked on ("" when idle).
	Task []string
}

// Recorder collects per-tick records during a simulation run. Attach it to an
// Engine via SetRecorder; a nil recorder disables recording (the default, to
// keep long simulations allocation-free).
type Recorder struct {
	Ticks []TickRecord
	// MaxTicks caps the number of recorded ticks (0 = unlimited); once the
	// cap is reached further ticks are counted but not stored.
	MaxTicks int
	// Dropped counts ticks that were not stored because of MaxTicks.
	Dropped int
}

// NewRecorder returns a recorder storing at most maxTicks ticks (0 =
// unlimited).
func NewRecorder(maxTicks int) *Recorder { return &Recorder{MaxTicks: maxTicks} }

func (r *Recorder) record(rec TickRecord) {
	if r.MaxTicks > 0 && len(r.Ticks) >= r.MaxTicks {
		r.Dropped++
		return
	}
	r.Ticks = append(r.Ticks, rec)
}

// Timeline renders the recorded ticks as an ASCII chart: one row per core,
// one column per tick, each cell showing the fraction of full speed the core
// achieved ('#' ≥ 90%, '+' ≥ 50%, '.' > 0, ' ' idle, '!' starved while
// active). It is the simulator's analogue of the Gantt rendering for model
// schedules.
func (r *Recorder) Timeline() string {
	if len(r.Ticks) == 0 {
		return "(no ticks recorded)\n"
	}
	cores := len(r.Ticks[0].Share)
	var b strings.Builder
	for c := 0; c < cores; c++ {
		fmt.Fprintf(&b, "core %2d |", c)
		for _, tick := range r.Ticks {
			if c >= len(tick.Progress) {
				b.WriteByte(' ')
				continue
			}
			switch {
			case tick.Phase[c] < 0:
				b.WriteByte(' ')
			case tick.Progress[c] >= 0.9:
				b.WriteByte('#')
			case tick.Progress[c] >= 0.5:
				b.WriteByte('+')
			case tick.Progress[c] > 1e-9:
				b.WriteByte('.')
			default:
				b.WriteByte('!')
			}
		}
		b.WriteString("|\n")
	}
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "(%d further ticks not recorded)\n", r.Dropped)
	}
	return b.String()
}

// BandwidthCSV renders the recorded per-core shares as CSV (tick, core0,
// core1, ...), convenient for external plotting.
func (r *Recorder) BandwidthCSV() string {
	if len(r.Ticks) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("tick")
	for c := range r.Ticks[0].Share {
		fmt.Fprintf(&b, ",core%d", c)
	}
	b.WriteString("\n")
	for _, tick := range r.Ticks {
		fmt.Fprintf(&b, "%d", tick.Tick+1)
		for _, s := range tick.Share {
			fmt.Fprintf(&b, ",%.4f", s)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SetRecorder attaches a recorder to the engine. Passing nil detaches it.
func (e *Engine) SetRecorder(r *Recorder) { e.recorder = r }
