package manycore

import (
	"math"
	"sort"
)

// Policy decides, at every tick, how the shared bandwidth is split among the
// cores. Implementations receive the full per-core state and must return one
// share per core; the engine clips the result so that it never exceeds the
// capacity and never exceeds a core's useful demand (so policies cannot
// accidentally "speed up" phases beyond their requirement).
type Policy interface {
	// Name returns a short stable identifier for reports.
	Name() string
	// Allocate returns the bandwidth share granted to each core this tick.
	Allocate(s *State) []float64
}

// EqualShare splits the capacity equally among all active cores, ignoring
// their actual demands. It models a hardware arbiter with no knowledge of the
// software and is the naive baseline of the motivating discussion: cores with
// compute-bound phases receive bandwidth they cannot use while I/O-bound
// phases starve.
type EqualShare struct{}

// Name implements Policy.
func (EqualShare) Name() string { return "equal-share" }

// Allocate implements Policy.
func (EqualShare) Allocate(s *State) []float64 {
	shares := make([]float64, len(s.Cores))
	active := s.ActiveCores()
	if len(active) == 0 {
		return shares
	}
	per := s.Capacity / float64(len(active))
	for _, c := range active {
		shares[c] = per
	}
	return shares
}

// ProportionalShare splits the capacity proportionally to each core's
// declared requirement (not its remaining work). It models bandwidth
// reservation systems that honour declared rates but never redistribute
// unused headroom within a tick.
type ProportionalShare struct{}

// Name implements Policy.
func (ProportionalShare) Name() string { return "proportional-share" }

// Allocate implements Policy.
func (ProportionalShare) Allocate(s *State) []float64 {
	shares := make([]float64, len(s.Cores))
	var total float64
	for _, c := range s.Cores {
		if c.Active {
			total += c.Requirement
		}
	}
	if total <= 0 {
		return shares
	}
	scale := s.Capacity / total
	if scale > 1 {
		scale = 1 // no benefit in over-provisioning a phase
	}
	for _, c := range s.Cores {
		if c.Active {
			shares[c.Core] = c.Requirement * scale
		}
	}
	return shares
}

// WaterFill serves demands with a water-filling scheme: capacity is divided
// equally, but headroom left by cores whose demand is below the equal share
// is redistributed to the others until either every demand is met or the
// capacity is exhausted. It is the demand-aware "fair" policy.
type WaterFill struct{}

// Name implements Policy.
func (WaterFill) Name() string { return "water-fill" }

// Allocate implements Policy.
func (WaterFill) Allocate(s *State) []float64 {
	shares := make([]float64, len(s.Cores))
	remaining := append([]int(nil), s.ActiveCores()...)
	avail := s.Capacity
	for avail > 1e-12 && len(remaining) > 0 {
		per := avail / float64(len(remaining))
		var next []int
		for _, c := range remaining {
			need := s.Cores[c].Demand - shares[c]
			if need <= per+1e-12 {
				shares[c] += need
				avail -= need
			} else {
				shares[c] += per
				avail -= per
				next = append(next, c)
			}
		}
		if len(next) == len(remaining) {
			break
		}
		remaining = next
	}
	return shares
}

// GreedyBalance is the online analogue of the paper's GreedyBalance
// algorithm: cores with more remaining volume on their queue are served
// first, ties broken by larger phase demand; each served core receives its
// full demand until the capacity runs out. By the paper's Theorem 7 the
// resulting schedules are within a factor 2 − 1/m of optimal in the unit-size
// regime.
type GreedyBalance struct{}

// Name implements Policy.
func (GreedyBalance) Name() string { return "greedy-balance" }

// Allocate implements Policy.
func (GreedyBalance) Allocate(s *State) []float64 {
	shares := make([]float64, len(s.Cores))
	order := s.ActiveCores()
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := s.Cores[order[a]], s.Cores[order[b]]
		if ca.RemainingPhases != cb.RemainingPhases {
			return ca.RemainingPhases > cb.RemainingPhases
		}
		if math.Abs(ca.RemainingQueueVolume-cb.RemainingQueueVolume) > 1e-12 {
			return ca.RemainingQueueVolume > cb.RemainingQueueVolume
		}
		if math.Abs(ca.Demand-cb.Demand) > 1e-12 {
			return ca.Demand > cb.Demand
		}
		return ca.Core < cb.Core
	})
	avail := s.Capacity
	for _, c := range order {
		if avail <= 1e-12 {
			break
		}
		give := math.Min(avail, s.Cores[c].Demand)
		shares[c] = give
		avail -= give
	}
	return shares
}

// LongestQueueFirst serves cores in decreasing order of remaining queue
// volume only (no phase-count balancing), giving each its full demand. It is
// an ablation between GreedyBalance and pure demand-greedy policies.
type LongestQueueFirst struct{}

// Name implements Policy.
func (LongestQueueFirst) Name() string { return "longest-queue-first" }

// Allocate implements Policy.
func (LongestQueueFirst) Allocate(s *State) []float64 {
	shares := make([]float64, len(s.Cores))
	order := s.ActiveCores()
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := s.Cores[order[a]], s.Cores[order[b]]
		if math.Abs(ca.RemainingQueueVolume-cb.RemainingQueueVolume) > 1e-12 {
			return ca.RemainingQueueVolume > cb.RemainingQueueVolume
		}
		return ca.Core < cb.Core
	})
	avail := s.Capacity
	for _, c := range order {
		if avail <= 1e-12 {
			break
		}
		give := math.Min(avail, s.Cores[c].Demand)
		shares[c] = give
		avail -= give
	}
	return shares
}

// FirstComeFirstServed serves cores in index order, giving each its full
// demand until the capacity runs out. It models a fixed-priority arbiter.
type FirstComeFirstServed struct{}

// Name implements Policy.
func (FirstComeFirstServed) Name() string { return "fcfs" }

// Allocate implements Policy.
func (FirstComeFirstServed) Allocate(s *State) []float64 {
	shares := make([]float64, len(s.Cores))
	avail := s.Capacity
	for _, c := range s.Cores {
		if !c.Active || avail <= 1e-12 {
			continue
		}
		give := math.Min(avail, c.Demand)
		shares[c.Core] = give
		avail -= give
	}
	return shares
}

// Policies returns one instance of every built-in policy, in a stable order
// suitable for comparison tables.
func Policies() []Policy {
	return []Policy{
		EqualShare{},
		ProportionalShare{},
		WaterFill{},
		FirstComeFirstServed{},
		LongestQueueFirst{},
		GreedyBalance{},
	}
}
