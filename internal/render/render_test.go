package render

import (
	"strings"
	"testing"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/algo/roundrobin"
	"crsharing/internal/core"
	"crsharing/internal/gen"
)

func executed(t *testing.T, inst *core.Instance) *core.Result {
	t.Helper()
	sched, err := greedybalance.New().Schedule(inst)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

func TestGanttShowsJobsAndUtilisation(t *testing.T) {
	inst := gen.Figure1()
	res := executed(t, inst)
	out := Gantt(res, GanttOptions{})
	if !strings.Contains(out, "p1") || !strings.Contains(out, "use %") {
		t.Fatalf("Gantt output malformed:\n%s", out)
	}
	// Every processor row must appear.
	for _, row := range []string{"p1", "p2", "p3"} {
		if !strings.Contains(out, row) {
			t.Fatalf("missing row %s:\n%s", row, out)
		}
	}
	// Idle processors render as --: processor 3 has only 3 jobs and the
	// schedule is longer than 3 steps, so at least one cell must be idle.
	if !strings.Contains(out, "--") {
		t.Fatalf("expected at least one idle cell:\n%s", out)
	}

	withShares := Gantt(res, GanttOptions{ShowShares: true})
	if withShares == out {
		t.Fatalf("share rendering should differ from job rendering")
	}
}

func TestGanttTruncation(t *testing.T) {
	inst := gen.Figure3(30)
	res := executed(t, inst)
	out := Gantt(res, GanttOptions{MaxSteps: 5})
	if !strings.Contains(out, "truncated after 5") {
		t.Fatalf("expected truncation notice:\n%s", out)
	}
}

func TestUtilisationFlagsWastefulSteps(t *testing.T) {
	inst := core.NewInstance([]float64{0.5, 0.5})
	s := core.NewSchedule(3, 1)
	s.Alloc[0][0] = 0.3 // wasteful: job unfinished, resource unused
	s.Alloc[1][0] = 0.2
	s.Alloc[2][0] = 0.5
	res, err := core.Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	out := Utilisation(res)
	if !strings.Contains(out, "wasteful") {
		t.Fatalf("expected a wasteful-step marker:\n%s", out)
	}
}

func TestJobTableListsAllJobs(t *testing.T) {
	inst := gen.Figure2()
	res := executed(t, inst)
	out := JobTable(res)
	for _, id := range []string{"(1,1)", "(1,4)", "(2,1)", "(3,1)"} {
		if !strings.Contains(out, id) {
			t.Fatalf("missing job %s:\n%s", id, out)
		}
	}
}

func TestJobTableUnfinishedJobsRenderDashes(t *testing.T) {
	inst := core.NewInstance([]float64{0.5, 0.5})
	s := core.NewSchedule(1, 1)
	s.Alloc[0][0] = 0.5
	res, err := core.Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	out := JobTable(res)
	if !strings.Contains(out, "-") {
		t.Fatalf("unfinished job should render dashes:\n%s", out)
	}
}

func TestCompare(t *testing.T) {
	inst := gen.Figure3(12)
	gb, err := greedybalance.New().Schedule(inst)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	rr, err := roundrobin.New().Schedule(inst)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	out, err := Compare(inst, map[string]*core.Schedule{
		"greedy-balance": gb,
		"round-robin":    rr,
	})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !strings.Contains(out, "greedy-balance") || !strings.Contains(out, "round-robin") {
		t.Fatalf("comparison missing algorithms:\n%s", out)
	}
	// greedy-balance beats round-robin on the Figure 3 family, so it must be
	// listed first.
	if strings.Index(out, "greedy-balance") > strings.Index(out, "round-robin") {
		t.Fatalf("rows must be sorted by makespan:\n%s", out)
	}
}

func TestCompareRejectsUnfinished(t *testing.T) {
	inst := gen.Figure2()
	if _, err := Compare(inst, map[string]*core.Schedule{"empty": {}}); err == nil {
		t.Fatalf("expected error for unfinished schedule")
	}
}

func TestCompareRejectsInfeasible(t *testing.T) {
	inst := core.NewInstance([]float64{0.5}, []float64{0.5})
	bad := core.NewSchedule(1, 2)
	bad.Alloc[0] = []float64{0.9, 0.9}
	if _, err := Compare(inst, map[string]*core.Schedule{"bad": bad}); err == nil {
		t.Fatalf("expected error for infeasible schedule")
	}
}
