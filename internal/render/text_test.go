package render

import (
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty series rendered %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3})
	if n := len([]rune(got)); n != 4 {
		t.Fatalf("sparkline has %d glyphs, want 4: %q", n, got)
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("extremes not mapped to lowest/highest glyph: %q", got)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("monotone series rendered non-monotone: %q", got)
		}
	}
	if got := Sparkline([]float64{5, 5, 5}); strings.ContainsAny(got, "▁█") {
		t.Errorf("constant series hit an extreme glyph: %q", got)
	}
}

func TestDeltaBar(t *testing.T) {
	got := DeltaBar(0.25, 0.05, 10)
	if got != "+25.0% +++++" {
		t.Errorf("DeltaBar(0.25) = %q", got)
	}
	got = DeltaBar(-0.10, 0.05, 10)
	if got != "-10.0% --" {
		t.Errorf("DeltaBar(-0.10) = %q", got)
	}
	// Tiny deltas render the percentage alone, huge ones cap at the width.
	if got := DeltaBar(0.001, 0.05, 10); strings.ContainsAny(got, "+-") && strings.Contains(got, "% +") {
		t.Errorf("tiny delta grew a bar: %q", got)
	}
	if got := DeltaBar(5.0, 0.05, 10); strings.Count(got, "+") != 11 { // "+500.0%" has one '+', bar capped at 10
		t.Errorf("huge delta not capped: %q", got)
	}
}
