package render

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eight block glyphs a sparkline is drawn with, lowest to
// highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the series as one glyph per value, scaled to the series'
// own min..max range, so the shape of a benchmark's samples (or a trajectory
// across runs) is visible in a table cell. An empty series renders empty; a
// constant series renders mid-height.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	var b strings.Builder
	for _, x := range xs {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((x - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// DeltaBar renders a signed fractional change as a percentage with a
// proportional bar: '+' glyphs for growth (a regression, when the metric is
// cost) and '-' glyphs for shrinkage, one glyph per `step` fraction, capped
// at `width` glyphs. DeltaBar(0.25, 0.05, 10) → "+25.0% +++++".
func DeltaBar(frac, step float64, width int) string {
	if step <= 0 || width <= 0 {
		return fmt.Sprintf("%+.1f%%", 100*frac)
	}
	n := int(math.Round(math.Abs(frac) / step))
	if n > width {
		n = width
	}
	glyph := "+"
	if frac < 0 {
		glyph = "-"
	}
	bar := strings.Repeat(glyph, n)
	if bar == "" {
		return fmt.Sprintf("%+.1f%%", 100*frac)
	}
	return fmt.Sprintf("%+.1f%% %s", 100*frac, bar)
}
