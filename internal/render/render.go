// Package render turns executed CRSharing schedules into human-readable ASCII
// visualisations: a per-processor Gantt chart (which job runs when, and at
// what speed), a per-step resource utilisation bar, and a compact comparison
// view for several schedules of the same instance. The command-line tools and
// the examples use it to show schedules the way the paper's figures do.
package render

import (
	"fmt"
	"strings"

	"crsharing/internal/core"
	"crsharing/internal/numeric"
)

// GanttOptions controls the Gantt rendering.
type GanttOptions struct {
	// ShowShares prints the granted share (in percent) in each cell instead
	// of the job index.
	ShowShares bool
	// MaxSteps truncates the rendering after this many steps (0 = no limit).
	MaxSteps int
}

// Gantt renders the executed schedule as one row per processor and one column
// per time step. Each cell shows the one-based index of the job the processor
// worked on (or "--" when idle); with ShowShares it shows the granted share
// in percent instead. A trailing row shows the total resource use per step.
func Gantt(res *core.Result, opts GanttOptions) string {
	steps := res.Steps()
	if opts.MaxSteps > 0 && steps > opts.MaxSteps {
		steps = opts.MaxSteps
	}
	m := res.NumProcessors()
	var b strings.Builder

	// Header row with step numbers.
	b.WriteString("      ")
	for t := 0; t < steps; t++ {
		fmt.Fprintf(&b, " %4d", t+1)
	}
	b.WriteString("\n")

	for i := 0; i < m; i++ {
		fmt.Fprintf(&b, "p%-4d|", i+1)
		for t := 0; t < steps; t++ {
			j, ok := res.ActiveJob(t, i)
			switch {
			case !ok:
				b.WriteString("   --")
			case opts.ShowShares:
				fmt.Fprintf(&b, " %4.0f", res.Schedule().Share(t, i)*100)
			default:
				if res.Progressed(t, i) {
					fmt.Fprintf(&b, " j%-3d", j+1)
				} else {
					// Active but not progressing (received no share).
					b.WriteString("    .")
				}
			}
		}
		b.WriteString("\n")
	}

	b.WriteString("use %|")
	for t := 0; t < steps; t++ {
		fmt.Fprintf(&b, " %4.0f", res.Schedule().StepTotal(t)*100)
	}
	b.WriteString("\n")
	if opts.MaxSteps > 0 && res.Steps() > opts.MaxSteps {
		fmt.Fprintf(&b, "(truncated after %d of %d steps)\n", opts.MaxSteps, res.Steps())
	}
	return b.String()
}

// Utilisation renders a vertical bar chart of the per-step resource
// utilisation (one line per step), useful for spotting the wasted steps that
// the non-wasting property forbids.
func Utilisation(res *core.Result) string {
	var b strings.Builder
	for t := 0; t < res.Steps(); t++ {
		total := res.Schedule().StepTotal(t)
		bars := int(total*40 + 0.5)
		if bars > 40 {
			bars = 40
		}
		marker := ""
		if numeric.Less(total, 1) && anyUnfinishedActive(res, t) {
			marker = "  <- wasteful"
		}
		fmt.Fprintf(&b, "t=%3d %5.1f%% |%-40s|%s\n", t+1, total*100, strings.Repeat("#", bars), marker)
	}
	return b.String()
}

func anyUnfinishedActive(res *core.Result, t int) bool {
	for i := 0; i < res.NumProcessors(); i++ {
		if res.Active(t, i) && !res.FinishedJobDuring(t, i) {
			return true
		}
	}
	return false
}

// JobTable renders one line per job with its requirement, start step,
// completion step and the number of steps it was in progress — the textual
// analogue of the interval structure used by the nested-schedule definition.
func JobTable(res *core.Result) string {
	var b strings.Builder
	b.WriteString("job     req%  start  finish  span\n")
	inst := res.Instance()
	for i := 0; i < inst.NumProcessors(); i++ {
		for j := 0; j < inst.NumJobs(i); j++ {
			s, c := res.StartStep(i, j), res.CompletionStep(i, j)
			span := "-"
			if s >= 0 && c >= 0 {
				span = fmt.Sprintf("%d", c-s+1)
			}
			fmt.Fprintf(&b, "(%d,%d)  %5.0f  %5s  %6s  %4s\n",
				i+1, j+1, inst.Job(i, j).Req*100, stepOrDash(s), stepOrDash(c), span)
		}
	}
	return b.String()
}

func stepOrDash(step int) string {
	if step < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", step+1)
}

// Compare renders a side-by-side summary of several schedules for the same
// instance: algorithm name, makespan, ratio to the best of them, and the
// structural properties.
func Compare(inst *core.Instance, schedules map[string]*core.Schedule) (string, error) {
	type row struct {
		name     string
		makespan int
		props    core.Properties
	}
	var rows []row
	best := 0
	for name, s := range schedules {
		res, err := core.Execute(inst, s)
		if err != nil {
			return "", fmt.Errorf("render: %s: %w", name, err)
		}
		if !res.Finished() {
			return "", fmt.Errorf("render: %s: schedule does not finish all jobs", name)
		}
		rows = append(rows, row{name: name, makespan: res.Makespan(), props: core.CheckProperties(res)})
		if best == 0 || res.Makespan() < best {
			best = res.Makespan()
		}
	}
	// Deterministic order: by makespan, then name.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0; j-- {
			if rows[j].makespan < rows[j-1].makespan ||
				(rows[j].makespan == rows[j-1].makespan && rows[j].name < rows[j-1].name) {
				rows[j], rows[j-1] = rows[j-1], rows[j]
			} else {
				break
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %8s  %s\n", "algorithm", "makespan", "vs best", "properties")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %8d %8.3f  %s\n", r.name, r.makespan, float64(r.makespan)/float64(best), r.props)
	}
	return b.String(), nil
}
