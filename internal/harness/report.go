package harness

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"crsharing/internal/stats"
)

// LatencySummary is a latency distribution in milliseconds, read off one
// stats.Summarize pass over the class's samples.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	MinMS  float64 `json:"min_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	// Histogram is the fixed-width ASCII histogram of the samples (empty
	// when there are none); it renders under the summary line in text
	// reports and survives into the JSON artifact for offline inspection.
	Histogram string `json:"histogram,omitempty"`
}

// summarizeLatency folds millisecond samples into a LatencySummary with a
// 20-bucket histogram spanning the observed range.
func summarizeLatency(ms []float64) LatencySummary {
	s := stats.Summarize(ms)
	out := LatencySummary{
		Count:  s.Count,
		MeanMS: s.Mean,
		MinMS:  s.Min,
		P50MS:  s.P50,
		P90MS:  s.P90,
		P99MS:  s.P99,
		MaxMS:  s.Max,
	}
	if s.Count > 0 {
		hi := s.Max
		if hi <= s.Min {
			hi = s.Min + 1
		}
		h := stats.NewHistogram(s.Min, hi+(hi-s.Min)*1e-9, 20)
		for _, x := range ms {
			h.Add(x)
		}
		out.Histogram = h.String()
	}
	return out
}

// JSON serialises the report, indented, for the BENCH_load.json artifact.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Text renders the human-readable run summary: one block per class with the
// latency summary and histogram, then the oracle verdict and the cache
// accounting.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crload: seed=%d rate=%g/s duration=%.2fs mix=solve:%d,batch:%d,jobs:%d\n",
		r.Seed, r.RatePerSec, r.DurationSec, r.Mix.Solve, r.Mix.Batch, r.Mix.Jobs)
	fmt.Fprintf(&b, "requests=%d shed=%d server-shed=%d throughput=%.1f req/s\n", r.Requests, r.Shed, r.ServerShed, r.Throughput)

	classes := make([]string, 0, len(r.Classes))
	for c := range r.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		cs := r.Classes[class]
		fmt.Fprintf(&b, "\n[%s] requests=%d errors=%d shed=%d cancelled=%d", class, cs.Requests, cs.Errors, cs.Shed, cs.Cancelled)
		if class == ClassSolve {
			fmt.Fprintf(&b, " cache-served=%d", cs.CacheServed)
		}
		if class == ClassJobs {
			fmt.Fprintf(&b, " incumbents=%d", cs.Incumbents)
		}
		b.WriteByte('\n')
		if tel := cs.Telemetry; len(tel.Sources) > 0 || tel.Nodes > 0 {
			srcs := make([]string, 0, len(tel.Sources))
			for s := range tel.Sources {
				srcs = append(srcs, s)
			}
			sort.Strings(srcs)
			fmt.Fprintf(&b, "  telemetry: nodes=%d incumbents=%d", tel.Nodes, tel.Incumbents)
			for _, s := range srcs {
				fmt.Fprintf(&b, " %s=%d", s, tel.Sources[s])
			}
			b.WriteByte('\n')
		}
		for _, e := range cs.ErrorSamples {
			fmt.Fprintf(&b, "  error: %s\n", e)
		}
		if cs.Latency.Count > 0 {
			fmt.Fprintf(&b, "  latency ms: p50=%.3f p90=%.3f p99=%.3f mean=%.3f min=%.3f max=%.3f\n",
				cs.Latency.P50MS, cs.Latency.P90MS, cs.Latency.P99MS,
				cs.Latency.MeanMS, cs.Latency.MinMS, cs.Latency.MaxMS)
			for _, line := range strings.Split(strings.TrimRight(cs.Latency.Histogram, "\n"), "\n") {
				fmt.Fprintf(&b, "  %s\n", line)
			}
		}
	}

	if len(r.Tenants) > 0 {
		names := make([]string, 0, len(r.Tenants))
		for n := range r.Tenants {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteByte('\n')
		for _, n := range names {
			ts := r.Tenants[n]
			fmt.Fprintf(&b, "tenant %-12s requests=%d errors=%d shed=%d cancelled=%d cache-served=%d",
				n, ts.Requests, ts.Errors, ts.Shed, ts.Cancelled, ts.CacheServed)
			if ts.Latency.Count > 0 {
				fmt.Fprintf(&b, " p50=%.3fms p99=%.3fms", ts.Latency.P50MS, ts.Latency.P99MS)
			}
			b.WriteByte('\n')
		}
	}

	fmt.Fprintf(&b, "\noracle: validated=%d violations=%d\n", r.Validated, r.ViolationCount)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION %s\n", v)
	}
	props := make([]string, 0, len(r.Properties))
	for p := range r.Properties {
		props = append(props, p)
	}
	sort.Strings(props)
	for _, p := range props {
		fmt.Fprintf(&b, "  property %-12s %d\n", p, r.Properties[p])
	}
	fmt.Fprintf(&b, "cache: fresh-solves=%.0f served=%.0f hit-ratio=%.3f\n",
		r.Cache.FreshSolves, r.Cache.CacheServed, r.Cache.HitRatio)
	return b.String()
}
