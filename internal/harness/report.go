package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"crsharing/internal/stats"
)

// The per-class latency histograms use a fixed log10(ms) domain so the
// histograms of any two runs — different shards, different processes,
// different machines — always share bounds and merge exactly. The range spans
// 10µs to 100s at 0.05 decades per bucket (≈12% relative width), which is
// finer than any latency SLO this harness gates.
const (
	latHistLo      = -2.0 // 10^-2 ms = 10µs
	latHistHi      = 5.0  // 10^5 ms = 100s
	latHistBuckets = 140
)

// newLatencyHistogram returns an empty histogram over the canonical log10(ms)
// latency domain.
func newLatencyHistogram() *stats.Histogram {
	return stats.NewHistogram(latHistLo, latHistHi, latHistBuckets)
}

// LatencySummary is a latency distribution in milliseconds. For a single run
// the quantiles are exact (read off the raw samples); for a merged report
// they are re-estimated from the merged histogram, within one bucket width
// (≈12% relative).
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	MinMS  float64 `json:"min_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	// Hist is the structured sample histogram over the canonical log10(ms)
	// domain — the mergeable representation that lets -merge pool the
	// latency distributions of shard reports exactly.
	Hist *stats.Histogram `json:"hist,omitempty"`
	// Histogram is the human-readable rendering of Hist (empty when there
	// are no samples); it renders under the summary line in text reports.
	Histogram string `json:"histogram,omitempty"`
}

// summarizeLatency folds millisecond samples into a LatencySummary with exact
// quantiles and the canonical mergeable histogram.
func summarizeLatency(ms []float64) LatencySummary {
	s := stats.Summarize(ms)
	out := LatencySummary{
		Count:  s.Count,
		MeanMS: s.Mean,
		MinMS:  s.Min,
		P50MS:  s.P50,
		P90MS:  s.P90,
		P99MS:  s.P99,
		MaxMS:  s.Max,
	}
	if s.Count > 0 {
		h := newLatencyHistogram()
		for _, x := range ms {
			h.Add(logMS(x))
		}
		out.Hist = h
		out.Histogram = renderLatencyHistogram(h)
	}
	return out
}

// logMS maps a millisecond sample into the histogram's log domain;
// non-positive samples (sub-nanosecond clock noise) clamp to the low edge.
func logMS(ms float64) float64 {
	if ms <= 0 {
		return latHistLo
	}
	return math.Log10(ms)
}

// mergeLatency pools two summaries: counts, mean, min and max merge exactly;
// the quantiles are re-estimated from the merged histogram.
func mergeLatency(a, b LatencySummary) (LatencySummary, error) {
	if a.Count == 0 {
		return b, nil
	}
	if b.Count == 0 {
		return a, nil
	}
	na, nb := float64(a.Count), float64(b.Count)
	out := LatencySummary{
		Count:  a.Count + b.Count,
		MeanMS: (na*a.MeanMS + nb*b.MeanMS) / (na + nb),
		MinMS:  math.Min(a.MinMS, b.MinMS),
		MaxMS:  math.Max(a.MaxMS, b.MaxMS),
	}
	if a.Hist == nil || b.Hist == nil {
		return LatencySummary{}, errors.New("harness: latency summary carries no histogram; reports predating the shard format cannot be merged")
	}
	h := a.Hist.Clone()
	if err := h.Merge(b.Hist); err != nil {
		return LatencySummary{}, fmt.Errorf("harness: merging latency histograms: %w", err)
	}
	out.Hist = h
	// Quantile estimates interpolate inside a bucket, so they can poke past
	// the true extremes; the exact pooled min/max are known, so clamp.
	clamp := func(q float64) float64 {
		return math.Min(math.Max(math.Pow(10, h.Quantile(q)), out.MinMS), out.MaxMS)
	}
	out.P50MS = clamp(0.50)
	out.P90MS = clamp(0.90)
	out.P99MS = clamp(0.99)
	out.Histogram = renderLatencyHistogram(h)
	return out, nil
}

// renderLatencyHistogram renders the log-domain histogram as an ASCII bar
// chart with millisecond labels, coalescing the occupied buckets into at most
// 16 display rows.
func renderLatencyHistogram(h *stats.Histogram) string {
	first, last := -1, -1
	for i, c := range h.Buckets {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return ""
	}
	const maxRows = 16
	group := (last - first + maxRows) / maxRows // ceil(span/maxRows)
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	var rows []struct {
		lo, hi float64
		count  int
	}
	maxCount := 1
	for i := first; i <= last; i += group {
		end := i + group
		if end > last+1 {
			end = last + 1
		}
		count := 0
		for j := i; j < end; j++ {
			count += h.Buckets[j]
		}
		rows = append(rows, struct {
			lo, hi float64
			count  int
		}{
			lo:    math.Pow(10, h.Lo+float64(i)*width),
			hi:    math.Pow(10, h.Lo+float64(end)*width),
			count: count,
		})
		if count > maxCount {
			maxCount = count
		}
	}
	var b strings.Builder
	for _, r := range rows {
		bar := strings.Repeat("#", r.count*40/maxCount)
		fmt.Fprintf(&b, "[%9.3f, %9.3f) ms %6d %s\n", r.lo, r.hi, r.count, bar)
	}
	if h.Underflow > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.Underflow)
	}
	if h.Overflow > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.Overflow)
	}
	return b.String()
}

// mergeTelemetry pools two per-class telemetry aggregates.
func mergeTelemetry(a, b TelemetryAgg) TelemetryAgg {
	out := TelemetryAgg{
		Nodes:      a.Nodes + b.Nodes,
		Incumbents: a.Incumbents + b.Incumbents,
		WarmStarts: a.WarmStarts + b.WarmStarts,
	}
	if len(a.Sources)+len(b.Sources) > 0 {
		out.Sources = make(map[string]int, len(a.Sources)+len(b.Sources))
		for s, n := range a.Sources {
			out.Sources[s] += n
		}
		for s, n := range b.Sources {
			out.Sources[s] += n
		}
	}
	return out
}

// mergeClassStats pools two per-class aggregates of the same class.
func mergeClassStats(a, b *ClassStats) (*ClassStats, error) {
	if a == nil {
		return b, nil
	}
	if b == nil {
		return a, nil
	}
	out := &ClassStats{
		Requests:    a.Requests + b.Requests,
		Errors:      a.Errors + b.Errors,
		Shed:        a.Shed + b.Shed,
		Cancelled:   a.Cancelled + b.Cancelled,
		CacheServed: a.CacheServed + b.CacheServed,
		Incumbents:  a.Incumbents + b.Incumbents,
		Telemetry:   mergeTelemetry(a.Telemetry, b.Telemetry),
	}
	out.ErrorSamples = append(out.ErrorSamples, a.ErrorSamples...)
	for _, e := range b.ErrorSamples {
		if len(out.ErrorSamples) >= maxErrorSamples {
			break
		}
		out.ErrorSamples = append(out.ErrorSamples, e)
	}
	var err error
	if out.Latency, err = mergeLatency(a.Latency, b.Latency); err != nil {
		return nil, err
	}
	return out, nil
}

// mergeTenantStats pools two per-tenant aggregates of the same tenant.
func mergeTenantStats(a, b *TenantStats) (*TenantStats, error) {
	if a == nil {
		return b, nil
	}
	if b == nil {
		return a, nil
	}
	out := &TenantStats{
		Requests:    a.Requests + b.Requests,
		Errors:      a.Errors + b.Errors,
		Shed:        a.Shed + b.Shed,
		Cancelled:   a.Cancelled + b.Cancelled,
		CacheServed: a.CacheServed + b.CacheServed,
		Telemetry:   mergeTelemetry(a.Telemetry, b.Telemetry),
	}
	var err error
	if out.Latency, err = mergeLatency(a.Latency, b.Latency); err != nil {
		return nil, err
	}
	return out, nil
}

// MergeReports pools shard reports into one fleet report: counts, oracle
// verdicts, telemetry and cache accounting add exactly; latency quantiles are
// re-estimated from the merged histograms (the canonical log-domain bounds
// make every pair of reports mergeable — a bounds mismatch is a typed error,
// never a silent misbin). Rates add (shards split one offered load),
// durations take the maximum (shards run concurrently), and throughput is
// recomputed from the pooled totals. For in-process shards sharing one
// server, RunFleet overwrites Cache/MetricsDelta with a single whole-fleet
// scrape; for cross-process merges the per-report deltas add, which is
// correct when each driver scraped its own server or disjoint time windows.
func MergeReports(reports ...*Report) (*Report, error) {
	if len(reports) == 0 {
		return nil, errors.New("harness: no reports to merge")
	}
	out := &Report{
		Seed:       reports[0].Seed,
		Mix:        reports[0].Mix,
		Replayed:   reports[0].Replayed,
		Classes:    map[string]*ClassStats{},
		Properties: map[string]int{},
	}
	for _, r := range reports {
		shards := r.Shards
		if shards <= 0 {
			shards = 1
		}
		out.Shards += shards
		out.RatePerSec += r.RatePerSec
		if r.DurationSec > out.DurationSec {
			out.DurationSec = r.DurationSec
		}
		out.Requests += r.Requests
		out.Shed += r.Shed
		out.ServerShed += r.ServerShed
		out.WarmStarted += r.WarmStarted
		out.Validated += r.Validated
		out.ViolationCount += r.ViolationCount
		for _, v := range r.Violations {
			if len(out.Violations) < maxRecordedViolations {
				out.Violations = append(out.Violations, v)
			}
		}
		for p, n := range r.Properties {
			out.Properties[p] += n
		}
		for class, cs := range r.Classes {
			merged, err := mergeClassStats(out.Classes[class], cs)
			if err != nil {
				return nil, fmt.Errorf("class %s: %w", class, err)
			}
			out.Classes[class] = merged
		}
		for tenant, ts := range r.Tenants {
			if out.Tenants == nil {
				out.Tenants = map[string]*TenantStats{}
			}
			merged, err := mergeTenantStats(out.Tenants[tenant], ts)
			if err != nil {
				return nil, fmt.Errorf("tenant %s: %w", tenant, err)
			}
			out.Tenants[tenant] = merged
		}
		out.Cache.FreshSolves += r.Cache.FreshSolves
		out.Cache.CacheServed += r.Cache.CacheServed
		for k, v := range r.MetricsDelta {
			if out.MetricsDelta == nil {
				out.MetricsDelta = MetricsSnapshot{}
			}
			out.MetricsDelta[k] += v
		}
	}
	if total := out.Cache.FreshSolves + out.Cache.CacheServed; total > 0 {
		out.Cache.HitRatio = out.Cache.CacheServed / total
	}
	if out.DurationSec > 0 {
		out.Throughput = float64(out.Requests) / out.DurationSec
	}
	if out.Violations == nil {
		out.Violations = []string{}
	}
	return out, nil
}

// ParseReport decodes a report previously written by Report.JSON, for
// cross-process merging (crload -merge).
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("harness: parsing report: %w", err)
	}
	if r.Classes == nil {
		return nil, errors.New("harness: report carries no per-class stats (not a crload report?)")
	}
	return &r, nil
}

// JSON serialises the report, indented, for the BENCH_load.json artifact.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Text renders the human-readable run summary: one block per class with the
// latency summary and histogram, then the oracle verdict and the cache
// accounting.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crload: seed=%d rate=%g/s duration=%.2fs mix=solve:%d,batch:%d,jobs:%d",
		r.Seed, r.RatePerSec, r.DurationSec, r.Mix.Solve, r.Mix.Batch, r.Mix.Jobs)
	if r.Mix.Online > 0 {
		fmt.Fprintf(&b, ",online:%d", r.Mix.Online)
	}
	if r.Replayed {
		b.WriteString(" (replay)")
	}
	if r.Shards > 1 {
		fmt.Fprintf(&b, " shards=%d", r.Shards)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "requests=%d shed=%d server-shed=%d warm_started=%d throughput=%.1f req/s\n",
		r.Requests, r.Shed, r.ServerShed, r.WarmStarted, r.Throughput)

	classes := make([]string, 0, len(r.Classes))
	for c := range r.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		cs := r.Classes[class]
		fmt.Fprintf(&b, "\n[%s] requests=%d errors=%d shed=%d cancelled=%d", class, cs.Requests, cs.Errors, cs.Shed, cs.Cancelled)
		if class == ClassSolve || class == ClassOnline {
			fmt.Fprintf(&b, " cache-served=%d", cs.CacheServed)
		}
		if class == ClassJobs {
			fmt.Fprintf(&b, " incumbents=%d", cs.Incumbents)
		}
		b.WriteByte('\n')
		if tel := cs.Telemetry; len(tel.Sources) > 0 || tel.Nodes > 0 {
			srcs := make([]string, 0, len(tel.Sources))
			for s := range tel.Sources {
				srcs = append(srcs, s)
			}
			sort.Strings(srcs)
			fmt.Fprintf(&b, "  telemetry: nodes=%d incumbents=%d warm=%d", tel.Nodes, tel.Incumbents, tel.WarmStarts)
			for _, s := range srcs {
				fmt.Fprintf(&b, " %s=%d", s, tel.Sources[s])
			}
			b.WriteByte('\n')
		}
		for _, e := range cs.ErrorSamples {
			fmt.Fprintf(&b, "  error: %s\n", e)
		}
		if cs.Latency.Count > 0 {
			fmt.Fprintf(&b, "  latency ms: p50=%.3f p90=%.3f p99=%.3f mean=%.3f min=%.3f max=%.3f\n",
				cs.Latency.P50MS, cs.Latency.P90MS, cs.Latency.P99MS,
				cs.Latency.MeanMS, cs.Latency.MinMS, cs.Latency.MaxMS)
			for _, line := range strings.Split(strings.TrimRight(cs.Latency.Histogram, "\n"), "\n") {
				fmt.Fprintf(&b, "  %s\n", line)
			}
		}
	}

	if len(r.Tenants) > 0 {
		names := make([]string, 0, len(r.Tenants))
		for n := range r.Tenants {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteByte('\n')
		for _, n := range names {
			ts := r.Tenants[n]
			fmt.Fprintf(&b, "tenant %-12s requests=%d errors=%d shed=%d cancelled=%d cache-served=%d",
				n, ts.Requests, ts.Errors, ts.Shed, ts.Cancelled, ts.CacheServed)
			if ts.Latency.Count > 0 {
				fmt.Fprintf(&b, " p50=%.3fms p99=%.3fms", ts.Latency.P50MS, ts.Latency.P99MS)
			}
			b.WriteByte('\n')
		}
	}

	fmt.Fprintf(&b, "\noracle: validated=%d violations=%d\n", r.Validated, r.ViolationCount)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION %s\n", v)
	}
	props := make([]string, 0, len(r.Properties))
	for p := range r.Properties {
		props = append(props, p)
	}
	sort.Strings(props)
	for _, p := range props {
		fmt.Fprintf(&b, "  property %-12s %d\n", p, r.Properties[p])
	}
	fmt.Fprintf(&b, "cache: fresh-solves=%.0f served=%.0f hit-ratio=%.3f\n",
		r.Cache.FreshSolves, r.Cache.CacheServed, r.Cache.HitRatio)
	return b.String()
}
