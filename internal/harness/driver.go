package harness

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"crsharing/internal/engine"
	"crsharing/internal/jobs"
	"crsharing/internal/service"
)

// Request class names, used as mix keys and report labels.
const (
	ClassSolve = "solve"
	ClassBatch = "batch"
	ClassJobs  = "jobs"
)

// Mix is the weighted traffic composition of a load run. Weights are
// relative; a zero weight disables the class.
type Mix struct {
	Solve int `json:"solve"`
	Batch int `json:"batch"`
	Jobs  int `json:"jobs"`
}

// DefaultMix leans on synchronous solves with a sprinkle of batch and async
// traffic, the shape a cache-fronted service sees.
func DefaultMix() Mix { return Mix{Solve: 8, Batch: 1, Jobs: 1} }

// ParseMix parses a "solve=8,batch=1,jobs=1" specification. Omitted classes
// get weight zero; an empty string yields DefaultMix.
func ParseMix(s string) (Mix, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultMix(), nil
	}
	var m Mix
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Mix{}, fmt.Errorf("harness: mix entry %q is not class=weight", part)
		}
		var w int
		if _, err := fmt.Sscanf(v, "%d", &w); err != nil || w < 0 {
			return Mix{}, fmt.Errorf("harness: mix weight %q must be a non-negative integer", v)
		}
		switch k {
		case ClassSolve:
			m.Solve = w
		case ClassBatch:
			m.Batch = w
		case ClassJobs:
			m.Jobs = w
		default:
			return Mix{}, fmt.Errorf("harness: unknown mix class %q (want solve, batch or jobs)", k)
		}
	}
	if m.total() == 0 {
		return Mix{}, errors.New("harness: mix has no positive weight")
	}
	return m, nil
}

func (m Mix) total() int { return m.Solve + m.Batch + m.Jobs }

// pick draws a class proportionally to the weights.
func (m Mix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.total())
	if n < m.Solve {
		return ClassSolve
	}
	if n < m.Solve+m.Batch {
		return ClassBatch
	}
	return ClassJobs
}

// Config configures a Driver. Zero values of optional fields are replaced by
// the documented defaults in NewDriver.
type Config struct {
	// BaseURL is the server to drive, e.g. "http://127.0.0.1:8080" or an
	// httptest.Server.URL; required.
	BaseURL string
	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client
	// Corpus supplies the instances to replay; required.
	Corpus *Corpus
	// Mix weights the request classes (default DefaultMix).
	Mix Mix
	// Rate is the open-loop arrival rate in requests per second (default
	// 200). The driver fires on this schedule regardless of how fast the
	// server answers; when MaxInflight is reached, arrivals are shed and
	// counted instead of queued, keeping the loop open.
	Rate float64
	// Duration is how long arrivals are generated (default 2s). In-flight
	// requests are drained afterwards.
	Duration time.Duration
	// Solver names the registry entry requests ask for; empty uses the
	// server default.
	Solver string
	// SolveTimeout is the deadline sent with sync and batch solves (default
	// 2s). The default portfolio races exact solvers that may not terminate
	// on hard instances; at the deadline it returns the best member result
	// found so far, so a short deadline trades schedule quality for bounded
	// latency rather than failing.
	SolveTimeout time.Duration
	// JobTimeout is the solve budget sent with async job submissions
	// (default 10s).
	JobTimeout time.Duration
	// RequestTimeout bounds each request including an async job's follow
	// (default 30s).
	RequestTimeout time.Duration
	// BatchSize is the number of instances per batch request (default 6).
	BatchSize int
	// MaxInflight caps concurrently outstanding requests (default 256).
	MaxInflight int
}

// TelemetryAgg folds the per-solve engine telemetry of one request class, so
// load runs double as solver-behaviour regressions: a change that blows up
// the search (nodes), stops finding incumbents, or stops hitting the cache
// shows up in the report delta even when latencies look fine.
type TelemetryAgg struct {
	// Nodes sums the search nodes / configurations of the class's solves
	// (cache replays re-count the original solve's effort — the point is the
	// per-class solver behaviour, not machine load).
	Nodes int64 `json:"nodes"`
	// Incumbents sums the incumbent improvements reported by the solves.
	Incumbents int64 `json:"incumbents"`
	// Sources counts results per cache source ("solve", "cache",
	// "coalesced").
	Sources map[string]int `json:"sources,omitempty"`
}

// add folds one solve's telemetry into the aggregate.
func (a *TelemetryAgg) add(tel *engine.Telemetry, source string) {
	if a.Sources == nil {
		a.Sources = make(map[string]int)
	}
	if source != "" {
		a.Sources[source]++
	}
	if tel != nil {
		a.Nodes += tel.Nodes
		a.Incumbents += tel.Incumbents
	}
}

// ClassStats aggregates one request class of a finished run.
type ClassStats struct {
	// Requests counts completed requests of the class (including failures).
	Requests int `json:"requests"`
	// Errors counts transport failures, non-2xx responses and failed batch
	// results or jobs.
	Errors int `json:"errors"`
	// Cancelled counts batch results marked cancelled and jobs that ended
	// cancelled.
	Cancelled int `json:"cancelled"`
	// CacheServed counts responses answered from the cache or coalesced onto
	// an in-flight solve (sync solves only; batch hits are visible in the
	// run's cache accounting instead).
	CacheServed int `json:"cache_served"`
	// Incumbents counts SSE incumbent events observed (jobs only).
	Incumbents int `json:"incumbents,omitempty"`
	// ErrorSamples holds the first few error messages verbatim.
	ErrorSamples []string `json:"error_samples,omitempty"`
	// Telemetry folds the engine telemetry of the class's solves: nodes
	// explored, incumbents, and results per cache source.
	Telemetry TelemetryAgg `json:"telemetry"`
	// Latency summarises the class's request latencies in milliseconds. For
	// jobs it spans submit to terminal event.
	Latency LatencySummary `json:"latency_ms"`
}

// Report is the outcome of one load run.
type Report struct {
	Seed        int64                  `json:"seed"`
	Mix         Mix                    `json:"mix"`
	RatePerSec  float64                `json:"rate_per_sec"`
	DurationSec float64                `json:"duration_sec"`
	Requests    int                    `json:"requests"`
	Shed        int                    `json:"shed"`
	Throughput  float64                `json:"throughput_rps"`
	Classes     map[string]*ClassStats `json:"classes"`
	// Validated counts responses the invariant oracle checked;
	// ViolationCount is the total number of failures and Violations lists
	// their messages (bounded — past the cap a truncation sentinel stands in
	// for the overflow; empty on a healthy run).
	Validated      int      `json:"validated"`
	ViolationCount int      `json:"violation_count"`
	Violations     []string `json:"violations"`
	// Properties counts validated schedules per structural property.
	Properties map[string]int `json:"properties"`
	// Cache is the run's cache accounting from the /metrics delta.
	Cache CacheAccounting `json:"cache"`
	// MetricsDelta is the raw /metrics movement over the run.
	MetricsDelta MetricsSnapshot `json:"metrics_delta"`
}

// Driver replays corpus traffic against a server. Create one with NewDriver
// and call Run once.
type Driver struct {
	cfg    Config
	oracle *Oracle

	mu        sync.Mutex
	latencies map[string][]float64
	classes   map[string]*ClassStats
	shed      int
}

// NewDriver validates the configuration and applies defaults.
func NewDriver(cfg Config) (*Driver, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("harness: Config.BaseURL is required")
	}
	if cfg.Corpus == nil || cfg.Corpus.Size() == 0 {
		return nil, errors.New("harness: Config.Corpus is required and must be non-empty")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 200
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.SolveTimeout <= 0 {
		cfg.SolveTimeout = 2 * time.Second
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 10 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 6
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	return &Driver{
		cfg:       cfg,
		oracle:    NewOracle(),
		latencies: make(map[string][]float64),
		classes: map[string]*ClassStats{
			ClassSolve: {},
			ClassBatch: {},
			ClassJobs:  {},
		},
	}, nil
}

// Oracle exposes the driver's invariant oracle (for callers that want to
// inspect violations while a run is in flight).
func (d *Driver) Oracle() *Oracle { return d.oracle }

// Run generates arrivals for the configured duration, drains the in-flight
// requests, scrapes the /metrics movement and returns the report. The
// context cancels the run early; requests already in flight still finish
// within their own timeouts.
func (d *Driver) Run(ctx context.Context) (*Report, error) {
	before, err := ScrapeMetrics(d.cfg.Client, d.cfg.BaseURL+"/metrics")
	if err != nil {
		return nil, err
	}

	items := d.cfg.Corpus.Items()
	rng := rand.New(rand.NewSource(d.cfg.Corpus.Seed))
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

	interval := time.Duration(float64(time.Second) / d.cfg.Rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(d.cfg.Duration)
	defer deadline.Stop()

	var wg sync.WaitGroup
	inflight := make(chan struct{}, d.cfg.MaxInflight)
	start := time.Now()
	next := 0

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-ticker.C:
			class := d.cfg.Mix.pick(rng)
			item := items[next%len(items)]
			at := next
			next++
			select {
			case inflight <- struct{}{}:
			default:
				d.mu.Lock()
				d.shed++
				d.mu.Unlock()
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-inflight }()
				rctx, cancel := context.WithTimeout(ctx, d.cfg.RequestTimeout)
				defer cancel()
				began := time.Now()
				switch class {
				case ClassSolve:
					d.doSolve(rctx, item)
				case ClassBatch:
					d.doBatch(rctx, items, at)
				case ClassJobs:
					d.doJob(rctx, item)
				}
				d.record(class, time.Since(began))
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := ScrapeMetrics(d.cfg.Client, d.cfg.BaseURL+"/metrics")
	if err != nil {
		return nil, err
	}
	return d.report(elapsed, before.Delta(after)), nil
}

// record stores the class latency and bumps the request count.
func (d *Driver) record(class string, elapsed time.Duration) {
	ms := float64(elapsed) / float64(time.Millisecond)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.latencies[class] = append(d.latencies[class], ms)
	d.classes[class].Requests++
}

// maxErrorSamples bounds the per-class error strings kept verbatim.
const maxErrorSamples = 5

// countTelemetry folds one solve's telemetry into its class aggregate.
func (d *Driver) countTelemetry(class string, tel *engine.Telemetry, source string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.classes[class].Telemetry.add(tel, source)
}

func (d *Driver) countError(class string, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cs := d.classes[class]
	cs.Errors++
	if err != nil && len(cs.ErrorSamples) < maxErrorSamples {
		cs.ErrorSamples = append(cs.ErrorSamples, err.Error())
	}
}

// post sends a JSON body and decodes a JSON response into out. Non-2xx
// responses are returned as errors carrying the server's message.
func (d *Driver) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.cfg.BaseURL+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var apiErr service.ErrorResponse
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, apiErr.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return json.Unmarshal(data, out)
}

// doSolve fires one synchronous solve and revalidates the returned schedule.
func (d *Driver) doSolve(ctx context.Context, item Item) {
	var resp service.SolveResponse
	err := d.post(ctx, "/v1/solve", service.SolveRequest{
		Solver:          d.cfg.Solver,
		Instance:        item.Inst,
		Timeout:         d.cfg.SolveTimeout.String(),
		IncludeSchedule: true,
	}, &resp)
	if err != nil {
		d.countError(ClassSolve, err)
		return
	}
	if resp.Source != "solve" {
		d.mu.Lock()
		d.classes[ClassSolve].CacheServed++
		d.mu.Unlock()
	}
	d.countTelemetry(ClassSolve, resp.Telemetry, resp.Source)
	label := fmt.Sprintf("solve %s/%s", item.Family, item.Inst.Fingerprint().Short())
	if err := d.oracle.CheckSchedule(label, item.Inst, resp.Schedule, resp.Makespan, resp.Wasted); err != nil {
		d.countError(ClassSolve, err)
	}
}

// doBatch fires one batch solve over a window of the corpus and sanity-checks
// every per-instance result (batch responses carry no schedules, so the
// oracle can only hold makespans against the lower bounds).
func (d *Driver) doBatch(ctx context.Context, items []Item, at int) {
	batch := make([]Item, 0, d.cfg.BatchSize)
	for i := 0; i < d.cfg.BatchSize; i++ {
		batch = append(batch, items[(at+i)%len(items)])
	}
	req := service.BatchRequest{Solver: d.cfg.Solver, Timeout: d.cfg.SolveTimeout.String()}
	for _, it := range batch {
		req.Instances = append(req.Instances, it.Inst)
	}
	var resp service.BatchResponse
	if err := d.post(ctx, "/v1/batch-solve", req, &resp); err != nil {
		d.countError(ClassBatch, err)
		return
	}
	for _, res := range resp.Results {
		switch {
		case res.Cancelled:
			d.mu.Lock()
			d.classes[ClassBatch].Cancelled++
			d.mu.Unlock()
		case res.Error != "":
			d.countError(ClassBatch, errors.New(res.Error))
		case res.Index < 0 || res.Index >= len(batch):
			d.countError(ClassBatch, fmt.Errorf("batch response index %d outside [0,%d)", res.Index, len(batch)))
		default:
			it := batch[res.Index]
			d.countTelemetry(ClassBatch, res.Telemetry, res.Source)
			label := fmt.Sprintf("batch %s/%s", it.Family, it.Inst.Fingerprint().Short())
			if err := d.oracle.CheckMakespan(label, it.Inst, res.Makespan); err != nil {
				d.countError(ClassBatch, err)
			}
		}
	}
}

// doJob submits an asynchronous job, follows its SSE stream to the terminal
// state and revalidates the final schedule.
func (d *Driver) doJob(ctx context.Context, item Item) {
	var snap jobs.Snapshot
	req := service.JobRequest{Solver: d.cfg.Solver, Instance: item.Inst, Timeout: d.cfg.JobTimeout.String()}
	if err := d.post(ctx, "/v1/jobs", req, &snap); err != nil {
		d.countError(ClassJobs, err)
		return
	}
	incumbents, err := d.followEvents(ctx, snap.ID)
	d.mu.Lock()
	d.classes[ClassJobs].Incumbents += incumbents
	d.mu.Unlock()
	if err != nil {
		d.countError(ClassJobs, err)
		return
	}
	final, err := d.getJob(ctx, snap.ID)
	if err != nil {
		d.countError(ClassJobs, err)
		return
	}
	switch final.State {
	case jobs.StateDone:
		if final.Result != nil {
			d.countTelemetry(ClassJobs, final.Result.Telemetry, final.Result.Source)
		}
		label := fmt.Sprintf("job %s %s/%s", final.ID, item.Family, item.Inst.Fingerprint().Short())
		if final.Result == nil {
			err := d.oracle.CheckSchedule(label, item.Inst, nil, -1, -1)
			d.countError(ClassJobs, err)
			return
		}
		if err := d.oracle.CheckSchedule(label, item.Inst, final.Result.Schedule, final.Result.Makespan, final.Result.Wasted); err != nil {
			d.countError(ClassJobs, err)
		}
	case jobs.StateCancelled:
		d.mu.Lock()
		d.classes[ClassJobs].Cancelled++
		d.mu.Unlock()
	default:
		d.countError(ClassJobs, fmt.Errorf("job %s ended %s: %s", final.ID, final.State, final.Error))
	}
}

// followEvents reads the job's SSE stream until the server closes it at a
// terminal state (or the context expires) and returns the number of
// incumbent events seen.
func (d *Driver) followEvents(ctx context.Context, id string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.cfg.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return 0, err
	}
	resp, err := d.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("events: %s", resp.Status)
	}
	incumbents := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "event: incumbent" {
			incumbents++
		}
	}
	// EOF means the stream reached a terminal state; any other error is the
	// context expiring mid-stream.
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return incumbents, err
	}
	return incumbents, nil
}

func (d *Driver) getJob(ctx context.Context, id string) (*jobs.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.cfg.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := d.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("job %s: %s", id, resp.Status)
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// report assembles the final Report.
func (d *Driver) report(elapsed time.Duration, delta MetricsSnapshot) *Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	rep := &Report{
		Seed:           d.cfg.Corpus.Seed,
		Mix:            d.cfg.Mix,
		RatePerSec:     d.cfg.Rate,
		DurationSec:    elapsed.Seconds(),
		Shed:           d.shed,
		Classes:        make(map[string]*ClassStats, len(d.classes)),
		Validated:      d.oracle.Validated(),
		ViolationCount: d.oracle.ViolationCount(),
		Violations:     append([]string{}, d.oracle.Violations()...),
		Properties:     d.oracle.Properties(),
		Cache:          delta.Cache(),
		MetricsDelta:   delta,
	}
	for class, cs := range d.classes {
		c := *cs
		c.Latency = summarizeLatency(d.latencies[class])
		rep.Classes[class] = &c
		rep.Requests += c.Requests
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	}
	return rep
}
