package harness

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"crsharing/internal/engine"
	"crsharing/internal/gen"
	"crsharing/internal/jobs"
	"crsharing/internal/service"
)

// Request class names, used as mix keys and report labels.
const (
	ClassSolve = "solve"
	ClassBatch = "batch"
	ClassJobs  = "jobs"
	// ClassOnline is the incremental-solving workload: instead of replaying
	// corpus instances verbatim, each arrival is one seeded mutation (swap,
	// drop, append, nudge — gen.Mutate) of the previous arrival's instance, so
	// the stream is a chain of near-duplicates the way an online scheduler
	// sees them. It exercises the warm-start path end to end: the exact
	// fingerprint misses, the neighbor index adapts the predecessor's cached
	// schedule into a hint, and the report accounts how many solves it seeded.
	ClassOnline = "online"
)

// onlineChainLen is how many mutation steps an online chain walks before
// restarting from a fresh corpus base instance.
const onlineChainLen = 12

// Mix is the weighted traffic composition of a load run. Weights are
// relative; a zero weight disables the class.
type Mix struct {
	Solve  int `json:"solve"`
	Batch  int `json:"batch"`
	Jobs   int `json:"jobs"`
	Online int `json:"online,omitempty"`
}

// DefaultMix leans on synchronous solves with a sprinkle of batch and async
// traffic, the shape a cache-fronted service sees.
func DefaultMix() Mix { return Mix{Solve: 8, Batch: 1, Jobs: 1} }

// ParseMix parses a "solve=8,batch=1,jobs=1" specification. Omitted classes
// get weight zero; an empty string yields DefaultMix.
func ParseMix(s string) (Mix, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultMix(), nil
	}
	var m Mix
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Mix{}, fmt.Errorf("harness: mix entry %q is not class=weight", part)
		}
		var w int
		if _, err := fmt.Sscanf(v, "%d", &w); err != nil || w < 0 {
			return Mix{}, fmt.Errorf("harness: mix weight %q must be a non-negative integer", v)
		}
		switch k {
		case ClassSolve:
			m.Solve = w
		case ClassBatch:
			m.Batch = w
		case ClassJobs:
			m.Jobs = w
		case ClassOnline:
			m.Online = w
		default:
			return Mix{}, fmt.Errorf("harness: unknown mix class %q (want solve, batch, jobs or online)", k)
		}
	}
	if m.total() == 0 {
		return Mix{}, errors.New("harness: mix has no positive weight")
	}
	return m, nil
}

func (m Mix) total() int { return m.Solve + m.Batch + m.Jobs + m.Online }

// TenantLoad is one tenant's slice of a multi-tenant load run: the tenant
// name sent in the X-Tenant header, the admission weight to configure on an
// in-process server, and the tenant's own open-loop arrival rate.
type TenantLoad struct {
	// Name is the tenant identity sent with every request.
	Name string `json:"name"`
	// Weight is the engine-side fair-share weight (only used when the caller
	// also builds the server, e.g. crload's in-process stack); min 1.
	Weight int64 `json:"weight"`
	// Rate is the tenant's arrival rate in requests per second.
	Rate float64 `json:"rate_per_sec"`
}

// ParseTenantLoads parses a "name:weight:rps" comma-separated multi-tenant
// traffic spec, e.g. "gold:3:150,free:1:50". Weight and rps may be omitted
// (weight defaults to 1, rps to the driver's global -rate).
func ParseTenantLoads(spec string) ([]TenantLoad, error) {
	var out []TenantLoad
	seen := make(map[string]bool)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) > 3 {
			return nil, fmt.Errorf("harness: tenant spec %q: want name[:weight[:rps]]", entry)
		}
		tl := TenantLoad{Name: strings.TrimSpace(parts[0]), Weight: 1}
		if tl.Name == "" {
			return nil, fmt.Errorf("harness: tenant spec %q: empty name", entry)
		}
		if seen[tl.Name] {
			return nil, fmt.Errorf("harness: tenant spec: duplicate tenant %q", tl.Name)
		}
		seen[tl.Name] = true
		if len(parts) > 1 && strings.TrimSpace(parts[1]) != "" {
			w, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("harness: tenant spec %q: weight must be a positive integer", entry)
			}
			tl.Weight = w
		}
		if len(parts) > 2 && strings.TrimSpace(parts[2]) != "" {
			r, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil || r <= 0 {
				return nil, fmt.Errorf("harness: tenant spec %q: rps must be a positive number", entry)
			}
			tl.Rate = r
		}
		out = append(out, tl)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("harness: tenant spec %q: no tenants", spec)
	}
	return out, nil
}

// pick draws a class proportionally to the weights.
func (m Mix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.total())
	if n < m.Solve {
		return ClassSolve
	}
	if n < m.Solve+m.Batch {
		return ClassBatch
	}
	if n < m.Solve+m.Batch+m.Jobs {
		return ClassJobs
	}
	return ClassOnline
}

// Config configures a Driver. Zero values of optional fields are replaced by
// the documented defaults in NewDriver.
type Config struct {
	// BaseURL is the server to drive, e.g. "http://127.0.0.1:8080" or an
	// httptest.Server.URL; required.
	BaseURL string
	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client
	// Corpus supplies the instances to replay; required.
	Corpus *Corpus
	// Mix weights the request classes (default DefaultMix).
	Mix Mix
	// Rate is the open-loop arrival rate in requests per second (default
	// 200). The driver fires on this schedule regardless of how fast the
	// server answers; when MaxInflight is reached, arrivals are shed and
	// counted instead of queued, keeping the loop open.
	Rate float64
	// Duration is how long arrivals are generated (default 2s). In-flight
	// requests are drained afterwards.
	Duration time.Duration
	// Solver names the registry entry requests ask for; empty uses the
	// server default.
	Solver string
	// SolveTimeout is the deadline sent with sync and batch solves (default
	// 2s). The default portfolio races exact solvers that may not terminate
	// on hard instances; at the deadline it returns the best member result
	// found so far, so a short deadline trades schedule quality for bounded
	// latency rather than failing.
	SolveTimeout time.Duration
	// JobTimeout is the solve budget sent with async job submissions
	// (default 10s).
	JobTimeout time.Duration
	// RequestTimeout bounds each request including an async job's follow
	// (default 30s).
	RequestTimeout time.Duration
	// BatchSize is the number of instances per batch request (default 6).
	BatchSize int
	// MaxInflight caps concurrently outstanding requests (default 256).
	MaxInflight int
	// Tenants, when non-empty, turns the run multi-tenant: one arrival loop
	// per tenant at its own Rate, every request carrying the tenant's name in
	// the X-Tenant header, and the report gaining per-tenant accounting. When
	// empty the run is anonymous at the global Rate.
	Tenants []TenantLoad
	// Recorder, when set, captures every arrival (offset, class, tenant, full
	// instance payload, outcome) so the run can be re-issued bit-exactly with
	// Replay.
	Recorder *Recorder
	// Replay, when set, replaces the open-loop arrival generator: the
	// recording's entries are re-issued at their recorded offsets with their
	// recorded class, tenant and instances, so two runs are comparable
	// request-for-request. Mix, Rate, Duration and Tenants are ignored;
	// Corpus is optional.
	Replay *Recording
	// ReplaySpeed compresses (>1) or stretches (<1) the recorded arrival
	// schedule during Replay; 0 means 1 (as recorded). The request sequence
	// is unchanged either way.
	ReplaySpeed float64
	// SkipMetrics skips the /metrics scrape around the run (Cache and
	// MetricsDelta stay zero). RunFleet sets it on shard drivers so the
	// shared server's movement is scraped once, not once per shard.
	SkipMetrics bool
	// MetricsURLs overrides where the run's metrics movement is scraped:
	// each URL is scraped before and after the run and the deltas are summed.
	// A fleet run driving a crrouter sets this to every backend's /metrics
	// (plus the router's own), so the report's cache accounting spans the
	// whole fleet instead of one process. Empty scrapes BaseURL+"/metrics".
	MetricsURLs []string
}

// TelemetryAgg folds the per-solve engine telemetry of one request class, so
// load runs double as solver-behaviour regressions: a change that blows up
// the search (nodes), stops finding incumbents, or stops hitting the cache
// shows up in the report delta even when latencies look fine.
type TelemetryAgg struct {
	// Nodes sums the search nodes / configurations of the class's solves
	// (cache replays re-count the original solve's effort — the point is the
	// per-class solver behaviour, not machine load).
	Nodes int64 `json:"nodes"`
	// Incumbents sums the incumbent improvements reported by the solves.
	Incumbents int64 `json:"incumbents"`
	// WarmStarts counts fresh solves that accepted a warm-start hint
	// (telemetry warm_start non-empty); cache replays never count.
	WarmStarts int `json:"warm_starts,omitempty"`
	// Sources counts results per cache source ("solve", "cache",
	// "coalesced").
	Sources map[string]int `json:"sources,omitempty"`
}

// add folds one solve's telemetry into the aggregate.
func (a *TelemetryAgg) add(tel *engine.Telemetry, source string) {
	if a.Sources == nil {
		a.Sources = make(map[string]int)
	}
	if source != "" {
		a.Sources[source]++
	}
	if tel != nil {
		a.Nodes += tel.Nodes
		a.Incumbents += tel.Incumbents
		if tel.WarmStart != "" {
			a.WarmStarts++
		}
	}
}

// ClassStats aggregates one request class of a finished run.
type ClassStats struct {
	// Requests counts completed requests of the class (including failures).
	Requests int `json:"requests"`
	// Errors counts transport failures, non-2xx responses and failed batch
	// results or jobs — excluding quota sheds, which Shed counts.
	Errors int `json:"errors"`
	// Shed counts responses the server refused over a tenant quota (HTTP 429
	// with Retry-After, or a per-result shed flag in a batch response). Sheds
	// are expected behaviour under overload, so they are counted apart from
	// Errors.
	Shed int `json:"shed"`
	// Cancelled counts batch results marked cancelled and jobs that ended
	// cancelled.
	Cancelled int `json:"cancelled"`
	// CacheServed counts responses answered from the cache or coalesced onto
	// an in-flight solve (sync solves only; batch hits are visible in the
	// run's cache accounting instead).
	CacheServed int `json:"cache_served"`
	// Incumbents counts SSE incumbent events observed (jobs only).
	Incumbents int `json:"incumbents,omitempty"`
	// ErrorSamples holds the first few error messages verbatim.
	ErrorSamples []string `json:"error_samples,omitempty"`
	// Telemetry folds the engine telemetry of the class's solves: nodes
	// explored, incumbents, and results per cache source.
	Telemetry TelemetryAgg `json:"telemetry"`
	// Latency summarises the class's request latencies in milliseconds. For
	// jobs it spans submit to terminal event.
	Latency LatencySummary `json:"latency_ms"`
}

// TenantStats aggregates one tenant's slice of a multi-tenant run, across
// all request classes.
type TenantStats struct {
	// Requests counts the tenant's completed requests (including failures).
	Requests int `json:"requests"`
	// Errors counts the tenant's failures, excluding quota sheds.
	Errors int `json:"errors"`
	// Shed counts the tenant's requests the server refused over quota.
	Shed int `json:"shed"`
	// Cancelled counts the tenant's cancelled batch results and jobs.
	Cancelled int `json:"cancelled"`
	// CacheServed counts the tenant's responses answered without a fresh solve.
	CacheServed int `json:"cache_served"`
	// Telemetry folds the engine telemetry of the tenant's solves.
	Telemetry TelemetryAgg `json:"telemetry"`
	// Latency summarises the tenant's request latencies in milliseconds.
	Latency LatencySummary `json:"latency_ms"`
}

// Report is the outcome of one load run (or, after MergeReports, of several
// shard runs pooled into one).
type Report struct {
	Seed        int64   `json:"seed"`
	Mix         Mix     `json:"mix"`
	RatePerSec  float64 `json:"rate_per_sec"`
	DurationSec float64 `json:"duration_sec"`
	// Replayed marks a run that re-issued a recording instead of generating
	// open-loop arrivals.
	Replayed bool `json:"replayed,omitempty"`
	// Shards is the number of driver shards pooled into this report (0 or 1
	// for a plain single-driver run).
	Shards     int     `json:"shards,omitempty"`
	Requests   int     `json:"requests"`
	Shed       int     `json:"shed"`
	ServerShed int     `json:"server_shed"`
	Throughput float64 `json:"throughput_rps"`
	// WarmStarted sums the warm-started fresh solves across all classes — the
	// headline number of the incremental-solving layer.
	WarmStarted int                    `json:"warm_started"`
	Classes     map[string]*ClassStats `json:"classes"`
	// Tenants holds per-tenant accounting for multi-tenant runs (empty for
	// anonymous runs). Shed above counts arrivals the driver itself dropped
	// at its MaxInflight cap; ServerShed counts quota refusals by the server.
	Tenants map[string]*TenantStats `json:"tenants,omitempty"`
	// Validated counts responses the invariant oracle checked;
	// ViolationCount is the total number of failures and Violations lists
	// their messages (bounded — past the cap a truncation sentinel stands in
	// for the overflow; empty on a healthy run).
	Validated      int      `json:"validated"`
	ViolationCount int      `json:"violation_count"`
	Violations     []string `json:"violations"`
	// Properties counts validated schedules per structural property.
	Properties map[string]int `json:"properties"`
	// Cache is the run's cache accounting from the /metrics delta.
	Cache CacheAccounting `json:"cache"`
	// MetricsDelta is the raw /metrics movement over the run.
	MetricsDelta MetricsSnapshot `json:"metrics_delta"`
}

// Driver replays corpus traffic against a server. Create one with NewDriver
// and call Run once.
type Driver struct {
	cfg    Config
	oracle *Oracle

	mu              sync.Mutex
	latencies       map[string][]float64
	classes         map[string]*ClassStats
	tenantLatencies map[string][]float64
	tenants         map[string]*TenantStats
	shed            int
	serverShed      int
}

// NewDriver validates the configuration and applies defaults.
func NewDriver(cfg Config) (*Driver, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("harness: Config.BaseURL is required")
	}
	if cfg.Replay == nil && (cfg.Corpus == nil || cfg.Corpus.Size() == 0) {
		return nil, errors.New("harness: Config.Corpus is required and must be non-empty")
	}
	if cfg.Replay != nil && len(cfg.Replay.Entries) == 0 {
		return nil, errors.New("harness: Config.Replay has no entries")
	}
	if cfg.ReplaySpeed < 0 {
		return nil, errors.New("harness: Config.ReplaySpeed must be non-negative")
	}
	if cfg.ReplaySpeed == 0 {
		cfg.ReplaySpeed = 1
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 200
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.SolveTimeout <= 0 {
		cfg.SolveTimeout = 2 * time.Second
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 10 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 6
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	d := &Driver{
		cfg:             cfg,
		oracle:          NewOracle(),
		latencies:       make(map[string][]float64),
		tenantLatencies: make(map[string][]float64),
		tenants:         make(map[string]*TenantStats),
		classes: map[string]*ClassStats{
			ClassSolve:  {},
			ClassBatch:  {},
			ClassJobs:   {},
			ClassOnline: {},
		},
	}
	for _, tl := range cfg.Tenants {
		if tl.Name == "" {
			return nil, errors.New("harness: Config.Tenants entries need a name")
		}
		if _, dup := d.tenants[tl.Name]; dup {
			return nil, fmt.Errorf("harness: duplicate tenant %q", tl.Name)
		}
		d.tenants[tl.Name] = &TenantStats{}
	}
	if cfg.Replay != nil {
		// Replay re-issues whatever tenants the recording carries.
		for _, e := range cfg.Replay.Entries {
			if e.Tenant != "" && d.tenants[e.Tenant] == nil {
				d.tenants[e.Tenant] = &TenantStats{}
			}
		}
	}
	return d, nil
}

// Oracle exposes the driver's invariant oracle (for callers that want to
// inspect violations while a run is in flight).
func (d *Driver) Oracle() *Oracle { return d.oracle }

// Run generates arrivals — the configured open-loop mix, or a recorded
// schedule when Replay is set — drains the in-flight requests, scrapes the
// /metrics movement and returns the report. The context cancels the run
// early; requests already in flight still finish within their own timeouts.
func (d *Driver) Run(ctx context.Context) (*Report, error) {
	var before MetricsSnapshot
	if !d.cfg.SkipMetrics {
		var err error
		before, err = scrapeAll(d.cfg.Client, d.metricsURLs())
		if err != nil {
			return nil, err
		}
	}

	var wg sync.WaitGroup // in-flight requests
	inflight := make(chan struct{}, d.cfg.MaxInflight)
	start := time.Now()
	if d.cfg.Replay != nil {
		d.replayArrivals(ctx, start, inflight, &wg)
	} else {
		d.liveArrivals(ctx, start, inflight, &wg)
	}
	wg.Wait()
	elapsed := time.Since(start)

	delta := MetricsSnapshot{}
	if !d.cfg.SkipMetrics {
		after, err := scrapeAll(d.cfg.Client, d.metricsURLs())
		if err != nil {
			return nil, err
		}
		delta = before.Delta(after)
	}
	return d.report(elapsed, delta), nil
}

// metricsURLs resolves where this run's metrics movement is scraped.
func (d *Driver) metricsURLs() []string {
	if len(d.cfg.MetricsURLs) > 0 {
		return d.cfg.MetricsURLs
	}
	return []string{d.cfg.BaseURL + "/metrics"}
}

// liveArrivals runs the open-loop generator: one arrival loop per tenant at
// its own rate for the configured duration.
func (d *Driver) liveArrivals(ctx context.Context, start time.Time, inflight chan struct{}, wg *sync.WaitGroup) {
	items := d.cfg.Corpus.Items()
	rng := rand.New(rand.NewSource(d.cfg.Corpus.Seed))
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

	// Anonymous runs are a single unnamed tenant at the global rate; the
	// per-tenant loops below degenerate to a single arrival loop.
	loads := d.cfg.Tenants
	if len(loads) == 0 {
		loads = []TenantLoad{{Rate: d.cfg.Rate}}
	}

	// stop ends arrival generation at the deadline; requests already in
	// flight still finish within their own timeouts.
	stop := make(chan struct{})
	stopper := time.AfterFunc(d.cfg.Duration, func() { close(stop) })
	defer stopper.Stop()

	var loops sync.WaitGroup // arrival loops
	for ti, tl := range loads {
		loops.Add(1)
		go func(ti int, tl TenantLoad) {
			defer loops.Done()
			// Each tenant draws classes from its own deterministic stream and
			// walks the corpus from its own offset, so tenants overlap on
			// instances (exercising the shared cache) without being identical.
			rng := rand.New(rand.NewSource(d.cfg.Corpus.Seed + int64(ti)*7919))
			rate := tl.Rate
			if rate <= 0 {
				rate = d.cfg.Rate
			}
			interval := time.Duration(float64(time.Second) / rate)
			if interval <= 0 {
				interval = time.Millisecond
			}
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			next := ti * 7
			// Online-class chain state: the current instance, how many
			// mutation steps it is from its base, and the base's family.
			var online Item
			onlineStep := onlineChainLen // start a fresh chain on first draw
			for {
				select {
				case <-ctx.Done():
					return
				case <-stop:
					return
				case <-ticker.C:
					class := d.cfg.Mix.pick(rng)
					at := next
					next++
					var req []Item
					switch class {
					case ClassBatch:
						req = make([]Item, 0, d.cfg.BatchSize)
						for i := 0; i < d.cfg.BatchSize; i++ {
							req = append(req, items[(at+i)%len(items)])
						}
					case ClassOnline:
						// The chain's first arrival replays the base itself
						// (warming the cache); each later arrival is one
						// mutation of its predecessor, so consecutive
						// instances are fingerprint-distinct but shape-near.
						if onlineStep >= onlineChainLen {
							online = items[at%len(items)]
							onlineStep = 0
						} else {
							online.Inst = gen.Mutate(rng, online.Inst, gen.Mutations[onlineStep%len(gen.Mutations)])
							onlineStep++
						}
						req = []Item{online}
					default:
						req = []Item{items[at%len(items)]}
					}
					d.arrive(ctx, start, inflight, wg, class, tl.Name, req)
				}
			}
		}(ti, tl)
	}
	loops.Wait()
}

// replayArrivals re-issues a recording: every entry at its recorded offset
// (compressed by ReplaySpeed), with its recorded class, tenant and instances.
func (d *Driver) replayArrivals(ctx context.Context, start time.Time, inflight chan struct{}, wg *sync.WaitGroup) {
	for i := range d.cfg.Replay.Entries {
		e := &d.cfg.Replay.Entries[i]
		due := time.Duration(float64(e.OffsetNS) / d.cfg.ReplaySpeed)
		if wait := due - time.Since(start); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				return
			case <-timer.C:
			}
		}
		if ctx.Err() != nil {
			return
		}
		d.arrive(ctx, start, inflight, wg, e.Class, e.Tenant, e.items())
	}
}

// arrive admits one arrival: it records it, sheds it when the inflight cap is
// full (keeping the loop open), and otherwise issues the request on its own
// goroutine.
func (d *Driver) arrive(ctx context.Context, start time.Time, inflight chan struct{}, wg *sync.WaitGroup, class, tenant string, req []Item) {
	seq := -1
	if d.cfg.Recorder != nil {
		seq = d.cfg.Recorder.arrive(time.Since(start), class, tenant, req)
	}
	select {
	case inflight <- struct{}{}:
	default:
		d.mu.Lock()
		d.shed++
		d.mu.Unlock()
		if d.cfg.Recorder != nil {
			d.cfg.Recorder.finish(seq, OutcomeDriverShed)
		}
		return
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { <-inflight }()
		rctx, cancel := context.WithTimeout(ctx, d.cfg.RequestTimeout)
		defer cancel()
		began := time.Now()
		var outcome string
		switch class {
		case ClassSolve, ClassOnline:
			outcome = d.doSolve(rctx, class, tenant, req[0])
		case ClassBatch:
			outcome = d.doBatch(rctx, tenant, req)
		case ClassJobs:
			outcome = d.doJob(rctx, tenant, req[0])
		}
		d.record(class, tenant, time.Since(began))
		if d.cfg.Recorder != nil {
			d.cfg.Recorder.finish(seq, outcome)
		}
	}()
}

// record stores the class (and tenant) latency and bumps the request counts.
func (d *Driver) record(class, tenant string, elapsed time.Duration) {
	ms := float64(elapsed) / float64(time.Millisecond)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.latencies[class] = append(d.latencies[class], ms)
	d.classes[class].Requests++
	if ts := d.tenants[tenant]; ts != nil {
		d.tenantLatencies[tenant] = append(d.tenantLatencies[tenant], ms)
		ts.Requests++
	}
}

// maxErrorSamples bounds the per-class error strings kept verbatim.
const maxErrorSamples = 5

// countTelemetry folds one solve's telemetry into its class and tenant
// aggregates.
func (d *Driver) countTelemetry(class, tenant string, tel *engine.Telemetry, source string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.classes[class].Telemetry.add(tel, source)
	if ts := d.tenants[tenant]; ts != nil {
		ts.Telemetry.add(tel, source)
	}
}

// countError books a failure against the class and tenant. Quota sheds (429
// responses) are counted apart from errors: they are the admission policy
// working, not the server misbehaving.
func (d *Driver) countError(class, tenant string, err error) {
	if isShed(err) {
		d.countShed(class, tenant)
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cs := d.classes[class]
	cs.Errors++
	if err != nil && len(cs.ErrorSamples) < maxErrorSamples {
		cs.ErrorSamples = append(cs.ErrorSamples, err.Error())
	}
	if ts := d.tenants[tenant]; ts != nil {
		ts.Errors++
	}
}

func (d *Driver) countShed(class, tenant string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.serverShed++
	d.classes[class].Shed++
	if ts := d.tenants[tenant]; ts != nil {
		ts.Shed++
	}
}

func (d *Driver) countCancelled(class, tenant string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.classes[class].Cancelled++
	if ts := d.tenants[tenant]; ts != nil {
		ts.Cancelled++
	}
}

// httpError is a non-2xx response, typed so callers can tell quota sheds
// (429) apart from genuine failures.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// isShed reports whether the error is a server-side quota refusal (429).
func isShed(err error) bool {
	var he *httpError
	return errors.As(err, &he) && he.status == http.StatusTooManyRequests
}

// post sends a JSON body (under the tenant's identity, when set) and decodes
// a JSON response into out. Non-2xx responses are returned as *httpError
// carrying the status and the server's message.
func (d *Driver) post(ctx context.Context, tenant, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.cfg.BaseURL+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(service.TenantHeader, tenant)
	}
	resp, err := d.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var apiErr service.ErrorResponse
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return &httpError{status: resp.StatusCode, msg: fmt.Sprintf("%s: %s", resp.Status, apiErr.Error)}
		}
		return &httpError{status: resp.StatusCode, msg: fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(data)))}
	}
	return json.Unmarshal(data, out)
}

// outcomeOf classifies a request-level error for the recording.
func outcomeOf(err error) string {
	if err == nil {
		return OutcomeOK
	}
	if isShed(err) {
		return OutcomeShed
	}
	return OutcomeError
}

// doSolve fires one synchronous solve, revalidates the returned schedule and
// returns the request outcome. It serves both the solve class and the online
// class (whose arrivals are mutation-chain instances): class only decides
// which report bucket the outcome lands in.
func (d *Driver) doSolve(ctx context.Context, class, tenant string, item Item) string {
	var resp service.SolveResponse
	err := d.post(ctx, tenant, "/v1/solve", service.SolveRequest{
		Solver:          d.cfg.Solver,
		Instance:        item.Inst,
		Timeout:         d.cfg.SolveTimeout.String(),
		IncludeSchedule: true,
	}, &resp)
	if err != nil {
		d.countError(class, tenant, err)
		return outcomeOf(err)
	}
	if resp.Source != "solve" {
		d.mu.Lock()
		d.classes[class].CacheServed++
		if ts := d.tenants[tenant]; ts != nil {
			ts.CacheServed++
		}
		d.mu.Unlock()
	}
	d.countTelemetry(class, tenant, resp.Telemetry, resp.Source)
	label := fmt.Sprintf("%s %s/%s", class, item.Family, item.Inst.Fingerprint().Short())
	if err := d.oracle.CheckSchedule(label, item.Inst, resp.Schedule, resp.Makespan, resp.Wasted); err != nil {
		d.countError(class, tenant, err)
		return OutcomeError
	}
	return OutcomeOK
}

// doBatch fires one batch solve over the given window and sanity-checks every
// per-instance result (batch responses carry no schedules, so the oracle can
// only hold makespans against the lower bounds). The returned outcome is
// request-level: per-instance failures are counted but a delivered batch is
// "ok".
func (d *Driver) doBatch(ctx context.Context, tenant string, batch []Item) string {
	req := service.BatchRequest{Solver: d.cfg.Solver, Timeout: d.cfg.SolveTimeout.String()}
	for _, it := range batch {
		req.Instances = append(req.Instances, it.Inst)
	}
	var resp service.BatchResponse
	if err := d.post(ctx, tenant, "/v1/batch-solve", req, &resp); err != nil {
		d.countError(ClassBatch, tenant, err)
		return outcomeOf(err)
	}
	for _, res := range resp.Results {
		switch {
		case res.Shed:
			d.countShed(ClassBatch, tenant)
		case res.Cancelled:
			d.countCancelled(ClassBatch, tenant)
		case res.Error != "":
			d.countError(ClassBatch, tenant, errors.New(res.Error))
		case res.Index < 0 || res.Index >= len(batch):
			d.countError(ClassBatch, tenant, fmt.Errorf("batch response index %d outside [0,%d)", res.Index, len(batch)))
		default:
			it := batch[res.Index]
			d.countTelemetry(ClassBatch, tenant, res.Telemetry, res.Source)
			label := fmt.Sprintf("batch %s/%s", it.Family, it.Inst.Fingerprint().Short())
			if err := d.oracle.CheckMakespan(label, it.Inst, res.Makespan); err != nil {
				d.countError(ClassBatch, tenant, err)
			}
		}
	}
	return OutcomeOK
}

// doJob submits an asynchronous job, follows its SSE stream to the terminal
// state, revalidates the final schedule and returns the request outcome.
func (d *Driver) doJob(ctx context.Context, tenant string, item Item) string {
	var snap jobs.Snapshot
	req := service.JobRequest{Solver: d.cfg.Solver, Instance: item.Inst, Timeout: d.cfg.JobTimeout.String()}
	if err := d.post(ctx, tenant, "/v1/jobs", req, &snap); err != nil {
		d.countError(ClassJobs, tenant, err)
		return outcomeOf(err)
	}
	incumbents, err := d.followEvents(ctx, snap.ID)
	d.mu.Lock()
	d.classes[ClassJobs].Incumbents += incumbents
	d.mu.Unlock()
	if err != nil {
		d.countError(ClassJobs, tenant, err)
		return OutcomeError
	}
	final, err := d.getJob(ctx, snap.ID)
	if err != nil {
		d.countError(ClassJobs, tenant, err)
		return OutcomeError
	}
	switch final.State {
	case jobs.StateDone:
		if final.Result != nil {
			d.countTelemetry(ClassJobs, tenant, final.Result.Telemetry, final.Result.Source)
		}
		label := fmt.Sprintf("job %s %s/%s", final.ID, item.Family, item.Inst.Fingerprint().Short())
		if final.Result == nil {
			err := d.oracle.CheckSchedule(label, item.Inst, nil, -1, -1)
			d.countError(ClassJobs, tenant, err)
			return OutcomeError
		}
		if err := d.oracle.CheckSchedule(label, item.Inst, final.Result.Schedule, final.Result.Makespan, final.Result.Wasted); err != nil {
			d.countError(ClassJobs, tenant, err)
			return OutcomeError
		}
		return OutcomeOK
	case jobs.StateCancelled:
		d.countCancelled(ClassJobs, tenant)
		return OutcomeCancelled
	default:
		d.countError(ClassJobs, tenant, fmt.Errorf("job %s ended %s: %s", final.ID, final.State, final.Error))
		return OutcomeError
	}
}

// followEvents reads the job's SSE stream until the server closes it at a
// terminal state (or the context expires) and returns the number of
// incumbent events seen.
func (d *Driver) followEvents(ctx context.Context, id string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.cfg.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return 0, err
	}
	resp, err := d.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("events: %s", resp.Status)
	}
	incumbents := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "event: incumbent" {
			incumbents++
		}
	}
	// EOF means the stream reached a terminal state; any other error is the
	// context expiring mid-stream.
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return incumbents, err
	}
	return incumbents, nil
}

func (d *Driver) getJob(ctx context.Context, id string) (*jobs.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.cfg.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := d.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("job %s: %s", id, resp.Status)
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// offeredRate is the arrival rate the run actually offered, which the report
// states as RatePerSec. cfg.Rate alone misstates it for two run shapes: a
// replay's schedule comes from the recording (cfg.Rate is ignored entirely),
// and a multi-tenant run offers the SUM of the tenant rates (a tenant with no
// rate of its own falls back to the global rate).
func (d *Driver) offeredRate(elapsed time.Duration) float64 {
	if d.cfg.Replay != nil {
		var maxOff int64
		for i := range d.cfg.Replay.Entries {
			if off := d.cfg.Replay.Entries[i].OffsetNS; off > maxOff {
				maxOff = off
			}
		}
		span := time.Duration(float64(maxOff) / d.cfg.ReplaySpeed)
		if span <= 0 {
			span = elapsed // single-instant recording: fall back to wall time
		}
		if span <= 0 {
			return 0
		}
		return float64(len(d.cfg.Replay.Entries)) / span.Seconds()
	}
	if len(d.cfg.Tenants) > 0 {
		var sum float64
		for _, tl := range d.cfg.Tenants {
			if tl.Rate > 0 {
				sum += tl.Rate
			} else {
				sum += d.cfg.Rate
			}
		}
		return sum
	}
	return d.cfg.Rate
}

// report assembles the final Report.
func (d *Driver) report(elapsed time.Duration, delta MetricsSnapshot) *Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	seed := int64(0)
	if d.cfg.Corpus != nil {
		seed = d.cfg.Corpus.Seed
	} else if d.cfg.Replay != nil {
		seed = d.cfg.Replay.Seed
	}
	rep := &Report{
		Seed:           seed,
		Mix:            d.cfg.Mix,
		Replayed:       d.cfg.Replay != nil,
		RatePerSec:     d.offeredRate(elapsed),
		DurationSec:    elapsed.Seconds(),
		Shed:           d.shed,
		ServerShed:     d.serverShed,
		Classes:        make(map[string]*ClassStats, len(d.classes)),
		Validated:      d.oracle.Validated(),
		ViolationCount: d.oracle.ViolationCount(),
		Violations:     append([]string{}, d.oracle.Violations()...),
		Properties:     d.oracle.Properties(),
		Cache:          delta.Cache(),
		MetricsDelta:   delta,
	}
	for class, cs := range d.classes {
		c := *cs
		c.Latency = summarizeLatency(d.latencies[class])
		rep.Classes[class] = &c
		rep.Requests += c.Requests
		rep.WarmStarted += c.Telemetry.WarmStarts
	}
	if len(d.tenants) > 0 {
		rep.Tenants = make(map[string]*TenantStats, len(d.tenants))
		for name, ts := range d.tenants {
			t := *ts
			t.Latency = summarizeLatency(d.tenantLatencies[name])
			rep.Tenants[name] = &t
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	}
	return rep
}
