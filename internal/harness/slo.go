package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// SLO is a declarative service-level objective evaluated against a load
// report (single-shard or merged). The zero value of every field means "not
// gated"; a ceiling of zero is expressed by the pointer fields. Specs decode
// strictly — an unknown key is a config error, not a silently ignored gate.
type SLO struct {
	// MaxP99MS caps the P99 latency per request class, in milliseconds. A
	// class named here must appear in the report with traffic; gating a class
	// the run never exercised is a violation, not a free pass.
	MaxP99MS map[string]float64 `json:"max_p99_ms,omitempty"`
	// MaxShedRate caps (driver sheds + server sheds) / offered arrivals.
	MaxShedRate *float64 `json:"max_shed_rate,omitempty"`
	// MinCacheHitRatio floors the run's cache hit ratio.
	MinCacheHitRatio *float64 `json:"min_cache_hit_ratio,omitempty"`
	// MaxOracleViolations caps the invariant-oracle failures (normally 0,
	// which the zero value provides: any violation gates).
	MaxOracleViolations int `json:"max_oracle_violations"`
	// MinRequests floors the completed-request count, so an SLO cannot pass
	// vacuously on a run that did nothing.
	MinRequests int `json:"min_requests,omitempty"`
}

// SLOViolation is one failed objective, carrying the gate, the observed value
// and the bound for the human-readable verdict.
type SLOViolation struct {
	Gate     string  `json:"gate"`
	Observed float64 `json:"observed"`
	Bound    float64 `json:"bound"`
	Message  string  `json:"message"`
}

func (v SLOViolation) String() string { return v.Message }

// ParseSLO decodes a strict JSON SLO spec.
func ParseSLO(data []byte) (*SLO, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s SLO
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("harness: parsing SLO spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("harness: SLO spec has trailing data")
	}
	for class := range s.MaxP99MS {
		switch class {
		case ClassSolve, ClassBatch, ClassJobs:
		default:
			return nil, fmt.Errorf("harness: SLO gates unknown class %q (want solve, batch or jobs)", class)
		}
	}
	return &s, nil
}

// LoadSLO reads and parses an SLO spec file.
func LoadSLO(path string) (*SLO, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSLO(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ShedRate returns the report's overall shed fraction: arrivals the driver
// dropped at its inflight cap plus server quota refusals, over everything
// offered (completed requests + driver sheds).
func (r *Report) ShedRate() float64 {
	offered := r.Requests + r.Shed
	if offered == 0 {
		return 0
	}
	return float64(r.Shed+r.ServerShed) / float64(offered)
}

// Evaluate checks every declared objective against the report and returns the
// violations, in a stable order. An empty slice means the SLO holds.
func (s *SLO) Evaluate(r *Report) []SLOViolation {
	var out []SLOViolation

	classes := make([]string, 0, len(s.MaxP99MS))
	for class := range s.MaxP99MS {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		bound := s.MaxP99MS[class]
		cs := r.Classes[class]
		if cs == nil || cs.Latency.Count == 0 {
			out = append(out, SLOViolation{
				Gate:  "p99/" + class,
				Bound: bound,
				Message: fmt.Sprintf("p99/%s: class saw no traffic, cannot attest p99 <= %.3fms "+
					"(gated classes must be exercised)", class, bound),
			})
			continue
		}
		if p99 := cs.Latency.P99MS; p99 > bound {
			out = append(out, SLOViolation{
				Gate:     "p99/" + class,
				Observed: p99,
				Bound:    bound,
				Message:  fmt.Sprintf("p99/%s: %.3fms exceeds ceiling %.3fms over %d requests", class, p99, bound, cs.Latency.Count),
			})
		}
	}

	if s.MaxShedRate != nil {
		if rate := r.ShedRate(); rate > *s.MaxShedRate {
			out = append(out, SLOViolation{
				Gate:     "shed-rate",
				Observed: rate,
				Bound:    *s.MaxShedRate,
				Message: fmt.Sprintf("shed-rate: %.4f (driver %d + server %d of %d offered) exceeds ceiling %.4f",
					rate, r.Shed, r.ServerShed, r.Requests+r.Shed, *s.MaxShedRate),
			})
		}
	}

	if s.MinCacheHitRatio != nil {
		if ratio := r.Cache.HitRatio; ratio < *s.MinCacheHitRatio {
			out = append(out, SLOViolation{
				Gate:     "cache-hit-ratio",
				Observed: ratio,
				Bound:    *s.MinCacheHitRatio,
				Message: fmt.Sprintf("cache-hit-ratio: %.4f (served %.0f of %.0f) below floor %.4f",
					ratio, r.Cache.CacheServed, r.Cache.CacheServed+r.Cache.FreshSolves, *s.MinCacheHitRatio),
			})
		}
	}

	if r.ViolationCount > s.MaxOracleViolations {
		msg := fmt.Sprintf("oracle: %d invariant violations exceed the allowed %d", r.ViolationCount, s.MaxOracleViolations)
		if len(r.Violations) > 0 {
			msg += " (first: " + r.Violations[0] + ")"
		}
		out = append(out, SLOViolation{
			Gate:     "oracle",
			Observed: float64(r.ViolationCount),
			Bound:    float64(s.MaxOracleViolations),
			Message:  msg,
		})
	}

	if s.MinRequests > 0 && r.Requests < s.MinRequests {
		out = append(out, SLOViolation{
			Gate:     "min-requests",
			Observed: float64(r.Requests),
			Bound:    float64(s.MinRequests),
			Message:  fmt.Sprintf("min-requests: run completed %d requests, below floor %d (SLO would pass vacuously)", r.Requests, s.MinRequests),
		})
	}
	return out
}

// RenderSLOVerdict renders the gate outcome for terminal output: one line per
// objective violated, or a pass line naming the gates that held.
func RenderSLOVerdict(s *SLO, violations []SLOViolation) string {
	if len(violations) == 0 {
		gates := 0
		gates += len(s.MaxP99MS)
		if s.MaxShedRate != nil {
			gates++
		}
		if s.MinCacheHitRatio != nil {
			gates++
		}
		gates++ // the oracle gate always applies
		if s.MinRequests > 0 {
			gates++
		}
		return fmt.Sprintf("SLO: PASS (%d gates held)", gates)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SLO: FAIL (%d violations)\n", len(violations))
	for _, v := range violations {
		fmt.Fprintf(&b, "  SLO VIOLATION %s\n", v.Message)
	}
	return strings.TrimRight(b.String(), "\n")
}
