package harness

import (
	"context"
	"fmt"
	"sync"
)

// ShardCorpus returns the slice of the corpus that shard `shard` of `of`
// drives: items are dealt round-robin by their global corpus index, so the
// shards are disjoint, their union is the whole corpus, and the split is the
// same on every machine that built the corpus from the same seed. Families
// left empty on a shard are dropped.
func ShardCorpus(c *Corpus, shard, of int) *Corpus {
	if of <= 1 {
		return c
	}
	out := &Corpus{Seed: c.Seed}
	idx := 0
	for _, fam := range c.Families {
		var keep Family
		keep.Name = fam.Name
		for _, inst := range fam.Instances {
			if idx%of == shard {
				keep.Instances = append(keep.Instances, inst)
			}
			idx++
		}
		if len(keep.Instances) > 0 {
			out.Families = append(out.Families, keep)
		}
	}
	return out
}

// shardConfig derives shard i's driver configuration from the fleet
// configuration: a live run splits the corpus and the offered rates so the
// fleet's total load equals the single-driver load; a replay run splits the
// recording by Seq. Shards never scrape /metrics themselves — RunFleet
// scrapes once around the whole fleet.
func shardConfig(cfg Config, shard, of int) Config {
	out := cfg
	out.SkipMetrics = true
	if cfg.Replay != nil {
		out.Replay = cfg.Replay.Shard(shard, of)
		return out
	}
	out.Corpus = ShardCorpus(cfg.Corpus, shard, of)
	out.Rate = cfg.Rate / float64(of)
	if len(cfg.Tenants) > 0 {
		out.Tenants = make([]TenantLoad, len(cfg.Tenants))
		for i, tl := range cfg.Tenants {
			if tl.Rate > 0 {
				tl.Rate /= float64(of)
			}
			out.Tenants[i] = tl
		}
	}
	return out
}

// RunFleet drives the server with `shards` concurrent in-process driver
// shards sharing one Recorder (when set) and returns the merged report. The
// /metrics movement is scraped once around the whole fleet — per-shard
// scrapes against the shared server would multiply-count every cache hit —
// and installed as the merged report's Cache/MetricsDelta. With shards ≤ 1
// this is exactly Driver.Run.
func RunFleet(ctx context.Context, cfg Config, shards int) (*Report, error) {
	if shards <= 1 {
		d, err := NewDriver(cfg)
		if err != nil {
			return nil, err
		}
		return d.Run(ctx)
	}
	if cfg.Replay != nil && len(cfg.Replay.Entries) < shards {
		return nil, fmt.Errorf("harness: recording has %d entries, fewer than %d shards", len(cfg.Replay.Entries), shards)
	}

	drivers := make([]*Driver, shards)
	for i := range drivers {
		d, err := NewDriver(shardConfig(cfg, i, shards))
		if err != nil {
			return nil, fmt.Errorf("harness: shard %d: %w", i, err)
		}
		drivers[i] = d
	}

	client := drivers[0].cfg.Client
	urls := cfg.MetricsURLs
	if len(urls) == 0 {
		urls = []string{cfg.BaseURL + "/metrics"}
	}
	var before MetricsSnapshot
	scrape := !cfg.SkipMetrics
	if scrape {
		var err error
		before, err = scrapeAll(client, urls)
		if err != nil {
			return nil, err
		}
	}

	reports := make([]*Report, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i, d := range drivers {
		wg.Add(1)
		go func(i int, d *Driver) {
			defer wg.Done()
			reports[i], errs[i] = d.Run(ctx)
		}(i, d)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("harness: shard %d: %w", i, err)
		}
	}

	merged, err := MergeReports(reports...)
	if err != nil {
		return nil, err
	}
	merged.Shards = shards
	// MergeReports already summed the shards' offered rates, which IS the
	// fleet's offered rate — overwriting it with cfg.Rate misstated replay
	// and multi-tenant fleets.
	if scrape {
		after, err := scrapeAll(client, urls)
		if err != nil {
			return nil, err
		}
		delta := before.Delta(after)
		merged.MetricsDelta = delta
		merged.Cache = delta.Cache()
	}
	if merged.DurationSec > 0 {
		merged.Throughput = float64(merged.Requests) / merged.DurationSec
	}
	return merged, nil
}
