package harness

import (
	"os"
	"strings"
	"testing"
)

// fixtureReport builds a healthy report: brisk latencies, no sheds, warm
// cache, clean oracle.
func fixtureReport(mut func(*Report)) *Report {
	r := syntheticReport(ClassSolve, []float64{1, 2, 3, 4, 5}, func(r *Report) {
		r.Classes[ClassBatch] = &ClassStats{Requests: 3, Latency: summarizeLatency([]float64{10, 12, 14})}
		r.Requests += 3
		r.Validated += 3
		r.Cache = CacheAccounting{FreshSolves: 2, CacheServed: 6, HitRatio: 0.75}
	})
	if mut != nil {
		mut(r)
	}
	return r
}

func f64(v float64) *float64 { return &v }

// testSLO gates p99 for both exercised classes, the shed rate, the cache
// floor, oracle cleanliness and a minimum request count.
func testSLO() *SLO {
	return &SLO{
		MaxP99MS:         map[string]float64{ClassSolve: 50, ClassBatch: 100},
		MaxShedRate:      f64(0.01),
		MinCacheHitRatio: f64(0.5),
		MinRequests:      5,
	}
}

func TestSLOPass(t *testing.T) {
	violations := testSLO().Evaluate(fixtureReport(nil))
	if len(violations) != 0 {
		t.Fatalf("healthy report violated the SLO: %v", violations)
	}
	verdict := RenderSLOVerdict(testSLO(), violations)
	if !strings.Contains(verdict, "PASS") || !strings.Contains(verdict, "6 gates") {
		t.Fatalf("pass verdict wrong: %q", verdict)
	}
}

func TestSLOP99Violation(t *testing.T) {
	rep := fixtureReport(func(r *Report) {
		r.Classes[ClassSolve].Latency = summarizeLatency([]float64{10, 20, 500})
	})
	violations := testSLO().Evaluate(rep)
	if len(violations) != 1 || violations[0].Gate != "p99/solve" {
		t.Fatalf("want one p99/solve violation, got %v", violations)
	}
	msg := violations[0].Message
	if !strings.Contains(msg, "exceeds ceiling 50.000ms") {
		t.Fatalf("violation message does not name the bound: %q", msg)
	}
	if violations[0].Observed <= 50 {
		t.Fatalf("observed p99 %v not above the bound", violations[0].Observed)
	}
	if verdict := RenderSLOVerdict(testSLO(), violations); !strings.Contains(verdict, "FAIL") || !strings.Contains(verdict, "p99/solve") {
		t.Fatalf("fail verdict wrong: %q", verdict)
	}
}

func TestSLOShedRateViolation(t *testing.T) {
	rep := fixtureReport(func(r *Report) {
		r.Shed = 1       // driver dropped one arrival
		r.ServerShed = 2 // server refused two over quota
	})
	violations := testSLO().Evaluate(rep)
	if len(violations) != 1 || violations[0].Gate != "shed-rate" {
		t.Fatalf("want one shed-rate violation, got %v", violations)
	}
	// 3 sheds over 9 offered arrivals.
	if got := violations[0].Observed; got < 0.33 || got > 0.34 {
		t.Fatalf("observed shed rate %v, want 3/9", got)
	}
	if !strings.Contains(violations[0].Message, "driver 1 + server 2") {
		t.Fatalf("shed message does not attribute the sheds: %q", violations[0].Message)
	}
}

func TestSLOCacheFloorViolation(t *testing.T) {
	rep := fixtureReport(func(r *Report) {
		r.Cache = CacheAccounting{FreshSolves: 9, CacheServed: 1, HitRatio: 0.1}
	})
	violations := testSLO().Evaluate(rep)
	if len(violations) != 1 || violations[0].Gate != "cache-hit-ratio" {
		t.Fatalf("want one cache-hit-ratio violation, got %v", violations)
	}
	if !strings.Contains(violations[0].Message, "below floor 0.5000") {
		t.Fatalf("cache message does not name the floor: %q", violations[0].Message)
	}
}

func TestSLOOracleViolation(t *testing.T) {
	rep := fixtureReport(func(r *Report) {
		r.ViolationCount = 2
		r.Violations = []string{"solve x: schedule overlaps", "solve y: below bound"}
	})
	violations := testSLO().Evaluate(rep)
	if len(violations) != 1 || violations[0].Gate != "oracle" {
		t.Fatalf("want one oracle violation, got %v", violations)
	}
	if !strings.Contains(violations[0].Message, "schedule overlaps") {
		t.Fatalf("oracle message does not carry the first violation: %q", violations[0].Message)
	}
}

func TestSLOUnexercisedClassViolates(t *testing.T) {
	slo := &SLO{MaxP99MS: map[string]float64{ClassJobs: 100}}
	violations := slo.Evaluate(fixtureReport(nil))
	if len(violations) != 1 || violations[0].Gate != "p99/jobs" {
		t.Fatalf("gating an unexercised class must violate, got %v", violations)
	}
}

func TestSLOMinRequestsViolation(t *testing.T) {
	slo := &SLO{MinRequests: 1000}
	violations := slo.Evaluate(fixtureReport(nil))
	if len(violations) != 1 || violations[0].Gate != "min-requests" {
		t.Fatalf("want a min-requests violation, got %v", violations)
	}
}

func TestSLOMultipleViolationsStableOrder(t *testing.T) {
	rep := fixtureReport(func(r *Report) {
		r.Classes[ClassSolve].Latency = summarizeLatency([]float64{500})
		r.Classes[ClassBatch].Latency = summarizeLatency([]float64{500})
		r.Cache.HitRatio = 0
		r.ViolationCount = 1
		r.Violations = []string{"v"}
	})
	violations := testSLO().Evaluate(rep)
	var gates []string
	for _, v := range violations {
		gates = append(gates, v.Gate)
	}
	want := []string{"p99/batch", "p99/solve", "cache-hit-ratio", "oracle"}
	if strings.Join(gates, ",") != strings.Join(want, ",") {
		t.Fatalf("violation order %v, want %v", gates, want)
	}
}

func TestParseSLOStrict(t *testing.T) {
	good := `{"max_p99_ms": {"solve": 50}, "max_shed_rate": 0.02, "min_cache_hit_ratio": 0.3, "min_requests": 10}`
	s, err := ParseSLO([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxP99MS[ClassSolve] != 50 || *s.MaxShedRate != 0.02 || *s.MinCacheHitRatio != 0.3 || s.MinRequests != 10 {
		t.Fatalf("parsed SLO wrong: %+v", s)
	}
	for name, bad := range map[string]string{
		"unknown key":   `{"max_p99": {"solve": 50}}`,
		"unknown class": `{"max_p99_ms": {"solver": 50}}`,
		"trailing data": `{"min_requests": 1} {"min_requests": 2}`,
		"not json":      `max_p99_ms: 50`,
	} {
		if _, err := ParseSLO([]byte(bad)); err == nil {
			t.Errorf("%s accepted: %s", name, bad)
		}
	}
}

func TestLoadSLO(t *testing.T) {
	path := t.TempDir() + "/slo.json"
	if err := os.WriteFile(path, []byte(`{"min_requests": 3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSLO(path)
	if err != nil || s.MinRequests != 3 {
		t.Fatalf("LoadSLO: %+v, %v", s, err)
	}
	if _, err := LoadSLO(path + ".missing"); err == nil {
		t.Fatal("loading a missing SLO succeeded")
	}
}
