package harness

import (
	"bytes"
	"testing"

	"crsharing/internal/core"
)

// TestBuildCorpusDeterministic pins the seed contract: the same seed yields
// the byte-identical corpus across independent builds, and different seeds
// yield different corpora.
func TestBuildCorpusDeterministic(t *testing.T) {
	a, err := BuildCorpus(1).MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCorpus(1).MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two corpora built from seed 1 serialise differently")
	}
	c, err := BuildCorpus(2).MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("corpora from seeds 1 and 2 serialise identically")
	}
}

// TestCorpusFamiliesValid asserts every family the harness emits is present,
// non-empty and consists solely of model-valid instances.
func TestCorpusFamiliesValid(t *testing.T) {
	corpus := BuildCorpus(42)
	if err := corpus.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range FamilyNames() {
		f := corpus.Family(name)
		if f == nil {
			t.Fatalf("family %q missing from corpus", name)
		}
		if len(f.Instances) == 0 {
			t.Fatalf("family %q is empty", name)
		}
		for i, inst := range f.Instances {
			if err := inst.Validate(); err != nil {
				t.Errorf("family %q instance %d invalid: %v", name, i, err)
			}
			if inst.NumProcessors() == 0 || inst.TotalJobs() == 0 {
				t.Errorf("family %q instance %d is degenerate (m=%d jobs=%d)",
					name, i, inst.NumProcessors(), inst.TotalJobs())
			}
		}
	}
	if got, want := len(corpus.Families), len(FamilyNames()); got != want {
		t.Fatalf("corpus has %d families, FamilyNames lists %d", got, want)
	}
	if corpus.Size() != len(corpus.Items()) {
		t.Fatalf("Size()=%d disagrees with len(Items())=%d", corpus.Size(), len(corpus.Items()))
	}
}

// TestAdversarialDupFingerprints asserts the cache-stress family delivers
// what it promises: duplicates share their base's fingerprint while at least
// some list their processors in a different order.
func TestAdversarialDupFingerprints(t *testing.T) {
	f := BuildCorpus(1).Family(FamilyAdversarialDup)
	if f == nil {
		t.Fatal("adversarial-dup family missing")
	}
	const groupSize = 4 // one base + three permutations
	if len(f.Instances)%groupSize != 0 {
		t.Fatalf("family size %d is not a multiple of the group size %d", len(f.Instances), groupSize)
	}
	permuted := 0
	for g := 0; g < len(f.Instances); g += groupSize {
		base := f.Instances[g]
		for k := 1; k < groupSize; k++ {
			dup := f.Instances[g+k]
			if base.Fingerprint() != dup.Fingerprint() {
				t.Errorf("group %d duplicate %d has a different fingerprint", g/groupSize, k)
			}
			if !base.Equal(dup) {
				permuted++
			}
		}
	}
	if permuted == 0 {
		t.Error("no duplicate actually permutes its base's processor order; the family cannot stress the remap path")
	}
}

// TestPermuteProcs checks the helper against a hand-built expectation and its
// panic contract.
func TestPermuteProcs(t *testing.T) {
	inst := core.NewInstance([]float64{0.1}, []float64{0.2, 0.3}, []float64{0.4})
	out := PermuteProcs(inst, []int{2, 0, 1})
	want := core.NewInstance([]float64{0.4}, []float64{0.1}, []float64{0.2, 0.3})
	if !out.Equal(want) {
		t.Fatalf("PermuteProcs yielded\n%v\nwant\n%v", out, want)
	}
	if out.Fingerprint() != inst.Fingerprint() {
		t.Fatal("permuting processors changed the fingerprint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PermuteProcs accepted a permutation of the wrong length")
		}
	}()
	PermuteProcs(inst, []int{0, 1})
}
