package harness

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// recordSeededRun drives the in-process stack with a short multi-tenant mixed
// load, recording every arrival, and returns the recording.
func recordSeededRun(t *testing.T, stack *Stack) *Recording {
	t.Helper()
	rec := NewRecorder()
	d, err := NewDriver(Config{
		BaseURL:  stack.URL,
		Corpus:   BuildCorpus(11),
		Mix:      Mix{Solve: 6, Batch: 2, Jobs: 2},
		Duration: 500 * time.Millisecond,
		Tenants: []TenantLoad{
			{Name: "gold", Weight: 2, Rate: 200},
			{Name: "free", Weight: 1, Rate: 100},
		},
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationCount != 0 {
		t.Fatalf("recorded run had violations: %v", rep.Violations)
	}
	recording := rec.Recording(11)
	if len(recording.Entries) == 0 {
		t.Fatal("recorded run captured no arrivals")
	}
	return recording
}

// replayOnce re-issues the recording against the stack at high speed,
// re-recording the replayed arrivals, and returns the new recording and the
// run report.
func replayOnce(t *testing.T, stack *Stack, recording *Recording) (*Recording, *Report) {
	t.Helper()
	rec := NewRecorder()
	d, err := NewDriver(Config{
		BaseURL:     stack.URL,
		Replay:      recording,
		ReplaySpeed: 50,
		MaxInflight: 4096,
		Recorder:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rec.Recording(recording.Seed), rep
}

// sameSequence checks two recordings issue the identical request stream:
// class, tenant and fingerprint order, entry for entry. Offsets and outcomes
// are wall-clock and may differ.
func sameSequence(t *testing.T, a, b *Recording) {
	t.Helper()
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("request streams differ in length: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		ea, eb := &a.Entries[i], &b.Entries[i]
		if ea.Class != eb.Class || ea.Tenant != eb.Tenant {
			t.Fatalf("entry %d differs: %s/%s vs %s/%s", i, ea.Class, ea.Tenant, eb.Class, eb.Tenant)
		}
		if len(ea.Fingerprints) != len(eb.Fingerprints) {
			t.Fatalf("entry %d payload size differs: %d vs %d", i, len(ea.Fingerprints), len(eb.Fingerprints))
		}
		for j := range ea.Fingerprints {
			if ea.Fingerprints[j] != eb.Fingerprints[j] {
				t.Fatalf("entry %d fingerprint %d differs: %s vs %s", i, j, ea.Fingerprints[j], eb.Fingerprints[j])
			}
		}
	}
}

// TestReplayDeterminism is the satellite regression: record a seeded run,
// replay it twice, and assert both replays re-issue the identical request
// sequence (the recorded one) with every replayed schedule revalidating.
func TestReplayDeterminism(t *testing.T) {
	stack := newHarnessServer(t)
	recording := recordSeededRun(t, stack)

	first, repA := replayOnce(t, stack, recording)
	second, repB := replayOnce(t, stack, recording)

	sameSequence(t, recording, first)
	sameSequence(t, first, second)

	for name, rep := range map[string]*Report{"first": repA, "second": repB} {
		if !rep.Replayed {
			t.Errorf("%s replay report not marked replayed", name)
		}
		if rep.ViolationCount != 0 {
			t.Errorf("%s replay had oracle violations: %v", name, rep.Violations)
		}
		if rep.Validated == 0 {
			t.Errorf("%s replay validated nothing", name)
		}
		if rep.Seed != recording.Seed {
			t.Errorf("%s replay report seed %d, want %d", name, rep.Seed, recording.Seed)
		}
	}

	// The replayed stream is also bit-exact on disk: re-recording a replay
	// and encoding it reproduces the original entry payloads byte for byte
	// once the wall-clock fields (offset, outcome) are normalised.
	norm := func(r *Recording) []byte {
		c := &Recording{Seed: r.Seed, Entries: append([]Entry(nil), r.Entries...)}
		for i := range c.Entries {
			c.Entries[i].OffsetNS = 0
			c.Entries[i].Outcome = ""
		}
		data, err := c.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(norm(recording), norm(first)) {
		t.Fatal("replayed request stream is not bit-exact against the recording")
	}
}

// TestShardedReplayTotalsMatch is the acceptance check for distributed drive:
// replaying one recording through a 4-shard fleet yields the same totals as a
// 1-shard replay — same requests, same per-class and per-tenant counts.
func TestShardedReplayTotalsMatch(t *testing.T) {
	stack := newHarnessServer(t)
	recording := recordSeededRun(t, stack)

	run := func(shards int) *Report {
		rep, err := RunFleet(context.Background(), Config{
			BaseURL:     stack.URL,
			Replay:      recording,
			ReplaySpeed: 50,
			MaxInflight: 4096,
		}, shards)
		if err != nil {
			t.Fatalf("%d-shard replay: %v", shards, err)
		}
		return rep
	}
	single := run(1)
	fleet := run(4)

	if fleet.Shards != 4 {
		t.Errorf("merged report shards = %d, want 4", fleet.Shards)
	}
	if single.Requests != len(recording.Entries) || fleet.Requests != len(recording.Entries) {
		t.Errorf("requests: single=%d fleet=%d, want %d (the recording length)",
			single.Requests, fleet.Requests, len(recording.Entries))
	}
	if single.Shed != 0 || fleet.Shed != 0 {
		t.Errorf("replay shed arrivals: single=%d fleet=%d", single.Shed, fleet.Shed)
	}
	if single.ViolationCount != 0 || fleet.ViolationCount != 0 {
		t.Errorf("violations: single=%v fleet=%v", single.Violations, fleet.Violations)
	}
	for class, scs := range single.Classes {
		fcs := fleet.Classes[class]
		if fcs == nil {
			t.Errorf("class %s missing from merged report", class)
			continue
		}
		if scs.Requests != fcs.Requests {
			t.Errorf("class %s requests: single=%d fleet=%d", class, scs.Requests, fcs.Requests)
		}
		if scs.Latency.Count != fcs.Latency.Count {
			t.Errorf("class %s latency count: single=%d fleet=%d", class, scs.Latency.Count, fcs.Latency.Count)
		}
	}
	for tenant, sts := range single.Tenants {
		fts := fleet.Tenants[tenant]
		if fts == nil || sts.Requests != fts.Requests {
			t.Errorf("tenant %s requests: single=%+v fleet=%+v", tenant, sts, fts)
		}
	}
	// The fleet shares the server, so its cache accounting comes from one
	// whole-fleet scrape and must balance: every request stream issues the
	// same instances, so fresh solves + cache hits both cover the stream.
	if fleet.Cache.FreshSolves+fleet.Cache.CacheServed == 0 {
		t.Error("merged fleet report lost the cache accounting")
	}
}

// TestShardCorpusPartition checks the deterministic corpus split: shards are
// disjoint, their union is the corpus, and resharding is reproducible.
func TestShardCorpusPartition(t *testing.T) {
	corpus := BuildCorpus(3)
	const shards = 4
	total := 0
	seen := make(map[string]int)
	for _, it := range corpus.Items() {
		seen[it.Family+"/"+it.Inst.Fingerprint().String()] = 0
	}
	for s := 0; s < shards; s++ {
		part := ShardCorpus(corpus, s, shards)
		if part.Seed != corpus.Seed {
			t.Fatalf("shard %d dropped the seed", s)
		}
		again := ShardCorpus(corpus, s, shards)
		for i, it := range part.Items() {
			key := it.Family + "/" + it.Inst.Fingerprint().String()
			if _, ok := seen[key]; !ok {
				t.Fatalf("shard %d invented item %s", s, key)
			}
			seen[key]++
			if a := again.Items()[i]; a.Family != it.Family || a.Inst != it.Inst {
				t.Fatalf("resharding shard %d is not reproducible at item %d", s, i)
			}
			total++
		}
		for _, fam := range part.Families {
			if len(fam.Instances) == 0 {
				t.Fatalf("shard %d kept empty family %s", s, fam.Name)
			}
		}
	}
	if total != len(corpus.Items()) {
		t.Fatalf("shards cover %d of %d items", total, len(corpus.Items()))
	}
	// The adversarial-dup family holds fingerprint-identical instances, so a
	// fingerprint key may legitimately be hit more than once — but the count
	// per key must match the corpus's own multiplicity.
	mult := make(map[string]int)
	for _, it := range corpus.Items() {
		mult[it.Family+"/"+it.Inst.Fingerprint().String()]++
	}
	for key, n := range seen {
		if n != mult[key] {
			t.Fatalf("item %s appears %d times across shards, want %d", key, n, mult[key])
		}
	}
}
