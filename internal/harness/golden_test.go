package harness

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"crsharing/internal/solver"
)

// update regenerates the golden fixtures:
//
//	go test ./internal/harness -run TestGoldenCorpus -update
var update = flag.Bool("update", false, "rewrite the golden-corpus fixtures under testdata/")

// goldenSeed pins the corpus the fixtures were recorded on.
const goldenSeed = 1

// goldenFamilies keeps the fixture small and the exact solvers fast: tiny
// random instances plus the paper's fixed constructions.
var goldenFamilies = []string{FamilyTinyExact, FamilyPaperFigures}

// goldenSolvers lists every registered solver with deterministic output —
// the parallel kernels and the portfolio are excluded because ties between
// equal-makespan schedules are broken by timing, which would make waste
// values flap.
var goldenSolvers = []string{
	"round-robin",
	"greedy-balance",
	"greedy-balance-small",
	"greedy-unbalanced-large",
	"opt-res-assignment-2",
	"branch-and-bound",
	"chunked-exact-w2",
	"chunked-exact-w3",
}

// goldenEntry is one (instance, solver) observation. Makespan must match
// exactly; waste within wasteTolerance.
type goldenEntry struct {
	Family      string  `json:"family"`
	Index       int     `json:"index"`
	Fingerprint string  `json:"fingerprint"`
	Solver      string  `json:"solver"`
	Makespan    int     `json:"makespan"`
	Wasted      float64 `json:"wasted"`
}

type goldenFile struct {
	Seed     int64         `json:"seed"`
	Families []string      `json:"families"`
	Solvers  []string      `json:"solvers"`
	Entries  []goldenEntry `json:"entries"`
}

const (
	goldenPath     = "testdata/golden_corpus.json"
	wasteTolerance = 1e-9
)

func goldenKey(e goldenEntry) string {
	return fmt.Sprintf("%s/%d/%s", e.Family, e.Index, e.Solver)
}

// computeGolden solves the golden corpus with every golden solver and
// returns the observations in deterministic order. Solvers that reject an
// instance (e.g. the m=2 dynamic program on three processors) contribute no
// entry — so a solver that starts rejecting instances it used to solve
// changes the entry set and is caught as drift.
func computeGolden(t *testing.T) goldenFile {
	t.Helper()
	corpus := BuildCorpus(goldenSeed)
	reg := solver.Default()
	out := goldenFile{Seed: goldenSeed, Families: goldenFamilies, Solvers: goldenSolvers}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, famName := range goldenFamilies {
		fam := corpus.Family(famName)
		if fam == nil {
			t.Fatalf("golden family %q missing from corpus", famName)
		}
		for idx, inst := range fam.Instances {
			for _, name := range goldenSolvers {
				sv, err := reg.New(name)
				if err != nil {
					t.Fatal(err)
				}
				ev, err := solver.Evaluate(ctx, sv, inst)
				if err != nil {
					continue // deterministic rejection; absence is part of the fixture
				}
				out.Entries = append(out.Entries, goldenEntry{
					Family:      famName,
					Index:       idx,
					Fingerprint: inst.Fingerprint().String(),
					Solver:      name,
					Makespan:    ev.Makespan,
					Wasted:      ev.Wasted,
				})
			}
		}
	}
	sort.Slice(out.Entries, func(i, j int) bool {
		return goldenKey(out.Entries[i]) < goldenKey(out.Entries[j])
	})
	return out
}

// TestGoldenCorpus is the behavioural-drift gate of `go test ./...`: every
// deterministic solver's makespan and waste on the golden corpus must match
// the checked-in fixtures. Run with -update after an intended behaviour
// change to regenerate them.
func TestGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus solve is not short")
	}
	got := computeGolden(t)
	if len(got.Entries) == 0 {
		t.Fatal("golden corpus produced no observations")
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath, len(got.Entries))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading fixtures (regenerate with -update): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if want.Seed != goldenSeed {
		t.Fatalf("fixture seed %d, test expects %d", want.Seed, goldenSeed)
	}

	wantByKey := make(map[string]goldenEntry, len(want.Entries))
	for _, e := range want.Entries {
		wantByKey[goldenKey(e)] = e
	}
	gotByKey := make(map[string]goldenEntry, len(got.Entries))
	for _, e := range got.Entries {
		gotByKey[goldenKey(e)] = e
	}

	for key, w := range wantByKey {
		g, ok := gotByKey[key]
		if !ok {
			t.Errorf("%s: solver no longer produces a result (fixture has makespan=%d)", key, w.Makespan)
			continue
		}
		if g.Fingerprint != w.Fingerprint {
			t.Errorf("%s: corpus drifted — fingerprint %s, fixture %s", key, g.Fingerprint, w.Fingerprint)
			continue
		}
		if g.Makespan != w.Makespan {
			t.Errorf("%s: makespan drifted from %d to %d (run with -update if intended)", key, w.Makespan, g.Makespan)
		}
		if math.Abs(g.Wasted-w.Wasted) > wasteTolerance {
			t.Errorf("%s: waste drifted from %.12f to %.12f (run with -update if intended)", key, w.Wasted, g.Wasted)
		}
	}
	for key := range gotByKey {
		if _, ok := wantByKey[key]; !ok {
			t.Errorf("%s: new observation not in fixtures (run with -update if intended)", key)
		}
	}
}
