package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// testRecording builds a small recording straight from the corpus, one entry
// per class, covering tenants and multi-instance (batch) payloads.
func testRecording(t testing.TB) *Recording {
	t.Helper()
	items := BuildCorpus(7).Items()
	if len(items) < 8 {
		t.Fatalf("corpus too small: %d items", len(items))
	}
	rec := NewRecorder()
	rec.arrive(0, ClassSolve, "", items[0:1])
	rec.arrive(3*time.Millisecond, ClassBatch, "gold", items[1:5])
	rec.arrive(5*time.Millisecond, ClassJobs, "free", items[5:6])
	rec.arrive(9*time.Millisecond, ClassSolve, "gold", items[6:7])
	rec.finish(0, OutcomeOK)
	rec.finish(1, OutcomeOK)
	rec.finish(2, OutcomeCancelled)
	rec.finish(3, OutcomeShed)
	return rec.Recording(7)
}

// TestRecordRoundTrip pins the codec contract: encode → decode → re-encode is
// byte-identical and the decoded recording matches the original entry for
// entry.
func TestRecordRoundTrip(t *testing.T) {
	rec := testRecording(t)
	data, err := rec.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRecording(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Seed != rec.Seed {
		t.Fatalf("decoded seed %d, want %d", dec.Seed, rec.Seed)
	}
	if len(dec.Entries) != len(rec.Entries) {
		t.Fatalf("decoded %d entries, want %d", len(dec.Entries), len(rec.Entries))
	}
	for i, e := range dec.Entries {
		orig := rec.Entries[i]
		if e.Seq != orig.Seq || e.OffsetNS != orig.OffsetNS || e.Class != orig.Class ||
			e.Tenant != orig.Tenant || e.Outcome != orig.Outcome {
			t.Fatalf("entry %d decoded as %+v, want %+v", i, e, orig)
		}
		for j, fp := range e.Fingerprints {
			if fp != orig.Fingerprints[j] {
				t.Fatalf("entry %d fingerprint %d changed across round trip", i, j)
			}
		}
	}
	again, err := dec.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("encode → decode → encode is not byte-identical")
	}
}

// TestRecordFileRoundTrip covers the WriteFile/LoadRecording path and the
// path-carrying error wrapping.
func TestRecordFileRoundTrip(t *testing.T) {
	rec := testRecording(t)
	path := t.TempDir() + "/run.jsonl"
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	dec, err := LoadRecording(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Entries) != len(rec.Entries) {
		t.Fatalf("loaded %d entries, want %d", len(dec.Entries), len(rec.Entries))
	}
	if _, err := LoadRecording(path + ".missing"); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// TestDecodeRejectsUnknownVersion checks a future version is refused
// outright, not misparsed.
func TestDecodeRejectsUnknownVersion(t *testing.T) {
	data := fmt.Sprintf("{\"crload_recording\":%q,\"version\":%d,\"seed\":1}\n", recordKind, RecordVersion+1)
	_, err := DecodeRecording(strings.NewReader(data))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown version not refused: %v", err)
	}
}

// TestDecodeRejectsForeignFile checks an arbitrary JSONL file is rejected at
// the header, before any entry parsing.
func TestDecodeRejectsForeignFile(t *testing.T) {
	for _, data := range []string{
		"",
		"{\"requests\": 12}\n",
		"not json at all\n",
	} {
		if _, err := DecodeRecording(strings.NewReader(data)); err == nil {
			t.Fatalf("foreign input %q decoded as a recording", data)
		}
	}
}

// TestDecodeRejectsCorruptLines checks every corruption mode is rejected with
// the 1-based line number it occurred on.
func TestDecodeRejectsCorruptLines(t *testing.T) {
	rec := testRecording(t)
	data, err := rec.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines = lines[:len(lines)-1] // drop the empty tail after the final newline

	t.Run("corrupt json", func(t *testing.T) {
		mut := append([]string(nil), lines...)
		mut[2] = "{\"seq\": 1, \"class\": \n"
		_, err := DecodeRecording(strings.NewReader(strings.Join(mut, "")))
		if err == nil || !strings.Contains(err.Error(), "line 3") {
			t.Fatalf("corrupt line 3 not reported by line number: %v", err)
		}
	})
	t.Run("truncated last line", func(t *testing.T) {
		trunc := strings.Join(lines, "")
		trunc = trunc[:len(trunc)-1] // strip the final newline mid-entry
		_, err := DecodeRecording(strings.NewReader(trunc))
		want := fmt.Sprintf("line %d", len(lines))
		if err == nil || !strings.Contains(err.Error(), "truncated") || !strings.Contains(err.Error(), want) {
			t.Fatalf("truncated %s not reported: %v", want, err)
		}
	})
	t.Run("non-dense seq", func(t *testing.T) {
		mut := append([]string(nil), lines...)
		mut[1], mut[2] = mut[2], mut[1]
		_, err := DecodeRecording(strings.NewReader(strings.Join(mut, "")))
		if err == nil || !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("out-of-order seq not reported on line 2: %v", err)
		}
	})
	t.Run("tampered payload", func(t *testing.T) {
		// Bump a requirement inside the payload without touching the recorded
		// fingerprint: the re-hash on decode must catch it.
		const was = "\"procs\":[[{\"req\":0."
		if !strings.Contains(lines[1], was) {
			t.Fatalf("entry line does not carry the expected payload shape: %s", lines[1])
		}
		mut := append([]string(nil), lines...)
		mut[1] = strings.Replace(lines[1], was, "\"procs\":[[{\"req\":0.9", 1)
		_, err := DecodeRecording(strings.NewReader(strings.Join(mut, "")))
		if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "fingerprint") {
			t.Fatalf("tampered payload not caught by fingerprint check: %v", err)
		}
	})
}

// TestRecordingShard checks Seq-modulo sharding partitions the entries: the
// shards are disjoint, their union is the original schedule, offsets survive.
func TestRecordingShard(t *testing.T) {
	rec := testRecording(t)
	const shards = 3
	seen := make(map[int]int)
	for s := 0; s < shards; s++ {
		part := rec.Shard(s, shards)
		if part.Seed != rec.Seed {
			t.Fatalf("shard %d dropped the seed", s)
		}
		for _, e := range part.Entries {
			if e.Seq%shards != s {
				t.Fatalf("entry %d landed in shard %d", e.Seq, s)
			}
			seen[e.Seq]++
			if rec.Entries[e.Seq].OffsetNS != e.OffsetNS {
				t.Fatalf("entry %d offset changed across sharding", e.Seq)
			}
		}
	}
	if len(seen) != len(rec.Entries) {
		t.Fatalf("shards cover %d of %d entries", len(seen), len(rec.Entries))
	}
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("entry %d appears in %d shards", seq, n)
		}
	}
}

// FuzzRecordRoundTrip fuzzes the decoder with arbitrary bytes: any input that
// decodes must re-encode byte-identically after one canonical encode →
// decode cycle, and the decoder must never panic on garbage.
func FuzzRecordRoundTrip(f *testing.F) {
	rec := testRecording(f)
	data, err := rec.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte("{\"crload_recording\":\"crload-recording\",\"version\":1,\"seed\":0}\n"))
	f.Add([]byte("{\"crload_recording\":\"crload-recording\",\"version\":2,\"seed\":0}\n"))
	f.Add([]byte(""))
	f.Add([]byte("garbage\n"))
	f.Fuzz(func(t *testing.T, in []byte) {
		dec, err := DecodeRecording(bytes.NewReader(in))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		first, err := dec.Bytes()
		if err != nil {
			t.Fatalf("decoded recording does not re-encode: %v", err)
		}
		second, err := DecodeRecording(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		again, err := second.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatal("encode → decode → encode is not a fixed point")
		}
	})
}
