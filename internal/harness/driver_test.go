package harness

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crsharing/internal/engine"
)

// newHarnessServer wires the full stack — one shared engine, job manager,
// HTTP layer — behind an httptest listener, defaulting to the fast
// deterministic greedy-balance solver so driver tests stay quick under
// -race.
func newHarnessServer(t *testing.T) *Stack {
	t.Helper()
	stack, err := NewStack(StackConfig{
		DefaultSolver:     "greedy-balance",
		MaxConcurrent:     32,
		Workers:           2,
		QueueDepth:        256,
		JobDefaultTimeout: 10 * time.Second,
		JobMaxTimeout:     30 * time.Second,
		Version:           "harness-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := stack.Close(); err != nil {
			t.Errorf("stack close: %v", err)
		}
	})
	return stack
}

// TestDriverEndToEnd replays a short mixed load against the in-process stack
// and asserts the acceptance contract: every class sees traffic, every
// schedule revalidates with zero violations, and the duplicate-heavy corpus
// produces cache hits.
func TestDriverEndToEnd(t *testing.T) {
	stack := newHarnessServer(t)
	d, err := NewDriver(Config{
		BaseURL:  stack.URL,
		Corpus:   BuildCorpus(1),
		Mix:      Mix{Solve: 6, Batch: 2, Jobs: 2},
		Rate:     400,
		Duration: 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if rep.Requests == 0 {
		t.Fatal("driver completed no requests")
	}
	if rep.ViolationCount != 0 || len(rep.Violations) != 0 {
		t.Fatalf("invariant violations (%d): %v", rep.ViolationCount, rep.Violations)
	}
	if rep.Validated == 0 {
		t.Fatal("oracle validated nothing")
	}
	for _, class := range []string{ClassSolve, ClassBatch, ClassJobs} {
		cs := rep.Classes[class]
		if cs == nil || cs.Requests == 0 {
			t.Errorf("class %s saw no traffic: %+v", class, cs)
			continue
		}
		if cs.Errors != 0 {
			t.Errorf("class %s reported errors: %+v (samples %v)", class, cs, cs.ErrorSamples)
		}
		if cs.Latency.Count == 0 || cs.Latency.P50MS < 0 || cs.Latency.P99MS < cs.Latency.P50MS {
			t.Errorf("class %s latency summary is inconsistent: %+v", class, cs.Latency)
		}
		// Every class aggregates the engine telemetry of its solves, so load
		// runs double as solver-behaviour regressions.
		total := 0
		for _, n := range cs.Telemetry.Sources {
			total += n
		}
		if total == 0 {
			t.Errorf("class %s aggregated no telemetry sources: %+v", class, cs.Telemetry)
		}
	}
	// The duplicate-heavy corpus must surface non-solve sources somewhere.
	served := 0
	for _, class := range []string{ClassSolve, ClassBatch, ClassJobs} {
		cs := rep.Classes[class]
		served += cs.Telemetry.Sources["cache"] + cs.Telemetry.Sources["coalesced"]
	}
	if served == 0 {
		t.Error("per-class telemetry recorded no cache-served results")
	}
	if rep.Cache.CacheServed == 0 {
		t.Error("replay of a duplicate-heavy corpus produced no cache hits")
	}
	if rep.Cache.HitRatio <= 0 || rep.Cache.HitRatio > 1 {
		t.Errorf("cache hit ratio %v outside (0, 1]", rep.Cache.HitRatio)
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput %v not positive", rep.Throughput)
	}
	if txt := rep.Text(); txt == "" {
		t.Error("empty text report")
	}
	if data, err := rep.JSON(); err != nil || len(data) == 0 {
		t.Errorf("JSON report: %v", err)
	}
}

// TestDriverCountsServerErrors drives a server whose solve endpoint always
// fails and checks errors are attributed, not dropped.
func TestDriverCountsServerErrors(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {})
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	d, err := NewDriver(Config{
		BaseURL:  ts.URL,
		Corpus:   BuildCorpus(1),
		Mix:      Mix{Solve: 1},
		Rate:     300,
		Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cs := rep.Classes[ClassSolve]
	if cs.Requests == 0 || cs.Errors != cs.Requests {
		t.Fatalf("want every request counted as an error, got %+v", cs)
	}
	if len(cs.ErrorSamples) == 0 {
		t.Fatal("no error samples recorded")
	}
}

// TestDriverPerTenantAccounting runs a two-tenant load and checks the
// per-tenant slices are complete: every request lands in exactly one tenant
// bucket, so the tenant sums reproduce the global and per-class totals.
func TestDriverPerTenantAccounting(t *testing.T) {
	stack, err := NewStack(StackConfig{
		DefaultSolver: "greedy-balance",
		MaxConcurrent: 32,
		Workers:       2,
		QueueDepth:    256,
		Tenants: map[string]engine.TenantConfig{
			"gold": {Weight: 3},
			"free": {Weight: 1},
		},
		JobDefaultTimeout: 10 * time.Second,
		JobMaxTimeout:     30 * time.Second,
		Version:           "harness-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := stack.Close(); err != nil {
			t.Errorf("stack close: %v", err)
		}
	})
	d, err := NewDriver(Config{
		BaseURL: stack.URL,
		Corpus:  BuildCorpus(1),
		Mix:     Mix{Solve: 6, Batch: 2, Jobs: 2},
		Tenants: []TenantLoad{
			{Name: "gold", Weight: 3, Rate: 250},
			{Name: "free", Weight: 1, Rate: 150},
		},
		Duration: 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.Tenants) != 2 || rep.Tenants["gold"] == nil || rep.Tenants["free"] == nil {
		t.Fatalf("tenant buckets wrong: %v", rep.Tenants)
	}
	var sum TenantStats
	for name, ts := range rep.Tenants {
		if ts.Requests == 0 {
			t.Errorf("tenant %s saw no traffic", name)
		}
		if ts.Latency.Count == 0 {
			t.Errorf("tenant %s has no latency summary", name)
		}
		sum.Requests += ts.Requests
		sum.Errors += ts.Errors
		sum.Shed += ts.Shed
		sum.Cancelled += ts.Cancelled
		sum.CacheServed += ts.CacheServed
	}
	var classes ClassStats
	for _, cs := range rep.Classes {
		classes.Requests += cs.Requests
		classes.Errors += cs.Errors
		classes.Shed += cs.Shed
		classes.Cancelled += cs.Cancelled
		classes.CacheServed += cs.CacheServed
	}
	if sum.Requests != rep.Requests || sum.Requests != classes.Requests {
		t.Errorf("tenant requests %d, global %d, classes %d — must all agree",
			sum.Requests, rep.Requests, classes.Requests)
	}
	if sum.Errors != classes.Errors {
		t.Errorf("tenant errors %d != class errors %d", sum.Errors, classes.Errors)
	}
	if sum.Shed != rep.ServerShed || sum.Shed != classes.Shed {
		t.Errorf("tenant sheds %d, server-shed %d, class sheds %d — must all agree",
			sum.Shed, rep.ServerShed, classes.Shed)
	}
	if sum.Cancelled != classes.Cancelled {
		t.Errorf("tenant cancelled %d != class cancelled %d", sum.Cancelled, classes.Cancelled)
	}
	if sum.CacheServed != classes.CacheServed {
		t.Errorf("tenant cache-served %d != class cache-served %d", sum.CacheServed, classes.CacheServed)
	}
	if rep.ViolationCount != 0 {
		t.Errorf("invariant violations: %v", rep.Violations)
	}
	// Both tenants replay the shared duplicate-heavy corpus, so their solves
	// must fold engine telemetry like the class aggregates do.
	for name, ts := range rep.Tenants {
		total := 0
		for _, n := range ts.Telemetry.Sources {
			total += n
		}
		if total == 0 {
			t.Errorf("tenant %s aggregated no telemetry sources: %+v", name, ts.Telemetry)
		}
	}
	if txt := rep.Text(); !strings.Contains(txt, "gold") || !strings.Contains(txt, "free") {
		t.Error("text report omits the per-tenant block")
	}
}

func TestParseTenantLoads(t *testing.T) {
	got, err := ParseTenantLoads("gold:3:80, free:1:40 ,plain")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantLoad{
		{Name: "gold", Weight: 3, Rate: 80},
		{Name: "free", Weight: 1, Rate: 40},
		{Name: "plain", Weight: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("ParseTenantLoads = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", ":3", "a:0", "a:x", "a:1:0", "a:1:x", "a:1:2:3", "dup:1,dup:2"} {
		if _, err := ParseTenantLoads(bad); err == nil {
			t.Fatalf("ParseTenantLoads(%q) accepted", bad)
		}
	}
}

func TestParseMix(t *testing.T) {
	cases := []struct {
		in      string
		want    Mix
		wantErr bool
	}{
		{"", DefaultMix(), false},
		{"solve=8,batch=1,jobs=1", Mix{Solve: 8, Batch: 1, Jobs: 1}, false},
		{"solve=1", Mix{Solve: 1}, false},
		{" jobs=3 , solve=2 ", Mix{Solve: 2, Jobs: 3}, false},
		{"solve=0,batch=0,jobs=0", Mix{}, true},
		{"warp=1", Mix{}, true},
		{"solve=-1", Mix{}, true},
		{"solve", Mix{}, true},
	}
	for _, tc := range cases {
		got, err := ParseMix(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseMix(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMix(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseMix(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestScrapeMetrics(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("# HELP x y\n# TYPE x counter\nx 3\nlabelled{a=\"b\"} 9\nmalformed\ny 1.5\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	snap, err := ScrapeMetrics(ts.Client(), ts.URL+"/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if snap["x"] != 3 || snap["y"] != 1.5 {
		t.Fatalf("snapshot %v", snap)
	}
	if _, ok := snap[`labelled{a="b"}`]; ok {
		t.Fatal("labelled sample should be skipped")
	}

	delta := MetricsSnapshot{"x": 1}.Delta(MetricsSnapshot{"x": 4, "z": 2})
	if delta["x"] != 3 || delta["z"] != 2 {
		t.Fatalf("delta %v", delta)
	}
	acc := MetricsSnapshot{
		"crsharing_solves_total":       2,
		"crsharing_cache_served_total": 6,
	}.Cache()
	if acc.HitRatio != 0.75 || acc.FreshSolves != 2 || acc.CacheServed != 6 {
		t.Fatalf("cache accounting %+v", acc)
	}
}
