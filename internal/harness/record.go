package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"crsharing/internal/core"
)

// RecordVersion is the current on-disk version of a crload recording. Decode
// refuses any other version instead of misparsing it.
const RecordVersion = 1

// recordKind is the header magic that distinguishes a recording from any
// other JSONL file handed to -replay by mistake.
const recordKind = "crload-recording"

// Request outcomes stored in a recording entry.
const (
	OutcomeOK         = "ok"
	OutcomeError      = "error"
	OutcomeShed       = "shed"        // refused by the server over quota (429)
	OutcomeDriverShed = "driver-shed" // never issued: the driver's inflight cap was full
	OutcomeCancelled  = "cancelled"
)

// Entry is one recorded arrival: when it arrived relative to the run start,
// what it asked for (class, tenant, the full instance payloads with their
// canonical fingerprints) and how it ended. Replaying an entry re-issues the
// identical request at the identical offset; the recorded outcome is kept for
// run-to-run comparison, not re-imposed.
type Entry struct {
	// Seq is the arrival index within the run (dense from 0). Sharded replay
	// partitions entries by Seq modulo the shard count.
	Seq int `json:"seq"`
	// OffsetNS is the arrival time relative to the run start, in nanoseconds.
	OffsetNS int64 `json:"offset_ns"`
	// Class is the request class (solve, batch, jobs or online).
	Class string `json:"class"`
	// Tenant is the X-Tenant identity the request carried (empty = anonymous).
	Tenant string `json:"tenant,omitempty"`
	// Families and Fingerprints attribute each instance (parallel to
	// Instances); fingerprints are re-verified on decode so a corrupted
	// payload cannot masquerade as the recorded request.
	Families     []string `json:"families"`
	Fingerprints []string `json:"fingerprints"`
	// Instances is the full request payload: one instance for solve and jobs,
	// the batch window for batch.
	Instances []*core.Instance `json:"instances"`
	// Outcome is how the recorded request ended (ok, error, shed,
	// driver-shed, cancelled).
	Outcome string `json:"outcome,omitempty"`
}

// items converts the entry payload back into the driver's corpus items.
func (e *Entry) items() []Item {
	out := make([]Item, len(e.Instances))
	for i, inst := range e.Instances {
		out[i] = Item{Family: e.Families[i], Inst: inst}
	}
	return out
}

// Recording is a decoded replay log: the seed of the corpus the run replayed
// and every arrival in Seq order.
type Recording struct {
	Seed    int64
	Entries []Entry
}

// recordHeader is the first JSONL line of a recording.
type recordHeader struct {
	Kind    string `json:"crload_recording"`
	Version int    `json:"version"`
	Seed    int64  `json:"seed"`
}

// Encode writes the recording as versioned JSONL: one header line, then one
// line per entry in Seq order. Encoding is deterministic — encode → decode →
// encode is byte-identical, which FuzzRecordRoundTrip pins.
func (r *Recording) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(recordHeader{Kind: recordKind, Version: RecordVersion, Seed: r.Seed})
	if err != nil {
		return err
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	for i := range r.Entries {
		line, err := json.Marshal(&r.Entries[i])
		if err != nil {
			return fmt.Errorf("harness: encoding entry %d: %w", i, err)
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Bytes is Encode into memory.
func (r *Recording) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile encodes the recording to path.
func (r *Recording) WriteFile(path string) error {
	data, err := r.Bytes()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// DecodeRecording parses a versioned JSONL recording. Errors carry the
// 1-based line number: corrupt JSON, truncated lines (no trailing newline),
// inconsistent entries and payloads whose fingerprints do not match are all
// rejected rather than replayed wrong; an unknown version is refused, not
// misparsed.
func DecodeRecording(r io.Reader) (*Recording, error) {
	br := bufio.NewReader(r)
	readLine := func(n int) (string, error) {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			if line != "" {
				return "", fmt.Errorf("harness: recording line %d: truncated (no trailing newline)", n)
			}
			return "", io.EOF
		}
		if err != nil {
			return "", fmt.Errorf("harness: recording line %d: %w", n, err)
		}
		return line[:len(line)-1], nil
	}

	hdrLine, err := readLine(1)
	if err == io.EOF {
		return nil, errors.New("harness: recording is empty")
	}
	if err != nil {
		return nil, err
	}
	var hdr recordHeader
	if err := json.Unmarshal([]byte(hdrLine), &hdr); err != nil || hdr.Kind != recordKind {
		return nil, errors.New("harness: recording line 1: not a crload recording header")
	}
	if hdr.Version != RecordVersion {
		return nil, fmt.Errorf("harness: recording version %d not supported (want %d)", hdr.Version, RecordVersion)
	}

	rec := &Recording{Seed: hdr.Seed}
	for n := 2; ; n++ {
		line, err := readLine(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("harness: recording line %d: corrupt entry: %v", n, err)
		}
		if err := e.validate(len(rec.Entries)); err != nil {
			return nil, fmt.Errorf("harness: recording line %d: %w", n, err)
		}
		rec.Entries = append(rec.Entries, e)
	}
	return rec, nil
}

// validate checks one decoded entry's internal consistency, including that
// each payload hashes to its recorded fingerprint.
func (e *Entry) validate(wantSeq int) error {
	if e.Seq != wantSeq {
		return fmt.Errorf("entry seq %d, want dense %d", e.Seq, wantSeq)
	}
	if e.OffsetNS < 0 {
		return fmt.Errorf("negative arrival offset %d", e.OffsetNS)
	}
	switch e.Class {
	case ClassSolve, ClassBatch, ClassJobs, ClassOnline:
	default:
		return fmt.Errorf("unknown class %q", e.Class)
	}
	if len(e.Instances) == 0 {
		return errors.New("entry carries no instances")
	}
	if len(e.Families) != len(e.Instances) || len(e.Fingerprints) != len(e.Instances) {
		return fmt.Errorf("entry has %d instances but %d families / %d fingerprints",
			len(e.Instances), len(e.Families), len(e.Fingerprints))
	}
	for i, inst := range e.Instances {
		if inst == nil {
			return fmt.Errorf("instance %d is null", i)
		}
		if err := inst.Validate(); err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
		if fp := inst.Fingerprint().String(); fp != e.Fingerprints[i] {
			return fmt.Errorf("instance %d fingerprint %s does not match recorded %s (payload corrupted?)",
				i, fp, e.Fingerprints[i])
		}
	}
	return nil
}

// LoadRecording reads and decodes a recording file.
func LoadRecording(path string) (*Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec, err := DecodeRecording(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// Shard returns the slice of the recording a replay shard re-issues: the
// entries with Seq ≡ shard (mod of), offsets preserved, so the union of all
// shards is exactly the original arrival schedule.
func (r *Recording) Shard(shard, of int) *Recording {
	out := &Recording{Seed: r.Seed}
	for _, e := range r.Entries {
		if e.Seq%of == shard {
			out.Entries = append(out.Entries, e)
		}
	}
	return out
}

// Recorder captures a driver run's arrivals as they happen; Recording()
// snapshots them into a replayable log. It is safe for concurrent use — the
// driver calls it from every arrival loop and request goroutine.
type Recorder struct {
	mu      sync.Mutex
	entries []Entry
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// arrive books one arrival and returns its Seq for the later outcome.
func (r *Recorder) arrive(offset time.Duration, class, tenant string, items []Item) int {
	e := Entry{
		OffsetNS:     int64(offset),
		Class:        class,
		Tenant:       tenant,
		Families:     make([]string, len(items)),
		Fingerprints: make([]string, len(items)),
		Instances:    make([]*core.Instance, len(items)),
	}
	for i, it := range items {
		e.Families[i] = it.Family
		e.Fingerprints[i] = it.Inst.Fingerprint().String()
		e.Instances[i] = it.Inst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Seq = len(r.entries)
	r.entries = append(r.entries, e)
	return e.Seq
}

// finish records how the request with the given Seq ended.
func (r *Recorder) finish(seq int, outcome string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq >= 0 && seq < len(r.entries) {
		r.entries[seq].Outcome = outcome
	}
}

// Len returns the number of recorded arrivals so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Recording snapshots the captured arrivals into a replayable log for the
// given corpus seed. Entries are sorted by arrival offset (Seq breaks ties)
// and renumbered densely: N concurrent driver shards book arrivals into one
// Recorder in lock-acquisition order, which is NOT offset order, and
// replayArrivals walks entries in slice order — without the sort, a sharded
// capture would replay out-of-order offsets as an immediate burst. After the
// renumber, Seq is both the replay order and the Recording.Shard split key,
// and decode's dense-Seq check holds.
func (r *Recorder) Recording(seed int64) *Recording {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries := append([]Entry(nil), r.entries...)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].OffsetNS != entries[j].OffsetNS {
			return entries[i].OffsetNS < entries[j].OffsetNS
		}
		return entries[i].Seq < entries[j].Seq
	})
	for i := range entries {
		entries[i].Seq = i
	}
	return &Recording{Seed: seed, Entries: entries}
}
