package harness

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestRecordingSortsShardedCapture is the deterministic half of the
// sharded-recording bugfix: N driver shards book arrivals into one Recorder
// in lock-acquisition order, which is NOT offset order. Recording() must sort
// by offset (Seq breaking ties, preserving booking order) and renumber Seq
// densely, or replaying the capture re-issues the out-of-order offsets as an
// immediate burst and decode's dense-Seq check fails.
func TestRecordingSortsShardedCapture(t *testing.T) {
	items := BuildCorpus(3).Items()[:1]
	rec := NewRecorder()
	// The interleaving two concurrent shards would produce: out-of-order
	// offsets, including a tie (both shards booked an arrival at 10ms).
	offsets := []time.Duration{
		30 * time.Millisecond,
		10 * time.Millisecond,
		20 * time.Millisecond,
		10 * time.Millisecond,
	}
	for _, off := range offsets {
		rec.arrive(off, ClassSolve, "", items)
	}
	recording := rec.Recording(3)

	wantOffsets := []int64{
		int64(10 * time.Millisecond), // booked second
		int64(10 * time.Millisecond), // booked fourth: the tie keeps booking order
		int64(20 * time.Millisecond),
		int64(30 * time.Millisecond),
	}
	for i, e := range recording.Entries {
		if e.Seq != i {
			t.Errorf("entry %d has Seq %d, want dense renumbering", i, e.Seq)
		}
		if e.OffsetNS != wantOffsets[i] {
			t.Errorf("entry %d offset = %dns, want %dns (sorted by arrival)", i, e.OffsetNS, wantOffsets[i])
		}
	}
	// The sorted capture survives the decoder's dense-Seq validation.
	data, err := recording.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRecording(bytes.NewReader(data)); err != nil {
		t.Fatalf("sorted sharded capture does not decode: %v", err)
	}
	// The snapshot did not disturb the live recorder: outcomes still attach
	// to the original booking sequence.
	rec.finish(0, OutcomeOK)
	if got := rec.Recording(3).Entries[3].Outcome; got != OutcomeOK {
		t.Errorf("outcome for booking Seq 0 (offset 30ms, sorted last) = %q, want %q", got, OutcomeOK)
	}
}

// TestShardedRecordReplaysMonotone is the end-to-end regression for the
// sharded-recording bug: record through a 4-shard fleet (whose shards
// interleave arrivals into the shared recorder out of offset order), then
// replay the capture on ONE shard and assert the replay re-issues a monotone
// schedule identical to the recording request-for-request.
func TestShardedRecordReplaysMonotone(t *testing.T) {
	stack := newHarnessServer(t)
	rec := NewRecorder()
	rep, err := RunFleet(context.Background(), Config{
		BaseURL:  stack.URL,
		Corpus:   BuildCorpus(17),
		Mix:      Mix{Solve: 1},
		Rate:     400,
		Duration: 400 * time.Millisecond,
		Recorder: rec,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationCount != 0 {
		t.Fatalf("recorded fleet run had violations: %v", rep.Violations)
	}
	recording := rec.Recording(17)
	if len(recording.Entries) < 8 {
		t.Fatalf("fleet captured only %d arrivals", len(recording.Entries))
	}
	for i := range recording.Entries {
		if recording.Entries[i].Seq != i {
			t.Fatalf("entry %d has Seq %d, want dense", i, recording.Entries[i].Seq)
		}
		if i > 0 && recording.Entries[i].OffsetNS < recording.Entries[i-1].OffsetNS {
			t.Fatalf("capture is not offset-sorted at entry %d (%d < %d)",
				i, recording.Entries[i].OffsetNS, recording.Entries[i-1].OffsetNS)
		}
	}

	replayed, replayRep := replayOnce(t, stack, recording)
	sameSequence(t, recording, replayed)
	for i := 1; i < len(replayed.Entries); i++ {
		if replayed.Entries[i].OffsetNS < replayed.Entries[i-1].OffsetNS {
			t.Fatalf("replay re-issued a non-monotone schedule at entry %d", i)
		}
	}
	if replayRep.ViolationCount != 0 {
		t.Fatalf("replay had violations: %v", replayRep.Violations)
	}
	// The replay report states the recording-derived offered rate, not the
	// (ignored) cfg.Rate default.
	var maxOff int64
	for i := range recording.Entries {
		if off := recording.Entries[i].OffsetNS; off > maxOff {
			maxOff = off
		}
	}
	want := float64(len(recording.Entries)) / (time.Duration(float64(maxOff) / 50).Seconds())
	if got := replayRep.RatePerSec; got < want*0.99 || got > want*1.01 {
		t.Errorf("replay RatePerSec = %g, want the recording-derived %g", got, want)
	}
}

// TestOfferedRate pins the offered-load accounting: a multi-tenant run offers
// the SUM of the tenant rates (zero-rate tenants fall back to the global
// rate), a replay offers the recording-derived rate scaled by ReplaySpeed,
// and a plain run offers cfg.Rate.
func TestOfferedRate(t *testing.T) {
	corpus := BuildCorpus(1)

	plain, err := NewDriver(Config{BaseURL: "http://unused", Corpus: corpus, Rate: 123})
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.offeredRate(time.Second); got != 123 {
		t.Errorf("plain offered rate = %g, want 123", got)
	}

	tenants, err := NewDriver(Config{
		BaseURL: "http://unused", Corpus: corpus, Rate: 40,
		Tenants: []TenantLoad{{Name: "gold", Rate: 150}, {Name: "free"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tenants.offeredRate(time.Second); got != 190 {
		t.Errorf("tenant offered rate = %g, want 150+40=190 (zero-rate tenant uses the global rate)", got)
	}

	// 101 arrivals spread over 1s of recorded time, replayed 2x compressed:
	// the offered rate is 101 requests / 0.5s.
	rec := &Recording{Seed: 1}
	for i := 0; i <= 100; i++ {
		rec.Entries = append(rec.Entries, Entry{Seq: i, OffsetNS: int64(i) * int64(10*time.Millisecond)})
	}
	replay, err := NewDriver(Config{BaseURL: "http://unused", Replay: rec, ReplaySpeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := replay.offeredRate(0), 202.0; got != want {
		t.Errorf("replay offered rate = %g, want %g", got, want)
	}

	// A recording with all-zero offsets falls back to the run's wall time.
	burst := &Recording{Seed: 1, Entries: []Entry{{}, {Seq: 1}, {Seq: 2}, {Seq: 3}}}
	bd, err := NewDriver(Config{BaseURL: "http://unused", Replay: burst})
	if err != nil {
		t.Fatal(err)
	}
	if got := bd.offeredRate(2 * time.Second); got != 2 {
		t.Errorf("burst replay offered rate = %g, want 4 entries / 2s = 2", got)
	}
}
