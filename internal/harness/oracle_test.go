package harness

import (
	"strings"
	"testing"

	"crsharing/internal/algo/greedybalance"
	"crsharing/internal/core"
)

func solveWithGreedy(t *testing.T, inst *core.Instance) *core.Schedule {
	t.Helper()
	sched, err := greedybalance.New().Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func TestOracleAcceptsValidSchedule(t *testing.T) {
	o := NewOracle()
	inst := core.NewInstance([]float64{0.3, 0.7}, []float64{0.5, 0.5})
	sched := solveWithGreedy(t, inst)
	res, err := core.Execute(inst, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.CheckSchedule("ok", inst, sched, res.Makespan(), res.Wasted()); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if o.Validated() != 1 || len(o.Violations()) != 0 {
		t.Fatalf("validated=%d violations=%v", o.Validated(), o.Violations())
	}
	props := o.Properties()
	if props["non-wasting"] == 0 {
		t.Errorf("greedy-balance schedule should count as non-wasting, got %v", props)
	}
}

func TestOracleFlagsViolations(t *testing.T) {
	inst := core.NewInstance([]float64{0.3, 0.7}, []float64{0.5, 0.5})
	sched := solveWithGreedy(t, inst)
	res, err := core.Execute(inst, sched)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		sched    *core.Schedule
		makespan int
		wasted   float64
		want     string
	}{
		{"missing schedule", nil, -1, -1, "no schedule"},
		{"wrong makespan claim", sched, res.Makespan() + 1, -1, "claims makespan"},
		{"wrong waste claim", sched, res.Makespan(), res.Wasted() + 0.5, "claims waste"},
		{"unfinished schedule", core.NewSchedule(1, 2), -1, -1, "unfinished"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := NewOracle()
			err := o.CheckSchedule(tc.name, inst, tc.sched, tc.makespan, tc.wasted)
			if err == nil {
				t.Fatal("oracle accepted the corrupted response")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("violation %q does not mention %q", err, tc.want)
			}
			if len(o.Violations()) != 1 {
				t.Fatalf("violations=%v", o.Violations())
			}
		})
	}
}

// TestOracleViolationTruncation checks the recorded messages saturate at
// the cap with a sentinel while the count keeps growing.
func TestOracleViolationTruncation(t *testing.T) {
	o := NewOracle()
	inst := core.NewInstance([]float64{1, 1}, []float64{1})
	const total = maxRecordedViolations + 8
	for i := 0; i < total; i++ {
		if err := o.CheckMakespan("impossible", inst, 1); err == nil {
			t.Fatal("oracle accepted a makespan below the lower bound")
		}
	}
	if o.ViolationCount() != total {
		t.Fatalf("ViolationCount=%d, want %d", o.ViolationCount(), total)
	}
	msgs := o.Violations()
	if len(msgs) != maxRecordedViolations {
		t.Fatalf("recorded %d messages, want cap %d", len(msgs), maxRecordedViolations)
	}
	if !strings.Contains(msgs[len(msgs)-1], "further violations truncated") {
		t.Fatalf("last message %q is not the truncation sentinel", msgs[len(msgs)-1])
	}
}

func TestOracleCheckMakespan(t *testing.T) {
	o := NewOracle()
	inst := core.NewInstance([]float64{1, 1}, []float64{1})
	// Three unit jobs of requirement 1 cannot finish in one step.
	if err := o.CheckMakespan("impossible", inst, 1); err == nil {
		t.Fatal("oracle accepted a makespan below the lower bound")
	}
	if err := o.CheckMakespan("fine", inst, 3); err != nil {
		t.Fatalf("oracle rejected a feasible makespan: %v", err)
	}
	if o.Validated() != 2 || len(o.Violations()) != 1 {
		t.Fatalf("validated=%d violations=%v", o.Validated(), o.Violations())
	}
}
