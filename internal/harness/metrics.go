package harness

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// MetricsSnapshot is a parsed /metrics scrape: sample name to value. Only
// un-labelled samples are kept, which covers every metric the service
// exposes.
type MetricsSnapshot map[string]float64

// ScrapeMetrics fetches and parses the Prometheus text exposition at url
// (typically <base>/metrics).
func ScrapeMetrics(client *http.Client, url string) (MetricsSnapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("harness: scraping %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("harness: scraping %s: status %s", url, resp.Status)
	}
	snap := make(MetricsSnapshot)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.Contains(fields[0], "{") {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		snap[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("harness: scraping %s: %w", url, err)
	}
	return snap, nil
}

// scrapeAll scrapes every URL and sums the samples into one snapshot. All the
// series the harness reads are counters, so summing before-snapshots and
// summing after-snapshots makes Delta the fleet-wide movement — this is how a
// run driving a crrouter accounts cache hits across every backend at once.
func scrapeAll(client *http.Client, urls []string) (MetricsSnapshot, error) {
	sum := make(MetricsSnapshot)
	for _, url := range urls {
		snap, err := ScrapeMetrics(client, url)
		if err != nil {
			return nil, err
		}
		for k, v := range snap {
			sum[k] += v
		}
	}
	return sum, nil
}

// Delta returns after-before for every sample present in after; samples
// absent from before count from zero.
func (before MetricsSnapshot) Delta(after MetricsSnapshot) MetricsSnapshot {
	d := make(MetricsSnapshot, len(after))
	for k, v := range after {
		d[k] = v - before[k]
	}
	return d
}

// CacheAccounting summarises the cache-related movement of a metrics delta.
type CacheAccounting struct {
	// FreshSolves is the number of solver invocations (cache misses and
	// uncached solves) the run caused.
	FreshSolves float64 `json:"fresh_solves"`
	// CacheServed is the number of requests answered from the memo cache or
	// by coalescing onto an in-flight solve.
	CacheServed float64 `json:"cache_served"`
	// HitRatio is CacheServed / (CacheServed + FreshSolves), 0 when idle.
	HitRatio float64 `json:"hit_ratio"`
}

// Cache reads the cache accounting off a metrics delta.
func (d MetricsSnapshot) Cache() CacheAccounting {
	acc := CacheAccounting{
		FreshSolves: d["crsharing_solves_total"],
		CacheServed: d["crsharing_cache_served_total"],
	}
	if total := acc.FreshSolves + acc.CacheServed; total > 0 {
		acc.HitRatio = acc.CacheServed / total
	}
	return acc
}
