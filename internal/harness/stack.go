package harness

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"crsharing/internal/engine"
	"crsharing/internal/jobs"
	"crsharing/internal/service"
	"crsharing/internal/solver"
)

// StackConfig configures an in-process stack. Zero values take the
// documented defaults, which mirror a small production deployment.
type StackConfig struct {
	// DefaultSolver is used by requests that name none (default "portfolio").
	DefaultSolver string
	// MaxConcurrent is the engine's global admission budget shared by sync,
	// batch and job solves (default 64 — the harness deliberately saturates
	// the server, and a generous budget keeps queueing delay out of the
	// measured latencies).
	MaxConcurrent int
	// CacheShards / CacheCapacity size the memo cache (defaults 16 / 4096).
	CacheShards, CacheCapacity int
	// Workers / QueueDepth size the job subsystem (defaults 4 / 1024).
	Workers, QueueDepth int
	// JobDefaultTimeout / JobMaxTimeout are the job deadline policy
	// (defaults 1m / 10m).
	JobDefaultTimeout, JobMaxTimeout time.Duration
	// Version is reported by /healthz (default "harness").
	Version string
	// Tenants are per-tenant admission quotas for the engine's fair
	// scheduler; empty leaves every tenant on TenantDefaults.
	Tenants map[string]engine.TenantConfig
	// TenantDefaults is the admission policy of unconfigured tenants.
	TenantDefaults engine.TenantConfig
	// ShedRetryAfter is the back-off hint attached to quota sheds (default
	// the engine's 1s).
	ShedRetryAfter time.Duration
	// APIKeys maps API keys to tenant names for requests that authenticate
	// with X-API-Key instead of X-Tenant.
	APIKeys map[string]string
	// CacheDir, when set, persists the memo cache there: warm-loaded on
	// start, flushed every CacheFlush (default 30s) and on Close.
	CacheDir string
	// CacheFlush is the periodic flush interval of the cache persister.
	CacheFlush time.Duration
	// NegativeTTL, when positive, remembers deterministic solve failures for
	// that long and replays them without re-solving.
	NegativeTTL time.Duration
	// Speculate enables the engine's speculation controller: hot fingerprint
	// families get their single-mutation variants pre-solved into the memo
	// cache under the low-priority speculation tenant. SpeculateBudget caps
	// the variants per hot instance (0 = engine default).
	Speculate       bool
	SpeculateBudget int
}

// Stack is the full production stack — one shared engine (registry, memo
// cache, admission semaphore, telemetry), the job manager and the HTTP layer
// — behind an httptest listener. It is what cmd/crload drives when no -addr
// is given and what end-to-end tests wire up in one call.
type Stack struct {
	// URL is the base URL of the listening server.
	URL string
	// Engine is the shared solve pipeline (useful for telemetry snapshots).
	Engine *engine.Engine
	// Manager is the job subsystem.
	Manager *jobs.Manager
	// Server is the HTTP layer.
	Server *service.Server
	// CacheLoad reports what the cache persister restored on start (zero
	// when no CacheDir is configured).
	CacheLoad solver.LoadReport

	listener  *httptest.Server
	persister *solver.Persister
}

// NewStack wires registry, shared engine, job manager and HTTP layer behind
// an httptest listener. Close releases everything in order.
func NewStack(cfg StackConfig) (*Stack, error) {
	if cfg.DefaultSolver == "" {
		cfg.DefaultSolver = "portfolio"
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 64
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 16
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 4096
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.JobDefaultTimeout <= 0 {
		cfg.JobDefaultTimeout = time.Minute
	}
	if cfg.JobMaxTimeout <= 0 {
		cfg.JobMaxTimeout = 10 * time.Minute
	}
	if cfg.Version == "" {
		cfg.Version = "harness"
	}

	cache := solver.NewCache(cfg.CacheShards, cfg.CacheCapacity)
	if cfg.NegativeTTL > 0 {
		cache.SetNegativeTTL(cfg.NegativeTTL)
	}
	var persister *solver.Persister
	var loadRep solver.LoadReport
	if cfg.CacheDir != "" {
		p, err := solver.NewPersister(cache, cfg.CacheDir, cfg.CacheFlush)
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		rep, err := p.Load()
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		p.Start()
		persister, loadRep = p, rep
	}

	eng, err := engine.New(engine.Config{
		Registry:        solver.Default(),
		Cache:           cache,
		DefaultSolver:   cfg.DefaultSolver,
		MaxConcurrent:   cfg.MaxConcurrent,
		Tenants:         cfg.Tenants,
		TenantDefaults:  cfg.TenantDefaults,
		ShedRetryAfter:  cfg.ShedRetryAfter,
		Speculate:       cfg.Speculate,
		SpeculateBudget: cfg.SpeculateBudget,
	})
	if err != nil {
		if persister != nil {
			_ = persister.Close()
		}
		return nil, fmt.Errorf("harness: %w", err)
	}
	manager, err := jobs.New(jobs.Config{
		Engine:         eng,
		DefaultSolver:  cfg.DefaultSolver,
		Workers:        cfg.Workers,
		QueueDepth:     cfg.QueueDepth,
		DefaultTimeout: cfg.JobDefaultTimeout,
		MaxTimeout:     cfg.JobMaxTimeout,
	})
	if err != nil {
		eng.Close()
		if persister != nil {
			_ = persister.Close()
		}
		return nil, fmt.Errorf("harness: %w", err)
	}
	srv, err := service.New(service.Config{
		Engine:  eng,
		Jobs:    manager,
		Version: cfg.Version,
		APIKeys: cfg.APIKeys,
	})
	if err != nil {
		eng.Close()
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = manager.Close(cctx)
		if persister != nil {
			_ = persister.Close()
		}
		return nil, fmt.Errorf("harness: %w", err)
	}
	ts := httptest.NewServer(srv.Handler())
	return &Stack{
		URL:       ts.URL,
		Engine:    eng,
		Manager:   manager,
		Server:    srv,
		CacheLoad: loadRep,
		listener:  ts,
		persister: persister,
	}, nil
}

// Close tears the stack down in order: listener first (drains handlers),
// then the engine (stops the speculation controller), then the job manager
// (cancels running jobs), then the cache persister (final flush). It returns
// the first error.
func (s *Stack) Close() error {
	s.listener.Close()
	s.Engine.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := s.Manager.Close(ctx)
	if s.persister != nil {
		if perr := s.persister.Close(); err == nil {
			err = perr
		}
	}
	return err
}
