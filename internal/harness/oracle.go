package harness

import (
	"fmt"
	"math"
	"sync"

	"crsharing/internal/core"
)

// Oracle revalidates schedules returned by the service against the paper's
// invariants. It is safe for concurrent use; the load driver calls it from
// every in-flight request goroutine.
//
// A schedule passes when it executes feasibly, finishes every job, reproduces
// the makespan and waste the response claimed, and — when it is balanced —
// additionally satisfies Propositions 1 and 2. Structural property counts
// (non-wasting, progressive, nested, balanced) are tallied for the report but
// are not violations: the heuristics legitimately produce schedules without
// them.
type Oracle struct {
	mu             sync.Mutex
	validated      int
	violationCount int
	violations     []string
	properties     map[string]int
}

// maxRecordedViolations bounds the violation strings kept verbatim;
// ViolationCount keeps increasing past it.
const maxRecordedViolations = 32

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{properties: make(map[string]int)}
}

// CheckSchedule revalidates one returned schedule against the instance the
// request carried. wantMakespan and wantWasted are the response's claims;
// pass a negative wantWasted to skip the waste comparison (endpoints that do
// not report it). It returns the violation error, which is also recorded.
func (o *Oracle) CheckSchedule(label string, inst *core.Instance, sched *core.Schedule, wantMakespan int, wantWasted float64) error {
	err := o.check(inst, sched, wantMakespan, wantWasted)
	if err != nil {
		err = fmt.Errorf("%s: %w", label, err)
	}
	o.record(err)
	return err
}

// record counts one validation and, on failure, the violation; the first
// maxRecordedViolations messages are kept verbatim, later ones collapse into
// a truncation sentinel while the count keeps growing.
func (o *Oracle) record(err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.validated++
	if err == nil {
		return
	}
	o.violationCount++
	if len(o.violations) < maxRecordedViolations {
		o.violations = append(o.violations, err.Error())
	} else {
		o.violations[maxRecordedViolations-1] = fmt.Sprintf("... %d further violations truncated", o.violationCount-maxRecordedViolations+1)
	}
}

func (o *Oracle) check(inst *core.Instance, sched *core.Schedule, wantMakespan int, wantWasted float64) error {
	if sched == nil {
		return fmt.Errorf("harness: response carried no schedule")
	}
	res, err := core.Execute(inst, sched)
	if err != nil {
		return fmt.Errorf("harness: schedule does not execute: %w", err)
	}
	if !res.Finished() {
		return fmt.Errorf("harness: schedule leaves jobs unfinished")
	}
	if wantMakespan >= 0 && res.Makespan() != wantMakespan {
		return fmt.Errorf("harness: response claims makespan %d, execution yields %d", wantMakespan, res.Makespan())
	}
	if wantWasted >= 0 && math.Abs(res.Wasted()-wantWasted) > 1e-6 {
		return fmt.Errorf("harness: response claims waste %.9f, execution yields %.9f", wantWasted, res.Wasted())
	}
	if lb := core.LowerBounds(inst).Best(); res.Makespan() < lb {
		return fmt.Errorf("harness: makespan %d beats the lower bound %d — execution or bound is wrong", res.Makespan(), lb)
	}
	props := core.CheckProperties(res)
	o.countProperties(props)
	if props.Balanced {
		if err := core.CheckProposition1(res); err != nil {
			return fmt.Errorf("harness: balanced schedule violates Proposition 1: %w", err)
		}
		if err := core.CheckProposition2(res); err != nil {
			return fmt.Errorf("harness: balanced schedule violates Proposition 2: %w", err)
		}
	}
	return nil
}

// CheckMakespan is the schedule-less variant for endpoints that return only
// aggregates (batch solve): the claimed makespan must not beat the
// instance's best lower bound.
func (o *Oracle) CheckMakespan(label string, inst *core.Instance, makespan int) error {
	var err error
	if lb := core.LowerBounds(inst).Best(); makespan < lb {
		err = fmt.Errorf("%s: harness: claimed makespan %d beats the lower bound %d", label, makespan, lb)
	}
	o.record(err)
	return err
}

func (o *Oracle) countProperties(p core.Properties) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if p.NonWasting {
		o.properties["non-wasting"]++
	}
	if p.Progressive {
		o.properties["progressive"]++
	}
	if p.Nested {
		o.properties["nested"]++
	}
	if p.Balanced {
		o.properties["balanced"]++
	}
}

// Validated returns the number of responses the oracle checked.
func (o *Oracle) Validated() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.validated
}

// ViolationCount returns the total number of violations, including any whose
// messages were truncated out of Violations.
func (o *Oracle) ViolationCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.violationCount
}

// Violations returns the recorded violation messages (bounded; see
// ViolationCount for the unbounded total) — empty means every checked
// response upheld the invariants.
func (o *Oracle) Violations() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.violations...)
}

// Properties returns how many validated schedules satisfied each structural
// property.
func (o *Oracle) Properties() map[string]int {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]int, len(o.properties))
	for k, v := range o.properties {
		out[k] = v
	}
	return out
}
