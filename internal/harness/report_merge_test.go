package harness

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"crsharing/internal/stats"
)

// TestMergeLatencyMatchesPooled is the report-level half of the merge
// property: splitting one sample into shards, summarising each and merging
// must reproduce the pooled summary — count, mean, min, max exact, quantiles
// within one histogram bucket (≈12% relative in the log domain).
func TestMergeLatencyMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var all []float64
	for i := 0; i < 4000; i++ {
		// Log-normal-ish latencies spanning 0.05ms to ~5s.
		all = append(all, math.Pow(10, rng.NormFloat64()*0.8))
	}
	const shards = 4
	merged := LatencySummary{}
	var err error
	for s := 0; s < shards; s++ {
		var part []float64
		for i := s; i < len(all); i += shards {
			part = append(part, all[i])
		}
		if merged, err = mergeLatency(merged, summarizeLatency(part)); err != nil {
			t.Fatal(err)
		}
	}
	pooled := summarizeLatency(all)
	if merged.Count != pooled.Count {
		t.Fatalf("merged count %d, want %d", merged.Count, pooled.Count)
	}
	if math.Abs(merged.MeanMS-pooled.MeanMS) > 1e-9*math.Abs(pooled.MeanMS) {
		t.Errorf("merged mean %v, want %v", merged.MeanMS, pooled.MeanMS)
	}
	if merged.MinMS != pooled.MinMS || merged.MaxMS != pooled.MaxMS {
		t.Errorf("merged min/max %v/%v, want %v/%v", merged.MinMS, merged.MaxMS, pooled.MinMS, pooled.MaxMS)
	}
	// Quantiles re-estimated from the merged histogram: within one bucket of
	// the exact sample quantile, i.e. a factor of 10^(bucket width) in ms.
	tol := math.Pow(10, (latHistHi-latHistLo)/latHistBuckets)
	for _, q := range []struct {
		name           string
		merged, pooled float64
	}{
		{"p50", merged.P50MS, pooled.P50MS},
		{"p90", merged.P90MS, pooled.P90MS},
		{"p99", merged.P99MS, pooled.P99MS},
	} {
		ratio := q.merged / q.pooled
		if ratio < 1/tol || ratio > tol {
			t.Errorf("%s: merged %v vs pooled %v (ratio %v beyond bucket factor %v)", q.name, q.merged, q.pooled, ratio, tol)
		}
	}
	if merged.Hist.Total() != pooled.Hist.Total() {
		t.Errorf("merged histogram total %d, want %d", merged.Hist.Total(), pooled.Hist.Total())
	}
}

// TestMergeLatencyBoundsMismatch checks a foreign-bounds histogram surfaces
// the typed stats error instead of misbinning.
func TestMergeLatencyBoundsMismatch(t *testing.T) {
	a := summarizeLatency([]float64{1, 2, 3})
	b := summarizeLatency([]float64{4, 5, 6})
	b.Hist = stats.NewHistogram(0, 1, 10)
	b.Hist.Add(0.5)
	_, err := mergeLatency(a, b)
	var bm *stats.BoundsMismatchError
	if !errors.As(err, &bm) {
		t.Fatalf("mismatched bounds merged without the typed error: %v", err)
	}
}

// syntheticReport builds a single-class report from raw latency samples.
func syntheticReport(class string, ms []float64, mut func(*Report)) *Report {
	r := &Report{
		Seed:        5,
		DurationSec: 1,
		Requests:    len(ms),
		Classes: map[string]*ClassStats{
			class: {Requests: len(ms), Latency: summarizeLatency(ms)},
		},
		Properties: map[string]int{"balanced": len(ms)},
		Validated:  len(ms),
	}
	if mut != nil {
		mut(r)
	}
	return r
}

// TestMergeReportsPoolsEverything pins the cross-process merge semantics:
// counts, violations, properties, telemetry sources, cache accounting and
// tenant slices all add; throughput is recomputed; durations take the max.
func TestMergeReportsPoolsEverything(t *testing.T) {
	a := syntheticReport(ClassSolve, []float64{1, 2, 3, 4}, func(r *Report) {
		r.Shed = 1
		r.ServerShed = 2
		r.DurationSec = 2
		r.RatePerSec = 100
		r.ViolationCount = 1
		r.Violations = []string{"solve x: makespan below bound"}
		r.Classes[ClassSolve].Telemetry = TelemetryAgg{Nodes: 10, Sources: map[string]int{"solve": 4}}
		r.Tenants = map[string]*TenantStats{"gold": {Requests: 4, Latency: summarizeLatency([]float64{1, 2, 3, 4})}}
		r.Cache = CacheAccounting{FreshSolves: 3, CacheServed: 1, HitRatio: 0.25}
		r.MetricsDelta = MetricsSnapshot{"crsharing_solves_total": 3}
	})
	b := syntheticReport(ClassSolve, []float64{5, 6}, func(r *Report) {
		r.DurationSec = 1.5
		r.RatePerSec = 50
		r.Classes[ClassSolve].Errors = 1
		r.Classes[ClassSolve].Telemetry = TelemetryAgg{Nodes: 5, Sources: map[string]int{"cache": 2}}
		r.Tenants = map[string]*TenantStats{"free": {Requests: 2, Latency: summarizeLatency([]float64{5, 6})}}
		r.Cache = CacheAccounting{FreshSolves: 1, CacheServed: 3, HitRatio: 0.75}
		r.MetricsDelta = MetricsSnapshot{"crsharing_solves_total": 1}
	})

	m, err := MergeReports(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 6 || m.Shed != 1 || m.ServerShed != 2 || m.Validated != 6 || m.ViolationCount != 1 {
		t.Errorf("merged totals wrong: %+v", m)
	}
	if m.Shards != 2 {
		t.Errorf("merged shards %d, want 2", m.Shards)
	}
	if m.DurationSec != 2 {
		t.Errorf("merged duration %v, want the max 2", m.DurationSec)
	}
	if m.RatePerSec != 150 {
		t.Errorf("merged rate %v, want the sum 150", m.RatePerSec)
	}
	if m.Throughput != 3 {
		t.Errorf("merged throughput %v, want 6 requests / 2 s", m.Throughput)
	}
	cs := m.Classes[ClassSolve]
	if cs.Requests != 6 || cs.Errors != 1 || cs.Latency.Count != 6 {
		t.Errorf("merged class stats wrong: %+v", cs)
	}
	if cs.Telemetry.Nodes != 15 || cs.Telemetry.Sources["solve"] != 4 || cs.Telemetry.Sources["cache"] != 2 {
		t.Errorf("merged telemetry wrong: %+v", cs.Telemetry)
	}
	if m.Tenants["gold"].Requests != 4 || m.Tenants["free"].Requests != 2 {
		t.Errorf("merged tenants wrong: %+v", m.Tenants)
	}
	if m.Cache.FreshSolves != 4 || m.Cache.CacheServed != 4 || m.Cache.HitRatio != 0.5 {
		t.Errorf("merged cache accounting wrong: %+v", m.Cache)
	}
	if m.MetricsDelta["crsharing_solves_total"] != 4 {
		t.Errorf("merged metrics delta wrong: %+v", m.MetricsDelta)
	}
	if m.Properties["balanced"] != 6 {
		t.Errorf("merged properties wrong: %+v", m.Properties)
	}
	if len(m.Violations) != 1 || !strings.Contains(m.Violations[0], "makespan") {
		t.Errorf("merged violations wrong: %v", m.Violations)
	}
	// Exact quantile ordering survives the merge: the pooled sample is
	// 1..6 ms, so p50 must sit well below p99.
	if !(cs.Latency.P50MS < cs.Latency.P99MS) || cs.Latency.MinMS != 1 || cs.Latency.MaxMS != 6 {
		t.Errorf("merged latency summary inconsistent: %+v", cs.Latency)
	}
	if m.Text() == "" {
		t.Error("merged report renders empty")
	}
}

// TestMergeReportsViolationCap checks the merged violation list stays bounded
// while the count keeps the truth.
func TestMergeReportsViolationCap(t *testing.T) {
	var reports []*Report
	for i := 0; i < 3; i++ {
		reports = append(reports, syntheticReport(ClassSolve, []float64{1}, func(r *Report) {
			r.ViolationCount = maxRecordedViolations
			for j := 0; j < maxRecordedViolations; j++ {
				r.Violations = append(r.Violations, "v")
			}
		}))
	}
	m, err := MergeReports(reports...)
	if err != nil {
		t.Fatal(err)
	}
	if m.ViolationCount != 3*maxRecordedViolations {
		t.Errorf("merged violation count %d, want %d", m.ViolationCount, 3*maxRecordedViolations)
	}
	if len(m.Violations) != maxRecordedViolations {
		t.Errorf("merged violation list %d entries, want the cap %d", len(m.Violations), maxRecordedViolations)
	}
}

// TestMergeReportsEmpty checks the degenerate calls.
func TestMergeReportsEmpty(t *testing.T) {
	if _, err := MergeReports(); err == nil {
		t.Fatal("merging zero reports succeeded")
	}
	solo := syntheticReport(ClassSolve, []float64{1, 2}, nil)
	m, err := MergeReports(solo)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 2 || m.Shards != 1 {
		t.Errorf("identity merge wrong: %+v", m)
	}
}

// TestLatencyHistogramRender sanity-checks the coalesced ASCII rendering: it
// is non-empty for occupied histograms, bounded in rows and labelled in ms.
func TestLatencyHistogramRender(t *testing.T) {
	var ms []float64
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		ms = append(ms, math.Pow(10, rng.Float64()*4-1)) // 0.1ms .. 1000ms
	}
	sum := summarizeLatency(ms)
	lines := strings.Split(strings.TrimRight(sum.Histogram, "\n"), "\n")
	if len(lines) == 0 || len(lines) > 18 {
		t.Fatalf("histogram rendered %d rows", len(lines))
	}
	for _, line := range lines {
		if !strings.Contains(line, ") ms") {
			t.Fatalf("histogram row missing ms label: %q", line)
		}
	}
	sort.Float64s(ms)
	if sum.P50MS < ms[0] || sum.P50MS > ms[len(ms)-1] {
		t.Fatalf("p50 %v outside sample range", sum.P50MS)
	}
}
