// Package harness is the end-to-end scenario harness of the repository: it
// turns the generators of internal/gen, the property checkers of
// internal/core and the HTTP layer of internal/service into one repeatable
// experiment that exercises the full stack under realistic mixed load.
//
// It has three cooperating pieces:
//
//   - Corpus (corpus.go): a deterministic builder that expands a single seed
//     into named instance families — tiny instances the exact solvers finish
//     instantly, wide many-processor instances, resource-tight instances
//     whose requirements crowd the unit resource, processor-permuted
//     duplicates that stress the cache-hit/remap path, and the paper's fixed
//     constructions as anchors. The same seed always yields the
//     byte-identical corpus.
//
//   - Driver (driver.go): an open-loop replay driver that fires a weighted
//     mix of synchronous solves, batch solves and asynchronous jobs
//     (submit + SSE follow) at a base URL — an in-process httptest server or
//     a remote crserved — and collects per-class latency distributions via
//     internal/stats, throughput, error/cancel counts, per-class
//     engine-telemetry aggregates (nodes explored, incumbents, results per
//     cache source — load runs double as solver-behaviour regressions) and
//     the cache-hit accounting scraped from /metrics.
//
// Stack (stack.go) wires the full production layering — one shared
// internal/engine pipeline feeding both the service handlers and the job
// manager, exactly like cmd/crserved — behind an httptest listener, for
// crload's in-process mode and the end-to-end tests.
//
//   - Oracle (oracle.go): every schedule a response carries is re-executed
//     with core.Execute and revalidated against the paper's invariants
//     (core.CheckProperties, and CheckProposition1/CheckProposition2 for
//     balanced schedules); any violation fails the run loudly. The paper's
//     propositions are thereby the regression oracle of every load test.
//
// On top of the single driver sits the fleet-scale verification layer:
//
//   - Recording (record.go): a versioned JSONL codec that captures a run's
//     full request stream — arrival offsets, class, tenant, instance
//     payloads with canonical fingerprints, per-request outcome — and a
//     replay mode (Config.Replay) that re-issues it bit-exactly, so two
//     runs are comparable request-for-request. Decoding re-verifies every
//     fingerprint and rejects corrupt, truncated or unknown-version input
//     with line numbers.
//
//   - Fleet (fleet.go): RunFleet splits one corpus (ShardCorpus) or one
//     recording (Recording.Shard) deterministically over N in-process
//     driver shards, scrapes /metrics once around the whole fleet, and
//     merges the shard reports. MergeReports (report.go) also pools report
//     JSONs from separate processes: counts add exactly, and latency
//     quantiles are re-estimated from merged fixed-bounds log-domain
//     histograms (stats.Histogram.Merge), so distribution merging is exact
//     rather than approximated from summaries.
//
//   - SLO (slo.go): a strict declarative spec — per-class P99 ceilings,
//     shed-rate cap, cache-hit floor, zero oracle violations, a minimum
//     request count against vacuous passes — evaluated against the merged
//     report; crload maps violations to a distinct exit code for CI.
//
// The golden-corpus regression suite (golden_test.go + testdata/) pins the
// makespan and waste of every deterministic solver on a fixed corpus so that
// behavioural drift across refactors fails `go test ./...` unless the
// fixtures are regenerated with -update.
//
// Command crload is the CLI front end of this package.
package harness
