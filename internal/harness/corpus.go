package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"crsharing/internal/core"
	"crsharing/internal/gen"
)

// Family is a named group of instances that share a workload shape.
type Family struct {
	// Name identifies the family, e.g. "tiny-exact".
	Name string `json:"name"`
	// Instances are the family's members in a deterministic order.
	Instances []*core.Instance `json:"instances"`
}

// Item is one corpus entry with its family attribution, the unit the load
// driver replays.
type Item struct {
	Family string
	Inst   *core.Instance
}

// Corpus is the deterministic instance corpus a load run replays. Build one
// with BuildCorpus; the same seed always yields the byte-identical corpus.
type Corpus struct {
	Seed     int64    `json:"seed"`
	Families []Family `json:"families"`
}

// Family names emitted by BuildCorpus.
const (
	// FamilyTinyExact holds small instances every exact solver finishes in
	// well under a millisecond; they dominate the sync-solve mix and are the
	// golden-corpus substrate.
	FamilyTinyExact = "tiny-exact"
	// FamilyWideManyProc holds instances with many processors and uneven job
	// counts, the regime the balanced schedules of the paper's Section 8 are
	// about.
	FamilyWideManyProc = "wide-many-proc"
	// FamilyResourceTight holds instances whose requirements crowd the unit
	// resource (bimodal heavy mixtures and near-saturation uniforms), where
	// bandwidth scheduling decisions matter most.
	FamilyResourceTight = "resource-tight"
	// FamilyAdversarialDup holds processor-permuted duplicates of a few base
	// instances: every duplicate has the fingerprint of its base, so a replay
	// stresses the memo-cache hit path and the schedule remap of
	// core.RemapScheduleProcs.
	FamilyAdversarialDup = "adversarial-dup"
	// FamilyPaperFigures holds the paper's fixed constructions (Figures 1-3,
	// the Theorem 8 block construction) as seed-independent anchors.
	FamilyPaperFigures = "paper-figures"
	// FamilyGreedyTrap holds the greedy worst-case construction at a few
	// widths: instances on which GreedyBalance is provably suboptimal, so
	// the exact kernels must actually search and the anytime tier's
	// incumbent stream is visible under load (random families are usually
	// confirmed by the work bound in a single node).
	FamilyGreedyTrap = "greedy-trap"
)

// FamilyNames lists the families BuildCorpus emits, in corpus order.
func FamilyNames() []string {
	return []string{
		FamilyTinyExact,
		FamilyWideManyProc,
		FamilyResourceTight,
		FamilyAdversarialDup,
		FamilyPaperFigures,
		FamilyGreedyTrap,
	}
}

// BuildCorpus expands one seed into the full corpus. Each family derives its
// own rand stream from the seed and its position, so adding a family never
// perturbs the instances of the existing ones.
func BuildCorpus(seed int64) *Corpus {
	c := &Corpus{Seed: seed}
	sub := func(i int64) *rand.Rand { return rand.New(rand.NewSource(seed*1_000_003 + i)) }
	c.Families = []Family{
		{Name: FamilyTinyExact, Instances: buildTinyExact(sub(1))},
		{Name: FamilyWideManyProc, Instances: buildWideManyProc(sub(2))},
		{Name: FamilyResourceTight, Instances: buildResourceTight(sub(3))},
		{Name: FamilyAdversarialDup, Instances: buildAdversarialDup(sub(4))},
		{Name: FamilyPaperFigures, Instances: buildPaperFigures()},
		{Name: FamilyGreedyTrap, Instances: buildGreedyTrap()},
	}
	return c
}

// buildTinyExact draws small instances (2-3 processors, 2-4 jobs each) with
// requirements spread over (0, 1); exact solvers finish them instantly.
func buildTinyExact(rng *rand.Rand) []*core.Instance {
	var out []*core.Instance
	for i := 0; i < 8; i++ {
		m := 2 + rng.Intn(2)
		out = append(out, gen.RandomUneven(rng, m, 2, 4, 0.05, 0.95))
	}
	return out
}

// buildWideManyProc draws instances with 8-16 processors and uneven job
// counts.
func buildWideManyProc(rng *rand.Rand) []*core.Instance {
	var out []*core.Instance
	for _, m := range []int{8, 12, 16} {
		out = append(out, gen.RandomUneven(rng, m, 2, 6, 0.05, 0.9))
		out = append(out, gen.Random(rng, m, 4, 0.1, 0.8))
	}
	return out
}

// buildResourceTight draws heavy bimodal mixtures and near-saturation
// uniforms.
func buildResourceTight(rng *rand.Rand) []*core.Instance {
	var out []*core.Instance
	for i := 0; i < 3; i++ {
		out = append(out, gen.RandomBimodal(rng, 4, 4, 0.8))
	}
	for i := 0; i < 3; i++ {
		out = append(out, gen.Random(rng, 3, 4, 0.85, 1.0))
	}
	return out
}

// buildAdversarialDup emits each of three base instances four times with its
// processors listed in a different order. All copies of a base share one
// fingerprint, so replaying the family turns into cache hits whose schedules
// must be remapped to the requester's processor order.
func buildAdversarialDup(rng *rand.Rand) []*core.Instance {
	bases := []*core.Instance{
		gen.Random(rng, 4, 3, 0.1, 0.9),
		gen.RandomUneven(rng, 5, 2, 5, 0.05, 0.95),
		gen.RandomBimodal(rng, 3, 4, 0.5),
	}
	var out []*core.Instance
	for _, base := range bases {
		out = append(out, base)
		for k := 0; k < 3; k++ {
			out = append(out, PermuteProcs(base, rng.Perm(base.NumProcessors())))
		}
	}
	return out
}

// buildPaperFigures returns the seed-independent anchors from the paper.
func buildPaperFigures() []*core.Instance {
	return []*core.Instance{
		gen.Figure1(),
		gen.Figure2(),
		gen.Figure3(8),
		gen.GreedyWorstCase(3, 2, 0.01),
	}
}

// buildGreedyTrap emits the greedy worst case at increasing widths. The
// family is seed-independent. Widths stay moderate (exact search in the
// low tens of milliseconds) so replaying the family under a load mix does
// not clog the admission slots of a short smoke run.
func buildGreedyTrap() []*core.Instance {
	var out []*core.Instance
	for _, m := range []int{3, 4, 5} {
		out = append(out, gen.GreedyWorstCase(m, 2, 1.0/(20*float64(m)*float64(m+1))))
	}
	return out
}

// PermuteProcs returns a copy of inst whose processor i is the input's
// processor perm[i]. Permuting processors preserves the canonical fingerprint
// (the scheduling problem is unchanged), which is exactly what the
// adversarial-dup family exploits.
func PermuteProcs(inst *core.Instance, perm []int) *core.Instance {
	if len(perm) != inst.NumProcessors() {
		panic(fmt.Sprintf("harness: permutation of length %d for %d processors", len(perm), inst.NumProcessors()))
	}
	out := &core.Instance{Procs: make([][]core.Job, len(perm))}
	for i, p := range perm {
		out.Procs[i] = append([]core.Job(nil), inst.Procs[p]...)
	}
	return out
}

// Items flattens the corpus into (family, instance) pairs in deterministic
// order.
func (c *Corpus) Items() []Item {
	var items []Item
	for _, f := range c.Families {
		for _, inst := range f.Instances {
			items = append(items, Item{Family: f.Name, Inst: inst})
		}
	}
	return items
}

// Family returns the named family, or nil.
func (c *Corpus) Family(name string) *Family {
	for i := range c.Families {
		if c.Families[i].Name == name {
			return &c.Families[i]
		}
	}
	return nil
}

// Size returns the total number of instances in the corpus.
func (c *Corpus) Size() int {
	n := 0
	for _, f := range c.Families {
		n += len(f.Instances)
	}
	return n
}

// Validate checks every instance of every family against the model's domain.
func (c *Corpus) Validate() error {
	for _, f := range c.Families {
		if len(f.Instances) == 0 {
			return fmt.Errorf("harness: family %q is empty", f.Name)
		}
		for i, inst := range f.Instances {
			if err := inst.Validate(); err != nil {
				return fmt.Errorf("harness: family %q instance %d: %w", f.Name, i, err)
			}
		}
	}
	return nil
}

// MarshalBytes serialises the corpus to canonical JSON; two corpora built
// from the same seed marshal byte-identically, which the determinism tests
// pin.
func (c *Corpus) MarshalBytes() ([]byte, error) {
	return json.Marshal(c)
}
