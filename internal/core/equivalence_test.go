package core

import (
	"math"
	"math/rand"
	"testing"
)

// simulateEquationOne re-executes a schedule using the paper's primary
// formulation (equation (1)): job (i,j), started at step t1, completes at the
// first t2 with Σ_{t=t1..t2} min(R_i(t)/r_ij, 1) ≥ p_ij (speed capped at one,
// full speed for zero-requirement jobs). It is an independent implementation
// of the progress law used to cross-validate the execution engine, which
// internally uses the alternative formulation (equation (2)).
func simulateEquationOne(inst *Instance, s *Schedule) (completion [][]int, finished bool) {
	m := inst.NumProcessors()
	completion = make([][]int, m)
	finished = true
	for i := 0; i < m; i++ {
		completion[i] = make([]int, inst.NumJobs(i))
		for j := range completion[i] {
			completion[i][j] = -1
		}
		t := 0
		for j := 0; j < inst.NumJobs(i); j++ {
			job := inst.Job(i, j)
			remainingVolume := job.Size
			done := false
			for ; t < s.Steps(); t++ {
				speed := 1.0
				if job.Req > 1e-12 {
					speed = math.Min(s.Share(t, i)/job.Req, 1)
				}
				remainingVolume -= speed
				if remainingVolume <= 1e-9 {
					completion[i][j] = t
					t++ // the next job can start no earlier than the next step
					done = true
					break
				}
			}
			if !done {
				finished = false
				// Remaining jobs of this processor cannot finish either.
				break
			}
		}
	}
	return completion, finished
}

// TestExecuteMatchesEquationOneFormulation cross-checks the engine against
// the independent equation-(1) simulator on random instances and schedules,
// covering unit and non-unit sizes as well as zero-requirement jobs.
func TestExecuteMatchesEquationOneFormulation(t *testing.T) {
	rng := rand.New(rand.NewSource(20140623))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(4)
		procs := make([][]Job, m)
		for i := range procs {
			n := 1 + rng.Intn(4)
			procs[i] = make([]Job, n)
			for j := range procs[i] {
				req := rng.Float64()
				if rng.Intn(8) == 0 {
					req = 0 // exercise the zero-requirement path
				}
				size := 1.0
				if rng.Intn(3) == 0 {
					size = 0.5 + rng.Float64()*2.5
				}
				procs[i][j] = Job{Req: req, Size: size}
			}
		}
		inst := NewSizedInstance(procs...)

		steps := 2 + rng.Intn(20)
		sched := NewSchedule(steps, m)
		for tt := 0; tt < steps; tt++ {
			avail := 1.0
			for _, i := range rng.Perm(m) {
				give := rng.Float64() * avail
				sched.Alloc[tt][i] = give
				avail -= give
			}
		}

		res, err := Execute(inst, sched)
		if err != nil {
			t.Fatalf("trial %d: Execute: %v", trial, err)
		}
		wantCompletion, wantFinished := simulateEquationOne(inst, sched)
		if res.Finished() != wantFinished {
			t.Fatalf("trial %d: engine finished=%v, equation (1) simulator says %v\n%v",
				trial, res.Finished(), wantFinished, inst)
		}
		for i := 0; i < m; i++ {
			for j := 0; j < inst.NumJobs(i); j++ {
				if got, want := res.CompletionStep(i, j), wantCompletion[i][j]; got != want {
					t.Fatalf("trial %d: job (%d,%d) completes at %d per the engine but %d per equation (1)\n%v",
						trial, i+1, j+1, got, want, inst)
				}
			}
		}
	}
}
