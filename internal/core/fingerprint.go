package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// Fingerprint is a canonical, order-normalized identity of an instance: two
// instances that differ only in the order of their processors (the processors
// are identical, so permuting them yields an equivalent scheduling problem)
// hash to the same fingerprint, while any change to a job's requirement,
// size, or position within its processor's sequence changes it. It is the
// memo-cache key of the serving layer.
type Fingerprint [sha256.Size]byte

// String returns the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 12 hex digits, enough for log lines and metrics
// labels.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:6]) }

// Uint64 folds the fingerprint's leading bytes into a uniform 64-bit key.
// SHA-256 output is uniform, so the prefix is already a high-quality hash —
// this is the shard/ring key of every fingerprint-partitioned tier.
func (f Fingerprint) Uint64() uint64 { return binary.BigEndian.Uint64(f[:8]) }

// Shard maps the fingerprint onto one of n shards (n must be positive). Two
// instances with equal fingerprints land on the same shard on every machine,
// which is what makes the memo-cache tier partitionable by instance identity.
func (f Fingerprint) Shard(n int) int { return int(f.Uint64() % uint64(n)) }

// procBlobs serializes each processor's job sequence into a comparable byte
// string: 16 bytes per job (requirement and size as little-endian IEEE 754
// bits), with negative zeros normalized to positive zero so that instances
// Equal up to the sign of zero serialize identically.
func (in *Instance) procBlobs() []string {
	blobs := make([]string, len(in.Procs))
	var buf []byte
	for i, js := range in.Procs {
		buf = buf[:0]
		for _, j := range js {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(j.Req+0))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(j.Size+0))
		}
		blobs[i] = string(buf)
	}
	return blobs
}

// CanonicalProcOrder returns the instance's processor indices sorted by
// their canonical serialization (ties by index, so the order is
// deterministic). Two instances with equal fingerprints list pairwise
// identical job sequences under this order, which is what makes schedules
// transferable between them — see RemapScheduleProcs.
func (in *Instance) CanonicalProcOrder() []int {
	blobs := in.procBlobs()
	order := make([]int, len(blobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return blobs[order[a]] < blobs[order[b]] })
	return order
}

// RemapScheduleProcs transfers a schedule computed for instance from onto
// instance to, which must have the same fingerprint: the processor columns
// are permuted so that column i of the result feeds the processor of to
// whose job sequence matches the one column i fed in from. Processors with
// identical job sequences are interchangeable, so any consistent matching is
// valid. When the instances already list their processors in the same order
// the schedule is returned unchanged.
func RemapScheduleProcs(from, to *Instance, sched *Schedule) *Schedule {
	if from.Equal(to) {
		return sched
	}
	fromOrder := from.CanonicalProcOrder()
	toOrder := to.CanonicalProcOrder()
	out := NewSchedule(sched.Steps(), to.NumProcessors())
	for k := range toOrder {
		src, dst := fromOrder[k], toOrder[k]
		for t := range out.Alloc {
			out.Alloc[t][dst] = sched.Share(t, src)
		}
	}
	return out
}

// Fingerprint computes the instance's canonical fingerprint.
//
// Each processor's job sequence is serialized in order (job order on a
// processor is part of the problem), the per-processor blobs are sorted
// byte-wise to normalize processor order, and the sorted, length-framed
// concatenation is hashed with SHA-256.
//
// The result is memoised on the instance (instances are immutable once
// built), so repeated calls — cache key, response field, batch shards,
// routing — hash once.
func (in *Instance) Fingerprint() Fingerprint {
	if f := in.fp.Load(); f != nil {
		return *f
	}
	f := in.fingerprint()
	in.fp.Store(&f)
	return f
}

func (in *Instance) fingerprint() Fingerprint {
	blobs := in.procBlobs()
	sort.Strings(blobs)

	h := sha256.New()
	var frame [8]byte
	binary.LittleEndian.PutUint64(frame[:], uint64(len(blobs)))
	h.Write(frame[:])
	for _, b := range blobs {
		binary.LittleEndian.PutUint64(frame[:], uint64(len(b)))
		h.Write(frame[:])
		h.Write([]byte(b))
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
