package core

import (
	"math"
	"testing"
)

func TestFingerprintDeterministic(t *testing.T) {
	a := NewInstance([]float64{0.3, 0.7}, []float64{0.5})
	b := NewInstance([]float64{0.3, 0.7}, []float64{0.5})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical instances must share a fingerprint")
	}
	if a.Fingerprint() != a.Clone().Fingerprint() {
		t.Fatal("clone must share the fingerprint")
	}
}

func TestFingerprintProcessorOrderNormalized(t *testing.T) {
	a := NewInstance([]float64{0.3, 0.7}, []float64{0.5}, []float64{0.9, 0.1})
	b := NewInstance([]float64{0.9, 0.1}, []float64{0.3, 0.7}, []float64{0.5})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("permuting processors must not change the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := NewInstance([]float64{0.3, 0.7}, []float64{0.5})
	fp := base.Fingerprint()
	cases := map[string]*Instance{
		"job requirement": NewInstance([]float64{0.3, 0.6}, []float64{0.5}),
		"job order":       NewInstance([]float64{0.7, 0.3}, []float64{0.5}),
		"job moved":       NewInstance([]float64{0.3}, []float64{0.5, 0.7}),
		"extra processor": NewInstance([]float64{0.3, 0.7}, []float64{0.5}, nil),
		"job size": NewSizedInstance(
			[]Job{{Req: 0.3, Size: 2}, {Req: 0.7, Size: 1}},
			[]Job{{Req: 0.5, Size: 1}}),
	}
	for name, inst := range cases {
		if inst.Fingerprint() == fp {
			t.Errorf("%s: change not reflected in fingerprint", name)
		}
	}
}

// TestFingerprintEmptyFraming pins down that empty processors are framed, so
// that e.g. {[], [0.5]} and {[0.5], []} agree while {[0.5]} differs.
func TestFingerprintEmptyFraming(t *testing.T) {
	withEmpty := NewInstance(nil, []float64{0.5})
	withEmptySwapped := NewInstance([]float64{0.5}, nil)
	without := NewInstance([]float64{0.5})
	if withEmpty.Fingerprint() != withEmptySwapped.Fingerprint() {
		t.Fatal("empty processor position must not matter")
	}
	if withEmpty.Fingerprint() == without.Fingerprint() {
		t.Fatal("an empty processor must still change the fingerprint")
	}
}

// TestFingerprintShard pins the shard key: deterministic across calls and
// permutations (it derives from the canonical fingerprint), in range, and
// reasonably spread over many distinct instances.
func TestFingerprintShard(t *testing.T) {
	a := NewInstance([]float64{0.3, 0.7}, []float64{0.5}, []float64{0.9, 0.1})
	b := NewInstance([]float64{0.9, 0.1}, []float64{0.3, 0.7}, []float64{0.5})
	if a.Fingerprint().Shard(7) != b.Fingerprint().Shard(7) {
		t.Fatal("permuted instances must land on the same shard")
	}
	if got, want := a.Fingerprint().Uint64(), a.Fingerprint().Uint64(); got != want {
		t.Fatal("Uint64 must be deterministic")
	}
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		inst := NewInstance([]float64{0.1 + float64(i)/1000})
		s := inst.Fingerprint().Shard(4)
		if s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range [0,4)", s)
		}
		seen[s] = true
	}
	if len(seen) < 4 {
		t.Fatalf("64 distinct instances only touched %d of 4 shards", len(seen))
	}
}

func TestFingerprintNegativeZero(t *testing.T) {
	a := NewInstance([]float64{0.0})
	b := NewInstance([]float64{math.Copysign(0, -1)})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("-0 and +0 requirements must agree on the fingerprint")
	}
}

// TestRemapScheduleProcs transfers a schedule between permuted-processor
// instances and checks the remapped schedule is valid for the target: this
// is what makes processor-order normalization of the fingerprint safe for a
// cache that hands back full schedules.
func TestRemapScheduleProcs(t *testing.T) {
	from := NewInstance([]float64{0.9, 0.9}, []float64{0.1})
	to := NewInstance([]float64{0.1}, []float64{0.9, 0.9})
	if from.Fingerprint() != to.Fingerprint() {
		t.Fatal("test invariant: permuted instances must share a fingerprint")
	}
	// A hand-built schedule for from: run the 0.9-jobs at full speed in
	// steps 1-2 with the 0.1 job alongside.
	sched := NewSchedule(2, 2)
	sched.Alloc[0] = []float64{0.9, 0.1}
	sched.Alloc[1] = []float64{0.9, 0.0}
	resFrom, err := Execute(from, sched)
	if err != nil || !resFrom.Finished() {
		t.Fatalf("schedule invalid for from: %v finished=%v", err, resFrom.Finished())
	}

	remapped := RemapScheduleProcs(from, to, sched)
	resTo, err := Execute(to, remapped)
	if err != nil {
		t.Fatalf("remapped schedule invalid for to: %v", err)
	}
	if !resTo.Finished() {
		t.Fatal("remapped schedule does not finish to's jobs")
	}
	if resTo.Makespan() != resFrom.Makespan() {
		t.Fatalf("makespan changed under remap: %d vs %d", resTo.Makespan(), resFrom.Makespan())
	}
	// The unremapped schedule must NOT finish to's jobs — otherwise this
	// test exercises nothing.
	if resBad, err := Execute(to, sched); err == nil && resBad.Finished() && resBad.Makespan() == resFrom.Makespan() {
		t.Fatal("test invariant: raw schedule should be misaligned for to")
	}

	// Identical ordering returns the schedule unchanged (same pointer).
	if RemapScheduleProcs(from, from.Clone(), sched) != sched {
		t.Fatal("equal instances must short-circuit the remap")
	}
}
