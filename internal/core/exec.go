package core

import (
	"fmt"
	"math"

	"crsharing/internal/numeric"
)

// Result captures the outcome of executing a schedule against an instance:
// per-job start and completion steps, the per-step state trajectory, the
// makespan, and accounting of wasted resource. All step indices are
// zero-based; a completion step of t means the job finished during step t
// (the paper's step t+1).
type Result struct {
	inst  *Instance
	sched *Schedule

	// start[i][j] is the first step in which job (i,j) received resource (or
	// made progress, for jobs with zero requirement); -1 if it never started.
	start [][]int
	// completion[i][j] is the step in which job (i,j) finished; -1 if it
	// never finished within the schedule's horizon.
	completion [][]int
	// remaining[t][i] is the remaining work (alternative-model units) of the
	// active job of processor i at the START of step t; zero when the
	// processor has no unfinished jobs. Indexed 0..steps (inclusive), so
	// remaining[steps] is the state after the whole schedule ran.
	remaining [][]float64
	// jobsDone[t][i] is j_i(t): the number of jobs processor i has completed
	// at the START of step t. Indexed 0..steps (inclusive).
	jobsDone [][]int
	// progressed[t][i] reports whether processor i made progress on a job
	// during step t (needed to decide whether a zero-requirement job or a
	// zero-share step "runs" a job).
	progressed [][]bool

	makespan int
	finished bool
	wasted   float64
}

// Execute runs schedule s on instance inst under the model's progress law and
// returns the resulting trajectory. It returns an error if the instance or
// schedule is malformed or the schedule overuses the resource; it does NOT
// fail when the schedule is too short to finish all jobs — query
// Result.Finished for that.
//
// Semantics per step t and processor i:
//   - a processor works on its first unfinished job (i,j), if any;
//   - the job's remaining work decreases by min(R_i(t), r_ij) (alternative
//     model, equation (2)); equivalently it progresses min(R_i(t)/r_ij, 1)
//     volume units (equation (1));
//   - jobs with r_ij = 0 progress one volume unit per step regardless of the
//     assigned share (equation (1) with the speed capped at one);
//   - a processor processes at most one job per step: share exceeding the
//     active job's remaining need is wasted, it does not spill into the next
//     job;
//   - share assigned to a processor with no unfinished jobs is wasted.
func Execute(inst *Instance, s *Schedule) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("core: nil schedule")
	}
	if err := s.ValidateFeasible(); err != nil {
		return nil, err
	}
	if p := s.NumProcessors(); p != 0 && p < inst.NumProcessors() {
		return nil, fmt.Errorf("core: schedule covers %d processors, instance has %d", p, inst.NumProcessors())
	}

	m := inst.NumProcessors()
	steps := s.Steps()

	res := &Result{
		inst:       inst,
		sched:      s,
		start:      make([][]int, m),
		completion: make([][]int, m),
		remaining:  make([][]float64, steps+1),
		jobsDone:   make([][]int, steps+1),
		progressed: make([][]bool, steps),
		makespan:   0,
		finished:   true,
	}
	for i := 0; i < m; i++ {
		ni := inst.NumJobs(i)
		res.start[i] = make([]int, ni)
		res.completion[i] = make([]int, ni)
		for j := range res.start[i] {
			res.start[i][j] = -1
			res.completion[i][j] = -1
		}
	}

	// Per-processor dynamic state.
	next := make([]int, m)        // index of first unfinished job
	remWork := make([]float64, m) // remaining work of that job (resource units)
	remVol := make([]float64, m)  // remaining volume of that job (volume units)
	for i := 0; i < m; i++ {
		if inst.NumJobs(i) > 0 {
			remWork[i] = inst.Job(i, 0).Work()
			remVol[i] = inst.Job(i, 0).Size
		}
	}

	snapshot := func(t int) {
		res.remaining[t] = append([]float64(nil), remWork...)
		done := make([]int, m)
		copy(done, next)
		res.jobsDone[t] = done
	}
	snapshot(0)

	var wasted numeric.KahanAdder
	for t := 0; t < steps; t++ {
		res.progressed[t] = make([]bool, m)
		for i := 0; i < m; i++ {
			share := s.Share(t, i)
			if next[i] >= inst.NumJobs(i) {
				// Idle processor: any share is wasted.
				wasted.Add(share)
				continue
			}
			job := inst.Job(i, next[i])
			if res.start[i][next[i]] == -1 && (share > numeric.Eps || job.Req <= numeric.Eps) {
				res.start[i][next[i]] = t
			}
			if job.Req <= numeric.Eps {
				// Zero-requirement job: full speed regardless of share.
				remVol[i] -= 1
				remWork[i] = 0
				res.progressed[t][i] = true
				wasted.Add(share)
				if remVol[i] <= numeric.Eps {
					res.completion[i][next[i]] = t
					res.makespan = t + 1
					advance(inst, i, next, remWork, remVol)
				}
				continue
			}
			// Progress limited by both the share and the per-step speed cap.
			useful := math.Min(share, job.Req)
			useful = math.Min(useful, remWork[i])
			if useful > numeric.Eps {
				res.progressed[t][i] = true
			}
			wasted.Add(share - useful)
			remWork[i] -= useful
			remVol[i] -= useful / job.Req
			if remWork[i] <= numeric.Eps {
				remWork[i] = 0
				remVol[i] = 0
				res.completion[i][next[i]] = t
				res.makespan = t + 1
				advance(inst, i, next, remWork, remVol)
			}
		}
		snapshot(t + 1)
	}

	for i := 0; i < m; i++ {
		if next[i] < inst.NumJobs(i) {
			res.finished = false
		}
	}
	res.wasted = wasted.Sum()
	return res, nil
}

// advance moves processor i to its next job and initialises the remaining
// work/volume trackers.
func advance(inst *Instance, i int, next []int, remWork, remVol []float64) {
	next[i]++
	if next[i] < inst.NumJobs(i) {
		remWork[i] = inst.Job(i, next[i]).Work()
		remVol[i] = inst.Job(i, next[i]).Size
	} else {
		remWork[i] = 0
		remVol[i] = 0
	}
}

// Instance returns the instance the result was computed for.
func (r *Result) Instance() *Instance { return r.inst }

// Schedule returns the schedule the result was computed for.
func (r *Result) Schedule() *Schedule { return r.sched }

// Finished reports whether all jobs completed within the schedule's horizon.
func (r *Result) Finished() bool { return r.finished }

// Makespan returns the number of time steps until the last job completes. It
// is only meaningful when Finished() is true (otherwise it is the completion
// step of the last job that did finish).
func (r *Result) Makespan() int { return r.makespan }

// Wasted returns the total amount of resource assigned but not converted into
// job progress over the whole schedule.
func (r *Result) Wasted() float64 { return r.wasted }

// StartStep returns the zero-based step in which job (i,j) first received
// resource, or -1 if it never started.
func (r *Result) StartStep(i, j int) int { return r.start[i][j] }

// CompletionStep returns the zero-based step in which job (i,j) completed, or
// -1 if it never completed within the schedule's horizon.
func (r *Result) CompletionStep(i, j int) int { return r.completion[i][j] }

// JobsDone returns j_i(t): the number of jobs processor i has completed at
// the start of zero-based step t (t may equal Steps(), giving the final
// state).
func (r *Result) JobsDone(t, i int) int { return r.jobsDone[t][i] }

// RemainingJobs returns n_i(t): the number of unfinished jobs of processor i
// at the start of zero-based step t.
func (r *Result) RemainingJobs(t, i int) int {
	return r.inst.NumJobs(i) - r.jobsDone[t][i]
}

// Active reports whether processor i is active (has unfinished jobs) at the
// start of zero-based step t.
func (r *Result) Active(t, i int) bool { return r.RemainingJobs(t, i) > 0 }

// ActiveJob returns the index of the job processor i works on at the start of
// zero-based step t and true, or (-1, false) if the processor is idle.
func (r *Result) ActiveJob(t, i int) (int, bool) {
	if !r.Active(t, i) {
		return -1, false
	}
	return r.jobsDone[t][i], true
}

// RemainingWork returns the remaining work (alternative-model units) of the
// active job on processor i at the start of zero-based step t; zero if the
// processor is idle.
func (r *Result) RemainingWork(t, i int) float64 { return r.remaining[t][i] }

// Progressed reports whether processor i made progress on a job during
// zero-based step t.
func (r *Result) Progressed(t, i int) bool {
	if t < 0 || t >= len(r.progressed) {
		return false
	}
	return r.progressed[t][i]
}

// FinishedJobDuring reports whether processor i completed a job during
// zero-based step t.
func (r *Result) FinishedJobDuring(t, i int) bool {
	if t < 0 || t+1 >= len(r.jobsDone) {
		return false
	}
	return r.jobsDone[t+1][i] > r.jobsDone[t][i]
}

// Steps returns the number of steps of the executed schedule.
func (r *Result) Steps() int { return r.sched.Steps() }

// NumProcessors returns the instance's processor count.
func (r *Result) NumProcessors() int { return r.inst.NumProcessors() }

// ActiveJobs returns the identifiers of all jobs active at the start of
// zero-based step t (the edge e_{t+1} of the scheduling hypergraph).
func (r *Result) ActiveJobs(t int) []JobID {
	var ids []JobID
	for i := 0; i < r.NumProcessors(); i++ {
		if j, ok := r.ActiveJob(t, i); ok {
			ids = append(ids, JobID{Proc: i, Pos: j})
		}
	}
	return ids
}

// CompletionOrder returns all jobs sorted by completion step (ties broken by
// processor then position). Jobs that never completed are excluded.
func (r *Result) CompletionOrder() []JobID {
	var ids []JobID
	for i := range r.completion {
		for j, c := range r.completion[i] {
			if c >= 0 {
				ids = append(ids, JobID{Proc: i, Pos: j})
			}
		}
	}
	// Insertion sort keeps this dependency-free and is fast enough for the
	// instance sizes handled here; callers needing large-scale sorting go
	// through package sort in the algorithms themselves.
	for a := 1; a < len(ids); a++ {
		for b := a; b > 0; b-- {
			cb, cp := r.completion[ids[b].Proc][ids[b].Pos], r.completion[ids[b-1].Proc][ids[b-1].Pos]
			if cb < cp || (cb == cp && less(ids[b], ids[b-1])) {
				ids[b], ids[b-1] = ids[b-1], ids[b]
			} else {
				break
			}
		}
	}
	return ids
}

func less(a, b JobID) bool {
	if a.Proc != b.Proc {
		return a.Proc < b.Proc
	}
	return a.Pos < b.Pos
}

// MustMakespan executes s on inst and returns the makespan. It panics if the
// schedule is infeasible or does not finish all jobs; it is a convenience for
// tests and examples.
func MustMakespan(inst *Instance, s *Schedule) int {
	res, err := Execute(inst, s)
	if err != nil {
		panic(err)
	}
	if !res.Finished() {
		panic("core: schedule does not finish all jobs")
	}
	return res.Makespan()
}
