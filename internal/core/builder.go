package core

import (
	"math"

	"crsharing/internal/numeric"
)

// Builder incrementally constructs a schedule for an instance while tracking
// the execution state (active job and remaining work per processor). It
// mirrors the semantics of Execute exactly, so a schedule assembled through a
// Builder replays to the same trajectory. All scheduling algorithms in this
// repository construct their output through a Builder rather than
// manipulating allocation matrices directly.
type Builder struct {
	inst     *Instance
	sched    *Schedule
	next     []int     // first unfinished job per processor
	remWork  []float64 // remaining work of the active job (resource units)
	remVol   []float64 // remaining volume of the active job (volume units)
	finished int       // number of fully finished processors
}

// NewBuilder returns a Builder for the given instance positioned at time
// step one with no resource assigned yet.
func NewBuilder(inst *Instance) *Builder {
	m := inst.NumProcessors()
	b := &Builder{
		inst:    inst,
		sched:   &Schedule{},
		next:    make([]int, m),
		remWork: make([]float64, m),
		remVol:  make([]float64, m),
	}
	for i := 0; i < m; i++ {
		if inst.NumJobs(i) > 0 {
			b.remWork[i] = inst.Job(i, 0).Work()
			b.remVol[i] = inst.Job(i, 0).Size
		} else {
			b.finished++
		}
	}
	return b
}

// Instance returns the instance the builder schedules.
func (b *Builder) Instance() *Instance { return b.inst }

// NumProcessors returns the instance's processor count.
func (b *Builder) NumProcessors() int { return b.inst.NumProcessors() }

// Step returns the zero-based index of the time step that would be appended
// next (equivalently, the number of steps already built).
func (b *Builder) Step() int { return b.sched.Steps() }

// Done reports whether every job of every processor has been completed.
func (b *Builder) Done() bool { return b.finished == b.inst.NumProcessors() }

// Active reports whether processor i still has unfinished jobs.
func (b *Builder) Active(i int) bool { return b.next[i] < b.inst.NumJobs(i) }

// ActiveJob returns the index of the first unfinished job of processor i, or
// -1 if the processor is done.
func (b *Builder) ActiveJob(i int) int {
	if !b.Active(i) {
		return -1
	}
	return b.next[i]
}

// RemainingJobs returns n_i(t) for the current step t.
func (b *Builder) RemainingJobs(i int) int { return b.inst.NumJobs(i) - b.next[i] }

// RemainingWork returns the remaining work (resource units still to be spent)
// of processor i's active job; zero if the processor is done.
func (b *Builder) RemainingWork(i int) float64 { return b.remWork[i] }

// RemainingVolume returns the remaining processing volume of processor i's
// active job; zero if the processor is done.
func (b *Builder) RemainingVolume(i int) float64 { return b.remVol[i] }

// DemandThisStep returns the share of the resource processor i can usefully
// consume during the next step: min(r_ij, remaining work) for the active job,
// or 0 if the processor is idle. Assigning more than this is wasted.
func (b *Builder) DemandThisStep(i int) float64 {
	if !b.Active(i) {
		return 0
	}
	req := b.inst.Job(i, b.next[i]).Req
	return math.Min(req, b.remWork[i])
}

// TotalDemandThisStep returns the sum of DemandThisStep over all processors.
func (b *Builder) TotalDemandThisStep() float64 {
	var k numeric.KahanAdder
	for i := 0; i < b.NumProcessors(); i++ {
		k.Add(b.DemandThisStep(i))
	}
	return k.Sum()
}

// AppendStep appends one time step assigning shares[i] to processor i and
// advances the internal execution state. Shares beyond the instance's
// processor count are ignored; a nil or short slice is padded with zeros.
func (b *Builder) AppendStep(shares []float64) {
	m := b.NumProcessors()
	row := make([]float64, m)
	for i := 0; i < m && i < len(shares); i++ {
		row[i] = shares[i]
	}
	b.sched.Alloc = append(b.sched.Alloc, row)

	for i := 0; i < m; i++ {
		if !b.Active(i) {
			continue
		}
		job := b.inst.Job(i, b.next[i])
		if job.Req <= numeric.Eps {
			b.remVol[i] -= 1
			b.remWork[i] = 0
			if b.remVol[i] <= numeric.Eps {
				b.advance(i)
			}
			continue
		}
		useful := math.Min(row[i], job.Req)
		useful = math.Min(useful, b.remWork[i])
		b.remWork[i] -= useful
		b.remVol[i] -= useful / job.Req
		if b.remWork[i] <= numeric.Eps {
			b.advance(i)
		}
	}
}

func (b *Builder) advance(i int) {
	b.next[i]++
	if b.next[i] < b.inst.NumJobs(i) {
		b.remWork[i] = b.inst.Job(i, b.next[i]).Work()
		b.remVol[i] = b.inst.Job(i, b.next[i]).Size
	} else {
		b.remWork[i] = 0
		b.remVol[i] = 0
		b.finished++
	}
}

// Schedule finalises and returns the constructed schedule. The builder can
// continue to be used afterwards; the returned schedule is a snapshot copy.
func (b *Builder) Schedule() *Schedule { return b.sched.Clone() }

// BuildGreedy appends steps until all jobs are finished (or the safety cap of
// steps is exceeded), each step calling pick to obtain the allocation. It is
// a convenience loop shared by the priority-driven algorithms. The safety cap
// guards against allocation functions that assign no useful resource; it is
// generous (total volume steps plus total work steps plus slack).
func (b *Builder) BuildGreedy(pick func(b *Builder) []float64) *Schedule {
	cap := b.safetyCap()
	for !b.Done() && b.Step() < cap {
		b.AppendStep(pick(b))
	}
	return b.Schedule()
}

func (b *Builder) safetyCap() int {
	steps := 0
	for i := 0; i < b.inst.NumProcessors(); i++ {
		for _, j := range b.inst.Jobs(i) {
			steps += j.Steps()
		}
	}
	return steps + int(math.Ceil(b.inst.TotalWork())) + b.inst.TotalJobs() + 16
}
