package core

import (
	"encoding/json"
	"sync"
	"testing"
)

func boundsTestInstance() *Instance {
	return NewInstance(
		[]float64{0.9, 0.3, 0.5, 0.7},
		[]float64{0.2, 0.2, 0.2},
		[]float64{0.6, 0.6},
	)
}

func TestLowerBoundsMemoisedMatchesFresh(t *testing.T) {
	inst := boundsTestInstance()
	fresh := computeLowerBounds(inst)
	if got := LowerBounds(inst); got != fresh {
		t.Fatalf("memoised LowerBounds %+v != fresh %+v", got, fresh)
	}
	// Repeat calls return the identical value.
	if got := inst.Bounds(); got != fresh {
		t.Fatalf("second Bounds call %+v != %+v", got, fresh)
	}
	if got := ApproxRatio(inst, fresh.Best()); got != 1 {
		t.Fatalf("ApproxRatio at the bound = %v, want 1", got)
	}
}

func TestBoundsMemoConcurrentFirstCall(t *testing.T) {
	inst := boundsTestInstance()
	want := computeLowerBounds(inst)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := inst.Bounds(); got != want {
				t.Errorf("concurrent Bounds = %+v, want %+v", got, want)
			}
		}()
	}
	wg.Wait()
}

func TestBoundsMemoResetOnUnmarshalAndClone(t *testing.T) {
	inst := boundsTestInstance()
	stale := inst.Bounds() // warm the memo

	// Decoding different jobs into the same value must drop the stale memo.
	raw, err := json.Marshal(NewInstance([]float64{0.1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, inst); err != nil {
		t.Fatal(err)
	}
	if got := inst.Bounds(); got == stale {
		t.Fatalf("memo survived UnmarshalJSON: %+v", got)
	}
	if got, want := inst.Bounds(), computeLowerBounds(inst); got != want {
		t.Fatalf("post-decode bounds %+v, want %+v", got, want)
	}

	// A clone computes its own memo.
	big := boundsTestInstance()
	_ = big.Bounds()
	clone := big.Clone()
	if got := clone.Bounds(); got != big.Bounds() {
		t.Fatalf("clone bounds %+v != original %+v", got, big.Bounds())
	}
}

func TestBoundsKind(t *testing.T) {
	cases := []struct {
		b    Bounds
		want string
	}{
		{Bounds{Work: 5, Chain: 3}, "work"},
		{Bounds{Work: 3, Chain: 5}, "chain"},
		{Bounds{Work: 4, Chain: 4}, "chain"}, // ties go to chain, like Best
	}
	for _, c := range cases {
		if got := c.b.Kind(); got != c.want {
			t.Errorf("Kind(%+v) = %q, want %q", c.b, got, c.want)
		}
		best := c.b.Best()
		switch c.b.Kind() {
		case "work":
			if best != c.b.Work {
				t.Errorf("Kind says work but Best = %d", best)
			}
		case "chain":
			if best != c.b.Chain {
				t.Errorf("Kind says chain but Best = %d", best)
			}
		}
	}
}

// benchInstance is a larger instance so the bound sweep has real work to do.
func benchInstance() *Instance {
	procs := make([][]float64, 8)
	for i := range procs {
		reqs := make([]float64, 64)
		for j := range reqs {
			reqs[j] = float64((i*64+j)%97+1) / 100
		}
		procs[i] = reqs
	}
	return NewInstance(procs...)
}

// BenchmarkLowerBoundsFresh measures the un-memoised sweep: every iteration
// recomputes the bounds, the behaviour every caller paid before the
// per-instance memo existed.
func BenchmarkLowerBoundsFresh(b *testing.B) {
	inst := benchInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if computeLowerBounds(inst).Best() == 0 {
			b.Fatal("zero bound")
		}
	}
}

// BenchmarkLowerBoundsMemoised measures the memoised path: the sweep runs
// once, every further call is an atomic load. Compare against Fresh for the
// caching delta.
func BenchmarkLowerBoundsMemoised(b *testing.B) {
	inst := benchInstance()
	_ = inst.Bounds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if LowerBounds(inst).Best() == 0 {
			b.Fatal("zero bound")
		}
	}
}

// BenchmarkApproxRatio exercises the ratio helper, which inherits the memo.
func BenchmarkApproxRatio(b *testing.B) {
	inst := benchInstance()
	mk := inst.Bounds().Best() + 3
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ApproxRatio(inst, mk) <= 1 {
			b.Fatal("ratio should exceed 1")
		}
	}
}
