package core_test

import (
	"fmt"

	"crsharing/internal/core"
)

// ExampleExecute shows the model's progress law: a job granted half of its
// requirement runs at half speed and needs two steps.
func ExampleExecute() {
	inst := core.NewInstance([]float64{0.8})
	sched := core.NewSchedule(2, 1)
	sched.Alloc[0][0] = 0.4
	sched.Alloc[1][0] = 0.4

	res, _ := core.Execute(inst, sched)
	fmt.Println("finished:", res.Finished())
	fmt.Println("makespan:", res.Makespan())
	// Output:
	// finished: true
	// makespan: 2
}

// ExampleLowerBounds shows the two lower bounds the paper's analysis uses:
// the aggregate work (Observation 1) and the longest chain.
func ExampleLowerBounds() {
	inst := core.NewInstance(
		[]float64{0.5, 0.5, 0.5},
		[]float64{1.0},
	)
	b := core.LowerBounds(inst)
	fmt.Println("work bound:", b.Work)
	fmt.Println("chain bound:", b.Chain)
	fmt.Println("best:", b.Best())
	// Output:
	// work bound: 3
	// chain bound: 3
	// best: 3
}

// ExampleCheckProperties evaluates the structural properties of Section 4 for
// a hand-built schedule.
func ExampleCheckProperties() {
	inst := core.NewInstance([]float64{0.5, 0.5}, []float64{1.0})
	sched := core.NewSchedule(2, 2)
	sched.Alloc[0] = []float64{0.5, 0.5}
	sched.Alloc[1] = []float64{0.5, 0.5}

	res, _ := core.Execute(inst, sched)
	fmt.Println(core.CheckProperties(res))
	// Output:
	// non-wasting progressive nested balanced
}

// ExampleCanonicalize applies the Lemma 1 transformation to a wasteful
// schedule: the canonical schedule finishes no later and is non-wasting,
// progressive and nested.
func ExampleCanonicalize() {
	inst := core.NewInstance([]float64{0.6, 0.6})
	wasteful := core.NewSchedule(4, 1)
	wasteful.Alloc[0][0] = 0.3
	wasteful.Alloc[1][0] = 0.3
	wasteful.Alloc[2][0] = 0.3
	wasteful.Alloc[3][0] = 0.3

	canon, _ := core.Canonicalize(inst, wasteful)
	fmt.Println("canonical makespan:", core.MustMakespan(inst, canon))
	// Output:
	// canonical makespan: 2
}
