package core

import "math"

// Bounds collects the lower bounds on the optimal makespan used throughout
// the paper's analysis.
type Bounds struct {
	// Work is ⌈Σ_ij r_ij · p_ij⌉: the aggregate-work bound of Observation 1.
	// The aggregate speed of all processors is capped at one, so at most one
	// unit of work completes per step.
	Work int
	// Chain is the critical-path bound: no processor can finish its own job
	// sequence faster than the sum of its jobs' minimum step counts. For unit
	// size jobs this equals n = max_i n_i (used repeatedly in Sections 4-8).
	Chain int
}

// Best returns the strongest of the collected lower bounds.
func (b Bounds) Best() int {
	if b.Work > b.Chain {
		return b.Work
	}
	return b.Chain
}

// Kind names the bound Best returns: "work" when the aggregate-work bound
// strictly dominates, "chain" otherwise (ties go to the chain bound, like
// Best does). Solve telemetry reports it so load runs can see which bound
// carried the pruning.
func (b Bounds) Kind() string {
	if b.Work > b.Chain {
		return "work"
	}
	return "chain"
}

// LowerBounds returns the makespan lower bounds for an instance. The result
// is memoised on the instance: bound seeding, ApproxRatio and telemetry all
// ask for the bounds of the same instance, and the O(total jobs) sweep runs
// only once. Instances are immutable after construction (see Instance), so
// the memo can never go stale.
func LowerBounds(inst *Instance) Bounds { return inst.Bounds() }

// Bounds returns the instance's memoised makespan lower bounds.
func (in *Instance) Bounds() Bounds {
	if b := in.bounds.Load(); b != nil {
		return *b
	}
	b := computeLowerBounds(in)
	in.bounds.Store(&b)
	return b
}

// computeLowerBounds performs the actual sweep; LowerBounds memoises it.
func computeLowerBounds(inst *Instance) Bounds {
	work := inst.TotalWork()
	workBound := int(math.Ceil(work - 1e-9))
	chain := 0
	for i := 0; i < inst.NumProcessors(); i++ {
		steps := 0
		for _, j := range inst.Jobs(i) {
			steps += j.Steps()
		}
		if steps > chain {
			chain = steps
		}
	}
	return Bounds{Work: workBound, Chain: chain}
}

// ApproxRatio returns the ratio of a schedule's makespan to the best known
// lower bound for the instance. It is an upper bound on the schedule's true
// approximation ratio and is used by the experiment harness when computing
// the exact optimum is infeasible.
func ApproxRatio(inst *Instance, makespan int) float64 {
	lb := LowerBounds(inst).Best()
	if lb == 0 {
		if makespan == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(makespan) / float64(lb)
}
