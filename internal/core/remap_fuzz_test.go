package core

import (
	"math"
	"math/rand"
	"testing"
)

// randomRemapInstance draws a small instance directly (internal/gen would be
// an import cycle from here), including occasionally empty processors and
// duplicate job sequences — the edge cases of canonical processor matching.
func randomRemapInstance(rng *rand.Rand) *Instance {
	m := 1 + rng.Intn(5)
	rows := make([][]float64, m)
	for i := range rows {
		rows[i] = make([]float64, rng.Intn(5))
		for j := range rows[i] {
			rows[i][j] = math.Round(rng.Float64()*100) / 100
		}
	}
	// With some probability duplicate a processor's sequence onto another, so
	// the canonical order has ties and the remap must pick a consistent
	// matching among interchangeable processors.
	if m >= 2 && rng.Intn(2) == 0 {
		src, dst := rng.Intn(m), rng.Intn(m)
		rows[dst] = append([]float64(nil), rows[src]...)
	}
	return NewInstance(rows...)
}

// greedySchedule builds a feasible finishing schedule: every step hands each
// active processor its remaining demand, in processor order, until the
// resource runs out.
func greedySchedule(inst *Instance) *Schedule {
	b := NewBuilder(inst)
	m := inst.NumProcessors()
	return b.BuildGreedy(func(b *Builder) []float64 {
		shares := make([]float64, m)
		avail := 1.0
		for i := 0; i < m && avail > 0; i++ {
			if !b.Active(i) {
				continue
			}
			give := math.Min(avail, b.DemandThisStep(i))
			shares[i] = give
			avail -= give
		}
		return shares
	})
}

// permuteInstance returns inst with processor i holding inst's processor
// perm[i].
func permuteInstance(inst *Instance, perm []int) *Instance {
	out := &Instance{Procs: make([][]Job, len(perm))}
	for i, p := range perm {
		out.Procs[i] = append([]Job(nil), inst.Procs[p]...)
	}
	return out
}

// checkRemapRoundTrip is the shared property: for an instance, a feasible
// schedule and a processor permutation,
//
//	(1) permuting processors preserves the canonical fingerprint,
//	(2) the remapped schedule is feasible for the permuted instance with
//	    identical makespan and waste,
//	(3) remapping back restores the original share matrix exactly, and
//	(4) the canonical processor orders of both instances list pairwise
//	    identical job sequences (the invariant RemapScheduleProcs relies on).
func checkRemapRoundTrip(t *testing.T, inst *Instance, perm []int) {
	t.Helper()
	sched := greedySchedule(inst)
	resFrom, err := Execute(inst, sched)
	if err != nil || !resFrom.Finished() {
		t.Fatalf("greedy schedule invalid: err=%v finished=%v", err, resFrom != nil && resFrom.Finished())
	}

	to := permuteInstance(inst, perm)
	if inst.Fingerprint() != to.Fingerprint() {
		t.Fatalf("permutation %v changed the fingerprint", perm)
	}

	fromOrder, toOrder := inst.CanonicalProcOrder(), to.CanonicalProcOrder()
	for k := range fromOrder {
		a, b := inst.Procs[fromOrder[k]], to.Procs[toOrder[k]]
		if len(a) != len(b) {
			t.Fatalf("canonical position %d pairs job sequences of lengths %d and %d", k, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("canonical position %d pairs different job sequences", k)
			}
		}
	}

	remapped := RemapScheduleProcs(inst, to, sched)
	resTo, err := Execute(to, remapped)
	if err != nil {
		t.Fatalf("remapped schedule infeasible: %v", err)
	}
	if !resTo.Finished() {
		t.Fatal("remapped schedule does not finish the permuted instance")
	}
	if resTo.Makespan() != resFrom.Makespan() {
		t.Fatalf("makespan changed under remap: %d -> %d", resFrom.Makespan(), resTo.Makespan())
	}
	if math.Abs(resTo.Wasted()-resFrom.Wasted()) > 1e-9 {
		t.Fatalf("waste changed under remap: %v -> %v", resFrom.Wasted(), resTo.Wasted())
	}

	back := RemapScheduleProcs(to, inst, remapped)
	if back.Steps() != sched.Steps() {
		t.Fatalf("round trip changed step count: %d -> %d", sched.Steps(), back.Steps())
	}
	for s := 0; s < sched.Steps(); s++ {
		for i := 0; i < inst.NumProcessors(); i++ {
			if back.Share(s, i) != sched.Share(s, i) {
				t.Fatalf("round trip altered share (t=%d, i=%d): %v -> %v", s, i, sched.Share(s, i), back.Share(s, i))
			}
		}
	}
}

// TestRemapScheduleProcsRandomPermutations runs the round-trip property over
// many random instances and permutations.
func TestRemapScheduleProcsRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		inst := randomRemapInstance(rng)
		if inst.TotalJobs() == 0 {
			continue
		}
		checkRemapRoundTrip(t, inst, rng.Perm(inst.NumProcessors()))
	}
}

// FuzzRemapScheduleProcs lets the fuzzer pick the instance and permutation
// seeds; any feasibility, fingerprint or round-trip breakage is a crash.
func FuzzRemapScheduleProcs(f *testing.F) {
	for _, seed := range []int64{0, 1, 42, 1 << 20} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		inst := randomRemapInstance(rng)
		if inst.TotalJobs() == 0 {
			t.Skip("degenerate instance")
		}
		checkRemapRoundTrip(t, inst, rng.Perm(inst.NumProcessors()))
	})
}
