// Package core implements the CRSharing model from "Scheduling Shared
// Continuous Resources on Many-Cores" (Althaus et al., SPAA 2014 / Journal of
// Scheduling): m identical processors share a single continuously divisible
// resource. Each processor owns a fixed sequence of jobs; job (i,j) has a
// resource requirement r_ij ∈ [0,1] and a processing volume (size) p_ij > 0.
// In every discrete time step the scheduler splits the resource among the
// processors (Σ_i R_i(t) ≤ 1). A job that receives an x-fraction of its
// requirement progresses at an x-fraction of full speed; granting more than
// the requirement does not help. The objective is to minimise the makespan.
//
// The package provides the instance and schedule types, the execution engine
// realising the progress law (equations (1)/(2) of the paper), the schedule
// properties of Section 4 (non-wasting, progressive, nested, balanced), the
// Lemma-1 canonicalisation, and the lower bounds used throughout the paper's
// analysis.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"crsharing/internal/numeric"
)

// Job is a single phase of work on one processor. Req is the resource
// requirement r_ij ∈ [0,1]: the share of the resource needed to process one
// unit of volume in one time step. Size is the processing volume p_ij > 0;
// unit-size jobs (the case analysed in the paper) have Size == 1.
type Job struct {
	Req  float64 `json:"req"`
	Size float64 `json:"size"`
}

// UnitJob returns a unit-size job with the given resource requirement.
func UnitJob(req float64) Job { return Job{Req: req, Size: 1} }

// Work returns the job's total work p̃_ij = r_ij · p_ij in the alternative
// (variable-speed) model interpretation of Section 3. It is the amount of
// resource that must be spent on the job before it completes.
func (j Job) Work() float64 { return j.Req * j.Size }

// Steps returns the minimum number of time steps the job occupies its
// processor, i.e. the number of steps needed when the job always receives its
// full requirement: ⌈Size⌉ (at full speed one unit of volume completes per
// step). Jobs with Req == 0 also progress one unit of volume per step.
func (j Job) Steps() int {
	if j.Size <= 0 {
		return 0
	}
	return int(math.Ceil(j.Size - numeric.Eps))
}

// Validate reports whether the job's parameters lie in the model's domain.
func (j Job) Validate() error {
	if math.IsNaN(j.Req) || math.IsInf(j.Req, 0) {
		return fmt.Errorf("core: job requirement %v is not finite", j.Req)
	}
	if math.IsNaN(j.Size) || math.IsInf(j.Size, 0) {
		return fmt.Errorf("core: job size %v is not finite", j.Size)
	}
	if j.Req < -numeric.Eps || j.Req > 1+numeric.Eps {
		return fmt.Errorf("core: job requirement %v outside [0,1]", j.Req)
	}
	if j.Size <= 0 {
		return fmt.Errorf("core: job size %v must be positive", j.Size)
	}
	return nil
}

// JobID identifies job (i,j): the j-th job on processor i. Both components
// are zero-based in code; the paper's (i,j) notation is one-based.
type JobID struct {
	Proc int `json:"proc"`
	Pos  int `json:"pos"`
}

// String renders the identifier in the paper's one-based (i, j) notation.
func (id JobID) String() string { return fmt.Sprintf("(%d,%d)", id.Proc+1, id.Pos+1) }

// Instance is a CRSharing problem instance: one job sequence per processor.
// The zero value is an empty instance with no processors. Instances are
// treated as immutable once built: the solvers, the memo cache and the
// per-instance bound memo below all rely on Procs not changing afterwards.
type Instance struct {
	// Procs[i] is the ordered job sequence of processor i.
	Procs [][]Job `json:"procs"`

	// bounds memoises LowerBounds: branch-and-bound seeding, ApproxRatio and
	// solve telemetry all ask for the same bounds of the same instance, so
	// the O(total jobs) sweep runs once. The atomic pointer keeps concurrent
	// first calls safe (they may both compute, the stores are idempotent).
	bounds atomic.Pointer[Bounds]

	// fp memoises Fingerprint the same way: the serving layer hashes every
	// request once for the memo cache, again for the response, and once per
	// batch shard, all over the same immutable instance.
	fp atomic.Pointer[Fingerprint]
}

// NewInstance builds an instance from per-processor requirement sequences of
// unit-size jobs. It is the most convenient constructor for the unit-size
// case studied in the paper.
func NewInstance(reqs ...[]float64) *Instance {
	inst := &Instance{Procs: make([][]Job, len(reqs))}
	for i, rs := range reqs {
		inst.Procs[i] = make([]Job, len(rs))
		for j, r := range rs {
			inst.Procs[i][j] = UnitJob(r)
		}
	}
	return inst
}

// NewSizedInstance builds an instance with explicit jobs per processor.
func NewSizedInstance(procs ...[]Job) *Instance {
	inst := &Instance{Procs: make([][]Job, len(procs))}
	for i, js := range procs {
		inst.Procs[i] = append([]Job(nil), js...)
	}
	return inst
}

// NumProcessors returns m, the number of processors.
func (in *Instance) NumProcessors() int { return len(in.Procs) }

// NumJobs returns n_i, the number of jobs on processor i.
func (in *Instance) NumJobs(i int) int { return len(in.Procs[i]) }

// TotalJobs returns Σ_i n_i.
func (in *Instance) TotalJobs() int {
	total := 0
	for _, js := range in.Procs {
		total += len(js)
	}
	return total
}

// MaxJobs returns n = max_i n_i, the maximum number of jobs on any processor.
func (in *Instance) MaxJobs() int {
	n := 0
	for _, js := range in.Procs {
		if len(js) > n {
			n = len(js)
		}
	}
	return n
}

// Job returns job (i,j) (zero-based).
func (in *Instance) Job(i, j int) Job { return in.Procs[i][j] }

// Jobs returns the job sequence of processor i (the caller must not modify
// the returned slice).
func (in *Instance) Jobs(i int) []Job { return in.Procs[i] }

// TotalWork returns Σ_ij r_ij · p_ij, the aggregate work of the instance in
// the alternative model interpretation. By Observation 1 it is a lower bound
// on the makespan of any feasible schedule.
func (in *Instance) TotalWork() float64 {
	var k numeric.KahanAdder
	for _, js := range in.Procs {
		for _, j := range js {
			k.Add(j.Work())
		}
	}
	return k.Sum()
}

// IsUnitSize reports whether every job has size exactly 1 (the restriction
// under which all of the paper's positive results are stated).
func (in *Instance) IsUnitSize() bool {
	for _, js := range in.Procs {
		for _, j := range js {
			if !numeric.Eq(j.Size, 1) {
				return false
			}
		}
	}
	return true
}

// ProcsWithAtLeast returns M_j = { i | n_i ≥ j } for a one-based job index j,
// i.e. the processors that have at least j jobs (Section 3 notation).
func (in *Instance) ProcsWithAtLeast(j int) []int {
	var procs []int
	for i, js := range in.Procs {
		if len(js) >= j {
			procs = append(procs, i)
		}
	}
	return procs
}

// Validate checks that the instance lies in the model's domain: every job has
// a requirement in [0,1] and a positive size.
func (in *Instance) Validate() error {
	if in == nil {
		return errors.New("core: nil instance")
	}
	for i, js := range in.Procs {
		for j, job := range js {
			if err := job.Validate(); err != nil {
				return fmt.Errorf("job (%d,%d): %w", i+1, j+1, err)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{Procs: make([][]Job, len(in.Procs))}
	for i, js := range in.Procs {
		out.Procs[i] = append([]Job(nil), js...)
	}
	return out
}

// Equal reports whether two instances have identical processors and jobs
// (exact float comparison; intended for tests and deduplication).
func (in *Instance) Equal(other *Instance) bool {
	if in.NumProcessors() != other.NumProcessors() {
		return false
	}
	for i := range in.Procs {
		if len(in.Procs[i]) != len(other.Procs[i]) {
			return false
		}
		for j := range in.Procs[i] {
			if in.Procs[i][j] != other.Procs[i][j] {
				return false
			}
		}
	}
	return true
}

// String renders a compact human-readable description of the instance, one
// processor per line with requirements in percent (the paper's figures use
// the same convention).
func (in *Instance) String() string {
	s := fmt.Sprintf("CRSharing instance: m=%d, jobs=%d\n", in.NumProcessors(), in.TotalJobs())
	for i, js := range in.Procs {
		s += fmt.Sprintf("  p%d:", i+1)
		for _, j := range js {
			if numeric.Eq(j.Size, 1) {
				s += fmt.Sprintf(" %3.0f", j.Req*100)
			} else {
				s += fmt.Sprintf(" %3.0f(x%.2g)", j.Req*100, j.Size)
			}
		}
		s += "\n"
	}
	return s
}

// MarshalJSON implements json.Marshaler.
func (in *Instance) MarshalJSON() ([]byte, error) {
	type alias Instance
	return json.Marshal((*alias)(in))
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded
// instance.
func (in *Instance) UnmarshalJSON(data []byte) error {
	type wire struct {
		Procs [][]Job `json:"procs"`
	}
	var w wire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	in.Procs = w.Procs
	in.bounds.Store(nil) // decoding replaces the jobs; drop any stale memo
	in.fp.Store(nil)
	return in.Validate()
}
