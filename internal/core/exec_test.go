package core

import (
	"math"
	"testing"

	"crsharing/internal/numeric"
)

func TestExecuteSingleJobFullSpeed(t *testing.T) {
	inst := NewInstance([]float64{0.5})
	s := NewSchedule(1, 1)
	s.Alloc[0][0] = 0.5
	res, err := Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() {
		t.Fatalf("job should finish in one step at full requirement")
	}
	if got := res.Makespan(); got != 1 {
		t.Fatalf("makespan = %d, want 1", got)
	}
	if got := res.CompletionStep(0, 0); got != 0 {
		t.Fatalf("completion step = %d, want 0", got)
	}
}

func TestExecuteHalfSpeedTakesTwoSteps(t *testing.T) {
	inst := NewInstance([]float64{0.8})
	s := NewSchedule(2, 1)
	s.Alloc[0][0] = 0.4
	s.Alloc[1][0] = 0.4
	res, err := Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() || res.Makespan() != 2 {
		t.Fatalf("finished=%v makespan=%d, want finished in 2 steps", res.Finished(), res.Makespan())
	}
}

func TestExecuteOverProvisioningDoesNotSpeedUp(t *testing.T) {
	// Granting more than the requirement must not process more than one
	// volume unit per step.
	inst := NewInstance([]float64{0.3, 0.3})
	s := NewSchedule(1, 1)
	s.Alloc[0][0] = 1.0
	res, err := Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Finished() {
		t.Fatalf("second job must not be processed in the same step")
	}
	if got := res.CompletionStep(0, 0); got != 0 {
		t.Fatalf("first job completion = %d, want 0", got)
	}
	if want := 1.0 - 0.3; math.Abs(res.Wasted()-want) > 1e-9 {
		t.Fatalf("wasted = %v, want %v", res.Wasted(), want)
	}
}

func TestExecuteNoSpillIntoNextJob(t *testing.T) {
	// A processor processes at most one job per time step even if the share
	// would suffice for both.
	inst := NewInstance([]float64{0.1, 0.1})
	s := NewSchedule(2, 1)
	s.Alloc[0][0] = 0.5
	s.Alloc[1][0] = 0.1
	res, err := Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() || res.Makespan() != 2 {
		t.Fatalf("finished=%v makespan=%d, want 2 steps", res.Finished(), res.Makespan())
	}
	if res.CompletionStep(0, 1) != 1 {
		t.Fatalf("second job must complete in step 2")
	}
}

func TestExecuteZeroRequirementJobTakesOneStep(t *testing.T) {
	inst := NewInstance([]float64{0, 0.5})
	s := NewSchedule(2, 1)
	s.Alloc[1][0] = 0.5
	res, err := Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() || res.Makespan() != 2 {
		t.Fatalf("finished=%v makespan=%d, want 2", res.Finished(), res.Makespan())
	}
	if res.CompletionStep(0, 0) != 0 {
		t.Fatalf("zero-requirement job should finish in step 1 without resource")
	}
}

func TestExecuteOverusedResourceRejected(t *testing.T) {
	inst := NewInstance([]float64{0.5}, []float64{0.7})
	s := NewSchedule(1, 2)
	s.Alloc[0][0] = 0.6
	s.Alloc[0][1] = 0.6
	if _, err := Execute(inst, s); err == nil {
		t.Fatalf("expected feasibility error for Σ R_i > 1")
	}
}

func TestExecuteNegativeShareRejected(t *testing.T) {
	inst := NewInstance([]float64{0.5})
	s := NewSchedule(1, 1)
	s.Alloc[0][0] = -0.1
	if _, err := Execute(inst, s); err == nil {
		t.Fatalf("expected feasibility error for negative share")
	}
}

func TestExecuteArbitrarySizes(t *testing.T) {
	// A job of size 3 with requirement 0.2 needs 0.6 resource in total and at
	// least 3 steps (speed cap).
	inst := NewSizedInstance([]Job{{Req: 0.2, Size: 3}})
	s := NewSchedule(3, 1)
	for t0 := 0; t0 < 3; t0++ {
		s.Alloc[t0][0] = 0.2
	}
	res, err := Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() || res.Makespan() != 3 {
		t.Fatalf("finished=%v makespan=%d, want 3", res.Finished(), res.Makespan())
	}

	// Granting the full resource does not beat the per-job speed cap.
	s2 := NewSchedule(2, 1)
	s2.Alloc[0][0] = 1
	s2.Alloc[1][0] = 1
	res2, err := Execute(inst, s2)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res2.Finished() {
		t.Fatalf("size-3 job cannot finish in 2 steps regardless of share")
	}
}

func TestExecuteUnfinishedSchedule(t *testing.T) {
	inst := NewInstance([]float64{0.5, 0.5})
	s := NewSchedule(1, 1)
	s.Alloc[0][0] = 0.5
	res, err := Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Finished() {
		t.Fatalf("schedule with one step cannot finish two jobs")
	}
	if res.CompletionStep(0, 1) != -1 {
		t.Fatalf("unfinished job must report completion -1")
	}
}

func TestExecuteTrajectoryAccessors(t *testing.T) {
	inst := NewInstance([]float64{0.6, 0.4}, []float64{0.5})
	s := NewSchedule(3, 2)
	s.Alloc[0][0] = 0.6
	s.Alloc[0][1] = 0.4
	s.Alloc[1][0] = 0.4
	s.Alloc[1][1] = 0.1
	s.Alloc[2][1] = 0.0
	res, err := Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if got := res.RemainingJobs(0, 0); got != 2 {
		t.Fatalf("n_1(1) = %d, want 2", got)
	}
	if got := res.RemainingJobs(1, 0); got != 1 {
		t.Fatalf("n_1(2) = %d, want 1", got)
	}
	if j, ok := res.ActiveJob(1, 0); !ok || j != 1 {
		t.Fatalf("active job of p1 at step 2 = (%d,%v), want (1,true)", j, ok)
	}
	if got := res.RemainingWork(1, 1); !numeric.Eq(got, 0.1) {
		t.Fatalf("remaining work of p2 at step 2 = %v, want 0.1", got)
	}
	if !res.FinishedJobDuring(0, 0) {
		t.Fatalf("p1 finishes its first job during step 1")
	}
	if !res.FinishedJobDuring(1, 1) {
		t.Fatalf("p2 finishes its job during step 2 (0.4 + 0.1 covers the requirement of 0.5)")
	}
	ids := res.ActiveJobs(0)
	if len(ids) != 2 {
		t.Fatalf("two jobs active at step 1, got %d", len(ids))
	}
}

func TestExecuteActiveJobsAndCompletionOrder(t *testing.T) {
	inst := NewInstance([]float64{0.5, 0.5}, []float64{1.0})
	s := NewSchedule(3, 2)
	s.Alloc[0][0] = 0.5
	s.Alloc[0][1] = 0.5
	s.Alloc[1][0] = 0.5
	s.Alloc[1][1] = 0.5
	s.Alloc[2][1] = 1.0 // wasted: p2 has nothing left after... actually p2 finishes at step 3
	res, err := Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	order := res.CompletionOrder()
	if len(order) == 0 {
		t.Fatalf("expected completed jobs in order")
	}
	first := order[0]
	if first.Proc != 0 || first.Pos != 0 {
		t.Fatalf("first completed job = %v, want (1,1)", first)
	}
}

func TestMustMakespanPanicsOnUnfinished(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for unfinished schedule")
		}
	}()
	inst := NewInstance([]float64{1, 1})
	MustMakespan(inst, NewSchedule(1, 1))
}

func TestScheduleTrim(t *testing.T) {
	s := NewSchedule(3, 2)
	s.Alloc[0][0] = 0.5
	s.Trim()
	if s.Steps() != 1 {
		t.Fatalf("Trim should drop trailing all-zero steps, got %d steps", s.Steps())
	}
}

func TestScheduleStringAndShare(t *testing.T) {
	s := NewSchedule(1, 2)
	s.Alloc[0][0] = 0.25
	if s.Share(0, 0) != 0.25 || s.Share(5, 1) != 0 || s.Share(0, 7) != 0 {
		t.Fatalf("Share out-of-range accesses must return 0")
	}
	if s.String() == "" {
		t.Fatalf("String must render something")
	}
}
