package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestExecuteMonotoneInResource checks a basic sanity property of the
// progress law: granting a processor at least as much resource in every step
// never delays any of its jobs' completions.
func TestExecuteMonotoneInResource(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(3)
		inst := randomInstance(rng, m, 1+rng.Intn(4), 0.05, 1.0)

		// Base schedule: random shares, feasible.
		steps := 4 + rng.Intn(10)
		base := NewSchedule(steps, m)
		for tt := 0; tt < steps; tt++ {
			avail := 1.0
			for _, i := range rng.Perm(m) {
				give := rng.Float64() * avail * 0.7
				base.Alloc[tt][i] = give
				avail -= give
			}
		}
		// Boosted schedule: scale every share up toward the remaining
		// capacity of the step, never shrinking any share.
		boosted := base.Clone()
		for tt := 0; tt < steps; tt++ {
			total := boosted.StepTotal(tt)
			headroom := 1 - total
			if headroom <= 0 {
				continue
			}
			// Give the headroom to one processor on top of its base share.
			i := rng.Intn(m)
			boosted.Alloc[tt][i] += headroom * rng.Float64()
		}

		resBase, err := Execute(inst, base)
		if err != nil {
			return false
		}
		resBoost, err := Execute(inst, boosted)
		if err != nil {
			return false
		}
		for i := 0; i < m; i++ {
			for j := 0; j < inst.NumJobs(i); j++ {
				cb := resBase.CompletionStep(i, j)
				cB := resBoost.CompletionStep(i, j)
				if cb < 0 {
					continue // not finished under the base schedule: nothing to compare
				}
				if cB < 0 || cB > cb {
					return false // more resource must not delay a completion
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatalf("monotonicity violated: %v", err)
	}
}

// TestExecutePrefixConsistency checks that truncating a schedule does not
// change what happened in the retained prefix.
func TestExecutePrefixConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(3)
		inst := randomInstance(rng, m, 1+rng.Intn(4), 0.05, 1.0)
		sched := balancedGreedySchedule(inst)
		if sched.Steps() < 2 {
			return true
		}
		cut := 1 + rng.Intn(sched.Steps()-1)
		prefix := &Schedule{Alloc: sched.Alloc[:cut]}

		full, err := Execute(inst, sched)
		if err != nil {
			return false
		}
		part, err := Execute(inst, prefix)
		if err != nil {
			return false
		}
		for i := 0; i < m; i++ {
			for j := 0; j < inst.NumJobs(i); j++ {
				cf := full.CompletionStep(i, j)
				cp := part.CompletionStep(i, j)
				if cf >= 0 && cf < cut && cp != cf {
					return false // a completion inside the prefix must be identical
				}
				if cp >= 0 && cp != cf {
					return false // the prefix cannot finish a job the full run finished later
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatalf("prefix consistency violated: %v", err)
	}
}

// TestCanonicalizeIdempotent checks that canonicalising twice gives the same
// makespan as canonicalising once (the canonical schedule is already
// non-wasting, progressive and nested, so the second pass has nothing to
// improve structurally).
func TestCanonicalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(rng, 1+rng.Intn(4), 1+rng.Intn(4), 0.05, 1.0)
		orig := balancedGreedySchedule(inst)
		once, err := Canonicalize(inst, orig)
		if err != nil {
			t.Fatalf("Canonicalize: %v", err)
		}
		twice, err := Canonicalize(inst, once)
		if err != nil {
			t.Fatalf("Canonicalize (second pass): %v", err)
		}
		a, b := MustMakespan(inst, once), MustMakespan(inst, twice)
		if b > a {
			t.Fatalf("trial %d: second canonicalisation made the schedule worse: %d -> %d", trial, a, b)
		}
	}
}
