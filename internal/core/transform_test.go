package core

import (
	"math/rand"
	"testing"
)

// randomFeasibleSchedule builds a feasible (but deliberately sloppy) schedule
// for the instance: each step splits a random fraction of the resource among
// random processors, and the horizon is extended until everything finishes.
func randomFeasibleSchedule(rng *rand.Rand, inst *Instance) *Schedule {
	b := NewBuilder(inst)
	for !b.Done() {
		m := inst.NumProcessors()
		shares := make([]float64, m)
		avail := 0.2 + 0.8*rng.Float64() // intentionally wasteful: not always 1
		for _, i := range rng.Perm(m) {
			if !b.Active(i) {
				continue
			}
			give := avail * (0.2 + 0.8*rng.Float64())
			if d := b.DemandThisStep(i); give > d {
				give = d
			}
			shares[i] = give
			avail -= give
		}
		// Guarantee progress so the loop terminates: give the first active
		// processor its demand if nothing was assigned.
		progress := false
		for i := 0; i < m; i++ {
			if shares[i] > 1e-12 {
				progress = true
				break
			}
		}
		if !progress {
			for i := 0; i < m; i++ {
				if b.Active(i) {
					d := b.DemandThisStep(i)
					if d > 1 {
						d = 1
					}
					if d == 0 {
						d = 0 // zero-requirement job progresses anyway
					}
					shares[i] = d
					break
				}
			}
		}
		b.AppendStep(shares)
	}
	return b.Schedule()
}

func TestCanonicalizeProducesLemma1Properties(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(4)
		inst := randomInstance(rng, m, 1+rng.Intn(5), 0.05, 1.0)
		orig := randomFeasibleSchedule(rng, inst)
		origRes, err := Execute(inst, orig)
		if err != nil {
			t.Fatalf("Execute original: %v", err)
		}
		if !origRes.Finished() {
			t.Fatalf("random schedule must finish (builder loops until done)")
		}

		canon, err := Canonicalize(inst, orig)
		if err != nil {
			t.Fatalf("Canonicalize: %v", err)
		}
		res, err := Execute(inst, canon)
		if err != nil {
			t.Fatalf("Execute canonical: %v", err)
		}
		if !res.Finished() {
			t.Fatalf("canonical schedule must finish all jobs")
		}
		if res.Makespan() > origRes.Makespan() {
			t.Fatalf("trial %d: canonicalisation increased the makespan from %d to %d\n%v",
				trial, origRes.Makespan(), res.Makespan(), inst)
		}
		p := CheckProperties(res)
		if !p.NonWasting {
			t.Fatalf("trial %d: canonical schedule not non-wasting\n%v\n%v", trial, inst, canon)
		}
		if !p.Progressive {
			t.Fatalf("trial %d: canonical schedule not progressive\n%v\n%v", trial, inst, canon)
		}
		if !p.Nested {
			t.Fatalf("trial %d: canonical schedule not nested\n%v\n%v", trial, inst, canon)
		}
	}
}

func TestCanonicalizeKeepsOptimalSchedulesOptimal(t *testing.T) {
	// Canonicalising the (already optimal) Figure 2b schedule must not change
	// its makespan.
	inst := figure2Instance()
	canon, err := Canonicalize(inst, figure2NestedSchedule())
	if err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	if got := MustMakespan(inst, canon); got != 4 {
		t.Fatalf("canonicalised Figure 2 schedule has makespan %d, want 4", got)
	}
}

func TestCanonicalizeFixesUnnestedSchedule(t *testing.T) {
	inst := figure2Instance()
	canon, err := Canonicalize(inst, figure2UnnestedSchedule())
	if err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	res, err := Execute(inst, canon)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() || res.Makespan() != 4 {
		t.Fatalf("canonical schedule should still finish in 4 steps, got %d", res.Makespan())
	}
	if !IsNested(res) {
		t.Fatalf("canonicalisation must produce a nested schedule")
	}
}

func TestCanonicalizeRejectsInfeasibleInput(t *testing.T) {
	inst := NewInstance([]float64{0.5}, []float64{0.6})
	bad := NewSchedule(1, 2)
	bad.Alloc[0] = []float64{0.8, 0.8}
	if _, err := Canonicalize(inst, bad); err == nil {
		t.Fatalf("expected error for resource-overusing schedule")
	}
}

func TestCanonicalizeResultMatchesCanonicalize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(rng, 3, 3, 0.1, 1.0)
	orig := randomFeasibleSchedule(rng, inst)
	res, err := Execute(inst, orig)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	a := CanonicalizeResult(res)
	b, err := Canonicalize(inst, orig)
	if err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	if MustMakespan(inst, a) != MustMakespan(inst, b) {
		t.Fatalf("the two canonicalisation entry points disagree")
	}
}
