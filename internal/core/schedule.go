package core

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"crsharing/internal/numeric"
)

// Schedule is a feasible resource assignment: Alloc[t][i] is the share
// R_i(t+1) of the resource granted to processor i during (zero-based) time
// step t. A schedule never references the instance it was computed for; use
// Execute to evaluate it against an instance.
type Schedule struct {
	Alloc [][]float64 `json:"alloc"`
}

// NewSchedule allocates an all-zero schedule with the given number of steps
// and processors.
func NewSchedule(steps, procs int) *Schedule {
	alloc := make([][]float64, steps)
	backing := make([]float64, steps*procs)
	for t := range alloc {
		alloc[t], backing = backing[:procs:procs], backing[procs:]
	}
	return &Schedule{Alloc: alloc}
}

// Steps returns the number of time steps covered by the schedule.
func (s *Schedule) Steps() int { return len(s.Alloc) }

// NumProcessors returns the number of processors the schedule assigns
// resource shares to (0 for an empty schedule).
func (s *Schedule) NumProcessors() int {
	if len(s.Alloc) == 0 {
		return 0
	}
	return len(s.Alloc[0])
}

// Share returns R_i(t) for zero-based step t and processor i. Steps beyond
// the schedule's horizon have share zero.
func (s *Schedule) Share(t, i int) float64 {
	if t < 0 || t >= len(s.Alloc) || i < 0 || i >= len(s.Alloc[t]) {
		return 0
	}
	return s.Alloc[t][i]
}

// StepTotal returns Σ_i R_i(t) for zero-based step t.
func (s *Schedule) StepTotal(t int) float64 {
	if t < 0 || t >= len(s.Alloc) {
		return 0
	}
	return numeric.Sum(s.Alloc[t])
}

// AppendStep appends one time step with the given per-processor shares.
func (s *Schedule) AppendStep(shares []float64) {
	s.Alloc = append(s.Alloc, append([]float64(nil), shares...))
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	out := NewSchedule(s.Steps(), s.NumProcessors())
	for t := range s.Alloc {
		copy(out.Alloc[t], s.Alloc[t])
	}
	return out
}

// Trim removes trailing time steps in which no resource is assigned. Such
// steps can only arise from over-provisioned horizons and never shorten the
// effective schedule.
func (s *Schedule) Trim() {
	for len(s.Alloc) > 0 {
		last := s.Alloc[len(s.Alloc)-1]
		if !numeric.IsZero(numeric.Sum(last)) {
			return
		}
		s.Alloc = s.Alloc[:len(s.Alloc)-1]
	}
}

// ValidateFeasible checks the two structural feasibility constraints of the
// model: shares are non-negative and, in every step, the aggregate share does
// not exceed the resource capacity of one.
func (s *Schedule) ValidateFeasible() error {
	for t, row := range s.Alloc {
		for i, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("core: share R_%d(%d) = %v is not finite", i+1, t+1, x)
			}
			if x < -numeric.Eps {
				return fmt.Errorf("core: negative share R_%d(%d) = %v", i+1, t+1, x)
			}
		}
		if total := numeric.Sum(row); total > 1+1e-7 {
			return fmt.Errorf("core: resource overused at step %d: Σ R_i = %v > 1", t+1, total)
		}
	}
	return nil
}

// String renders the schedule as a step-by-step table of shares in percent.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule with %d steps, %d processors\n", s.Steps(), s.NumProcessors())
	for t, row := range s.Alloc {
		fmt.Fprintf(&b, "  t=%3d:", t+1)
		for _, x := range row {
			fmt.Fprintf(&b, " %6.2f", x*100)
		}
		fmt.Fprintf(&b, "  (Σ=%6.2f)\n", numeric.Sum(row)*100)
	}
	return b.String()
}

// MarshalJSON implements json.Marshaler.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	type alias Schedule
	return json.Marshal((*alias)(s))
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	type alias Schedule
	return json.Unmarshal(data, (*alias)(s))
}
