package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderTracksStateLikeExecute(t *testing.T) {
	// Whatever allocation sequence a builder applies, executing the resulting
	// schedule must reproduce the same final state (property-based check).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 1+rng.Intn(3), 1+rng.Intn(4), 0.05, 1.0)
		b := NewBuilder(inst)
		steps := 1 + rng.Intn(8)
		for s := 0; s < steps && !b.Done(); s++ {
			shares := make([]float64, inst.NumProcessors())
			avail := 1.0
			for i := 0; i < inst.NumProcessors(); i++ {
				if !b.Active(i) {
					continue
				}
				give := rng.Float64() * avail
				if d := b.DemandThisStep(i); give > d {
					give = d
				}
				shares[i] = give
				avail -= give
			}
			b.AppendStep(shares)
		}
		sched := b.Schedule()
		res, err := Execute(inst, sched)
		if err != nil {
			return false
		}
		for i := 0; i < inst.NumProcessors(); i++ {
			if res.JobsDone(sched.Steps(), i) != inst.NumJobs(i)-b.RemainingJobs(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("builder/executor divergence: %v", err)
	}
}

func TestBuilderDemandAndDone(t *testing.T) {
	inst := NewInstance([]float64{0.5, 0.3}, []float64{0.8})
	b := NewBuilder(inst)
	if b.Done() {
		t.Fatalf("fresh builder cannot be done")
	}
	if got := b.DemandThisStep(0); got != 0.5 {
		t.Fatalf("demand = %v, want 0.5", got)
	}
	if got := b.TotalDemandThisStep(); got != 1.3 {
		t.Fatalf("total demand = %v, want 1.3", got)
	}
	b.AppendStep([]float64{0.5, 0.5})
	if b.ActiveJob(0) != 1 {
		t.Fatalf("processor 1 should be on its second job")
	}
	if b.RemainingJobs(1) != 1 {
		t.Fatalf("processor 2 should still have 1 job")
	}
	if got := b.RemainingWork(1); !almostEq(got, 0.3) {
		t.Fatalf("remaining work = %v, want 0.3", got)
	}
	b.AppendStep([]float64{0.3, 0.3})
	if !b.Done() {
		t.Fatalf("all jobs should be finished")
	}
	if b.ActiveJob(0) != -1 || b.DemandThisStep(0) != 0 {
		t.Fatalf("finished processor should report no active job and zero demand")
	}
}

func TestBuilderShortSharesArePadded(t *testing.T) {
	inst := NewInstance([]float64{0.5}, []float64{0.5})
	b := NewBuilder(inst)
	b.AppendStep([]float64{0.5}) // second processor implicitly 0
	if b.Active(0) {
		t.Fatalf("processor 1 should have finished")
	}
	if !b.Active(1) {
		t.Fatalf("processor 2 received nothing and must still be active")
	}
}

func TestBuilderBuildGreedyTerminatesOnStarvation(t *testing.T) {
	// An allocation function that never assigns anything still terminates
	// thanks to the safety cap (the resulting schedule simply does not finish
	// the jobs).
	inst := NewInstance([]float64{0.5, 0.5})
	b := NewBuilder(inst)
	sched := b.BuildGreedy(func(b *Builder) []float64 { return []float64{0} })
	if b.Done() {
		t.Fatalf("starved builder cannot have finished")
	}
	if sched.Steps() == 0 {
		t.Fatalf("safety cap should still have produced steps")
	}
}

func TestBuilderVolumeTracking(t *testing.T) {
	inst := NewSizedInstance([]Job{{Req: 0.5, Size: 2}})
	b := NewBuilder(inst)
	if got := b.RemainingVolume(0); got != 2 {
		t.Fatalf("remaining volume = %v, want 2", got)
	}
	b.AppendStep([]float64{0.5})
	if got := b.RemainingVolume(0); !almostEq(got, 1) {
		t.Fatalf("after one full-speed step remaining volume = %v, want 1", got)
	}
	b.AppendStep([]float64{0.25})
	if got := b.RemainingVolume(0); !almostEq(got, 0.5) {
		t.Fatalf("after a half-speed step remaining volume = %v, want 0.5", got)
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
