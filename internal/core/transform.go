package core

import (
	"math"
	"sort"

	"crsharing/internal/numeric"
)

// Canonicalize implements the guarantee of Lemma 1: given any feasible
// schedule it produces a schedule that is non-wasting, progressive and nested
// and whose makespan is not larger.
//
// The construction differs in mechanism from the paper's step-by-step
// exchange argument but achieves the same statement: the jobs are re-scheduled
// greedily in the order in which the original schedule completes them. In
// every step the highest-priority active jobs receive their full remaining
// demand until the resource is exhausted, with at most the last one served
// partially. A job can only receive resource once all higher-priority active
// jobs are satisfied, which yields the nested structure; serving full demands
// first makes the schedule progressive; and spending the whole resource
// whenever some active job can absorb it makes it non-wasting. An exchange
// argument (each job's completion can only move earlier because the resource
// spent on lower-priority jobs in the original schedule is redirected to
// higher-priority ones) shows the makespan does not increase; the property is
// additionally validated by the test suite on randomized instances.
//
// The input schedule must finish all jobs of the instance; otherwise an error
// from Execute or an unfinished-schedule condition is reported by returning
// the execution result's state to the caller via the error.
func Canonicalize(inst *Instance, s *Schedule) (*Schedule, error) {
	res, err := Execute(inst, s)
	if err != nil {
		return nil, err
	}
	return canonicalizeFromResult(res), nil
}

// CanonicalizeResult is like Canonicalize but reuses an already computed
// execution result.
func CanonicalizeResult(res *Result) *Schedule {
	return canonicalizeFromResult(res)
}

func canonicalizeFromResult(res *Result) *Schedule {
	inst := res.Instance()
	m := inst.NumProcessors()

	// Priority of a job: its completion step in the original schedule; jobs
	// the original schedule never finished come last, ordered by processor
	// and position so the output is deterministic and still finishes them.
	prio := make([][]int, m)
	const unfinished = math.MaxInt32
	for i := 0; i < m; i++ {
		prio[i] = make([]int, inst.NumJobs(i))
		for j := range prio[i] {
			c := res.CompletionStep(i, j)
			if c < 0 {
				c = unfinished
			}
			prio[i][j] = c
		}
	}

	b := NewBuilder(inst)
	return b.BuildGreedy(func(b *Builder) []float64 {
		type cand struct {
			proc int
			prio int
		}
		var cands []cand
		for i := 0; i < m; i++ {
			if b.Active(i) {
				cands = append(cands, cand{proc: i, prio: prio[i][b.ActiveJob(i)]})
			}
		}
		sort.Slice(cands, func(a, c int) bool {
			if cands[a].prio != cands[c].prio {
				return cands[a].prio < cands[c].prio
			}
			return cands[a].proc < cands[c].proc
		})
		shares := make([]float64, m)
		avail := 1.0
		for _, c := range cands {
			if avail <= numeric.Eps {
				break
			}
			give := math.Min(avail, b.DemandThisStep(c.proc))
			shares[c.proc] = give
			avail -= give
		}
		return shares
	})
}
