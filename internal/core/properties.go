package core

import (
	"fmt"

	"crsharing/internal/numeric"
)

// Properties summarises which of the structural schedule properties of
// Section 4 (Definitions 2-5) a schedule satisfies with respect to an
// instance.
type Properties struct {
	NonWasting  bool
	Progressive bool
	Nested      bool
	Balanced    bool
}

// String renders the property set compactly, e.g. "non-wasting progressive nested".
func (p Properties) String() string {
	s := ""
	add := func(ok bool, name string) {
		if ok {
			if s != "" {
				s += " "
			}
			s += name
		}
	}
	add(p.NonWasting, "non-wasting")
	add(p.Progressive, "progressive")
	add(p.Nested, "nested")
	add(p.Balanced, "balanced")
	if s == "" {
		return "none"
	}
	return s
}

// CheckProperties evaluates all four structural properties for the executed
// schedule.
func CheckProperties(r *Result) Properties {
	return Properties{
		NonWasting:  IsNonWasting(r),
		Progressive: IsProgressive(r),
		Nested:      IsNested(r),
		Balanced:    IsBalanced(r),
	}
}

// IsNonWasting implements Definition 2: a schedule is non-wasting if, during
// every time step t with Σ_i R_i(t) < 1, all jobs active at the start of t
// are finished during t.
func IsNonWasting(r *Result) bool {
	for t := 0; t < r.Steps(); t++ {
		if numeric.Geq(r.Schedule().StepTotal(t), 1) {
			continue
		}
		for i := 0; i < r.NumProcessors(); i++ {
			if r.Active(t, i) && !r.FinishedJobDuring(t, i) {
				return false
			}
		}
	}
	return true
}

// IsProgressive implements Definition 3: among all jobs that are assigned
// resources during a step, at most one is only partially processed, i.e.
// |{ i | n_i(t) = n_i(t+1) ∧ R_i(t) > 0 }| ≤ 1 for every step t.
func IsProgressive(r *Result) bool {
	for t := 0; t < r.Steps(); t++ {
		partial := 0
		for i := 0; i < r.NumProcessors(); i++ {
			if !r.Active(t, i) {
				continue
			}
			if r.Schedule().Share(t, i) > numeric.Eps && !r.FinishedJobDuring(t, i) {
				partial++
			}
		}
		if partial > 1 {
			return false
		}
	}
	return true
}

// IsNested implements Definition 4: there is no time step t and pair of jobs
// (i,j), (i',j') such that S(i,j) < S(i',j') ≤ t < C(i',j'),
// S(i',j') < C(i,j), and (i,j) is running (receiving resource) during step t.
// Intuitively: among partially processed jobs, the one started latest is
// preferred and completed first, so job lifetimes form a laminar (nested)
// family.
func IsNested(r *Result) bool {
	type span struct {
		id   JobID
		s, c int
	}
	var spans []span
	for i := 0; i < r.NumProcessors(); i++ {
		for j := 0; j < r.Instance().NumJobs(i); j++ {
			s, c := r.StartStep(i, j), r.CompletionStep(i, j)
			if s < 0 || c < 0 {
				// Jobs that never started or never finished cannot witness a
				// violation within the executed horizon.
				continue
			}
			spans = append(spans, span{id: JobID{Proc: i, Pos: j}, s: s, c: c})
		}
	}
	running := func(id JobID, t int) bool {
		// A job is "running" in step t if it is the active job of its
		// processor and receives a positive share (or is a zero-requirement
		// job making progress).
		j, ok := r.ActiveJob(t, id.Proc)
		if !ok || j != id.Pos {
			return false
		}
		return r.Progressed(t, id.Proc)
	}
	for _, a := range spans { // candidate (i,j)
		for _, b := range spans { // candidate (i',j')
			if a.id == b.id {
				continue
			}
			if !(a.s < b.s && b.s < a.c) {
				continue
			}
			for t := b.s; t < b.c; t++ {
				if t >= a.s && running(a.id, t) {
					return false
				}
			}
		}
	}
	return true
}

// IsBalanced implements Definition 5: whenever a processor i finishes a job
// during step t, every processor i' with n_{i'}(t) > n_i(t) also finishes a
// job during step t.
func IsBalanced(r *Result) bool {
	for t := 0; t < r.Steps(); t++ {
		for i := 0; i < r.NumProcessors(); i++ {
			if !r.FinishedJobDuring(t, i) {
				continue
			}
			for k := 0; k < r.NumProcessors(); k++ {
				if r.RemainingJobs(t, k) > r.RemainingJobs(t, i) && !r.FinishedJobDuring(t, k) {
					return false
				}
			}
		}
	}
	return true
}

// CheckProposition1 verifies both invariants of Proposition 1 for a balanced
// schedule: for all processors i1, i2 and steps t,
//
//	(a) n_{i1} ≥ n_{i2}  ⇒  n_{i1}(t) ≥ n_{i2}(t) − 1, and
//	(b) n_{i1} > n_{i2}  ⇒  n_{i1}(t) ≤ n_{i2}(t) + n_{i1} − n_{i2}.
//
// It returns a descriptive error for the first violated invariant, or nil.
// The proposition only holds for balanced schedules; callers typically check
// IsBalanced first.
func CheckProposition1(r *Result) error {
	m := r.NumProcessors()
	for t := 0; t <= r.Steps(); t++ {
		for i1 := 0; i1 < m; i1++ {
			for i2 := 0; i2 < m; i2++ {
				n1, n2 := r.Instance().NumJobs(i1), r.Instance().NumJobs(i2)
				r1, r2 := r.Instance().NumJobs(i1)-r.JobsDone(t, i1), r.Instance().NumJobs(i2)-r.JobsDone(t, i2)
				if n1 >= n2 && !(r1 >= r2-1) {
					return fmt.Errorf("core: Proposition 1(a) violated at t=%d for processors %d,%d: n_%d(t)=%d < n_%d(t)-1=%d",
						t+1, i1+1, i2+1, i1+1, r1, i2+1, r2-1)
				}
				if n1 > n2 && !(r1 <= r2+n1-n2) {
					return fmt.Errorf("core: Proposition 1(b) violated at t=%d for processors %d,%d: n_%d(t)=%d > %d",
						t+1, i1+1, i2+1, i1+1, r1, r2+n1-n2)
				}
			}
		}
	}
	return nil
}

// CheckProposition2 verifies Proposition 2 for a balanced schedule: if job
// (i,j) is active at step t and it is not the last job of processor i
// (n_i(t) > 1), then every processor in M_j (those with at least j jobs) is
// active at step t. Job indices in the proposition are one-based; the
// zero-based code converts accordingly.
func CheckProposition2(r *Result) error {
	for t := 0; t < r.Steps(); t++ {
		for i := 0; i < r.NumProcessors(); i++ {
			j, ok := r.ActiveJob(t, i)
			if !ok || r.RemainingJobs(t, i) <= 1 {
				continue
			}
			for _, other := range r.Instance().ProcsWithAtLeast(j + 1) {
				if !r.Active(t, other) {
					return fmt.Errorf("core: Proposition 2 violated at t=%d: job (%d,%d) active with n_%d(t)>1 but processor %d idle",
						t+1, i+1, j+1, i+1, other+1)
				}
			}
		}
	}
	return nil
}
