package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestJobWorkAndSteps(t *testing.T) {
	j := Job{Req: 0.4, Size: 2.5}
	if !almostEq(j.Work(), 1.0) {
		t.Fatalf("work = %v, want 1.0", j.Work())
	}
	if j.Steps() != 3 {
		t.Fatalf("steps = %d, want 3", j.Steps())
	}
	if UnitJob(0.7).Steps() != 1 {
		t.Fatalf("unit job needs exactly one step at full speed")
	}
	if (Job{Req: 0.5, Size: 0}).Steps() != 0 {
		t.Fatalf("zero-size job needs zero steps")
	}
}

func TestJobValidate(t *testing.T) {
	cases := []struct {
		job Job
		ok  bool
	}{
		{Job{Req: 0.5, Size: 1}, true},
		{Job{Req: 0, Size: 1}, true},
		{Job{Req: 1, Size: 10}, true},
		{Job{Req: -0.1, Size: 1}, false},
		{Job{Req: 1.1, Size: 1}, false},
		{Job{Req: 0.5, Size: 0}, false},
		{Job{Req: 0.5, Size: -2}, false},
		{Job{Req: math.NaN(), Size: 1}, false},
		{Job{Req: 0.5, Size: math.Inf(1)}, false},
	}
	for _, c := range cases {
		err := c.job.Validate()
		if (err == nil) != c.ok {
			t.Fatalf("Validate(%+v) = %v, want ok=%v", c.job, err, c.ok)
		}
	}
}

func TestInstanceAccessors(t *testing.T) {
	inst := NewInstance([]float64{0.2, 0.4}, []float64{0.6}, nil)
	if inst.NumProcessors() != 3 || inst.TotalJobs() != 3 || inst.MaxJobs() != 2 {
		t.Fatalf("unexpected shape: m=%d total=%d max=%d", inst.NumProcessors(), inst.TotalJobs(), inst.MaxJobs())
	}
	if !almostEq(inst.TotalWork(), 1.2) {
		t.Fatalf("total work = %v, want 1.2", inst.TotalWork())
	}
	if !inst.IsUnitSize() {
		t.Fatalf("NewInstance builds unit-size jobs")
	}
	if got := inst.ProcsWithAtLeast(2); len(got) != 1 || got[0] != 0 {
		t.Fatalf("M_2 = %v, want [0]", got)
	}
	if got := inst.ProcsWithAtLeast(1); len(got) != 2 {
		t.Fatalf("M_1 = %v, want two processors", got)
	}
	if inst.String() == "" || !strings.Contains(inst.String(), "p1:") {
		t.Fatalf("String rendering broken: %q", inst.String())
	}
}

func TestInstanceCloneAndEqual(t *testing.T) {
	a := NewInstance([]float64{0.2, 0.4}, []float64{0.6})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatalf("clone must equal the original")
	}
	b.Procs[0][0].Req = 0.3
	if a.Equal(b) {
		t.Fatalf("mutating the clone must not affect equality with the original")
	}
	if a.Procs[0][0].Req != 0.2 {
		t.Fatalf("clone must be deep: original was mutated")
	}
	c := NewInstance([]float64{0.2, 0.4})
	if a.Equal(c) {
		t.Fatalf("instances with different processor counts are not equal")
	}
	d := NewInstance([]float64{0.2}, []float64{0.6})
	if a.Equal(d) {
		t.Fatalf("instances with different job counts are not equal")
	}
}

func TestInstanceValidate(t *testing.T) {
	good := NewInstance([]float64{0.5})
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := NewInstance([]float64{1.5})
	if err := bad.Validate(); err == nil {
		t.Fatalf("expected validation error for requirement > 1")
	}
	var nilInst *Instance
	if err := nilInst.Validate(); err == nil {
		t.Fatalf("nil instance must not validate")
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	inst := NewSizedInstance(
		[]Job{{Req: 0.25, Size: 1}, {Req: 0.5, Size: 2}},
		[]Job{{Req: 1, Size: 1}},
	)
	data, err := json.Marshal(inst)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !inst.Equal(&back) {
		t.Fatalf("round trip changed the instance:\n%v\n%v", inst, &back)
	}
	if err := json.Unmarshal([]byte(`{"procs":[[{"req":7,"size":1}]]}`), &back); err == nil {
		t.Fatalf("unmarshalling an invalid instance must fail validation")
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := NewSchedule(2, 2)
	s.Alloc[0] = []float64{0.25, 0.75}
	s.Alloc[1] = []float64{1, 0}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Steps() != 2 || back.Share(0, 1) != 0.75 {
		t.Fatalf("round trip changed the schedule: %v", back)
	}
}

func TestJobIDString(t *testing.T) {
	id := JobID{Proc: 1, Pos: 2}
	if id.String() != "(2,3)" {
		t.Fatalf("JobID renders one-based, got %q", id.String())
	}
}

func TestTotalWorkIsLowerBoundProperty(t *testing.T) {
	// Property: for any unit-size instance, the Observation 1 bound never
	// exceeds the makespan of the trivial sequential schedule (one job per
	// step, full requirement each), which is the total number of jobs.
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 24 {
			return true
		}
		procs := make([][]float64, 1+len(raw)%4)
		for i, r := range raw {
			procs[i%len(procs)] = append(procs[i%len(procs)], float64(r)/255)
		}
		inst := NewInstance(procs...)
		lb := LowerBounds(inst)
		return lb.Work <= inst.TotalJobs() && lb.Chain <= inst.TotalJobs() && lb.Best() >= lb.Work
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("property violated: %v", err)
	}
}

func TestLowerBounds(t *testing.T) {
	inst := NewInstance([]float64{0.5, 0.5, 0.5}, []float64{1.0})
	b := LowerBounds(inst)
	if b.Work != 3 { // total work 2.5 → ⌈2.5⌉ = 3
		t.Fatalf("work bound = %d, want 3", b.Work)
	}
	if b.Chain != 3 {
		t.Fatalf("chain bound = %d, want 3", b.Chain)
	}
	if b.Best() != 3 {
		t.Fatalf("best bound = %d, want 3", b.Best())
	}

	sized := NewSizedInstance([]Job{{Req: 0.1, Size: 5}})
	bs := LowerBounds(sized)
	if bs.Chain != 5 || bs.Work != 1 || bs.Best() != 5 {
		t.Fatalf("sized bounds = %+v, want chain 5, work 1", bs)
	}
}

func TestApproxRatio(t *testing.T) {
	inst := NewInstance([]float64{1, 1})
	if r := ApproxRatio(inst, 4); !almostEq(r, 2) {
		t.Fatalf("ratio = %v, want 2", r)
	}
	empty := NewInstance()
	if r := ApproxRatio(empty, 0); r != 1 {
		t.Fatalf("ratio of empty instance = %v, want 1", r)
	}
	if r := ApproxRatio(empty, 3); !math.IsInf(r, 1) {
		t.Fatalf("nonzero makespan on empty instance should give +Inf, got %v", r)
	}
}
