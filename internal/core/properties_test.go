package core

import (
	"math/rand"
	"testing"
)

// figure2Nested reproduces the nested schedule of Figure 2b: the half-size
// jobs of processor 1 are paired with one full job of processor 2 and then
// one of processor 3, each full job split across two steps.
func figure2Instance() *Instance {
	return NewInstance(
		[]float64{0.5, 0.5, 0.5, 0.5},
		[]float64{1.0},
		[]float64{1.0},
	)
}

func figure2NestedSchedule() *Schedule {
	// Figure 2b: p2's job starts in step 1, is interrupted while p3's job
	// runs to completion in steps 2-3, and resumes and completes in step 4.
	// The later-started job finishes first, so the lifetimes nest.
	s := NewSchedule(4, 3)
	s.Alloc[0] = []float64{0.5, 0.5, 0}
	s.Alloc[1] = []float64{0.5, 0, 0.5}
	s.Alloc[2] = []float64{0.5, 0, 0.5}
	s.Alloc[3] = []float64{0.5, 0.5, 0}
	return s
}

func figure2UnnestedSchedule() *Schedule {
	// Figure 2c: p2's job starts in step 1, p3's job starts in step 2, p2's
	// job completes in step 3 while p3's is still unfinished — the crossing
	// pattern forbidden by Definition 4.
	s := NewSchedule(4, 3)
	s.Alloc[0] = []float64{0.5, 0.5, 0}
	s.Alloc[1] = []float64{0.5, 0, 0.5}
	s.Alloc[2] = []float64{0.5, 0.5, 0}
	s.Alloc[3] = []float64{0.5, 0, 0.5}
	return s
}

func TestFigure2NestedSchedule(t *testing.T) {
	inst := figure2Instance()
	res, err := Execute(inst, figure2NestedSchedule())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() || res.Makespan() != 4 {
		t.Fatalf("nested schedule should finish in 4 steps, got finished=%v makespan=%d", res.Finished(), res.Makespan())
	}
	p := CheckProperties(res)
	if !p.NonWasting || !p.Progressive {
		t.Fatalf("Figure 2b schedule should be non-wasting and progressive, got %v", p)
	}
	if !p.Nested {
		t.Fatalf("Figure 2b schedule should be nested")
	}
}

func TestFigure2UnnestedSchedule(t *testing.T) {
	inst := figure2Instance()
	res, err := Execute(inst, figure2UnnestedSchedule())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res.Finished() || res.Makespan() != 4 {
		t.Fatalf("unnested schedule should still finish in 4 steps, got %d", res.Makespan())
	}
	p := CheckProperties(res)
	if !p.NonWasting || !p.Progressive {
		t.Fatalf("Figure 2c schedule is non-wasting and progressive, got %v", p)
	}
	if p.Nested {
		t.Fatalf("Figure 2c schedule must be detected as NOT nested")
	}
}

func TestIsNonWastingDetectsWaste(t *testing.T) {
	inst := NewInstance([]float64{0.5, 0.5})
	s := NewSchedule(3, 1)
	s.Alloc[0][0] = 0.3 // leaves 0.7 unused while the active job is unfinished
	s.Alloc[1][0] = 0.2
	s.Alloc[2][0] = 0.5
	res, err := Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if IsNonWasting(res) {
		t.Fatalf("schedule wastes resource in step 1 while a job stays unfinished")
	}
}

func TestIsProgressiveDetectsTwoPartials(t *testing.T) {
	inst := NewInstance([]float64{0.8}, []float64{0.8})
	s := NewSchedule(2, 2)
	s.Alloc[0] = []float64{0.5, 0.5} // both jobs partially processed
	s.Alloc[1] = []float64{0.3, 0.3}
	res, err := Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if IsProgressive(res) {
		t.Fatalf("two partially processed jobs in step 1 violate progressiveness")
	}
}

func TestIsBalancedDetectsImbalance(t *testing.T) {
	// Processor 1 has 1 job, processor 2 has 2. Finishing processor 1's job
	// in step 1 while processor 2 (with more remaining jobs) does not finish
	// violates Definition 5.
	inst := NewInstance([]float64{0.5}, []float64{0.9, 0.9})
	s := NewSchedule(3, 2)
	s.Alloc[0] = []float64{0.5, 0.5}
	s.Alloc[1] = []float64{0, 1.0}
	s.Alloc[2] = []float64{0, 0.9}
	res, err := Execute(inst, s)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if IsBalanced(res) {
		t.Fatalf("schedule finishes the short processor first and must not be balanced")
	}

	// The balanced alternative finishes processor 2's first job in step 1.
	s2 := NewSchedule(3, 2)
	s2.Alloc[0] = []float64{0.1, 0.9}
	s2.Alloc[1] = []float64{0.4, 0.6}
	s2.Alloc[2] = []float64{0, 0.9}
	res2, err := Execute(inst, s2)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !res2.Finished() {
		t.Fatalf("alternative schedule should finish")
	}
	if !IsBalanced(res2) {
		t.Fatalf("alternative schedule is balanced: the longer processor finishes whenever the shorter one does")
	}
}

func TestPropositionCheckersOnBalancedSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(3)
		inst := randomInstance(rng, m, 1+rng.Intn(5), 0.05, 1.0)
		sched := balancedGreedySchedule(inst)
		res, err := Execute(inst, sched)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if !res.Finished() {
			t.Fatalf("balanced greedy must finish all jobs")
		}
		if !IsBalanced(res) {
			t.Fatalf("balanced greedy schedule must satisfy Definition 5")
		}
		if err := CheckProposition1(res); err != nil {
			t.Fatalf("Proposition 1 violated: %v", err)
		}
		if err := CheckProposition2(res); err != nil {
			t.Fatalf("Proposition 2 violated: %v", err)
		}
	}
}

func TestPropertiesString(t *testing.T) {
	if got := (Properties{}).String(); got != "none" {
		t.Fatalf("empty property set renders %q, want none", got)
	}
	p := Properties{NonWasting: true, Nested: true}
	if got := p.String(); got != "non-wasting nested" {
		t.Fatalf("got %q", got)
	}
}

// randomInstance draws a unit-size instance without importing internal/gen
// (which would create an import cycle for this package's tests).
func randomInstance(rng *rand.Rand, m, jobs int, lo, hi float64) *Instance {
	rows := make([][]float64, m)
	for i := range rows {
		rows[i] = make([]float64, jobs)
		for j := range rows[i] {
			rows[i][j] = lo + rng.Float64()*(hi-lo)
		}
	}
	return NewInstance(rows...)
}

// balancedGreedySchedule is a minimal re-implementation of the GreedyBalance
// allocation rule used only to exercise the property checkers without
// importing the algorithm package (tests of internal/algo/greedybalance cover
// the real implementation).
func balancedGreedySchedule(inst *Instance) *Schedule {
	b := NewBuilder(inst)
	return b.BuildGreedy(func(b *Builder) []float64 {
		m := b.NumProcessors()
		shares := make([]float64, m)
		avail := 1.0
		for avail > 1e-12 {
			// Pick the active processor with the most remaining jobs (ties:
			// larger remaining work, then index) that still has unmet demand.
			best := -1
			for i := 0; i < m; i++ {
				if !b.Active(i) || shares[i] > 0 {
					continue
				}
				if best == -1 {
					best = i
					continue
				}
				if b.RemainingJobs(i) > b.RemainingJobs(best) ||
					(b.RemainingJobs(i) == b.RemainingJobs(best) && b.RemainingWork(i) > b.RemainingWork(best)) {
					best = i
				}
			}
			if best == -1 {
				break
			}
			give := b.DemandThisStep(best)
			if give > avail {
				give = avail
			}
			if give <= 0 {
				// Zero-demand active job (zero requirement): mark it served.
				give = 0
			}
			shares[best] = give
			avail -= give
			if give == 0 {
				// Avoid an infinite loop on zero-requirement jobs.
				break
			}
		}
		return shares
	})
}
