package benchcmp

import (
	"regexp"
	"strings"
	"testing"
)

func TestRenderMarkdown(t *testing.T) {
	key := Key{Package: "crsharing/internal/core", Name: "BenchmarkBranchBound"}
	other := Key{Package: "crsharing/internal/solver", Name: "BenchmarkGreedy"}
	new := map[Key]*Samples{
		key:   {NsPerOp: []float64{100, 120, 110}, AllocsPerOp: []float64{0, 0, 0}},
		other: {NsPerOp: []float64{5e6, 6e6}, AllocsPerOp: []float64{3, 3}},
	}
	old := map[Key]*Samples{
		key: {NsPerOp: []float64{100, 100, 100}},
	}

	md := RenderMarkdown(old, new, nil)
	if !strings.Contains(md, "`core.BranchBound`") || !strings.Contains(md, "`solver.Greedy`") {
		t.Fatalf("benchmarks missing from table:\n%s", md)
	}
	if !strings.Contains(md, "110ns") || !strings.Contains(md, "5.5ms") {
		t.Fatalf("medians not rendered with units:\n%s", md)
	}
	if !strings.Contains(md, "+10.0%") {
		t.Fatalf("baseline delta missing:\n%s", md)
	}
	if !strings.Contains(md, "_no baseline_") {
		t.Fatalf("baseline-less row not marked:\n%s", md)
	}
	// Deterministic: regenerating is a no-op diff.
	if again := RenderMarkdown(old, new, nil); again != md {
		t.Fatal("RenderMarkdown is not deterministic")
	}
	// Filtered render keeps only the matching rows.
	filtered := RenderMarkdown(old, new, regexp.MustCompile("BranchBound"))
	if strings.Contains(filtered, "Greedy") {
		t.Fatalf("filter leaked a row:\n%s", filtered)
	}
	if empty := RenderMarkdown(nil, nil, nil); !strings.Contains(empty, "no benchmarks") {
		t.Fatalf("empty run rendered %q", empty)
	}
}
