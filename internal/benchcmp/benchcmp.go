// Package benchcmp parses the benchmark results embedded in `go test -json`
// output and compares two such runs, benchstat-style: per benchmark it
// reduces the samples of a `-count=N` run to their median and flags
// regressions against a tolerance. It backs cmd/benchdiff, the CI gate that
// compares a fresh BENCH_core.json against the previous run's artifact.
//
// Medians, not means: a single GC pause or noisy-neighbour spike in one of
// the N samples must not fail (or mask a failure of) the gate.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Key identifies one benchmark across runs.
type Key struct {
	// Package is the import path the benchmark lives in.
	Package string
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped, so
	// runs from machines with different core counts still line up.
	Name string
}

func (k Key) String() string { return k.Package + "." + k.Name }

// Samples collects the per-iteration measurements of one benchmark over the
// repetitions of a -count=N run.
type Samples struct {
	NsPerOp     []float64
	AllocsPerOp []float64
}

// testEvent is the subset of the `go test -json` event stream we read.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches a benchmark result line: a name starting with
// "Benchmark", an iteration count, then measurement fields.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]*)\s+\d+\s+(.*)$`)

// gomaxprocsSuffix strips the trailing "-N" processor count from a
// benchmark name.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// ParseStream reads a `go test -json` stream and returns the benchmark
// samples it contains, keyed by (package, normalized name). Non-benchmark
// output and unparseable lines are ignored — the stream interleaves build
// output, PASS lines and benchmark results. test2json splits one benchmark
// result across several output events (the name is printed before the run,
// the measurements after it), so events are reassembled into lines per
// package before parsing.
func ParseStream(r io.Reader) (map[Key]*Samples, error) {
	out := make(map[Key]*Samples)
	pending := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 || line[0] != '{' {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		if ev.Action != "output" {
			continue
		}
		b := pending[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			pending[ev.Package] = b
		}
		b.WriteString(ev.Output)
		buf := b.String()
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			parseOutputLine(ev.Package, strings.TrimSpace(buf[:nl]), out)
			buf = buf[nl+1:]
		}
		b.Reset()
		b.WriteString(buf)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchcmp: reading stream: %w", err)
	}
	for pkg, b := range pending {
		if tail := strings.TrimSpace(b.String()); tail != "" {
			parseOutputLine(pkg, tail, out)
		}
	}
	return out, nil
}

// parseOutputLine folds one output line into the sample map if it is a
// benchmark result.
func parseOutputLine(pkg, line string, out map[Key]*Samples) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return
	}
	key := Key{Package: pkg, Name: gomaxprocsSuffix.ReplaceAllString(m[1], "")}
	s := out[key]
	if s == nil {
		s = &Samples{}
		out[key] = s
	}
	// The tail is a sequence of "<value> <unit>" pairs separated by tabs,
	// e.g. "123 ns/op\t45 B/op\t6 allocs/op\t1.0 nodes/op".
	for _, field := range strings.Split(m[2], "\t") {
		parts := strings.Fields(field)
		if len(parts) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			continue
		}
		switch parts[1] {
		case "ns/op":
			s.NsPerOp = append(s.NsPerOp, v)
		case "allocs/op":
			s.AllocsPerOp = append(s.AllocsPerOp, v)
		}
	}
}

// Median reduces a sample slice; it returns false when there are no samples.
func Median(xs []float64) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2], true
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2, true
}

// Regression is one benchmark that got worse beyond the gate's tolerance.
type Regression struct {
	Key    Key
	Metric string // "ns/op" or "allocs/op"
	Old    float64
	New    float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.6g -> %.6g (%+.1f%%)",
		r.Key, r.Metric, r.Old, r.New, 100*(r.New-r.Old)/r.Old)
}

// Options configures Compare.
type Options struct {
	// Filter selects the gated benchmarks, matched against
	// "package.BenchmarkName" (nil = all).
	Filter *regexp.Regexp
	// Tolerance is the allowed fractional ns/op growth (e.g. 0.10).
	Tolerance float64
	// SkipNs exempts matching benchmarks from the ns/op gate while keeping
	// their allocs/op gate: wall-clock of parallel kernels on shared CI
	// runners is not comparable run to run, allocation counts are.
	SkipNs *regexp.Regexp
}

// Compare flags regressions of new against old. A benchmark regresses when
// its median ns/op exceeds the old median by more than Tolerance, or when
// its median allocs/op increases at all — the kernels' allocation counts are
// small deterministic constants, so any growth is a real leak, not noise.
// Only benchmarks present in both runs and matching Filter are compared;
// benchmarks that appear or disappear are reported by the caller via
// Missing.
func Compare(old, new map[Key]*Samples, opts Options) []Regression {
	var regs []Regression
	for key, n := range new {
		o, ok := old[key]
		if !ok || (opts.Filter != nil && !opts.Filter.MatchString(key.String())) {
			continue
		}
		gateNs := opts.SkipNs == nil || !opts.SkipNs.MatchString(key.String())
		if oldNs, ok := Median(o.NsPerOp); ok && gateNs {
			if newNs, ok := Median(n.NsPerOp); ok && newNs > oldNs*(1+opts.Tolerance) {
				regs = append(regs, Regression{Key: key, Metric: "ns/op", Old: oldNs, New: newNs})
			}
		}
		if oldAllocs, ok := Median(o.AllocsPerOp); ok {
			if newAllocs, ok := Median(n.AllocsPerOp); ok && newAllocs > oldAllocs {
				regs = append(regs, Regression{Key: key, Metric: "allocs/op", Old: oldAllocs, New: newAllocs})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Key != regs[j].Key {
			return regs[i].Key.String() < regs[j].Key.String()
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

// Missing lists the filtered benchmarks of old that new no longer reports —
// a silently deleted benchmark would otherwise make its regressions
// invisible forever.
func Missing(old, new map[Key]*Samples, filter *regexp.Regexp) []Key {
	var keys []Key
	for key := range old {
		if filter != nil && !filter.MatchString(key.String()) {
			continue
		}
		if _, ok := new[key]; !ok {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}
